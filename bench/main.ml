(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 7) on the synthetic substrates.

     dune exec bench/main.exe              # full run
     dune exec bench/main.exe -- --quick   # reduced-scale smoke run
     dune exec bench/main.exe -- --only fig10 --only fig13

   Absolute numbers differ from the paper (its substrate was gStore/Jena on
   a 256 GB server against 500M-2B triple datasets; ours is an OCaml
   engine at laptop scale) — the reproduced artifact is the *shape*: which
   configuration wins, by roughly what factor, and where base hits its
   resource limits. See EXPERIMENTS.md for the side-by-side reading. *)

let all_sections =
  [ "table2"; "table3"; "table4"; "fig3"; "fig10"; "fig11"; "fig12"; "fig13";
    "ablation"; "micro"; "parallel"; "streaming"; "plan_cache"; "intersection";
    "robustness"; "serving"; "durability"; "scale"; "adaptive" ]

type context = {
  config : Harness.config;
  lubm : (Rdf_store.Triple_store.t * Rdf_store.Stats.t) Lazy.t;
  dbpedia : (Rdf_store.Triple_store.t * Rdf_store.Stats.t) Lazy.t;
}

let dataset_of ctx = function
  | Workload.Queries.Lubm -> Lazy.force ctx.lubm
  | Workload.Queries.Dbpedia -> Lazy.force ctx.dbpedia

(* [produce] streams triples into the bulk loader — no intermediate list,
   which matters now that the default LUBM scale is 130 universities. *)
let build_store name produce =
  let store = Rdf_store.Triple_store.of_iter produce in
  (* The epoch-memoized path: the same [Stats.t] every session over this
     store value reuses, instead of a private full scan per call site. *)
  let stats = Rdf_store.Stats.cached store in
  let ls = Rdf_store.Triple_store.load_stats store in
  Printf.printf "[build] %s: %s triples (%.1fs, %s triples/s, %.1f MB off-heap)\n%!"
    name
    (Harness.human_int (Rdf_store.Triple_store.size store))
    ls.Rdf_store.Triple_store.elapsed_s
    (Harness.human_int (int_of_float ls.Rdf_store.Triple_store.triples_per_sec))
    (float_of_int (Rdf_store.Triple_store.mem_bytes store) /. 1048576.);
  (store, stats)

(* ------------------------------------------------------------------ *)
(* Table 2: dataset statistics.                                        *)
(* ------------------------------------------------------------------ *)

let table2 ctx =
  Harness.section "Table 2: Dataset statistics";
  let row name (_, stats) =
    [
      name;
      Harness.human_int (Rdf_store.Stats.num_triples stats);
      Harness.human_int (Rdf_store.Stats.num_entities stats);
      Harness.human_int (Rdf_store.Stats.num_predicates stats);
      Harness.human_int (Rdf_store.Stats.num_literals stats);
    ]
  in
  Harness.print_table
    ~header:[ "Dataset"; "triples"; "entities"; "predicates"; "literals" ]
    ~rows:
      [
        row "LUBM" (Lazy.force ctx.lubm);
        row "DBpedia" (Lazy.force ctx.dbpedia);
      ]

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4: query statistics.                                   *)
(* ------------------------------------------------------------------ *)

let query_stats_table ctx ds title =
  Harness.section title;
  let store, _stats = dataset_of ctx ds in
  let rows =
    List.map
      (fun entry ->
        let row =
          Workload.Metrics.row_of ~row_budget:ctx.config.Harness.row_budget
            store entry
        in
        [
          row.Workload.Metrics.id;
          Workload.Metrics.class_name row.Workload.Metrics.query_class;
          string_of_int row.Workload.Metrics.count_bgp;
          string_of_int row.Workload.Metrics.depth;
          (match row.Workload.Metrics.result_size with
          | Some n -> Harness.human_int n
          | None -> ">limit");
        ])
      (Workload.Queries.all ds)
  in
  Harness.print_table
    ~header:[ "Query"; "Type"; "Count_BGP"; "Depth"; "|[[Q]]_D|" ]
    ~rows

let table3 ctx =
  query_stats_table ctx Workload.Queries.Lubm "Table 3: Query statistics on LUBM"

let table4 ctx =
  query_stats_table ctx Workload.Queries.Dbpedia
    "Table 4: Query statistics on DBpedia"

(* ------------------------------------------------------------------ *)
(* Figure 3 (motivational): binary-tree vs BGP-based evaluation.       *)
(* ------------------------------------------------------------------ *)

let fig3 ctx =
  Harness.section
    "Figure 3 (motivational): binary-tree vs BGP-based evaluation";
  let store, stats = Lazy.force ctx.lubm in
  let text =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n\
     SELECT * WHERE { ?x ub:memberOf \
     <http://www.Department0.University0.edu> . ?x ub:telephone ?y . }"
  in
  let query = Sparql.Parser.parse text in
  Printf.printf
    "Query: one selective pattern joined with one unselective attribute \
     pattern\n";
  (* Binary-tree evaluation materializes every triple pattern. *)
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  let env = Engine.Bgp_eval.make ~stats store vartable Engine.Bgp_eval.Wco in
  let gov =
    Sparql.Governor.create ~row_budget:ctx.config.Harness.row_budget ()
  in
  let t0 = Unix.gettimeofday () in
  let binary =
    try
      Sparql.Governor.with_ticket gov (fun () ->
          let bag, bstats =
            Sparql_uo.Binary_eval.eval env (Sparql.Algebra.of_query query)
          in
          Some (Sparql.Bag.length bag, bstats))
    with Sparql.Governor.Kill _ -> None
  in
  let binary_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let report =
    Sparql_uo.Executor.run_query ~mode:Sparql_uo.Executor.Base
      ~row_budget:ctx.config.Harness.row_budget ~stats store query
  in
  let rows =
    [
      (match binary with
      | Some (n, bstats) ->
          [
            "binary-tree (per triple pattern)";
            Printf.sprintf "%.1f" binary_ms;
            Harness.human_int bstats.Sparql_uo.Binary_eval.total_rows;
            Harness.human_int n;
          ]
      | None ->
          [
            "binary-tree (per triple pattern)";
            "OOM";
            ">" ^ Harness.human_int ctx.config.Harness.row_budget;
            "-";
          ]);
      (match report.Sparql_uo.Executor.eval_stats with
      | Some estats ->
          [
            "BGP-based (Algorithm 1)";
            Printf.sprintf "%.1f" report.Sparql_uo.Executor.exec_ms;
            Harness.human_int estats.Sparql_uo.Evaluator.total_rows;
            Harness.human_int
              (Option.value report.Sparql_uo.Executor.result_count ~default:0);
          ]
      | None -> [ "BGP-based (Algorithm 1)"; "OOM"; "-"; "-" ]);
    ]
  in
  Harness.print_table
    ~header:[ "Strategy"; "time (ms)"; "intermediate rows"; "results" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Figure 10: base/TT/CP/full on q1.1-q1.6, both datasets and engines. *)
(* ------------------------------------------------------------------ *)

let fig10_panel ctx ds engine =
  let store, stats = dataset_of ctx ds in
  Harness.subsection
    (Printf.sprintf
       "%s / %s engine (times in ms; OOM = row budget, as in the paper's \
        absent bars)"
       (Workload.Queries.dataset_name ds)
       (Engine.Bgp_eval.engine_name engine));
  let rows =
    List.map
      (fun entry ->
        let cells =
          List.map
            (fun mode ->
              let cell, _ =
                Harness.run_mode ctx.config ~stats store entry ~mode ~engine
              in
              Harness.cell_to_string cell)
            Sparql_uo.Executor.all_modes
        in
        entry.Workload.Queries.id :: cells)
      (Workload.Queries.group1 ds)
  in
  Harness.print_table ~header:[ "Query"; "base"; "TT"; "CP"; "full" ] ~rows

let fig10 ctx =
  Harness.section
    "Figure 10: execution time of base / TT / CP / full (4 panels)";
  List.iter
    (fun ds ->
      List.iter
        (fun engine -> fig10_panel ctx ds engine)
        [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])
    [ Workload.Queries.Lubm; Workload.Queries.Dbpedia ]

(* ------------------------------------------------------------------ *)
(* Figure 11: execution time and join space.                           *)
(* ------------------------------------------------------------------ *)

let fig11 ctx =
  Harness.section "Figure 11: execution time and join space (WCO engine)";
  List.iter
    (fun ds ->
      let store, stats = dataset_of ctx ds in
      Harness.subsection (Workload.Queries.dataset_name ds);
      let rows =
        List.concat_map
          (fun entry ->
            List.map
              (fun mode ->
                let cell, report =
                  Harness.run_mode ctx.config ~stats store entry ~mode
                    ~engine:Engine.Bgp_eval.Wco
                in
                [
                  entry.Workload.Queries.id;
                  Sparql_uo.Executor.mode_name mode;
                  Harness.cell_to_string cell;
                  (match report.Sparql_uo.Executor.eval_stats with
                  | Some s ->
                      Printf.sprintf "%.3g" s.Sparql_uo.Evaluator.join_space
                  | None -> "-");
                  (match report.Sparql_uo.Executor.eval_stats with
                  | Some s -> Harness.human_int s.Sparql_uo.Evaluator.peak_rows
                  | None -> "-");
                ])
              Sparql_uo.Executor.all_modes)
          (Workload.Queries.group1 ds)
      in
      Harness.print_table
        ~header:[ "Query"; "Mode"; "time (ms)"; "join space"; "peak rows" ]
        ~rows)
    [ Workload.Queries.Lubm; Workload.Queries.Dbpedia ]

(* ------------------------------------------------------------------ *)
(* Figure 12: scalability of full on growing LUBM datasets.            *)
(* ------------------------------------------------------------------ *)

let fig12 ctx =
  Harness.section
    "Figure 12: execution time of full on LUBM datasets of growing size";
  let scales =
    List.map
      (fun n ->
        let store, stats =
          build_store
            (Printf.sprintf "LUBM(%d universities)" n)
            (fun f ->
              Workload.Lubm.iter_triples (Workload.Lubm.scaled n) ~f)
        in
        (n, Rdf_store.Triple_store.size store, store, stats))
      ctx.config.Harness.scaling_universities
  in
  let header =
    "Query"
    :: List.map
         (fun (_, size, _, _) -> Harness.human_int size ^ " triples")
         scales
  in
  let rows =
    List.map
      (fun entry ->
        entry.Workload.Queries.id
        :: List.map
             (fun (_, _, store, stats) ->
               let cell, _ =
                 Harness.run_mode ctx.config ~stats store entry
                   ~mode:Sparql_uo.Executor.Full ~engine:Engine.Bgp_eval.Wco
               in
               Harness.cell_to_string cell)
             scales)
      (Workload.Queries.group1 Workload.Queries.Lubm)
  in
  Harness.print_table ~header ~rows

(* ------------------------------------------------------------------ *)
(* Figure 13: full vs LBR on q2.1-q2.6.                                *)
(* ------------------------------------------------------------------ *)

let fig13 ctx =
  Harness.section "Figure 13: comparison with the state of the art (LBR)";
  List.iter
    (fun ds ->
      let store, stats = dataset_of ctx ds in
      Harness.subsection (Workload.Queries.dataset_name ds);
      let rows =
        List.map
          (fun entry ->
            let full_cell, _ =
              Harness.run_mode ctx.config ~stats store entry
                ~mode:Sparql_uo.Executor.Full ~engine:Engine.Bgp_eval.Wco
            in
            let query = Sparql.Parser.parse entry.Workload.Queries.text in
            let lbr_cell =
              if Lbr.Lbr_eval.supported query then begin
                let vartable =
                  Sparql.Vartable.of_list
                    (Sparql.Ast.group_vars query.Sparql.Ast.where)
                in
                let env =
                  Engine.Bgp_eval.make ~stats store vartable
                    Engine.Bgp_eval.Hash_join
                in
                Harness.cell_to_string
                  (Harness.run_lbr ctx.config ~stats env query)
              end
              else "unsupported"
            in
            [
              entry.Workload.Queries.id;
              Harness.cell_to_string full_cell;
              lbr_cell;
            ])
          (Workload.Queries.group2 ds)
      in
      Harness.print_table ~header:[ "Query"; "full (ms)"; "LBR (ms)" ] ~rows)
    [ Workload.Queries.Lubm; Workload.Queries.Dbpedia ]

(* ------------------------------------------------------------------ *)
(* Ablation: the candidate-pruning threshold (Section 6).              *)
(* ------------------------------------------------------------------ *)

(* The paper fixes CP's threshold at 1% of |D| and gives full an adaptive
   per-BGP threshold; this ablation sweeps the fixed threshold and
   compares against both extremes and the adaptive rule, on the
   CP-sensitive queries (the transformed tree is held fixed at the Full
   plan so only the pruning rule varies). *)
let ablation ctx =
  Harness.section
    "Ablation: candidate-pruning threshold (fixed sweep vs adaptive)";
  let store, stats = Lazy.force ctx.lubm in
  let size = Rdf_store.Triple_store.size store in
  let thresholds =
    [
      ("none", Sparql_uo.Evaluator.No_pruning);
      ("0.01%", Sparql_uo.Evaluator.Fixed (max 1 (size / 10000)));
      ("0.1%", Sparql_uo.Evaluator.Fixed (max 1 (size / 1000)));
      ("1%", Sparql_uo.Evaluator.Fixed (max 1 (size / 100)));
      ("10%", Sparql_uo.Evaluator.Fixed (max 1 (size / 10)));
      ("adaptive", Sparql_uo.Evaluator.Adaptive);
    ]
  in
  let header = "Query" :: List.map fst thresholds @ [ "pruned BGPs (adaptive)" ] in
  let rows =
    List.filter_map
      (fun id ->
        let entry = Workload.Queries.get Workload.Queries.Lubm id in
        let query = Sparql.Parser.parse entry.Workload.Queries.text in
        let vartable =
          Sparql.Vartable.of_list (Sparql.Ast.group_vars query.Sparql.Ast.where)
        in
        let env =
          Engine.Bgp_eval.make ~stats store vartable Engine.Bgp_eval.Wco
        in
        let tree =
          Sparql_uo.Transform.multi_level env ~skip_cp_equivalent:true
            (Sparql_uo.Be_tree.of_query query)
        in
        let last_pruned = ref 0 in
        let cell threshold =
          let gov =
            Sparql.Governor.create
              ~row_budget:ctx.config.Harness.row_budget
              ~deadline:
                ( Unix.gettimeofday ()
                  +. (ctx.config.Harness.timeout_ms /. 1000.),
                  Unix.gettimeofday )
              ()
          in
          let t0 = Unix.gettimeofday () in
          try
            Sparql.Governor.with_ticket gov (fun () ->
                let _, stats = Sparql_uo.Evaluator.eval env ~threshold tree in
                last_pruned := stats.Sparql_uo.Evaluator.pruned_bgps;
                Printf.sprintf "%.1f" ((Unix.gettimeofday () -. t0) *. 1000.))
          with Sparql.Governor.Kill _ -> "OOM/t.o."
        in
        let cells = List.map (fun (_, t) -> cell t) thresholds in
        Some ((id :: cells) @ [ string_of_int !last_pruned ]))
      [ "q1.3"; "q1.4"; "q1.5"; "q1.6" ]
  in
  Harness.print_table ~header ~rows

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel): core operator costs.                   *)
(* ------------------------------------------------------------------ *)

let micro ctx =
  Harness.section "Micro-benchmarks (Bechamel): core operator costs";
  let open Bechamel in
  let store, stats =
    build_store "LUBM (micro subset)" (fun f ->
        Workload.Lubm.iter_triples Workload.Lubm.tiny ~f)
  in
  ignore ctx;
  let mk_bag seed n =
    let rng = Workload.Rng.create ~seed in
    let bag = Sparql.Bag.create ~width:3 in
    for _ = 1 to n do
      Sparql.Bag.push bag
        [| Workload.Rng.int rng 64; Workload.Rng.int rng 64; -1 |]
    done;
    bag
  in
  let b1 = mk_bag 1 2000 and b2 = mk_bag 2 2000 in
  let entry = Workload.Queries.get Workload.Queries.Lubm "q1.6" in
  let query = Sparql.Parser.parse entry.Workload.Queries.text in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  let wco_env = Engine.Bgp_eval.make ~stats store vartable Engine.Bgp_eval.Wco in
  let hash_env =
    Engine.Bgp_eval.make ~stats store vartable Engine.Bgp_eval.Hash_join
  in
  let bgp =
    [
      Sparql.Triple_pattern.make
        (Sparql.Triple_pattern.Var "x")
        (Sparql.Triple_pattern.Term (Rdf.Term.iri (Rdf.Namespace.ub "advisor")))
        (Sparql.Triple_pattern.Var "y");
      Sparql.Triple_pattern.make
        (Sparql.Triple_pattern.Var "y")
        (Sparql.Triple_pattern.Term
           (Rdf.Term.iri (Rdf.Namespace.ub "teacherOf")))
        (Sparql.Triple_pattern.Var "z");
      Sparql.Triple_pattern.make
        (Sparql.Triple_pattern.Var "x")
        (Sparql.Triple_pattern.Term
           (Rdf.Term.iri (Rdf.Namespace.ub "takesCourse")))
        (Sparql.Triple_pattern.Var "z");
    ]
  in
  let tree = Sparql_uo.Be_tree.of_query query in
  let tests =
    Test.make_grouped ~name:"core"
      [
        Test.make ~name:"bag_join_2k_x_2k"
          (Staged.stage (fun () -> Sparql.Bag.join b1 b2));
        Test.make ~name:"bag_left_outer_join_2k_x_2k"
          (Staged.stage (fun () -> Sparql.Bag.left_outer_join b1 b2));
        Test.make ~name:"bag_union_2k_x_2k"
          (Staged.stage (fun () -> Sparql.Bag.union b1 b2));
        Test.make ~name:"bgp_eval_wco_triangle"
          (Staged.stage (fun () ->
               Engine.Bgp_eval.eval wco_env bgp
                 ~candidates:Engine.Candidates.empty));
        Test.make ~name:"bgp_eval_hash_triangle"
          (Staged.stage (fun () ->
               Engine.Bgp_eval.eval hash_env bgp
                 ~candidates:Engine.Candidates.empty));
        Test.make ~name:"parse_q1.1"
          (Staged.stage (fun () ->
               Sparql.Parser.parse
                 (Workload.Queries.get Workload.Queries.Lubm "q1.1")
                   .Workload.Queries.text));
        Test.make ~name:"betree_multi_level_transform_q1.6"
          (Staged.stage (fun () -> Sparql_uo.Transform.multi_level wco_env tree));
      ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (estimate :: _) -> Printf.sprintf "%.0f" estimate
        | _ -> "-"
      in
      rows := [ name; ns ] :: !rows)
    results;
  Harness.print_table
    ~header:[ "Benchmark"; "ns/run (OLS)" ]
    ~rows:(List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Parallel: serial vs multi-domain execution on the mixed workload.   *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: validates and times the morsel-driven multicore
   execution layer. Each LUBM group-1 query (mixed OPTIONAL/UNION) runs
   under Full at domains=1 and at each parallel domain count for both
   engines; results must be equal as bags. The per-query wall-clock, the
   per-domain-count aggregate speedups, the scheduler's morsel/steal/stop
   counters and a cross-domain early-termination probe (streamed LIMIT vs
   full scan at max domains) go into a machine-readable BENCH json next
   to the human table. *)
let parallel_bench_file = "bench_parallel.json"

let parallel ctx ~domains =
  (* The sweep: serial baseline plus each parallel domain count up to
     [domains] (the --domains flag; 4 by default gives {1, 2, 4}). *)
  let parallel_counts =
    List.sort_uniq compare (List.filter (fun d -> d > 1) [ 2; domains ])
  in
  Harness.section
    (Printf.sprintf
       "Parallel: full at domains={1%s} (LUBM mixed OPTIONAL/UNION workload, \
        morsel=%d)"
       (String.concat ""
          (List.map (fun d -> Printf.sprintf ",%d" d) parallel_counts))
       (Engine.Pool.morsel_size ()));
  let store, stats = Lazy.force ctx.lubm in
  let cell_json = function
    | Harness.Time ms -> Printf.sprintf "%.3f" ms
    | Harness.Oom | Harness.Timed_out -> "null"
  in
  let json_engines =
    List.map
      (fun engine ->
        Harness.subsection (Engine.Bgp_eval.engine_name engine);
        let rows_json = ref [] in
        (* Per domain count: summed serial/parallel wall-clock and the
           scheduler counters accumulated over that count's runs. *)
        let sums =
          List.map (fun d -> (d, (ref 0., ref 0.))) parallel_counts
        in
        let counters =
          List.map (fun d -> (d, ref Engine.Pool.{ morsels = 0; steals = 0; stops = 0 }))
            parallel_counts
        in
        let all_equal = ref true in
        let rows =
          List.map
            (fun entry ->
              let serial_cell, serial_report =
                Harness.run_mode
                  { ctx.config with Harness.domains = 1 }
                  ~stats store entry ~mode:Sparql_uo.Executor.Full ~engine
              in
              let par_cells =
                List.map
                  (fun d ->
                    Engine.Pool.reset_counters ();
                    let cell, report =
                      Harness.run_mode
                        { ctx.config with Harness.domains = d }
                        ~stats store entry ~mode:Sparql_uo.Executor.Full
                        ~engine
                    in
                    let c = Engine.Pool.counters () in
                    let acc = List.assoc d counters in
                    acc :=
                      Engine.Pool.
                        {
                          morsels = !acc.morsels + c.morsels;
                          steals = !acc.steals + c.steals;
                          stops = !acc.stops + c.stops;
                        };
                    let equal =
                      match
                        ( serial_report.Sparql_uo.Executor.bag,
                          report.Sparql_uo.Executor.bag )
                      with
                      | Some b1, Some b2 -> Sparql.Bag.equal_as_bags b1 b2
                      | None, None -> true
                      | _ -> false
                    in
                    if not equal then all_equal := false;
                    let speedup =
                      match (serial_cell, cell) with
                      | Harness.Time t1, Harness.Time tn when tn > 0. ->
                          let sum_s, sum_p = List.assoc d sums in
                          sum_s := !sum_s +. t1;
                          sum_p := !sum_p +. tn;
                          Some (t1 /. tn)
                      | _ -> None
                    in
                    (d, cell, equal, speedup))
                  parallel_counts
              in
              rows_json :=
                Printf.sprintf "      {\"id\": %S, \"ms_d1\": %s%s}"
                  entry.Workload.Queries.id (cell_json serial_cell)
                  (String.concat ""
                     (List.map
                        (fun (d, cell, equal, speedup) ->
                          Printf.sprintf
                            ", \"ms_d%d\": %s, \"speedup_d%d\": %s, \
                             \"equal_as_bags_d%d\": %b"
                            d (cell_json cell) d
                            (match speedup with
                            | Some s -> Printf.sprintf "%.3f" s
                            | None -> "null")
                            d equal)
                        par_cells))
                :: !rows_json;
              entry.Workload.Queries.id :: Harness.cell_to_string serial_cell
              :: List.concat_map
                   (fun (_, cell, equal, speedup) ->
                     [
                       Harness.cell_to_string cell;
                       (match speedup with
                       | Some s -> Printf.sprintf "%.2fx" s
                       | None -> "-");
                       (if equal then "yes" else "NO");
                     ])
                   par_cells)
            (Workload.Queries.group1 Workload.Queries.Lubm)
        in
        Harness.print_table
          ~header:
            ("Query" :: "d=1 (ms)"
            :: List.concat_map
                 (fun d ->
                   [
                     Printf.sprintf "d=%d (ms)" d;
                     Printf.sprintf "speedup d=%d" d;
                     "equal";
                   ])
                 parallel_counts)
          ~rows;
        let aggregates =
          List.map
            (fun d ->
              let sum_s, sum_p = List.assoc d sums in
              (d, if !sum_p > 0. then !sum_s /. !sum_p else 0.))
            parallel_counts
        in
        List.iter
          (fun (d, aggregate) ->
            let c = !(List.assoc d counters) in
            Printf.printf
              "aggregate speedup (%s, domains=%d): %.2fx  [morsels=%d \
               steals=%d stops=%d]\n\
               %!"
              (Engine.Bgp_eval.engine_name engine)
              d aggregate c.Engine.Pool.morsels c.Engine.Pool.steals
              c.Engine.Pool.stops)
          aggregates;
        Printf.sprintf
          "    {\"engine\": %S, \"all_equal_as_bags\": %b,%s%s \"queries\": [\n\
           %s\n\
          \    ]}"
          (Engine.Bgp_eval.engine_name engine)
          !all_equal
          (String.concat ""
             (List.map
                (fun (d, aggregate) ->
                  Printf.sprintf " \"aggregate_speedup_d%d\": %.3f," d
                    aggregate)
                aggregates))
          (String.concat ""
             (List.map
                (fun (d, acc) ->
                  let c = !acc in
                  Printf.sprintf
                    " \"counters_d%d\": {\"morsels\": %d, \"steals\": %d, \
                     \"stops\": %d},"
                    d c.Engine.Pool.morsels c.Engine.Pool.steals
                    c.Engine.Pool.stops)
                counters))
          (String.concat ",\n" (List.rev !rows_json)))
      [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ]
  in
  (* Cross-domain early termination, measured: a streamed LIMIT 10 over a
     chain join at max domains must scan far fewer rows than the
     materializing run of the same query (which pays both full steps).
     [pushed_rows] counts every produced row under the run's ticket. *)
  let early_termination =
    let n = 1000 in
    let chain =
      List.concat
        (List.init n (fun i ->
             [
               Rdf.Triple.make
                 (Rdf.Term.iri (Printf.sprintf "http://b/s%d" i))
                 (Rdf.Term.iri "http://b/p0")
                 (Rdf.Term.iri (Printf.sprintf "http://b/m%d" i));
               Rdf.Triple.make
                 (Rdf.Term.iri (Printf.sprintf "http://b/m%d" i))
                 (Rdf.Term.iri "http://b/p1")
                 (Rdf.Term.iri (Printf.sprintf "http://b/o%d" i));
             ]))
    in
    let chain_store = Rdf_store.Triple_store.of_triples chain in
    let text =
      "SELECT * WHERE { ?x <http://b/p0> ?y . ?y <http://b/p1> ?z } LIMIT 10"
    in
    let run ~streaming =
      Engine.Pool.reset_counters ();
      let report =
        Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base
          ~engine:Engine.Bgp_eval.Wco ~domains ~streaming chain_store text
      in
      (report.Sparql_uo.Executor.pushed_rows, Engine.Pool.counters ())
    in
    let full_rows, _ = run ~streaming:false in
    let streamed_rows, c = run ~streaming:true in
    Printf.printf
      "early termination: streamed LIMIT 10 at domains=%d scanned %d rows \
       (full scan %d; stops=%d)\n\
       %!"
      domains streamed_rows full_rows c.Engine.Pool.stops;
    Printf.sprintf
      "  \"early_termination\": {\"query\": \"chain-limit10\", \"domains\": \
       %d, \"pushed_rows_full\": %d, \"pushed_rows_streamed\": %d, \
       \"stops\": %d, \"early\": %b},"
      domains full_rows streamed_rows c.Engine.Pool.stops
      (streamed_rows < full_rows)
  in
  let oc = open_out parallel_bench_file in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"parallel\",\n\
    \  \"dataset\": \"LUBM\",\n\
    \  \"mode\": \"full\",\n\
    \  \"morsel_size\": %d,\n\
    \  \"peak_rss_mb\": %.1f,\n\
    \  \"major_collections\": %d,\n\
    \  \"domains\": [1%s],\n\
     %s\n\
    \  \"engines\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Engine.Pool.morsel_size ())
    (float_of_int (Harness.peak_rss_kb ()) /. 1024.)
    (Harness.major_collections ())
    (String.concat ""
       (List.map (fun d -> Printf.sprintf ", %d" d) parallel_counts))
    early_termination
    (String.concat ",\n" json_engines);
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" parallel_bench_file

(* ------------------------------------------------------------------ *)
(* Streaming: sink pipeline vs materializing modifiers.                *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: measures the push-based Sink layer. Each LUBM
   group-1 query (plus a full ?s ?p ?o scan) runs plain, with LIMIT 10,
   and with ORDER BY + LIMIT 10, under both modifier pipelines
   (materializing and streaming) at domains 1 and N; wall-clock and
   produced rows (the report's governed [pushed_rows]) go into a
   machine-readable json. The
   LIMIT window of an unordered query is legitimately nondeterministic,
   so bag equality against the materializing serial run is asserted only
   for the plain and fully-ordered variants (result counts otherwise). *)
let streaming_bench_file = "bench_streaming.json"

let streaming ctx ~domains =
  Harness.section
    (Printf.sprintf
       "Streaming: sink pipeline vs materializing modifiers (LUBM, domains 1 \
        and %d)"
       domains);
  let store, stats = Lazy.force ctx.lubm in
  let entries =
    Workload.Queries.group1 Workload.Queries.Lubm
    @ [ { Workload.Queries.id = "scan"; group = 1;
          text = "SELECT * WHERE { ?s ?p ?o . }" } ]
  in
  let runs_json = ref [] in
  List.iter
    (fun engine ->
      Harness.subsection (Engine.Bgp_eval.engine_name engine);
      let rows =
        List.concat_map
          (fun (entry : Workload.Queries.entry) ->
            let q = Sparql.Parser.parse entry.Workload.Queries.text in
            let order_key =
              match Sparql.Ast.group_vars q.Sparql.Ast.where with
              | v :: _ -> [ (v, false) ]
              | [] -> []
            in
            let variants =
              [
                ("plain", q, true);
                ("limit10", { q with Sparql.Ast.limit = Some 10 }, false);
                ( "order+limit10",
                  { q with Sparql.Ast.order_by = order_key; limit = Some 10 },
                  (* One sort key does not totally order the rows, so the
                     selected window is only count-deterministic. *)
                  false );
              ]
            in
            List.map
              (fun (variant, query, check_bags) ->
                let run ~streaming ~domains =
                  Harness.run_query_mode ctx.config ~stats store query
                    ~mode:Sparql_uo.Executor.Full ~engine ~streaming ~domains
                in
                let reference_cell, reference_report, reference_pushed =
                  run ~streaming:false ~domains:1
                in
                let cells =
                  List.map
                    (fun (pipeline, streaming, domains) ->
                      let cell, report, pushed = run ~streaming ~domains in
                      let equal =
                        match
                          ( reference_report.Sparql_uo.Executor.bag,
                            report.Sparql_uo.Executor.bag )
                        with
                        | Some b1, Some b2 ->
                            if check_bags then Sparql.Bag.equal_as_bags b1 b2
                            else
                              Sparql.Bag.length b1 = Sparql.Bag.length b2
                        | None, None -> true
                        | _ -> false
                      in
                      runs_json :=
                        Printf.sprintf
                          "    {\"engine\": %S, \"id\": %S, \"variant\": %S, \
                           \"pipeline\": %S, \"domains\": %d, \"ms\": %s, \
                           \"pushed_rows\": %d, \"agrees\": %b}"
                          (Engine.Bgp_eval.engine_name engine)
                          entry.Workload.Queries.id variant pipeline domains
                          (match cell with
                          | Harness.Time ms -> Printf.sprintf "%.3f" ms
                          | Harness.Oom | Harness.Timed_out -> "null")
                          pushed equal
                        :: !runs_json;
                      (cell, pushed, equal))
                    [
                      ("materializing", false, domains);
                      ("streaming", true, 1);
                      ("streaming", true, domains);
                    ]
                in
                runs_json :=
                  Printf.sprintf
                    "    {\"engine\": %S, \"id\": %S, \"variant\": %S, \
                     \"pipeline\": \"materializing\", \"domains\": 1, \"ms\": \
                     %s, \"pushed_rows\": %d, \"agrees\": true}"
                    (Engine.Bgp_eval.engine_name engine)
                    entry.Workload.Queries.id variant
                    (match reference_cell with
                    | Harness.Time ms -> Printf.sprintf "%.3f" ms
                    | Harness.Oom | Harness.Timed_out -> "null")
                    reference_pushed
                  :: !runs_json;
                let stream_d1_cell, stream_d1_pushed, _ = List.nth cells 1 in
                let all_agree =
                  List.for_all (fun (_, _, equal) -> equal) cells
                in
                [
                  entry.Workload.Queries.id;
                  variant;
                  Harness.cell_to_string reference_cell;
                  Harness.cell_to_string stream_d1_cell;
                  Harness.human_int reference_pushed;
                  Harness.human_int stream_d1_pushed;
                  (if all_agree then "yes" else "NO");
                ])
              variants)
          entries
      in
      Harness.print_table
        ~header:
          [
            "Query"; "variant"; "mat d1 (ms)"; "stream d1 (ms)";
            "rows mat"; "rows stream"; "agrees";
          ]
        ~rows)
    [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ];
  let oc = open_out streaming_bench_file in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"streaming\",\n\
    \  \"dataset\": \"LUBM\",\n\
    \  \"mode\": \"full\",\n\
    \  \"runs\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (String.concat ",\n" (List.rev !runs_json));
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" streaming_bench_file

(* ------------------------------------------------------------------ *)
(* Plan cache: compile-once / execute-many amortization.               *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: measures the prepare/execute split. Each LUBM
   group-1 query runs once cold through a fresh session (parse, BE-tree
   construction, Algorithm-4 transformation, pattern compilation, and --
   for the first query -- the statistics scan) and then [cached_runs]
   more times against the session's plan cache; amortized is the mean of
   the cached runs, which pay only evaluation. Result counts of every
   run must match a fresh one-shot [Executor.run]. *)
let plan_cache_bench_file = "bench_plan_cache.json"

let plan_cache ctx =
  Harness.section
    "Plan cache: cold prepare+execute vs cached re-execution (LUBM group 1, \
     full/WCO)";
  let store, _stats = Lazy.force ctx.lubm in
  let session = Sparql_uo.Session.create store in
  let cached_runs = 5 in
  (* Keep only scalars from each run: retaining the result bags across
     runs would grow the major heap and bias later timings. [Gc.major]
     settles the previous run's garbage before the clock starts. *)
  let time_run text =
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    let report =
      Sparql_uo.Session.run ~mode:Sparql_uo.Executor.Full
        ~engine:Engine.Bgp_eval.Wco ~timeout_ms:ctx.config.Harness.timeout_ms
        ~row_budget:ctx.config.Harness.row_budget session text
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let hit =
      match report.Sparql_uo.Executor.cache with
      | Some c -> c.Sparql_uo.Executor.hit
      | None -> false
    in
    (ms, report.Sparql_uo.Executor.result_count, hit)
  in
  let rows_json = ref [] in
  let sum_first = ref 0. and sum_amortized = ref 0. in
  let rows =
    List.map
      (fun (entry : Workload.Queries.entry) ->
        let text = entry.Workload.Queries.text in
        let first_ms, count, _ = time_run text in
        let cached = List.init cached_runs (fun _ -> time_run text) in
        let cached_ms = List.map (fun (ms, _, _) -> ms) cached in
        let amortized =
          List.fold_left ( +. ) 0. cached_ms /. float_of_int cached_runs
        in
        let best = List.fold_left min first_ms cached_ms in
        let oneshot =
          Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full
            ~engine:Engine.Bgp_eval.Wco
            ~timeout_ms:ctx.config.Harness.timeout_ms
            ~row_budget:ctx.config.Harness.row_budget store text
        in
        let counts_equal =
          count = oneshot.Sparql_uo.Executor.result_count
          && List.for_all (fun (_, c, _) -> c = count) cached
        in
        let all_hits = List.for_all (fun (_, _, hit) -> hit) cached in
        sum_first := !sum_first +. first_ms;
        sum_amortized := !sum_amortized +. amortized;
        rows_json :=
          Printf.sprintf
            "    {\"id\": %S, \"first_ms\": %.3f, \"amortized_ms\": %.3f, \
             \"best_ms\": %.3f, \"results\": %s, \"counts_equal\": %b}"
            entry.Workload.Queries.id first_ms amortized best
            (match count with Some n -> string_of_int n | None -> "null")
            counts_equal
          :: !rows_json;
        [
          entry.Workload.Queries.id;
          Printf.sprintf "%.2f" first_ms;
          Printf.sprintf "%.2f" amortized;
          Printf.sprintf "%.2f" best;
          (if amortized > 0. then Printf.sprintf "%.2fx" (first_ms /. amortized)
           else "-");
          (match count with Some n -> Harness.human_int n | None -> "OOM/t.o.");
          (if all_hits && counts_equal then "yes" else "NO");
        ])
      (Workload.Queries.group1 Workload.Queries.Lubm)
  in
  Harness.print_table
    ~header:
      [
        "Query"; "first (ms)"; "amortized (ms)"; "best (ms)"; "speedup";
        "results"; "hit+equal";
      ]
    ~rows;
  Printf.printf
    "aggregate: first %.1f ms, amortized %.1f ms (%.2fx); cache hits=%d \
     misses=%d evictions=%d, store epoch=%d\n%!"
    !sum_first !sum_amortized
    (if !sum_amortized > 0. then !sum_first /. !sum_amortized else 0.)
    (Sparql_uo.Session.hits session)
    (Sparql_uo.Session.misses session)
    (Sparql_uo.Session.evictions session)
    (Sparql_uo.Session.epoch session);
  let oc = open_out plan_cache_bench_file in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"plan_cache\",\n\
    \  \"dataset\": \"LUBM\",\n\
    \  \"mode\": \"full\",\n\
    \  \"engine\": \"wco\",\n\
    \  \"cached_runs\": %d,\n\
    \  \"hits\": %d,\n\
    \  \"misses\": %d,\n\
    \  \"evictions\": %d,\n\
    \  \"epoch\": %d,\n\
    \  \"sum_first_ms\": %.3f,\n\
    \  \"sum_amortized_ms\": %.3f,\n\
    \  \"queries\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    cached_runs
    (Sparql_uo.Session.hits session)
    (Sparql_uo.Session.misses session)
    (Sparql_uo.Session.evictions session)
    (Sparql_uo.Session.epoch session)
    !sum_first !sum_amortized
    (String.concat ",\n" (List.rev !rows_json));
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" plan_cache_bench_file

(* ------------------------------------------------------------------ *)
(* Intersection: the vertex-at-a-time multiway WCO path vs the legacy  *)
(* pattern-at-a-time baseline on star- and path-shaped LUBM queries.   *)
(* ------------------------------------------------------------------ *)

let intersection_bench_file = "bench_intersection.json"

let intersection ctx =
  Harness.section
    "Multiway intersection: vertex-at-a-time vs pattern-at-a-time (LUBM, \
     base/WCO, serial)";
  let store, stats = Lazy.force ctx.lubm in
  let prefixes =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n\
     PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
  in
  (* Star queries: every pattern has ?x as its only variable, so the
     multiway path evaluates the whole BGP as one k-way intersection (the
     rdf:type operands are the large lists galloping is for). The path
     query exercises Extend groups appearing after a two-column Scan. *)
  let queries =
    [
      ( "star-dept",
        "SELECT * WHERE { ?x ub:memberOf \
         <http://www.Department0.University0.edu>. ?x rdf:type \
         ub:UndergraduateStudent. ?x ub:takesCourse \
         <http://www.Department0.University0.edu/Course0>. }" );
      ( "star-alumni",
        "SELECT * WHERE { ?x ub:undergraduateDegreeFrom \
         <http://www.University0.edu>. ?x ub:mastersDegreeFrom \
         <http://www.University0.edu>. ?x rdf:type ub:FullProfessor. }" );
      ( "star-faculty",
        "SELECT * WHERE { ?x ub:worksFor \
         <http://www.Department0.University0.edu>. ?x rdf:type \
         ub:FullProfessor. ?x ub:undergraduateDegreeFrom \
         <http://www.University0.edu>. }" );
      ( "path-advisor",
        "SELECT * WHERE { ?x ub:advisor ?y. ?y ub:teacherOf ?z. ?x \
         ub:takesCourse ?z. }" );
    ]
  in
  let reps = max 3 ctx.config.Harness.repetitions in
  let run_once text ~engine =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base ~engine ~domains:1
      ~row_budget:ctx.config.Harness.row_budget
      ~timeout_ms:ctx.config.Harness.timeout_ms ~stats store (prefixes ^ text)
  in
  let time_path ~multiway text =
    Engine.Wco.set_multiway multiway;
    Fun.protect ~finally:(fun () -> Engine.Wco.set_multiway true) @@ fun () ->
    let best = ref infinity and last = ref None in
    for _ = 1 to reps do
      Gc.major ();
      let report = run_once text ~engine:Engine.Bgp_eval.Wco in
      let ms =
        report.Sparql_uo.Executor.transform_ms
        +. report.Sparql_uo.Executor.exec_ms
      in
      if ms < !best then best := ms;
      last := Some report
    done;
    (!best, Option.get !last)
  in
  let rows_json = ref [] in
  let max_speedup = ref 0. in
  let rows =
    List.map
      (fun (id, text) ->
        let multi_ms, multi_report = time_path ~multiway:true text in
        let legacy_ms, legacy_report = time_path ~multiway:false text in
        let hash_report = run_once text ~engine:Engine.Bgp_eval.Hash_join in
        let count r = r.Sparql_uo.Executor.result_count in
        let counts_equal =
          count multi_report <> None
          && count multi_report = count legacy_report
          && count multi_report = count hash_report
        in
        let speedup = if multi_ms > 0. then legacy_ms /. multi_ms else 0. in
        if String.length id >= 4 && String.sub id 0 4 = "star" then
          max_speedup := Float.max !max_speedup speedup;
        let results =
          match count multi_report with Some n -> n | None -> 0
        in
        let rows_per_sec ms =
          if ms > 0. then float_of_int results /. (ms /. 1000.) else 0.
        in
        let isect =
          match multi_report.Sparql_uo.Executor.eval_stats with
          | Some s -> s.Sparql_uo.Evaluator.isect
          | None ->
              {
                Engine.Intersect.intersections = 0;
                gallop_passes = 0;
                merge_passes = 0;
                domain_values = 0;
                operands = 0;
              }
        in
        rows_json :=
          Printf.sprintf
            "    {\"id\": %S, \"ms_multiway\": %.3f, \"ms_legacy\": %.3f, \
             \"speedup\": %.3f, \"results\": %d, \"counts_equal\": %b, \
             \"rows_per_sec_multiway\": %.1f, \"rows_per_sec_legacy\": %.1f, \
             \"intersections\": %d, \"operands\": %d, \"gallop\": %d, \
             \"merge\": %d, \"domain_values\": %d}"
            id multi_ms legacy_ms speedup results counts_equal
            (rows_per_sec multi_ms) (rows_per_sec legacy_ms)
            isect.Engine.Intersect.intersections
            isect.Engine.Intersect.operands isect.Engine.Intersect.gallop_passes
            isect.Engine.Intersect.merge_passes
            isect.Engine.Intersect.domain_values
          :: !rows_json;
        [
          id;
          Printf.sprintf "%.2f" multi_ms;
          Printf.sprintf "%.2f" legacy_ms;
          Printf.sprintf "%.2fx" speedup;
          Harness.human_int results;
          Printf.sprintf "%d/%d"
            isect.Engine.Intersect.gallop_passes
            isect.Engine.Intersect.merge_passes;
          (if counts_equal then "yes" else "NO");
        ])
      queries
  in
  Harness.print_table
    ~header:
      [
        "Query"; "multiway (ms)"; "legacy (ms)"; "speedup"; "results";
        "gallop/merge"; "counts equal";
      ]
    ~rows;
  Printf.printf "best star-query speedup: %.2fx\n%!" !max_speedup;
  let oc = open_out intersection_bench_file in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"intersection\",\n\
    \  \"dataset\": \"LUBM\",\n\
    \  \"mode\": \"base\",\n\
    \  \"engine\": \"wco\",\n\
    \  \"repetitions\": %d,\n\
    \  \"max_star_speedup\": %.3f,\n\
    \  \"peak_rss_mb\": %.1f,\n\
    \  \"major_collections\": %d,\n\
    \  \"queries\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    reps !max_speedup
    (float_of_int (Harness.peak_rss_kb ()) /. 1024.)
    (Harness.major_collections ())
    (String.concat ",\n" (List.rev !rows_json));
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" intersection_bench_file

(* ------------------------------------------------------------------ *)
(* Robustness: governor overhead and kill latency.                     *)
(* ------------------------------------------------------------------ *)

let robustness_bench_file = "bench_robustness.json"

(* Nearest-rank percentile over a sorted array (small-n, bench-grade). *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float ((p /. 100. *. float_of_int (n - 1)) +. 0.5) in
    sorted.(max 0 (min (n - 1) idx))

let robustness ctx =
  Harness.section
    "Robustness: governed vs ungoverned overhead, and kill latency";
  let store, stats = Lazy.force ctx.lubm in
  (* Best-of-3 floor: the overhead ratio divides two small numbers, so it
     needs more noise suppression than the timing tables do. *)
  let reps = max 3 ctx.config.Harness.repetitions in
  let time_of report =
    report.Sparql_uo.Executor.transform_ms +. report.Sparql_uo.Executor.exec_ms
  in
  (* Overhead: interleaved best-of-N per query over the LUBM workload.
     The governed run arms a finite budget and a deadline generous enough
     never to fire, so the difference is pure accounting cost (the
     ungoverned run still charges its unlimited ticket; what's measured
     is the armed deadline/stride machinery). *)
  Harness.subsection "governed vs ungoverned (full/WCO, best-of-N)";
  let rows_json = ref [] in
  let ratios = ref [] in
  let rows =
    List.map
      (fun (entry : Workload.Queries.entry) ->
        let text = entry.Workload.Queries.text in
        let best_gov = ref infinity and best_ungov = ref infinity in
        let gov_count = ref None and ungov_count = ref None in
        let ok = ref true in
        for _ = 1 to reps do
          let governed =
            Sparql_uo.Executor.run ~row_budget:ctx.config.Harness.row_budget
              ~timeout_ms:ctx.config.Harness.timeout_ms ~stats store text
          in
          let ungoverned = Sparql_uo.Executor.run ~stats store text in
          (match governed.Sparql_uo.Executor.failure with
          | Some _ -> ok := false
          | None ->
              gov_count := governed.Sparql_uo.Executor.result_count;
              best_gov := min !best_gov (time_of governed));
          match ungoverned.Sparql_uo.Executor.failure with
          | Some _ -> ok := false
          | None ->
              ungov_count := ungoverned.Sparql_uo.Executor.result_count;
              best_ungov := min !best_ungov (time_of ungoverned)
        done;
        let agrees = !ok && !gov_count = !ungov_count in
        let ratio =
          if !ok && !best_ungov > 0. then Some (!best_gov /. !best_ungov)
          else None
        in
        Option.iter (fun r -> ratios := r :: !ratios) ratio;
        (* A killed side has no finite best time: null in the json. *)
        let js_ms v =
          if Float.is_finite v then Printf.sprintf "%.3f" v else "null"
        in
        rows_json :=
          Printf.sprintf
            "    {\"id\": %S, \"ungoverned_ms\": %s, \"governed_ms\": %s, \
             \"ratio\": %s, \"agrees\": %b}"
            entry.Workload.Queries.id (js_ms !best_ungov) (js_ms !best_gov)
            (match ratio with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "null")
            agrees
          :: !rows_json;
        let pr_ms v =
          if Float.is_finite v then Printf.sprintf "%.2f" v else "killed"
        in
        [
          entry.Workload.Queries.id;
          pr_ms !best_ungov;
          pr_ms !best_gov;
          (match ratio with
          | Some r -> Printf.sprintf "%.3fx" r
          | None -> "killed");
          (if agrees then "yes" else "NO");
        ])
      (Workload.Queries.all Workload.Queries.Lubm)
  in
  Harness.print_table
    ~header:[ "Query"; "ungoverned (ms)"; "governed (ms)"; "ratio"; "agrees" ]
    ~rows;
  let median_overhead =
    let sorted = Array.of_list !ratios in
    Array.sort compare sorted;
    percentile sorted 50.
  in
  Printf.printf "median overhead: %.4fx (target < 1.03x)\n%!" median_overhead;
  (* Kill latency. budget: time-to-fail with a budget far below the
     query's need; timeout: overshoot past the armed deadline; cancel:
     cancel-call-to-return across domains. The victim is a cross product
     whose completion is impossible at any bench scale. *)
  Harness.subsection "kill latency";
  let heavy = "SELECT * WHERE { ?a ?p ?b . ?x ?q ?y . }" in
  let session = Sparql_uo.Session.create store in
  let taxonomy_ok = ref true in
  let expect kind report want =
    if report.Sparql_uo.Executor.failure <> Some want then begin
      taxonomy_ok := false;
      Printf.printf "  !! %s kill reported %s\n%!" kind
        (match report.Sparql_uo.Executor.failure with
        | Some f -> Sparql_uo.Executor.failure_name f
        | None -> "no failure")
    end
  in
  let iters = if ctx.config.Harness.quick then 5 else 9 in
  let budget_lat =
    Array.init iters (fun _ ->
        let t0 = Unix.gettimeofday () in
        let r = Sparql_uo.Session.run ~row_budget:100_000 session heavy in
        expect "budget" r Sparql_uo.Executor.Out_of_budget;
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let deadline_ms = 25. in
  let timeout_lat =
    Array.init iters (fun _ ->
        let t0 = Unix.gettimeofday () in
        let r = Sparql_uo.Session.run ~timeout_ms:deadline_ms session heavy in
        expect "timeout" r Sparql_uo.Executor.Timeout;
        Float.max 0. (((Unix.gettimeofday () -. t0) *. 1000.) -. deadline_ms))
  in
  let cancel_lat =
    Array.init iters (fun _ ->
        let worker =
          Domain.spawn (fun () ->
              Sparql_uo.Session.run ~row_budget:500_000_000 session heavy)
        in
        while Sparql_uo.Session.active_runs session = 0 do
          Unix.sleepf 0.0005
        done;
        Unix.sleepf 0.005;
        let t0 = Unix.gettimeofday () in
        ignore (Sparql_uo.Session.cancel session);
        let r = Domain.join worker in
        expect "cancel" r Sparql_uo.Executor.Cancelled;
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let stats_of lat =
    let sorted = Array.copy lat in
    Array.sort compare sorted;
    (percentile sorted 50., percentile sorted 95., percentile sorted 100.)
  in
  let kill_rows, kill_json =
    List.split
      (List.map
         (fun (kind, lat) ->
           let p50, p95, mx = stats_of lat in
           ( [
               kind;
               Printf.sprintf "%.2f" p50;
               Printf.sprintf "%.2f" p95;
               Printf.sprintf "%.2f" mx;
             ],
             Printf.sprintf
               "    \"%s\": {\"p50\": %.3f, \"p95\": %.3f, \"max\": %.3f}"
               kind p50 p95 mx ))
         [ ("budget", budget_lat); ("timeout", timeout_lat);
           ("cancel", cancel_lat) ])
  in
  Harness.print_table
    ~header:[ "kill"; "p50 (ms)"; "p95 (ms)"; "max (ms)" ]
    ~rows:kill_rows;
  Printf.printf "failure taxonomy: %s\n%!"
    (if !taxonomy_ok then "all kills reported their own cause"
     else "MISMATCH (see above)");
  let oc = open_out robustness_bench_file in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"robustness\",\n\
    \  \"dataset\": \"LUBM\",\n\
    \  \"mode\": \"full\",\n\
    \  \"engine\": \"wco\",\n\
    \  \"repetitions\": %d,\n\
    \  \"median_overhead\": %.4f,\n\
    \  \"taxonomy_ok\": %b,\n\
    \  \"queries\": [\n\
     %s\n\
    \  ],\n\
    \  \"kill_latency_ms\": {\n\
     %s\n\
    \  }\n\
     }\n"
    reps median_overhead !taxonomy_ok
    (String.concat ",\n" (List.rev !rows_json))
    (String.concat ",\n" kill_json);
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" robustness_bench_file

(* ------------------------------------------------------------------ *)
(* Serving: concurrent readers + a writer over one MVCC session.       *)
(* ------------------------------------------------------------------ *)

let serving_bench_file = "bench_serving.json"

let serving ctx ~domains =
  let readers = max 2 (domains - 1) in
  Harness.section
    (Printf.sprintf
       "Serving: %d reader domains + 1 writer, skewed 95/5 mix (LUBM group 1, \
        full/WCO)"
       readers);
  let store, _stats = Lazy.force ctx.lubm in
  (* A small compaction threshold so the run also exercises delta folds
     (and the plan-cache invalidation they imply) under live readers. *)
  let session = Sparql_uo.Session.create ~compact_threshold:8 store in
  let entries =
    Array.of_list (Workload.Queries.group1 Workload.Queries.Lubm)
  in
  let nq = Array.length entries in
  let run_one qi =
    Sparql_uo.Session.run ~mode:Sparql_uo.Executor.Full
      ~engine:Engine.Bgp_eval.Wco ~row_budget:ctx.config.Harness.row_budget
      ~timeout_ms:ctx.config.Harness.timeout_ms session
      entries.(qi).Workload.Queries.text
  in
  (* Baseline counts from a quiescent pre-pass (this also primes the
     cache, as a server warm-up would). The writer's triples use a
     private predicate, so every concurrent read must keep returning
     exactly these counts — the isolation check of the bench. *)
  let expected =
    Array.init nq (fun qi -> (run_one qi).Sparql_uo.Executor.result_count)
  in
  (* Zipf-ish skew over the query mix: query i drawn with weight
     1/(i+1)^2, so a handful of plans take almost all the traffic. *)
  let weights = Array.init nq (fun i -> 1. /. float_of_int ((i + 1) * (i + 1))) in
  let total_weight = Array.fold_left ( +. ) 0. weights in
  let pick rnd =
    let x = Random.State.float rnd total_weight in
    let rec go i acc =
      if i >= nq - 1 then i
      else
        let acc = acc +. weights.(i) in
        if x < acc then i else go (i + 1) acc
    in
    go 0 0.
  in
  let reader_ops = if ctx.config.Harness.quick then 120 else 500 in
  let finished = Atomic.make 0 in
  let reads_done = Atomic.make 0 in
  let reader idx =
    let rnd = Random.State.make [| 0x5e71; idx |] in
    let lats = Array.make reader_ops 0. in
    let ok = ref true in
    for k = 0 to reader_ops - 1 do
      let qi = pick rnd in
      let t0 = Unix.gettimeofday () in
      let report = run_one qi in
      lats.(k) <- (Unix.gettimeofday () -. t0) *. 1000.;
      if report.Sparql_uo.Executor.result_count <> expected.(qi) then ok := false;
      Atomic.incr reads_done
    done;
    Atomic.incr finished;
    (lats, !ok)
  in
  let serving_term i kind =
    Rdf.Term.iri (Printf.sprintf "http://serving/%s%d" kind i)
  in
  let writer_triple i =
    Rdf.Triple.make (serving_term i "s")
      (Rdf.Term.iri "http://serving/p")
      (serving_term i "o")
  in
  (* The writer paces small transactions (insert, occasionally delete an
     earlier row) off reader progress: it only commits while commits
     stay below 5% of completed reads, which holds the 95/5 op mix
     regardless of how slow or fast the read leg happens to be. *)
  let writer () =
    let i = ref 0 in
    let commits = ref 0 in
    while Atomic.get finished < readers do
      if !commits * 19 < Atomic.get reads_done then begin
        incr i;
        let txn = Sparql_uo.Session.begin_txn session in
        Rdf_store.Mvcc.insert txn (writer_triple !i);
        if !i mod 3 = 0 then Rdf_store.Mvcc.delete txn (writer_triple (!i - 1));
        Sparql_uo.Session.commit session txn;
        incr commits
      end
      else Unix.sleepf 0.001
    done;
    !commits
  in
  let base_epoch0 = Rdf_store.Triple_store.epoch (Sparql_uo.Session.store session) in
  let t0 = Unix.gettimeofday () in
  let writer_domain = Domain.spawn writer in
  let reader_domains = List.init readers (fun i -> Domain.spawn (fun () -> reader i)) in
  let results = List.map Domain.join reader_domains in
  let commits = Domain.join writer_domain in
  let wall_s = Unix.gettimeofday () -. t0 in
  let counts_ok = List.for_all snd results in
  let all_lats = Array.concat (List.map fst results) in
  Array.sort compare all_lats;
  let total_reads = Array.length all_lats in
  let qps = float_of_int total_reads /. wall_s in
  let p50 = percentile all_lats 50.
  and p95 = percentile all_lats 95.
  and p99 = percentile all_lats 99. in
  let hits = Sparql_uo.Session.hits session
  and misses = Sparql_uo.Session.misses session in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  let write_fraction =
    float_of_int commits /. float_of_int (max 1 (commits + total_reads))
  in
  let compacted =
    Rdf_store.Triple_store.epoch (Sparql_uo.Session.store session)
    <> base_epoch0
  in
  Harness.print_table
    ~header:
      [ "readers"; "reads"; "commits"; "qps"; "p50 (ms)"; "p95 (ms)";
        "p99 (ms)" ]
    ~rows:
      [
        [
          string_of_int readers;
          string_of_int total_reads;
          string_of_int commits;
          Printf.sprintf "%.0f" qps;
          Printf.sprintf "%.2f" p50;
          Printf.sprintf "%.2f" p95;
          Printf.sprintf "%.2f" p99;
        ];
      ];
  Printf.printf
    "cache: hits=%d misses=%d (hit rate %.3f, target > 0.9); write fraction \
     %.3f; counts %s; compaction %s\n%!"
    hits misses hit_rate write_fraction
    (if counts_ok then "stable under writes" else "DIVERGED")
    (if compacted then "occurred" else "not reached");
  let oc = open_out serving_bench_file in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"serving\",\n\
    \  \"dataset\": \"LUBM\",\n\
    \  \"mode\": \"full\",\n\
    \  \"engine\": \"wco\",\n\
    \  \"readers\": %d,\n\
    \  \"reader_ops\": %d,\n\
    \  \"total_reads\": %d,\n\
    \  \"writer_commits\": %d,\n\
    \  \"write_fraction\": %.4f,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"qps\": %.1f,\n\
    \  \"p50_ms\": %.3f,\n\
    \  \"p95_ms\": %.3f,\n\
    \  \"p99_ms\": %.3f,\n\
    \  \"hits\": %d,\n\
    \  \"misses\": %d,\n\
    \  \"hit_rate\": %.4f,\n\
    \  \"counts_ok\": %b,\n\
    \  \"compacted\": %b,\n\
    \  \"peak_rss_mb\": %.1f,\n\
    \  \"major_collections\": %d\n\
     }\n"
    readers reader_ops total_reads commits write_fraction wall_s qps p50 p95
    p99 hits misses hit_rate counts_ok compacted
    (float_of_int (Harness.peak_rss_kb ()) /. 1024.)
    (Harness.major_collections ());
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" serving_bench_file

(* ------------------------------------------------------------------ *)
(* Durability: WAL commit latency per sync policy, group commit,       *)
(* recovery time.                                                      *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: measures what write-ahead logging costs the
   commit path and what recovery costs a restart. Per sync policy
   (in-memory baseline, never, interval:5ms, every-commit): p50/p95/p99
   single-triple commit latency and fsync accounting. Then group commit
   under 4 concurrent committer domains (batch sizes, syncs vs
   commits), and recovery: reopening the every-commit directory replays
   its full log (CI gates on replayed counts and on the recovered
   store matching the committed one), and a checkpointed directory
   recovers with zero replay. *)
let durability_bench_file = "bench_durability.json"

let durability ctx =
  Harness.section
    "Durability: commit latency per sync policy, group commit, recovery";
  let n = if ctx.config.Harness.quick then 200 else 1000 in
  let dur_term i kind =
    Rdf.Term.iri (Printf.sprintf "http://dur/%s%d" kind i)
  in
  let dur_triple i =
    Rdf.Triple.make (dur_term i "s") (Rdf.Term.iri "http://dur/p")
      (dur_term i "o")
  in
  let commit_one t i =
    let txn = Rdf_store.Mvcc.begin_txn t in
    Rdf_store.Mvcc.insert txn (dur_triple i);
    ignore (Rdf_store.Mvcc.commit txn)
  in
  let fresh_dir tag =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "spuo_bench_dur_%d_%s" (Unix.getpid ()) tag)
    in
    let rec rm_rf path =
      match Sys.is_directory path with
      | true ->
          Array.iter
            (fun f -> rm_rf (Filename.concat path f))
            (Sys.readdir path);
          Unix.rmdir path
      | false -> Sys.remove path
      | exception Sys_error _ -> ()
    in
    rm_rf d;
    d
  in
  (* One policy leg: n sequential single-triple commits, per-commit
     latency distribution plus the WAL's fsync accounting. *)
  let run_policy (name, mk) =
    let t = mk () in
    let lats = Array.make n 0. in
    for i = 0 to n - 1 do
      let t0 = Unix.gettimeofday () in
      commit_one t i;
      lats.(i) <- (Unix.gettimeofday () -. t0) *. 1000.
    done;
    Option.iter Rdf_store.Wal.sync (Rdf_store.Mvcc.wal t);
    Array.sort compare lats;
    let stats =
      match Rdf_store.Mvcc.wal t with
      | Some w -> Rdf_store.Wal.stats w
      | None ->
          {
            Rdf_store.Wal.commits = n; syncs = 0; batched_commits = 0;
            max_batch = 0; checkpoints = 0; appended_bytes = 0; segment = 0;
          }
    in
    (name, t, lats, stats)
  in
  let every_commit_dir = fresh_dir "every_commit" in
  let legs =
    List.map run_policy
      [
        ( "memory",
          fun () -> Rdf_store.Mvcc.create (Rdf_store.Triple_store.of_triples []) );
        ( "never",
          fun () ->
            fst (Rdf_store.Mvcc.open_dir ~policy:Rdf_store.Wal.Never
                   (fresh_dir "never")) );
        ( "interval_5ms",
          fun () ->
            fst
              (Rdf_store.Mvcc.open_dir
                 ~policy:(Rdf_store.Wal.Interval 0.005)
                 (fresh_dir "interval")) );
        ( "every_commit",
          fun () ->
            fst
              (Rdf_store.Mvcc.open_dir ~policy:Rdf_store.Wal.Every_commit
                 every_commit_dir) );
      ]
  in
  Harness.print_table
    ~header:
      [ "policy"; "commits"; "p50 (ms)"; "p95 (ms)"; "p99 (ms)"; "fsyncs";
        "max batch" ]
    ~rows:
      (List.map
         (fun (name, _t, lats, s) ->
           [
             name;
             string_of_int s.Rdf_store.Wal.commits;
             Printf.sprintf "%.4f" (percentile lats 50.);
             Printf.sprintf "%.4f" (percentile lats 95.);
             Printf.sprintf "%.4f" (percentile lats 99.);
             string_of_int s.Rdf_store.Wal.syncs;
             string_of_int s.Rdf_store.Wal.max_batch;
           ])
         legs);
  let p50_of name =
    let _, _, lats, _ = List.find (fun (n', _, _, _) -> n' = name) legs in
    percentile lats 50.
  in
  let overhead =
    p50_of "every_commit" /. Float.max 1e-6 (p50_of "memory")
  in
  Printf.printf
    "every-commit p50 overhead vs in-memory: %.1fx (the fsync; never-policy \
     %.1fx is the append)\n%!"
    overhead
    (p50_of "never" /. Float.max 1e-6 (p50_of "memory"));
  (* Group commit: 4 committer domains race under every-commit; one
     leader's fsync covers whole batches. *)
  let gc_dir = fresh_dir "group" in
  let gc, _ =
    Rdf_store.Mvcc.open_dir ~policy:Rdf_store.Wal.Every_commit gc_dir
  in
  let per_domain = n / 4 in
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              commit_one gc ((d * n) + i)
            done))
  in
  List.iter Domain.join workers;
  let gc_wall_s = Unix.gettimeofday () -. t0 in
  let gs =
    match Rdf_store.Mvcc.wal gc with
    | Some w -> Rdf_store.Wal.stats w
    | None -> assert false
  in
  Printf.printf
    "group commit (4 domains, %d commits): %.0f commits/s, %d fsyncs for %d \
     commits (max batch %d)\n%!"
    gs.Rdf_store.Wal.commits
    (float_of_int gs.Rdf_store.Wal.commits /. gc_wall_s)
    gs.Rdf_store.Wal.syncs gs.Rdf_store.Wal.batched_commits
    gs.Rdf_store.Wal.max_batch;
  (* Recovery: reopen the every-commit directory — its whole log
     replays — then checkpoint and reopen again for the zero-replay
     floor. The recovered store must hold exactly the committed
     triples. *)
  let committed_size =
    let _, t, _, _ =
      List.find (fun (n', _, _, _) -> n' = "every_commit") legs
    in
    Rdf_store.Snapshot.size (Rdf_store.Mvcc.snapshot t)
  in
  let recovered, recovery = Rdf_store.Mvcc.open_dir every_commit_dir in
  let recovered_size =
    Rdf_store.Snapshot.size (Rdf_store.Mvcc.snapshot recovered)
  in
  let counts_ok = recovered_size = committed_size && recovered_size = n in
  ignore (Rdf_store.Mvcc.checkpoint recovered);
  let _, recovery_ckpt = Rdf_store.Mvcc.open_dir every_commit_dir in
  Harness.print_table
    ~header:
      [ "recovery"; "replayed txns"; "replayed ops"; "time (ms)";
        "us/txn" ]
    ~rows:
      [
        [
          "full log";
          string_of_int recovery.Rdf_store.Wal.replayed_txns;
          string_of_int recovery.Rdf_store.Wal.replayed_ops;
          Printf.sprintf "%.2f" recovery.Rdf_store.Wal.recovery_ms;
          Printf.sprintf "%.2f"
            (1000. *. recovery.Rdf_store.Wal.recovery_ms
            /. float_of_int (max 1 recovery.Rdf_store.Wal.replayed_txns));
        ];
        [
          "after checkpoint";
          string_of_int recovery_ckpt.Rdf_store.Wal.replayed_txns;
          string_of_int recovery_ckpt.Rdf_store.Wal.replayed_ops;
          Printf.sprintf "%.2f" recovery_ckpt.Rdf_store.Wal.recovery_ms;
          "-";
        ];
      ];
  Printf.printf "recovered store: %d triples (committed %d) — %s\n%!"
    recovered_size committed_size
    (if counts_ok then "exact" else "DIVERGED");
  let oc = open_out durability_bench_file in
  let policy_json (name, _t, lats, s) =
    Printf.sprintf
      "    { \"policy\": %S, \"commits\": %d, \"p50_ms\": %.5f, \"p95_ms\": \
       %.5f, \"p99_ms\": %.5f, \"fsyncs\": %d, \"batched_commits\": %d, \
       \"max_batch\": %d }"
      name s.Rdf_store.Wal.commits (percentile lats 50.)
      (percentile lats 95.) (percentile lats 99.) s.Rdf_store.Wal.syncs
      s.Rdf_store.Wal.batched_commits s.Rdf_store.Wal.max_batch
  in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"durability\",\n\
    \  \"txns\": %d,\n\
    \  \"policies\": [\n%s\n  ],\n\
    \  \"every_commit_overhead_x\": %.2f,\n\
    \  \"group_commit\": { \"domains\": 4, \"commits\": %d, \"wall_s\": \
     %.3f, \"commits_per_s\": %.1f, \"fsyncs\": %d, \"batched_commits\": \
     %d, \"max_batch\": %d },\n\
    \  \"recovery\": { \"replayed_txns\": %d, \"replayed_ops\": %d, \
     \"recovery_ms\": %.3f, \"truncated_bytes\": %d },\n\
    \  \"recovery_after_checkpoint\": { \"replayed_txns\": %d, \
     \"recovery_ms\": %.3f },\n\
    \  \"counts_ok\": %b,\n\
    \  \"peak_rss_mb\": %.1f\n\
     }\n"
    n
    (String.concat ",\n" (List.map policy_json legs))
    overhead gs.Rdf_store.Wal.commits gc_wall_s
    (float_of_int gs.Rdf_store.Wal.commits /. gc_wall_s)
    gs.Rdf_store.Wal.syncs gs.Rdf_store.Wal.batched_commits
    gs.Rdf_store.Wal.max_batch recovery.Rdf_store.Wal.replayed_txns
    recovery.Rdf_store.Wal.replayed_ops recovery.Rdf_store.Wal.recovery_ms
    recovery.Rdf_store.Wal.truncated_bytes
    recovery_ckpt.Rdf_store.Wal.replayed_txns
    recovery_ckpt.Rdf_store.Wal.recovery_ms counts_ok
    (float_of_int (Harness.peak_rss_kb ()) /. 1024.);
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" durability_bench_file

(* ------------------------------------------------------------------ *)
(* Scale: off-heap compressed columns — bulk load, memory, latency.    *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: measures the off-heap columnar storage layer at
   the old and the new default LUBM scale. Per scale: parallel bulk-load
   throughput, off-heap bytes/triple for the compressed (delta) and
   uncompressed (raw) representations against the previous OCaml-heap
   baseline, peak RSS, star/path query latencies per engine on the
   compressed build, and count equality compressed-vs-raw across both
   engines (the correctness gate CI asserts on). *)
let scale_bench_file = "bench_scale.json"

(* The pre-columnar representation held each index as OCaml int arrays:
   3 key words per triple per 3 effective payload arrays — 9 words,
   72 bytes/triple across the six permutations. *)
let heap_baseline_bytes_per_triple = 72.

let scale ctx ~domains =
  Harness.section
    (Printf.sprintf
       "Scale: off-heap compressed columns (bulk load over %d domain(s))"
       domains);
  if domains > 1 then
    Option.iter Engine.Pool.install_bulk_runner
      (Engine.Pool.ensure ~num_domains:domains);
  let scales =
    if ctx.config.Harness.quick then [ (1, 0.5); (4, 0.5) ]
    else [ (13, 1.0); (130, 1.0) ]
  in
  let prefixes =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n\
     PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
  in
  (* One multiway star and one cyclic path query; their constants exist
     at every scale (University0 floors). *)
  let queries =
    [
      ( "star-alumni",
        "SELECT * WHERE { ?x ub:undergraduateDegreeFrom \
         <http://www.University0.edu>. ?x ub:mastersDegreeFrom \
         <http://www.University0.edu>. ?x rdf:type ub:FullProfessor. }" );
      ( "path-advisor",
        "SELECT * WHERE { ?x ub:advisor ?y. ?y ub:teacherOf ?z. ?x \
         ub:takesCourse ?z. }" );
    ]
  in
  let gc0 = Harness.major_collections () in
  let scale_jsons =
    List.map
      (fun (universities, density) ->
        let config = { Workload.Lubm.default with universities; density } in
        let produce f = Workload.Lubm.iter_triples config ~f in
        let delta_store =
          Rdf_store.Triple_store.of_iter ~mode:Rdf_store.Column.Delta produce
        in
        let ls = Rdf_store.Triple_store.load_stats delta_store in
        let n = Rdf_store.Triple_store.size delta_store in
        let delta_bytes = Rdf_store.Triple_store.mem_bytes delta_store in
        let per_triple bytes =
          if n > 0 then float_of_int bytes /. float_of_int n else 0.
        in
        (* The uncompressed build exists only long enough to compare
           memory and result counts; it is dropped before the latency
           runs so peak RSS reflects one store per scale plus the
           comparison window. *)
        let raw_bytes, counts_equal =
          let raw_store =
            Rdf_store.Triple_store.of_iter ~mode:Rdf_store.Column.Raw produce
          in
          let equal =
            List.for_all
              (fun engine ->
                List.for_all
                  (fun (_, text) ->
                    let count store =
                      (Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base
                         ~engine store (prefixes ^ text))
                        .Sparql_uo.Executor.result_count
                    in
                    let cd = count delta_store and cr = count raw_store in
                    cd <> None && cd = cr)
                  queries)
              [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ]
          in
          (Rdf_store.Triple_store.mem_bytes raw_store, equal)
        in
        let stats = Rdf_store.Stats.cached delta_store in
        let query_jsons =
          List.concat_map
            (fun engine ->
              List.map
                (fun (id, text) ->
                  let best = ref infinity and results = ref 0 in
                  for _ = 1 to max 2 ctx.config.Harness.repetitions do
                    let report =
                      Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base
                        ~engine ~stats delta_store (prefixes ^ text)
                    in
                    let ms =
                      report.Sparql_uo.Executor.transform_ms
                      +. report.Sparql_uo.Executor.exec_ms
                    in
                    if ms < !best then best := ms;
                    results :=
                      Option.value ~default:0
                        report.Sparql_uo.Executor.result_count
                  done;
                  Printf.sprintf
                    "      {\"id\": %S, \"engine\": %S, \"ms\": %.3f, \
                     \"results\": %d}"
                    id
                    (Engine.Bgp_eval.engine_name engine)
                    !best !results)
                queries)
            [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ]
        in
        let ratio = per_triple delta_bytes /. heap_baseline_bytes_per_triple in
        Harness.print_table
          ~header:
            [ "universities"; "triples"; "load (s)"; "triples/s"; "tasks";
              "B/triple delta"; "B/triple raw"; "vs heap"; "counts equal" ]
          ~rows:
            [
              [
                string_of_int universities;
                Harness.human_int n;
                Printf.sprintf "%.1f" ls.Rdf_store.Triple_store.elapsed_s;
                Harness.human_int
                  (int_of_float ls.Rdf_store.Triple_store.triples_per_sec);
                string_of_int ls.Rdf_store.Triple_store.parallel_tasks;
                Printf.sprintf "%.1f" (per_triple delta_bytes);
                Printf.sprintf "%.1f" (per_triple raw_bytes);
                Printf.sprintf "%.0f%%" (100. *. ratio);
                (if counts_equal then "yes" else "NO");
              ];
            ];
        Printf.sprintf
          "    {\"universities\": %d, \"density\": %.2f, \"triples\": %d,\n\
          \     \"load_s\": %.3f, \"triples_per_sec\": %.1f, \
           \"parallel_tasks\": %d,\n\
          \     \"mem_bytes_delta\": %d, \"mem_bytes_raw\": %d,\n\
          \     \"bytes_per_triple_delta\": %.2f, \"bytes_per_triple_raw\": \
           %.2f,\n\
          \     \"ratio_vs_heap\": %.4f, \"counts_equal\": %b,\n\
          \     \"peak_rss_mb\": %.1f,\n\
          \     \"queries\": [\n%s\n     ]}"
          universities density n ls.Rdf_store.Triple_store.elapsed_s
          ls.Rdf_store.Triple_store.triples_per_sec
          ls.Rdf_store.Triple_store.parallel_tasks delta_bytes raw_bytes
          (per_triple delta_bytes) (per_triple raw_bytes) ratio counts_equal
          (float_of_int (Harness.peak_rss_kb ()) /. 1024.)
          (String.concat ",\n" query_jsons))
      scales
  in
  let oc = open_out scale_bench_file in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"scale\",\n\
    \  \"dataset\": \"LUBM\",\n\
    \  \"domains\": %d,\n\
    \  \"heap_baseline_bytes_per_triple\": %.1f,\n\
    \  \"peak_rss_mb\": %.1f,\n\
    \  \"major_collections\": %d,\n\
    \  \"scales\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    domains heap_baseline_bytes_per_triple
    (float_of_int (Harness.peak_rss_kb ()) /. 1024.)
    (Harness.major_collections () - gc0)
    (String.concat ",\n" scale_jsons);
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" scale_bench_file

(* ------------------------------------------------------------------ *)
(* Adaptive execution: static full vs the adaptive layer.              *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: measures the adaptive execution layer against
   the paper's static Full configuration on every OPTIONAL-bearing
   benchmark query (full/WCO, serial). Both variants get one untimed
   warm-up and are then timed best-of-N; the adaptive warm-up also
   primes a per-query [Feedback.t] — the cross-execution learning a
   session's plan cache provides. Result counts must match per query.
   The count-pushdown subsection times the streaming ungrouped-aggregate
   sink against the materializing pipeline. *)
let adaptive_bench_file = "bench_adaptive.json"

let adaptive ctx =
  Harness.section
    "Adaptive execution: sideways prefilters + feedback vs static (full/WCO, \
     serial)";
  let contains_optional text =
    let n = String.length text and pat = "OPTIONAL" in
    let rec go i =
      i + String.length pat <= n
      && (String.sub text i (String.length pat) = pat || go (i + 1))
    in
    go 0
  in
  let run_once ?feedback ~adaptive ~stats store text =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full
      ~engine:Engine.Bgp_eval.Wco ~adaptive ?feedback
      ~row_budget:ctx.config.Harness.row_budget
      ~timeout_ms:ctx.config.Harness.timeout_ms ~stats store text
  in
  (* One untimed warm-up per side (the adaptive one primes feedback),
     then best-of-N on plan + execution time with the static and
     adaptive repetitions interleaved: back-to-back pairs cancel the
     slow drift of a shared host, which a
     time-all-of-one-then-all-of-the-other loop folds straight into the
     comparison. *)
  let time_pair ~feedback ~stats store text =
    let note (best, last) (report : Sparql_uo.Executor.report) =
      last := Some report;
      match report.Sparql_uo.Executor.failure with
      | Some _ -> ()
      | None ->
          let ms =
            report.Sparql_uo.Executor.transform_ms
            +. report.Sparql_uo.Executor.exec_ms
          in
          if !best = None || ms < Option.get !best then best := Some ms
    in
    let s_cell = (ref None, ref None) and a_cell = (ref None, ref None) in
    ignore (run_once ~adaptive:false ~stats store text);
    ignore (run_once ~feedback ~adaptive:true ~stats store text);
    for _ = 1 to max 2 ctx.config.Harness.repetitions do
      Gc.major ();
      note s_cell (run_once ~adaptive:false ~stats store text);
      Gc.major ();
      note a_cell (run_once ~feedback ~adaptive:true ~stats store text)
    done;
    let finish (best, last) = (!best, Option.get !last) in
    (finish s_cell, finish a_cell)
  in
  let query_jsons = ref [] in
  let static_total = ref 0. and adaptive_total = ref 0. in
  let counts_ok = ref true in
  List.iter
    (fun ds ->
      Harness.subsection (Workload.Queries.dataset_name ds);
      let store, stats = dataset_of ctx ds in
      let rows =
        List.filter_map
          (fun (entry : Workload.Queries.entry) ->
            if not (contains_optional entry.Workload.Queries.text) then None
            else begin
              let feedback = Sparql_uo.Feedback.create () in
              let (static_ms, static_report), (adaptive_ms, adaptive_report) =
                time_pair ~feedback ~stats store entry.Workload.Queries.text
              in
              (* Counts are comparable only when both runs finished; a
                 run killed by the quick-mode budget/timeout has nothing
                 to compare (and is not a divergence). *)
              let comparable, counts_equal =
                match
                  ( static_report.Sparql_uo.Executor.result_count,
                    adaptive_report.Sparql_uo.Executor.result_count )
                with
                | Some n1, Some n2 -> (true, n1 = n2)
                | _ -> (false, true)
              in
              if not counts_equal then counts_ok := false;
              let replans, checks, rejects, pruned =
                match adaptive_report.Sparql_uo.Executor.eval_stats with
                | Some s ->
                    let pf = s.Sparql_uo.Evaluator.prefilter in
                    ( s.Sparql_uo.Evaluator.replans,
                      pf.Engine.Candidates.checks,
                      pf.Engine.Candidates.rejects,
                      s.Sparql_uo.Evaluator.pruned_bgps )
                | None -> (0, 0, 0, 0)
              in
              let speedup =
                match (static_ms, adaptive_ms) with
                | Some s, Some a when a > 0. ->
                    static_total := !static_total +. s;
                    adaptive_total := !adaptive_total +. a;
                    Some (s /. a)
                | _ -> None
              in
              query_jsons :=
                Printf.sprintf
                  "    {\"dataset\": %S, \"id\": %S, \"static_ms\": %s, \
                   \"adaptive_ms\": %s, \"speedup\": %s, \"counts_equal\": \
                   %b, \"replans\": %d, \"prefilter_checks\": %d, \
                   \"prefilter_rejects\": %d, \"pruned_bgps\": %d, \
                   \"feedback_entries\": %d}"
                  (Workload.Queries.dataset_name ds)
                  entry.Workload.Queries.id
                  (match static_ms with
                  | Some ms -> Printf.sprintf "%.3f" ms
                  | None -> "null")
                  (match adaptive_ms with
                  | Some ms -> Printf.sprintf "%.3f" ms
                  | None -> "null")
                  (match speedup with
                  | Some x -> Printf.sprintf "%.3f" x
                  | None -> "null")
                  counts_equal replans checks rejects pruned
                  (Sparql_uo.Feedback.length feedback)
                :: !query_jsons;
              Some
                [
                  entry.Workload.Queries.id;
                  (match static_ms with
                  | Some ms -> Printf.sprintf "%.1f" ms
                  | None -> "limit");
                  (match adaptive_ms with
                  | Some ms -> Printf.sprintf "%.1f" ms
                  | None -> "limit");
                  (match speedup with
                  | Some x -> Printf.sprintf "%.2fx" x
                  | None -> "-");
                  Printf.sprintf "%d/%d" rejects checks;
                  string_of_int replans;
                  (if not comparable then "n/a"
                   else if counts_equal then "yes"
                   else "NO");
                ]
            end)
          (Workload.Queries.all ds)
      in
      Harness.print_table
        ~header:
          [ "Query"; "static (ms)"; "adaptive (ms)"; "speedup";
            "prefilter rej/chk"; "re-plans"; "counts equal" ]
        ~rows)
    [ Workload.Queries.Lubm; Workload.Queries.Dbpedia ];
  let overall =
    if !adaptive_total > 0. then !static_total /. !adaptive_total else 1.
  in
  (* Streaming ungrouped-aggregate pushdown: COUNT without GROUP BY
     through the terminal aggregate sink vs materialize-then-group. *)
  Harness.subsection "ungrouped-aggregate pushdown (LUBM)";
  let store, stats = Lazy.force ctx.lubm in
  let prefixes =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
  in
  let count_queries =
    [
      ( "count-takes",
        "SELECT (COUNT(*) AS ?n) WHERE { ?x ub:takesCourse ?c }" );
      ( "count-distinct",
        "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?x ub:takesCourse ?c }" );
      ( "count-optional",
        "SELECT (COUNT(*) AS ?n) (COUNT(?e) AS ?ne) WHERE { ?x \
         ub:takesCourse ?c OPTIONAL { ?x ub:emailAddress ?e } }" );
    ]
  in
  let pushdown_jsons = ref [] in
  let mat_total = ref 0. and stream_total = ref 0. in
  let pushdown_rows =
    List.map
      (fun (id, body) ->
        let text = prefixes ^ body in
        (* Interleaved best-of-N for the same drift-cancelling reason as
           the static/adaptive pairs above. *)
        let time_once (best, last) ~streaming =
          Gc.major ();
          let report =
            Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full ~streaming
              ~stats store text
          in
          last := Some report;
          let ms =
            report.Sparql_uo.Executor.transform_ms
            +. report.Sparql_uo.Executor.exec_ms
          in
          if ms < !best then best := ms
        in
        let m_cell = (ref infinity, ref None)
        and s_cell = (ref infinity, ref None) in
        for _ = 1 to max 2 ctx.config.Harness.repetitions do
          time_once m_cell ~streaming:false;
          time_once s_cell ~streaming:true
        done;
        let finish (best, last) = (!best, Option.get !last) in
        let mat_ms, mat_report = finish m_cell in
        let stream_ms, stream_report = finish s_cell in
        let equal =
          match
            ( mat_report.Sparql_uo.Executor.bag,
              stream_report.Sparql_uo.Executor.bag )
          with
          | Some b1, Some b2 -> Sparql.Bag.equal_as_bags b1 b2
          | _ -> false
        in
        if not equal then counts_ok := false;
        mat_total := !mat_total +. mat_ms;
        stream_total := !stream_total +. stream_ms;
        pushdown_jsons :=
          Printf.sprintf
            "    {\"id\": %S, \"materialized_ms\": %.3f, \"streaming_ms\": \
             %.3f, \"speedup\": %.3f, \"equal\": %b}"
            id mat_ms stream_ms (mat_ms /. stream_ms) equal
          :: !pushdown_jsons;
        [
          id;
          Printf.sprintf "%.1f" mat_ms;
          Printf.sprintf "%.1f" stream_ms;
          Printf.sprintf "%.2fx" (mat_ms /. stream_ms);
          (if equal then "yes" else "NO");
        ])
      count_queries
  in
  Harness.print_table
    ~header:
      [ "Query"; "materialized (ms)"; "streaming (ms)"; "speedup"; "equal" ]
    ~rows:pushdown_rows;
  let pushdown_overall =
    if !stream_total > 0. then !mat_total /. !stream_total else 1.
  in
  Printf.printf
    "\noverall adaptive speedup: %.2fx; count-pushdown speedup: %.2fx; \
     counts %s\n"
    overall pushdown_overall
    (if !counts_ok then "equal" else "DIVERGED");
  let oc = open_out adaptive_bench_file in
  Printf.fprintf oc
    "{\n\
    \  \"section\": \"adaptive\",\n\
    \  \"mode\": \"full\",\n\
    \  \"engine\": \"wco\",\n\
    \  \"domains\": 1,\n\
    \  \"overall_speedup\": %.4f,\n\
    \  \"pushdown_speedup\": %.4f,\n\
    \  \"counts_ok\": %b,\n\
    \  \"queries\": [\n\
     %s\n\
    \  ],\n\
    \  \"count_pushdown\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    overall pushdown_overall !counts_ok
    (String.concat ",\n" (List.rev !query_jsons))
    (String.concat ",\n" (List.rev !pushdown_jsons));
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" adaptive_bench_file

(* ------------------------------------------------------------------ *)

let run_sections quick only domains =
  let config = if quick then Harness.quick_config else Harness.default_config in
  let ctx =
    {
      config;
      lubm =
        lazy
          (build_store "LUBM" (fun f ->
               Workload.Lubm.iter_triples config.Harness.lubm ~f));
      dbpedia =
        lazy
          (build_store "DBpedia-like" (fun f ->
               List.iter f
                 (Workload.Dbpedia_gen.generate config.Harness.dbpedia)));
    }
  in
  let selected = if only = [] then all_sections else only in
  let dispatch = function
    | "table2" -> table2 ctx
    | "table3" -> table3 ctx
    | "table4" -> table4 ctx
    | "fig3" -> fig3 ctx
    | "fig10" -> fig10 ctx
    | "fig11" -> fig11 ctx
    | "fig12" -> fig12 ctx
    | "fig13" -> fig13 ctx
    | "ablation" -> ablation ctx
    | "micro" -> micro ctx
    | "parallel" -> parallel ctx ~domains
    | "streaming" -> streaming ctx ~domains
    | "plan_cache" -> plan_cache ctx
    | "intersection" -> intersection ctx
    | "robustness" -> robustness ctx
    | "serving" -> serving ctx ~domains
    | "durability" -> durability ctx
    | "scale" -> scale ctx ~domains
    | "adaptive" -> adaptive ctx
    | other -> Printf.eprintf "unknown section %S (skipped)\n" other
  in
  Printf.printf "SPARQL-UO reproduction bench (%s mode): %s\n%!"
    (if quick then "quick" else "full")
    (String.concat ", " selected);
  List.iter dispatch selected

let () =
  let quick = ref false in
  let only = ref [] in
  let domains = ref 4 in
  let spec =
    [
      ("--quick", Arg.Set quick, " reduced-scale smoke run");
      ( "--only",
        Arg.String (fun s -> only := !only @ [ s ]),
        "SECTION run one section (repeatable): "
        ^ String.concat "|" all_sections );
      ( "--domains",
        Arg.Set_int domains,
        "N domain count for the parallel section (default 4)" );
      ( "--morsel-size",
        Arg.Int Engine.Pool.set_morsel_size,
        "N indices per morsel for the work-stealing scheduler (default "
        ^ string_of_int Engine.Pool.default_morsel_size
        ^ ")" );
    ]
  in
  Arg.parse spec
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "SPARQL-UO benchmark harness";
  run_sections !quick !only !domains
