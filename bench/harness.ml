(* Shared infrastructure for the benchmark harness: run configuration,
   repeated timed execution with best-of-N aggregation, and plain-text
   table rendering that mirrors the paper's tables and figure series. *)

type config = {
  quick : bool;  (** reduced scale for smoke runs *)
  repetitions : int;  (** timings are best-of-N *)
  row_budget : int;  (** the paper's memory-limit analogue *)
  timeout_ms : float;  (** the paper's query-timeout analogue *)
  domains : int;  (** domains per query evaluation (1 = serial) *)
  lubm : Workload.Lubm.config;
  dbpedia : Workload.Dbpedia_gen.config;
  scaling_universities : int list;  (** Figure 12's dataset ladder *)
}

let default_config =
  {
    quick = false;
    repetitions = 2;
    row_budget = 10_000_000;
    timeout_ms = 20_000.;
    domains = 1;
    lubm = Workload.Lubm.default;
    dbpedia = Workload.Dbpedia_gen.default;
    scaling_universities = [ 3; 6; 9; 13 ];
  }

let quick_config =
  {
    quick = true;
    repetitions = 1;
    row_budget = 2_000_000;
    timeout_ms = 5_000.;
    domains = 1;
    lubm = { Workload.Lubm.default with universities = 2; density = 0.5 };
    dbpedia = Workload.Dbpedia_gen.tiny;
    scaling_universities = [ 1; 2 ];
  }

let section title =
  let line = String.make 78 '=' in
  Printf.printf "\n%s\n== %s\n%s\n%!" line title line

let subsection title = Printf.printf "\n-- %s --\n%!" title

(* A cell of a timing table: milliseconds, or a limit marker (the paper
   renders OOM as an absent bar and timeouts as capped bars). *)
type cell = Time of float | Oom | Timed_out

let cell_to_string = function
  | Time ms -> Printf.sprintf "%.1f" ms
  | Oom -> "OOM"
  | Timed_out -> "timeout"

(* Best-of-N execution of one (mode, engine) configuration. Returns the
   cell plus the last report (for result counts and join spaces). *)
let run_mode config ~stats store entry ~mode ~engine =
  let best = ref None in
  let last_report = ref None in
  for _ = 1 to config.repetitions do
    let report =
      Sparql_uo.Executor.run ~mode ~engine ~domains:config.domains
        ~row_budget:config.row_budget ~timeout_ms:config.timeout_ms ~stats
        store entry.Workload.Queries.text
    in
    last_report := Some report;
    let cell =
      match report.Sparql_uo.Executor.failure with
      | Some Sparql_uo.Executor.Out_of_budget -> Oom
      | Some Sparql_uo.Executor.Timeout -> Timed_out
      (* The bench never cancels or injects faults; a capped bar is the
         only sensible rendering if one ever surfaces. *)
      | Some (Sparql_uo.Executor.Cancelled | Sparql_uo.Executor.Injected_fault _)
        ->
          Timed_out
      | None ->
          Time
            (report.Sparql_uo.Executor.transform_ms
           +. report.Sparql_uo.Executor.exec_ms)
    in
    (match (!best, cell) with
    | None, _ -> best := Some cell
    | Some (Time t0), Time t -> if t < t0 then best := Some (Time t)
    | Some (Oom | Timed_out), (Time _ as t) -> best := Some t
    | Some _, _ -> ())
  done;
  (Option.get !best, Option.get !last_report)

(* Best-of-N on an already-parsed query with explicit streaming/domains
   knobs; also returns the produced-row count (the report's governed
   [pushed_rows]) of the last repetition — the streaming section's
   early-termination measurement. *)
let run_query_mode config ~stats store query ~mode ~engine ~streaming ~domains =
  let best = ref None in
  let last_report = ref None in
  let pushed = ref 0 in
  for _ = 1 to config.repetitions do
    let report =
      Sparql_uo.Executor.run_query ~mode ~engine ~domains ~streaming
        ~row_budget:config.row_budget ~timeout_ms:config.timeout_ms ~stats
        store query
    in
    pushed := report.Sparql_uo.Executor.pushed_rows;
    last_report := Some report;
    let cell =
      match report.Sparql_uo.Executor.failure with
      | Some Sparql_uo.Executor.Out_of_budget -> Oom
      | Some Sparql_uo.Executor.Timeout -> Timed_out
      | Some (Sparql_uo.Executor.Cancelled | Sparql_uo.Executor.Injected_fault _)
        ->
          Timed_out
      | None ->
          Time
            (report.Sparql_uo.Executor.transform_ms
           +. report.Sparql_uo.Executor.exec_ms)
    in
    (match (!best, cell) with
    | None, _ -> best := Some cell
    | Some (Time t0), Time t -> if t < t0 then best := Some (Time t)
    | Some (Oom | Timed_out), (Time _ as t) -> best := Some t
    | Some _, _ -> ())
  done;
  (Option.get !best, Option.get !last_report, !pushed)

let run_lbr config ~stats:_ env query =
  let best = ref None in
  for _ = 1 to config.repetitions do
    let report =
      Lbr.Lbr_eval.run ~row_budget:config.row_budget
        ~timeout_ms:config.timeout_ms env query
    in
    let cell =
      match report.Lbr.Lbr_eval.bag with
      | Some _ -> Time report.Lbr.Lbr_eval.exec_ms
      | None -> Oom
    in
    (match (!best, cell) with
    | None, _ -> best := Some cell
    | Some (Time t0), Time t -> if t < t0 then best := Some (Time t)
    | Some (Oom | Timed_out), (Time _ as t) -> best := Some t
    | Some _, _ -> ())
  done;
  Option.get !best

(* Plain-text table rendering. *)
let print_table ~header ~rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

(* Peak resident set size (VmHWM) in KB, from /proc/self/status; 0 when
   the file or field is unavailable (non-Linux). Every section records it
   so memory regressions show up next to their latency numbers. *)
let peak_rss_kb () =
  match
    In_channel.with_open_text "/proc/self/status" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> 0
          | Some line ->
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                String.fold_left
                  (fun acc c ->
                    if c >= '0' && c <= '9' then
                      (acc * 10) + (Char.code c - Char.code '0')
                    else acc)
                  0 line
              else scan ()
        in
        scan ())
  with
  | kb -> kb
  | exception Sys_error _ -> 0

let major_collections () = (Gc.quick_stat ()).Gc.major_collections

let human_int n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
