(* Tests for the off-heap column storage: block-boundary unit cases,
   Delta/Raw equivalence properties, and end-to-end equality of index
   views and query results between compressed and uncompressed store
   builds across engines and domain counts. *)

module Column = Rdf_store.Column

let both_modes f =
  f Column.Raw;
  f Column.Delta

let check_roundtrip name arr mode =
  let name = Printf.sprintf "%s [%s]" name (Column.mode_name mode) in
  let c = Column.of_array mode arr in
  Alcotest.(check int) (name ^ " length") (Array.length arr) (Column.length c);
  Alcotest.(check (array int)) (name ^ " to_array") arr (Column.to_array c);
  (* Cold random access. *)
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "%s get %d" name i) v (Column.get c i))
    arr;
  (* Cursor access in a scattered order exercises block-cache reuse and
     invalidation. *)
  let cur = Column.cursor c in
  let n = Array.length arr in
  for k = 0 to (2 * n) - 1 do
    let i = (k * 7) mod n in
    Alcotest.(check int) (Printf.sprintf "%s read %d" name i) arr.(i)
      (Column.read c cur i)
  done;
  (* iter over the full range and a strict sub-range. *)
  let seen = ref [] in
  Column.iter c ~lo:0 ~hi:n ~f:(fun v -> seen := v :: !seen);
  Alcotest.(check (list int)) (name ^ " iter") (Array.to_list arr)
    (List.rev !seen);
  if n > 2 then begin
    let seen = ref [] in
    Column.iter c ~lo:1 ~hi:(n - 1) ~f:(fun v -> seen := v :: !seen);
    Alcotest.(check (list int)) (name ^ " iter sub")
      (Array.to_list (Array.sub arr 1 (n - 2)))
      (List.rev !seen)
  end

let test_empty () = both_modes (check_roundtrip "empty" [||])

let test_single () = both_modes (check_roundtrip "single" [| 42 |])

let test_one_block () =
  (* Exactly [block_size] values: the encoder must not emit a phantom
     trailing block. *)
  let arr = Array.init Column.block_size (fun i -> (i * 3) + 1) in
  both_modes (check_roundtrip "one block" arr)

let test_block_straddle () =
  (* One value past the block boundary. *)
  let arr = Array.init (Column.block_size + 1) (fun i -> i * i) in
  both_modes (check_roundtrip "block+1" arr)

let test_int32_guard () =
  (* Values straddling the int32 limit force the 8-byte raw width; the
     delta path must survive >31-bit deltas in both directions. *)
  let m = 1 lsl 31 in
  let arr = [| 0; m - 2; m - 1; m; m + 5; 1 lsl 45; 7; m + 9 |] in
  both_modes (check_roundtrip "int32 straddle" arr);
  let below = Column.of_array Column.Raw [| m - 1; 0; 17 |] in
  let above = Column.of_array Column.Raw [| m; 0; 17 |] in
  Alcotest.(check bool) "width grows past int32" true
    (Column.mem_bytes above > Column.mem_bytes below)

let test_bitset_block () =
  (* A dense strictly increasing run compresses as a span bitset:
     128 unit-step deltas need 127 varint bytes, the bitset 16. *)
  let arr = Array.init 1024 (fun i -> 100 + i) in
  check_roundtrip "dense increasing" arr Column.Delta;
  let delta = Column.of_array Column.Delta arr in
  let raw = Column.of_array Column.Raw arr in
  Alcotest.(check bool) "bitset beats raw" true
    (Column.mem_bytes delta * 2 < Column.mem_bytes raw)

let test_compression_wins () =
  (* Sorted id-like data (the index columns' shape) must compress well
     below the raw fixed-width layout. *)
  let rng = Workload.Rng.create ~seed:99 in
  let arr = Array.init 50_000 (fun _ -> Workload.Rng.int rng 5_000_000) in
  Array.sort Int.compare arr;
  let delta = Column.of_array Column.Delta arr in
  let raw = Column.of_array Column.Raw arr in
  check_roundtrip "sorted ids" arr Column.Delta;
  Alcotest.(check bool)
    (Printf.sprintf "delta %d B < 60%% of raw %d B" (Column.mem_bytes delta)
       (Column.mem_bytes raw))
    true
    (float_of_int (Column.mem_bytes delta)
    < 0.6 *. float_of_int (Column.mem_bytes raw))

let reference_lower_bound arr ~lo ~hi v =
  let i = ref lo in
  while !i < hi && arr.(!i) < v do incr i done;
  !i

let test_lower_bound () =
  both_modes (fun mode ->
      let rng = Workload.Rng.create ~seed:3 in
      let arr =
        Array.init 700 (fun _ -> Workload.Rng.int rng 10_000)
        |> Array.to_list |> List.sort_uniq Int.compare |> Array.of_list
      in
      let c = Column.of_array mode arr in
      let n = Array.length arr in
      let cur = Column.cursor c in
      for _ = 1 to 500 do
        let v = Workload.Rng.int rng 11_000 in
        let lo = Workload.Rng.int rng n in
        let hi = lo + Workload.Rng.int rng (n - lo + 1) in
        let expect = reference_lower_bound arr ~lo ~hi v in
        Alcotest.(check int)
          (Printf.sprintf "lower_bound %d in [%d,%d) [%s]" v lo hi
             (Column.mode_name mode))
          expect
          (Column.lower_bound c ~cursor:cur ~lo ~hi v)
      done)

let nonneg_list =
  QCheck2.Gen.(list_size (int_range 0 400) (int_range 0 1_000_000))

let prop_modes_equivalent =
  QCheck2.Test.make ~name:"Delta and Raw decode identically" ~count:200
    nonneg_list (fun vs ->
      let arr = Array.of_list vs in
      Column.to_array (Column.of_array Column.Delta arr) = arr
      && Column.to_array (Column.of_array Column.Raw arr) = arr)

let prop_lower_bound_equivalent =
  QCheck2.Test.make ~name:"lower_bound agrees across modes" ~count:200
    QCheck2.Gen.(pair nonneg_list (int_range 0 1_000_000))
    (fun (vs, probe) ->
      let arr = Array.of_list (List.sort_uniq Int.compare vs) in
      let n = Array.length arr in
      let d = Column.of_array Column.Delta arr in
      let r = Column.of_array Column.Raw arr in
      Column.lower_bound d ~lo:0 ~hi:n probe
      = Column.lower_bound r ~lo:0 ~hi:n probe
      && Column.lower_bound d ~lo:0 ~hi:n probe
        = reference_lower_bound arr ~lo:0 ~hi:n probe)

(* --- compressed vs uncompressed stores ------------------------------- *)

let triple s p o =
  Rdf.Triple.make
    (Rdf.Term.iri (Printf.sprintf "http://x/s%d" s))
    (Rdf.Term.iri (Printf.sprintf "http://x/p%d" p))
    (Rdf.Term.iri (Printf.sprintf "http://x/o%d" o))

let store_of_triples mode triples =
  Rdf_store.Triple_store.of_iter ~mode (fun emit -> List.iter emit triples)

let view_list v =
  List.init (Rdf_store.Index.view_length v) (Rdf_store.Index.view_get v)

(* Every third-column view — each (s,p), (s,o) and (p,o) pair of each
   dataset triple — must decode to the same value list from a compressed
   build as from an uncompressed one, and all pattern counts must agree. *)
let prop_store_views_equivalent =
  QCheck2.Test.make ~name:"store views identical across compression modes"
    ~count:30
    QCheck2.Gen.(
      list_size (int_range 0 60)
        (map3 (fun s p o -> (s, p, o)) (int_range 0 6) (int_range 0 3)
           (int_range 0 8)))
    (fun rows ->
      let triples = List.map (fun (s, p, o) -> triple s p o) rows in
      let raw = store_of_triples Column.Raw triples in
      let delta = store_of_triples Column.Delta triples in
      let sr = Rdf_store.Snapshot.of_store raw in
      let sd = Rdf_store.Snapshot.of_store delta in
      let ids st t =
        ( Rdf_store.Snapshot.encode_term st t.Rdf.Triple.s,
          Rdf_store.Snapshot.encode_term st t.Rdf.Triple.p,
          Rdf_store.Snapshot.encode_term st t.Rdf.Triple.o )
      in
      Rdf_store.Triple_store.size raw = Rdf_store.Triple_store.size delta
      && List.for_all
           (fun t ->
             match (ids sr t, ids sd t) with
             | (Some s1, Some p1, Some o1), (Some s2, Some p2, Some o2) ->
                 let vr = Rdf_store.Snapshot.third_column_view sr in
                 let vd = Rdf_store.Snapshot.third_column_view sd in
                 view_list (vr ~s:s1 ~p:p1 ()) = view_list (vd ~s:s2 ~p:p2 ())
                 && view_list (vr ~s:s1 ~o:o1 ())
                    = view_list (vd ~s:s2 ~o:o2 ())
                 && view_list (vr ~p:p1 ~o:o1 ())
                    = view_list (vd ~p:p2 ~o:o2 ())
                 && Rdf_store.Snapshot.count sr ~s:s1 ()
                    = Rdf_store.Snapshot.count sd ~s:s2 ()
                 && Rdf_store.Snapshot.count sr ~p:p1 ~o:o1 ()
                    = Rdf_store.Snapshot.count sd ~p:p2 ~o:o2 ()
             | _ -> false)
           triples)

(* The full query path: both engines at 1 and 4 domains must return the
   same bags from a compressed store as from an uncompressed one, on the
   complete LUBM benchmark workload. *)
let test_query_bags_across_modes () =
  let triples = Workload.Lubm.generate Workload.Lubm.tiny in
  let raw = store_of_triples Column.Raw triples in
  let delta = store_of_triples Column.Delta triples in
  List.iter
    (fun (entry : Workload.Queries.entry) ->
      List.iter
        (fun engine ->
          List.iter
            (fun domains ->
              let solutions store =
                let report =
                  Sparql_uo.Executor.run ~engine ~domains store entry.text
                in
                List.sort compare (Sparql_uo.Executor.solutions store report)
              in
              let label =
                Printf.sprintf "%s %s x%d" entry.id
                  (Engine.Bgp_eval.engine_name engine)
                  domains
              in
              Alcotest.(check bool) label true
                (solutions raw = solutions delta))
            [ 1; 4 ])
        [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])
    (Workload.Queries.all Workload.Queries.Lubm)

let () =
  Alcotest.run "column"
    [
      ( "blocks",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single element" `Quick test_single;
          Alcotest.test_case "exactly one block" `Quick test_one_block;
          Alcotest.test_case "block boundary straddle" `Quick test_block_straddle;
          Alcotest.test_case "int32 width guard" `Quick test_int32_guard;
          Alcotest.test_case "bitset blocks" `Quick test_bitset_block;
          Alcotest.test_case "compression ratio" `Quick test_compression_wins;
          Alcotest.test_case "lower_bound windows" `Quick test_lower_bound;
          QCheck_alcotest.to_alcotest prop_modes_equivalent;
          QCheck_alcotest.to_alcotest prop_lower_bound_equivalent;
        ] );
      ( "stores",
        [
          QCheck_alcotest.to_alcotest prop_store_views_equivalent;
          Alcotest.test_case "query bags mode x engine x domains" `Quick
            test_query_bags_across_modes;
        ] );
    ]
