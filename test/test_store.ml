(* Tests for the rdf_store library: dictionary, permutation indexes, the
   triple store's pattern access, and statistics. Includes qcheck
   properties checking index lookups against naive scans. *)

let iri i = Rdf.Term.iri (Printf.sprintf "http://t/%d" i)

let triple s p o = Rdf.Triple.make (iri s) (iri (100 + p)) (iri (200 + o))

(* --- Dictionary ----------------------------------------------------------- *)

let test_dictionary_bijection () =
  let dict = Rdf_store.Dictionary.create () in
  let terms = List.init 100 iri in
  let ids = List.map (Rdf_store.Dictionary.encode dict) terms in
  Alcotest.(check int) "dense ids" 100 (Rdf_store.Dictionary.size dict);
  List.iteri
    (fun i id ->
      Alcotest.(check int) "ids are dense and in insertion order" i id;
      Alcotest.(check bool) "decode inverts encode" true
        (Rdf.Term.equal (List.nth terms i) (Rdf_store.Dictionary.decode dict id)))
    ids

let test_dictionary_idempotent_encode () =
  let dict = Rdf_store.Dictionary.create () in
  let id1 = Rdf_store.Dictionary.encode dict (iri 1) in
  let id2 = Rdf_store.Dictionary.encode dict (iri 1) in
  Alcotest.(check int) "same id" id1 id2;
  Alcotest.(check int) "size 1" 1 (Rdf_store.Dictionary.size dict)

let test_dictionary_find_and_bounds () =
  let dict = Rdf_store.Dictionary.create ~initial_capacity:1 () in
  ignore (Rdf_store.Dictionary.encode dict (iri 1));
  Alcotest.(check (option int)) "find hit" (Some 0)
    (Rdf_store.Dictionary.find dict (iri 1));
  Alcotest.(check (option int)) "find miss" None
    (Rdf_store.Dictionary.find dict (iri 2));
  Alcotest.check_raises "decode out of range"
    (Invalid_argument "Dictionary.decode: id 5 out of range") (fun () ->
      ignore (Rdf_store.Dictionary.decode dict 5))

(* --- Index ------------------------------------------------------------------ *)

let mk_table rows =
  {
    Rdf_store.Index.s = Array.of_list (List.map (fun (s, _, _) -> s) rows);
    Rdf_store.Index.p = Array.of_list (List.map (fun (_, p, _) -> p) rows);
    Rdf_store.Index.o = Array.of_list (List.map (fun (_, _, o) -> o) rows);
  }

let all_orders =
  [ Rdf_store.Index.Spo; Sop; Pso; Pos; Osp; Ops ]

let test_index_full_range () =
  let table = mk_table [ (1, 2, 3); (0, 5, 1); (1, 2, 2); (4, 0, 0) ] in
  List.iter
    (fun order ->
      let idx = Rdf_store.Index.build order table in
      let lo, hi = Rdf_store.Index.range idx () in
      Alcotest.(check (pair int int)) "full range" (0, 4) (lo, hi))
    all_orders

let test_index_sorted_and_prefix () =
  let rows = [ (1, 2, 3); (0, 5, 1); (1, 2, 2); (1, 3, 0); (0, 5, 0) ] in
  let table = mk_table rows in
  let idx = Rdf_store.Index.build Rdf_store.Index.Spo table in
  (* SPO order: (0,5,0) (0,5,1) (1,2,2) (1,2,3) (1,3,0) *)
  let collected = ref [] in
  let lo, hi = Rdf_store.Index.range idx () in
  Rdf_store.Index.iter idx ~lo ~hi ~f:(fun ~s ~p ~o ->
      collected := (s, p, o) :: !collected);
  let sorted = List.rev !collected in
  Alcotest.(check bool) "sorted lexicographically" true
    (sorted = [ (0, 5, 0); (0, 5, 1); (1, 2, 2); (1, 2, 3); (1, 3, 0) ]);
  let lo, hi = Rdf_store.Index.range idx ~a:1 () in
  Alcotest.(check int) "s=1 has 3 rows" 3 (hi - lo);
  let lo, hi = Rdf_store.Index.range idx ~a:1 ~b:2 () in
  Alcotest.(check int) "s=1,p=2 has 2 rows" 2 (hi - lo);
  let lo, hi = Rdf_store.Index.range idx ~a:1 ~b:2 ~c:3 () in
  Alcotest.(check int) "exact row" 1 (hi - lo);
  let lo, hi = Rdf_store.Index.range idx ~a:9 () in
  Alcotest.(check int) "absent key" 0 (hi - lo)

let test_index_distincts () =
  let table = mk_table [ (1, 2, 3); (1, 2, 4); (1, 3, 3); (2, 2, 3) ] in
  let idx = Rdf_store.Index.build Rdf_store.Index.Spo table in
  let lo, hi = Rdf_store.Index.range idx () in
  Alcotest.(check int) "distinct subjects" 2
    (Rdf_store.Index.distinct_firsts idx ~lo ~hi);
  Alcotest.(check int) "distinct (s,p)" 3
    (Rdf_store.Index.distinct_seconds idx ~lo ~hi)

let test_index_bad_prefix () =
  let table = mk_table [ (1, 2, 3) ] in
  let idx = Rdf_store.Index.build Rdf_store.Index.Spo table in
  Alcotest.check_raises "b without a"
    (Invalid_argument "Index.range: non-prefix key combination") (fun () ->
      ignore (Rdf_store.Index.range idx ~b:2 ()))

(* --- Triple store ------------------------------------------------------------- *)

let test_store_dedup () =
  let triples = [ triple 1 1 1; triple 1 1 1; triple 1 1 2 ] in
  let store = Rdf_store.Triple_store.of_triples triples in
  Alcotest.(check int) "duplicates removed" 2 (Rdf_store.Triple_store.size store)

let test_store_pattern_counts () =
  let triples =
    [ triple 1 1 1; triple 1 1 2; triple 1 2 1; triple 2 1 1; triple 2 2 2 ]
  in
  let store = Rdf_store.Triple_store.of_triples triples in
  let id t = Option.get (Rdf_store.Triple_store.encode_term store t) in
  let s1 = id (iri 1) and p1 = id (iri 101) and o1 = id (iri 201) in
  Alcotest.(check int) "count all" 5 (Rdf_store.Triple_store.count store ());
  Alcotest.(check int) "count s" 3 (Rdf_store.Triple_store.count store ~s:s1 ());
  Alcotest.(check int) "count p" 3 (Rdf_store.Triple_store.count store ~p:p1 ());
  Alcotest.(check int) "count o" 3 (Rdf_store.Triple_store.count store ~o:o1 ());
  Alcotest.(check int) "count sp" 2
    (Rdf_store.Triple_store.count store ~s:s1 ~p:p1 ());
  Alcotest.(check int) "count so" 2
    (Rdf_store.Triple_store.count store ~s:s1 ~o:o1 ());
  Alcotest.(check int) "count po" 2
    (Rdf_store.Triple_store.count store ~p:p1 ~o:o1 ());
  Alcotest.(check int) "count spo" 1
    (Rdf_store.Triple_store.count store ~s:s1 ~p:p1 ~o:o1 ());
  Alcotest.(check bool) "contains" true
    (Rdf_store.Triple_store.contains store ~s:s1 ~p:p1 ~o:o1)

let test_store_missing_term () =
  let store = Rdf_store.Triple_store.of_triples [ triple 1 1 1 ] in
  Alcotest.(check (option int)) "missing term" None
    (Rdf_store.Triple_store.encode_term store (iri 999))

(* qcheck: every pattern lookup agrees with a naive scan. *)
let prop_store_matches_naive =
  QCheck2.Test.make ~name:"pattern lookup = naive scan" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60)
           (map3 (fun s p o -> (s, p, o)) (int_range 0 5) (int_range 0 3)
              (int_range 0 6)))
        (map3 (fun s p o -> (s, p, o)) (int_range (-1) 5) (int_range (-1) 3)
           (int_range (-1) 6)))
    (fun (rows, (qs, qp, qo)) ->
      let triples = List.map (fun (s, p, o) -> triple s p o) rows in
      let store = Rdf_store.Triple_store.of_triples triples in
      let enc t = Rdf_store.Triple_store.encode_term store t in
      let key q base = if q < 0 then None else enc (iri (base + q)) in
      let s = key qs 0 and p = key qp 100 and o = key qo 200 in
      (* If a queried constant is absent from the data, the count must be
         0 unless that position was a wildcard. *)
      let expected =
        let distinct = List.sort_uniq compare rows in
        List.length
          (List.filter
             (fun (rs, rp, ro) ->
               (qs < 0 || rs = qs) && (qp < 0 || rp = qp) && (qo < 0 || ro = qo))
             distinct)
      in
      let actual =
        match ((qs >= 0 && s = None), (qp >= 0 && p = None), (qo >= 0 && o = None)) with
        | false, false, false -> Rdf_store.Triple_store.count store ?s ?p ?o ()
        | _ -> 0 (* constant not in dictionary: trivially no matches *)
      in
      actual = expected)

(* --- Snapshot ---------------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "repro" ".spuo" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_snapshot_roundtrip () =
  let triples =
    [
      Rdf.Triple.make (iri 1) (iri 100) (iri 2);
      Rdf.Triple.make (iri 1) (iri 100) (Rdf.Term.literal "plain \"quoted\"");
      Rdf.Triple.make (Rdf.Term.bnode "b0") (iri 101)
        (Rdf.Term.lang_literal "salut" ~lang:"fr");
      Rdf.Triple.make (iri 3) (iri 101) (Rdf.Term.int_literal 42);
    ]
  in
  let store = Rdf_store.Triple_store.of_triples triples in
  with_temp_file (fun path ->
      Rdf_store.Snapshot.save store path;
      let restored = Rdf_store.Snapshot.load path in
      Alcotest.(check int) "same size" (Rdf_store.Triple_store.size store)
        (Rdf_store.Triple_store.size restored);
      (* Every original triple is present, term-for-term. *)
      List.iter
        (fun { Rdf.Triple.s; p; o } ->
          let id term =
            Option.get (Rdf_store.Triple_store.encode_term restored term)
          in
          Alcotest.(check bool)
            (Rdf.Triple.to_ntriples (Rdf.Triple.make s p o))
            true
            (Rdf_store.Triple_store.contains restored ~s:(id s) ~p:(id p)
               ~o:(id o)))
        triples)

let test_snapshot_corruption () =
  let store = Rdf_store.Triple_store.of_triples [ triple 1 1 1; triple 2 1 2 ] in
  with_temp_file (fun path ->
      Rdf_store.Snapshot.save store path;
      (* Flip a byte in the middle: checksum must catch it. *)
      let content = In_channel.with_open_bin path In_channel.input_all in
      let mutated = Bytes.of_string content in
      let mid = Bytes.length mutated / 2 in
      Bytes.set mutated mid
        (Char.chr ((Char.code (Bytes.get mutated mid) + 1) land 0xFF));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc mutated);
      (match Rdf_store.Snapshot.load path with
      | exception Rdf_store.Snapshot.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt on bit flip");
      (* Truncation must also be caught. *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub content 0 (String.length content - 6)));
      (match Rdf_store.Snapshot.load path with
      | exception Rdf_store.Snapshot.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt on truncation");
      (* Wrong magic. *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc ("XXXX" ^ String.sub content 4 (String.length content - 4)));
      match Rdf_store.Snapshot.load path with
      | exception Rdf_store.Snapshot.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt on bad magic")

(* Each distinct corruption path must surface as [Corrupt] with its own
   diagnostic: a truncated file, a flipped checksum trailer, an unknown
   term tag, a triple id past the dictionary, and — in the v2 block
   format — a truncated skip index, an implausible block length and a
   block count that disagrees with the triple count. Most need
   handcrafted files — they cannot be produced by [save]. *)
let test_snapshot_corruption_paths () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
    at 0
  in
  let expect_corrupt ~substring path =
    match Rdf_store.Snapshot.load path with
    | exception Rdf_store.Snapshot.Corrupt msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S raised for %s" substring msg)
          true (contains msg substring)
    | _ -> Alcotest.fail (Printf.sprintf "expected Corrupt (%s)" substring)
  in
  (* The loader reads 4-byte big-endian ints (output_binary_int). *)
  let handcrafted oc ints =
    output_string oc "SPUO";
    List.iter (output_binary_int oc) (2 :: ints)
  in
  let store = Rdf_store.Triple_store.of_triples [ triple 1 1 1; triple 2 1 2 ] in
  with_temp_file (fun path ->
      Rdf_store.Snapshot.save store path;
      let content = In_channel.with_open_bin path In_channel.input_all in
      (* Truncated mid-stream. *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub content 0 (String.length content / 2)));
      expect_corrupt ~substring:"truncated" path;
      (* Data intact, stored checksum flipped: only the final comparison
         can catch it. *)
      let mutated = Bytes.of_string content in
      let last = Bytes.length mutated - 1 in
      Bytes.set mutated last
        (Char.chr (Char.code (Bytes.get mutated last) lxor 1));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc mutated);
      expect_corrupt ~substring:"checksum mismatch" path;
      (* One term with tag 9: no such term kind. *)
      Out_channel.with_open_bin path (fun oc -> handcrafted oc [ 1; 9 ]);
      expect_corrupt ~substring:"unknown term tag" path;
      (* One IRI term ("ab"); one triple in one block whose skip-index
         sample references id 5 of a 1-term dictionary. *)
      Out_channel.with_open_bin path (fun oc ->
          handcrafted oc [ 1; 0; 2 ];
          output_string oc "ab";
          List.iter (output_binary_int oc) [ 1; 1; 0; 0; 5; 0 ]);
      expect_corrupt ~substring:"out of dictionary range" path;
      (* Block count disagreeing with the triple count. *)
      Out_channel.with_open_bin path (fun oc ->
          handcrafted oc [ 1; 0; 2 ];
          output_string oc "ab";
          List.iter (output_binary_int oc) [ 1; 5 ]);
      expect_corrupt ~substring:"block count mismatch" path;
      (* Skip index cut off mid-entry (two of four ints present). *)
      Out_channel.with_open_bin path (fun oc ->
          handcrafted oc [ 1; 0; 2 ];
          output_string oc "ab";
          List.iter (output_binary_int oc) [ 1; 1; 0; 0 ]);
      expect_corrupt ~substring:"truncated skip index" path;
      (* Payload length far beyond what a 4096-triple block can hold. *)
      Out_channel.with_open_bin path (fun oc ->
          handcrafted oc [ 1; 0; 2 ];
          output_string oc "ab";
          List.iter (output_binary_int oc) [ 1; 1; 0; 0; 0; 999_999_999 ]);
      expect_corrupt ~substring:"implausible block length" path)

(* Property: snapshots round-trip arbitrary encoded datasets and queries
   see identical results. *)
let prop_snapshot_roundtrip =
  QCheck2.Test.make ~name:"snapshot roundtrip preserves pattern counts"
    ~count:50
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (map3 (fun s p o -> (s, p, o)) (int_range 0 5) (int_range 0 3)
           (int_range 0 6)))
    (fun rows ->
      let triples = List.map (fun (s, p, o) -> triple s p o) rows in
      let store = Rdf_store.Triple_store.of_triples triples in
      with_temp_file (fun path ->
          Rdf_store.Snapshot.save store path;
          let restored = Rdf_store.Snapshot.load path in
          Rdf_store.Triple_store.size restored = Rdf_store.Triple_store.size store
          && List.for_all
               (fun t ->
                 let present store =
                   match
                     ( Rdf_store.Triple_store.encode_term store t.Rdf.Triple.s,
                       Rdf_store.Triple_store.encode_term store t.Rdf.Triple.p,
                       Rdf_store.Triple_store.encode_term store t.Rdf.Triple.o )
                   with
                   | Some s, Some p, Some o ->
                       Rdf_store.Triple_store.contains store ~s ~p ~o
                   | _ -> false
                 in
                 present restored = present store)
               triples))

(* --- MVCC -------------------------------------------------------------------- *)

let snap_rows snap =
  let acc = ref [] in
  Rdf_store.Snapshot.iter_all snap ~f:(fun ~s ~p ~o -> acc := (s, p, o) :: !acc);
  List.sort compare !acc

let test_mvcc_visibility () =
  let store = Rdf_store.Triple_store.of_triples [ triple 1 1 1; triple 2 1 2 ] in
  let mvcc = Rdf_store.Mvcc.create store in
  let s0 = Rdf_store.Mvcc.snapshot mvcc in
  let txn = Rdf_store.Mvcc.begin_txn mvcc in
  Rdf_store.Mvcc.insert txn (triple 3 1 3);
  Rdf_store.Mvcc.delete txn (triple 1 1 1);
  (* Buffered, not published: the current snapshot is still s0's view. *)
  Alcotest.(check int) "uncommitted invisible" 2
    (Rdf_store.Snapshot.size (Rdf_store.Mvcc.snapshot mvcc));
  let s1 = Rdf_store.Mvcc.commit txn in
  Alcotest.(check int) "pre-commit snapshot untouched" 2
    (Rdf_store.Snapshot.size s0);
  Alcotest.(check int) "post-commit size" 2 (Rdf_store.Snapshot.size s1);
  Alcotest.(check bool) "distinct row sets" true (snap_rows s0 <> snap_rows s1);
  Alcotest.(check bool) "versions increase" true
    (Rdf_store.Snapshot.version s1 > Rdf_store.Snapshot.version s0);
  (* Deleting an unknown term is a no-op, not an error. *)
  let txn = Rdf_store.Mvcc.begin_txn mvcc in
  Rdf_store.Mvcc.delete txn (triple 8 8 8);
  let s2 = Rdf_store.Mvcc.commit txn in
  Alcotest.(check bool) "no-op delete preserves rows" true
    (snap_rows s1 = snap_rows s2)

(* The commit fold maintains adds ∩ base = ∅, dels ⊆ base, adds ∩ dels
   = ∅ across op orderings within and across transactions. *)
let test_mvcc_commit_fold () =
  let store = Rdf_store.Triple_store.of_triples [ triple 1 1 1 ] in
  let mvcc = Rdf_store.Mvcc.create store in
  (* Insert-then-delete of a fresh triple in one txn: net nothing. *)
  let txn = Rdf_store.Mvcc.begin_txn mvcc in
  Rdf_store.Mvcc.insert txn (triple 5 1 5);
  Rdf_store.Mvcc.delete txn (triple 5 1 5);
  let s = Rdf_store.Mvcc.commit txn in
  Alcotest.(check int) "insert-then-delete nets out" 1
    (Rdf_store.Snapshot.size s);
  (* Delete-then-reinsert of a base triple: still present, delta empty
     of it on both sides. *)
  let txn = Rdf_store.Mvcc.begin_txn mvcc in
  Rdf_store.Mvcc.delete txn (triple 1 1 1);
  Rdf_store.Mvcc.insert txn (triple 1 1 1);
  let s = Rdf_store.Mvcc.commit txn in
  Alcotest.(check int) "delete-then-reinsert keeps the row" 1
    (Rdf_store.Snapshot.size s);
  (* Re-inserting a base triple is absorbed (set semantics). *)
  let txn = Rdf_store.Mvcc.begin_txn mvcc in
  Rdf_store.Mvcc.insert txn (triple 1 1 1);
  let s = Rdf_store.Mvcc.commit txn in
  Alcotest.(check int) "duplicate insert absorbed" 1
    (Rdf_store.Snapshot.size s);
  Alcotest.(check int) "absorbed ops leave no delta" 0
    (Rdf_store.Mvcc.delta_rows mvcc)

let test_mvcc_auto_compaction () =
  let store = Rdf_store.Triple_store.of_triples [ triple 1 1 1 ] in
  let mvcc = Rdf_store.Mvcc.create ~compact_threshold:2 store in
  let base0 = Rdf_store.Mvcc.base mvcc in
  let pinned = Rdf_store.Mvcc.snapshot mvcc in
  let txn = Rdf_store.Mvcc.begin_txn mvcc in
  List.iter (Rdf_store.Mvcc.insert txn) [ triple 2 1 2; triple 3 1 3 ];
  let s = Rdf_store.Mvcc.commit txn in
  (* The 2-row delta crossed the threshold: folded into a fresh base. *)
  Alcotest.(check int) "delta folded" 0 (Rdf_store.Mvcc.delta_rows mvcc);
  Alcotest.(check bool) "base epoch advanced" true
    (Rdf_store.Triple_store.epoch (Rdf_store.Mvcc.base mvcc)
    <> Rdf_store.Triple_store.epoch base0);
  Alcotest.(check int) "compacted view complete" 3 (Rdf_store.Snapshot.size s);
  Alcotest.(check int) "pinned reader unaffected" 1
    (Rdf_store.Snapshot.size pinned)

(* A writer domain commits single-row transactions while reader domains
   hammer snapshot acquisition: every acquired view must be internally
   consistent (size = row count) and sizes must grow monotonically per
   reader. *)
let test_mvcc_concurrent_reader_writer () =
  let store = Rdf_store.Triple_store.of_triples [ triple 0 0 0 ] in
  let mvcc = Rdf_store.Mvcc.create ~compact_threshold:8 store in
  let total = 64 in
  let writer =
    Domain.spawn (fun () ->
        for i = 1 to total do
          let txn = Rdf_store.Mvcc.begin_txn mvcc in
          Rdf_store.Mvcc.insert txn (triple i 0 i);
          ignore (Rdf_store.Mvcc.commit txn)
        done)
  in
  let reader () =
    let ok = ref true in
    let last = ref 0 in
    while !last < total + 1 do
      let snap = Rdf_store.Mvcc.snapshot mvcc in
      let n = ref 0 in
      Rdf_store.Snapshot.iter_all snap ~f:(fun ~s:_ ~p:_ ~o:_ -> incr n);
      if !n <> Rdf_store.Snapshot.size snap then ok := false;
      if Rdf_store.Snapshot.size snap < !last then ok := false;
      last := max !last (Rdf_store.Snapshot.size snap)
    done;
    !ok
  in
  let readers = List.init 3 (fun _ -> Domain.spawn reader) in
  Domain.join writer;
  let all_ok = List.for_all Domain.join readers in
  Alcotest.(check bool) "every acquired view consistent and monotone" true
    all_ok;
  Alcotest.(check int) "final size" (total + 1)
    (Rdf_store.Snapshot.size (Rdf_store.Mvcc.snapshot mvcc))

(* --- Stats ----------------------------------------------------------------------- *)

let test_stats_counts () =
  let triples =
    [
      Rdf.Triple.make (iri 1) (iri 100) (iri 2);
      Rdf.Triple.make (iri 1) (iri 100) (Rdf.Term.literal "x");
      Rdf.Triple.make (iri 2) (iri 101) (Rdf.Term.literal "y");
      Rdf.Triple.make (iri 3) (iri 100) (iri 2);
    ]
  in
  let store = Rdf_store.Triple_store.of_triples triples in
  let stats = Rdf_store.Stats.compute store in
  Alcotest.(check int) "triples" 4 (Rdf_store.Stats.num_triples stats);
  (* Entities: iri1, iri2, iri3 (iri100/101 only appear as predicates). *)
  Alcotest.(check int) "entities" 3 (Rdf_store.Stats.num_entities stats);
  Alcotest.(check int) "predicates" 2 (Rdf_store.Stats.num_predicates stats);
  Alcotest.(check int) "literals" 2 (Rdf_store.Stats.num_literals stats)

let test_stats_predicate () =
  let triples =
    [
      Rdf.Triple.make (iri 1) (iri 100) (iri 10);
      Rdf.Triple.make (iri 1) (iri 100) (iri 11);
      Rdf.Triple.make (iri 2) (iri 100) (iri 10);
    ]
  in
  let store = Rdf_store.Triple_store.of_triples triples in
  let stats = Rdf_store.Stats.compute store in
  let p = Option.get (Rdf_store.Triple_store.encode_term store (iri 100)) in
  let ps = Rdf_store.Stats.predicate stats ~p in
  Alcotest.(check int) "triples" 3 ps.Rdf_store.Stats.triples;
  Alcotest.(check int) "distinct subjects" 2 ps.Rdf_store.Stats.distinct_subjects;
  Alcotest.(check int) "distinct objects" 2 ps.Rdf_store.Stats.distinct_objects;
  Alcotest.(check (float 0.001)) "avg out" 1.5 ps.Rdf_store.Stats.avg_out_degree;
  Alcotest.(check (float 0.001)) "avg in" 1.5 ps.Rdf_store.Stats.avg_in_degree;
  let absent = Rdf_store.Stats.predicate stats ~p:99999 in
  Alcotest.(check int) "absent predicate zero" 0 absent.Rdf_store.Stats.triples

let () =
  Alcotest.run "rdf_store"
    [
      ( "dictionary",
        [
          Alcotest.test_case "bijection" `Quick test_dictionary_bijection;
          Alcotest.test_case "idempotent encode" `Quick test_dictionary_idempotent_encode;
          Alcotest.test_case "find and bounds" `Quick test_dictionary_find_and_bounds;
        ] );
      ( "index",
        [
          Alcotest.test_case "full range" `Quick test_index_full_range;
          Alcotest.test_case "sorted + prefix ranges" `Quick test_index_sorted_and_prefix;
          Alcotest.test_case "distinct counters" `Quick test_index_distincts;
          Alcotest.test_case "non-prefix rejected" `Quick test_index_bad_prefix;
        ] );
      ( "triple_store",
        [
          Alcotest.test_case "dedup" `Quick test_store_dedup;
          Alcotest.test_case "pattern counts" `Quick test_store_pattern_counts;
          Alcotest.test_case "missing term" `Quick test_store_missing_term;
          QCheck_alcotest.to_alcotest prop_store_matches_naive;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_snapshot_corruption;
          Alcotest.test_case "corruption paths each raise Corrupt" `Quick
            test_snapshot_corruption_paths;
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
        ] );
      ( "mvcc",
        [
          Alcotest.test_case "commit visibility" `Quick test_mvcc_visibility;
          Alcotest.test_case "commit fold invariants" `Quick
            test_mvcc_commit_fold;
          Alcotest.test_case "auto-compaction" `Quick test_mvcc_auto_compaction;
          Alcotest.test_case "concurrent readers under a writer" `Quick
            test_mvcc_concurrent_reader_writer;
        ] );
      ( "stats",
        [
          Alcotest.test_case "dataset counts" `Quick test_stats_counts;
          Alcotest.test_case "per-predicate" `Quick test_stats_predicate;
        ] );
    ]
