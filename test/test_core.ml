(* Tests for the sparql_uo core library: BE-tree construction (Definition
   8), metrics, validity, merge/inject transformations (Definitions 9-10
   and Theorems 1-2 as executable properties), the cost model, Algorithm 1
   evaluation with candidate pruning, and the four executor modes. *)

module TP = Sparql.Triple_pattern
module BT = Sparql_uo.Be_tree

let v name = TP.Var name
let c iri = TP.Term (Rdf.Term.iri iri)

let parse_tree src = BT.of_query (Sparql.Parser.parse src)

(* --- BE-tree construction ------------------------------------------------- *)

let test_betree_coalesces_across_level () =
  (* t1 and t6 of the paper's Figure 2/5 example: triple patterns at the
     same level coalesce even when a UNION sits between them. *)
  let tree =
    parse_tree
      "SELECT * WHERE { ?x ub:p ?y . { ?a ub:q ?b . } UNION { ?a ub:r ?b . } ?y ub:s ?z . }"
  in
  match tree.BT.children with
  | [ BT.Bgp [ _; _ ]; BT.Union _ ] -> ()
  | _ -> Alcotest.fail ("unexpected tree: " ^ BT.to_string tree)

let test_betree_bgp_at_leftmost_position () =
  (* The coalesced BGP sits where its leftmost constituent was; disjoint
     patterns stay behind. *)
  let tree =
    parse_tree
      "SELECT * WHERE { ?a ub:p ?b . OPTIONAL { ?x ub:o ?y . } ?c ub:q ?d . }"
  in
  match tree.BT.children with
  | [ BT.Bgp [ _ ]; BT.Optional _; BT.Bgp [ _ ] ] -> ()
  | _ -> Alcotest.fail ("unexpected tree: " ^ BT.to_string tree)

let test_betree_single_branch_union_becomes_group () =
  let tree = parse_tree "SELECT * WHERE { { ?a ub:p ?b . } }" in
  match tree.BT.children with
  | [ BT.Group _ ] -> ()
  | _ -> Alcotest.fail ("unexpected tree: " ^ BT.to_string tree)

let test_betree_validity () =
  let tree =
    parse_tree
      "SELECT * WHERE { ?x ub:p ?y . { ?x ub:q ?z . } UNION { ?x ub:r ?z . } OPTIONAL { ?y ub:s ?w . } }"
  in
  (match BT.check tree with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* An artificial tree with coalescable sibling BGPs must be rejected. *)
  let bad =
    {
      BT.children =
        [ BT.Bgp [ TP.make (v "x") (c "p") (v "y") ];
          BT.Bgp [ TP.make (v "y") (c "q") (v "z") ] ];
      filters = [];
    }
  in
  (match BT.check bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected maximality violation");
  let bad_union = { BT.children = [ BT.Union [ tree ] ]; filters = [] } in
  match BT.check bad_union with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected UNION arity violation"

let test_betree_metrics () =
  let tree =
    parse_tree
      "SELECT * WHERE { ?x ub:p ?y . { ?a ub:q ?b . } UNION { ?a ub:r ?b . } OPTIONAL { ?y ub:s ?z . OPTIONAL { ?z ub:t ?w . } } }"
  in
  (* BGPs: outer [?x p ?y], union branches (2), optional [?y s ?z],
     nested optional [?z t ?w] = 5. *)
  Alcotest.(check int) "count_bgp" 5 (BT.count_bgp tree);
  (* Depth: outer (1) -> optional group (2) -> nested optional (3). *)
  Alcotest.(check int) "depth" 3 (BT.depth tree)

let test_betree_coalescing_barrier_safety () =
  (* Regression (found by the oracle property): coalescing must not pull a
     triple pattern leftward across an OPTIONAL that binds a shared
     variable the original left side did not — that changes the
     OPTIONAL's semantics. Here ?b is bound inside the OPTIONAL, so
     [?b p2 ?c] must NOT merge with [?c p2 e3] across it. *)
  let iri s = Rdf.Term.iri ("http://t/" ^ s) in
  let store =
    Rdf_store.Triple_store.of_triples
      [
        Rdf.Triple.make (iri "e0") (iri "p0") (iri "e0");
        Rdf.Triple.make (iri "e2") (iri "p2") (iri "e3");
        Rdf.Triple.make (iri "e0") (iri "p2") (iri "e2");
      ]
  in
  let query =
    Sparql.Parser.parse
      {|SELECT * WHERE {
         ?c <http://t/p2> <http://t/e3> .
         OPTIONAL { <http://t/e0> <http://t/p0> ?a . <http://t/e0> ?b ?a . }
         ?b <http://t/p2> ?c .
       }|}
  in
  let tree = BT.of_query query in
  (match tree.BT.children with
  | [ BT.Bgp [ _ ]; BT.Optional _; BT.Bgp [ _ ] ] -> ()
  | _ -> Alcotest.fail ("unsafe coalescing: " ^ BT.to_string tree));
  (* And the whole pipeline agrees with Definition 7. *)
  let expected, _ = Qgen.oracle store query in
  List.iter
    (fun mode ->
      let report = Sparql_uo.Executor.run_query ~mode store query in
      Alcotest.(check bool)
        (Sparql_uo.Executor.mode_name mode)
        true
        (Sparql.Bag.equal_as_bags (Option.get report.Sparql_uo.Executor.bag)
           expected))
    Sparql_uo.Executor.all_modes;
  (* When the shared variable IS certainly bound on the left, coalescing
     across the OPTIONAL stays enabled (the paper's t1/t6 example). *)
  let safe =
    Sparql.Parser.parse
      {|SELECT * WHERE {
         ?c <http://t/p2> <http://t/e3> .
         OPTIONAL { ?c <http://t/p0> ?a . }
         ?b <http://t/p2> ?c .
       }|}
  in
  match (BT.of_query safe).BT.children with
  | [ BT.Bgp [ _; _ ]; BT.Optional _ ] -> ()
  | other ->
      Alcotest.fail
        ("expected coalescing across safe OPTIONAL: "
        ^ BT.to_string { BT.children = other; filters = [] })

let test_betree_to_algebra_roundtrip_semantics () =
  (* The BE-tree of a query evaluates identically to the query's own
     algebra on a concrete dataset (checked through the oracle). *)
  let data =
    [
      Rdf.Triple.make (Qgen.iri 0) (Qgen.pred 0) (Qgen.iri 1);
      Rdf.Triple.make (Qgen.iri 1) (Qgen.pred 1) (Qgen.iri 2);
      Rdf.Triple.make (Qgen.iri 0) (Qgen.pred 1) (Qgen.iri 2);
    ]
  in
  let store = Rdf_store.Triple_store.of_triples data in
  let query =
    Sparql.Parser.parse
      "SELECT * WHERE { ?x <http://t/p0> ?y . OPTIONAL { ?y <http://t/p1> ?z . } }"
  in
  let expected, _ = Qgen.oracle store query in
  let tree = BT.of_query query in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Hash_join in
  let bag, _ = Sparql_uo.Binary_eval.eval env (BT.to_algebra tree) in
  Alcotest.(check bool) "same bag" true (Sparql.Bag.equal_as_bags bag expected)

(* --- Transformations: mechanics ------------------------------------------------ *)

let merge_fixture () =
  parse_tree
    "SELECT * WHERE { ?x ub:anchor ?y . { ?x ub:p ?z . } UNION { ?x ub:q ?z . } }"

let test_merge_mechanics () =
  let tree = merge_fixture () in
  Alcotest.(check bool) "can merge" true (Sparql_uo.Transform.can_merge tree ~p1:0 ~union:1);
  let merged = Sparql_uo.Transform.apply_merge tree ~p1:0 ~union:1 in
  (match merged.BT.children with
  | [ BT.Bgp []; BT.Union [ b1; b2 ] ] ->
      let branch_ok (g : BT.group) =
        match g.BT.children with
        | [ BT.Bgp [ _; _ ] ] -> true
        | _ -> false
      in
      Alcotest.(check bool) "both branches coalesced" true (branch_ok b1 && branch_ok b2)
  | _ -> Alcotest.fail ("unexpected merged tree: " ^ BT.to_string merged));
  (match BT.check merged with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("merged tree invalid: " ^ msg))

let test_merge_requires_coalescable () =
  (* The union branches share no subject/object variable with the BGP:
     merge must be refused (Definition 9, condition 2). *)
  let tree =
    parse_tree
      "SELECT * WHERE { ?x ub:anchor ?y . { ?a ub:p ?b . } UNION { ?a ub:q ?b . } }"
  in
  Alcotest.(check bool) "cannot merge" false
    (Sparql_uo.Transform.can_merge tree ~p1:0 ~union:1)

let test_merge_blocked_across_optional () =
  (* Moving a BGP across an OPTIONAL boundary is unsound; can_merge must
     refuse. *)
  let tree =
    parse_tree
      "SELECT * WHERE { ?x ub:anchor ?y . OPTIONAL { ?y ub:o ?w . } { ?x ub:p ?z . } UNION { ?x ub:q ?z . } }"
  in
  Alcotest.(check bool) "blocked by optional between" false
    (Sparql_uo.Transform.can_merge tree ~p1:0 ~union:2)

let test_inject_mechanics () =
  let tree =
    parse_tree "SELECT * WHERE { ?x ub:anchor ?y . OPTIONAL { ?x ub:p ?z . } }"
  in
  Alcotest.(check bool) "can inject" true (Sparql_uo.Transform.can_inject tree ~p1:0 ~opt:1);
  let injected = Sparql_uo.Transform.apply_inject tree ~p1:0 ~opt:1 in
  (match injected.BT.children with
  | [ BT.Bgp [ _ ]; BT.Optional inner ] -> (
      (* P1 keeps its occurrence AND is coalesced inside. *)
      match inner.BT.children with
      | [ BT.Bgp [ _; _ ] ] -> ()
      | _ -> Alcotest.fail ("unexpected optional child: " ^ BT.to_string inner))
  | _ -> Alcotest.fail ("unexpected injected tree: " ^ BT.to_string injected));
  match BT.check injected with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("injected tree invalid: " ^ msg)

let test_inject_only_rightward () =
  let tree =
    parse_tree "SELECT * WHERE { OPTIONAL { ?x ub:p ?z . } ?x ub:anchor ?y . }"
  in
  (* The OPTIONAL is at index 0, the BGP at index 1: no inject leftward. *)
  Alcotest.(check bool) "cannot inject leftward" false
    (Sparql_uo.Transform.can_inject tree ~p1:1 ~opt:0)

let test_inject_transitive_coalescing () =
  (* Injecting P1 can connect two previously separate BGP children of the
     optional group; maximality requires absorbing both. *)
  let tree =
    parse_tree
      "SELECT * WHERE { ?x ub:a ?y . OPTIONAL { ?x ub:p ?z . ?w ub:q ?u . ?y ub:r ?t . } }"
  in
  (* Optional children: [?x p ?z] and [?w q ?u] and [?y r ?t] — the first
     and third coalesce with P1 = [?x a ?y] once injected. *)
  let injected = Sparql_uo.Transform.apply_inject tree ~p1:0 ~opt:1 in
  match injected.BT.children with
  | [ _; BT.Optional inner ] -> (
      match inner.BT.children with
      | [ BT.Bgp combined; BT.Bgp [ _ ] ] ->
          Alcotest.(check int) "absorbed both connected BGPs" 3
            (List.length combined)
      | _ -> Alcotest.fail ("unexpected coalescing: " ^ BT.to_string inner))
  | _ -> Alcotest.fail "unexpected shape"

(* --- Theorems 1 and 2 as executable properties --------------------------------- *)

let eval_tree store (query : Sparql.Ast.query) tree =
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Hash_join in
  let bag, _ =
    Sparql_uo.Evaluator.eval env ~threshold:Sparql_uo.Evaluator.No_pruning tree
  in
  bag

(* Find every applicable (p1, target) pair at the top level and check the
   transformed tree evaluates identically. *)
let check_all_top_level_transforms store query =
  let tree = BT.of_query query in
  let reference = eval_tree store query tree in
  let n = List.length tree.BT.children in
  let ok = ref true in
  for p1 = 0 to n - 1 do
    for target = 0 to n - 1 do
      if Sparql_uo.Transform.can_merge tree ~p1 ~union:target then begin
        let merged = Sparql_uo.Transform.apply_merge tree ~p1 ~union:target in
        if not (Sparql.Bag.equal_as_bags reference (eval_tree store query merged))
        then ok := false
      end;
      if Sparql_uo.Transform.can_inject tree ~p1 ~opt:target then begin
        let injected = Sparql_uo.Transform.apply_inject tree ~p1 ~opt:target in
        if
          not (Sparql.Bag.equal_as_bags reference (eval_tree store query injected))
        then ok := false
      end
    done
  done;
  !ok

let prop_transforms_preserve_semantics =
  QCheck2.Test.make ~name:"merge/inject preserve [[.]]_D (Theorems 1-2)"
    ~count:300
    ~print:(fun (triples, query) ->
      Qgen.pp_dataset triples ^ "\n" ^ Qgen.pp_query query)
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_query)
    (fun (triples, query) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      check_all_top_level_transforms store query)

(* The central end-to-end property: all four modes, on both engines, agree
   with the Definition 7 oracle on random SPARQL-UO queries. *)
let prop_modes_agree_with_oracle =
  QCheck2.Test.make ~name:"base/TT/CP/full x {wco,hash} = oracle" ~count:250
    ~print:(fun (triples, query) ->
      Qgen.pp_dataset triples ^ "\n" ^ Qgen.pp_query query)
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_query)
    (fun (triples, query) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      let expected, _ = Qgen.oracle store query in
      List.for_all
        (fun mode ->
          List.for_all
            (fun engine ->
              let report = Sparql_uo.Executor.run_query ~mode ~engine store query in
              match report.Sparql_uo.Executor.bag with
              | Some bag -> Sparql.Bag.equal_as_bags bag expected
              | None -> false)
            [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])
        Sparql_uo.Executor.all_modes)

(* Reference solution-modifier semantics over an already-evaluated bag:
   the historical materialize-then-modify pipeline (ORDER BY, projection,
   DISTINCT, LIMIT/OFFSET), applied to the oracle's result. *)
let apply_modifiers_reference store vartable (query : Sparql.Ast.query) bag =
  let bag =
    match query.Sparql.Ast.order_by with
    | [] -> bag
    | keys ->
        let keys =
          List.filter_map
            (fun (v, desc) ->
              Option.map (fun col -> (col, desc)) (Sparql.Vartable.find vartable v))
            keys
        in
        let compare_ids id1 id2 =
          Rdf.Term.compare
            (Rdf_store.Triple_store.decode_term store id1)
            (Rdf_store.Triple_store.decode_term store id2)
        in
        Sparql.Bag.sort bag ~keys ~compare_ids
  in
  let bag =
    match Sparql.Ast.select_query query with
    | Sparql.Ast.Star | Sparql.Ast.Aggregated _ -> bag
    | Sparql.Ast.Projection vs ->
        Sparql.Bag.project bag
          ~cols:(List.filter_map (Sparql.Vartable.find vartable) vs)
  in
  let bag = if query.Sparql.Ast.distinct then Sparql.Bag.dedup bag else bag in
  match (query.Sparql.Ast.limit, query.Sparql.Ast.offset) with
  | None, None -> bag
  | limit, offset ->
      let offset = Option.value offset ~default:0 in
      let keep =
        match limit with
        | Some n -> fun i -> i >= offset && i < offset + n
        | None -> fun i -> i >= offset
      in
      let sliced = Sparql.Bag.create ~width:(Sparql.Bag.width bag) in
      let i = ref 0 in
      Sparql.Bag.iter bag ~f:(fun row ->
          if keep !i then Sparql.Bag.push sliced row;
          incr i);
      sliced

(* The streaming sink pipeline (and the materializing one) agree with the
   oracle + reference modifiers, on both engines, serial and parallel. *)
let prop_streaming_modifiers_match_oracle =
  QCheck2.Test.make
    ~name:"streaming/materializing modifiers x {wco,hash} x domains = oracle"
    ~count:120
    ~print:(fun (triples, query) ->
      Qgen.pp_dataset triples ^ "\n" ^ Qgen.pp_query query)
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_modified_query)
    (fun (triples, query) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      let oracle_bag, vartable = Qgen.oracle store query in
      let expected = apply_modifiers_reference store vartable query oracle_bag in
      List.for_all
        (fun engine ->
          List.for_all
            (fun domains ->
              List.for_all
                (fun streaming ->
                  let report =
                    Sparql_uo.Executor.run_query ~engine ~domains ~streaming
                      store query
                  in
                  match report.Sparql_uo.Executor.bag with
                  | Some bag -> Sparql.Bag.equal_as_bags bag expected
                  | None -> false)
                [ true; false ])
            [ 1; 4 ])
        [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])

(* LIMIT pushdown actually early-terminates: the limited run produces
   strictly fewer rows (the report's governed [pushed_rows]) than the
   unlimited one. *)
let test_streaming_limit_early_exit () =
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let base = "SELECT * WHERE { ?s ?p ?o . }" in
  let run text =
    let r = Sparql_uo.Executor.run store text in
    (Option.get r.Sparql_uo.Executor.result_count,
     r.Sparql_uo.Executor.pushed_rows)
  in
  let total, pushed_all = run base in
  let limited, pushed_limited = run (base ^ " LIMIT 5") in
  Alcotest.(check bool) "dataset bigger than the limit" true (total > 5);
  Alcotest.(check int) "limit applies" 5 limited;
  Alcotest.(check bool) "early exit produces fewer rows" true
    (pushed_limited < pushed_all)

(* Multi-level transformation output is still a valid BE-tree. *)
let prop_multi_level_valid =
  QCheck2.Test.make ~name:"Algorithm 4 output is a valid BE-tree" ~count:200
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_query)
    (fun (triples, query) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
      let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Wco in
      let transformed = Sparql_uo.Transform.multi_level env (BT.of_query query) in
      match BT.check transformed with Ok () -> true | Error _ -> false)

(* --- Cost model ------------------------------------------------------------------ *)

let test_cost_model_node_cards () =
  let store =
    Rdf_store.Triple_store.of_triples
      [
        Rdf.Triple.make (Qgen.iri 0) (Qgen.pred 0) (Qgen.iri 1);
        Rdf.Triple.make (Qgen.iri 2) (Qgen.pred 0) (Qgen.iri 1);
        Rdf.Triple.make (Qgen.iri 0) (Qgen.pred 1) (Qgen.iri 3);
      ]
  in
  let table = Sparql.Vartable.create () in
  let env = Engine.Bgp_eval.make store table Engine.Bgp_eval.Wco in
  let bgp0 = [ TP.make (v "x") (TP.Term (Qgen.pred 0)) (v "y") ] in
  let bgp1 = [ TP.make (v "x") (TP.Term (Qgen.pred 1)) (v "y") ] in
  Alcotest.(check (float 0.001)) "single BGP card exact" 2.
    (Sparql_uo.Cost_model.bgp_card env bgp0);
  Alcotest.(check (float 0.001)) "empty BGP card 1" 1.
    (Sparql_uo.Cost_model.bgp_card env []);
  Alcotest.(check (float 0.001)) "empty BGP cost 0" 0.
    (Sparql_uo.Cost_model.bgp_cost env []);
  let group b = { BT.children = [ BT.Bgp b ]; filters = [] } in
  (* Union card = sum of branches (f_UNION). *)
  Alcotest.(check (float 0.001)) "union = sum" 3.
    (Sparql_uo.Cost_model.node_card env (BT.Union [ group bgp0; group bgp1 ]));
  (* Group card = product of children (f_AND). *)
  Alcotest.(check (float 0.001)) "group = product" 2.
    (Sparql_uo.Cost_model.group_card env
       { BT.children = [ BT.Bgp bgp0; BT.Bgp bgp1 ]; filters = [] });
  (* Optional never shrinks below 1. *)
  let empty_bgp = [ TP.make (c "http://absent") (TP.Term (Qgen.pred 0)) (v "y") ] in
  Alcotest.(check (float 0.001)) "optional floor 1" 1.
    (Sparql_uo.Cost_model.node_card env (BT.Optional (group empty_bgp)))

let test_cost_model_merge_delta_sign () =
  (* A selective anchor merging into a UNION of unselective branches must
     have negative delta-cost; the paper's favorable case. *)
  let triples =
    List.concat_map
      (fun i ->
        [
          Rdf.Triple.make (Qgen.iri i) (Qgen.pred 0) (Qgen.iri ((i + 1) mod 6));
          Rdf.Triple.make (Qgen.iri i) (Qgen.pred 1) (Qgen.iri ((i + 2) mod 6));
        ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let triples =
    Rdf.Triple.make (Qgen.iri 0) (Qgen.pred 2) (Qgen.iri 1) :: triples
  in
  let store = Rdf_store.Triple_store.of_triples triples in
  let query =
    Sparql.Parser.parse
      "SELECT * WHERE { ?x <http://t/p2> ?y . { ?x <http://t/p0> ?z . } UNION { ?x <http://t/p1> ?z . } }"
  in
  let tree = BT.of_query query in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Wco in
  let before = Sparql_uo.Cost_model.two_level_cost env tree in
  let merged = Sparql_uo.Transform.apply_merge tree ~p1:0 ~union:1 in
  let after = Sparql_uo.Cost_model.two_level_cost env merged in
  Alcotest.(check bool) "selective merge is favorable" true (after < before)

(* --- Evaluator: candidate pruning ------------------------------------------------- *)

let test_evaluator_pruning_reduces_work () =
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let entry = Workload.Queries.get Workload.Queries.Lubm "q1.3" in
  let query = Sparql.Parser.parse entry.Workload.Queries.text in
  let run threshold =
    let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
    let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Wco in
    let bag, stats = Sparql_uo.Evaluator.eval env ~threshold (BT.of_query query) in
    (Sparql.Bag.length bag, stats)
  in
  let n_base, stats_base = run Sparql_uo.Evaluator.No_pruning in
  let n_cp, stats_cp =
    run (Sparql_uo.Evaluator.Fixed (Rdf_store.Triple_store.size store / 100))
  in
  Alcotest.(check int) "same result count" n_base n_cp;
  Alcotest.(check bool) "pruning reduced intermediate rows" true
    (stats_cp.Sparql_uo.Evaluator.total_rows
     < stats_base.Sparql_uo.Evaluator.total_rows);
  Alcotest.(check bool) "some BGPs pruned" true
    (stats_cp.Sparql_uo.Evaluator.pruned_bgps > 0)

let test_evaluator_join_space () =
  (* JS of a single BGP is its result size; joining two BGPs multiplies. *)
  let store =
    Rdf_store.Triple_store.of_triples
      [
        Rdf.Triple.make (Qgen.iri 0) (Qgen.pred 0) (Qgen.iri 1);
        Rdf.Triple.make (Qgen.iri 2) (Qgen.pred 0) (Qgen.iri 3);
        Rdf.Triple.make (Qgen.iri 1) (Qgen.pred 1) (Qgen.iri 2);
      ]
  in
  let query =
    Sparql.Parser.parse
      "SELECT * WHERE { ?x <http://t/p0> ?y . { ?y <http://t/p1> ?z . } UNION { ?z <http://t/p1> ?y . } }"
  in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Hash_join in
  let _, stats =
    Sparql_uo.Evaluator.eval env ~threshold:Sparql_uo.Evaluator.No_pruning
      (BT.of_query query)
  in
  (* JS = |p0| * (|p1| + |p1|) = 2 * 2 = 4. *)
  Alcotest.(check (float 0.001)) "join space" 4. stats.Sparql_uo.Evaluator.join_space

(* --- Executor ------------------------------------------------------------------------ *)

let test_executor_projection_distinct () =
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let all =
    Sparql_uo.Executor.run store
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> SELECT ?v2 WHERE { ?v1 ub:memberOf ?v2 . }"
  in
  let distinct =
    Sparql_uo.Executor.run store
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> SELECT DISTINCT ?v2 WHERE { ?v1 ub:memberOf ?v2 . }"
  in
  let n_all = Option.get all.Sparql_uo.Executor.result_count in
  let n_distinct = Option.get distinct.Sparql_uo.Executor.result_count in
  Alcotest.(check bool) "distinct strictly smaller" true (n_distinct < n_all);
  (* tiny has exactly 15+ departments in university 0; distinct members-of
     equals the department count. *)
  Alcotest.(check bool) "distinct plausibly = #departments" true
    (n_distinct >= 15 && n_distinct <= 26)

let test_executor_limit_offset () =
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let base =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> SELECT * \
     WHERE { ?v1 ub:memberOf ?v2 . }"
  in
  let total =
    Option.get
      (Sparql_uo.Executor.run store base).Sparql_uo.Executor.result_count
  in
  let limited =
    Option.get
      (Sparql_uo.Executor.run store (base ^ " LIMIT 7")).Sparql_uo.Executor
        .result_count
  in
  Alcotest.(check int) "limit applies" 7 limited;
  let tail =
    Option.get
      (Sparql_uo.Executor.run store
         (base ^ Printf.sprintf " OFFSET %d" (total - 3)))
        .Sparql_uo.Executor.result_count
  in
  Alcotest.(check int) "offset leaves the tail" 3 tail;
  let window =
    Option.get
      (Sparql_uo.Executor.run store (base ^ " LIMIT 5 OFFSET 2"))
        .Sparql_uo.Executor.result_count
  in
  Alcotest.(check int) "limit+offset window" 5 window

let test_executor_row_budget () =
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let entry = Workload.Queries.get Workload.Queries.Lubm "q1.2" in
  let report =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base ~row_budget:100 store
      entry.Workload.Queries.text
  in
  Alcotest.(check bool) "budget exhausted -> None" true
    (report.Sparql_uo.Executor.result_count = None);
  (* And the budget must not leak into later runs. *)
  let unlimited =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base store
      entry.Workload.Queries.text
  in
  Alcotest.(check bool) "subsequent run unaffected" true
    (unlimited.Sparql_uo.Executor.result_count <> None)

let test_executor_solutions_decode () =
  let data =
    [ Rdf.Triple.make (Qgen.iri 0) (Qgen.pred 0) (Rdf.Term.literal "hello") ]
  in
  let store = Rdf_store.Triple_store.of_triples data in
  let report =
    Sparql_uo.Executor.run store "SELECT * WHERE { ?s <http://t/p0> ?o . }"
  in
  match Sparql_uo.Executor.solutions store report with
  | [ solution ] ->
      Alcotest.(check bool) "subject decoded" true
        (List.assoc "s" solution = Qgen.iri 0);
      Alcotest.(check bool) "object decoded" true
        (List.assoc "o" solution = Rdf.Term.literal "hello")
  | other ->
      Alcotest.fail (Printf.sprintf "expected 1 solution, got %d" (List.length other))

let test_executor_unknown_constants () =
  (* Constants absent from the dictionary make BGPs empty without error,
     in every mode; OPTIONALs on such BGPs still retain the left side. *)
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let text =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> SELECT * \
     WHERE { ?x ub:worksFor <http://nowhere.example.org/nope> . }"
  in
  List.iter
    (fun mode ->
      let report = Sparql_uo.Executor.run ~mode store text in
      Alcotest.(check (option int))
        (Sparql_uo.Executor.mode_name mode)
        (Some 0) report.Sparql_uo.Executor.result_count)
    Sparql_uo.Executor.all_modes;
  let optional_text =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> SELECT * \
     WHERE { ?x ub:headOf ?d . OPTIONAL { ?x ub:worksFor \
     <http://nowhere.example.org/nope> . } }"
  in
  let with_opt = Sparql_uo.Executor.run store optional_text in
  let without =
    Sparql_uo.Executor.run store
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> SELECT * \
       WHERE { ?x ub:headOf ?d . }"
  in
  Alcotest.(check (option int)) "left side retained"
    without.Sparql_uo.Executor.result_count
    with_opt.Sparql_uo.Executor.result_count

let test_executor_modes_on_benchmarks () =
  (* All four modes agree on every benchmark query over the tiny datasets
     (the deterministic counterpart of the random-query property). *)
  List.iter
    (fun (ds, store) ->
      let stats = Rdf_store.Stats.compute store in
      List.iter
        (fun (entry : Workload.Queries.entry) ->
          let counts =
            List.map
              (fun mode ->
                let r =
                  Sparql_uo.Executor.run ~mode ~stats store entry.Workload.Queries.text
                in
                Option.get r.Sparql_uo.Executor.result_count)
              Sparql_uo.Executor.all_modes
          in
          match counts with
          | base :: rest ->
              List.iteri
                (fun i n ->
                  Alcotest.(check int)
                    (Printf.sprintf "%s %s mode %d" (Workload.Queries.dataset_name ds)
                       entry.id (i + 1))
                    base n)
                rest
          | [] -> ())
        (Workload.Queries.all ds))
    [
      (Workload.Queries.Lubm, Workload.Lubm.store Workload.Lubm.tiny);
      (Workload.Queries.Dbpedia, Workload.Dbpedia_gen.store Workload.Dbpedia_gen.tiny);
    ]

let () =
  Alcotest.run "sparql_uo"
    [
      ( "be_tree",
        [
          Alcotest.test_case "coalesce across level" `Quick test_betree_coalesces_across_level;
          Alcotest.test_case "leftmost placement" `Quick test_betree_bgp_at_leftmost_position;
          Alcotest.test_case "1-branch union = group" `Quick test_betree_single_branch_union_becomes_group;
          Alcotest.test_case "validity" `Quick test_betree_validity;
          Alcotest.test_case "metrics" `Quick test_betree_metrics;
          Alcotest.test_case "coalescing barrier safety" `Quick test_betree_coalescing_barrier_safety;
          Alcotest.test_case "to_algebra semantics" `Quick test_betree_to_algebra_roundtrip_semantics;
        ] );
      ( "transform",
        [
          Alcotest.test_case "merge mechanics" `Quick test_merge_mechanics;
          Alcotest.test_case "merge needs coalescable branch" `Quick test_merge_requires_coalescable;
          Alcotest.test_case "merge blocked across OPTIONAL" `Quick test_merge_blocked_across_optional;
          Alcotest.test_case "inject mechanics" `Quick test_inject_mechanics;
          Alcotest.test_case "inject only rightward" `Quick test_inject_only_rightward;
          Alcotest.test_case "inject transitive coalescing" `Quick test_inject_transitive_coalescing;
          QCheck_alcotest.to_alcotest prop_transforms_preserve_semantics;
          QCheck_alcotest.to_alcotest prop_multi_level_valid;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "node cardinalities" `Quick test_cost_model_node_cards;
          Alcotest.test_case "favorable merge has negative delta" `Quick test_cost_model_merge_delta_sign;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "pruning reduces work" `Quick test_evaluator_pruning_reduces_work;
          Alcotest.test_case "join space metric" `Quick test_evaluator_join_space;
        ] );
      ( "executor",
        [
          Alcotest.test_case "projection + distinct" `Quick test_executor_projection_distinct;
          Alcotest.test_case "limit/offset" `Quick test_executor_limit_offset;
          Alcotest.test_case "row budget" `Quick test_executor_row_budget;
          Alcotest.test_case "solutions decode" `Quick test_executor_solutions_decode;
          Alcotest.test_case "unknown constants" `Quick test_executor_unknown_constants;
          Alcotest.test_case "all modes agree on benchmarks" `Slow test_executor_modes_on_benchmarks;
          Alcotest.test_case "LIMIT pushdown early exit" `Quick test_streaming_limit_early_exit;
          QCheck_alcotest.to_alcotest prop_modes_agree_with_oracle;
          QCheck_alcotest.to_alcotest prop_streaming_modifiers_match_oracle;
        ] );
    ]
