(* Tests for the LBR baseline: GoSN construction and the equivalence of
   LBR's two-pass-semijoin evaluation with the Definition 7 oracle on
   well-designed AND/OPTIONAL queries. *)

let parse = Sparql.Parser.parse

let test_gosn_shape () =
  let q =
    parse
      "SELECT * WHERE { ?x ub:p ?y . OPTIONAL { ?y ub:q ?z . OPTIONAL { ?z ub:r ?w . } } OPTIONAL { ?x ub:s ?v . } }"
  in
  let gosn = Lbr.Gosn.of_query q in
  Alcotest.(check int) "master holds 1 pattern" 1 (List.length gosn.Lbr.Gosn.patterns);
  Alcotest.(check int) "two children" 2 (List.length gosn.Lbr.Gosn.children);
  let first = List.nth gosn.Lbr.Gosn.children 0 in
  Alcotest.(check int) "nested optional chains" 1 (List.length first.Lbr.Gosn.children);
  Alcotest.(check int) "four supernodes total" 4
    (List.length (Lbr.Gosn.supernodes gosn));
  Alcotest.(check int) "four patterns total" 4 (Lbr.Gosn.pattern_count gosn)

let test_gosn_normalizes_nested_groups () =
  (* { {A OPTIONAL B} } — the conjunctive part merges into the enclosing
     scope, the optional hangs off it. *)
  let q = parse "SELECT * WHERE { { ?x ub:p ?y . OPTIONAL { ?y ub:q ?z . } } ?x ub:r ?w . }" in
  let gosn = Lbr.Gosn.of_query q in
  Alcotest.(check int) "master has both conjunctive patterns" 2
    (List.length gosn.Lbr.Gosn.patterns);
  Alcotest.(check int) "one optional scope" 1 (List.length gosn.Lbr.Gosn.children)

let test_gosn_rejects_union_filter () =
  (match
     Lbr.Gosn.of_query
       (parse "SELECT * WHERE { { ?x ub:p ?y . } UNION { ?x ub:q ?y . } }")
   with
  | exception Lbr.Gosn.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for UNION");
  match
    Lbr.Gosn.of_query
      (parse "SELECT * WHERE { ?x ub:p ?y . FILTER (?y != ub:z) }")
  with
  | exception Lbr.Gosn.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for FILTER"

let test_lbr_on_lubm_queries () =
  (* LBR matches the Full executor on the OPTIONAL-only benchmark half. *)
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let stats = Rdf_store.Stats.compute store in
  List.iter
    (fun (entry : Workload.Queries.entry) ->
      let query = parse entry.text in
      if Lbr.Lbr_eval.supported query then begin
        let full = Sparql_uo.Executor.run_query ~stats store query in
        let vartable =
          Sparql.Vartable.of_list (Sparql.Ast.group_vars query.Sparql.Ast.where)
        in
        let env = Engine.Bgp_eval.make ~stats store vartable Engine.Bgp_eval.Hash_join in
        let lbr = Lbr.Lbr_eval.run env query in
        Alcotest.(check (option int))
          (entry.id ^ " result count")
          full.Sparql_uo.Executor.result_count lbr.Lbr.Lbr_eval.result_count
      end)
    (Workload.Queries.all Workload.Queries.Lubm)

let test_lbr_semijoin_prunes () =
  (* On a selective query, the two-pass scans must actually prune. *)
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let entry = Workload.Queries.get Workload.Queries.Lubm "q2.4" in
  let query = parse entry.Workload.Queries.text in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.Sparql.Ast.where) in
  let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Hash_join in
  let report = Lbr.Lbr_eval.run env query in
  Alcotest.(check bool) "scanned rows counted" true (report.Lbr.Lbr_eval.scanned_rows > 0);
  Alcotest.(check bool) "semijoins pruned" true (report.Lbr.Lbr_eval.semijoin_prunes > 0)

let test_lbr_row_budget () =
  let store = Workload.Lubm.store Workload.Lubm.tiny in
  let entry = Workload.Queries.get Workload.Queries.Lubm "q2.2" in
  let query = parse entry.Workload.Queries.text in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.Sparql.Ast.where) in
  let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Hash_join in
  let report = Lbr.Lbr_eval.run ~row_budget:50 env query in
  Alcotest.(check bool) "budget exceeded" true (report.Lbr.Lbr_eval.bag = None)

let test_well_designed () =
  let wd src = Lbr.Gosn.well_designed (parse src) in
  Alcotest.(check bool) "simple optional" true
    (wd "SELECT * WHERE { ?x ub:p ?y . OPTIONAL { ?y ub:q ?z . } }");
  Alcotest.(check bool) "var private to optional ok" true
    (wd "SELECT * WHERE { ?x ub:p ?y . OPTIONAL { ?z ub:q ?w . } }");
  (* ?z appears in two sibling optionals but not in the left side of the
     second: not well-designed. *)
  Alcotest.(check bool) "cross-optional var" true
    (wd "SELECT * WHERE { ?x ub:p ?y . OPTIONAL { ?x ub:q ?z . } OPTIONAL { ?x ub:r ?z . } }");
  (* ?b occurs in a nested optional and in the master scope but not in
     the nested optional's immediate left side: not well-designed. *)
  Alcotest.(check bool) "deep scope violation" false
    (wd
       "SELECT * WHERE { ?x ub:p ?b . OPTIONAL { ?x ub:q ?c . OPTIONAL { ?c ub:r ?b . } } }")

(* The per-supernode prefilter bitsets LBR's Pass 0b installs (now built
   through the shared [Candidates.of_two_bound]): for each two-bound
   pattern shape the returned set must hold exactly the matching third
   column, keyed to the pattern's variable column. *)
let test_of_two_bound () =
  let iri = Qgen.iri and pred = Qgen.pred in
  let store =
    Rdf_store.Triple_store.of_triples
      [
        Rdf.Triple.make (iri 0) (pred 0) (iri 1);
        Rdf.Triple.make (iri 0) (pred 0) (iri 2);
        Rdf.Triple.make (iri 3) (pred 0) (iri 1);
        Rdf.Triple.make (iri 0) (pred 1) (iri 1);
      ]
  in
  let snap = Rdf_store.Snapshot.of_store store in
  let table = Sparql.Vartable.create () in
  let module TP = Sparql.Triple_pattern in
  let check_shape name tp expected =
    let compiled = Engine.Compiled.compile snap table tp in
    match Engine.Candidates.of_two_bound snap compiled with
    | None -> Alcotest.fail (name ^ ": expected a prefilter set")
    | Some (col, set) ->
        let var =
          List.find_map
            (fun node -> match node with TP.Var v -> Some v | _ -> None)
            [ tp.TP.s; tp.TP.p; tp.TP.o ]
        in
        Alcotest.(check (option int))
          (name ^ ": keyed to the variable's column")
          (Sparql.Vartable.find table (Option.get var))
          (Some col);
        let ids =
          List.filter_map
            (fun term -> Rdf_store.Triple_store.encode_term store term)
            expected
        in
        Alcotest.(check int)
          (name ^ ": cardinality")
          (List.length ids)
          (Engine.Candidates.cardinal set);
        List.iter
          (fun id ->
            Alcotest.(check bool) (name ^ ": member") true
              (Engine.Candidates.mem set id))
          ids
  in
  let t term = TP.Term term and v name = TP.Var name in
  check_shape "sp-bound" (TP.make (t (iri 0)) (t (pred 0)) (v "o"))
    [ iri 1; iri 2 ];
  check_shape "so-bound" (TP.make (t (iri 0)) (v "p") (t (iri 1)))
    [ pred 0; pred 1 ];
  check_shape "po-bound" (TP.make (v "s") (t (pred 0)) (t (iri 1)))
    [ iri 0; iri 3 ];
  (* Fewer than two bound positions: no prefilter. *)
  let one_bound =
    Engine.Candidates.of_two_bound snap
      (Engine.Compiled.compile snap table (TP.make (v "x") (t (pred 0)) (v "y")))
  in
  Alcotest.(check bool) "one-bound pattern yields none" true (one_bound = None)

(* Property: LBR = oracle on random well-designed AND/OPTIONAL queries
   (non-well-designed generations are skipped — LBR refuses them). *)
let prop_lbr_matches_oracle =
  QCheck2.Test.make ~name:"LBR = oracle on well-designed OPTIONAL queries"
    ~count:300
    ~print:(fun (triples, query) ->
      Qgen.pp_dataset triples ^ "\n" ^ Qgen.pp_query query)
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_wd_query)
    (fun (triples, query) ->
      QCheck2.assume (Lbr.Gosn.well_designed query);
      let store = Rdf_store.Triple_store.of_triples triples in
      let expected, _ = Qgen.oracle store query in
      let vartable =
        Sparql.Vartable.of_list (Sparql.Ast.group_vars query.Sparql.Ast.where)
      in
      let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Hash_join in
      let report = Lbr.Lbr_eval.run env query in
      match report.Lbr.Lbr_eval.bag with
      | Some bag -> Sparql.Bag.equal_as_bags bag expected
      | None -> false)

let () =
  Alcotest.run "lbr"
    [
      ( "gosn",
        [
          Alcotest.test_case "shape" `Quick test_gosn_shape;
          Alcotest.test_case "nested group normalization" `Quick test_gosn_normalizes_nested_groups;
          Alcotest.test_case "rejects UNION/FILTER" `Quick test_gosn_rejects_union_filter;
        ] );
      ( "eval",
        [
          Alcotest.test_case "matches Full on LUBM workload" `Quick test_lbr_on_lubm_queries;
          Alcotest.test_case "semijoins prune" `Quick test_lbr_semijoin_prunes;
          Alcotest.test_case "two-bound prefilter sets" `Quick
            test_of_two_bound;
          Alcotest.test_case "row budget" `Quick test_lbr_row_budget;
          QCheck_alcotest.to_alcotest prop_lbr_matches_oracle;
        ] );
    ]
