(* Tests for the engine library: coalescing (Definitions 3-5), compiled
   patterns, the sampling planner, candidates, and the equivalence of the
   two BGP engines against each other and a naive oracle. *)

module TP = Sparql.Triple_pattern

let v name = TP.Var name
let c iri = TP.Term (Rdf.Term.iri iri)
let iri = Qgen.iri
let pred = Qgen.pred

let tiny_store () =
  Rdf_store.Triple_store.of_triples
    [
      Rdf.Triple.make (iri 0) (pred 0) (iri 1);
      Rdf.Triple.make (iri 0) (pred 0) (iri 2);
      Rdf.Triple.make (iri 1) (pred 1) (iri 2);
      Rdf.Triple.make (iri 2) (pred 1) (iri 3);
      Rdf.Triple.make (iri 3) (pred 0) (iri 0);
    ]

(* --- Bgp coalescing --------------------------------------------------------- *)

let test_coalesce_components () =
  let tp1 = TP.make (v "x") (c "p") (v "y") in
  let tp2 = TP.make (v "y") (c "q") (v "z") in
  let tp3 = TP.make (v "a") (c "p") (v "b") in
  let components = Engine.Bgp.coalesce_maximal [ tp1; tp3; tp2 ] in
  (* tp1 and tp2 connect through ?y; tp3 is separate. Components are
     ordered by leftmost constituent: [tp1;tp2] first (tp1 at index 0). *)
  Alcotest.(check int) "two components" 2 (List.length components);
  Alcotest.(check bool) "first component = {tp1, tp2}" true
    (List.nth components 0 = [ tp1; tp2 ]);
  Alcotest.(check bool) "second component = {tp3}" true
    (List.nth components 1 = [ tp3 ])

let test_coalesce_transitive () =
  (* a-b, b-c, c-d chain: one component despite no direct a-d edge. *)
  let tps =
    [
      TP.make (v "a") (c "p") (v "b");
      TP.make (v "b") (c "p") (v "c");
      TP.make (v "c") (c "p") (v "d");
    ]
  in
  Alcotest.(check int) "single chain component" 1
    (List.length (Engine.Bgp.coalesce_maximal tps))

let test_coalesce_predicate_var_ignored () =
  (* Sharing a variable only at the predicate position must NOT coalesce
     (Definition 3 looks at subject/object positions only). *)
  let tps = [ TP.make (v "a") (v "p") (v "b"); TP.make (v "c") (v "p") (v "d") ] in
  Alcotest.(check int) "not coalesced" 2
    (List.length (Engine.Bgp.coalesce_maximal tps))

let test_bgp_coalescable () =
  let b1 = [ TP.make (v "x") (c "p") (v "y") ] in
  let b2 = [ TP.make (v "z") (c "p") (v "w"); TP.make (v "y") (c "p") (v "q") ] in
  Alcotest.(check bool) "coalescable via second pattern" true
    (Engine.Bgp.coalescable b1 b2);
  Alcotest.(check bool) "empty coalescable with nothing" false
    (Engine.Bgp.coalescable [] b2)

(* --- Compiled ----------------------------------------------------------------- *)

let test_compile_missing_term () =
  let snap = Rdf_store.Snapshot.of_store (tiny_store ()) in
  let table = Sparql.Vartable.create () in
  let compiled =
    Engine.Compiled.compile snap table (TP.make (c "http://absent") (c "p") (v "x"))
  in
  Alcotest.(check bool) "missing detected" true (Engine.Compiled.has_missing compiled);
  Alcotest.(check int) "missing count 0" 0
    (Engine.Compiled.exact_count snap compiled)

let test_compile_counts () =
  let snap = Rdf_store.Snapshot.of_store (tiny_store ()) in
  let table = Sparql.Vartable.create () in
  let compiled =
    Engine.Compiled.compile snap table
      (TP.make (v "s") (TP.Term (pred 0)) (v "o"))
  in
  Alcotest.(check int) "p0 count" 3 (Engine.Compiled.exact_count snap compiled);
  let row = Sparql.Binding.create ~width:(Sparql.Vartable.size table) in
  let scol = Option.get (Sparql.Vartable.find table "s") in
  row.(scol) <- Option.get (Rdf_store.Snapshot.encode_term snap (iri 0));
  Alcotest.(check int) "count with s bound" 2
    (Engine.Compiled.count_with snap compiled row)

let test_var_columns_distinct () =
  let table = Sparql.Vartable.create () in
  let snap = Rdf_store.Snapshot.of_store (tiny_store ()) in
  let compiled =
    Engine.Compiled.compile snap table (TP.make (v "x") (TP.Term (pred 0)) (v "x"))
  in
  Alcotest.(check int) "repeated var counted once" 1
    (List.length (Engine.Compiled.var_columns compiled))

(* --- Planner ------------------------------------------------------------------- *)

let test_planner_empty () =
  let store = tiny_store () in
  let snap = Rdf_store.Snapshot.of_store store in
  let stats = Rdf_store.Stats.compute store in
  let table = Sparql.Vartable.create () in
  let plan = Engine.Planner.plan snap stats table [] in
  Alcotest.(check int) "no steps" 0 (List.length plan.Engine.Planner.steps);
  Alcotest.(check (float 0.0001)) "unit card" 1. plan.Engine.Planner.result_card

let test_planner_selective_first () =
  let store = tiny_store () in
  let snap = Rdf_store.Snapshot.of_store store in
  let stats = Rdf_store.Stats.compute store in
  let table = Sparql.Vartable.create () in
  (* p1 has 2 matches, p0 has 3: the plan should start with p1. *)
  let patterns =
    Engine.Compiled.compile_list snap table
      [
        TP.make (v "x") (TP.Term (pred 0)) (v "y");
        TP.make (v "y") (TP.Term (pred 1)) (v "z");
      ]
  in
  let plan = Engine.Planner.plan snap stats table patterns in
  match plan.Engine.Planner.steps with
  | first :: _ ->
      Alcotest.(check int) "most selective first" 2 first.Engine.Planner.pattern_count
  | [] -> Alcotest.fail "expected steps"

let test_planner_single_pattern_exact () =
  let store = tiny_store () in
  let snap = Rdf_store.Snapshot.of_store store in
  let stats = Rdf_store.Stats.compute store in
  let table = Sparql.Vartable.create () in
  let patterns =
    Engine.Compiled.compile_list snap table
      [ TP.make (v "x") (TP.Term (pred 0)) (v "y") ]
  in
  let plan = Engine.Planner.plan snap stats table patterns in
  Alcotest.(check (float 0.0001)) "single pattern cardinality exact" 3.
    plan.Engine.Planner.result_card

(* --- Candidates ------------------------------------------------------------------ *)

let test_candidates () =
  let values = Hashtbl.create 4 in
  Hashtbl.replace values 1 ();
  Hashtbl.replace values 2 ();
  (* A small universe takes the dense-bitset representation; a sorted array
     wraps explicitly. Both must behave identically. *)
  let dense = Engine.Candidates.of_hashtbl ~universe:16 values in
  let sorted = Engine.Candidates.of_sorted_array [| 1; 2 |] in
  List.iter
    (fun (name, set) ->
      let cands = Engine.Candidates.set Engine.Candidates.empty ~col:0 set in
      Alcotest.(check int) (name ^ " cardinal") 2 (Engine.Candidates.cardinal set);
      Alcotest.(check bool) (name ^ " allows member") true
        (Engine.Candidates.allows cands ~col:0 1);
      Alcotest.(check bool) (name ^ " rejects non-member") false
        (Engine.Candidates.allows cands ~col:0 9);
      Alcotest.(check bool) (name ^ " rejects negative") false
        (Engine.Candidates.mem set (-3));
      Alcotest.(check bool) (name ^ " unconstrained column allows") true
        (Engine.Candidates.allows cands ~col:5 9);
      let seen = ref [] in
      Engine.Candidates.iter_values set ~f:(fun v -> seen := v :: !seen);
      Alcotest.(check (list int)) (name ^ " iterates ascending") [ 1; 2 ]
        (List.rev !seen))
    [ ("dense", dense); ("sorted", sorted) ];
  Alcotest.(check bool) "empty is empty" true
    (Engine.Candidates.is_empty Engine.Candidates.empty)

(* --- Engine equivalence (property) ------------------------------------------------ *)

(* Naive BGP evaluation: scan every pattern, nested-loop join. *)
let naive_bgp store table width patterns =
  let snap = Rdf_store.Snapshot.of_store store in
  List.fold_left
    (fun acc tp ->
      let compiled = Engine.Compiled.compile snap table tp in
      let scanned =
        Engine.Hash_join.scan_pattern snap ~width compiled
          ~candidates:Engine.Candidates.empty
      in
      Sparql.Bag.join acc scanned)
    (Sparql.Bag.unit ~width) patterns

let prop_engines_agree =
  QCheck2.Test.make ~name:"wco = hash join = naive on random BGPs" ~count:150
    QCheck2.Gen.(
      pair Qgen.gen_dataset (list_size (int_range 1 4) Qgen.gen_triple_pattern))
    (fun (triples, patterns) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      let vars =
        List.concat_map Sparql.Triple_pattern.vars patterns
        |> List.sort_uniq compare
      in
      let table = Sparql.Vartable.of_list vars in
      let wco_env = Engine.Bgp_eval.make store table Engine.Bgp_eval.Wco in
      let hash_env = Engine.Bgp_eval.make store table Engine.Bgp_eval.Hash_join in
      let width = Sparql.Vartable.size table in
      let reference = naive_bgp store table width patterns in
      let wco = Engine.Bgp_eval.eval wco_env patterns ~candidates:Engine.Candidates.empty in
      let hash =
        Engine.Bgp_eval.eval hash_env patterns ~candidates:Engine.Candidates.empty
      in
      Sparql.Bag.equal_as_bags wco reference
      && Sparql.Bag.equal_as_bags hash reference)

(* Candidate sets must behave exactly like a post-filter. *)
let prop_candidates_are_filters =
  QCheck2.Test.make ~name:"candidate pruning = post-filter" ~count:150
    QCheck2.Gen.(
      triple Qgen.gen_dataset
        (list_size (int_range 1 3) Qgen.gen_triple_pattern)
        (list_size (int_range 1 4) (int_range 0 5)))
    (fun (triples, patterns, allowed) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      let vars =
        List.concat_map Sparql.Triple_pattern.vars patterns
        |> List.sort_uniq compare
      in
      match vars with
      | [] -> true
      | first :: _ ->
          let table = Sparql.Vartable.of_list vars in
          let col = Option.get (Sparql.Vartable.find table first) in
          let values = Hashtbl.create 8 in
          List.iter
            (fun i ->
              match Rdf_store.Triple_store.encode_term store (iri i) with
              | Some id -> Hashtbl.replace values id ()
              | None -> ())
            allowed;
          let universe =
            Rdf_store.Dictionary.size (Rdf_store.Triple_store.dictionary store)
          in
          let cands =
            Engine.Candidates.set Engine.Candidates.empty ~col
              (Engine.Candidates.of_hashtbl ~universe values)
          in
          let width = Sparql.Vartable.size table in
          List.for_all
            (fun engine ->
              let env = Engine.Bgp_eval.make store table engine in
              let pruned = Engine.Bgp_eval.eval env patterns ~candidates:cands in
              let full =
                Engine.Bgp_eval.eval env patterns
                  ~candidates:Engine.Candidates.empty
              in
              let filtered =
                Sparql.Bag.filter full ~f:(fun row ->
                    (not (Sparql.Binding.is_bound row col))
                    || Hashtbl.mem values row.(col))
              in
              Sparql.Bag.equal_as_bags pruned filtered)
            [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])

(* --- Multiway intersection -------------------------------------------------------- *)

let test_intersect_kernel () =
  let check name expected ops =
    Alcotest.(check (array int)) name expected (Engine.Intersect.arrays ops)
  in
  check "single operand" [| 1; 5; 9 |] [ [| 1; 5; 9 |] ];
  check "singleton sets" [| 7 |] [ [| 7 |]; [| 3; 7 |] ];
  check "empty operand" [||] [ [| 1; 2; 3 |]; [||] ];
  check "disjoint" [||] [ [| 1; 3; 5 |]; [| 2; 4; 6 |] ];
  check "three-way" [| 4; 8 |]
    [ [| 1; 4; 8; 9 |]; [| 2; 4; 7; 8 |]; [| 0; 4; 8; 20 |] ];
  (* A > 4x size ratio must take the galloping pass, small ratios the
     linear merge — and both must produce the same sets. *)
  let evens = Array.init 500 (fun i -> 2 * i) in
  Engine.Intersect.reset ();
  check "gallop result" [| 10; 400 |] [ [| 10; 151; 400 |]; evens ];
  let c = Engine.Intersect.read () in
  Alcotest.(check bool) "ratio > 4x gallops" true (c.gallop_passes = 1);
  Engine.Intersect.reset ();
  check "merge result" [| 0; 2 |] [ [| 0; 1; 2; 3 |]; [| 0; 2; 4; 6; 8 |] ];
  let c = Engine.Intersect.read () in
  Alcotest.(check bool) "ratio <= 4x merges" true
    (c.merge_passes = 1 && c.gallop_passes = 0)

let strictly_increasing a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

(* The kernel against naive membership: any number of operands (>2
   included), any size skew (so both the gallop and merge paths run), and
   the sorted duplicate-free output invariant. *)
let prop_intersect_matches_naive =
  QCheck2.Test.make ~name:"multiway intersection = naive set intersection"
    ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (list_size (int_range 0 40) (int_range 0 60)))
    (fun lists ->
      let ops =
        List.map (fun l -> Array.of_list (List.sort_uniq compare l)) lists
      in
      let result = Engine.Intersect.arrays ops in
      let mem a x = Array.exists (fun y -> y = x) a in
      let expected =
        match ops with
        | [] -> [||]
        | first :: rest ->
            Array.of_list
              (List.filter
                 (fun x -> List.for_all (fun a -> mem a x) rest)
                 (Array.to_list first))
      in
      result = expected && strictly_increasing result)

let test_planner_groups_star () =
  let store = tiny_store () in
  let snap = Rdf_store.Snapshot.of_store store in
  let stats = Rdf_store.Stats.compute store in
  let table = Sparql.Vartable.create () in
  (* All three patterns have ?x as their only variable: one Extend step
     intersecting three column views, no intermediate bag at all. *)
  let star =
    Engine.Compiled.compile_list snap table
      [
        TP.make (v "x") (TP.Term (pred 0)) (TP.Term (iri 1));
        TP.make (v "x") (TP.Term (pred 0)) (TP.Term (iri 2));
        TP.make (TP.Term (iri 3)) (TP.Term (pred 0)) (v "x");
      ]
  in
  let plan = Engine.Planner.plan snap stats table star in
  (match plan.Engine.Planner.vsteps with
  | [ Engine.Planner.Extend { steps; _ } ] ->
      Alcotest.(check int) "star absorbs all three" 3 (List.length steps)
  | _ -> Alcotest.fail "expected a single Extend vstep");
  (* Triangle: the first pattern binds two fresh columns (a Scan), each
     closing pattern then single-extends and the last one is absorbed. *)
  let table = Sparql.Vartable.create () in
  let triangle =
    Engine.Compiled.compile_list snap table
      [
        TP.make (v "x") (TP.Term (pred 0)) (v "y");
        TP.make (v "y") (TP.Term (pred 1)) (v "z");
        TP.make (v "x") (TP.Term (pred 1)) (v "z");
      ]
  in
  let plan = Engine.Planner.plan snap stats table triangle in
  match plan.Engine.Planner.vsteps with
  | [ Engine.Planner.Scan _; Engine.Planner.Extend { steps; _ } ] ->
      Alcotest.(check int) "closing pattern absorbed" 2 (List.length steps)
  | _ -> Alcotest.fail "expected Scan then Extend"

(* The tentpole equivalence: the multiway-intersection path, the legacy
   pattern-at-a-time path and the Definition-7 oracle agree on random
   queries across every mode x engine x domains {1,4} x streaming
   configuration. *)
let prop_multiway_matches_legacy =
  QCheck2.Test.make ~name:"multiway = legacy scan = oracle across configs"
    ~count:25
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_query)
    (fun (triples, query) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      let expected, _ = Qgen.oracle store query in
      let run () =
        List.for_all
          (fun (mode, engine, domains, streaming) ->
            let report =
              Sparql_uo.Executor.run_query ~mode ~engine ~domains ~streaming
                store query
            in
            match report.Sparql_uo.Executor.bag with
            | Some bag -> Sparql.Bag.equal_as_bags bag expected
            | None -> false)
          Qgen.exec_configs
      in
      let with_multiway enabled =
        Engine.Wco.set_multiway enabled;
        Fun.protect ~finally:(fun () -> Engine.Wco.set_multiway true) run
      in
      with_multiway true && with_multiway false)

(* --- Parallel execution ----------------------------------------------------------- *)

(* The multicore layer must be invisible in the results: every parallel
   configuration — engine x domains {2,4} x streaming on/off — agrees
   with the serial run as bags, on every mode and random query. *)
let prop_parallel_matches_serial =
  QCheck2.Test.make
    ~name:"parallel = serial across mode x engine x domains x streaming"
    ~count:40
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_query)
    (fun (triples, query) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      List.for_all
        (fun mode ->
          List.for_all
            (fun engine ->
              let serial =
                Sparql_uo.Executor.run_query ~mode ~engine ~domains:1 store
                  query
              in
              match serial.Sparql_uo.Executor.bag with
              | None -> false
              | Some expected ->
                  List.for_all
                    (fun domains ->
                      List.for_all
                        (fun streaming ->
                          let par =
                            Sparql_uo.Executor.run_query ~mode ~engine ~domains
                              ~streaming store query
                          in
                          match par.Sparql_uo.Executor.bag with
                          | Some bag -> Sparql.Bag.equal_as_bags bag expected
                          | None -> false)
                        [ true; false ])
                    [ 2; 4 ])
            [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])
        Sparql_uo.Executor.all_modes)

(* A chain dataset big enough that both the UNION fan-out and the
   per-branch join steps cross every parallel threshold. *)
let chain_triples n =
  List.concat
    (List.init n (fun i ->
         [
           Rdf.Triple.make (iri i) (pred 0) (iri (n + i));
           Rdf.Triple.make (iri (n + i)) (pred 1) (iri (2 * n + i));
         ]))

(* Nested parallelism must enqueue into the running scheduler, not
   deadlock and not degrade to serial: the UNION fans its branches out
   one-per-morsel, and the joins inside each branch (probe sides of 1000
   rows) seed their own morsels into the same scheduler while every
   domain is already busy with a branch. Completing at all is the
   deadlock check; the serial run is the correctness oracle. *)
let test_nested_union_of_joins () =
  let store = Rdf_store.Triple_store.of_triples (chain_triples 1000) in
  let text =
    "SELECT * WHERE {\n\
    \  { ?x <http://t/p0> ?y . ?y <http://t/p1> ?z }\n\
     UNION { ?a <http://t/p1> ?b . ?a <http://t/p1> ?c }\n\
     UNION { ?s <http://t/p0> ?t . ?s <http://t/p0> ?u } }"
  in
  let serial = Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base ~domains:1 store text in
  List.iter
    (fun streaming ->
      let par =
        Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base ~domains:4
          ~streaming store text
      in
      match (serial.Sparql_uo.Executor.bag, par.Sparql_uo.Executor.bag) with
      | Some b1, Some b2 ->
          Alcotest.(check bool)
            (Printf.sprintf "nested UNION of joins equal (streaming=%b)"
               streaming)
            true
            (Sparql.Bag.equal_as_bags b1 b2)
      | _ -> Alcotest.fail "unexpected resource limit")
    [ true; false ]

(* The tentpole's early-termination guarantee: with a streamed LIMIT at 4
   domains, a satisfied limit raises [Stop] in one shard and the other
   domains park at their next morsel boundary — the run must scan far
   less than the materializing run, which extends all 1000 input rows.
   (The historical scheduler replayed worker bags serially, so both runs
   paid the full scan.) *)
let test_limit_early_termination () =
  let store = Rdf_store.Triple_store.of_triples (chain_triples 1000) in
  let text =
    "SELECT * WHERE { ?x <http://t/p0> ?y . ?y <http://t/p1> ?z } LIMIT 10"
  in
  let run ~streaming =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base
      ~engine:Engine.Bgp_eval.Wco ~domains:4 ~streaming store text
  in
  let streamed = run ~streaming:true in
  let materialized = run ~streaming:false in
  Alcotest.(check (option int)) "streamed limit honored" (Some 10)
    streamed.Sparql_uo.Executor.result_count;
  Alcotest.(check (option int)) "materialized limit honored" (Some 10)
    materialized.Sparql_uo.Executor.result_count;
  (* The materializing run pays both full steps (~2000 produced rows); the
     streamed run pays the first step plus at most the in-flight morsels
     of the 4 domains when the Stop lands. *)
  Alcotest.(check bool)
    (Printf.sprintf "full scan produced %d rows"
       materialized.Sparql_uo.Executor.pushed_rows)
    true
    (materialized.Sparql_uo.Executor.pushed_rows >= 2000);
  Alcotest.(check bool)
    (Printf.sprintf "early termination crossed domains (%d rows)"
       streamed.Sparql_uo.Executor.pushed_rows)
    true
    (streamed.Sparql_uo.Executor.pushed_rows <= 1600)

(* --- Parallel-safe sinks (fork/drain merge) ---------------------------------------- *)

let row2 ~width a b =
  let r = Sparql.Binding.create ~width in
  r.(0) <- a;
  if b >= 0 then r.(1) <- b;
  r

(* Sharded DISTINCT: each shard deduplicates locally, the drain replay
   deduplicates globally — the merged result must equal the serial
   DISTINCT over the same rows, whatever the shard assignment. *)
let test_sharded_distinct_merge () =
  let width = 2 in
  let rows = List.init 60 (fun i -> row2 ~width (i mod 7) (i mod 3)) in
  let serial_out = Sparql.Bag.create ~width in
  let serial = Sparql.Sink.distinct (Sparql.Bag.sink serial_out) in
  List.iter (Sparql.Sink.emit serial) rows;
  Sparql.Sink.close serial;
  let par_out = Sparql.Bag.create ~width in
  let par = Sparql.Sink.distinct (Sparql.Bag.sink par_out) in
  let fork = Option.get (Sparql.Sink.fork par) in
  let shards = Array.init 3 (fun _ -> fork.Sparql.Sink.new_shard ()) in
  List.iteri (fun i row -> Sparql.Sink.emit shards.(i mod 3) row) rows;
  fork.Sparql.Sink.drain ();
  Sparql.Sink.close par;
  Alcotest.(check int) "distinct cardinality" 21 (Sparql.Bag.length par_out);
  Alcotest.(check bool) "sharded DISTINCT = serial DISTINCT" true
    (Sparql.Bag.equal_as_bags serial_out par_out)

(* Per-domain top-k heaps merged at drain: the merged k rows must equal
   the serial top-k as a bag even when the cut falls inside a tie group
   (tied rows are identical here, as the streaming planner guarantees:
   LIMIT is only pushed below a sort that covers every projected
   variable), and must flush in sorted order. *)
let test_topk_merge () =
  let width = 2 in
  let compare_rows r1 r2 = compare r1.(0) r2.(0) in
  (* 40 rows over 8 key values; rows sharing a key are identical. *)
  let rows = List.init 40 (fun i -> row2 ~width (i mod 8) 9) in
  let run_serial k =
    let out = Sparql.Bag.create ~width in
    let s = Sparql.Sink.top_k ~compare:compare_rows ~k (Sparql.Bag.sink out) in
    List.iter (Sparql.Sink.emit s) rows;
    Sparql.Sink.close s;
    out
  in
  let run_sharded k shard_count =
    let out = Sparql.Bag.create ~width in
    let s = Sparql.Sink.top_k ~compare:compare_rows ~k (Sparql.Bag.sink out) in
    let fork = Option.get (Sparql.Sink.fork s) in
    let shards = Array.init shard_count (fun _ -> fork.Sparql.Sink.new_shard ()) in
    List.iteri
      (fun i row -> Sparql.Sink.emit shards.(i mod shard_count) row)
      rows;
    fork.Sparql.Sink.drain ();
    Sparql.Sink.close s;
    out
  in
  List.iter
    (fun k ->
      (* k=7 cuts inside the key=1 tie group; k=5 cuts exactly at a key
         boundary; k=40 retains everything. *)
      let serial = run_serial k and sharded = run_sharded k 3 in
      Alcotest.(check int)
        (Printf.sprintf "k=%d cardinality" k)
        (Sparql.Bag.length serial) (Sparql.Bag.length sharded);
      Alcotest.(check bool)
        (Printf.sprintf "k=%d sharded top-k = serial top-k" k)
        true
        (Sparql.Bag.equal_as_bags serial sharded);
      let sorted = ref true in
      let prev = ref min_int in
      Sparql.Bag.iter sharded ~f:(fun row ->
          if row.(0) < !prev then sorted := false;
          prev := row.(0));
      Alcotest.(check bool)
        (Printf.sprintf "k=%d flushed in sorted order" k)
        true !sorted)
    [ 5; 7; 40 ]

(* Deterministic cross-check on the real workload: every mixed
   OPTIONAL/UNION LUBM query, both engines. *)
let test_parallel_lubm () =
  let store =
    Rdf_store.Triple_store.of_triples
      (Workload.Lubm.generate Workload.Lubm.tiny)
  in
  let stats = Rdf_store.Stats.compute store in
  List.iter
    (fun engine ->
      List.iter
        (fun entry ->
          let serial =
            Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full ~engine
              ~domains:1 ~stats store entry.Workload.Queries.text
          in
          let par =
            Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full ~engine
              ~domains:4 ~stats store entry.Workload.Queries.text
          in
          match
            (serial.Sparql_uo.Executor.bag, par.Sparql_uo.Executor.bag)
          with
          | Some b1, Some b2 ->
              Alcotest.(check bool)
                (Printf.sprintf "%s (%s) equal as bags"
                   entry.Workload.Queries.id
                   (Engine.Bgp_eval.engine_name engine))
                true
                (Sparql.Bag.equal_as_bags b1 b2)
          | _ ->
              Alcotest.fail
                (entry.Workload.Queries.id ^ ": unexpected resource limit"))
        (Workload.Queries.group1 Workload.Queries.Lubm))
    [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ]

(* The row budget lives on the run's governor ticket, propagated into
   the pool: a tiny budget must still kill the run promptly when the
   pushes happen on worker domains (here, two UNION branches evaluated
   concurrently). *)
let test_parallel_budget_fires () =
  let store =
    Rdf_store.Triple_store.of_triples
      (Workload.Lubm.generate Workload.Lubm.tiny)
  in
  let text = "SELECT * WHERE { { ?s ?p ?o } UNION { ?a ?b ?c } }" in
  let report =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base ~domains:4
      ~row_budget:10 store text
  in
  Alcotest.(check bool)
    "out of budget" true
    (report.Sparql_uo.Executor.failure
    = Some Sparql_uo.Executor.Out_of_budget);
  Alcotest.(check bool) "no bag" true (report.Sparql_uo.Executor.bag = None)

(* --- Adaptive execution ------------------------------------------------ *)

(* The whole adaptive layer (sideways bitset prefilters into OPTIONAL and
   MINUS subtrees, feedback-primed estimates, per-node engine selection,
   skip-on-empty short-circuits) is an execution strategy, never a
   semantics change: adaptive = static as bags under every mode, engine,
   domain count and modifier pipeline. *)
let prop_adaptive_matches_static =
  QCheck2.Test.make ~name:"adaptive = static execution on random UO queries"
    ~count:40
    ~print:(fun (triples, query) ->
      Qgen.pp_dataset triples ^ "\n" ^ Qgen.pp_query query)
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_query)
    (fun (triples, query) ->
      let store = Rdf_store.Triple_store.of_triples triples in
      let stats = Rdf_store.Stats.compute store in
      List.for_all
        (fun mode ->
          List.for_all
            (fun engine ->
              List.for_all
                (fun domains ->
                  List.for_all
                    (fun streaming ->
                      let run ~adaptive =
                        Sparql_uo.Executor.run_query ~mode ~engine ~domains
                          ~streaming ~adaptive ~stats store query
                      in
                      let static = run ~adaptive:false in
                      let adaptive = run ~adaptive:true in
                      match
                        ( static.Sparql_uo.Executor.bag,
                          adaptive.Sparql_uo.Executor.bag )
                      with
                      | Some b1, Some b2 -> Sparql.Bag.equal_as_bags b1 b2
                      | _ -> false)
                    [ true; false ])
                [ 1; 4 ])
            [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])
        Sparql_uo.Executor.all_modes)

(* Sideways prefilters may only carry left-universal columns: ?z here is
   bound by the first OPTIONAL for some left rows only, so the second
   OPTIONAL's scan of ?z must NOT be restricted to the values the first
   one produced — the row whose ?z is still unbound is compatible with
   every inner ?z. A prefilter leak would leave that row unextended. *)
let test_prefilter_unbound_left_vars () =
  let store =
    Rdf_store.Triple_store.of_triples
      [
        Rdf.Triple.make (iri 0) (pred 0) (iri 1);
        (* no p1 edge from e2: its ?z stays unbound after OPTIONAL 1 *)
        Rdf.Triple.make (iri 2) (pred 0) (iri 3);
        Rdf.Triple.make (iri 0) (pred 1) (iri 4);
        Rdf.Triple.make (iri 5) (pred 2) (iri 6);
      ]
  in
  let text =
    "SELECT * WHERE { ?x <http://t/p0> ?y . OPTIONAL { ?x <http://t/p1> ?z } \
     OPTIONAL { ?v <http://t/p2> ?z } }"
  in
  List.iter
    (fun engine ->
      let run ~adaptive =
        Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full ~engine ~adaptive
          store text
      in
      let static = run ~adaptive:false in
      let adaptive = run ~adaptive:true in
      (match
         (static.Sparql_uo.Executor.bag, adaptive.Sparql_uo.Executor.bag)
       with
      | Some b1, Some b2 ->
          Alcotest.(check bool) "adaptive = static" true
            (Sparql.Bag.equal_as_bags b1 b2)
      | _ -> Alcotest.fail "unexpected resource limit");
      Alcotest.(check (option int)) "two rows" (Some 2)
        adaptive.Sparql_uo.Executor.result_count;
      (* The unbound-?z row must have been extended by the second
         OPTIONAL: some solution binds ?v. *)
      let extended =
        List.exists
          (fun solution -> List.mem_assoc "v" solution)
          (Sparql_uo.Executor.solutions store adaptive)
      in
      Alcotest.(check bool) "unbound-?z row extended through OPTIONAL 2" true
        extended)
    [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ]

(* Feedback straight from the adaptive loop: prime the cache with a
   wildly wrong observation, and the next run must (a) flag the node as
   re-planned (estimate off by >= 10x) and (b) overwrite the belief with
   the actual cardinality. *)
let test_replan_trigger () =
  let store =
    Rdf_store.Triple_store.of_triples
      (List.init 40 (fun i ->
           Rdf.Triple.make (iri i) (pred 0) (iri (i + 1))))
  in
  let patterns = [ TP.make (v "s") (v "p") (v "o") ] in
  let feedback = Sparql_uo.Feedback.create () in
  Sparql_uo.Feedback.record feedback patterns ~rows:1;
  let report =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full ~feedback store
      "SELECT * WHERE { ?s ?p ?o }"
  in
  Alcotest.(check (option int)) "all rows" (Some 40)
    report.Sparql_uo.Executor.result_count;
  let stats = Option.get report.Sparql_uo.Executor.eval_stats in
  Alcotest.(check bool) "re-plan triggered" true
    (stats.Sparql_uo.Evaluator.replans >= 1);
  Alcotest.(check bool) "a node is marked re-planned" true
    (List.exists
       (fun (n : Sparql_uo.Evaluator.node_report) ->
         n.Sparql_uo.Evaluator.replanned
         && n.Sparql_uo.Evaluator.actual_rows = 40)
       stats.Sparql_uo.Evaluator.nodes);
  Alcotest.(check (option int)) "belief corrected to the actual count"
    (Some 40)
    (Option.map int_of_float (Sparql_uo.Feedback.find feedback patterns));
  (* A re-run with the corrected belief no longer deviates. *)
  let report2 =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full ~feedback store
      "SELECT * WHERE { ?s ?p ?o }"
  in
  let stats2 = Option.get report2.Sparql_uo.Executor.eval_stats in
  Alcotest.(check int) "no re-plan after correction" 0
    stats2.Sparql_uo.Evaluator.replans

(* Static (non-adaptive) runs must not pay for node reporting. *)
let test_static_reports_no_nodes () =
  let store = tiny_store () in
  let report =
    Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full ~adaptive:false store
      "SELECT * WHERE { ?s ?p ?o }"
  in
  Alcotest.(check bool) "report not marked adaptive" false
    report.Sparql_uo.Executor.adaptive;
  let stats = Option.get report.Sparql_uo.Executor.eval_stats in
  Alcotest.(check int) "no node reports" 0
    (List.length stats.Sparql_uo.Evaluator.nodes)

(* --- Streaming ungrouped aggregates ------------------------------------ *)

(* A SELECT of pure aggregates without GROUP BY streams through the
   terminal aggregate sink; the materializing path groups the full bag.
   Both share [compute_aggregate_ids] over reverse-arrival id lists, so
   the single result row must be identical — including SAMPLE's pick and
   float-summed AVG. *)
let test_streaming_aggregate_matches () =
  let ub n = "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#" ^ n ^ ">" in
  let store =
    Rdf_store.Triple_store.of_triples
      (Workload.Lubm.generate Workload.Lubm.tiny)
  in
  let queries =
    [
      "SELECT (COUNT(*) AS ?n) WHERE { ?x " ^ ub "takesCourse" ^ " ?c }";
      "SELECT (COUNT(?c) AS ?n) (COUNT(DISTINCT ?c) AS ?d) (MIN(?c) AS ?lo) \
       (MAX(?c) AS ?hi) (SAMPLE(?c) AS ?any) WHERE { ?x "
      ^ ub "takesCourse" ^ " ?c }";
      (* OPTIONAL body: the adaptive layer runs under the aggregate sink. *)
      "SELECT (COUNT(*) AS ?n) (COUNT(?e) AS ?ne) WHERE { ?x "
      ^ ub "takesCourse" ^ " ?c OPTIONAL { ?x " ^ ub "emailAddress"
      ^ " ?e } }";
      (* Empty match: aggregates over zero rows still emit one row. *)
      "SELECT (COUNT(*) AS ?n) WHERE { ?x " ^ ub "noSuchPredicate" ^ " ?y }";
    ]
  in
  List.iter
    (fun text ->
      List.iter
        (fun domains ->
          let run ~streaming =
            Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Full ~domains
              ~streaming store text
          in
          let materialized = run ~streaming:false in
          let streamed = run ~streaming:true in
          Alcotest.(check (option int)) "one aggregate row" (Some 1)
            streamed.Sparql_uo.Executor.result_count;
          (match
             ( materialized.Sparql_uo.Executor.bag,
               streamed.Sparql_uo.Executor.bag )
           with
          | Some b1, Some b2 ->
              Alcotest.(check bool) "streamed aggregate = materialized" true
                (Sparql.Bag.equal_as_bags b1 b2)
          | _ -> Alcotest.fail "unexpected resource limit");
          (* The streamed run really took the sink path. *)
          if domains = 1 then
            let stats =
              Option.get streamed.Sparql_uo.Executor.eval_stats
            in
            Alcotest.(check bool) "aggregate stage present" true
              (List.exists
                 (fun (s : Sparql.Sink.stage) ->
                   s.Sparql.Sink.name = "aggregate")
                 stats.Sparql_uo.Evaluator.stages))
        [ 1; 4 ])
    queries

let () =
  Alcotest.run "engine"
    [
      ( "bgp",
        [
          Alcotest.test_case "coalesce components" `Quick test_coalesce_components;
          Alcotest.test_case "transitive chain" `Quick test_coalesce_transitive;
          Alcotest.test_case "predicate var ignored" `Quick test_coalesce_predicate_var_ignored;
          Alcotest.test_case "BGP coalescability" `Quick test_bgp_coalescable;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "missing term" `Quick test_compile_missing_term;
          Alcotest.test_case "counts" `Quick test_compile_counts;
          Alcotest.test_case "repeated var columns" `Quick test_var_columns_distinct;
        ] );
      ( "planner",
        [
          Alcotest.test_case "empty BGP" `Quick test_planner_empty;
          Alcotest.test_case "selective first" `Quick test_planner_selective_first;
          Alcotest.test_case "single-pattern exact card" `Quick test_planner_single_pattern_exact;
        ] );
      ("candidates", [ Alcotest.test_case "membership" `Quick test_candidates ]);
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_engines_agree;
          QCheck_alcotest.to_alcotest prop_candidates_are_filters;
        ] );
      ( "intersection",
        [
          Alcotest.test_case "galloping kernel edge cases" `Quick
            test_intersect_kernel;
          Alcotest.test_case "planner groups star and triangle" `Quick
            test_planner_groups_star;
          QCheck_alcotest.to_alcotest prop_intersect_matches_naive;
          QCheck_alcotest.to_alcotest prop_multiway_matches_legacy;
        ] );
      ( "parallel",
        [
          QCheck_alcotest.to_alcotest prop_parallel_matches_serial;
          Alcotest.test_case "LUBM group1, both engines" `Quick
            test_parallel_lubm;
          Alcotest.test_case "budget fires under parallel eval" `Quick
            test_parallel_budget_fires;
          Alcotest.test_case "nested UNION of joins (no deadlock)" `Quick
            test_nested_union_of_joins;
          Alcotest.test_case "streamed LIMIT terminates remote domains" `Quick
            test_limit_early_termination;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "sharded DISTINCT merge" `Quick
            test_sharded_distinct_merge;
          Alcotest.test_case "top-k merge ordering and ties" `Quick
            test_topk_merge;
        ] );
      ( "adaptive",
        [
          QCheck_alcotest.to_alcotest prop_adaptive_matches_static;
          Alcotest.test_case "prefilter spares unbound-on-left vars" `Quick
            test_prefilter_unbound_left_vars;
          Alcotest.test_case "10x deviation triggers re-plan" `Quick
            test_replan_trigger;
          Alcotest.test_case "static runs report no nodes" `Quick
            test_static_reports_no_nodes;
          Alcotest.test_case "streaming ungrouped aggregates" `Quick
            test_streaming_aggregate_matches;
        ] );
    ]
