(* Crash-recovery tests for the write-ahead log: a byte-offset sweep
   proving that truncating the log anywhere recovers exactly the
   committed prefix (against a sequential oracle), handcrafted
   torn-record / flipped-CRC / duplicate-marker corruptions, failpoint
   kills at every WAL and checkpoint site, crash-atomic snapshot saves,
   group commit under concurrent committers, and sync-policy
   accounting. *)

module W = Rdf_store.Wal
module M = Rdf_store.Mvcc
module Gov = Sparql_uo.Governor

(* ---------------- filesystem helpers ---------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spuo_wal_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* Copy [src] into a fresh directory, truncating its wal file to [k]
   bytes — the on-disk state a crash at byte offset [k] leaves. *)
let crashed_copy src k =
  let dst = fresh_dir () in
  Unix.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let data = read_file (Filename.concat src name) in
      let data =
        if String.starts_with ~prefix:"wal." name then
          String.sub data 0 (min k (String.length data))
        else data
      in
      write_file (Filename.concat dst name) data)
    (Sys.readdir src);
  dst

let file_size path = (Unix.stat path).Unix.st_size

(* ---------------- store helpers ---------------- *)

let tri i =
  Rdf.Triple.make
    (Rdf.Term.iri (Printf.sprintf "http://w/s%d" i))
    (Rdf.Term.iri "http://w/p")
    (Rdf.Term.int_literal i)

(* The visible triples of an MVCC store, decoded and sorted — the value
   every recovery assertion compares. *)
let visible t =
  let snap = M.snapshot t in
  let acc = ref [] in
  Rdf_store.Snapshot.iter_all snap ~f:(fun ~s ~p ~o ->
      acc :=
        Rdf.Triple.to_ntriples
          (Rdf.Triple.make
             (Rdf_store.Snapshot.decode_term snap s)
             (Rdf_store.Snapshot.decode_term snap p)
             (Rdf_store.Snapshot.decode_term snap o))
        :: !acc);
  List.sort compare !acc

let triples = Alcotest.(list string)

let wal_of t =
  match M.wal t with
  | Some w -> w
  | None -> Alcotest.fail "durable store has no WAL handle"

let seg_size t = file_size (W.segment_file (wal_of t))

(* Commit one transaction applying [ops] in order (Add/Del). *)
let commit_ops t ops =
  let txn = M.begin_txn t in
  List.iter
    (function
      | `Add i -> M.insert txn (tri i)
      | `Del i -> M.delete txn (tri i))
    ops;
  ignore (M.commit txn)

(* ---------------- committed-prefix sweep ---------------- *)

(* Build a durable store, committing [txns] (lists of ops) one
   transaction at a time; return the directory, the per-commit segment
   boundaries and the per-commit oracle states (sorted triples), both
   including index 0 = the freshly initialized state. *)
let build_dir ?init txns =
  let dir = fresh_dir () in
  let t, recovery = M.open_dir ?init ~policy:W.Every_commit dir in
  if not recovery.W.initialized then
    Alcotest.fail "fresh dir did not initialize";
  let boundaries = ref [ seg_size t ] in
  let states = ref [ visible t ] in
  List.iter
    (fun ops ->
      commit_ops t ops;
      boundaries := seg_size t :: !boundaries;
      states := visible t :: !states)
    txns;
  (dir, t, Array.of_list (List.rev !boundaries), Array.of_list (List.rev !states))

(* The oracle: a crash at byte offset [k] must recover state [i] where
   [i] is the last commit whose boundary fits in [k] bytes. *)
let expected_index boundaries k =
  let i = ref 0 in
  Array.iteri (fun j b -> if b <= k then i := j) boundaries;
  !i

(* Number of txns actually appended to the log by the first [i] commits:
   a commit whose ops all no-op (unknown-term deletes) buffers nothing,
   so it neither publishes nor appends — the boundary doesn't move. *)
let appended_up_to boundaries i =
  let n = ref 0 in
  for j = 1 to i do
    if boundaries.(j) > boundaries.(j - 1) then incr n
  done;
  !n

let check_crash_at ~dir ~boundaries ~states k =
  let copy = crashed_copy dir k in
  let t, recovery = M.open_dir copy in
  let i = expected_index boundaries k in
  Alcotest.check triples
    (Printf.sprintf "crash at offset %d recovers commit prefix %d" k i)
    states.(i) (visible t);
  let appended = appended_up_to boundaries i in
  Alcotest.(check int)
    (Printf.sprintf "crash at offset %d replays %d txn(s)" k appended)
    appended recovery.W.replayed_txns;
  (* The torn tail is both reported and physically gone. *)
  if k >= 12 then begin
    Alcotest.(check int)
      (Printf.sprintf "crash at offset %d truncates the tail" k)
      (k - boundaries.(i))
      recovery.W.truncated_bytes;
    Alcotest.(check int)
      (Printf.sprintf "segment truncated to boundary %d" i)
      boundaries.(i)
      (file_size (W.segment_file (wal_of t)))
  end;
  (* The recovered lineage keeps working: one more commit, one more
     reopen, nothing lost. *)
  commit_ops t [ `Add 999 ];
  let after = visible t in
  let t2, r2 = M.open_dir copy in
  Alcotest.check triples
    (Printf.sprintf "post-recovery commit at offset %d survives reopen" k)
    after (visible t2);
  Alcotest.(check int) "reopen replays the extra txn" (appended + 1)
    r2.W.replayed_txns;
  rm_rf copy

(* Exhaustive: every byte offset of a small log is a crash point. *)
let test_committed_prefix_sweep () =
  let txns =
    [ [ `Add 1; `Add 2 ]; [ `Del 1 ]; [ `Add 3 ]; [ `Del 2; `Add 1 ];
      [ `Add 4; `Del 3; `Add 5 ] ]
  in
  let dir, _t, boundaries, states = build_dir txns in
  let len = boundaries.(Array.length boundaries - 1) in
  for k = 0 to len do
    check_crash_at ~dir ~boundaries ~states k
  done;
  rm_rf dir

(* qcheck: random workloads (including re-adds and deletes over a seeded
   base), random crash offset — same committed-prefix contract. *)
let prop_committed_prefix =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8)
           (list_size (int_range 1 4)
              (map
                 (fun (d, i) -> if d then `Del i else `Add i)
                 (pair bool (int_range 0 7)))))
        (int_range 0 1000))
  in
  QCheck2.Test.make ~name:"crash anywhere recovers the committed prefix"
    ~count:60 gen (fun (txns, koff) ->
      let init () = Rdf_store.Triple_store.of_triples [ tri 0; tri 1 ] in
      let dir, _t, boundaries, states = build_dir ~init txns in
      let len = boundaries.(Array.length boundaries - 1) in
      let k = koff mod (len + 1) in
      let copy = crashed_copy dir k in
      let t, recovery = M.open_dir copy in
      let i = expected_index boundaries k in
      let ok =
        visible t = states.(i)
        && recovery.W.replayed_txns = appended_up_to boundaries i
        && (k < 12 || recovery.W.truncated_bytes = k - boundaries.(i))
      in
      rm_rf copy;
      rm_rf dir;
      ok)

(* ---------------- handcrafted corruptions ---------------- *)

let get_u32 data off =
  let b i = Char.code data.[off + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let test_torn_record () =
  let dir, t, boundaries, states = build_dir [ [ `Add 1 ]; [ `Add 2 ]; [ `Add 3 ] ] in
  let seg = W.segment_file (wal_of t) in
  (* Tear the last commit's marker: 3 bytes off the end. *)
  let data = read_file seg in
  write_file seg (String.sub data 0 (String.length data - 3));
  let t2, r = M.open_dir dir in
  Alcotest.check triples "torn tail drops exactly the last txn" states.(2)
    (visible t2);
  Alcotest.(check int) "two txns replayed" 2 r.W.replayed_txns;
  Alcotest.(check int) "torn bytes reported"
    (String.length data - 3 - boundaries.(2))
    r.W.truncated_bytes;
  Alcotest.(check int) "segment physically truncated" boundaries.(2)
    (file_size seg);
  rm_rf dir

let test_flipped_crc () =
  let dir, t, boundaries, states = build_dir [ [ `Add 1 ]; [ `Add 2 ]; [ `Add 3 ] ] in
  let seg = W.segment_file (wal_of t) in
  (* Flip one payload byte inside txn 2's body record: its CRC fails, so
     txn 2 and everything after it is gone — the committed prefix is
     whatever still checks out. *)
  let data = read_file seg in
  let off = boundaries.(1) + 8 + 1 in
  let b = Bytes.of_string data in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
  write_file seg (Bytes.to_string b);
  let t2, r = M.open_dir dir in
  Alcotest.check triples "CRC failure truncates from the bad record"
    states.(1) (visible t2);
  Alcotest.(check int) "one txn replayed" 1 r.W.replayed_txns;
  Alcotest.(check int) "everything after the bad record truncated"
    (String.length data - boundaries.(1))
    r.W.truncated_bytes;
  (* The lineage stays writable at the truncated boundary. *)
  commit_ops t2 [ `Add 7 ];
  let t3, _ = M.open_dir dir in
  Alcotest.check triples "commit after CRC repair survives reopen"
    (visible t2) (visible t3);
  rm_rf dir

let test_duplicate_marker () =
  let dir, t, _boundaries, states = build_dir [ [ `Add 1 ] ] in
  let seg = W.segment_file (wal_of t) in
  let data = read_file seg in
  (* The segment holds txn 1's body then its marker. Re-appending the
     marker record verbatim is a protocol violation (a marker with no
     pending body, and an out-of-order txn id): replay must stop at it,
     keeping txn 1. *)
  let body_len = get_u32 data 12 in
  let marker_off = 12 + 8 + body_len in
  let marker = String.sub data marker_off (String.length data - marker_off) in
  write_file seg (data ^ marker);
  let t2, r = M.open_dir dir in
  Alcotest.check triples "duplicate marker does not double-apply" states.(1)
    (visible t2);
  Alcotest.(check int) "one txn replayed" 1 r.W.replayed_txns;
  Alcotest.(check int) "the duplicate is truncated" (String.length marker)
    r.W.truncated_bytes;
  rm_rf dir

(* ---------------- failpoint kills ---------------- *)

let injected site f =
  match f () with
  | _ -> Alcotest.fail (site ^ ": expected an injected kill")
  | exception Gov.Kill (Gov.Injected_fault s) ->
      Alcotest.(check string) "killed at the armed site" site s

let with_fault site f =
  Gov.with_ticket (Gov.create ~faults:[ Gov.fault ~site ~after:1 ] ()) f

(* A crash while writing the body or marker record aborts the commit:
   nothing published, nothing on disk past the previous boundary, and
   the lineage keeps accepting commits. *)
let check_append_kill site =
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~policy:W.Every_commit dir in
  commit_ops t [ `Add 1 ];
  let before = visible t in
  let size_before = seg_size t in
  let lsn_before = W.appended_lsn (wal_of t) in
  injected site (fun () ->
      with_fault site (fun () -> commit_ops t [ `Add 2 ]));
  Alcotest.check triples (site ^ ": nothing published") before (visible t);
  Alcotest.(check int) (site ^ ": segment rolled back") size_before
    (seg_size t);
  Alcotest.(check int) (site ^ ": lsn unchanged") lsn_before
    (W.appended_lsn (wal_of t));
  commit_ops t [ `Add 3 ];
  let t2, r = M.open_dir dir in
  Alcotest.check triples (site ^ ": recovery sees exactly the committed txns")
    (visible t) (visible t2);
  Alcotest.(check int) (site ^ ": two txns replayed") 2 r.W.replayed_txns;
  Alcotest.(check int) (site ^ ": no torn bytes") 0 r.W.truncated_bytes;
  (* Same kill on the FIRST commit after a checkpoint rotation: the
     previous boundary is the fresh segment's 12-byte header, and the
     rollback must stop there — truncating to 0 would destroy the
     header and make every later commit unrecoverable. *)
  ignore (M.checkpoint t);
  let at_checkpoint = visible t in
  injected site (fun () ->
      with_fault site (fun () -> commit_ops t [ `Add 4 ]));
  Alcotest.check triples (site ^ ": nothing published post-rotation")
    at_checkpoint (visible t);
  Alcotest.(check int) (site ^ ": rollback preserves the segment header") 12
    (seg_size t);
  commit_ops t [ `Add 5 ];
  let t3, r3 = M.open_dir dir in
  Alcotest.check triples
    (site ^ ": post-rotation commits recover after a failed append")
    (visible t) (visible t3);
  Alcotest.(check int) (site ^ ": one txn replayed over the checkpoint") 1
    r3.W.replayed_txns;
  Alcotest.(check int) (site ^ ": no torn bytes post-rotation") 0
    r3.W.truncated_bytes;
  rm_rf dir

let test_kill_record () = check_append_kill "wal.record"
let test_kill_marker () = check_append_kill "wal.marker"

(* A crash inside the fsync (before or after it lands) happens after the
   append and the publish: the commit is visible, the kill escapes to
   the committer, and recovery still restores the txn — the append was
   flushed, so only the fsync was lost, not the bytes. *)
let check_sync_kill site =
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~policy:W.Every_commit dir in
  commit_ops t [ `Add 1 ];
  injected site (fun () ->
      with_fault site (fun () -> commit_ops t [ `Add 2 ]));
  Alcotest.check triples (site ^ ": the commit is published")
    (List.sort compare
       [ Rdf.Triple.to_ntriples (tri 1); Rdf.Triple.to_ntriples (tri 2) ])
    (visible t);
  (* The group-commit machinery recovered from the dead leader: a plain
     sync succeeds and catches up. *)
  W.sync (wal_of t);
  Alcotest.(check int) (site ^ ": sync catches up") (W.appended_lsn (wal_of t))
    (W.synced_lsn (wal_of t));
  commit_ops t [ `Add 3 ];
  let t2, r = M.open_dir dir in
  Alcotest.check triples (site ^ ": all three txns recovered") (visible t)
    (visible t2);
  Alcotest.(check int) (site ^ ": three txns replayed") 3 r.W.replayed_txns;
  rm_rf dir

let test_kill_sync_pre () = check_sync_kill "wal.sync.pre"
let test_kill_sync_post () = check_sync_kill "wal.sync.post"

(* A crash while writing or renaming the checkpoint must leave the old
   checkpoint + log authoritative: reopening recovers the full
   committed state, and no .tmp litter survives. *)
let check_checkpoint_kill site =
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~policy:W.Every_commit dir in
  commit_ops t [ `Add 1; `Add 2 ];
  commit_ops t [ `Del 1; `Add 3 ];
  let committed = visible t in
  injected site (fun () ->
      with_fault site (fun () -> ignore (M.checkpoint t)));
  Alcotest.check triples (site ^ ": published state intact") committed
    (visible t);
  Alcotest.(check bool) (site ^ ": no tmp litter") false
    (Array.exists
       (fun f -> Filename.check_suffix f ".tmp")
       (Sys.readdir dir));
  (* The handle survives the failed checkpoint and so does the data. *)
  commit_ops t [ `Add 4 ];
  let t2, _ = M.open_dir dir in
  Alcotest.check triples (site ^ ": reopen recovers everything") (visible t)
    (visible t2);
  rm_rf dir

let test_kill_checkpoint_save () = check_checkpoint_kill "snapshot.save"
let test_kill_checkpoint_rename () = check_checkpoint_kill "snapshot.rename"

(* Crash-atomic [Snapshot.save] on its own: a kill mid-save never
   clobbers the previously valid file. *)
let test_snapshot_save_atomic () =
  let path = Filename.temp_file "spuo_snap" ".spuo" in
  let original = Rdf_store.Triple_store.of_triples [ tri 1; tri 2 ] in
  Rdf_store.Snapshot.save original path;
  let replacement = Rdf_store.Triple_store.of_triples [ tri 3 ] in
  injected "snapshot.save" (fun () ->
      with_fault "snapshot.save" (fun () ->
          Rdf_store.Snapshot.save replacement path));
  Alcotest.(check bool) "no tmp litter" false (Sys.file_exists (path ^ ".tmp"));
  let reloaded = Rdf_store.Snapshot.load path in
  Alcotest.(check int) "original file still loads" 2
    (Rdf_store.Triple_store.size reloaded);
  injected "snapshot.rename" (fun () ->
      with_fault "snapshot.rename" (fun () ->
          Rdf_store.Snapshot.save replacement path));
  Alcotest.(check bool) "no tmp litter after rename kill" false
    (Sys.file_exists (path ^ ".tmp"));
  Alcotest.(check int) "original survives a rename kill" 2
    (Rdf_store.Triple_store.size (Rdf_store.Snapshot.load path));
  Sys.remove path

(* ---------------- checkpointing ---------------- *)

let test_checkpoint_truncates_log () =
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~policy:W.Every_commit dir in
  commit_ops t [ `Add 1 ];
  commit_ops t [ `Add 2; `Del 1 ];
  let committed = visible t in
  ignore (M.checkpoint t);
  let w = wal_of t in
  Alcotest.(check int) "log rotated to segment 2" 2 (W.stats w).W.segment;
  Alcotest.(check int) "fresh segment holds only its header" 12
    (file_size (W.segment_file w));
  Alcotest.(check bool) "old segment deleted" false
    (Sys.file_exists (Filename.concat dir "wal.1.log"));
  Alcotest.(check bool) "old checkpoint deleted" false
    (Sys.file_exists (Filename.concat dir "checkpoint.1.spuo"));
  let t2, r = M.open_dir dir in
  Alcotest.check triples "checkpointed state recovers with zero replay"
    committed (visible t2);
  Alcotest.(check int) "zero txns replayed" 0 r.W.replayed_txns;
  Alcotest.(check int) "recovered from checkpoint 2" 2 r.W.checkpoint_seq;
  (* Commits after the checkpoint replay over the new checkpoint. *)
  commit_ops t [ `Add 9 ];
  let t3, r3 = M.open_dir dir in
  Alcotest.check triples "post-checkpoint commit recovers" (visible t)
    (visible t3);
  Alcotest.(check int) "one txn replayed over checkpoint 2" 1
    r3.W.replayed_txns;
  rm_rf dir

(* A crash between the checkpoint rename and [start_segment] leaves a
   checkpoint with no matching segment file — reachable both at
   checkpoint rotation and at fresh-dir init. The checkpoint alone is
   authoritative: recovery must recreate the segment, not die on the
   missing file. *)
let test_missing_segment_recovers () =
  (* Rotation case: checkpoint.2.spuo present, wal.2.log deleted. *)
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~policy:W.Every_commit dir in
  commit_ops t [ `Add 1 ];
  commit_ops t [ `Add 2; `Del 1 ];
  ignore (M.checkpoint t);
  let committed = visible t in
  Sys.remove (Filename.concat dir "wal.2.log");
  let t2, r = M.open_dir dir in
  Alcotest.check triples "checkpoint alone recovers the committed state"
    committed (visible t2);
  Alcotest.(check int) "zero txns replayed" 0 r.W.replayed_txns;
  Alcotest.(check int) "no torn bytes" 0 r.W.truncated_bytes;
  Alcotest.(check int) "recovered from checkpoint 2" 2 r.W.checkpoint_seq;
  Alcotest.(check int) "segment recreated with its header" 12 (seg_size t2);
  (* The recreated segment accepts commits and they survive reopen. *)
  commit_ops t2 [ `Add 3 ];
  let t3, r3 = M.open_dir dir in
  Alcotest.check triples "post-recreate commit survives reopen" (visible t2)
    (visible t3);
  Alcotest.(check int) "one txn replayed" 1 r3.W.replayed_txns;
  rm_rf dir;
  (* Fresh-dir init case: checkpoint.1.spuo present, wal.1.log deleted. *)
  let d2 = fresh_dir () in
  let t0, _ = M.open_dir d2 in
  let init_state = visible t0 in
  Sys.remove (Filename.concat d2 "wal.1.log");
  let t1, r1 = M.open_dir d2 in
  Alcotest.check triples "init checkpoint recovers without its segment"
    init_state (visible t1);
  Alcotest.(check int) "nothing replayed" 0 r1.W.replayed_txns;
  commit_ops t1 [ `Add 9 ];
  let t1', r1' = M.open_dir d2 in
  Alcotest.check triples "commit after recreation survives" (visible t1)
    (visible t1');
  Alcotest.(check int) "one txn replayed after recreation" 1
    r1'.W.replayed_txns;
  rm_rf d2

(* Commits race a compaction: whatever was committed before the
   auto-compaction folds must replay correctly over the *new*
   checkpoint (the fold is invariant to the base/delta split). *)
let test_recovery_across_auto_compaction () =
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~compact_threshold:4 ~policy:W.Every_commit dir in
  for i = 1 to 10 do
    commit_ops t [ `Add i ]
  done;
  let w = wal_of t in
  Alcotest.(check bool) "auto-compaction checkpointed" true
    ((W.stats w).W.checkpoints > 0);
  let t2, _ = M.open_dir dir in
  Alcotest.check triples "all ten commits survive auto-compaction"
    (visible t) (visible t2);
  rm_rf dir

(* ---------------- unrecoverable directories ---------------- *)

let expect_unrecoverable name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Unrecoverable")
  | exception W.Unrecoverable _ -> ()

let test_unrecoverable () =
  (* Log segment without any checkpoint. *)
  let d1 = fresh_dir () in
  Unix.mkdir d1 0o755;
  write_file (Filename.concat d1 "wal.1.log") "SUWL<garbage>";
  expect_unrecoverable "orphan segment" (fun () -> M.open_dir d1);
  rm_rf d1;
  (* Corrupt newest checkpoint: never silently fall back. *)
  let d2, t2, _, _ = build_dir [ [ `Add 1 ] ] in
  ignore t2;
  let cp = Filename.concat d2 "checkpoint.1.spuo" in
  let data = read_file cp in
  write_file cp (String.sub data 0 (String.length data - 2));
  expect_unrecoverable "corrupt checkpoint" (fun () -> M.open_dir d2);
  rm_rf d2;
  (* Segment newer than the newest checkpoint. *)
  let d3, t3, _, _ = build_dir [ [ `Add 1 ] ] in
  ignore t3;
  write_file (Filename.concat d3 "wal.9.log") "SUWL????????";
  expect_unrecoverable "orphan newer segment" (fun () -> M.open_dir d3);
  rm_rf d3;
  (* A bad segment header (wrong magic) is unrecoverable too. *)
  let d4, t4, _, _ = build_dir [ [ `Add 1 ] ] in
  let seg = W.segment_file (wal_of t4) in
  let data = read_file seg in
  let b = Bytes.of_string data in
  Bytes.set b 0 'X';
  write_file seg (Bytes.to_string b);
  expect_unrecoverable "bad segment header" (fun () -> M.open_dir d4);
  rm_rf d4

(* ---------------- sync policies and group commit ---------------- *)

let test_never_policy_counts () =
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~policy:W.Never dir in
  for i = 1 to 5 do
    commit_ops t [ `Add i ]
  done;
  let w = wal_of t in
  let s = W.stats w in
  Alcotest.(check int) "five commits appended" 5 s.W.commits;
  Alcotest.(check int) "never policy issues no fsync" 0 s.W.syncs;
  W.sync w;
  Alcotest.(check int) "explicit sync catches up" (W.appended_lsn w)
    (W.synced_lsn w);
  Alcotest.(check int) "one fsync covered all five" 1 (W.stats w).W.syncs;
  rm_rf dir

let test_every_commit_synced () =
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~policy:W.Every_commit dir in
  for i = 1 to 3 do
    commit_ops t [ `Add i ];
    let w = wal_of t in
    Alcotest.(check int) "commit returns only once synced"
      (W.appended_lsn w) (W.synced_lsn w)
  done;
  rm_rf dir

(* Four domains hammer one durable lineage under every-commit: the
   fsyncs group-commit (accounting stays consistent), every committer
   returns durable, and recovery restores all of it exactly. *)
let test_group_commit_concurrent () =
  let dir = fresh_dir () in
  let t, _ = M.open_dir ~policy:W.Every_commit dir in
  let per_domain = 25 in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              commit_ops t [ `Add ((d * 1000) + i) ]
            done))
  in
  List.iter Domain.join workers;
  let w = wal_of t in
  let s = W.stats w in
  Alcotest.(check int) "all 100 commits appended" 100 s.W.commits;
  Alcotest.(check int) "every commit durable" (W.appended_lsn w)
    (W.synced_lsn w);
  Alcotest.(check bool) "group-commit accounting consistent" true
    (s.W.syncs >= 1 && s.W.syncs <= s.W.batched_commits
    && s.W.batched_commits = 100 && s.W.max_batch >= 1);
  let t2, r = M.open_dir dir in
  Alcotest.(check int) "all 100 txns replayed" 100 r.W.replayed_txns;
  Alcotest.check triples "concurrent commits recover exactly" (visible t)
    (visible t2);
  rm_rf dir

(* ---------------- session-level durability ---------------- *)

let test_session_open_dir () =
  let dir = fresh_dir () in
  let session, r = Sparql_uo.Session.open_dir dir in
  Alcotest.(check bool) "fresh session dir initializes" true
    r.W.initialized;
  Sparql_uo.Update_exec.run_session session
    "INSERT DATA { <http://t/a> <http://t/p> <http://t/b> . <http://t/b> \
     <http://t/p> <http://t/c> . }";
  Sparql_uo.Update_exec.run_session session
    "DELETE DATA { <http://t/a> <http://t/p> <http://t/b> . }";
  let count session =
    match
      (Sparql_uo.Session.run session
         "SELECT * WHERE { ?s <http://t/p> ?o . }")
        .Sparql_uo.Executor.result_count
    with
    | Some n -> n
    | None -> Alcotest.fail "query killed"
  in
  Alcotest.(check int) "one triple visible after the updates" 1
    (count session);
  let session2, r2 = Sparql_uo.Session.open_dir dir in
  Alcotest.(check int) "two update txns replayed" 2 r2.W.replayed_txns;
  Alcotest.(check int) "recovered session sees the same store" 1
    (count session2);
  rm_rf dir

let () =
  Alcotest.run "wal"
    [
      ( "committed-prefix",
        [
          Alcotest.test_case "exhaustive byte-offset sweep" `Quick
            test_committed_prefix_sweep;
          QCheck_alcotest.to_alcotest prop_committed_prefix;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "torn record" `Quick test_torn_record;
          Alcotest.test_case "flipped CRC" `Quick test_flipped_crc;
          Alcotest.test_case "duplicate marker" `Quick test_duplicate_marker;
          Alcotest.test_case "unrecoverable directories" `Quick
            test_unrecoverable;
        ] );
      ( "kill-points",
        [
          Alcotest.test_case "record write" `Quick test_kill_record;
          Alcotest.test_case "marker write" `Quick test_kill_marker;
          Alcotest.test_case "fsync (pre)" `Quick test_kill_sync_pre;
          Alcotest.test_case "fsync (post)" `Quick test_kill_sync_post;
          Alcotest.test_case "checkpoint save" `Quick
            test_kill_checkpoint_save;
          Alcotest.test_case "checkpoint rename" `Quick
            test_kill_checkpoint_rename;
          Alcotest.test_case "snapshot save is crash-atomic" `Quick
            test_snapshot_save_atomic;
        ] );
      ( "checkpointing",
        [
          Alcotest.test_case "truncates the log" `Quick
            test_checkpoint_truncates_log;
          Alcotest.test_case "missing segment behind a checkpoint" `Quick
            test_missing_segment_recovers;
          Alcotest.test_case "recovery across auto-compaction" `Quick
            test_recovery_across_auto_compaction;
        ] );
      ( "sync-policies",
        [
          Alcotest.test_case "never" `Quick test_never_policy_counts;
          Alcotest.test_case "every-commit" `Quick test_every_commit_synced;
          Alcotest.test_case "group commit under 4 domains" `Quick
            test_group_commit_concurrent;
        ] );
      ( "session",
        [
          Alcotest.test_case "open_dir round trip" `Quick
            test_session_open_dir;
        ] );
    ]
