(* Tests for the per-query resource governor: ticket mechanics (budget,
   deadline, cancellation), deterministic fault injection at every
   compiled-in failpoint with cleanup invariants (no ticket left armed,
   epoch and plan cache consistent, pool still functional, subsequent
   ungoverned run oracle-equal), graceful degradation (partial results,
   bounded retry), cross-domain cancellation, and the two-session
   isolation property that motivated the subsystem. *)

module Gov = Sparql.Governor

let count report =
  match report.Sparql_uo.Executor.result_count with
  | Some n -> n
  | None -> Alcotest.fail "run was killed unexpectedly"

let failure_opt = Alcotest.testable
    (Fmt.option (Fmt.of_to_string Gov.failure_name))
    (Option.equal (fun a b -> a = b))

(* A query that reaches every execution-side failpoint under the plain
   BE-tree evaluator: multi-pattern BGP (scan + extend), OPTIONAL
   (hash-probe), UNION, and a streaming sink. *)
let chaos_text =
  "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n\
   SELECT * WHERE { ?x ub:advisor ?y .\n\
  \  { ?y ub:teacherOf ?z } UNION { ?x ub:takesCourse ?z }\n\
  \  OPTIONAL { ?x ub:emailAddress ?e } }"

(* The WCO extension step only runs for BGPs with at least two patterns;
   in Base mode [chaos_text]'s groups are all single-pattern, so the
   "extend" site gets its own multi-pattern BGP query. *)
let extend_text =
  "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n\
   SELECT * WHERE { ?x ub:advisor ?y . ?x ub:takesCourse ?z . }"

let query_for_site = function "extend" -> extend_text | _ -> chaos_text

let tiny_store = lazy (Workload.Lubm.store Workload.Lubm.tiny)

(* --- Ticket mechanics ----------------------------------------------------- *)

let test_ticket_deadline () =
  let now = ref 0.0 in
  let gov = Gov.create ~deadline:(10.0, fun () -> !now) () in
  Gov.tick gov;
  now := 11.0;
  (try
     Gov.tick gov;
     Alcotest.fail "expected Kill Timeout"
   with Gov.Kill Gov.Timeout -> ())

let test_ticket_cancel () =
  let gov = Gov.create () in
  Gov.tick gov;
  Alcotest.(check bool) "not yet cancelled" false (Gov.is_cancelled gov);
  Gov.cancel gov;
  Alcotest.(check bool) "flag observed" true (Gov.is_cancelled gov);
  (try
     Gov.tick gov;
     Alcotest.fail "expected Kill Cancelled"
   with Gov.Kill Gov.Cancelled -> ())

let test_ticket_isolation () =
  (* Two tickets account independently: exhausting one leaves the other
     untouched — the property the process-global budget lacked. *)
  let g1 = Gov.create ~row_budget:3 () in
  let g2 = Gov.create ~row_budget:1000 () in
  (try
     for _ = 1 to 10 do
       Gov.charge g1
     done;
     Alcotest.fail "expected Kill Out_of_budget"
   with Gov.Kill Gov.Out_of_budget -> ());
  for _ = 1 to 10 do
    Gov.charge g2
  done;
  Alcotest.(check int) "g1 counted its rows" 3 (Gov.pushed g1);
  Alcotest.(check int) "g2 unaffected" 10 (Gov.pushed g2);
  Alcotest.(check int) "g2 budget its own" 990 (Gov.remaining_budget g2)

let test_transient_classification () =
  Alcotest.(check bool) "budget is transient" true (Gov.transient Gov.Out_of_budget);
  Alcotest.(check bool) "timeout is transient" true (Gov.transient Gov.Timeout);
  Alcotest.(check bool) "fault is transient" true
    (Gov.transient (Gov.Injected_fault "scan"));
  Alcotest.(check bool) "cancellation is final" false (Gov.transient Gov.Cancelled)

let test_seeded_schedule_deterministic () =
  let shape faults = List.map (fun f -> Gov.fault_fired f) faults in
  let s1 = Gov.seeded_faults ~seed:42 ~after_max:5 Gov.all_failpoints in
  let s2 = Gov.seeded_faults ~seed:42 ~after_max:5 Gov.all_failpoints in
  Alcotest.(check int) "one fault per site"
    (List.length Gov.all_failpoints) (List.length s1);
  Alcotest.(check (list bool)) "none pre-fired" (shape s1) (shape s2);
  (* Same seed, same query: the kill site is reproducible. *)
  let store = Lazy.force tiny_store in
  let kill_of seed =
    let session = Sparql_uo.Session.create store in
    let faults = Gov.seeded_faults ~seed ~after_max:3 Gov.all_failpoints in
    match
      Sparql_uo.Session.run ~mode:Sparql_uo.Executor.Base ~faults session
        chaos_text
    with
    | report -> report.Sparql_uo.Executor.failure
    | exception Gov.Kill f -> Some f
  in
  Alcotest.(check failure_opt) "same seed, same kill" (kill_of 7) (kill_of 7)

(* --- Chaos suite: every failpoint, with cleanup invariants ----------------- *)

(* Run [chaos_text] with a one-shot fault at [site] armed to fire on its
   [after]-th hit, in Base mode (OPTIONAL/UNION map directly onto the
   hash-probed bag operators, so every site is reachable). A kill during
   the prepare phase escapes as an exception; both shapes are the same
   taxonomy case. *)
let chaos_run session ~domains ~site ~after =
  let faults = [ Gov.fault ~site ~after ] in
  match
    Sparql_uo.Session.run ~mode:Sparql_uo.Executor.Base ~domains ~faults
      session (query_for_site site)
  with
  | report -> report.Sparql_uo.Executor.failure
  | exception Gov.Kill f -> Some f

let check_chaos_site ~domains site =
  let store = Lazy.force tiny_store in
  let text = query_for_site site in
  let oracle = Sparql_uo.Executor.run ~mode:Sparql_uo.Executor.Base store text in
  let session = Sparql_uo.Session.create store in
  let epoch0 = Sparql_uo.Session.epoch session in
  let failure = chaos_run session ~domains ~site ~after:1 in
  Alcotest.(check failure_opt)
    (Printf.sprintf "site %s kills as injected-fault" site)
    (Some (Gov.Injected_fault site))
    failure;
  (* Cleanup invariants: the kill must leave the session quiescent and
     uncorrupted. *)
  Alcotest.(check int) "no ticket left armed" 0
    (Sparql_uo.Session.active_runs session);
  Alcotest.(check int) "epoch unchanged" epoch0 (Sparql_uo.Session.epoch session);
  (if site = "cache.insert" then
     Alcotest.(check int) "killed insert left no cache entry" 0
       (Sparql_uo.Session.cache_length session));
  (* The next, ungoverned run on the same session must be oracle-equal. *)
  let clean =
    Sparql_uo.Session.run ~mode:Sparql_uo.Executor.Base ~domains session text
  in
  Alcotest.(check failure_opt) "clean run has no failure" None
    clean.Sparql_uo.Executor.failure;
  (match (clean.Sparql_uo.Executor.bag, oracle.Sparql_uo.Executor.bag) with
  | Some got, Some want ->
      Alcotest.(check bool) "clean run oracle-equal" true
        (Sparql.Bag.equal_as_bags got want)
  | _ -> Alcotest.fail "missing bag");
  Alcotest.(check int) "session quiescent after clean run" 0
    (Sparql_uo.Session.active_runs session)

let test_chaos_all_failpoints () =
  List.iter (check_chaos_site ~domains:1) Gov.all_failpoints

(* Same invariants with the domain pool engaged: a fault firing inside a
   worker must still kill the whole run, quiesce the pool, and leave it
   usable for the oracle-equality check. *)
let test_chaos_parallel () =
  List.iter (check_chaos_site ~domains:4) [ "scan"; "extend"; "sink.push" ]

(* --- Graceful degradation -------------------------------------------------- *)

let test_partial_results () =
  let store = Lazy.force tiny_store in
  let session = Sparql_uo.Session.create store in
  let text = "SELECT * WHERE { ?s ?p ?o . }" in
  let report = Sparql_uo.Session.run ~row_budget:50 ~partial:true session text in
  Alcotest.(check failure_opt) "marked partial: out-of-budget"
    (Some Gov.Out_of_budget) report.Sparql_uo.Executor.partial;
  (* The run was still killed — [failure] says why, [partial] says rows
     are nevertheless available. *)
  Alcotest.(check failure_opt) "failure records the kill"
    (Some Gov.Out_of_budget) report.Sparql_uo.Executor.failure;
  let n = count report in
  Alcotest.(check bool) "rows bounded by the budget" true (n > 0 && n <= 50);
  (* The partial rows are a genuine prefix of the data, not garbage:
     every solution also occurs in the full result. *)
  let full = Sparql_uo.Session.run session text in
  (match (report.Sparql_uo.Executor.bag, full.Sparql_uo.Executor.bag) with
  | Some part, Some whole ->
      Alcotest.(check bool) "partial ⊆ full" true
        (Sparql.Bag.length (Sparql.Bag.semijoin part whole)
        = Sparql.Bag.length part)
  | _ -> Alcotest.fail "missing bag")

let test_retry_recovers_from_one_shot_fault () =
  let store = Lazy.force tiny_store in
  let session = Sparql_uo.Session.create store in
  let oracle = count (Sparql_uo.Executor.run store chaos_text) in
  let f = Gov.fault ~site:"scan" ~after:1 in
  let report =
    Sparql_uo.Session.run ~retries:1 ~faults:[ f ] session chaos_text
  in
  Alcotest.(check bool) "the fault was spent on attempt one" true
    (Gov.fault_fired f);
  Alcotest.(check failure_opt) "retry ran clean" None
    report.Sparql_uo.Executor.failure;
  Alcotest.(check int) "retry result oracle-equal" oracle (count report)

let test_retry_exhaustion_keeps_failure () =
  (* A deterministic failure (the budget is too small on every attempt)
     survives the retry loop: the caller gets the final attempt's
     report, not an exception. *)
  let store = Lazy.force tiny_store in
  let session = Sparql_uo.Session.create store in
  let report =
    Sparql_uo.Session.run ~retries:2 ~row_budget:5 session
      "SELECT * WHERE { ?s ?p ?o . }"
  in
  Alcotest.(check failure_opt) "still out of budget after retries"
    (Some Gov.Out_of_budget) report.Sparql_uo.Executor.failure;
  Alcotest.(check int) "session quiescent" 0
    (Sparql_uo.Session.active_runs session)

(* --- Cross-domain cancellation --------------------------------------------- *)

let test_cancellation () =
  let store = Lazy.force tiny_store in
  let session = Sparql_uo.Session.create store in
  (* A cross product far beyond the backstop budget: completion is
     impossible, so only cancellation (or the backstop, on regression)
     can end the run. *)
  let text = "SELECT * WHERE { ?a ?p ?b . ?x ?q ?y . }" in
  let worker =
    Domain.spawn (fun () ->
        Sparql_uo.Session.run ~row_budget:50_000_000 session text)
  in
  while Sparql_uo.Session.active_runs session = 0 do
    Unix.sleepf 0.001
  done;
  let cancelled = Sparql_uo.Session.cancel session in
  let report = Domain.join worker in
  Alcotest.(check int) "one in-flight run cancelled" 1 cancelled;
  Alcotest.(check failure_opt) "killed as cancelled" (Some Gov.Cancelled)
    report.Sparql_uo.Executor.failure;
  Alcotest.(check int) "no ticket left armed" 0
    (Sparql_uo.Session.active_runs session);
  (* Cancellation must not poison the session for later runs. *)
  let clean = Sparql_uo.Session.run session "SELECT * WHERE { ?s ?p ?o . }" in
  Alcotest.(check bool) "session usable after cancel" true (count clean > 0)

(* --- Governor x morsel scheduler ------------------------------------------- *)

(* A cross product far beyond any reasonable budget: the probe side is
   morselized and stolen across the 4 domains, so every kill below must
   reach workers that are executing stolen morsels, not just the
   submitting domain. *)
let parallel_kill_text = "SELECT * WHERE { ?a ?p ?b . ?x ?q ?y . }"

let test_parallel_budget_kill_latency () =
  let store = Lazy.force tiny_store in
  let report =
    Sparql_uo.Executor.run ~domains:4 ~row_budget:1_000 store
      parallel_kill_text
  in
  Alcotest.(check failure_opt) "killed out of budget"
    (Some Gov.Out_of_budget) report.Sparql_uo.Executor.failure;
  (* Kill latency: the budget check runs inside [charge] on the charging
     domain, so the overshoot is bounded by the few in-flight charges of
     the other domains, not by their remaining morsels. *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded overshoot (%d rows)"
       report.Sparql_uo.Executor.pushed_rows)
    true
    (report.Sparql_uo.Executor.pushed_rows <= 1_000 + (4 * Gov.stride))

let test_parallel_deadline_kill () =
  let store = Lazy.force tiny_store in
  let report =
    Sparql_uo.Executor.run ~domains:4 ~timeout_ms:20.0
      ~row_budget:200_000_000 store parallel_kill_text
  in
  Alcotest.(check failure_opt) "killed on deadline" (Some Gov.Timeout)
    report.Sparql_uo.Executor.failure

(* A ticket cancelled from outside must stop every domain: the workers
   observe the flag at morsel boundaries (and on charge strides), the job
   quiesces, and the pool stays usable for the next parallel run. *)
let test_parallel_cancel_stops_all_domains () =
  let store = Lazy.force tiny_store in
  let session = Sparql_uo.Session.create store in
  let worker =
    Domain.spawn (fun () ->
        Sparql_uo.Session.run ~domains:4 ~row_budget:200_000_000 session
          parallel_kill_text)
  in
  while Sparql_uo.Session.active_runs session = 0 do
    Unix.sleepf 0.001
  done;
  let t0 = Unix.gettimeofday () in
  let cancelled = Sparql_uo.Session.cancel session in
  let report = Domain.join worker in
  let latency = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "one run cancelled" 1 cancelled;
  Alcotest.(check failure_opt) "killed as cancelled" (Some Gov.Cancelled)
    report.Sparql_uo.Executor.failure;
  Alcotest.(check bool)
    (Printf.sprintf "all domains parked promptly (%.0f ms)" (latency *. 1e3))
    true (latency < 5.0);
  let clean =
    Sparql_uo.Session.run ~domains:4 session "SELECT * WHERE { ?s ?p ?o . }"
  in
  Alcotest.(check bool) "pool usable after the cancel" true (count clean > 0)

(* --- Two-session isolation (the concurrency regression) -------------------- *)

let test_two_session_isolation () =
  let store = Lazy.force tiny_store in
  let oracle = count (Sparql_uo.Executor.run store chaos_text) in
  let tight_session = Sparql_uo.Session.create store in
  let free_session = Sparql_uo.Session.create store in
  (* Two sessions on separate domains, simultaneously: one with a budget
     its query cannot fit in, one unlimited. Under the historical global
     budget the tight session's limit could kill (or spare) the free one
     depending on interleaving; per-ticket accounting makes both
     deterministic. Several rounds to vary the interleaving. *)
  for _ = 1 to 3 do
    let tight =
      Domain.spawn (fun () ->
          Sparql_uo.Session.run ~domains:4 ~row_budget:5 tight_session
            chaos_text)
    in
    let free =
      Domain.spawn (fun () ->
          Sparql_uo.Session.run ~domains:4 free_session chaos_text)
    in
    let tight = Domain.join tight and free = Domain.join free in
    Alcotest.(check failure_opt) "tight run killed by its own budget"
      (Some Gov.Out_of_budget) tight.Sparql_uo.Executor.failure;
    Alcotest.(check failure_opt) "free run unaffected" None
      free.Sparql_uo.Executor.failure;
    Alcotest.(check int) "free run matches the serial oracle" oracle
      (count free)
  done;
  Alcotest.(check int) "tight session quiescent" 0
    (Sparql_uo.Session.active_runs tight_session);
  Alcotest.(check int) "free session quiescent" 0
    (Sparql_uo.Session.active_runs free_session)

let () =
  Alcotest.run "governor"
    [
      ( "ticket",
        [
          Alcotest.test_case "deadline" `Quick test_ticket_deadline;
          Alcotest.test_case "cancel flag" `Quick test_ticket_cancel;
          Alcotest.test_case "per-ticket isolation" `Quick test_ticket_isolation;
          Alcotest.test_case "transient classification" `Quick
            test_transient_classification;
          Alcotest.test_case "seeded schedule deterministic" `Quick
            test_seeded_schedule_deterministic;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "every failpoint kills cleanly" `Quick
            test_chaos_all_failpoints;
          Alcotest.test_case "faults under the domain pool" `Quick
            test_chaos_parallel;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "partial results" `Quick test_partial_results;
          Alcotest.test_case "retry recovers from one-shot fault" `Quick
            test_retry_recovers_from_one_shot_fault;
          Alcotest.test_case "retry exhaustion keeps failure" `Quick
            test_retry_exhaustion_keeps_failure;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "cross-domain cancellation" `Quick
            test_cancellation;
          Alcotest.test_case "two-session isolation" `Quick
            test_two_session_isolation;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "budget kill latency with stolen morsels" `Quick
            test_parallel_budget_kill_latency;
          Alcotest.test_case "deadline fires across domains" `Quick
            test_parallel_deadline_kill;
          Alcotest.test_case "cancel stops all domains" `Quick
            test_parallel_cancel_stops_all_domains;
        ] );
    ]
