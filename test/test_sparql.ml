(* Tests for the sparql library: lexer, parser, AST/algebra conversion,
   bindings and the bag operators of Section 3. *)

module TP = Sparql.Triple_pattern

let v name = TP.Var name
let c iri = TP.Term (Rdf.Term.iri iri)

(* --- Lexer ---------------------------------------------------------------- *)

let toks src =
  Array.to_list (Sparql.Lexer.tokenize src)
  |> List.map (fun { Sparql.Lexer.tok; _ } -> tok)

let test_lexer_basics () =
  let open Sparql.Lexer in
  Alcotest.(check bool) "select star where" true
    (toks "SELECT * WHERE { }" = [ SELECT; STAR; WHERE; LBRACE; RBRACE; EOF ]);
  Alcotest.(check bool) "case insensitive keywords" true
    (toks "select Where Optional union" = [ SELECT; WHERE; OPTIONAL; UNION; EOF ]);
  Alcotest.(check bool) "vars" true
    (toks "?x $y" = [ VAR "x"; VAR "y"; EOF ]);
  Alcotest.(check bool) "qname with dots" true
    (toks "dbr:Economic_system" = [ QNAME "dbr:Economic_system"; EOF ]);
  Alcotest.(check bool) "iri" true
    (toks "<http://a/b#c>" = [ IRIREF "http://a/b#c"; EOF ])

let test_lexer_literals () =
  let open Sparql.Lexer in
  Alcotest.(check bool) "string" true (toks "\"hi\"" = [ STRING "hi"; EOF ]);
  Alcotest.(check bool) "lang" true
    (toks "\"hi\"@en" = [ STRING "hi"; LANGTAG "en"; EOF ]);
  Alcotest.(check bool) "typed" true
    (toks "\"3\"^^xsd:int" = [ STRING "3"; DTYPE_SEP; QNAME "xsd:int"; EOF ]);
  Alcotest.(check bool) "int" true (toks "42" = [ INT "42"; EOF ]);
  Alcotest.(check bool) "negative decimal" true
    (toks "-3.5" = [ DECIMAL "-3.5"; EOF ]);
  Alcotest.(check bool) "string with @ inside" true
    (toks "\"a@b.edu\"" = [ STRING "a@b.edu"; EOF ])

let test_lexer_filter_operators () =
  let open Sparql.Lexer in
  Alcotest.(check bool) "comparison ops" true
    (toks "= != < > <= >= && || !" =
       [ EQ; NEQ; LT; GT; LE; GE; ANDAND; OROR; BANG; EOF ]);
  (* '<' starts an IRI only when a '>' follows with no whitespace. *)
  Alcotest.(check bool) "lt vs iri" true
    (toks "?x < 3" = [ VAR "x"; LT; INT "3"; EOF ])

let test_lexer_comments () =
  let open Sparql.Lexer in
  Alcotest.(check bool) "comment skipped" true
    (toks "?x # comment here\n?y" = [ VAR "x"; VAR "y"; EOF ])

let test_lexer_errors () =
  List.iter
    (fun src ->
      match Sparql.Lexer.tokenize src with
      | exception Sparql.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail ("expected lex error for: " ^ src))
    [ "?"; "\"unterminated"; "@"; "`" ]

(* --- Parser ---------------------------------------------------------------- *)

let parse_where src = (Sparql.Parser.parse src).Sparql.Ast.where

let test_parser_triples_block () =
  let g = parse_where "SELECT * WHERE { ?x ub:worksFor ?y . ?x a ub:FullProfessor . }" in
  match g with
  | [ Sparql.Ast.Triples [ tp1; tp2 ] ] ->
      Alcotest.(check bool) "tp1" true
        (TP.equal tp1 (TP.make (v "x") (c (Rdf.Namespace.ub "worksFor")) (v "y")));
      Alcotest.(check bool) "tp2 uses rdf:type for 'a'" true
        (TP.equal tp2
           (TP.make (v "x") (c Rdf.Namespace.rdf_type)
              (c (Rdf.Namespace.ub "FullProfessor"))))
  | _ -> Alcotest.fail "expected one triples block with two patterns"

let test_parser_semicolon_comma () =
  let g = parse_where "SELECT * WHERE { ?x ub:p ?y , ?z ; ub:q ?w . }" in
  match g with
  | [ Sparql.Ast.Triples tps ] -> Alcotest.(check int) "three triples" 3 (List.length tps)
  | _ -> Alcotest.fail "expected a triples block"

let test_parser_union () =
  let g = parse_where "SELECT * WHERE { { ?x ub:p ?y . } UNION { ?x ub:q ?y . } UNION { ?x ub:r ?y . } }" in
  match g with
  | [ Sparql.Ast.Union [ _; _; _ ] ] -> ()
  | _ -> Alcotest.fail "expected a 3-branch UNION"

let test_parser_optional_nesting () =
  let g =
    parse_where
      "SELECT * WHERE { ?x ub:p ?y . OPTIONAL { ?y ub:q ?z . OPTIONAL { ?z ub:r ?w . } } }"
  in
  match g with
  | [ Sparql.Ast.Triples _; Sparql.Ast.Optional inner ] -> (
      match inner with
      | [ Sparql.Ast.Triples _; Sparql.Ast.Optional _ ] -> ()
      | _ -> Alcotest.fail "expected nested OPTIONAL")
  | _ -> Alcotest.fail "expected triples then OPTIONAL"

let test_parser_select_forms () =
  let q1 = Sparql.Parser.parse "SELECT ?x ?y WHERE { ?x ub:p ?y . }" in
  Alcotest.(check bool) "projection" true
    (Sparql.Ast.select_query q1 = Sparql.Ast.Projection [ "x"; "y" ]);
  let q2 = Sparql.Parser.parse "SELECT DISTINCT * WHERE { ?x ub:p ?y . }" in
  Alcotest.(check bool) "distinct star" true
    (Sparql.Ast.select_query q2 = Sparql.Ast.Star && q2.Sparql.Ast.distinct);
  (* The paper's bare "SELECT WHERE". *)
  let q3 = Sparql.Parser.parse "SELECT WHERE { ?x ub:p ?y . }" in
  Alcotest.(check bool) "bare select = star" true
    (Sparql.Ast.select_query q3 = Sparql.Ast.Star)

let test_parser_prefix_declarations () =
  let q =
    Sparql.Parser.parse
      "PREFIX ex: <http://example.org/> SELECT * WHERE { ?x ex:p ?y . }"
  in
  match q.Sparql.Ast.where with
  | [ Sparql.Ast.Triples [ tp ] ] ->
      Alcotest.(check bool) "prefix expanded" true
        (TP.equal tp (TP.make (v "x") (c "http://example.org/p") (v "y")))
  | _ -> Alcotest.fail "expected one pattern"

let test_parser_filter () =
  let g = parse_where "SELECT * WHERE { ?x ub:p ?y . FILTER (?y != ub:z && bound(?x)) }" in
  match g with
  | [ Sparql.Ast.Triples _; Sparql.Ast.Filter e ] ->
      Alcotest.(check (list string)) "filter vars" [ "y"; "x" ]
        (Sparql.Expr.vars ~pattern_vars:Sparql.Ast.group_vars e)
  | _ -> Alcotest.fail "expected triples then filter"

let test_parser_literal_objects () =
  let g =
    parse_where
      {|SELECT * WHERE { ?x ub:email "a@b.edu" . ?x ub:age 42 . ?x ub:label "x"@en . }|}
  in
  match g with
  | [ Sparql.Ast.Triples [ t1; t2; t3 ] ] ->
      Alcotest.(check bool) "plain literal" true
        (t1.TP.o = TP.Term (Rdf.Term.literal "a@b.edu"));
      Alcotest.(check bool) "int literal" true
        (t2.TP.o = TP.Term (Rdf.Term.int_literal 42));
      Alcotest.(check bool) "lang literal" true
        (t3.TP.o = TP.Term (Rdf.Term.lang_literal "x" ~lang:"en"))
  | _ -> Alcotest.fail "expected three patterns"

let test_parser_limit_offset () =
  let q = Sparql.Parser.parse "SELECT * WHERE { ?x ub:p ?y . } LIMIT 10 OFFSET 5" in
  Alcotest.(check (option int)) "limit" (Some 10) q.Sparql.Ast.limit;
  Alcotest.(check (option int)) "offset" (Some 5) q.Sparql.Ast.offset;
  (* Either order. *)
  let q2 = Sparql.Parser.parse "SELECT * WHERE { ?x ub:p ?y . } OFFSET 5 LIMIT 10" in
  Alcotest.(check (option int)) "limit (reordered)" (Some 10) q2.Sparql.Ast.limit;
  let q3 = Sparql.Parser.parse "SELECT * WHERE { ?x ub:p ?y . }" in
  Alcotest.(check (option int)) "absent" None q3.Sparql.Ast.limit;
  match Sparql.Parser.parse "SELECT * WHERE { ?x ub:p ?y . } LIMIT ?x" with
  | exception Sparql.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected error for non-numeric LIMIT"

let test_parser_all_benchmark_queries () =
  List.iter
    (fun ds ->
      List.iter
        (fun (entry : Workload.Queries.entry) ->
          match Sparql.Parser.parse entry.text with
          | _ -> ()
          | exception Sparql.Parser.Parse_error { line; message } ->
              Alcotest.fail
                (Printf.sprintf "%s %s failed to parse (line %d): %s"
                   (Workload.Queries.dataset_name ds) entry.id line message))
        (Workload.Queries.all ds))
    [ Workload.Queries.Lubm; Workload.Queries.Dbpedia ]

let test_parser_errors () =
  List.iter
    (fun src ->
      match Sparql.Parser.parse src with
      | exception Sparql.Parser.Parse_error _ -> ()
      | exception Sparql.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail ("expected parse error for: " ^ src))
    [
      "SELECT * WHERE { ?x }";
      "SELECT * WHERE { ?x ub:p ?y . ";
      "WHERE { ?x ub:p ?y . }";
      "SELECT * WHERE { ?x nope:p ?y . }";
      "SELECT * WHERE { { ?x ub:p ?y . } UNION }";
      "SELECT * WHERE { OPTIONAL }";
      "SELECT * WHERE { } trailing";
      "SELECT * WHERE { } ?x";
    ]

(* Round-trip: printing a parsed query and re-parsing it yields the same
   algebra. *)
let test_parser_print_roundtrip () =
  List.iter
    (fun ds ->
      List.iter
        (fun (entry : Workload.Queries.entry) ->
          let q1 = Sparql.Parser.parse entry.text in
          let printed = Sparql.Ast.to_string q1 in
          let q2 =
            try Sparql.Parser.parse printed
            with Sparql.Parser.Parse_error { line; message } ->
              Alcotest.fail
                (Printf.sprintf "%s reprint failed (line %d): %s\n%s" entry.id
                   line message printed)
          in
          Alcotest.(check bool)
            (entry.id ^ " algebra preserved")
            true
            (Sparql.Algebra.of_query q1 = Sparql.Algebra.of_query q2))
        (Workload.Queries.all ds))
    [ Workload.Queries.Lubm; Workload.Queries.Dbpedia ]

(* --- Algebra --------------------------------------------------------------- *)

let test_algebra_optional_left_assoc () =
  let g = parse_where "SELECT * WHERE { ?a ub:p ?b . OPTIONAL { ?b ub:q ?c . } OPTIONAL { ?b ub:r ?d . } }" in
  match Sparql.Algebra.of_group g with
  | Sparql.Algebra.Group
      (Sparql.Algebra.Optional
        (Sparql.Algebra.Optional (Sparql.Algebra.Triple _, _), _)) ->
      ()
  | other ->
      Alcotest.fail
        (Format.asprintf "unexpected algebra: %a" Sparql.Algebra.pp other)

let test_algebra_leading_optional_unit () =
  let g = parse_where "SELECT * WHERE { OPTIONAL { ?x ub:p ?y . } }" in
  match Sparql.Algebra.of_group g with
  | Sparql.Algebra.Group (Sparql.Algebra.Optional (Sparql.Algebra.Unit, _)) -> ()
  | other ->
      Alcotest.fail
        (Format.asprintf "unexpected algebra: %a" Sparql.Algebra.pp other)

let test_algebra_vars_order () =
  let g = parse_where "SELECT * WHERE { ?b ub:p ?a . OPTIONAL { ?c ub:q ?b . } }" in
  Alcotest.(check (list string)) "first-use order" [ "b"; "a"; "c" ]
    (Sparql.Algebra.vars (Sparql.Algebra.of_group g))

(* --- Triple pattern -------------------------------------------------------- *)

let test_coalescable () =
  let tp1 = TP.make (v "x") (c "p") (v "y") in
  let tp2 = TP.make (v "y") (c "q") (v "z") in
  let tp3 = TP.make (v "a") (c "p") (v "b") in
  let tp4 = TP.make (v "a") (v "x") (v "b") in
  Alcotest.(check bool) "shared object/subject var" true (TP.coalescable tp1 tp2);
  Alcotest.(check bool) "no shared vars" false (TP.coalescable tp1 tp3);
  (* A shared variable at the *predicate* position does not count. *)
  Alcotest.(check bool) "predicate position ignored" false (TP.coalescable tp1 tp4)

(* --- Binding ---------------------------------------------------------------- *)

let test_binding_compatible () =
  let r1 = [| 1; -1; 3 |] and r2 = [| 1; 2; -1 |] and r3 = [| 2; 2; -1 |] in
  Alcotest.(check bool) "compatible" true (Sparql.Binding.compatible r1 r2);
  Alcotest.(check bool) "incompatible" false (Sparql.Binding.compatible r1 r3);
  Alcotest.(check bool) "merge" true (Sparql.Binding.merge r1 r2 = [| 1; 2; 3 |]);
  Alcotest.(check (list int)) "dom" [ 0; 2 ] (Sparql.Binding.dom r1)

(* --- Bag operators (Section 3) ----------------------------------------------- *)

let bag_of rows = Sparql.Bag.of_rows ~width:3 rows

let bag_equal = Sparql.Bag.equal_as_bags

let test_bag_join_basic () =
  let b1 = bag_of [ [| 1; -1; -1 |]; [| 2; -1; -1 |] ] in
  let b2 = bag_of [ [| 1; 5; -1 |]; [| 3; 6; -1 |] ] in
  let joined = Sparql.Bag.join b1 b2 in
  Alcotest.(check bool) "join result" true
    (bag_equal joined (bag_of [ [| 1; 5; -1 |] ]))

let test_bag_join_duplicates () =
  (* Bag semantics: duplicates multiply. *)
  let b1 = bag_of [ [| 1; -1; -1 |]; [| 1; -1; -1 |] ] in
  let b2 = bag_of [ [| 1; 5; -1 |]; [| 1; 6; -1 |] ] in
  Alcotest.(check int) "2x2 matches" 4 (Sparql.Bag.length (Sparql.Bag.join b1 b2))

let test_bag_join_unbound_shared () =
  (* A row with an unbound shared column is compatible with anything
     (SPARQL's null-join), while conflicting bound values are not. *)
  let b1 = bag_of [ [| -1; 7; -1 |] ] in
  Alcotest.(check bool) "conflicting bound values incompatible" true
    (Sparql.Bag.is_empty (Sparql.Bag.join b1 (bag_of [ [| 1; 5; -1 |] ])));
  let joined = Sparql.Bag.join b1 (bag_of [ [| 1; -1; -1 |] ]) in
  Alcotest.(check bool) "null-join merges" true
    (bag_equal joined (bag_of [ [| 1; 7; -1 |] ]))

let test_bag_minus_and_leftjoin () =
  let b1 = bag_of [ [| 1; -1; -1 |]; [| 2; -1; -1 |] ] in
  let b2 = bag_of [ [| 1; 5; -1 |] ] in
  Alcotest.(check bool) "minus keeps unmatched" true
    (bag_equal (Sparql.Bag.minus b1 b2) (bag_of [ [| 2; -1; -1 |] ]));
  Alcotest.(check bool) "left outer = join + minus" true
    (bag_equal
       (Sparql.Bag.left_outer_join b1 b2)
       (bag_of [ [| 1; 5; -1 |]; [| 2; -1; -1 |] ]))

let test_bag_semijoin () =
  let b1 = bag_of [ [| 1; -1; -1 |]; [| 2; -1; -1 |] ] in
  let b2 = bag_of [ [| 1; 5; -1 |] ] in
  Alcotest.(check bool) "semijoin" true
    (bag_equal (Sparql.Bag.semijoin b1 b2) (bag_of [ [| 1; -1; -1 |] ]))

let test_bag_universal_columns () =
  let b = bag_of [ [| 1; 2; -1 |]; [| 3; -1; -1 |] ] in
  Alcotest.(check (list int)) "universal" [ 0 ] (Sparql.Bag.universal_columns b);
  Alcotest.(check (list int)) "bound" [ 0; 1 ] (Sparql.Bag.bound_columns b);
  Alcotest.(check (list int)) "empty bag" []
    (Sparql.Bag.universal_columns (Sparql.Bag.create ~width:3))

let test_bag_project_dedup () =
  let b = bag_of [ [| 1; 2; 3 |]; [| 1; 2; 4 |] ] in
  let projected = Sparql.Bag.project b ~cols:[ 0; 1 ] in
  Alcotest.(check int) "projection keeps rows" 2 (Sparql.Bag.length projected);
  Alcotest.(check int) "dedup collapses" 1
    (Sparql.Bag.length (Sparql.Bag.dedup projected))

let test_bag_budget () =
  (* Budgets live on the ambient governor ticket: pushes inside the
     governed scope charge it, and the ticket dies with the scope. *)
  let gov = Sparql.Governor.create ~row_budget:5 () in
  let captured = ref None in
  (try
     Sparql.Governor.with_ticket gov (fun () ->
         let b = Sparql.Bag.create ~width:1 in
         captured := Some b;
         for i = 1 to 10 do
           Sparql.Bag.push b [| i |]
         done);
     Alcotest.fail "expected Kill Out_of_budget"
   with Sparql.Governor.Kill Sparql.Governor.Out_of_budget -> ());
  Alcotest.(check int) "five rows pushed" 5
    (Sparql.Bag.length (Option.get !captured));
  Alcotest.(check int) "ticket counted them" 5 (Sparql.Governor.pushed gov);
  (* Outside the scope the ambient ticket is the per-domain unlimited
     default — the spent budget cannot leak to the next execution. *)
  let b2 = Sparql.Bag.create ~width:1 in
  for i = 1 to 10 do
    Sparql.Bag.push b2 [| i |]
  done;
  Alcotest.(check int) "next run ungoverned" 10 (Sparql.Bag.length b2)

(* qcheck generators for random bags. *)
let gen_row width =
  QCheck2.Gen.(array_size (pure width) (int_range (-1) 3))

let gen_bag width =
  QCheck2.Gen.(
    map (fun rows -> Sparql.Bag.of_rows ~width rows)
      (list_size (int_range 0 12) (gen_row width)))

(* Reference implementations: quadratic nested loops straight from the
   paper's definitions. *)
let naive_join b1 b2 =
  let result = Sparql.Bag.create ~width:(Sparql.Bag.width b1) in
  Sparql.Bag.iter b1 ~f:(fun r1 ->
      Sparql.Bag.iter b2 ~f:(fun r2 ->
          if Sparql.Binding.compatible r1 r2 then
            Sparql.Bag.push result (Sparql.Binding.merge r1 r2)));
  result

let naive_minus b1 b2 =
  Sparql.Bag.filter b1 ~f:(fun r1 ->
      not (Sparql.Bag.fold b2 ~init:false ~f:(fun acc r2 ->
               acc || Sparql.Binding.compatible r1 r2)))

let prop_join_matches_naive =
  QCheck2.Test.make ~name:"hash join = naive join (as bags)" ~count:300
    QCheck2.Gen.(pair (gen_bag 3) (gen_bag 3))
    (fun (b1, b2) -> bag_equal (Sparql.Bag.join b1 b2) (naive_join b1 b2))

let prop_join_commutative =
  QCheck2.Test.make ~name:"join commutative as bags" ~count:300
    QCheck2.Gen.(pair (gen_bag 3) (gen_bag 3))
    (fun (b1, b2) -> bag_equal (Sparql.Bag.join b1 b2) (Sparql.Bag.join b2 b1))

let prop_minus_matches_naive =
  QCheck2.Test.make ~name:"minus = naive anti-join" ~count:300
    QCheck2.Gen.(pair (gen_bag 3) (gen_bag 3))
    (fun (b1, b2) -> bag_equal (Sparql.Bag.minus b1 b2) (naive_minus b1 b2))

let prop_leftjoin_decomposition =
  QCheck2.Test.make ~name:"leftjoin = join U minus (Definition 7)" ~count:300
    QCheck2.Gen.(pair (gen_bag 3) (gen_bag 3))
    (fun (b1, b2) ->
      bag_equal
        (Sparql.Bag.left_outer_join b1 b2)
        (Sparql.Bag.union (Sparql.Bag.join b1 b2) (Sparql.Bag.minus b1 b2)))

let prop_union_cardinality =
  QCheck2.Test.make ~name:"union preserves cardinalities" ~count:300
    QCheck2.Gen.(pair (gen_bag 3) (gen_bag 3))
    (fun (b1, b2) ->
      Sparql.Bag.length (Sparql.Bag.union b1 b2)
      = Sparql.Bag.length b1 + Sparql.Bag.length b2)

let naive_semijoin b1 b2 =
  Sparql.Bag.filter b1 ~f:(fun r1 ->
      Sparql.Bag.fold b2 ~init:false ~f:(fun acc r2 ->
          acc || Sparql.Binding.compatible r1 r2))

let prop_semijoin_is_filter =
  QCheck2.Test.make ~name:"semijoin = naive existential filter" ~count:300
    QCheck2.Gen.(pair (gen_bag 3) (gen_bag 3))
    (fun (b1, b2) ->
      bag_equal (Sparql.Bag.semijoin b1 b2) (naive_semijoin b1 b2))

(* --- Expr ---------------------------------------------------------------------- *)

let test_expr_eval () =
  let lookup v =
    match v with
    | "x" -> Some (Rdf.Term.int_literal 3)
    | "y" -> Some (Rdf.Term.int_literal 10)
    | "s" -> Some (Rdf.Term.literal "abc")
    | _ -> None
  in
  let no_exists (_ : unit) = false in
  let open Sparql.Expr in
  let eval e = Sparql.Expr.eval ~lookup ~exists:no_exists e in
  Alcotest.(check bool) "numeric lt" true (eval (Cmp (Clt, Var "x", Var "y")));
  Alcotest.(check bool) "numeric vs string eq" false
    (eval (Cmp (Ceq, Var "x", Var "s")));
  Alcotest.(check bool) "bound" true (eval (Bound "x"));
  Alcotest.(check bool) "not bound" false (eval (Bound "z"));
  (* A comparison against an unbound variable errors; errors propagate
     through Not (SPARQL's error algebra) and reject the row. *)
  Alcotest.(check bool) "unbound comparison rejects" false
    (eval (Cmp (Clt, Var "z", Var "x")));
  Alcotest.(check bool) "error under Not still rejects" false
    (eval (Not (Cmp (Clt, Var "z", Var "x"))));
  (* Error-recovering connectives. *)
  Alcotest.(check bool) "error || true" true
    (eval (Or (Cmp (Clt, Var "z", Var "x"), Bound "x")));
  Alcotest.(check bool) "error && false" false
    (eval (And (Cmp (Clt, Var "z", Var "x"), Bound "z")));
  Alcotest.(check bool) "arithmetic" true
    (eval
       (Cmp (Ceq, Arith (Add, Var "x", Const (Rdf.Term.int_literal 7)), Var "y")));
  Alcotest.(check bool) "division by zero errors" false
    (eval
       (Cmp (Ceq, Arith (Divide, Var "x", Const (Rdf.Term.int_literal 0)), Var "x")))

let test_expr_builtins () =
  let lookup v =
    match v with
    | "iri" -> Some (Rdf.Term.iri "http://example.org/thing")
    | "name" -> Some (Rdf.Term.lang_literal "Alice" ~lang:"en")
    | "plain" -> Some (Rdf.Term.literal "Hello World")
    | "n" -> Some (Rdf.Term.int_literal (-4))
    | _ -> None
  in
  let no_exists (_ : unit) = false in
  let open Sparql.Expr in
  let eval e = Sparql.Expr.eval ~lookup ~exists:no_exists e in
  Alcotest.(check bool) "isIRI" true (eval (Call (B_is_iri, [ Var "iri" ])));
  Alcotest.(check bool) "isLiteral" true
    (eval (Call (B_is_literal, [ Var "name" ])));
  Alcotest.(check bool) "lang" true
    (eval (Cmp (Ceq, Call (B_lang, [ Var "name" ]), Const (Rdf.Term.literal "en"))));
  Alcotest.(check bool) "str of iri" true
    (eval
       (Cmp
          ( Ceq,
            Call (B_str, [ Var "iri" ]),
            Const (Rdf.Term.literal "http://example.org/thing") )));
  Alcotest.(check bool) "strlen" true
    (eval
       (Cmp (Ceq, Call (B_strlen, [ Var "plain" ]), Const (Rdf.Term.int_literal 11))));
  Alcotest.(check bool) "ucase/contains" true
    (eval
       (Call
          ( B_contains,
            [ Call (B_ucase, [ Var "plain" ]); Const (Rdf.Term.literal "WORLD") ]
          )));
  Alcotest.(check bool) "strstarts" true
    (eval (Call (B_strstarts, [ Var "plain"; Const (Rdf.Term.literal "Hell") ])));
  Alcotest.(check bool) "strends false" false
    (eval (Call (B_strends, [ Var "plain"; Const (Rdf.Term.literal "Hell") ])));
  Alcotest.(check bool) "abs" true
    (eval (Cmp (Ceq, Call (B_abs, [ Var "n" ]), Const (Rdf.Term.int_literal 4))));
  Alcotest.(check bool) "regex" true
    (eval
       (Call (B_regex, [ Var "plain"; Const (Rdf.Term.literal "^Hel+o .*d$") ])));
  Alcotest.(check bool) "regex case-insensitive flag" true
    (eval
       (Call
          ( B_regex,
            [ Var "plain"; Const (Rdf.Term.literal "hello");
              Const (Rdf.Term.literal "i") ] )));
  Alcotest.(check bool) "sameTerm" true
    (eval (Call (B_same_term, [ Var "iri"; Var "iri" ])));
  Alcotest.(check bool) "datatype of int" true
    (eval
       (Cmp
          ( Ceq,
            Call (B_datatype, [ Var "n" ]),
            Const (Rdf.Term.iri Rdf.Term.xsd_integer) )))

let () =
  Alcotest.run "sparql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "literals" `Quick test_lexer_literals;
          Alcotest.test_case "filter operators" `Quick test_lexer_filter_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "triples block" `Quick test_parser_triples_block;
          Alcotest.test_case "; and ," `Quick test_parser_semicolon_comma;
          Alcotest.test_case "union" `Quick test_parser_union;
          Alcotest.test_case "optional nesting" `Quick test_parser_optional_nesting;
          Alcotest.test_case "select forms" `Quick test_parser_select_forms;
          Alcotest.test_case "prefix declarations" `Quick test_parser_prefix_declarations;
          Alcotest.test_case "filter" `Quick test_parser_filter;
          Alcotest.test_case "literal objects" `Quick test_parser_literal_objects;
          Alcotest.test_case "limit/offset" `Quick test_parser_limit_offset;
          Alcotest.test_case "all 24 benchmark queries" `Quick test_parser_all_benchmark_queries;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick test_parser_print_roundtrip;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "OPTIONAL left-associativity" `Quick test_algebra_optional_left_assoc;
          Alcotest.test_case "leading OPTIONAL gets Unit left" `Quick test_algebra_leading_optional_unit;
          Alcotest.test_case "vars order" `Quick test_algebra_vars_order;
          Alcotest.test_case "coalescability (Def. 3)" `Quick test_coalescable;
        ] );
      ( "binding",
        [ Alcotest.test_case "compatibility and merge" `Quick test_binding_compatible ] );
      ( "bag",
        [
          Alcotest.test_case "join basic" `Quick test_bag_join_basic;
          Alcotest.test_case "join duplicates" `Quick test_bag_join_duplicates;
          Alcotest.test_case "join with unbound shared" `Quick test_bag_join_unbound_shared;
          Alcotest.test_case "minus and left join" `Quick test_bag_minus_and_leftjoin;
          Alcotest.test_case "semijoin" `Quick test_bag_semijoin;
          Alcotest.test_case "universal columns" `Quick test_bag_universal_columns;
          Alcotest.test_case "project and dedup" `Quick test_bag_project_dedup;
          Alcotest.test_case "row budget" `Quick test_bag_budget;
          QCheck_alcotest.to_alcotest prop_join_matches_naive;
          QCheck_alcotest.to_alcotest prop_join_commutative;
          QCheck_alcotest.to_alcotest prop_minus_matches_naive;
          QCheck_alcotest.to_alcotest prop_leftjoin_decomposition;
          QCheck_alcotest.to_alcotest prop_union_cardinality;
          QCheck_alcotest.to_alcotest prop_semijoin_is_filter;
        ] );
      ( "expr",
        [
          Alcotest.test_case "evaluation + error algebra" `Quick test_expr_eval;
          Alcotest.test_case "builtins" `Quick test_expr_builtins;
        ] );
    ]
