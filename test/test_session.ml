(* Tests for the compile-once / execute-many layer: Prepared re-execution
   stability, the Session plan cache (LRU bounds, hit/miss accounting,
   explain provenance), epoch-based invalidation after SPARQL Updates and
   after eval-time dictionary growth (VALUES), and a multi-domain
   concurrency smoke over one shared session. *)

module Store = Rdf_store.Triple_store

let store_of = Store.of_triples

let count report =
  match report.Sparql_uo.Executor.result_count with
  | Some n -> n
  | None -> Alcotest.fail "run hit a limit unexpectedly"

let cache_of report =
  match report.Sparql_uo.Executor.cache with
  | Some c -> c
  | None -> Alcotest.fail "session run carries no cache info"

let triple i j = Rdf.Triple.make (Qgen.iri i) (Qgen.pred 0) (Qgen.iri j)

(* --- Prepared: execute-many determinism ---------------------------------- *)

(* The central prepare/execute property: a plan prepared once and executed
   repeatedly yields the same bag as a fresh one-shot run, across every
   mode x engine x domains x streaming configuration. *)
let prop_prepared_reexecution_stable =
  QCheck2.Test.make ~name:"Prepared.execute twice = fresh Executor.run"
    ~count:40
    ~print:(fun (triples, query) ->
      Qgen.pp_dataset triples ^ "\n" ^ Qgen.pp_query query)
    QCheck2.Gen.(pair Qgen.gen_dataset Qgen.gen_modified_query)
    (fun (triples, query) ->
      let store = store_of triples in
      List.for_all
        (fun (mode, engine, domains, streaming) ->
          let prepared = Sparql_uo.Prepared.prepare ~mode ~engine store query in
          let first =
            Sparql_uo.Prepared.execute ~domains ~streaming prepared
          in
          let second =
            Sparql_uo.Prepared.execute ~domains ~streaming prepared
          in
          let oneshot =
            Sparql_uo.Executor.run_query ~mode ~engine ~domains ~streaming
              store query
          in
          match
            ( first.Sparql_uo.Executor.bag,
              second.Sparql_uo.Executor.bag,
              oneshot.Sparql_uo.Executor.bag )
          with
          | Some b1, Some b2, Some b3 ->
              Sparql.Bag.equal_as_bags b1 b2 && Sparql.Bag.equal_as_bags b1 b3
          | _ -> false)
        Qgen.exec_configs)

(* --- Updates: MVCC deltas keep the plan cache warm ------------------------ *)

(* Transactional updates publish a new snapshot version but do NOT
   invalidate cached plans — the plan retargets to the delta at execute
   time and must see the committed writes immediately. *)
let test_update_keeps_cache_warm () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1; triple 1 2 ]) in
  let text = "SELECT * WHERE { ?x <http://t/p0> ?y . }" in
  let epoch0 = Sparql_uo.Session.epoch session in
  let r1 = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "first run misses" false (cache_of r1).hit;
  Alcotest.(check int) "two solutions" 2 (count r1);
  let r2 = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "second run hits" true (cache_of r2).hit;
  Sparql_uo.Update_exec.run_session session
    "INSERT DATA { <http://t/e5> <http://t/p0> <http://t/e0> . }";
  Alcotest.(check bool) "commit bumps the snapshot version" true
    (Sparql_uo.Session.epoch session > epoch0);
  let r3 = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "post-update run still hits" true (cache_of r3).hit;
  Alcotest.(check int) "result reflects the inserted triple" 3 (count r3);
  Sparql_uo.Update_exec.run_session session
    "DELETE DATA { <http://t/e5> <http://t/p0> <http://t/e0> . }";
  let r4 = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "post-delete run still hits" true (cache_of r4).hit;
  Alcotest.(check int) "deletion visible" 2 (count r4);
  (* A bulk rebuild (set_store) swaps the whole lineage: that DOES
     invalidate. *)
  Sparql_uo.Session.set_store session (store_of [ triple 0 1 ]);
  let r5 = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "post-rebuild run misses" false (cache_of r5).hit;
  Alcotest.(check int) "rebuilt store visible" 1 (count r5)

(* Compaction folds the delta into a fresh base epoch: cached plans are
   stale (their base is gone) and must transparently re-prepare with
   identical results. *)
let test_compaction_invalidates_plans () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1; triple 1 2 ]) in
  let text = "SELECT * WHERE { ?x <http://t/p0> ?y . }" in
  ignore (Sparql_uo.Session.run session text);
  Sparql_uo.Update_exec.run_session session
    "INSERT DATA { <http://t/e5> <http://t/p0> <http://t/e6> . }";
  let r_delta = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "delta run hits" true (cache_of r_delta).hit;
  Alcotest.(check int) "delta visible" 3 (count r_delta);
  Sparql_uo.Session.compact session;
  Alcotest.(check int) "delta folded into base" 0
    (Rdf_store.Mvcc.delta_rows (Sparql_uo.Session.mvcc session));
  let r_compact = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "post-compaction run misses" false
    (cache_of r_compact).hit;
  Alcotest.(check int) "same result after compaction" 3 (count r_compact)

(* The session's statistics memo is invalidated alongside the plans: a
   cardinality recomputed after the update must see the new store. *)
let test_update_refreshes_stats () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1 ]) in
  let before = Rdf_store.Stats.num_triples (Sparql_uo.Session.stats session) in
  Alcotest.(check int) "one triple before" 1 before;
  Sparql_uo.Update_exec.run_session session
    "INSERT DATA { <http://t/e2> <http://t/p0> <http://t/e3> . }";
  let after = Rdf_store.Stats.num_triples (Sparql_uo.Session.stats session) in
  Alcotest.(check int) "two triples after" 2 after

(* --- VALUES interning: thread-safe, non-invalidating ---------------------- *)

let test_values_interning_keeps_cache () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1 ]) in
  (* The VALUES constant is absent from the store's dictionary; the
     first execution interns it in place. Interning is append-only and
     publishes no new snapshot, so it neither bumps the version nor
     invalidates the plan (which compiled no Missing constant — VALUES
     terms are interned at eval time, not compiled into the BGP). *)
  let text =
    "SELECT * WHERE { ?x <http://t/p0> ?y . VALUES ?z { <http://t/fresh> } }"
  in
  let epoch0 = Sparql_uo.Session.epoch session in
  let dict0 =
    Rdf_store.Snapshot.dict_size (Sparql_uo.Session.snapshot session)
  in
  let r1 = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "first run misses" false (cache_of r1).hit;
  Alcotest.(check int) "one solution" 1 (count r1);
  Alcotest.(check bool) "interning grew the dictionary" true
    (Rdf_store.Snapshot.dict_size (Sparql_uo.Session.snapshot session) > dict0);
  Alcotest.(check int) "interning left the snapshot version alone" epoch0
    (Sparql_uo.Session.epoch session);
  let r2 = Sparql_uo.Session.run session text in
  Alcotest.(check bool) "second run hits" true (cache_of r2).hit;
  Alcotest.(check int) "same solution" 1 (count r2)

(* Eval-time interning from several domains at once: every run must
   succeed, every domain must decode the shared constant identically,
   and the dictionary must contain each fresh term exactly once. *)
let test_concurrent_interning () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1 ]) in
  let text =
    "SELECT * WHERE { ?x <http://t/p0> ?y . VALUES ?z { <http://t/fresh> \
     <http://t/fresh2> } }"
  in
  let worker () =
    let ok = ref true in
    for _ = 1 to 8 do
      let r = Sparql_uo.Session.run session text in
      if count r <> 2 then ok := false
    done;
    !ok
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let all_ok = List.for_all Domain.join domains in
  Alcotest.(check bool) "every concurrent interning run succeeded" true all_ok;
  let dict =
    Rdf_store.Triple_store.dictionary (Sparql_uo.Session.store session)
  in
  List.iter
    (fun iri ->
      let term = Rdf.Term.iri iri in
      match Rdf_store.Dictionary.find dict term with
      | None -> Alcotest.fail (iri ^ " not interned")
      | Some id ->
          Alcotest.(check bool)
            (iri ^ " decodes back")
            true
            (Rdf.Term.equal (Rdf_store.Dictionary.decode dict id) term))
    [ "http://t/fresh"; "http://t/fresh2" ]

(* --- LRU bounds and accounting ------------------------------------------- *)

let test_lru_eviction_order () =
  let store = store_of [ triple 0 1; triple 1 2 ] in
  let session = Sparql_uo.Session.create ~cache_capacity:2 store in
  let qa = "SELECT * WHERE { ?x <http://t/p0> ?y . }" in
  let qb = "SELECT * WHERE { ?x <http://t/p0> ?y . } LIMIT 1" in
  let qc = "SELECT * WHERE { ?y <http://t/p0> ?x . }" in
  let run q = (cache_of (Sparql_uo.Session.run session q)).hit in
  Alcotest.(check bool) "A cold" false (run qa);
  Alcotest.(check bool) "B cold" false (run qb);
  (* Touch A so B is the least recently used entry. *)
  Alcotest.(check bool) "A cached" true (run qa);
  (* C fills the third slot of a 2-slot cache: B must be evicted. *)
  Alcotest.(check bool) "C cold" false (run qc);
  Alcotest.(check int) "one eviction" 1 (Sparql_uo.Session.evictions session);
  Alcotest.(check int) "cache at capacity" 2
    (Sparql_uo.Session.cache_length session);
  Alcotest.(check bool) "A survived" true (run qa);
  Alcotest.(check bool) "B was evicted" false (run qb);
  Alcotest.(check int) "counters" 2 (Sparql_uo.Session.hits session);
  Alcotest.(check int) "counters" 4 (Sparql_uo.Session.misses session)

let test_capacity_validation () =
  let store = store_of [ triple 0 1 ] in
  (match Sparql_uo.Session.create ~cache_capacity:0 store with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected");
  Alcotest.(check int) "capacity accessor" 7
    (Sparql_uo.Session.capacity (Sparql_uo.Session.create ~cache_capacity:7 store))

(* Per-(mode, engine) cache keys: the same text under different modes
   occupies distinct slots and each hits independently. *)
let test_cache_key_includes_mode_engine () =
  let store = store_of [ triple 0 1; triple 1 2 ] in
  let session = Sparql_uo.Session.create store in
  let text = "SELECT * WHERE { ?x <http://t/p0> ?y . }" in
  List.iter
    (fun mode ->
      List.iter
        (fun engine ->
          let r1 = Sparql_uo.Session.run ~mode ~engine session text in
          Alcotest.(check bool) "cold per (mode, engine)" false (cache_of r1).hit;
          let r2 = Sparql_uo.Session.run ~mode ~engine session text in
          Alcotest.(check bool) "warm per (mode, engine)" true (cache_of r2).hit;
          Alcotest.(check int) "same count" (count r1) (count r2))
        [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])
    Sparql_uo.Executor.all_modes;
  Alcotest.(check int) "eight distinct entries" 8
    (Sparql_uo.Session.cache_length session)

(* --- Explain provenance --------------------------------------------------- *)

let test_explain_reports_cache_and_epoch () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1 ]) in
  let text = "SELECT * WHERE { ?x <http://t/p0> ?y . }" in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
    at 0
  in
  let e1 = Sparql_uo.Executor.explain (Sparql_uo.Session.run session text) in
  Alcotest.(check bool) "first explain shows a miss" true
    (contains e1 "plan cache: miss");
  Alcotest.(check bool) "explain shows the epoch" true
    (contains e1 "store epoch:");
  let e2 = Sparql_uo.Executor.explain (Sparql_uo.Session.run session text) in
  Alcotest.(check bool) "second explain shows a hit" true
    (contains e2 "plan cache: hit");
  let one_shot =
    Sparql_uo.Executor.explain
      (Sparql_uo.Executor.run (Sparql_uo.Session.store session) text)
  in
  Alcotest.(check bool) "one-shot explain shows the bypass" true
    (contains one_shot "plan cache: bypassed")

(* --- Concurrency smoke ---------------------------------------------------- *)

(* Four domains hammer one session with a shared query set (serial
   evaluation, no VALUES, no budget/deadline — those knobs are
   process-global). Every run must return the right count, and the
   session's counters must account for every run exactly once. *)
let test_concurrent_session_runs () =
  let triples =
    List.concat_map (fun i -> [ triple i (i + 1); triple (i + 1) i ])
      [ 0; 1; 2; 3 ]
  in
  let session = Sparql_uo.Session.create (store_of triples) in
  let queries =
    [
      ("SELECT * WHERE { ?x <http://t/p0> ?y . }", List.length triples);
      ("SELECT * WHERE { ?x <http://t/p0> ?y . ?y <http://t/p0> ?x . }",
       List.length triples);
      ("SELECT DISTINCT ?x WHERE { ?x <http://t/p0> ?y . }", 5);
    ]
  in
  let rounds = 8 in
  let worker () =
    let ok = ref true in
    for _ = 1 to rounds do
      List.iter
        (fun (text, expected) ->
          let report = Sparql_uo.Session.run session text in
          if count report <> expected then ok := false)
        queries
    done;
    !ok
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let all_ok = List.for_all Domain.join domains in
  Alcotest.(check bool) "every concurrent run returned the right count" true
    all_ok;
  let total = 4 * rounds * List.length queries in
  Alcotest.(check int) "every run is accounted as a hit or a miss" total
    (Sparql_uo.Session.hits session + Sparql_uo.Session.misses session);
  Alcotest.(check int) "one plan per query" (List.length queries)
    (Sparql_uo.Session.misses session)

(* --- Transactions ---------------------------------------------------------- *)

let test_txn_commit_abort () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1 ]) in
  let text = "SELECT * WHERE { ?x <http://t/p0> ?y . }" in
  let fresh = Rdf.Triple.make (Qgen.iri 7) (Qgen.pred 0) (Qgen.iri 8) in
  (* Buffered writes are invisible until commit. *)
  let txn = Sparql_uo.Session.begin_txn session in
  Rdf_store.Mvcc.insert txn fresh;
  Alcotest.(check int) "uncommitted write invisible" 1
    (count (Sparql_uo.Session.run session text));
  Sparql_uo.Session.commit session txn;
  Alcotest.(check int) "committed write visible" 2
    (count (Sparql_uo.Session.run session text));
  (* An aborted transaction leaves no trace. *)
  let txn = Sparql_uo.Session.begin_txn session in
  Rdf_store.Mvcc.delete txn fresh;
  Sparql_uo.Session.abort session txn;
  Alcotest.(check int) "aborted delete invisible" 2
    (count (Sparql_uo.Session.run session text));
  (match Rdf_store.Mvcc.insert txn fresh with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "write on a closed transaction must be rejected");
  (* A reader pinned before a commit keeps its exact view. *)
  let pinned = Sparql_uo.Session.snapshot session in
  let size_before = Rdf_store.Snapshot.size pinned in
  Sparql_uo.Update_exec.run_session session
    "DELETE DATA { <http://t/e7> <http://t/p0> <http://t/e8> . }";
  Alcotest.(check int) "pinned snapshot unchanged" size_before
    (Rdf_store.Snapshot.size pinned);
  Alcotest.(check int) "new snapshot sees the delete" (size_before - 1)
    (Rdf_store.Snapshot.size (Sparql_uo.Session.snapshot session))

(* An update's WHERE clause runs through the session plan cache: the
   same update shape twice must re-plan only once. *)
let test_update_where_uses_cache () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1; triple 1 2 ]) in
  let update =
    "INSERT { ?y <http://t/rev> ?x . } WHERE { ?x <http://t/p0> ?y . }"
  in
  Sparql_uo.Update_exec.run_session session update;
  Alcotest.(check int) "first WHERE misses" 1 (Sparql_uo.Session.misses session);
  Alcotest.(check int) "no hit yet" 0 (Sparql_uo.Session.hits session);
  Sparql_uo.Update_exec.run_session session update;
  Alcotest.(check int) "second WHERE hits the cached plan" 1
    (Sparql_uo.Session.hits session);
  Alcotest.(check int) "still one miss" 1 (Sparql_uo.Session.misses session);
  (* And the update actually applied twice over current state: 2 rev
     triples from the first pass; the second pass re-inserts the same 2
     (set semantics: still 2). *)
  let r =
    Sparql_uo.Session.run session
      "SELECT * WHERE { ?a <http://t/rev> ?b . }"
  in
  Alcotest.(check int) "update applied" 2 (count r)

(* --- Snapshot isolation (property) ----------------------------------------- *)

(* The tentpole invariant: a reader holding a pre-commit snapshot sees
   exactly the pre-commit bag, a post-commit reader exactly the
   post-commit bag, never a blend — across mode x engine x domains
   {1,4}, and even after the delta is compacted away underneath the
   pinned readers. Oracles evaluate over plain stores sharing the
   session's dictionary, so bags are comparable id-for-id. *)
let prop_snapshot_isolation =
  QCheck2.Test.make
    ~name:"snapshot isolation: pre/post-commit bags, never a blend" ~count:15
    ~print:(fun ((base, changes), query) ->
      Qgen.pp_dataset base ^ "---\n" ^ Qgen.pp_dataset changes ^ "\n"
      ^ Qgen.pp_query query)
    QCheck2.Gen.(pair (pair Qgen.gen_dataset Qgen.gen_dataset) Qgen.gen_query)
    (fun ((base, changes), query) ->
      let store = store_of base in
      let session = Sparql_uo.Session.create store in
      let snap_before = Sparql_uo.Session.snapshot session in
      let pre_expected, _ = Qgen.oracle store query in
      (* Inserts from the change set (overlapping the small term universe,
         so duplicates of base triples occur); deletes mix real base rows
         with no-op deletes of absent triples. *)
      let inserts = List.filteri (fun i _ -> i mod 2 = 0) changes in
      let deletes =
        List.filteri (fun i _ -> i mod 2 = 0) base
        @ List.filteri (fun i _ -> i mod 2 = 1) changes
      in
      let txn = Sparql_uo.Session.begin_txn session in
      List.iter (Rdf_store.Mvcc.insert txn) inserts;
      List.iter (Rdf_store.Mvcc.delete txn) deletes;
      Sparql_uo.Session.commit session txn;
      let snap_after = Sparql_uo.Session.snapshot session in
      (* Fold the delta away: both pinned snapshots must be unaffected. *)
      Sparql_uo.Session.compact session;
      (* The compacted base shares the dictionary, so it doubles as the
         post-commit oracle store. *)
      let post_expected, _ = Qgen.oracle (Sparql_uo.Session.store session) query in
      let eval snap mode engine domains =
        let p = Sparql_uo.Prepared.prepare_snapshot ~mode ~engine snap query in
        (Sparql_uo.Prepared.execute ~domains p).Sparql_uo.Prepared.bag
      in
      List.for_all
        (fun mode ->
          List.for_all
            (fun engine ->
              List.for_all
                (fun domains ->
                  (match eval snap_before mode engine domains with
                  | Some bag -> Sparql.Bag.equal_as_bags bag pre_expected
                  | None -> false)
                  &&
                  match eval snap_after mode engine domains with
                  | Some bag -> Sparql.Bag.equal_as_bags bag post_expected
                  | None -> false)
                [ 1; 4 ])
            [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])
        Sparql_uo.Executor.all_modes)

(* --- Retry backoff -------------------------------------------------------- *)

(* The delay schedule is pure state: same seed, same sequence. *)
let test_backoff_deterministic () =
  let draw seed n =
    let b = Sparql_uo.Session.backoff ~seed ~sleep:(fun _ -> ()) () in
    List.init n (fun _ -> Sparql_uo.Session.backoff_delay b)
  in
  Alcotest.(check (list (float 0.0)))
    "same seed, same delays" (draw 7 20) (draw 7 20);
  Alcotest.(check bool) "different seeds diverge" true
    (draw 7 20 <> draw 8 20)

(* Decorrelated jitter stays within [base, cap] and ramps up from the
   base: the first delay is at most 3x base. *)
let test_backoff_bounds () =
  let base_ms = 2.0 and cap_ms = 40.0 in
  List.iter
    (fun seed ->
      let b =
        Sparql_uo.Session.backoff ~base_ms ~cap_ms ~seed
          ~sleep:(fun _ -> ())
          ()
      in
      let first = Sparql_uo.Session.backoff_delay b in
      Alcotest.(check bool) "first delay within [base, 3*base]" true
        (first >= base_ms && first <= 3.0 *. base_ms);
      for _ = 1 to 50 do
        let d = Sparql_uo.Session.backoff_delay b in
        Alcotest.(check bool) "delay within [base, cap]" true
          (d >= base_ms && d <= cap_ms)
      done)
    [ 1; 2; 3; 42; 1337 ]

(* A transient-failure retry actually draws from the schedule: one
   one-shot injected fault forces exactly one retry, so the captured
   sleep fires exactly once, with an in-range delay. *)
let test_retry_sleeps_with_backoff () =
  let session = Sparql_uo.Session.create (store_of [ triple 0 1 ]) in
  let slept = ref [] in
  let backoff =
    Sparql_uo.Session.backoff ~base_ms:1.0 ~cap_ms:50.0 ~seed:5
      ~sleep:(fun ms -> slept := ms :: !slept)
      ()
  in
  let faults = [ Sparql_uo.Governor.fault ~site:"scan" ~after:1 ] in
  let report =
    Sparql_uo.Session.run ~retries:2 ~faults ~backoff session
      "SELECT * WHERE { ?x <http://t/p0> ?y . }"
  in
  Alcotest.(check int) "retry succeeded after the one-shot fault" 1
    (count report);
  Alcotest.(check int) "exactly one backoff sleep" 1 (List.length !slept);
  List.iter
    (fun ms ->
      Alcotest.(check bool) "slept an in-range delay" true
        (ms >= 1.0 && ms <= 50.0))
    !slept

let () =
  Alcotest.run "session"
    [
      ( "prepared",
        [ QCheck_alcotest.to_alcotest prop_prepared_reexecution_stable ] );
      ( "invalidation",
        [
          Alcotest.test_case "updates keep the cache warm" `Quick
            test_update_keeps_cache_warm;
          Alcotest.test_case "compaction invalidates plans" `Quick
            test_compaction_invalidates_plans;
          Alcotest.test_case "update refreshes stats" `Quick
            test_update_refreshes_stats;
          Alcotest.test_case "VALUES interning keeps the cache" `Quick
            test_values_interning_keeps_cache;
          Alcotest.test_case "concurrent interning" `Quick
            test_concurrent_interning;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit/abort visibility" `Quick
            test_txn_commit_abort;
          Alcotest.test_case "update WHERE uses the plan cache" `Quick
            test_update_where_uses_cache;
          QCheck_alcotest.to_alcotest prop_snapshot_isolation;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "capacity validation" `Quick
            test_capacity_validation;
          Alcotest.test_case "key includes mode and engine" `Quick
            test_cache_key_includes_mode_engine;
        ] );
      ( "explain",
        [
          Alcotest.test_case "cache and epoch provenance" `Quick
            test_explain_reports_cache_and_epoch;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "4-domain shared session" `Quick
            test_concurrent_session_runs;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic under a seed" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "delays within [base, cap]" `Quick
            test_backoff_bounds;
          Alcotest.test_case "retries sleep through the schedule" `Quick
            test_retry_sleeps_with_backoff;
        ] );
    ]
