(* Shared qcheck generators for the engine/core/LBR property tests: random
   small RDF datasets and random SPARQL-UO queries over their vocabulary,
   plus the Definition-7 oracle to compare engines against. *)

module TP = Sparql.Triple_pattern

let iri i = Rdf.Term.iri (Printf.sprintf "http://t/e%d" i)
let pred i = Rdf.Term.iri (Printf.sprintf "http://t/p%d" i)

(* Datasets draw subjects/objects from a small universe so random patterns
   actually join. *)
let gen_dataset =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (map3
         (fun s p o -> Rdf.Triple.make (iri s) (pred p) (iri o))
         (int_range 0 5) (int_range 0 2) (int_range 0 5)))

let var_names = [| "a"; "b"; "c"; "d" |]

let gen_node =
  QCheck2.Gen.(
    frequency
      [
        (3, map (fun i -> TP.Var var_names.(i)) (int_range 0 3));
        (2, map (fun i -> TP.Term (iri i)) (int_range 0 5));
      ])

let gen_pred_node =
  QCheck2.Gen.(
    frequency
      [
        (1, map (fun i -> TP.Var var_names.(i)) (int_range 0 3));
        (5, map (fun i -> TP.Term (pred i)) (int_range 0 2));
      ])

let gen_triple_pattern =
  QCheck2.Gen.(
    map3 (fun s p o -> TP.make s p o) gen_node gen_pred_node gen_node)

let gen_triples_block =
  QCheck2.Gen.(
    map (fun tps -> Sparql.Ast.Triples tps)
      (list_size (int_range 1 3) gen_triple_pattern))

(* FILTER expressions over the same vocabulary: Bound, (in)equality and
   EXISTS cover the evaluator's group-filter paths. *)
let gen_filter =
  QCheck2.Gen.(
    map
      (fun (kind, v, w, i) ->
        let var = Sparql.Expr.Var var_names.(v) in
        let other =
          if w < 4 then Sparql.Expr.Var var_names.(w)
          else Sparql.Expr.Const (iri i)
        in
        let expr =
          match kind with
          | 0 -> Sparql.Expr.Cmp (Sparql.Expr.Ceq, var, other)
          | 1 -> Sparql.Expr.Cmp (Sparql.Expr.Cneq, var, other)
          | 2 -> Sparql.Expr.Bound var_names.(v)
          | 3 -> Sparql.Expr.Not (Sparql.Expr.Bound var_names.(v))
          | 4 ->
              Sparql.Expr.Exists
                [ Sparql.Ast.Triples
                    [ Sparql.Triple_pattern.make
                        (Sparql.Triple_pattern.Var var_names.(v))
                        (Sparql.Triple_pattern.Term (pred (i mod 3)))
                        (Sparql.Triple_pattern.Var var_names.(w mod 4)) ] ]
          | _ ->
              Sparql.Expr.Not_exists
                [ Sparql.Ast.Triples
                    [ Sparql.Triple_pattern.make
                        (Sparql.Triple_pattern.Var var_names.(v))
                        (Sparql.Triple_pattern.Term (pred (i mod 3)))
                        (Sparql.Triple_pattern.Term (iri i)) ] ]
        in
        Sparql.Ast.Filter expr)
      (quad (int_range 0 5) (int_range 0 3) (int_range 0 5) (int_range 0 5)))

(* VALUES blocks over the shared vocabulary (with occasional UNDEF). *)
let gen_values =
  QCheck2.Gen.(
    map
      (fun (v1, v2, cells) ->
        let vars =
          if v1 = v2 then [ var_names.(v1) ]
          else [ var_names.(v1); var_names.(v2) ]
        in
        let arity = List.length vars in
        let rec rows cells acc =
          match cells with
          | a :: b :: rest when arity = 2 ->
              rows rest ((a :: [ b ]) :: acc)
          | a :: rest when arity = 1 -> rows rest ([ a ] :: acc)
          | _ -> acc
        in
        let cell i = if i > 5 then None else Some (iri i) in
        let rows = rows (List.map cell cells) [] in
        let rows = if rows = [] then [ List.map (fun _ -> None) vars ] else rows in
        Sparql.Ast.Values { Sparql.Ast.vars; rows })
      (triple (int_range 0 3) (int_range 0 3)
         (list_size (int_range 2 6) (int_range 0 7))))

(* Random group graph patterns, with UNION / OPTIONAL / FILTER / nesting,
   bounded by a fuel parameter. *)
let rec gen_group fuel =
  let open QCheck2.Gen in
  if fuel <= 0 then map (fun b -> [ b ]) gen_triples_block
  else
    let element =
      frequency
        [
          (4, gen_triples_block);
          ( 2,
            map (fun g -> Sparql.Ast.Optional g) (gen_group (fuel - 1)) );
          ( 2,
            map2
              (fun g1 g2 -> Sparql.Ast.Union [ g1; g2 ])
              (gen_group (fuel - 1))
              (gen_group (fuel - 1)) );
          (1, map (fun g -> Sparql.Ast.Group g) (gen_group (fuel - 1)));
          (1, map (fun g -> Sparql.Ast.Minus g) (gen_group (fuel - 1)));
          (1, gen_filter);
          (1, gen_values);
        ]
    in
    list_size (int_range 1 3) element

let gen_query =
  QCheck2.Gen.(
    map
      (fun g ->
        {
          Sparql.Ast.env = Rdf.Namespace.with_defaults ();
          form = Sparql.Ast.Select Sparql.Ast.Star;
          distinct = false;
          where = g;
          group_by = [];
          having = None;
          order_by = [];
          limit = None;
          offset = None;
        })
      (gen_group 2))

(* [gen_query] plus random solution modifiers (DISTINCT, projection,
   ORDER BY, LIMIT/OFFSET). LIMIT/OFFSET are generated only together with
   an ORDER BY over *all* four variables: under a full-key stable sort,
   rows tied on every key are identical, so the selected window is unique
   as a bag no matter what order the producers emitted rows in (parallel
   UNION branches, streaming vs. materializing) — without it, LIMIT over
   an unordered bag is legitimately nondeterministic and untestable. *)
let gen_modified_query =
  QCheck2.Gen.(
    let* q = gen_query in
    let* distinct = bool in
    let* proj_k = int_range 0 4 in
    let* descs = quad bool bool bool bool in
    let* has_order = bool in
    let* limit = option (int_range 0 6) in
    let* offset = option (int_range 0 4) in
    let form =
      if proj_k = 0 then Sparql.Ast.Select Sparql.Ast.Star
      else
        Sparql.Ast.Select
          (Sparql.Ast.Projection
             (Array.to_list (Array.sub var_names 0 proj_k)))
    in
    let restrict = limit <> None || offset <> None in
    let order_by =
      if has_order || restrict then
        let d0, d1, d2, d3 = descs in
        List.combine (Array.to_list var_names) [ d0; d1; d2; d3 ]
      else []
    in
    let limit, offset = if restrict then (limit, offset) else (None, None) in
    return { q with Sparql.Ast.form; distinct; order_by; limit; offset })

(* AND/OPTIONAL-only groups in LBR's normalized shape (triples blocks and
   OPTIONAL children only — the well-designed fragment LBR targets). *)
let rec gen_wd_group fuel =
  let open QCheck2.Gen in
  if fuel <= 0 then map (fun b -> [ b ]) gen_triples_block
  else
    map2
      (fun block optionals -> block :: optionals)
      gen_triples_block
      (list_size (int_range 0 2)
         (map (fun g -> Sparql.Ast.Optional g) (gen_wd_group (fuel - 1))))

let gen_wd_query =
  QCheck2.Gen.(
    map
      (fun g ->
        {
          Sparql.Ast.env = Rdf.Namespace.with_defaults ();
          form = Sparql.Ast.Select Sparql.Ast.Star;
          distinct = false;
          where = g;
          group_by = [];
          having = None;
          order_by = [];
          limit = None;
          offset = None;
        })
      (gen_wd_group 2))

(* The execution configurations the prepare/execute properties sweep:
   every mode x engine x domain count {1,2,4} x modifier pipeline. *)
let exec_configs =
  List.concat_map
    (fun mode ->
      List.concat_map
        (fun engine ->
          List.concat_map
            (fun domains ->
              List.map
                (fun streaming -> (mode, engine, domains, streaming))
                [ true; false ])
            [ 1; 2; 4 ])
        [ Engine.Bgp_eval.Wco; Engine.Bgp_eval.Hash_join ])
    Sparql_uo.Executor.all_modes

(* The Definition 7 oracle. *)
let oracle store (query : Sparql.Ast.query) =
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  let env = Engine.Bgp_eval.make store vartable Engine.Bgp_eval.Hash_join in
  let bag, _ = Sparql_uo.Binary_eval.eval env (Sparql.Algebra.of_query query) in
  (bag, vartable)

let pp_query q = Sparql.Ast.to_string q

let pp_dataset triples =
  String.concat "" (List.map Rdf.Triple.to_ntriples triples)
