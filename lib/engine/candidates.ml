(* Candidate sets carry one of two physical representations, picked by
   density at construction time:

   - [Dense]: a bitset over the dictionary-id universe. Membership is one
     byte load plus a mask, and the multiway intersection kernel applies it
     to each probe without changing its asymptotics. Chosen whenever the
     bitset (universe/8 bytes) is no larger than the sorted array it
     replaces (8 bytes per element), or the universe is small enough that
     the bitset is trivially cheap.
   - [Sorted]: a strictly increasing int array. Sparse sets keep memory
     proportional to their cardinality, and the intersection kernel can
     consume them directly as an operand. *)

type set =
  | Dense of { bits : Bytes.t; universe : int; card : int }
  | Sorted of int array

type t = (int * set) list

(* Dense wins when universe/8 bytes <= card * 8 bytes, i.e. universe <=
   64 * card; tiny universes always take the bitset. *)
let dense_factor = 64
let small_universe = 1 lsl 16

let mem set id =
  match set with
  | Dense { bits; universe; _ } ->
      id >= 0 && id < universe
      && Char.code (Bytes.unsafe_get bits (id lsr 3)) land (1 lsl (id land 7))
         <> 0
  | Sorted arr ->
      let lo = ref 0 and hi = ref (Array.length arr) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if arr.(mid) < id then lo := mid + 1 else hi := mid
      done;
      !lo < Array.length arr && arr.(!lo) = id

let cardinal = function
  | Dense { card; _ } -> card
  | Sorted arr -> Array.length arr

let iter_values set ~f =
  match set with
  | Sorted arr -> Array.iter f arr
  | Dense { bits; universe; _ } ->
      for byte = 0 to Bytes.length bits - 1 do
        let b = Char.code (Bytes.get bits byte) in
        if b <> 0 then
          for bit = 0 to 7 do
            if b land (1 lsl bit) <> 0 then begin
              let id = (byte lsl 3) lor bit in
              if id < universe then f id
            end
          done
      done

let as_sorted = function
  | Sorted arr -> Some arr
  | Dense _ -> None

let of_hashtbl ~universe tbl =
  let card = Hashtbl.length tbl in
  if universe > 0 && (universe <= dense_factor * card || universe <= small_universe)
  then begin
    let bits = Bytes.make ((universe + 7) lsr 3) '\000' in
    Hashtbl.iter
      (fun id () ->
        if id >= 0 && id < universe then
          Bytes.set bits (id lsr 3)
            (Char.chr
               (Char.code (Bytes.get bits (id lsr 3)) lor (1 lsl (id land 7)))))
      tbl;
    Dense { bits; universe; card }
  end
  else begin
    let arr = Array.make card 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun id () ->
        arr.(!i) <- id;
        incr i)
      tbl;
    Array.sort Int.compare arr;
    Sorted arr
  end

let of_sorted_array arr = Sorted arr

(* Build a candidate set straight from an index view — the sorted,
   duplicate-free third column of a two-bound pattern, read sequentially
   off the compressed blocks. Same density rule as [of_hashtbl]. *)
let of_view ~universe view =
  let card = Rdf_store.Index.view_length view in
  if
    universe > 0
    && (universe <= dense_factor * card || universe <= small_universe)
  then begin
    let bits = Bytes.make ((universe + 7) lsr 3) '\000' in
    for i = 0 to card - 1 do
      let id = Rdf_store.Index.view_get view i in
      if id >= 0 && id < universe then
        Bytes.set bits (id lsr 3)
          (Char.chr
             (Char.code (Bytes.get bits (id lsr 3)) lor (1 lsl (id land 7))))
    done;
    Dense { bits; universe; card }
  end
  else Sorted (Array.init card (Rdf_store.Index.view_get view))

(* The LBR-style index-level prefilter: a compiled pattern with two bound
   positions names — via the store's sorted third-column view — the exact
   value set of its single variable, built straight off the compressed
   index blocks without materializing a row. [None] when the pattern does
   not have exactly two bound positions. Shared by the LBR baseline's
   prefilter pass and the adaptive executor. *)
let of_two_bound store (c : Compiled.t) =
  let universe = Rdf_store.Snapshot.dict_size store in
  let view s p o = Rdf_store.Snapshot.third_column_view store ?s ?p ?o () in
  match (c.Compiled.cs, c.Compiled.cp, c.Compiled.co) with
  | Compiled.Cvar col, Cterm p, Cterm o ->
      Some (col, of_view ~universe (view None (Some p) (Some o)))
  | Cterm s, Cvar col, Cterm o ->
      Some (col, of_view ~universe (view (Some s) None (Some o)))
  | Cterm s, Cterm p, Cvar col ->
      Some (col, of_view ~universe (view (Some s) (Some p) None))
  | _ -> None

(* Membership-test telemetry for prefilter hit rates: [checks] counts
   candidate-set consultations during scans, [rejects] the rows filtered
   out. Plain (racy) counters: under parallel domains an increment may be
   lost, which telemetry tolerates; serial runs are exact. *)
let checks = ref 0
let rejects = ref 0

type counters = { checks : int; rejects : int }

let reset_counters () =
  checks := 0;
  rejects := 0

let read_counters () = { checks = !checks; rejects = !rejects }

(* [noted_mem] is {!mem} plus counting — the membership test scans use. *)
let noted_mem set id =
  incr checks;
  let ok = mem set id in
  if not ok then incr rejects;
  ok

let empty = []

let set cands ~col s = (col, s) :: List.filter (fun (c, _) -> c <> col) cands

let find cands ~col = List.assoc_opt col cands

let allows cands ~col value =
  match List.assoc_opt col cands with
  | None -> true
  | Some s -> noted_mem s value

let is_empty = function [] -> true | _ :: _ -> false

let restrict cands ~cols = List.filter (fun (c, _) -> List.mem c cols) cands

let columns cands = List.map fst cands
