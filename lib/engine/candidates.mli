(** Candidate result sets for variables (Section 6): a map from variable
    column to the set of term ids the variable is allowed to take. BGP
    evaluators consult these to prune matches on the fly.

    A set is stored either as a dense bitset over dictionary ids (so
    {!allows} is one load plus a mask, and the multiway intersection kernel
    can fold the check into each probe) or as a strictly increasing sorted
    array (which the kernel consumes directly as an intersection operand).
    The representation is chosen by density at construction. *)

type set

type t

(** [of_hashtbl ~universe tbl] builds a set from the keys of [tbl].
    [universe] is the dictionary size (ids are dense in
    [0 .. universe-1]); the bitset representation is chosen when it is no
    larger than the equivalent sorted array, or the universe is small. *)
val of_hashtbl : universe:int -> (int, unit) Hashtbl.t -> set

(** [of_sorted_array arr] wraps a strictly increasing array without
    copying. The caller is responsible for sortedness. *)
val of_sorted_array : int array -> set

(** [of_view ~universe view] builds a set from an {!Rdf_store.Index.view}
    — the sorted, duplicate-free third column of a pattern with two
    bound positions, read sequentially off the compressed index blocks.
    Representation chosen by the same density rule as {!of_hashtbl}. *)
val of_view : universe:int -> Rdf_store.Index.view -> set

(** [of_two_bound store c] — the LBR-style index-level prefilter: for a
    compiled pattern with exactly two bound positions, the exact value
    set of its single variable column, built straight off the store's
    sorted third-column view. [None] otherwise. *)
val of_two_bound : Rdf_store.Snapshot.t -> Compiled.t -> (int * set) option

val cardinal : set -> int

(** [mem set id] — bitset: one load+mask; sorted array: binary search. *)
val mem : set -> int -> bool

(** [iter_values set ~f] applies [f] to every member, in increasing order. *)
val iter_values : set -> f:(int -> unit) -> unit

(** [as_sorted set] exposes the sorted-array payload when that is the
    representation ([None] for bitsets). Used by the intersection kernel to
    treat a sparse candidate set as just another sorted operand. *)
val as_sorted : set -> int array option

(** [noted_mem set id] — {!mem}, plus prefilter telemetry: bumps the
    global check counter, and the reject counter when the test fails.
    Scans use this (directly, or via {!allows}) so hit rates are
    observable. Counters are plain racy ints: exact in serial runs,
    approximate under parallel domains. *)
val noted_mem : set -> int -> bool

type counters = { checks : int; rejects : int }

val reset_counters : unit -> unit

val read_counters : unit -> counters

val empty : t

(** [set cands ~col s] returns candidates extended/overridden at [col]. *)
val set : t -> col:int -> set -> t

val find : t -> col:int -> set option

(** [allows cands ~col value] is false only when [col] has a candidate set
    that does not contain [value]. *)
val allows : t -> col:int -> int -> bool

val is_empty : t -> bool

(** [restrict cands ~cols] drops candidate sets for columns outside
    [cols]. Used when crossing an OPTIONAL boundary: only columns
    universally bound by the OPTIONAL-left side may prune its right side
    (pruning any other column could turn an extension into a spuriously
    surviving unextended row). *)
val restrict : t -> cols:int list -> t

(** [columns cands] — the columns carrying a candidate set. *)
val columns : t -> int list
