(** Jena-style BGP evaluation: each triple pattern is scanned into a bag of
    mappings (pruned by candidate sets), and the bags are combined left-deep
    in the planner's order with binary hash joins (Eq. 9's cost model). *)

val eval :
  Rdf_store.Snapshot.t ->
  width:int ->
  Planner.plan ->
  candidates:Candidates.t ->
  Sparql.Bag.t

(** [eval_into] is [eval] with the final join streamed: the joins over all
    patterns but the last materialize as usual and become the build side;
    the last pattern's scan then probes row-at-a-time, emitting merged rows
    into [sink], so a downstream LIMIT can short-circuit the scan via
    [Sink.Stop]. With [?pool] (and more than one domain), a large probe
    side is materialized and morselized across the pool: every agent
    probes the read-only build partition concurrently into its own shard
    of the sink, and a [Stop] in any shard stops the other domains at
    their next morsel boundary. *)
val eval_into :
  ?pool:Pool.t ->
  Rdf_store.Snapshot.t ->
  width:int ->
  Planner.plan ->
  candidates:Candidates.t ->
  sink:Sparql.Sink.t ->
  unit

(** [scan_pattern store ~width pattern ~candidates] materializes the
    matches of a single triple pattern as a bag (exposed for LBR, which
    evaluates triple patterns separately). *)
val scan_pattern :
  Rdf_store.Snapshot.t ->
  width:int ->
  Compiled.t ->
  candidates:Candidates.t ->
  Sparql.Bag.t
