(* A morsel-driven work-stealing scheduler on stdlib [Domain] (no
   domainslib). A parallel operation is a *job*: its index range is cut
   into small fixed-size morsels, distributed as contiguous blocks over
   per-slot deques (one deque per domain, seeded front-to-back so the
   owner walks its block in range order). Each agent — worker domains and
   the submitting domain alike — pops from the front of its own deque and
   steals from the backs of the others when it runs dry, so load imbalance
   self-corrects at morsel granularity.

   Cross-domain control rides on the job: an atomic [stop] flag is checked
   at every morsel boundary, so a [Sink.Stop] (satisfied LIMIT) or a
   [Governor.Kill] raised inside one morsel parks every other domain
   within one morsel of work — streaming early termination and
   cancellation genuinely cross domains. The submitting domain's governor
   ticket travels with the job and is re-installed around every morsel,
   stolen or not, so all production charges the same per-query budget.

   Nested parallel calls (a Bag.join inside a parallel UNION branch) do
   not degrade to serial: the nested submitter seeds its own job into the
   shared scheduler, helps execute that job's morsels itself, and waits
   only for morsels in flight on other agents — no agent ever blocks
   holding work its own job needs, so there is no deadlock. Idle pool
   workers pick up morsels of any active job, giving nested jobs real
   parallelism. *)

(* {1 Morsel size} *)

let default_morsel_size = 64
let morsel_size_atomic = Atomic.make default_morsel_size

let set_morsel_size n =
  if n < 1 then invalid_arg "Pool.set_morsel_size: size must be >= 1";
  Atomic.set morsel_size_atomic n

let morsel_size () = Atomic.get morsel_size_atomic

(* {1 Scheduler counters}

   Process-global observability for the bench harness: morsels executed,
   successful steals (a morsel claimed from another slot's deque), and
   jobs stopped early by a cross-domain [Stop]. *)

type counters = { morsels : int; steals : int; stops : int }

let morsels_counter = Atomic.make 0
let steals_counter = Atomic.make 0
let stops_counter = Atomic.make 0

let counters () =
  {
    morsels = Atomic.get morsels_counter;
    steals = Atomic.get steals_counter;
    stops = Atomic.get stops_counter;
  }

let reset_counters () =
  Atomic.set morsels_counter 0;
  Atomic.set steals_counter 0;
  Atomic.set stops_counter 0

(* {1 Agent identities}

   Every domain that ever participates (pool workers, the main domain,
   any nested submitter) gets a small process-unique id on first use;
   jobs key per-agent state (accumulators, shard sinks, scratch) on it,
   and [id mod num_slots] picks the agent's own deque. *)

let agent_counter = Atomic.make 0

let agent_key : int Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Atomic.fetch_and_add agent_counter 1)

let agent_id () = Domain.DLS.get agent_key

(* {1 Morsel deques}

   Seeded once before the job is published, then popped concurrently:
   front by the owner, back by thieves. A plain mutex suffices — the
   critical section is an index comparison and one array read. *)

module Deque = struct
  type t = {
    items : (int * int) array;  (* (lo, hi) index ranges *)
    mutable head : int;
    mutable tail : int;  (* exclusive *)
    lock : Mutex.t;
  }

  let of_ranges ranges =
    let items = Array.of_list ranges in
    { items; head = 0; tail = Array.length items; lock = Mutex.create () }

  let pop_front d =
    Mutex.lock d.lock;
    let m =
      if d.head < d.tail then begin
        let m = d.items.(d.head) in
        d.head <- d.head + 1;
        Some m
      end
      else None
    in
    Mutex.unlock d.lock;
    m

  let pop_back d =
    Mutex.lock d.lock;
    let m =
      if d.head < d.tail then begin
        d.tail <- d.tail - 1;
        Some d.items.(d.tail)
      end
      else None
    in
    Mutex.unlock d.lock;
    m
end

(* {1 Jobs} *)

type job = {
  exec : agent:int -> lo:int -> hi:int -> unit;
      (* Runs indices [lo, hi) under [agent]'s private state; the
         accumulator/shard plumbing is closed over by the submitter. *)
  gov : Sparql.Governor.t;
  deques : Deque.t array;
  pending : int Atomic.t;  (* morsels not yet finished (queued or running) *)
  stop : bool Atomic.t;
  stopped_early : bool Atomic.t;  (* [stop] was a Sink.Stop, not a failure *)
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  num_domains : int;
  mutex : Mutex.t;  (* guards [active], [version], [stopped]; pairs with [wake] *)
  wake : Condition.t;
  mutable active : job list;
  mutable version : int;  (* bumped on submission: workers' lost-wakeup guard *)
  mutable workers : unit Domain.t list;
  mutable stopped : bool;
}

let num_domains pool = pool.num_domains

(* About four steal targets per slot over a range of [n] indices, clamped
   so tiny ranges still spread and huge ranges amortize deque traffic. *)
let adaptive_morsel pool ~n =
  max 16 (min (morsel_size ()) (n / max 1 (4 * pool.num_domains)))

(* Claim a morsel of [job] for [agent]: own deque front first, then sweep
   the other deques back-to-front. Returns the range and whether it was
   stolen. *)
let claim job ~agent =
  let slots = Array.length job.deques in
  let own = agent mod slots in
  match Deque.pop_front job.deques.(own) with
  | Some m -> Some (m, false)
  | None ->
      let rec sweep k =
        if k >= slots then None
        else
          match Deque.pop_back job.deques.((own + k) mod slots) with
          | Some m -> Some (m, true)
          | None -> sweep (k + 1)
      in
      sweep 1

(* Execute one claimed morsel. The job's ticket is installed for the
   duration (stolen morsels charge the submitter's budget) and
   budget-independent kill conditions (cancellation, deadline) are
   checked at the boundary, so kill latency is bounded by one morsel of
   work even on domains that produce no rows. A stopped job's remaining
   morsels fall through to the completion accounting untouched. *)
let run_morsel pool job ~agent ~stolen (lo, hi) =
  if stolen then Atomic.incr steals_counter;
  Atomic.incr morsels_counter;
  (if not (Atomic.get job.stop) then
     try
       Sparql.Governor.with_ticket job.gov (fun () ->
           Sparql.Governor.tick job.gov;
           job.exec ~agent ~lo ~hi)
     with
     | Sparql.Sink.Stop ->
         Atomic.set job.stopped_early true;
         Atomic.set job.stop true;
         Atomic.incr stops_counter
     | exn ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set job.failure None (Some (exn, bt)));
         Atomic.set job.stop true);
  if Atomic.fetch_and_add job.pending (-1) = 1 then begin
    (* Last morsel: retire the job and wake its submitter. *)
    Mutex.lock pool.mutex;
    pool.active <- List.filter (fun j -> j != job) pool.active;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex
  end

(* The pool workers' loop: claim a morsel of any active job; when none is
   claimable, sleep until a submission bumps [version] (completion
   broadcasts also wake us, harmlessly). *)
let worker_loop pool =
  let agent = agent_id () in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    if pool.stopped then begin
      running := false;
      Mutex.unlock pool.mutex
    end
    else begin
      let v = pool.version in
      let jobs = pool.active in
      Mutex.unlock pool.mutex;
      let rec try_jobs = function
        | [] -> None
        | job :: rest -> (
            match claim job ~agent with
            | Some (m, stolen) -> Some (job, m, stolen)
            | None -> try_jobs rest)
      in
      match try_jobs jobs with
      | Some (job, m, stolen) -> run_morsel pool job ~agent ~stolen m
      | None ->
          Mutex.lock pool.mutex;
          if (not pool.stopped) && pool.version = v then
            Condition.wait pool.wake pool.mutex;
          Mutex.unlock pool.mutex
    end
  done

let create ~num_domains =
  let num_domains = max 1 num_domains in
  let pool =
    {
      num_domains;
      mutex = Mutex.create ();
      wake = Condition.create ();
      active = [];
      version = 0;
      workers = [];
      stopped = false;
    }
  in
  pool.workers <-
    List.init (num_domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopped <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* Seed one deque per slot with a contiguous block of the range, each
   block cut into [morsel]-sized ranges. Returns the deques and the total
   morsel count. *)
let seed_deques ~slots ~lo ~hi ~morsel =
  let n = hi - lo in
  let block = (n + slots - 1) / slots in
  let total = ref 0 in
  let deques =
    Array.init slots (fun s ->
        let b_lo = min hi (lo + (s * block)) in
        let b_hi = min hi (b_lo + block) in
        let rec cut acc m_lo =
          if m_lo >= b_hi then List.rev acc
          else
            let m_hi = min b_hi (m_lo + morsel) in
            cut ((m_lo, m_hi) :: acc) m_hi
        in
        let ranges = cut [] b_lo in
        total := !total + List.length ranges;
        Deque.of_ranges ranges)
  in
  (deques, !total)

(* Submit a job and participate until it completes: claim our own job's
   morsels while any are queued, then wait for the in-flight remainder.
   The submitter may itself be a pool worker executing a morsel of an
   outer job (nested parallelism) — it helps rather than blocks, and the
   morsels it cannot claim are by definition running on other agents, so
   the wait is deadlock-free. *)
let submit_and_wait pool ~lo ~hi ~morsel ~exec =
  let gov = Sparql.Governor.current () in
  let deques, total = seed_deques ~slots:pool.num_domains ~lo ~hi ~morsel in
  let job =
    {
      exec;
      gov;
      deques;
      pending = Atomic.make total;
      stop = Atomic.make false;
      stopped_early = Atomic.make false;
      failure = Atomic.make None;
    }
  in
  if total > 0 then begin
    Mutex.lock pool.mutex;
    pool.active <- pool.active @ [ job ];
    pool.version <- pool.version + 1;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    let agent = agent_id () in
    let helping = ref true in
    while !helping do
      match claim job ~agent with
      | Some (m, stolen) -> run_morsel pool job ~agent ~stolen m
      | None ->
          Mutex.lock pool.mutex;
          while Atomic.get job.pending > 0 do
            Condition.wait pool.wake pool.mutex
          done;
          Mutex.unlock pool.mutex;
          helping := false
    done
  end;
  job

(* Re-raise a worker failure (with its backtrace) in the submitter. *)
let check_failure job =
  match Atomic.get job.failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

(* Lazily-created per-agent state for one job, built serially under a
   job-local lock (an agent first touches its state at most once per job,
   and morsel bodies hold no other locks, so the critical section cannot
   deadlock). *)
let per_agent create =
  let lock = Mutex.create () in
  let table = ref [] in
  let get agent =
    Mutex.lock lock;
    match List.assoc_opt agent !table with
    | Some v ->
        Mutex.unlock lock;
        v
    | None ->
        let v = create () in
        table := (agent, v) :: !table;
        Mutex.unlock lock;
        v
  in
  let all () = List.rev_map snd !table in
  (get, all)

(* [accumulate pool ~lo ~hi ~create ~body] runs [body acc i] for every
   [lo <= i < hi], where each participating agent folds into its own
   accumulator from [create]; returns every accumulator. Serial when the
   pool is size 1 (nested calls no longer degrade — they seed their own
   job into the shared scheduler). *)
let accumulate pool ?morsel ~lo ~hi ~create ~body () =
  let n = hi - lo in
  if n <= 0 then []
  else if pool.num_domains <= 1 then begin
    let acc = create () in
    for i = lo to hi - 1 do
      body acc i
    done;
    [ acc ]
  end
  else begin
    let morsel = match morsel with Some m -> max 1 m | None -> morsel_size () in
    let acc_for, all_accs = per_agent create in
    let exec ~agent ~lo ~hi =
      let acc = acc_for agent in
      for i = lo to hi - 1 do
        body acc i
      done
    in
    let job = submit_and_wait pool ~lo ~hi ~morsel ~exec in
    check_failure job;
    if Atomic.get job.stopped_early then raise Sparql.Sink.Stop;
    all_accs ()
  end

let parallel_iter pool ?morsel ~lo ~hi f =
  ignore
    (accumulate pool ?morsel ~lo ~hi
       ~create:(fun () -> ())
       ~body:(fun () i -> f i)
       ())

let parallel_map pool ?morsel ~lo ~hi f =
  let n = max 0 (hi - lo) in
  let results = Array.make n None in
  parallel_iter pool ?morsel ~lo ~hi (fun i -> results.(i - lo) <- Some (f i));
  (* Every slot was written exactly once (or an exception propagated). *)
  Array.map Option.get results

(* Streaming fan-out: [body local shard i] emits the rows of index [i]
   into [shard], the calling agent's private shard of [sink] (see
   [Sink.fork]); [local] is the agent's scratch state. After the job
   quiesces the shards drain serially into the pipeline; a [Stop] —
   whether raised by a worker's shard mid-job or by the serial pipeline
   during the drain — re-raises here, so callers observe exactly the
   serial early-termination protocol. With an unforkable sink (custom
   terminal) or a size-1 pool the loop runs serially over [sink] itself,
   with the same per-morsel governor tick. *)
let stream pool ?morsel ~lo ~hi ~sink ~local ~body () =
  let n = hi - lo in
  if n <= 0 then ()
  else
    let morsel = match morsel with Some m -> max 1 m | None -> morsel_size () in
    let serial () =
      let gov = Sparql.Governor.current () in
      let scratch = local () in
      let i = ref lo in
      while !i < hi do
        let stop = min hi (!i + morsel) in
        Sparql.Governor.tick gov;
        while !i < stop do
          body scratch sink !i;
          incr i
        done
      done
    in
    if pool.num_domains <= 1 then serial ()
    else
      match Sparql.Sink.fork sink with
      | None -> serial ()
      | Some fork ->
          let state_for, _ = per_agent (fun () -> (local (), fork.Sparql.Sink.new_shard ())) in
          let exec ~agent ~lo ~hi =
            let scratch, shard = state_for agent in
            for i = lo to hi - 1 do
              body scratch shard i
            done
          in
          let job = submit_and_wait pool ~lo ~hi ~morsel ~exec in
          check_failure job;
          (* Merge what the shards retained into the serial pipeline;
             [drain] re-raises [Stop] if the pipeline stopped during the
             merge, and a worker-side stop re-raises regardless, so outer
             producers unwind exactly as in a serial early termination. *)
          fork.Sparql.Sink.drain ();
          if Atomic.get job.stopped_early then raise Sparql.Sink.Stop

(* ------------------------------------------------------------------ *)
(* The process-global pool behind the executor's [~domains] knob.      *)
(* ------------------------------------------------------------------ *)

let global_pool : t option ref = ref None
let global_mutex = Mutex.create ()

(* Grow-only: a pool at least as large as requested is reused as is.
   Shrinking used to shut the pool down and recreate it, which could tear
   the workers out from under a concurrent query on another domain; a
   larger-than-requested pool only costs idle domains, so growth (rare,
   and usually a process-start configuration step) is the only rebuild. *)
let ensure ~num_domains =
  let num_domains = max 1 num_domains in
  Mutex.lock global_mutex;
  (match !global_pool with
  | Some pool when pool.num_domains >= num_domains -> ()
  | previous ->
      if num_domains > 1 then begin
        Option.iter shutdown previous;
        global_pool := Some (create ~num_domains)
      end);
  Mutex.unlock global_mutex;
  !global_pool

let global () = !global_pool

(* Route [Sparql.Bag]'s probe-side morselization through the global pool.
   The executor enables this only while a [domains > 1] query runs, so
   library users and the tier-1 tests keep the serial operators (and
   their exact result order) by default. *)
let enable_bag_runner () =
  match !global_pool with
  | None -> Sparql.Bag.set_parallel_runner None
  | Some pool ->
      Sparql.Bag.set_parallel_runner
        (Some
           {
             Sparql.Bag.run =
               (fun ~n ~create ~body -> accumulate pool ~lo:0 ~hi:n ~create ~body ());
             run_stream =
               (fun ~n ~sink ~body ->
                 stream pool ~lo:0 ~hi:n ~sink
                   ~local:(fun () -> ())
                   ~body:(fun () shard i -> body shard i)
                   ());
           })

let disable_bag_runner () = Sparql.Bag.set_parallel_runner None

(* Hand the pool to the store layer as its bulk-load runner: index
   builds (six per-order sort/encode tasks, one morsel each) fan out
   across the same worker domains queries use. The store cannot depend
   on this library, hence the injection. *)
let install_bulk_runner pool =
  Rdf_store.Bulk.set_runner ~domains:(num_domains pool)
    (fun ~ntasks f -> parallel_iter pool ~morsel:1 ~lo:0 ~hi:ntasks f)
