(* A small fixed domain pool on stdlib [Domain] (no domainslib): worker
   domains block on a condition variable and drain a task queue; a parallel
   operation enqueues one drainer per worker, participates itself, and
   joins on a per-call completion latch. Chunks of the index range are
   claimed with an atomic cursor, so load imbalance between chunks
   self-corrects. *)

type t = {
  num_domains : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;
  (* Held for the duration of one parallel operation: a nested parallel
     call (e.g. a Bag.join inside a parallel UNION branch) fails the
     try-lock and falls back to serial instead of deadlocking on its own
     workers. *)
  busy : Mutex.t;
}

let worker_loop pool =
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stopped do
      Condition.wait pool.nonempty pool.mutex
    done;
    let task = Queue.take_opt pool.queue in
    Mutex.unlock pool.mutex;
    match task with
    | Some task -> task ()
    | None -> running := false (* stopped with an empty queue *)
  done

let create ~num_domains =
  let num_domains = max 1 num_domains in
  let pool =
    {
      num_domains;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      stopped = false;
      busy = Mutex.create ();
    }
  in
  pool.workers <-
    List.init (num_domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopped <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let num_domains pool = pool.num_domains

(* A chunk size giving each domain ~4 claims over a range of [n] indices,
   clamped so tiny ranges still spread across domains and huge ranges
   amortize cursor contention. *)
let adaptive_chunk pool ~n =
  max 16 (min 1024 (n / max 1 (4 * pool.num_domains)))

let default_chunk = 64

(* [accumulate pool ~lo ~hi ~create ~body] runs [body acc i] for every
   [lo <= i < hi], where each participating domain folds into its own
   accumulator from [create]; returns every accumulator. Falls back to one
   serial accumulator when the pool is size 1, the range is small, or a
   parallel operation is already in flight (nesting). The first exception
   raised by any worker stops the others at their next chunk boundary and
   is re-raised here with its backtrace. *)
let accumulate pool ?(chunk = default_chunk) ~lo ~hi ~create ~body () =
  let n = hi - lo in
  if n <= 0 then []
  else
    let serial () =
      let acc = create () in
      for i = lo to hi - 1 do
        body acc i
      done;
      [ acc ]
    in
    if pool.num_domains <= 1 || n <= chunk then serial ()
    else if not (Mutex.try_lock pool.busy) then serial ()
    else
      Fun.protect ~finally:(fun () -> Mutex.unlock pool.busy) @@ fun () ->
      let workers = pool.num_domains in
      let cursor = Atomic.make lo in
      let failure = Atomic.make None in
      let accs = Array.make workers None in
      (* The submitting domain's governor ticket, re-installed inside each
         worker: rows produced in parallel charge the same per-query
         budget as the serial path, and a budget/deadline/cancel kill in
         any worker parks the others at their next chunk boundary (the
         [failure] latch below), quiescing the pool before re-raise. *)
      let gov = Sparql.Governor.current () in
      let drain slot =
        Sparql.Governor.with_ticket gov @@ fun () ->
        let acc = create () in
        accs.(slot) <- Some acc;
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= hi || Atomic.get failure <> None then continue := false
          else
            let stop = min hi (start + chunk) in
            try
              for i = start to stop - 1 do
                body acc i
              done
            with exn ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (exn, bt)));
              continue := false
        done
      in
      (* Per-call completion latch. *)
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let remaining = ref (workers - 1) in
      let task slot () =
        drain slot;
        Mutex.lock done_mutex;
        decr remaining;
        if !remaining = 0 then Condition.signal done_cond;
        Mutex.unlock done_mutex
      in
      Mutex.lock pool.mutex;
      for slot = 1 to workers - 1 do
        Queue.add (task slot) pool.queue
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      drain 0;
      Mutex.lock done_mutex;
      while !remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      (match Atomic.get failure with
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ());
      List.filter_map Fun.id (Array.to_list accs)

let parallel_iter pool ?chunk ~lo ~hi f =
  ignore
    (accumulate pool ?chunk ~lo ~hi
       ~create:(fun () -> ())
       ~body:(fun () i -> f i)
       ())

let parallel_map pool ?chunk ~lo ~hi f =
  let n = max 0 (hi - lo) in
  let results = Array.make n None in
  parallel_iter pool ?chunk ~lo ~hi (fun i -> results.(i - lo) <- Some (f i));
  (* Every slot was written exactly once (or an exception propagated). *)
  Array.map Option.get results

(* ------------------------------------------------------------------ *)
(* The process-global pool behind the executor's [~domains] knob.      *)
(* ------------------------------------------------------------------ *)

let global_pool : t option ref = ref None
let global_mutex = Mutex.create ()

(* Grow-only: a pool at least as large as requested is reused as is.
   Shrinking used to shut the pool down and recreate it, which could tear
   the workers out from under a concurrent query on another domain; a
   larger-than-requested pool only costs idle domains, so growth (rare,
   and usually a process-start configuration step) is the only rebuild. *)
let ensure ~num_domains =
  let num_domains = max 1 num_domains in
  Mutex.lock global_mutex;
  (match !global_pool with
  | Some pool when pool.num_domains >= num_domains -> ()
  | previous ->
      if num_domains > 1 then begin
        Option.iter shutdown previous;
        global_pool := Some (create ~num_domains)
      end);
  Mutex.unlock global_mutex;
  !global_pool

let global () = !global_pool

(* Route [Sparql.Bag]'s probe-side chunking through the global pool. The
   executor enables this only while a [domains > 1] query runs, so library
   users and the tier-1 tests keep the serial operators (and their exact
   result order) by default. *)
let enable_bag_runner () =
  match !global_pool with
  | None -> Sparql.Bag.set_parallel_runner None
  | Some pool ->
      Sparql.Bag.set_parallel_runner
        (Some
           {
             Sparql.Bag.run =
               (fun ~n ~create ~body ->
                 accumulate pool ~lo:0 ~hi:n ~create ~body ());
           })

let disable_bag_runner () = Sparql.Bag.set_parallel_runner None
