type step = {
  pattern : Compiled.t;
  pattern_count : int;
  card_before : float;
  card_after : float;
  avg_edge : float;
}

type vstep = Scan of step | Extend of { col : int; steps : step list }

type plan = {
  steps : step list;
  vsteps : vstep list;
  result_card : float;
  cost_wco : float;
  cost_hash : float;
}

(* [single_extension bound p] is [Some col] when exactly one position of
   [p] holds a not-yet-bound variable (column [col]) and every other
   position is a constant or an already-bound variable — i.e. under any
   row, matching [p] reduces to enumerating the sorted third column of one
   index prefix. A pattern repeating the unbound variable does not
   qualify. *)
let single_extension bound (p : Compiled.t) =
  if Compiled.has_missing p then None
  else begin
    let unbound = ref [] in
    let check = function
      | Compiled.Cvar c when not (List.mem c bound) -> unbound := c :: !unbound
      | Compiled.Cvar _ | Compiled.Cterm _ | Compiled.Missing -> ()
    in
    check p.Compiled.cs;
    check p.Compiled.cp;
    check p.Compiled.co;
    match !unbound with [ c ] -> Some c | _ -> None
  end

(* Group the ordered steps vertex-at-a-time: a step that single-extends
   column [col] becomes the primary of an [Extend] and absorbs every later
   step that also single-extends [col] under the same bound set (star
   constants, and the pattern closing a triangle) — those patterns
   participate as extra intersection operands instead of post-hoc filters.
   Join commutativity makes pulling an absorbed step forward sound: it
   binds no column other than [col], and within one index prefix the
   deduplicated triple table makes the primary's third column
   duplicate-free, so multiplicities are preserved. Steps binding zero or
   two-plus new columns stay [Scan]s. *)
let group_steps steps =
  let rec go bound acc = function
    | [] -> List.rev acc
    | s :: rest -> (
        match single_extension bound s.pattern with
        | Some col ->
            let absorbed, remaining =
              List.partition
                (fun s' -> single_extension bound s'.pattern = Some col)
                rest
            in
            go (col :: bound)
              (Extend { col; steps = s :: absorbed } :: acc)
              remaining
        | None ->
            let bound =
              List.fold_left
                (fun b c -> if List.mem c b then b else c :: b)
                bound
                (Compiled.var_columns s.pattern)
            in
            go bound (Scan s :: acc) rest)
  in
  go [] [] steps

let sample_size = 32

(* Extend [row] with the bindings a matching (s, p, o) induces; [None] when
   a variable repeated within the pattern would bind inconsistently. *)
let bind_match pattern row ~s ~p ~o =
  let fresh = Array.copy row in
  let consistent = ref true in
  let bind node value =
    match node with
    | Compiled.Cvar col ->
        if fresh.(col) = Sparql.Binding.unbound then fresh.(col) <- value
        else if fresh.(col) <> value then consistent := false
    | Compiled.Cterm _ | Compiled.Missing -> ()
  in
  bind pattern.Compiled.cs s;
  bind pattern.Compiled.cp p;
  bind pattern.Compiled.co o;
  if !consistent then Some fresh else None

(* Matches of [pattern] under [row], sampled at most [limit], evenly
   spaced. Also returns the total match count. *)
let sample_matches store pattern row ~limit =
  let total = Compiled.count_with store pattern row in
  if total = 0 then (0, [])
  else begin
    let stride = max 1 (total / limit) in
    let collected = ref [] in
    let i = ref 0 in
    Compiled.iter_matches store pattern row ~f:(fun ~s ~p ~o ->
        (if !i mod stride = 0 && List.length !collected < limit then
           match bind_match pattern row ~s ~p ~o with
           | Some fresh -> collected := fresh :: !collected
           | None -> ());
        incr i);
    (total, List.rev !collected)
  end

(* True when the pattern shares a variable column with [bound]. *)
let connected bound pattern =
  List.exists (fun col -> List.mem col bound) (Compiled.var_columns pattern)

(* Pick the most selective pattern, preferring ones connected to the
   already-bound columns; returns (choice, rest). *)
let pick_next bound candidates =
  let better (c1, n1) (c2, n2) =
    let conn1 = connected bound c1 and conn2 = connected bound c2 in
    if conn1 <> conn2 then conn1 else n1 < n2
  in
  match candidates with
  | [] -> invalid_arg "Planner.pick_next: empty"
  | first :: rest ->
      let choice =
        List.fold_left (fun acc c -> if better c acc then c else acc) first rest
      in
      (choice, List.filter (fun (c, _) -> c != fst choice) candidates)

(* The gStore average_size term: with the predicate constant and an
   already-bound endpoint variable, the average number of edges per
   binding, from precomputed statistics; min over bound endpoints.
   [fallback] (the observed extension ratio) covers the other cases. *)
let avg_edge_of stats bound pattern ~fallback =
  match pattern.Compiled.cp with
  | Compiled.Cterm p -> (
      let pstats = Rdf_store.Stats.predicate stats ~p in
      let endpoint_avg node degree =
        match node with
        | Compiled.Cvar col when List.mem col bound -> Some degree
        | _ -> None
      in
      let candidates =
        List.filter_map Fun.id
          [
            endpoint_avg pattern.Compiled.cs pstats.Rdf_store.Stats.avg_out_degree;
            endpoint_avg pattern.Compiled.co pstats.Rdf_store.Stats.avg_in_degree;
          ]
      in
      match candidates with
      | [] -> fallback
      | first :: rest -> List.fold_left Float.min first rest)
  | Compiled.Cvar _ | Compiled.Missing -> fallback

let plan store stats table patterns =
  ignore table;
  match patterns with
  | [] ->
      { steps = []; vsteps = []; result_card = 1.; cost_wco = 0.; cost_hash = 0. }
  | _ ->
      let with_counts =
        List.map (fun p -> (p, Compiled.exact_count store p)) patterns
      in
      let width = Sparql.Vartable.size table in
      let rec loop bound candidates card sample steps cost_wco cost_hash =
        match candidates with
        | [] ->
            let steps = List.rev steps in
            {
              steps;
              vsteps = group_steps steps;
              result_card = card;
              cost_wco;
              cost_hash;
            }
        | _ ->
            let (pattern, pattern_count), rest = pick_next bound candidates in
            let is_first = steps = [] in
            if is_first then begin
              let empty = Sparql.Binding.create ~width in
              let _, sample = sample_matches store pattern empty ~limit:sample_size in
              let card_after = float_of_int pattern_count in
              let step =
                {
                  pattern;
                  pattern_count;
                  card_before = 1.;
                  card_after;
                  avg_edge = card_after;
                }
              in
              loop
                (Compiled.var_columns pattern @ bound)
                rest card_after sample (step :: steps)
                (cost_wco +. float_of_int pattern_count)
                (cost_hash +. float_of_int pattern_count)
            end
            else begin
              (* Extension estimate from the sample, per the paper. *)
              let extend_total, extended =
                List.fold_left
                  (fun (total, rows) row ->
                    let n, matches = sample_matches store pattern row ~limit:4 in
                    (total + n, List.rev_append matches rows))
                  (0, []) sample
              in
              let nsample = List.length sample in
              let ratio =
                if nsample = 0 then 0.
                else float_of_int extend_total /. float_of_int nsample
              in
              let card_after =
                if card = 0. then 0. else Float.max (ratio *. card) 1.
              in
              let avg_edge = avg_edge_of stats bound pattern ~fallback:(Float.max ratio 1.) in
              let step =
                { pattern; pattern_count; card_before = card; card_after; avg_edge }
              in
              (* WCO: scan avg_edge edges for each existing result tuple.
                 Hash: build on the smaller side, probe the larger (Eq. 9). *)
              let cost_wco = cost_wco +. (card *. avg_edge) in
              let pcount = float_of_int pattern_count in
              let cost_hash =
                cost_hash +. (2. *. Float.min card pcount) +. Float.max card pcount
              in
              (* Keep the sample bounded and evenly spread. *)
              let sample =
                let arr = Array.of_list extended in
                let n = Array.length arr in
                if n <= sample_size then extended
                else begin
                  let stride = n / sample_size in
                  List.init sample_size (fun i -> arr.(i * stride))
                end
              in
              loop
                (Compiled.var_columns pattern @ bound)
                rest card_after sample (step :: steps) cost_wco cost_hash
            end
      in
      loop [] with_counts 1. [] [] 0. 0.
