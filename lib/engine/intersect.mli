(** K-way sorted-set intersection with adaptive galloping — the kernel of
    the vertex-at-a-time WCO extension step.

    Operands are sorted duplicate-free ascending sequences (index column
    views or plain arrays). Per Aberger et al., "Old Techniques for New
    Join Algorithms", the kernel intersects smallest-first and switches
    between a linear merge and galloping (exponential probe + binary
    search) per pass, galloping only when the next operand is more than
    {!gallop_ratio} times larger than the running result. *)

type src =
  | View of Rdf_store.Index.view  (** sorted third-column index slice *)
  | Values of int array  (** strictly increasing array *)

val src_length : src -> int

(** The size ratio above which a pass gallops instead of merging (4). *)
val gallop_ratio : int

(** [multiway ~buf srcs ~filters] intersects all operands in [srcs],
    dropping values rejected by any predicate in [filters] (dense candidate
    bitsets fold in here, one load+mask per probe, applied to the smallest
    operand before any merge pass). The result is written to the front of
    [!buf] — grown as needed, reusable across calls — and its length
    returned. [srcs] must be non-empty. *)
val multiway : buf:int array ref -> src list -> filters:(int -> bool) list -> int

(** [arrays operands] is [multiway] over plain sorted arrays, returning a
    fresh exactly-sized result. For tests and micro-benchmarks. *)
val arrays : int array list -> int array

(** {1 Instrumentation}

    Process-global counters surfaced by [explain] and the bench harness.
    Approximate under concurrent queries. *)

type counters = {
  intersections : int;  (** multiway intersections performed *)
  gallop_passes : int;  (** two-way passes that galloped *)
  merge_passes : int;  (** two-way passes that linear-merged *)
  domain_values : int;  (** total values across all emitted domains *)
  operands : int;  (** total operands consumed (views + sorted sets) *)
}

val reset : unit -> unit
val read : unit -> counters
