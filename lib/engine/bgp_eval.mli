(** The BGP evaluation facade: the "existing BGP query evaluation
    technique" that Algorithm 1 calls as [EvaluateBGP], with the two
    engines the paper implements on (gStore's WCO joins, Jena's binary
    hash joins) and the estimation interface the SPARQL-UO cost model
    reads (Section 5.1). *)

type engine = Wco | Hash_join

val engine_name : engine -> string

type t
(** An evaluation context: store + statistics + the query's variable
    table. *)

(** [make_snapshot ?stats ?domains snapshot vartable engine] — the
    context evaluates against the given immutable snapshot view.
    [domains] (default 1) is the number of domains BGP evaluation and
    the evaluator may use; [domains > 1] attaches the process-global
    {!Pool}. When [stats] is omitted they come from
    {!Rdf_store.Stats.of_snapshot}, so repeated context construction
    against one base does not rescan it. *)
val make_snapshot :
  ?stats:Rdf_store.Stats.t ->
  ?domains:int ->
  Rdf_store.Snapshot.t ->
  Sparql.Vartable.t ->
  engine ->
  t

(** [make ?stats ?domains store vartable engine] is {!make_snapshot}
    over the plain (empty-delta) view of [store]. *)
val make :
  ?stats:Rdf_store.Stats.t ->
  ?domains:int ->
  Rdf_store.Triple_store.t ->
  Sparql.Vartable.t ->
  engine ->
  t

(** [with_domains ctx ~domains] is [ctx] retargeted to another domain
    count. The memoized BGP plans (compiled patterns + estimates) are
    shared with [ctx], so a prepared query re-executes at any domain
    count without recompiling. *)
val with_domains : t -> domains:int -> t

(** [with_store ctx snapshot ~stats] is [ctx] retargeted to a newer
    snapshot of the same lineage (same shared dictionary — ids are
    append-only, so compiled constants remain valid). Shares the
    memoized plans; the plan cache invalidates wholesale on base-epoch
    changes, so estimate staleness is bounded by one delta. *)
val with_store : t -> Rdf_store.Snapshot.t -> stats:Rdf_store.Stats.t -> t

val store : t -> Rdf_store.Snapshot.t
val stats : t -> Rdf_store.Stats.t
val vartable : t -> Sparql.Vartable.t
val engine : t -> engine
val domains : t -> int

(** [pool ctx] — the domain pool when [domains > 1]; [None] otherwise. *)
val pool : t -> Pool.t option

val width : t -> int

(** [eval ctx patterns ~candidates] evaluates a BGP (a list of triple
    patterns; the empty list yields the unit bag). *)
val eval :
  t -> Sparql.Triple_pattern.t list -> candidates:Candidates.t -> Sparql.Bag.t

(** [eval_into ctx patterns ~candidates ~sink] — streaming [eval]: the
    final evaluation step emits rows into [sink] instead of materializing
    the result bag, so a downstream LIMIT can short-circuit it via
    [Sink.Stop]. The empty pattern list emits the single unit row. *)
val eval_into :
  t ->
  Sparql.Triple_pattern.t list ->
  candidates:Candidates.t ->
  sink:Sparql.Sink.t ->
  unit

(** [eval_with ctx ~engine patterns ~candidates] — {!eval} with the
    engine chosen per call instead of from the context. The adaptive
    executor uses this to pick wco vs hash probe per BE-tree node based
    on the plan's engine-specific cost estimates; memoized plans are
    engine-independent so the override costs nothing extra. *)
val eval_with :
  t ->
  engine:engine ->
  Sparql.Triple_pattern.t list ->
  candidates:Candidates.t ->
  Sparql.Bag.t

(** [eval_into_with] — streaming {!eval_with}. *)
val eval_into_with :
  t ->
  engine:engine ->
  Sparql.Triple_pattern.t list ->
  candidates:Candidates.t ->
  sink:Sparql.Sink.t ->
  unit

(** [plan ctx patterns] exposes the planner's estimates for the BGP. *)
val plan : t -> Sparql.Triple_pattern.t list -> Planner.plan

(** [estimate_cost ctx patterns] is the engine-specific evaluation cost
    estimate — the [cost(B)] term of Equations 2 and 6. *)
val estimate_cost : t -> Sparql.Triple_pattern.t list -> float

(** [estimate_card ctx patterns] is the estimated result size — the
    [|res(B)|] term of Equations 3 and 7. *)
val estimate_card : t -> Sparql.Triple_pattern.t list -> float
