(** BGP planning: greedy join ordering plus the sampling-based cardinality
    estimation of Section 5.1.2, producing per-step estimates from which
    both engines' cost formulas are computed.

    The estimation follows the paper: single-pattern cardinalities are exact
    (index range sizes); each extension step is estimated by drawing a
    bounded sample of partial result rows and scaling by the observed
    extension ratio: [card(V_k) = max(#extend / #sample * card(V_{k-1}), 1)].
    Sampling is deterministic (evenly spaced rows), so plans are stable. *)

type step = {
  pattern : Compiled.t;
  pattern_count : int;  (** exact matches of the pattern in isolation *)
  card_before : float;  (** estimated cardinality before this step *)
  card_after : float;  (** estimated cardinality after this step *)
  avg_edge : float;
      (** min over already-bound endpoint vars of the average number of
          edges with this predicate per binding — the [average_size] term
          of the gStore WCO cost formula *)
}

(** Vertex-at-a-time grouping of the ordered steps, consumed by the WCO
    engine's multiway-intersection path. An [Extend] gathers the primary
    step for column [col] together with every later step whose pattern has
    [col] as its only unbound position at that point in the order — each
    such pattern resolves to one sorted index column view, and the
    extension domain is their k-way intersection. Steps binding zero or
    two-plus new columns remain [Scan]s (pattern-at-a-time). The grouping
    is part of the cached plan, so prepared queries re-execute it without
    re-deriving it. *)
type vstep = Scan of step | Extend of { col : int; steps : step list }

type plan = {
  steps : step list;  (** in chosen execution order *)
  vsteps : vstep list;  (** the same steps, grouped vertex-at-a-time *)
  result_card : float;  (** estimated result cardinality of the BGP *)
  cost_wco : float;  (** Section 5.1.2 WCO cost: Σ card_before × avg_edge *)
  cost_hash : float;  (** Eq. 9 binary-join cost: Σ 2·min + max *)
}

(** [plan store stats table patterns] orders [patterns] greedily (most
    selective first, staying connected when possible) and estimates
    cardinalities and both cost metrics. An empty pattern list yields an
    empty plan with cardinality 1 (the unit bag). *)
val plan :
  Rdf_store.Snapshot.t ->
  Rdf_store.Stats.t ->
  Sparql.Vartable.t ->
  Compiled.t list ->
  plan

(** [sample_size] is the bounded sample used per extension step. *)
val sample_size : int
