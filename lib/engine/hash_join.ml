(* Enumerate the candidate-passing, self-consistent matches of a single
   triple pattern as fresh rows. *)
let scan_iter store ~width pattern ~candidates ~f =
  (* Chaos site: every pattern scan of the hash engine (and LBR's pass 0)
     enters here. *)
  Sparql.Governor.failpoint "scan";
  let empty = Sparql.Binding.create ~width in
  Compiled.iter_matches store pattern empty ~f:(fun ~s ~p ~o ->
      let fresh = Sparql.Binding.create ~width in
      let consistent = ref true in
      let bind node value =
        match node with
        | Compiled.Cvar col ->
            if not (Candidates.allows candidates ~col value) then
              consistent := false
            else if fresh.(col) = Sparql.Binding.unbound then
              fresh.(col) <- value
            else if fresh.(col) <> value then consistent := false
        | Compiled.Cterm _ | Compiled.Missing -> ()
      in
      bind pattern.Compiled.cs s;
      bind pattern.Compiled.cp p;
      bind pattern.Compiled.co o;
      if !consistent then f fresh)

let scan_pattern store ~width pattern ~candidates =
  let bag = Sparql.Bag.create ~width in
  scan_iter store ~width pattern ~candidates ~f:(Sparql.Bag.push bag);
  bag

let eval store ~width (plan : Planner.plan) ~candidates =
  List.fold_left
    (fun acc (step : Planner.step) ->
      let scanned = scan_pattern store ~width step.Planner.pattern ~candidates in
      Sparql.Bag.join acc scanned)
    (Sparql.Bag.unit ~width) plan.steps

(* The variable columns a pattern binds — the probe-side domain of the
   final join in [eval_into]. *)
let pattern_cols (pattern : Compiled.t) =
  let add acc node =
    match node with
    | Compiled.Cvar col -> if List.mem col acc then acc else col :: acc
    | Compiled.Cterm _ | Compiled.Missing -> acc
  in
  add (add (add [] pattern.Compiled.cs) pattern.Compiled.cp) pattern.Compiled.co

(* Minimum probe-side cardinality for which materializing the last scan
   and morselizing the probe across domains beats the serial streaming
   probe (which can short-circuit the scan itself). *)
let min_parallel_probe = 512

(* Streaming variant: the joins over all patterns but the last build and
   materialize exactly as [eval]; the accumulated result then becomes the
   build side of the final join, and the last pattern's scan probes it
   row-at-a-time, emitting merged rows straight into [sink] — the scan
   never materializes, so a downstream LIMIT short-circuits it via
   [Sink.Stop]. Each scanned probe row is budget-accounted as a produced
   row (parity with [scan_pattern]'s pushes).

   Under a pool with several domains, a large probe side is materialized
   once and morselized through [Pool.stream]: the build partition is
   read-only, so every agent probes it concurrently and emits merged rows
   into its own shard of the sink; a [Sink.Stop] in any shard stops the
   other domains at their next morsel boundary. *)
let eval_into ?pool store ~width (plan : Planner.plan) ~candidates ~sink =
  match List.rev plan.steps with
  | [] -> Sparql.Bag.emit_accounted sink (Sparql.Binding.create ~width)
  | last :: rev_prefix ->
      let acc =
        List.fold_left
          (fun acc (step : Planner.step) ->
            let scanned =
              scan_pattern store ~width step.Planner.pattern ~candidates
            in
            Sparql.Bag.join acc scanned)
          (Sparql.Bag.unit ~width) (List.rev rev_prefix)
      in
      let probe_cols = pattern_cols last.Planner.pattern in
      let parallel_probe pool =
        (* The scan's rows were charged by [scan_pattern]; only the merged
           join outputs are charged here, by the emitting shard. *)
        let scanned = scan_pattern store ~width last.Planner.pattern ~candidates in
        let n = Sparql.Bag.length scanned in
        if n < min_parallel_probe then begin
          let probe = Sparql.Bag.join_sink acc ~probe_cols ~sink in
          Sparql.Bag.iter scanned ~f:probe
        end
        else begin
          let probe = Sparql.Bag.probe_merged acc ~probe_cols in
          Pool.stream pool ~lo:0 ~hi:n ~sink
            ~local:(fun () -> ())
            ~body:(fun () shard i ->
              probe
                ~emit:(fun merged -> Sparql.Bag.emit_charged shard merged)
                (Sparql.Bag.get scanned i))
            ()
        end
      in
      (match pool with
      | Some pool when Pool.num_domains pool > 1 -> parallel_probe pool
      | _ ->
          let probe = Sparql.Bag.join_sink acc ~probe_cols ~sink in
          scan_iter store ~width last.Planner.pattern ~candidates ~f:(fun row ->
              Sparql.Bag.account ();
              probe row))
