(** A fixed pool of worker domains (stdlib [Domain], no external deps) for
    data-parallel loops over integer ranges.

    Work is claimed in chunks through an atomic cursor, each participating
    domain (the caller included) folds into a private accumulator, and
    worker exceptions are funneled back to the caller. A pool of size 1 —
    and any nested parallel call while an operation is in flight — degrades
    gracefully to the plain serial loop. *)

type t

(** [create ~num_domains] spawns [num_domains - 1] worker domains (the
    caller is the remaining participant). [num_domains <= 1] spawns none. *)
val create : num_domains:int -> t

(** [shutdown pool] stops and joins the workers. The pool must be idle. *)
val shutdown : t -> unit

val num_domains : t -> int

(** [adaptive_chunk pool ~n] picks a chunk size for a range of [n]
    indices: about four claims per domain, clamped to [16, 1024]. Used
    when the per-index work is uniform and cheap (e.g. materializing rows
    from an intersected extension domain). *)
val adaptive_chunk : t -> n:int -> int

(** [accumulate pool ~lo ~hi ~create ~body ()] applies [body acc i] to
    every [lo <= i < hi]; each participating domain folds into its own
    accumulator obtained from [create]. Returns all accumulators (in no
    particular order of contribution). [chunk] is the number of indices
    claimed at a time (default 64); ranges no larger than one chunk run
    serially in the caller.

    Each worker runs under the submitting domain's ambient
    [Sparql.Governor] ticket, so parallel row production charges the same
    per-query budget as the serial path. A [Governor.Kill] (or any other
    exception) raised in one worker stops the others at their next chunk
    boundary and is re-raised in the caller once all workers have
    parked — the pool is quiescent by the time the kill propagates. *)
val accumulate :
  t ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  create:(unit -> 'acc) ->
  body:('acc -> int -> unit) ->
  unit ->
  'acc list

(** [parallel_iter pool ~lo ~hi f] — [f i] for every [lo <= i < hi], in
    parallel. [f] must be safe to call from any domain. *)
val parallel_iter : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit

(** [parallel_map pool ~lo ~hi f] — the array [| f lo; ...; f (hi-1) |],
    computed in parallel. *)
val parallel_map : t -> ?chunk:int -> lo:int -> hi:int -> (int -> 'a) -> 'a array

(** {1 The process-global pool}

    One pool backs the executor's [~domains] knob; it is resized lazily and
    reused across queries (worker domains are expensive to spawn per
    query). *)

(** [ensure ~num_domains] returns the global pool, growing it if it is
    smaller than [num_domains] (grow-only: a larger existing pool is
    reused as is, so a shrink request can never tear the workers out from
    under a concurrent query). [None] when [num_domains <= 1] and no pool
    exists yet. *)
val ensure : num_domains:int -> t option

val global : unit -> t option

(** [enable_bag_runner ()] installs the global pool as [Sparql.Bag]'s
    parallel runner, so the probe side of [Bag.join] /
    [Bag.left_outer_join] / [Bag.minus] is chunked across domains.
    [disable_bag_runner ()] restores the serial operators. The executor
    brackets each [domains > 1] query with these. *)
val enable_bag_runner : unit -> unit

val disable_bag_runner : unit -> unit
