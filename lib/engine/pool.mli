(** A morsel-driven work-stealing scheduler over a fixed set of worker
    domains (stdlib [Domain], no external deps).

    A parallel operation seeds per-slot deques with small fixed-size
    morsels (contiguous index ranges); every participating domain — the
    caller included — pops from the front of its own deque and steals from
    the backs of the others when it runs dry. An atomic per-job [Stop]
    flag is checked at every morsel boundary, so streaming early
    termination (a satisfied LIMIT) and governor kills genuinely cross
    domains instead of waiting for workers to exhaust their share. Nested
    parallel calls seed their own job into the shared scheduler and help
    execute it (no serial degradation, no deadlock); idle workers pick up
    morsels of any active job. *)

type t

(** [create ~num_domains] spawns [num_domains - 1] worker domains (the
    caller is the remaining participant). [num_domains <= 1] spawns none. *)
val create : num_domains:int -> t

(** [shutdown pool] stops and joins the workers. The pool must be idle. *)
val shutdown : t -> unit

val num_domains : t -> int

(** {1 Morsel size}

    The process-wide default number of indices per morsel (the [--morsel-size]
    CLI knob). Smaller morsels tighten early-termination and kill latency
    and smooth imbalance; larger morsels amortize scheduling. *)

val default_morsel_size : int
val set_morsel_size : int -> unit
val morsel_size : unit -> int

(** [adaptive_morsel pool ~n] picks a morsel size for a range of [n]
    cheap uniform indices (e.g. materializing rows from an intersected
    extension domain): the configured size, reduced for small ranges so
    they still spread across slots (clamped to at least 16). *)
val adaptive_morsel : t -> n:int -> int

(** {1 Scheduler counters} *)

(** Process-global observability: [morsels] executed, successful [steals]
    (a morsel claimed from another slot's deque), and [stops] (jobs ended
    early by a cross-domain [Stop]). The bench harness resets and samples
    these around timed runs. *)
type counters = { morsels : int; steals : int; stops : int }

val counters : unit -> counters
val reset_counters : unit -> unit

(** {1 Parallel loops} *)

(** [accumulate pool ~lo ~hi ~create ~body ()] applies [body acc i] to
    every [lo <= i < hi]; each participating domain folds into its own
    accumulator obtained from [create]. Returns all accumulators (in no
    particular order of contribution). [morsel] is the number of indices
    per morsel (default {!morsel_size}).

    Each morsel runs under the submitting domain's ambient
    [Sparql.Governor] ticket — stolen morsels included — so parallel row
    production charges the same per-query budget as the serial path, and
    cancellation/deadline are checked at every morsel boundary. A
    [Governor.Kill] (or any other exception) raised in one morsel parks
    every domain at its next morsel boundary and is re-raised in the
    caller once the job has quiesced. *)
val accumulate :
  t ->
  ?morsel:int ->
  lo:int ->
  hi:int ->
  create:(unit -> 'acc) ->
  body:('acc -> int -> unit) ->
  unit ->
  'acc list

(** [parallel_iter pool ~lo ~hi f] — [f i] for every [lo <= i < hi], in
    parallel. [f] must be safe to call from any domain. *)
val parallel_iter : t -> ?morsel:int -> lo:int -> hi:int -> (int -> unit) -> unit

(** [parallel_map pool ~lo ~hi f] — the array [| f lo; ...; f (hi-1) |],
    computed in parallel. *)
val parallel_map : t -> ?morsel:int -> lo:int -> hi:int -> (int -> 'a) -> 'a array

(** [stream pool ~lo ~hi ~sink ~local ~body ()] — the streaming fan-out:
    [body scratch shard i] emits the rows of index [i] into [shard], the
    calling agent's private shard of [sink] (see [Sparql.Sink.fork]), with
    [scratch] the agent's private state from [local]. Workers emit
    through [Sparql.Bag.emit_charged]; a [Sink.Stop] raised by any shard
    stops the other domains at their next morsel boundary, the shards
    drain serially into the pipeline, and [Stop] re-raises here — callers
    observe exactly the serial early-termination protocol. Runs serially
    over [sink] itself (same per-morsel governor ticks) when the pool has
    one domain or the sink is not forkable. *)
val stream :
  t ->
  ?morsel:int ->
  lo:int ->
  hi:int ->
  sink:Sparql.Sink.t ->
  local:(unit -> 'local) ->
  body:('local -> Sparql.Sink.t -> int -> unit) ->
  unit ->
  unit

(** {1 The process-global pool}

    One pool backs the executor's [~domains] knob; it is resized lazily and
    reused across queries (worker domains are expensive to spawn per
    query). *)

(** [ensure ~num_domains] returns the global pool, growing it if it is
    smaller than [num_domains] (grow-only: a larger existing pool is
    reused as is, so a shrink request can never tear the workers out from
    under a concurrent query). [None] when [num_domains <= 1] and no pool
    exists yet. *)
val ensure : num_domains:int -> t option

val global : unit -> t option

(** [enable_bag_runner ()] installs the global pool as [Sparql.Bag]'s
    parallel runner, so the probe side of [Bag.join] /
    [Bag.left_outer_join] / [Bag.minus] (and their streaming [_into]
    forms, through shard sinks) is morselized across domains.
    [disable_bag_runner ()] restores the serial operators. The executor
    brackets each [domains > 1] query with these. *)
val enable_bag_runner : unit -> unit

val disable_bag_runner : unit -> unit

(** [install_bulk_runner pool] installs [pool] as the store layer's
    bulk-load runner ({!Rdf_store.Bulk}): the six per-order sort/encode
    tasks of every index build run one-per-morsel across the pool's
    domains. Call after {!ensure} when running with [--domains > 1]. *)
val install_bulk_runner : t -> unit
