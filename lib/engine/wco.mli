(** gStore-style worst-case-optimal BGP evaluation: patterns are applied in
    the planner's order, each extending the current partial results
    vertex-at-a-time through index range scans, with candidate sets pruning
    newly bound variables on the fly. A pattern whose variables are all
    already bound acts as an existence filter (the intersection step of
    WCO joins on cyclic patterns).

    With [?pool], each extension step chunks the current bag's rows across
    the pool's domains; every worker pushes extensions into a thread-local
    bag and the parts are concatenated after the step (result order is
    preserved only up to bag equality). This is safe because the store
    indexes, the plan and the candidate tables are all read-only during
    evaluation. *)

val eval :
  ?pool:Pool.t ->
  Rdf_store.Triple_store.t ->
  width:int ->
  Planner.plan ->
  candidates:Candidates.t ->
  Sparql.Bag.t

(** [eval_into] is [eval] with the final step streamed: all steps but the
    last materialize as usual, and the last step's extensions are emitted
    into [sink] instead of a result bag, so a downstream LIMIT can
    short-circuit the scan via [Sink.Stop]. Under a pool the last step
    fans out into worker-local bags that are replayed serially into the
    sink (Stop only ever unwinds serial code). *)
val eval_into :
  ?pool:Pool.t ->
  Rdf_store.Triple_store.t ->
  width:int ->
  Planner.plan ->
  candidates:Candidates.t ->
  sink:Sparql.Sink.t ->
  unit
