(** gStore-style worst-case-optimal BGP evaluation.

    The default path is vertex-at-a-time: the planner groups consecutive
    patterns that each have the extension column as their only unbound
    position ({!Planner.vstep}), every such pattern resolves to the sorted
    third-column view of one index prefix ({!Rdf_store.Index.column_view}),
    and the extension domain is their k-way intersection with adaptive
    galloping ({!Intersect}). A candidate set on the extension column joins
    the same intersection — sparse sets as one more sorted operand, dense
    bitsets as a load+mask filter inside the kernel. Steps that bind zero
    or several new columns fall back to pattern-at-a-time index scans with
    on-the-fly candidate pruning.

    With [?pool], extension steps chunk the current bag's rows across the
    pool's domains — except when the bag is small and the intersected
    domain is large (the star-query shape), where the domain itself is
    chunked instead. Every worker pushes extensions into a thread-local bag
    and the parts are concatenated after the step (result order is
    preserved only up to bag equality). This is safe because the store
    indexes, the plan and the candidate sets are all read-only during
    evaluation.

    [stats] feeds {!Planner.step} seed selection: candidate-seeded lookups
    tie-break on the predicate's average degree at the seeded endpoint. *)

(** [set_multiway false] switches {!eval} / {!eval_into} to the legacy
    pattern-at-a-time path (process-global; default [true]). Both paths
    consume the same cached plan and produce equal bags — the toggle exists
    for the equivalence property tests and as the bench baseline. *)
val set_multiway : bool -> unit

val multiway_enabled : unit -> bool

val eval :
  ?pool:Pool.t ->
  Rdf_store.Snapshot.t ->
  stats:Rdf_store.Stats.t ->
  width:int ->
  Planner.plan ->
  candidates:Candidates.t ->
  Sparql.Bag.t

(** [eval_into] is [eval] with the final step streamed: all steps but the
    last materialize as usual, and the last step's extensions are emitted
    into [sink] instead of a result bag, so a downstream LIMIT can
    short-circuit the scan via [Sink.Stop]. The serial terminal step binds
    matches into a reused scratch row and copies only on emit. Under a pool
    the last step fans out into worker-local bags that are replayed
    serially into the sink (Stop only ever unwinds serial code). *)
val eval_into :
  ?pool:Pool.t ->
  Rdf_store.Snapshot.t ->
  stats:Rdf_store.Stats.t ->
  width:int ->
  Planner.plan ->
  candidates:Candidates.t ->
  sink:Sparql.Sink.t ->
  unit
