(** Triple patterns compiled against a store and a query's variable table:
    variables become column indexes and constant terms become dictionary
    ids (or {!Missing} when the constant does not occur in the data, which
    forces an empty result). *)

type node =
  | Cvar of int  (** variable, by {!Sparql.Vartable} column *)
  | Cterm of int  (** constant, by dictionary id *)
  | Missing  (** constant absent from the dictionary *)

type t = {
  cs : node;
  cp : node;
  co : node;
  source : Sparql.Triple_pattern.t;
}

val compile :
  Rdf_store.Snapshot.t -> Sparql.Vartable.t -> Sparql.Triple_pattern.t -> t

val compile_list :
  Rdf_store.Snapshot.t ->
  Sparql.Vartable.t ->
  Sparql.Triple_pattern.t list ->
  t list

(** [has_missing ctp] is true when some position is {!Missing}. *)
val has_missing : t -> bool

(** [var_columns ctp] lists the distinct variable columns (s, p, o order). *)
val var_columns : t -> int list

(** [exact_count store ctp] is the exact number of data triples matching
    [ctp] taken in isolation (constant positions keyed, variables
    wildcarded) — read straight off the index ranges, as the paper's
    cardinality estimation does for single triple patterns. *)
val exact_count : Rdf_store.Snapshot.t -> t -> int

(** [count_with store ctp row] is the exact match count after substituting
    the bound columns of [row] into the pattern; [None] if a [Missing]
    constant makes it trivially 0. *)
val count_with : Rdf_store.Snapshot.t -> t -> Sparql.Binding.t -> int

(** [iter_matches store ctp row ~f] enumerates matching triples after
    substituting bound columns of [row]; [f] receives the full (s, p, o). *)
val iter_matches :
  Rdf_store.Snapshot.t ->
  t ->
  Sparql.Binding.t ->
  f:(s:int -> p:int -> o:int -> unit) ->
  unit
