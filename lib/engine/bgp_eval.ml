type engine = Wco | Hash_join

let engine_name = function Wco -> "wco" | Hash_join -> "hash"

type t = {
  store : Rdf_store.Snapshot.t;
  stats : Rdf_store.Stats.t;
  vartable : Sparql.Vartable.t;
  engine : engine;
  domains : int;
  pool : Pool.t option;
  (* Plans are requested repeatedly for the same BGP during cost-driven
     transformation; memoize on the pattern list. The mutex makes the
     cache safe when parallel UNION branches plan concurrently. *)
  plan_cache : (Sparql.Triple_pattern.t list, Planner.plan) Hashtbl.t;
  plan_mutex : Mutex.t;
}

let make_snapshot ?stats ?(domains = 1) snapshot vartable engine =
  (* [Stats.of_snapshot]: the memoized base scan adjusted by the delta —
     one statistics scan per live base, not per query. *)
  let stats =
    match stats with
    | Some s -> s
    | None -> Rdf_store.Stats.of_snapshot snapshot
  in
  let pool = if domains > 1 then Pool.ensure ~num_domains:domains else None in
  {
    store = snapshot;
    stats;
    vartable;
    engine;
    domains;
    pool;
    plan_cache = Hashtbl.create 64;
    plan_mutex = Mutex.create ();
  }

let make ?stats ?domains store vartable engine =
  make_snapshot ?stats ?domains (Rdf_store.Snapshot.of_store store) vartable
    engine

(* Domain count is an execution-time knob, everything else in the context
   is plan-level; the derived context shares the memoized plans (and
   their mutex) so compiled patterns survive re-execution at any domain
   count. *)
let with_domains ctx ~domains =
  if domains = ctx.domains then ctx
  else
    {
      ctx with
      domains;
      pool = (if domains > 1 then Pool.ensure ~num_domains:domains else None);
    }

(* Retarget the context to a newer snapshot of the same lineage. Sound
   because dictionary ids are append-only: compiled constants stay
   valid; memoized plan orders carry cost estimates from the snapshot
   they were planned under, which is exactly the bounded staleness the
   plan cache signs up for (a compaction changes the base epoch and
   invalidates the cache entry wholesale). *)
let with_store ctx snapshot ~stats =
  if snapshot == ctx.store then ctx else { ctx with store = snapshot; stats }

let store ctx = ctx.store
let stats ctx = ctx.stats
let vartable ctx = ctx.vartable
let engine ctx = ctx.engine
let domains ctx = ctx.domains
let pool ctx = ctx.pool
let width ctx = Sparql.Vartable.size ctx.vartable

let plan ctx patterns =
  Mutex.lock ctx.plan_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ctx.plan_mutex) @@ fun () ->
  match Hashtbl.find_opt ctx.plan_cache patterns with
  | Some plan -> plan
  | None ->
      let compiled = Compiled.compile_list ctx.store ctx.vartable patterns in
      let plan = Planner.plan ctx.store ctx.stats ctx.vartable compiled in
      Hashtbl.add ctx.plan_cache patterns plan;
      plan

(* [eval_with]/[eval_into_with] take the engine explicitly — the
   adaptive executor picks per node, the plain entry points below pass
   the context's engine. The memoized plan is engine-independent, so
   switching engines per node costs nothing extra. *)
let eval_with ctx ~engine patterns ~candidates =
  let plan = plan ctx patterns in
  let width = width ctx in
  match engine with
  | Wco -> Wco.eval ?pool:ctx.pool ctx.store ~stats:ctx.stats ~width plan ~candidates
  | Hash_join -> Hash_join.eval ctx.store ~width plan ~candidates

let eval_into_with ctx ~engine patterns ~candidates ~sink =
  let plan = plan ctx patterns in
  let width = width ctx in
  match engine with
  | Wco ->
      Wco.eval_into ?pool:ctx.pool ctx.store ~stats:ctx.stats ~width plan
        ~candidates ~sink
  | Hash_join ->
      Hash_join.eval_into ?pool:ctx.pool ctx.store ~width plan ~candidates ~sink

let eval ctx patterns ~candidates =
  eval_with ctx ~engine:ctx.engine patterns ~candidates

let eval_into ctx patterns ~candidates ~sink =
  eval_into_with ctx ~engine:ctx.engine patterns ~candidates ~sink

let estimate_cost ctx patterns =
  let plan = plan ctx patterns in
  match ctx.engine with
  | Wco -> plan.Planner.cost_wco
  | Hash_join -> plan.Planner.cost_hash

let estimate_card ctx patterns = (plan ctx patterns).Planner.result_card
