(* The multiway sorted-intersection kernel behind the vertex-at-a-time WCO
   extension step.

   Operands are sorted, duplicate-free ascending sequences: either a
   zero-copy [Index.view] (the third key column of a (key1,key2) index
   prefix) or a plain sorted int array (e.g. a sparse candidate set). The
   kernel loads the smallest operand into a caller-provided scratch buffer,
   optionally applies membership filters (dense candidate bitsets), then
   folds the remaining operands in ascending-size order with an adaptive
   two-way pass per operand: when the next operand is more than
   [gallop_ratio] times larger than the current result, each result value
   galloped-searches the operand (exponential probe from the last hit, then
   binary search — O(n log(m/n))); otherwise a plain linear merge. *)

type src = View of Rdf_store.Index.view | Values of int array

let src_length = function
  | View v -> Rdf_store.Index.view_length v
  | Values a -> Array.length a

let src_get s i =
  match s with
  | View v -> Rdf_store.Index.view_get v i
  | Values a -> Array.unsafe_get a i

(* Gallop vs. merge threshold: gallop only pays off when the size ratio
   exceeds ~4x (Aberger et al.); below that the linear merge's perfect
   locality wins. *)
let gallop_ratio = 4

(* Process-global counters, read by explain output and the bench harness.
   Relaxed atomics: the numbers are diagnostics, approximate under
   concurrent queries is fine. *)
let n_intersections = Atomic.make 0
let n_gallop = Atomic.make 0
let n_merge = Atomic.make 0
let n_domain_values = Atomic.make 0
let n_operands = Atomic.make 0

type counters = {
  intersections : int;  (** multiway intersections performed *)
  gallop_passes : int;  (** two-way passes that galloped *)
  merge_passes : int;  (** two-way passes that linear-merged *)
  domain_values : int;  (** total values across all emitted domains *)
  operands : int;  (** total operands consumed (views + sorted sets) *)
}

let reset () =
  Atomic.set n_intersections 0;
  Atomic.set n_gallop 0;
  Atomic.set n_merge 0;
  Atomic.set n_domain_values 0;
  Atomic.set n_operands 0

let read () =
  {
    intersections = Atomic.get n_intersections;
    gallop_passes = Atomic.get n_gallop;
    merge_passes = Atomic.get n_merge;
    domain_values = Atomic.get n_domain_values;
    operands = Atomic.get n_operands;
  }

(* First index [j >= lo] with [src_get src j >= v]. Index views answer
   this natively — a search over the uncompressed block samples that
   decodes at most one block ({!Rdf_store.Index.view_lower_bound}), so
   galloping never pays per-element decompression. Plain arrays keep the
   exponential probe from [lo] plus binary search within the bracketed
   window. *)
let gallop_search src m v lo =
  match src with
  | View view -> Rdf_store.Index.view_lower_bound view ~from:lo v
  | Values a ->
      if lo >= m || Array.unsafe_get a lo >= v then lo
      else begin
        (* invariant: a.(lo+step/2) < v *)
        let step = ref 1 in
        while lo + !step < m && Array.unsafe_get a (lo + !step) < v do
          step := !step lsl 1
        done;
        let l = ref (lo + (!step lsr 1) + 1)
        and h = ref (min m (lo + !step)) in
        while !l < !h do
          let mid = (!l + !h) / 2 in
          if Array.unsafe_get a mid < v then l := mid + 1 else h := mid
        done;
        !l
      end

(* Intersect the sorted prefix [buf.(0..n-1)] with [src], writing the
   result back into the front of [buf]; returns the new count. Writes trail
   reads, so in-place is safe. *)
let intersect_into buf n src =
  let m = src_length src in
  if n = 0 || m = 0 then 0
  else if m > gallop_ratio * n then begin
    Atomic.incr n_gallop;
    let k = ref 0 and pos = ref 0 in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get buf i in
      let j = gallop_search src m v !pos in
      pos := j;
      if j < m && src_get src j = v then begin
        Array.unsafe_set buf !k v;
        incr k
      end
    done;
    !k
  end
  else begin
    Atomic.incr n_merge;
    let k = ref 0 and i = ref 0 and j = ref 0 in
    while !i < n && !j < m do
      let a = Array.unsafe_get buf !i and b = src_get src !j in
      if a < b then incr i
      else if a > b then incr j
      else begin
        Array.unsafe_set buf !k a;
        incr k;
        incr i;
        incr j
      end
    done;
    !k
  end

let ensure_capacity buf n =
  if Array.length !buf < n then
    buf := Array.make (max n (2 * Array.length !buf)) 0

(* [multiway ~buf srcs ~filters] intersects all of [srcs], keeping only
   values accepted by every predicate in [filters] (dense candidate
   bitsets; applied to the smallest operand before any merging so they
   shrink the work for every later pass). The result lands in the front of
   [!buf]; returns its length. [srcs] must be non-empty. *)
let multiway ~buf srcs ~filters =
  Atomic.incr n_intersections;
  let srcs =
    List.sort (fun a b -> Int.compare (src_length a) (src_length b)) srcs
  in
  match srcs with
  | [] -> invalid_arg "Intersect.multiway: no operands"
  | smallest :: rest ->
      let n0 = src_length smallest in
      ensure_capacity buf n0;
      let b = !buf in
      let n = ref 0 in
      (match filters with
      | [] ->
          for i = 0 to n0 - 1 do
            Array.unsafe_set b i (src_get smallest i)
          done;
          n := n0
      | fs ->
          for i = 0 to n0 - 1 do
            let v = src_get smallest i in
            if List.for_all (fun f -> f v) fs then begin
              Array.unsafe_set b !n v;
              incr n
            end
          done);
      List.iter (fun src -> n := intersect_into b !n src) rest;
      ignore
        (Atomic.fetch_and_add n_operands (List.length srcs + List.length filters));
      ignore (Atomic.fetch_and_add n_domain_values !n);
      !n

(* Convenience wrapper over plain arrays, for tests and micro-benchmarks. *)
let arrays operands =
  let buf = ref [||] in
  let n = multiway ~buf (List.map (fun a -> Values a) operands) ~filters:[] in
  Array.sub !buf 0 n
