(* The candidate check for a pattern position: a newly bound variable must
   pass its candidate set; constants and already-bound variables were
   checked when they were bound. *)
let node_allowed candidates row node value =
  match node with
  | Compiled.Cvar col when row.(col) = Sparql.Binding.unbound ->
      Candidates.allows candidates ~col value
  | Compiled.Cvar _ | Compiled.Cterm _ | Compiled.Missing -> true

(* Enumerate matches of [pattern] under [row] and push consistent,
   candidate-passing extensions. *)
let scan_and_push store candidates pattern row ~push =
  Compiled.iter_matches store pattern row ~f:(fun ~s ~p ~o ->
      if
        node_allowed candidates row pattern.Compiled.cs s
        && node_allowed candidates row pattern.Compiled.cp p
        && node_allowed candidates row pattern.Compiled.co o
      then begin
        let fresh = Array.copy row in
        let consistent = ref true in
        (* A variable repeated within the pattern must match the same
           value at both positions (e.g. ?x :p ?x). *)
        let bind node value =
          match node with
          | Compiled.Cvar col ->
              if fresh.(col) = Sparql.Binding.unbound then fresh.(col) <- value
              else if fresh.(col) <> value then consistent := false
          | Compiled.Cterm _ | Compiled.Missing -> ()
        in
        bind pattern.Compiled.cs s;
        bind pattern.Compiled.cp p;
        bind pattern.Compiled.co o;
        if !consistent then push fresh
      end)

(* The smallest candidate set attached to a variable the pattern would
   newly bind, if any: the seed for candidate-driven index lookups. *)
let best_seed candidates row pattern =
  let consider acc node =
    match node with
    | Compiled.Cvar col when row.(col) = Sparql.Binding.unbound -> (
        match Candidates.find candidates ~col with
        | Some values -> (
            match acc with
            | Some (_, best) when Hashtbl.length best <= Hashtbl.length values
              ->
                acc
            | _ -> Some (col, values))
        | None -> acc)
    | Compiled.Cvar _ | Compiled.Cterm _ | Compiled.Missing -> acc
  in
  consider
    (consider (consider None pattern.Compiled.cs) pattern.Compiled.cp)
    pattern.Compiled.co

(* Extend one partial result row through [pattern]. When a newly bound
   variable carries a candidate set smaller than the scan the index would
   otherwise perform, iterate the candidates and do keyed lookups instead
   — this is how candidate pruning "prunes the search space of BGP
   evaluation on-the-fly" (Section 6) rather than merely post-filtering. *)
let extend_row store candidates pattern row ~push =
  match best_seed candidates row pattern with
  | Some (col, values)
    when Hashtbl.length values < Compiled.count_with store pattern row ->
      Hashtbl.iter
        (fun value () ->
          let seeded = Array.copy row in
          seeded.(col) <- value;
          scan_and_push store candidates pattern seeded ~push)
        values
  | _ -> scan_and_push store candidates pattern row ~push

(* Rows are extended independently, so a step parallelizes by chunking the
   current bag across domains; each worker pushes into a thread-local part
   (budget-accounted there) and the parts are concatenated. Serial when no
   pool is given or the bag is too small to amortize the fan-out. *)
let min_parallel_rows = 32

let eval_step ?pool store ~width candidates input (step : Planner.step) =
  match pool with
  | Some pool when Sparql.Bag.length input >= min_parallel_rows ->
      Sparql.Bag.concat ~width
        (Pool.accumulate pool ~chunk:16 ~lo:0
           ~hi:(Sparql.Bag.length input)
           ~create:(fun () -> Sparql.Bag.create ~width)
           ~body:(fun out i ->
             extend_row store candidates step.pattern (Sparql.Bag.get input i)
               ~push:(Sparql.Bag.push out))
           ())
  | _ ->
      let next = Sparql.Bag.create ~width in
      Sparql.Bag.iter input ~f:(fun row ->
          extend_row store candidates step.pattern row
            ~push:(Sparql.Bag.push next));
      next

let eval ?pool store ~width (plan : Planner.plan) ~candidates =
  List.fold_left
    (eval_step ?pool store ~width candidates)
    (Sparql.Bag.unit ~width) plan.steps

(* Streaming variant: every step but the last materializes exactly as
   [eval] (each step's input must be complete before the next begins), but
   the last step's extensions flow straight into [sink]. Under a pool the
   last step still fans out into worker-local bags — [Sink.Stop] must not
   unwind across domains — which are then replayed serially into the sink;
   the rows were budget-accounted when pushed into their part, so the
   replay is free. *)
let eval_into ?pool store ~width (plan : Planner.plan) ~candidates ~sink =
  match List.rev plan.steps with
  | [] -> Sparql.Bag.emit_accounted sink (Sparql.Binding.create ~width)
  | last :: rev_prefix ->
      let input =
        List.fold_left
          (eval_step ?pool store ~width candidates)
          (Sparql.Bag.unit ~width) (List.rev rev_prefix)
      in
      (match pool with
      | Some pool when Sparql.Bag.length input >= min_parallel_rows ->
          let parts =
            Pool.accumulate pool ~chunk:16 ~lo:0
              ~hi:(Sparql.Bag.length input)
              ~create:(fun () -> Sparql.Bag.create ~width)
              ~body:(fun out i ->
                extend_row store candidates last.pattern
                  (Sparql.Bag.get input i) ~push:(Sparql.Bag.push out))
              ()
          in
          List.iter
            (fun part -> Sparql.Bag.iter part ~f:(Sparql.Sink.emit sink))
            parts
      | _ ->
          Sparql.Bag.iter input ~f:(fun row ->
              extend_row store candidates last.pattern row
                ~push:(Sparql.Bag.emit_accounted sink)))
