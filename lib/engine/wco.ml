(* Toggle between the vertex-at-a-time multiway-intersection path (default)
   and the legacy pattern-at-a-time scan path. Both consume the same cached
   plan; the equivalence property tests and the bench baseline flip this. *)
let use_multiway = Atomic.make true

let set_multiway b = Atomic.set use_multiway b
let multiway_enabled () = Atomic.get use_multiway

(* The candidate check for a pattern position: a newly bound variable must
   pass its candidate set; constants and already-bound variables were
   checked when they were bound. *)
let node_allowed candidates row node value =
  match node with
  | Compiled.Cvar col when row.(col) = Sparql.Binding.unbound ->
      Candidates.allows candidates ~col value
  | Compiled.Cvar _ | Compiled.Cterm _ | Compiled.Missing -> true

(* Enumerate matches of [pattern] under [row] and emit consistent,
   candidate-passing extensions. Matches are bound into [scratch] (any row
   of the right width; clobbered) and copied only when they survive every
   check — failing matches cost no allocation. *)
let scan_and_push store candidates pattern ~scratch row ~emit =
  Array.blit row 0 scratch 0 (Array.length row);
  Compiled.iter_matches store pattern row ~f:(fun ~s ~p ~o ->
      if
        node_allowed candidates row pattern.Compiled.cs s
        && node_allowed candidates row pattern.Compiled.cp p
        && node_allowed candidates row pattern.Compiled.co o
      then begin
        let b1 = ref (-1) and b2 = ref (-1) and b3 = ref (-1) in
        let consistent = ref true in
        (* A variable repeated within the pattern must match the same
           value at both positions (e.g. ?x :p ?x). *)
        let bind slot node value =
          match node with
          | Compiled.Cvar col ->
              if scratch.(col) = Sparql.Binding.unbound then begin
                scratch.(col) <- value;
                slot := col
              end
              else if scratch.(col) <> value then consistent := false
          | Compiled.Cterm _ | Compiled.Missing -> ()
        in
        bind b1 pattern.Compiled.cs s;
        bind b2 pattern.Compiled.cp p;
        bind b3 pattern.Compiled.co o;
        if !consistent then emit (Array.copy scratch);
        (* Restore [scratch = row]: only freshly bound cells changed. *)
        if !b1 >= 0 then scratch.(!b1) <- Sparql.Binding.unbound;
        if !b2 >= 0 then scratch.(!b2) <- Sparql.Binding.unbound;
        if !b3 >= 0 then scratch.(!b3) <- Sparql.Binding.unbound
      end)

(* Expected matches per seeded lookup of [col]: with a constant predicate
   the per-binding average degree of that endpoint (statistics), otherwise
   a positional rank (subject prefixes are the cheapest accesses in
   practice, then object, then predicate). *)
let seed_access_cost stats (pattern : Compiled.t) col =
  match pattern.Compiled.cp with
  | Compiled.Cterm p when pattern.Compiled.cs = Compiled.Cvar col ->
      (Rdf_store.Stats.predicate stats ~p).Rdf_store.Stats.avg_out_degree
  | Compiled.Cterm p when pattern.Compiled.co = Compiled.Cvar col ->
      (Rdf_store.Stats.predicate stats ~p).Rdf_store.Stats.avg_in_degree
  | _ ->
      if pattern.Compiled.cs = Compiled.Cvar col then 0.
      else if pattern.Compiled.co = Compiled.Cvar col then 1.
      else 2.

(* The best candidate set attached to a variable the pattern would newly
   bind, if any: the seed for candidate-driven index lookups. Smallest
   cardinality wins; ties break on the cheaper seeded index access. *)
let best_seed stats candidates row pattern =
  let strictly_better (c1, v1) (c2, v2) =
    let n1 = Candidates.cardinal v1 and n2 = Candidates.cardinal v2 in
    if n1 <> n2 then n1 < n2
    else seed_access_cost stats pattern c1 < seed_access_cost stats pattern c2
  in
  let consider acc node =
    match node with
    | Compiled.Cvar col when row.(col) = Sparql.Binding.unbound -> (
        match Candidates.find candidates ~col with
        | Some values -> (
            match acc with
            | Some best when not (strictly_better (col, values) best) -> acc
            | _ -> Some (col, values))
        | None -> acc)
    | Compiled.Cvar _ | Compiled.Cterm _ | Compiled.Missing -> acc
  in
  consider
    (consider (consider None pattern.Compiled.cs) pattern.Compiled.cp)
    pattern.Compiled.co

(* Extend one partial result row through [pattern]. When a newly bound
   variable carries a candidate set smaller than the scan the index would
   otherwise perform, iterate the candidates and do keyed lookups instead
   — this is how candidate pruning "prunes the search space of BGP
   evaluation on-the-fly" (Section 6) rather than merely post-filtering. *)
(* A keyed index probe costs several times one row of the contiguous
   range scan it replaces, so seeding from a candidate set pays only
   with a real cardinality margin; anything denser is better served by
   the in-kernel membership filter. *)
let seed_probe_factor = 4

let extend_row store stats candidates pattern ~scratch row ~emit =
  match best_seed stats candidates row pattern with
  | Some (col, values)
    when seed_probe_factor * Candidates.cardinal values
         < Compiled.count_with store pattern row ->
      Candidates.iter_values values ~f:(fun value ->
          let seeded = Array.copy row in
          seeded.(col) <- value;
          scan_and_push store candidates pattern ~scratch seeded ~emit)
  | _ -> scan_and_push store candidates pattern ~scratch row ~emit

(* Rows are extended independently, so a step parallelizes by morselizing
   the current bag across domains; each agent pushes into a thread-local
   part (budget-accounted there, preallocated to a morsel's worth of rows)
   and the parts are concatenated. Serial when no pool is given or the bag
   is too small to amortize the fan-out. *)
let min_parallel_rows = 32

let eval_step ?pool store stats ~width candidates input (step : Planner.step) =
  (* Chaos site: every WCO scan step (materializing or not) enters here. *)
  Sparql.Governor.failpoint "scan";
  match pool with
  | Some pool when Sparql.Bag.length input >= min_parallel_rows ->
      Sparql.Bag.concat ~width
        (List.map fst
           (Pool.accumulate pool ~lo:0
              ~hi:(Sparql.Bag.length input)
              ~create:(fun () ->
                ( Sparql.Bag.create_sized ~capacity:(Pool.morsel_size ()) ~width,
                  Sparql.Binding.create ~width ))
              ~body:(fun (out, scratch) i ->
                extend_row store stats candidates step.pattern ~scratch
                  (Sparql.Bag.get input i) ~emit:(Sparql.Bag.push out))
              ()))
  | _ ->
      let next = Sparql.Bag.create ~width in
      let scratch = Sparql.Binding.create ~width in
      Sparql.Bag.iter input ~f:(fun row ->
          extend_row store stats candidates step.pattern ~scratch row
            ~emit:(Sparql.Bag.push next));
      next

(* {1 The multiway-intersection extension (vertex-at-a-time)} *)

(* Resolve one pattern of an [Extend] group to the sorted third-column view
   of its index prefix under [row]: by construction exactly the extension
   column is unbound. *)
let operand_of store row (pattern : Compiled.t) =
  let key = function
    | Compiled.Cterm id -> Some id
    | Compiled.Cvar c when row.(c) <> Sparql.Binding.unbound -> Some row.(c)
    | Compiled.Cvar _ -> None
    | Compiled.Missing -> assert false
  in
  Intersect.View
    (Rdf_store.Snapshot.third_column_view store
       ?s:(key pattern.Compiled.cs) ?p:(key pattern.Compiled.cp)
       ?o:(key pattern.Compiled.co) ())

(* How the extension column's candidate set (if any) joins the
   intersection: a sparse sorted set becomes one more operand; a dense
   bitset becomes a load+mask filter applied inside the kernel. *)
let candidate_operands candidates ~col =
  match Candidates.find candidates ~col with
  | None -> ([], [])
  | Some set -> (
      match Candidates.as_sorted set with
      | Some arr -> ([ Intersect.Values arr ], [])
      | None -> ([], [ Candidates.noted_mem set ]))

(* Minimum intersected-domain size for which fanning the row
   materialization out across the pool beats the serial loop. *)
let min_parallel_domain = 512

let eval_extend ?pool store ~width candidates input ~col
    (patterns : Compiled.t list) =
  (* Chaos site: every vertex-at-a-time extension step enters here. *)
  Sparql.Governor.failpoint "extend";
  let extra, filters = candidate_operands candidates ~col in
  let domain_into buf row =
    Intersect.multiway ~buf
      (extra @ List.map (operand_of store row) patterns)
      ~filters
  in
  match pool with
  | Some pool when Sparql.Bag.length input >= min_parallel_rows ->
      (* Plenty of rows: morselize the input bag, one scratch domain
         buffer per agent. *)
      Sparql.Bag.concat ~width
        (List.map fst
           (Pool.accumulate pool ~lo:0
              ~hi:(Sparql.Bag.length input)
              ~create:(fun () ->
                (Sparql.Bag.create_sized ~capacity:(Pool.morsel_size ()) ~width, ref [||]))
              ~body:(fun (out, buf) i ->
                let row = Sparql.Bag.get input i in
                let n = domain_into buf row in
                let b = !buf in
                for k = 0 to n - 1 do
                  let fresh = Array.copy row in
                  fresh.(col) <- Array.unsafe_get b k;
                  Sparql.Bag.push out fresh
                done)
              ()))
  | Some pool ->
      (* Few rows (a star query starts from the unit bag): parallelism must
         come from morselizing the intersected domain itself, not the
         input. *)
      let buf = ref [||] in
      let parts = ref [] in
      let serial = Sparql.Bag.create ~width in
      Sparql.Bag.iter input ~f:(fun row ->
          let n = domain_into buf row in
          if n >= min_parallel_domain then begin
            let b = !buf in
            parts :=
              List.rev_append
                (Pool.accumulate pool
                   ~morsel:(Pool.adaptive_morsel pool ~n)
                   ~lo:0 ~hi:n
                   ~create:(fun () -> Sparql.Bag.create_sized ~capacity:(Pool.morsel_size ()) ~width)
                   ~body:(fun out k ->
                     let fresh = Array.copy row in
                     fresh.(col) <- Array.unsafe_get b k;
                     Sparql.Bag.push out fresh)
                   ())
                !parts
          end
          else begin
            let b = !buf in
            for k = 0 to n - 1 do
              let fresh = Array.copy row in
              fresh.(col) <- Array.unsafe_get b k;
              Sparql.Bag.push serial fresh
            done
          end);
      Sparql.Bag.concat ~width (serial :: List.rev !parts)
  | None ->
      let next = Sparql.Bag.create ~width in
      let buf = ref [||] in
      Sparql.Bag.iter input ~f:(fun row ->
          let n = domain_into buf row in
          let b = !buf in
          for k = 0 to n - 1 do
            let fresh = Array.copy row in
            fresh.(col) <- Array.unsafe_get b k;
            Sparql.Bag.push next fresh
          done);
      next

let eval_vstep ?pool store stats ~width candidates input = function
  | Planner.Scan step -> eval_step ?pool store stats ~width candidates input step
  | Planner.Extend { col; steps } ->
      eval_extend ?pool store ~width candidates input ~col
        (List.map (fun (s : Planner.step) -> s.pattern) steps)

let eval ?pool store ~stats ~width (plan : Planner.plan) ~candidates =
  if Atomic.get use_multiway then
    List.fold_left
      (eval_vstep ?pool store stats ~width candidates)
      (Sparql.Bag.unit ~width) plan.vsteps
  else
    List.fold_left
      (eval_step ?pool store stats ~width candidates)
      (Sparql.Bag.unit ~width) plan.steps

(* Streaming variant: every step but the last materializes exactly as
   [eval] (each step's input must be complete before the next begins), but
   the last step's extensions flow straight into [sink]. Under a pool the
   last step runs through [Pool.stream]: each agent emits into its own
   shard of the sink, and a [Sink.Stop] raised in any shard (a satisfied
   LIMIT) stops the other domains at their next morsel boundary — genuine
   cross-domain early termination, not a serial replay of worker bags.
   The serial terminal scan binds into a scratch row and copies only on
   emit. *)
let stream_scan ?pool store stats ~width candidates input (step : Planner.step)
    ~sink =
  Sparql.Governor.failpoint "scan";
  match pool with
  | Some pool when Sparql.Bag.length input >= min_parallel_rows ->
      Pool.stream pool ~lo:0 ~hi:(Sparql.Bag.length input) ~sink
        ~local:(fun () -> Sparql.Binding.create ~width)
        ~body:(fun scratch shard i ->
          extend_row store stats candidates step.pattern ~scratch
            (Sparql.Bag.get input i) ~emit:(Sparql.Bag.emit_charged shard))
        ()
  | _ ->
      let scratch = Sparql.Binding.create ~width in
      Sparql.Bag.iter input ~f:(fun row ->
          extend_row store stats candidates step.pattern ~scratch row
            ~emit:(Sparql.Bag.emit_accounted sink))

let stream_extend ?pool store ~width candidates input ~col patterns ~sink =
  Sparql.Governor.failpoint "extend";
  let extra, filters = candidate_operands candidates ~col in
  let domain_into buf row =
    Intersect.multiway ~buf
      (extra @ List.map (operand_of store row) patterns)
      ~filters
  in
  match pool with
  | Some pool when Sparql.Bag.length input >= min_parallel_rows ->
      (* Morselize the input rows; each agent intersects into its own
         scratch domain buffer and streams extensions into its shard. *)
      Pool.stream pool ~lo:0 ~hi:(Sparql.Bag.length input) ~sink
        ~local:(fun () -> ref [||])
        ~body:(fun buf shard i ->
          let row = Sparql.Bag.get input i in
          let n = domain_into buf row in
          let b = !buf in
          for k = 0 to n - 1 do
            let fresh = Array.copy row in
            fresh.(col) <- Array.unsafe_get b k;
            Sparql.Bag.emit_charged shard fresh
          done)
        ()
  | Some pool ->
      (* Few rows: morselize each large intersected domain instead. *)
      let buf = ref [||] in
      Sparql.Bag.iter input ~f:(fun row ->
          let n = domain_into buf row in
          if n >= min_parallel_domain then begin
            let b = !buf in
            Pool.stream pool
              ~morsel:(Pool.adaptive_morsel pool ~n)
              ~lo:0 ~hi:n ~sink
              ~local:(fun () -> ())
              ~body:(fun () shard k ->
                let fresh = Array.copy row in
                fresh.(col) <- Array.unsafe_get b k;
                Sparql.Bag.emit_charged shard fresh)
              ()
          end
          else begin
            let b = !buf in
            for k = 0 to n - 1 do
              let fresh = Array.copy row in
              fresh.(col) <- Array.unsafe_get b k;
              Sparql.Bag.emit_accounted sink fresh
            done
          end)
  | None ->
      let buf = ref [||] in
      Sparql.Bag.iter input ~f:(fun row ->
          let n = domain_into buf row in
          let b = !buf in
          for k = 0 to n - 1 do
            let fresh = Array.copy row in
            fresh.(col) <- Array.unsafe_get b k;
            Sparql.Bag.emit_accounted sink fresh
          done)

let eval_into ?pool store ~stats ~width (plan : Planner.plan) ~candidates ~sink
    =
  if Atomic.get use_multiway then
    match List.rev plan.vsteps with
    | [] -> Sparql.Bag.emit_accounted sink (Sparql.Binding.create ~width)
    | last :: rev_prefix ->
        let input =
          List.fold_left
            (eval_vstep ?pool store stats ~width candidates)
            (Sparql.Bag.unit ~width) (List.rev rev_prefix)
        in
        (match last with
        | Planner.Scan step ->
            stream_scan ?pool store stats ~width candidates input step ~sink
        | Planner.Extend { col; steps } ->
            stream_extend ?pool store ~width candidates input ~col
              (List.map (fun (s : Planner.step) -> s.pattern) steps)
              ~sink)
  else
    match List.rev plan.steps with
    | [] -> Sparql.Bag.emit_accounted sink (Sparql.Binding.create ~width)
    | last :: rev_prefix ->
        let input =
          List.fold_left
            (eval_step ?pool store stats ~width candidates)
            (Sparql.Bag.unit ~width) (List.rev rev_prefix)
        in
        stream_scan ?pool store stats ~width candidates input last ~sink
