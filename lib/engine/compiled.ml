type node = Cvar of int | Cterm of int | Missing

type t = {
  cs : node;
  cp : node;
  co : node;
  source : Sparql.Triple_pattern.t;
}

let compile_node store table = function
  | Sparql.Triple_pattern.Var v -> Cvar (Sparql.Vartable.id table v)
  | Sparql.Triple_pattern.Term term -> (
      match Rdf_store.Snapshot.encode_term store term with
      | Some id -> Cterm id
      | None -> Missing)

let compile store table (tp : Sparql.Triple_pattern.t) =
  {
    cs = compile_node store table tp.s;
    cp = compile_node store table tp.p;
    co = compile_node store table tp.o;
    source = tp;
  }

let compile_list store table tps = List.map (compile store table) tps

let has_missing ctp =
  ctp.cs = Missing || ctp.cp = Missing || ctp.co = Missing

let var_columns ctp =
  let add acc = function Cvar c when not (List.mem c acc) -> c :: acc | _ -> acc in
  List.rev (add (add (add [] ctp.cs) ctp.cp) ctp.co)

(* The key for a position: a constant id, or the row's value when the
   column is bound, or None (wildcard). *)
let key_of row = function
  | Cterm id -> Some id
  | Cvar col when row.(col) <> Sparql.Binding.unbound -> Some row.(col)
  | Cvar _ -> None
  | Missing -> assert false

let exact_count store ctp =
  if has_missing ctp then 0
  else
    let key = function
      | Cterm id -> Some id
      | Cvar _ -> None
      | Missing -> assert false
    in
    Rdf_store.Snapshot.count store ?s:(key ctp.cs) ?p:(key ctp.cp)
      ?o:(key ctp.co) ()

let count_with store ctp row =
  if has_missing ctp then 0
  else
    Rdf_store.Snapshot.count store ?s:(key_of row ctp.cs)
      ?p:(key_of row ctp.cp) ?o:(key_of row ctp.co) ()

let iter_matches store ctp row ~f =
  if has_missing ctp then ()
  else
    Rdf_store.Snapshot.iter store ?s:(key_of row ctp.cs)
      ?p:(key_of row ctp.cp) ?o:(key_of row ctp.co) ~f ()
