(** A from-scratch LUBM generator (the paper's synthetic dataset,
    Section 7): universities → departments → faculty, students, courses,
    research groups and publications, with the schema's 18 predicates and
    LUBM's published cardinality ratios, deterministically seeded.

    University 0 is generated with floors on department and student counts
    so that the constants appearing in the benchmark queries
    (Department12.University0, UndergraduateStudent363, the email literal
    of q1.4, …) are guaranteed to exist at every scale. *)

type config = {
  universities : int;
  seed : int;
  density : float;
      (** scales per-entity fan-outs (students per faculty, publications,
          …); 1.0 reproduces LUBM's ratios, tests use smaller values *)
}

(** [default] — 130 universities at density 1.0 (≈ 13M triples). All
    benchmark query constants exist from 13 universities up; the default
    sits an order of magnitude above that now that base data lives in
    off-heap compressed columns. *)
val default : config

(** [tiny] — 1 university at low density (≈ 10k triples), for tests. *)
val tiny : config

(** [scaled n] — [default] with [n] universities (Figure 12's ladder). *)
val scaled : int -> config

(** [iter_triples config ~f] streams the dataset to [f] in generation
    order without materializing it — the path the bulk loader uses; at
    the default scale the triple list form would dominate the heap. *)
val iter_triples : config -> f:(Rdf.Triple.t -> unit) -> unit

(** [generate config] materializes the dataset as a list (tests, small
    scales). *)
val generate : config -> Rdf.Triple.t list

(** [store config] — stream-generate and bulk-index via
    {!Rdf_store.Triple_store.of_iter}. *)
val store : config -> Rdf_store.Triple_store.t

(** {1 IRI helpers (used by queries and tests)} *)

val university_iri : int -> string
val department_iri : univ:int -> dept:int -> string
