type config = { universities : int; seed : int; density : float }

let default = { universities = 130; seed = 20250705; density = 1.0 }

let tiny = { universities = 1; seed = 20250705; density = 0.12 }

let scaled n = { default with universities = n }

let university_iri u = Printf.sprintf "http://www.University%d.edu" u

let department_iri ~univ ~dept =
  Printf.sprintf "http://www.Department%d.University%d.edu" dept univ

let ub = Rdf.Namespace.ub
let rdf_type = Rdf.Namespace.rdf_type

type state = {
  rng : Rng.t;
  emitf : Rdf.Triple.t -> unit;
  config : config;
}

let emit st s p o =
  st.emitf (Rdf.Triple.make (Rdf.Term.iri s) (Rdf.Term.iri p) o)

let emit_iri st s p o = emit st s p (Rdf.Term.iri o)
let emit_lit st s p o = emit st s p (Rdf.Term.literal o)

(* Scale a sampled count by the density knob, keeping at least [floor]. *)
let scaled_count st ~floor lo hi =
  let n = Rng.between st.rng lo hi in
  max floor (int_of_float (Float.round (float_of_int n *. st.config.density)))

let random_university st = university_iri (Rng.int st.rng st.config.universities)

type person = { iri : string; local : string }

let person_attributes st ~dept_iri:_ ~univ ~dept person =
  emit_lit st person.iri (ub "name") person.local;
  emit_lit st person.iri (ub "emailAddress")
    (Printf.sprintf "%s@Department%d.University%d.edu" person.local dept univ);
  emit_lit st person.iri (ub "telephone")
    (Printf.sprintf "%03d-%03d-%04d" (Rng.int st.rng 1000) (Rng.int st.rng 1000)
       (Rng.int st.rng 10000))

let iter_triples config ~f =
  let st = { rng = Rng.create ~seed:config.seed; emitf = f; config } in
  for u = 0 to config.universities - 1 do
    let univ = university_iri u in
    emit_iri st univ rdf_type (ub "University");
    emit_lit st univ (ub "name") (Printf.sprintf "University%d" u);
    (* University 0 hosts the benchmark query constants: guarantee at
       least 15 departments there. *)
    let ndepts =
      if u = 0 then max 15 (Rng.between st.rng 15 25)
      else Rng.between st.rng 15 25
    in
    for d = 0 to ndepts - 1 do
      let dept = department_iri ~univ:u ~dept:d in
      emit_iri st dept rdf_type (ub "Department");
      emit_iri st dept (ub "subOrganizationOf") univ;
      emit_lit st dept (ub "name") (Printf.sprintf "Department%d" d);
      (* Research groups. *)
      let ngroups = scaled_count st ~floor:1 10 20 in
      for g = 0 to ngroups - 1 do
        let group = Printf.sprintf "%s/ResearchGroup%d" dept g in
        emit_iri st group rdf_type (ub "ResearchGroup");
        emit_iri st group (ub "subOrganizationOf") dept
      done;
      (* Faculty, per LUBM's rank ratios. *)
      (* Rank, count, has a doctorate, publication range. Only full
         professors carry doctoralDegreeFrom, which keeps the alumni
         fan-in per university (the v4 factor of q1.1) at the magnitude
         the paper's result sizes imply. *)
      let ranks =
        [
          ("FullProfessor", scaled_count st ~floor:1 7 10, true, (3, 6));
          ("AssociateProfessor", scaled_count st ~floor:1 10 14, false, (2, 4));
          ("AssistantProfessor", scaled_count st ~floor:1 8 11, false, (1, 3));
          ("Lecturer", scaled_count st ~floor:1 5 7, false, (0, 1));
        ]
      in
      let course_counter = ref 0 in
      let grad_course_counter = ref 0 in
      let fresh_course graduate =
        let kind, counter =
          if graduate then ("GraduateCourse", grad_course_counter)
          else ("Course", course_counter)
        in
        let course = Printf.sprintf "%s/%s%d" dept kind !counter in
        incr counter;
        emit_iri st course rdf_type (ub kind);
        course
      in
      let faculty = ref [] in
      let professors = ref [] in
      List.iter
        (fun (rank, count, has_doctorate, pub_range) ->
          for i = 0 to count - 1 do
            let local = Printf.sprintf "%s%d" rank i in
            let person = { iri = Printf.sprintf "%s/%s" dept local; local } in
            emit_iri st person.iri rdf_type (ub rank);
            emit_iri st person.iri (ub "worksFor") dept;
            person_attributes st ~dept_iri:dept ~univ:u ~dept:d person;
            emit_iri st person.iri (ub "undergraduateDegreeFrom")
              (random_university st);
            emit_iri st person.iri (ub "mastersDegreeFrom") (random_university st);
            emit_lit st person.iri (ub "researchInterest")
              (Printf.sprintf "Research%d" (Rng.int st.rng 30));
            if has_doctorate then
              emit_iri st person.iri (ub "doctoralDegreeFrom")
                (random_university st);
            (* Teaching load: 1-2 courses; professors may teach graduate
               courses. *)
            let ncourses = Rng.between st.rng 1 2 in
            let taught = ref [] in
            for _ = 1 to ncourses do
              let course = fresh_course (has_doctorate && Rng.chance st.rng 0.4) in
              emit_iri st person.iri (ub "teacherOf") course;
              taught := course :: !taught
            done;
            faculty := (person, !taught, pub_range) :: !faculty;
            if has_doctorate then professors := person :: !professors
          done)
        ranks;
      let faculty = List.rev !faculty in
      let professors = Array.of_list (List.rev !professors) in
      (* Department head: the first full professor. *)
      emit_iri st (Printf.sprintf "%s/FullProfessor0" dept) (ub "headOf") dept;
      let faculty_total = List.length faculty in
      (* Undergraduate students; University 0 gets a floor so the query
         constants (UndergraduateStudent363 in Department1, the q1.4 email
         in Department12) always exist. *)
      let undergrad_ratio = Rng.between st.rng 8 14 in
      let nundergrads =
        let n =
          int_of_float
            (Float.round
               (float_of_int (faculty_total * undergrad_ratio) *. config.density))
        in
        if u = 0 then max 380 n else max 4 n
      in
      let undergrad_courses =
        Array.init (max 1 !course_counter) (fun i ->
            Printf.sprintf "%s/Course%d" dept i)
      in
      let grad_courses =
        Array.init (max 1 !grad_course_counter) (fun i ->
            Printf.sprintf "%s/GraduateCourse%d" dept i)
      in
      let undergrads = Array.make nundergrads "" in
      for i = 0 to nundergrads - 1 do
        let local = Printf.sprintf "UndergraduateStudent%d" i in
        let person = { iri = Printf.sprintf "%s/%s" dept local; local } in
        undergrads.(i) <- person.iri;
        emit_iri st person.iri rdf_type (ub "UndergraduateStudent");
        emit_iri st person.iri (ub "memberOf") dept;
        person_attributes st ~dept_iri:dept ~univ:u ~dept:d person;
        let ntaken = Rng.between st.rng 2 4 in
        for _ = 1 to ntaken do
          emit_iri st person.iri (ub "takesCourse")
            (Rng.pick st.rng undergrad_courses)
        done;
        if Rng.chance st.rng 0.2 && Array.length professors > 0 then
          emit_iri st person.iri (ub "advisor") (Rng.pick st.rng professors).iri
      done;
      (* Graduate students. *)
      let ngrads =
        max 2
          (int_of_float
             (Float.round
                (float_of_int (faculty_total * Rng.between st.rng 3 4)
                *. config.density)))
      in
      let grads = Array.make ngrads "" in
      for i = 0 to ngrads - 1 do
        let local = Printf.sprintf "GraduateStudent%d" i in
        let person = { iri = Printf.sprintf "%s/%s" dept local; local } in
        grads.(i) <- person.iri;
        emit_iri st person.iri rdf_type (ub "GraduateStudent");
        emit_iri st person.iri (ub "memberOf") dept;
        person_attributes st ~dept_iri:dept ~univ:u ~dept:d person;
        emit_iri st person.iri (ub "undergraduateDegreeFrom")
          (random_university st);
        if Array.length professors > 0 then
          emit_iri st person.iri (ub "advisor") (Rng.pick st.rng professors).iri;
        let ntaken = Rng.between st.rng 1 3 in
        for _ = 1 to ntaken do
          emit_iri st person.iri (ub "takesCourse") (Rng.pick st.rng grad_courses)
        done;
        if Rng.chance st.rng 0.25 then
          emit_iri st person.iri (ub "teachingAssistantOf")
            (Rng.pick st.rng undergrad_courses)
      done;
      (* Publications: authored by faculty, co-authored by graduate
         students. *)
      List.iter
        (fun (person, _, (pub_lo, pub_hi)) ->
          let npubs = scaled_count st ~floor:0 pub_lo pub_hi in
          for i = 0 to npubs - 1 do
            let pub = Printf.sprintf "%s/Publication%d" person.iri i in
            emit_iri st pub rdf_type (ub "Publication");
            emit_lit st pub (ub "name") (Printf.sprintf "Publication%d" i);
            emit_iri st pub (ub "publicationAuthor") person.iri;
            let ncoauthors = Rng.int st.rng 3 in
            for _ = 1 to ncoauthors do
              if Array.length grads > 0 then
                emit_iri st pub (ub "publicationAuthor") (Rng.pick st.rng grads)
            done
          done)
        faculty;
      ignore undergrads
    done
  done

let generate config =
  let acc = ref [] in
  iter_triples config ~f:(fun t -> acc := t :: !acc);
  List.rev !acc

let store config =
  Rdf_store.Triple_store.of_iter (fun emit -> iter_triples config ~f:emit)
