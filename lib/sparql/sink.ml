(* Push-based row consumers. A sink is the dual of a bag: instead of a
   producer returning a materialized result, the producer feeds rows into
   the sink one at a time; a stage that needs no further input (e.g. a
   satisfied LIMIT) raises [Stop], which unwinds the producing pipeline.

   Stages are composed outside-in: each combinator wraps an inner sink and
   returns a new one. All wrappers of one pipeline share a single [stages]
   list, so the pipeline's per-stage row accounting can be read off any of
   its sinks (in particular the root the executor keeps). *)

exception Stop

type stage = {
  name : string;
  mutable rows_in : int;
  mutable rows_out : int;
}

type t = {
  feed : Binding.t -> unit;
  finish : unit -> unit;
  stages : stage list ref;
}

(* Every row entering a pipeline crosses this point, making it the
   per-row chaos site for streaming execution. *)
let emit t row =
  Governor.failpoint "sink.push";
  t.feed row

(* [close] flushes buffered stages (sort, top-k). Stages swallow [Stop]
   raised by their downstream during the flush, so [close] itself never
   raises it; it must be called exactly once. *)
let close t = t.finish ()

(* Stages in data-flow order (producer first, terminal last): wrappers
   prepend to the shared list, and pipelines are built terminal-first. *)
(* Stages are prepended at wrap time and the pipeline is composed
   terminal-first, so the raw list is already in data-flow order
   (producer at the head, terminal last). *)
let stages t = !(t.stages)

let new_stage t name =
  let s = { name; rows_in = 0; rows_out = 0 } in
  t.stages := s :: !(t.stages);
  s

let terminal ~name f =
  let s = { name; rows_in = 0; rows_out = 0 } in
  {
    feed =
      (fun row ->
        s.rows_in <- s.rows_in + 1;
        s.rows_out <- s.rows_out + 1;
        f row);
    finish = (fun () -> ());
    stages = ref [ s ];
  }

(* A transparent pass-through that exposes its row count — used by
   producers (e.g. a streamed final BGP) to report cardinalities that are
   no longer observable as a materialized bag length. *)
let counted ~name inner =
  let s = new_stage inner name in
  let sink =
    {
      inner with
      feed =
        (fun row ->
          s.rows_in <- s.rows_in + 1;
          s.rows_out <- s.rows_out + 1;
          inner.feed row);
    }
  in
  (sink, s)

let filter ~name ~f inner =
  let s = new_stage inner name in
  {
    inner with
    feed =
      (fun row ->
        s.rows_in <- s.rows_in + 1;
        if f row then begin
          s.rows_out <- s.rows_out + 1;
          inner.feed row
        end);
  }

(* Projection at emit time: each row is rebuilt with only [cols] kept, so
   downstream stages (DISTINCT in particular) see the projected row. *)
let project ~width ~cols inner =
  let s = new_stage inner "project" in
  {
    inner with
    feed =
      (fun row ->
        s.rows_in <- s.rows_in + 1;
        let fresh = Binding.create ~width in
        List.iter (fun col -> fresh.(col) <- row.(col)) cols;
        s.rows_out <- s.rows_out + 1;
        inner.feed fresh);
  }

(* Streaming DISTINCT: rows pass through on first sight. Rows must not be
   mutated after being emitted (all producers emit fresh arrays). *)
let distinct inner =
  let s = new_stage inner "distinct" in
  let seen = Hashtbl.create 64 in
  {
    inner with
    feed =
      (fun row ->
        s.rows_in <- s.rows_in + 1;
        if not (Hashtbl.mem seen row) then begin
          Hashtbl.add seen row ();
          s.rows_out <- s.rows_out + 1;
          inner.feed row
        end);
  }

(* OFFSET/LIMIT with early termination: [Stop] is raised as soon as the
   last needed row has been forwarded, unwinding the producers. *)
let offset_limit ?(offset = 0) ?limit inner =
  let s = new_stage inner "offset/limit" in
  let seen = ref 0 in
  {
    inner with
    feed =
      (fun row ->
        s.rows_in <- s.rows_in + 1;
        let i = !seen in
        incr seen;
        match limit with
        | Some n ->
            if i >= offset && i < offset + n then begin
              s.rows_out <- s.rows_out + 1;
              inner.feed row
            end;
            if !seen >= offset + n then raise Stop
        | None ->
            if i >= offset then begin
              s.rows_out <- s.rows_out + 1;
              inner.feed row
            end);
  }

(* Bounded top-k for ORDER BY + LIMIT: a worst-first heap of (row, arrival
   sequence) keeps the k smallest under the lexicographic (compare, seq)
   order, which is a total order, so flushing it sorted reproduces exactly
   the first k rows of a stable full sort. Not valid when a DISTINCT sits
   between the sort and the slice (dropping duplicates may promote rows
   beyond the k-th) — the executor falls back to [sort_all] there. *)
let top_k ~compare ~k inner =
  let s = new_stage inner "top-k" in
  let heap = Array.make (max k 1) ([||], 0) in
  let len = ref 0 in
  let seq = ref 0 in
  let lt (r1, s1) (r2, s2) =
    let c = compare r1 r2 in
    if c <> 0 then c < 0 else s1 < s2
  in
  let swap i j =
    let tmp = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- tmp
  in
  let rec sift_up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt heap.(parent) heap.(i) then begin
        swap parent i;
        sift_up parent
      end
    end
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let largest = ref i in
    if l < !len && lt heap.(!largest) heap.(l) then largest := l;
    if r < !len && lt heap.(!largest) heap.(r) then largest := r;
    if !largest <> i then begin
      swap i !largest;
      sift_down !largest
    end
  in
  let feed row =
    s.rows_in <- s.rows_in + 1;
    if k = 0 then raise Stop;
    let item = (row, !seq) in
    incr seq;
    if !len < k then begin
      heap.(!len) <- item;
      incr len;
      sift_up (!len - 1)
    end
    else if lt item heap.(0) then begin
      heap.(0) <- item;
      sift_down 0
    end
  in
  let finish () =
    let items = Array.sub heap 0 !len in
    Array.sort (fun a b -> if lt a b then -1 else if lt b a then 1 else 0) items;
    (try
       Array.iter
         (fun (row, _) ->
           s.rows_out <- s.rows_out + 1;
           inner.feed row)
         items
     with Stop -> ());
    inner.finish ()
  in
  { feed; finish; stages = inner.stages }

(* Buffering ORDER BY (no LIMIT, or DISTINCT in between): rows accumulate
   until [close], then flow downstream stably sorted. *)
let sort_all ~compare inner =
  let s = new_stage inner "sort" in
  let buf = ref [] in
  let feed row =
    s.rows_in <- s.rows_in + 1;
    buf := row :: !buf
  in
  let finish () =
    let rows = Array.of_list (List.rev !buf) in
    Array.stable_sort compare rows;
    (try
       Array.iter
         (fun row ->
           s.rows_out <- s.rows_out + 1;
           inner.feed row)
         rows
     with Stop -> ());
    inner.finish ()
  in
  { feed; finish; stages = inner.stages }
