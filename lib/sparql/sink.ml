(* Push-based row consumers. A sink is the dual of a bag: instead of a
   producer returning a materialized result, the producer feeds rows into
   the sink one at a time; a stage that needs no further input (e.g. a
   satisfied LIMIT) raises [Stop], which unwinds the producing pipeline.

   Stages are composed outside-in: each combinator wraps an inner sink and
   returns a new one. All wrappers of one pipeline share a single [stages]
   list, so the pipeline's per-stage row accounting can be read off any of
   its sinks (in particular the root the executor keeps).

   Parallel-safe sinks: a stage that supports parallel production exposes
   a [fork] — a factory of per-domain *shard* sinks plus a serial [drain]
   that merges what the shards retained back into the serial pipeline.
   Stateless stages (filter, project, counted) shard by wrapping a shard
   of their inner stage; stateful stages (distinct, top-k, sort, limit)
   shard by accumulating locally and replaying the survivors through their
   own serial [feed] at drain time, which re-enters the serial pipeline
   below them. The scheduler creates shards serially (under its own lock)
   before/while workers run and calls [drain] exactly once after all
   workers have quiesced, so shard state needs no synchronization of its
   own; only explicitly shared early-stop counters are atomic. *)

exception Stop

type stage = {
  name : string;
  mutable rows_in : int;
  mutable rows_out : int;
}

type t = {
  feed : Binding.t -> unit;
  finish : unit -> unit;
  stages : stage list ref;
  fork : fork option;
}

and fork = {
  new_shard : unit -> t;
      (* Called serially (the scheduler holds its shard lock): returns a
         shard sink private to one domain. Shards are fed concurrently,
         one domain each, and never closed. *)
  drain : unit -> unit;
      (* Called serially after every shard user has quiesced: merges the
         shards' retained rows into the serial pipeline and resets the
         fork for a possible next parallel phase. Raises [Stop] iff the
         serial pipeline stopped during the merge. *)
}

(* Every row entering a pipeline crosses this point, making it the
   per-row chaos site for streaming execution (shard sinks included:
   workers emit through [emit] too). *)
let emit t row =
  Governor.failpoint "sink.push";
  t.feed row

(* [close] flushes buffered stages (sort, top-k). Stages swallow [Stop]
   raised by their downstream during the flush, so [close] itself never
   raises it; it must be called exactly once. *)
let close t = t.finish ()

(* Stages are prepended at wrap time and the pipeline is composed
   terminal-first, so the raw list is already in data-flow order
   (producer at the head, terminal last). *)
let stages t = !(t.stages)

let new_stage t name =
  let s = { name; rows_in = 0; rows_out = 0 } in
  t.stages := s :: !(t.stages);
  s

let fork t = t.fork
let with_fork t fork = { t with fork = Some fork }

(* A shard: feed-only, never finished, no stage bookkeeping of its own
   (shard counters are merged into the serial stage at drain). *)
let shard_sink feed =
  { feed; finish = (fun () -> ()); stages = ref []; fork = None }

(* Replay the rows the shards retained through the owning stage's serial
   [feed]. A [Stop] from downstream ends the replay (later rows cannot be
   needed) and is re-raised once, after the walk, so the scheduler
   observes the early termination exactly like a serial producer would. *)
let replay_shards ~feed bufs =
  let stopped = ref false in
  List.iter
    (fun rows ->
      List.iter
        (fun row -> if not !stopped then try feed row with Stop -> stopped := true)
        rows)
    bufs;
  if !stopped then raise Stop

let terminal ~name f =
  let s = { name; rows_in = 0; rows_out = 0 } in
  {
    feed =
      (fun row ->
        s.rows_in <- s.rows_in + 1;
        s.rows_out <- s.rows_out + 1;
        f row);
    finish = (fun () -> ());
    stages = ref [ s ];
    fork = None;
  }

(* The fork of a stateless per-row stage: each shard applies the same
   transform in front of a shard of the inner stage, counting into a
   private stage record; drain folds the private counters into the serial
   stage and drains the inner fork. *)
let stateless_fork ~stage:s ~inner ~shard_feed =
  match inner.fork with
  | None -> None
  | Some inner_fork ->
      let locals = ref [] in
      Some
        {
          new_shard =
            (fun () ->
              let local = { name = s.name; rows_in = 0; rows_out = 0 } in
              locals := local :: !locals;
              let inner_shard = inner_fork.new_shard () in
              shard_sink (shard_feed ~local ~inner_shard));
          drain =
            (fun () ->
              List.iter
                (fun l ->
                  s.rows_in <- s.rows_in + l.rows_in;
                  s.rows_out <- s.rows_out + l.rows_out)
                !locals;
              locals := [];
              inner_fork.drain ());
        }

(* A transparent pass-through that exposes its row count — used by
   producers (e.g. a streamed final BGP) to report cardinalities that are
   no longer observable as a materialized bag length. *)
let counted ~name inner =
  let s = new_stage inner name in
  let sink =
    {
      inner with
      feed =
        (fun row ->
          s.rows_in <- s.rows_in + 1;
          s.rows_out <- s.rows_out + 1;
          inner.feed row);
      fork =
        stateless_fork ~stage:s ~inner ~shard_feed:(fun ~local ~inner_shard row ->
            local.rows_in <- local.rows_in + 1;
            local.rows_out <- local.rows_out + 1;
            inner_shard.feed row);
    }
  in
  (sink, s)

let filter ~name ~f inner =
  let s = new_stage inner name in
  {
    inner with
    feed =
      (fun row ->
        s.rows_in <- s.rows_in + 1;
        if f row then begin
          s.rows_out <- s.rows_out + 1;
          inner.feed row
        end);
    fork =
      stateless_fork ~stage:s ~inner ~shard_feed:(fun ~local ~inner_shard row ->
          local.rows_in <- local.rows_in + 1;
          if f row then begin
            local.rows_out <- local.rows_out + 1;
            inner_shard.feed row
          end);
  }

(* Projection at emit time: each row is rebuilt with only [cols] kept, so
   downstream stages (DISTINCT in particular) see the projected row. *)
let project ~width ~cols inner =
  let s = new_stage inner "project" in
  let projected row =
    let fresh = Binding.create ~width in
    List.iter (fun col -> fresh.(col) <- row.(col)) cols;
    fresh
  in
  {
    inner with
    feed =
      (fun row ->
        s.rows_in <- s.rows_in + 1;
        s.rows_out <- s.rows_out + 1;
        inner.feed (projected row));
    fork =
      stateless_fork ~stage:s ~inner ~shard_feed:(fun ~local ~inner_shard row ->
          local.rows_in <- local.rows_in + 1;
          local.rows_out <- local.rows_out + 1;
          inner_shard.feed (projected row));
  }

(* Streaming DISTINCT: rows pass through on first sight. Rows must not be
   mutated after being emitted (all producers emit fresh arrays).

   Sharded: each domain deduplicates against a private hash set and keeps
   its locally-first-seen rows in arrival order; drain replays them
   through the serial [feed], whose global set removes cross-domain
   duplicates. Same surviving multiset as the serial order, because a row
   survives iff its value was never seen before — independent of which
   shard saw it first. *)
let distinct inner =
  let s = new_stage inner "distinct" in
  let seen = Hashtbl.create 64 in
  let feed row =
    s.rows_in <- s.rows_in + 1;
    if not (Hashtbl.mem seen row) then begin
      Hashtbl.add seen row ();
      s.rows_out <- s.rows_out + 1;
      inner.feed row
    end
  in
  let fork =
    let shards = ref [] in
    Some
      {
        new_shard =
          (fun () ->
            let local_seen = Hashtbl.create 64 in
            let buf = ref [] in
            shards := buf :: !shards;
            shard_sink (fun row ->
                if not (Hashtbl.mem local_seen row) then begin
                  Hashtbl.add local_seen row ();
                  buf := row :: !buf
                end));
        drain =
          (fun () ->
            let bufs = List.rev_map (fun buf -> List.rev !buf) !shards in
            shards := [];
            replay_shards ~feed bufs);
      }
  in
  { inner with feed; fork }

(* OFFSET/LIMIT with early termination: [Stop] is raised as soon as the
   last needed row has been forwarded, unwinding the producers.

   Sharded: every shard buffers the rows it is fed, and a shared atomic
   counts rows reaching the (sharded) stage across all domains; once that
   count covers [offset + limit], the feeding worker raises [Stop], which
   the scheduler turns into a cross-domain stop at the other workers' next
   morsel boundary. The buffers jointly hold at least the needed window
   (plus bounded overshoot), so the drain-time replay through the serial
   [feed] reconciles the per-domain counts against the one true budget and
   forwards exactly the window. *)
let offset_limit ?(offset = 0) ?limit inner =
  let s = new_stage inner "offset/limit" in
  let seen = ref 0 in
  let feed row =
    s.rows_in <- s.rows_in + 1;
    let i = !seen in
    incr seen;
    match limit with
    | Some n ->
        if i >= offset && i < offset + n then begin
          s.rows_out <- s.rows_out + 1;
          inner.feed row
        end;
        if !seen >= offset + n then raise Stop
    | None ->
        if i >= offset then begin
          s.rows_out <- s.rows_out + 1;
          inner.feed row
        end
  in
  let fork =
    let produced = Atomic.make !seen in
    let shards = ref [] in
    Some
      {
        new_shard =
          (fun () ->
            let buf = ref [] in
            shards := buf :: !shards;
            shard_sink (fun row ->
                buf := row :: !buf;
                match limit with
                | Some n ->
                    if Atomic.fetch_and_add produced 1 + 1 >= offset + n then
                      raise Stop
                | None -> ()));
        drain =
          (fun () ->
            let bufs = List.rev_map (fun buf -> List.rev !buf) !shards in
            shards := [];
            replay_shards ~feed bufs);
      }
  in
  { inner with feed; fork }

(* A bounded worst-first heap of (row, arrival seq) under the
   lexicographic (compare, seq) order — a total order, so the k smallest
   items are exactly the first k rows of a stable full sort. Shared by the
   serial top-k stage and its per-domain shards. *)
module Bounded_heap = struct
  type item = Binding.t * int

  type h = {
    arr : item array;
    mutable len : int;
    mutable seq : int;
    lt : item -> item -> bool;
    k : int;
  }

  let create ~lt ~k = { arr = Array.make (max k 1) ([||], 0); len = 0; seq = 0; lt; k }

  let swap h i j =
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.lt h.arr.(parent) h.arr.(i) then begin
        swap h parent i;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let largest = ref i in
    if l < h.len && h.lt h.arr.(!largest) h.arr.(l) then largest := l;
    if r < h.len && h.lt h.arr.(!largest) h.arr.(r) then largest := r;
    if !largest <> i then begin
      swap h i !largest;
      sift_down h !largest
    end

  let insert h row =
    let item = (row, h.seq) in
    h.seq <- h.seq + 1;
    if h.len < h.k then begin
      h.arr.(h.len) <- item;
      h.len <- h.len + 1;
      sift_up h (h.len - 1)
    end
    else if h.lt item h.arr.(0) then begin
      h.arr.(0) <- item;
      sift_down h 0
    end

  (* Retained items, sorted ascending under the heap's total order. *)
  let sorted_items h =
    let items = Array.sub h.arr 0 h.len in
    Array.sort (fun a b -> if h.lt a b then -1 else if h.lt b a then 1 else 0) items;
    items

  let rows h = Array.to_list (Array.map fst (sorted_items h))
end

(* Streaming ungrouped aggregation: [push] folds each arriving row into
   the caller's accumulators; [flush] computes the aggregate row(s) and
   emits them downstream at close (an ungrouped aggregate produces output
   even over zero input rows). No fork: the fold order of order-sensitive
   accumulators (float sums, DISTINCT collection) must match the
   materialized path's, so the scheduler drives this pipeline serially. *)
let aggregate ~name ~push ~flush inner =
  let s = new_stage inner name in
  let feed row =
    s.rows_in <- s.rows_in + 1;
    push row
  in
  let finish () =
    (try
       flush (fun row ->
           s.rows_out <- s.rows_out + 1;
           inner.feed row)
     with Stop -> ());
    inner.finish ()
  in
  { feed; finish; stages = inner.stages; fork = None }

(* Bounded top-k for ORDER BY + LIMIT: keeps the k smallest rows under
   (compare, arrival seq); flushing sorted on [close] reproduces exactly
   the first k rows of a stable full sort. Not valid when a DISTINCT sits
   between the sort and the slice (dropping duplicates may promote rows
   beyond the k-th) — the executor falls back to [sort_all] there.

   Sharded: each domain keeps its own k-bounded heap (memory stays
   O(domains * k), not O(rows)); drain replays every locally retained row
   through the serial [feed], whose global heap selects the final k. A row
   outside its shard's local top-k cannot be in the global top-k, so
   dropping it early is lossless; arrival seqs are reassigned at drain,
   which preserves the result multiset because rows tied under [compare]
   differ only in seq — and seq breaks ties deterministically but any
   consistent assignment selects the same rows when ties are identical
   rows (the only case a full-key ORDER BY produces). *)
let top_k ~compare ~k inner =
  let s = new_stage inner "top-k" in
  let lt (r1, s1) (r2, s2) =
    let c = compare r1 r2 in
    if c <> 0 then c < 0 else s1 < s2
  in
  let heap = Bounded_heap.create ~lt ~k in
  let feed row =
    s.rows_in <- s.rows_in + 1;
    if k = 0 then raise Stop;
    Bounded_heap.insert heap row
  in
  let finish () =
    (try
       Array.iter
         (fun (row, _) ->
           s.rows_out <- s.rows_out + 1;
           inner.feed row)
         (Bounded_heap.sorted_items heap)
     with Stop -> ());
    inner.finish ()
  in
  let fork =
    let shards = ref [] in
    Some
      {
        new_shard =
          (fun () ->
            let local = Bounded_heap.create ~lt ~k in
            shards := local :: !shards;
            shard_sink (fun row ->
                if k = 0 then raise Stop;
                Bounded_heap.insert local row));
        drain =
          (fun () ->
            let bufs = List.rev_map Bounded_heap.rows !shards in
            shards := [];
            replay_shards ~feed bufs);
      }
  in
  { feed; finish; stages = inner.stages; fork }

(* Buffering ORDER BY (no LIMIT, or DISTINCT in between): rows accumulate
   until [close], then flow downstream stably sorted. Sharded by plain
   per-domain buffers replayed into the serial buffer at drain — the sort
   itself happens once, at close. *)
let sort_all ~compare inner =
  let s = new_stage inner "sort" in
  let buf = ref [] in
  let feed row =
    s.rows_in <- s.rows_in + 1;
    buf := row :: !buf
  in
  let finish () =
    let rows = Array.of_list (List.rev !buf) in
    Array.stable_sort compare rows;
    (try
       Array.iter
         (fun row ->
           s.rows_out <- s.rows_out + 1;
           inner.feed row)
         rows
     with Stop -> ());
    inner.finish ()
  in
  let fork =
    let shards = ref [] in
    Some
      {
        new_shard =
          (fun () ->
            let local = ref [] in
            shards := local :: !shards;
            shard_sink (fun row -> local := row :: !local));
        drain =
          (fun () ->
            let bufs = List.rev_map (fun local -> List.rev !local) !shards in
            shards := [];
            replay_shards ~feed bufs);
      }
  in
  { feed; finish; stages = inner.stages; fork }
