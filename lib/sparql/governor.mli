(** Per-execution resource governance.

    A {e ticket} ({!t}) carries everything one query execution may
    consume: an atomic row budget (the paper's memory-limit analogue —
    base runs out of memory on 13 of 24 LUBM queries, and the bench
    observes that as a recoverable condition), an optional wall-clock
    deadline, a cancellation flag settable from another domain, and a
    deterministic fault-injection schedule for chaos testing.

    Tickets replace the historical process-global budget/deadline
    atomics: concurrent executions each govern themselves, so a tight
    budget on one session can no longer kill an unlimited query on
    another. The ambient ticket is domain-local; executors install it
    with {!with_ticket} and the engine's domain pool re-installs the
    submitting domain's ticket inside each worker, so parallel workers
    charge the same ticket as the serial path. *)

(** Why an execution was killed. *)
type failure =
  | Out_of_budget  (** the row budget was exhausted *)
  | Timeout  (** the wall-clock deadline passed *)
  | Cancelled  (** {!cancel} was called from another domain *)
  | Injected_fault of string  (** a chaos-schedule fault fired at this site *)

(** Raised by {!charge}/{!tick}/{!failpoint} to kill the governed
    execution; executors catch it at the execution boundary and report
    the carried {!failure}. *)
exception Kill of failure

val failure_name : failure -> string

(** [transient f] — whether a retry with a fresh ticket could plausibly
    succeed. True for everything except [Cancelled]. *)
val transient : failure -> bool

(** {1 Fault schedules}

    A fault fires on the [after]-th hit of its failpoint site, exactly
    once — including across domains, and across retry attempts sharing
    the same fault values (the countdown is spent, so the retry runs
    clean). *)

type fault

val fault : site:string -> after:int -> fault

(** [fault_fired f] — whether [f]'s countdown has been consumed. *)
val fault_fired : fault -> bool

(** [seeded_faults ~seed ~after_max sites] — a reproducible schedule: one
    fault per site, hit indices drawn deterministically from [seed] in
    [1, after_max]. *)
val seeded_faults : seed:int -> after_max:int -> string list -> fault list

(** The failpoint sites compiled into the engine, in rough data-flow
    order: ["scan"] (pattern scans, both engines), ["extend"] (WCO
    vertex extension), ["probe"] (hash-partition probe loops),
    ["sink.push"] (every row entering a sink pipeline), and
    ["cache.insert"] (session plan-cache insertion). *)
val all_failpoints : string list

(** {1 Tickets} *)

type t

(** [create ?row_budget ?deadline ?faults ()] — a fresh ticket. [deadline]
    is [(at, now)]: the execution is killed once [now () > at]; the clock
    is injected so this library stays clock-free. Omitted fields mean
    unlimited/never. *)
val create :
  ?row_budget:int ->
  ?deadline:float * (unit -> float) ->
  ?faults:fault list ->
  unit ->
  t

(** [unlimited ()] — no budget, no deadline, no faults (still
    cancellable). *)
val unlimited : unit -> t

(** [cancel t] — ask the execution(s) governed by [t] to stop; safe from
    any domain. Observed at the next deadline-stride check, so kill
    latency is bounded by {!stride} row productions. *)
val cancel : t -> unit

val is_cancelled : t -> bool

(** [pushed t] — rows produced (materialized or streamed) under [t]: the
    total-intermediate-size metric, per execution. *)
val pushed : t -> int

val remaining_budget : t -> int

(** [governed t] — whether [t] carries any finite limit or fault
    schedule. *)
val governed : t -> bool

(** {1 The ambient ticket} *)

(** [current ()] — the installing execution's ticket, or the calling
    domain's default unlimited ticket. *)
val current : unit -> t

(** [with_ticket t f] — run [f] with [t] as the ambient ticket, restoring
    the previous ticket on every exit path. *)
val with_ticket : t -> (unit -> 'a) -> 'a

(** {1 Accounting}

    Called on producing-operator hot paths. [charge] (budget + row
    counter) runs on every produced row; [tick] (cancellation + deadline)
    is designed to be called every {!stride} productions — callers keep
    the stride counter per bag, so the check still triggers
    deterministically when parallel workers push into worker-local
    bags. *)

val stride : int

val charge : t -> unit

val tick : t -> unit

(** [charge_stream t] — [charge] plus a strided [tick] using the ticket's
    own serial stride counter; for streaming producers that have no bag
    to hang a stride counter on. Serial sink-driving code only. *)
val charge_stream : t -> unit

(** [charge_parallel t] — [charge] plus a strided [tick] through the
    ticket's shared atomic stride counter: safe to call from any domain,
    used by producers emitting into shard sinks from stolen morsels. *)
val charge_parallel : t -> unit

(** {1 Fault injection} *)

(** [failpoint site] — kill the current execution with
    [Injected_fault site] if the ambient ticket's schedule says so. One
    atomic load when no schedule is armed anywhere in the process. *)
val failpoint : string -> unit
