type t = {
  width : int;
  mutable rows : Binding.t array;
  mutable len : int;
  (* Pushes since the last cancellation/deadline check. Per-bag (not
     global) so the check still triggers deterministically when several
     domains push into their own worker-local bags concurrently: a global
     counter's [mod stride = 0] tick can be skipped under interleaving. *)
  mutable unchecked : int;
  (* The governor ticket ambient at creation time, cached so the per-push
     hot path does not pay a domain-local lookup. Every bag of one
     execution is created under that execution's ticket (worker-local bags
     are created inside the pool's re-installed scope), so budget
     accounting is per query, not per process. *)
  gov : Governor.t;
}

(* [capacity] preallocates the row array — morsel workers size their
   local bags to the expected morsel output so the first few pushes do
   not pay doubling copies. *)
let create_sized ~capacity ~width =
  {
    width;
    rows = (if capacity <= 0 then [||] else Array.make capacity [||]);
    len = 0;
    unchecked = 0;
    gov = Governor.current ();
  }

let create ~width = create_sized ~capacity:0 ~width

(* Append without budget accounting — for rows whose production was
   already charged (worker-part concatenation, the terminal sink of a
   streaming pipeline, [sort]'s reordering). *)
let append bag row =
  if bag.len = Array.length bag.rows then begin
    let capacity = max 8 (2 * bag.len) in
    let fresh = Array.make capacity [||] in
    Array.blit bag.rows 0 fresh 0 bag.len;
    bag.rows <- fresh
  end;
  bag.rows.(bag.len) <- row;
  bag.len <- bag.len + 1

let push bag row =
  Governor.charge bag.gov;
  bag.unchecked <- bag.unchecked + 1;
  if bag.unchecked >= Governor.stride then begin
    bag.unchecked <- 0;
    Governor.tick bag.gov
  end;
  append bag row

(* Charge the production of one streamed row: the same budget/deadline
   accounting as [push], without materializing anywhere. Streaming
   producers call it once per row emitted into a sink pipeline, so the
   budget (the paper's OOM analogue), the timeout and the produced-row
   counter keep the same meaning whether an operator materializes or
   streams. Only ever called from the serial sink-driving domain, so the
   ticket's serial stride counter applies. *)
let account () = Governor.charge_stream (Governor.current ())

let unit ~width =
  let bag = create ~width in
  push bag (Binding.create ~width);
  bag

let of_rows ~width rows =
  let bag = create ~width in
  List.iter (push bag) rows;
  bag

let width bag = bag.width
let length bag = bag.len
let is_empty bag = bag.len = 0

let get bag i =
  if i < 0 || i >= bag.len then invalid_arg "Bag.get: index out of range";
  bag.rows.(i)

let iter bag ~f =
  for i = 0 to bag.len - 1 do
    f bag.rows.(i)
  done

let fold bag ~init ~f =
  let acc = ref init in
  iter bag ~f:(fun row -> acc := f !acc row);
  !acc

let to_list bag = List.rev (fold bag ~init:[] ~f:(fun acc row -> row :: acc))

(* Concatenation of worker-local bags after a parallel step. The rows were
   budget-accounted when first pushed into their part, so this is a plain
   blit, not a re-push. *)
let concat ~width parts =
  let total = List.fold_left (fun acc part -> acc + part.len) 0 parts in
  let result =
    {
      width;
      rows = Array.make total [||];
      len = 0;
      unchecked = 0;
      gov = Governor.current ();
    }
  in
  List.iter
    (fun part ->
      Array.blit part.rows 0 result.rows result.len part.len;
      result.len <- result.len + part.len)
    parts;
  result

(* {2 Parallel execution hook}

   The engine layer owns the domain pool (it must not depend on this
   library's clients, and this library cannot depend on the engine), so
   parallelism is injected: when a runner is installed, the binary
   operators below fan the probe side out across its workers, each pushing
   into a thread-local part, and concatenate. When absent — the default —
   every code path is the original serial one. *)

type parallel_runner = {
  run :
    'acc.
    n:int -> create:(unit -> 'acc) -> body:('acc -> int -> unit) -> 'acc list;
  run_stream : n:int -> sink:Sink.t -> body:(Sink.t -> int -> unit) -> unit;
}

let parallel_runner : parallel_runner option ref = ref None
let set_parallel_runner r = parallel_runner := r

(* Probe sides smaller than this are not worth the fan-out. *)
let parallel_threshold = 512

let bound_flags bag =
  let seen = Array.make bag.width false in
  iter bag ~f:(fun row ->
      for col = 0 to bag.width - 1 do
        if Binding.is_bound row col then seen.(col) <- true
      done);
  seen

let bound_columns bag =
  let seen = bound_flags bag in
  let acc = ref [] in
  for col = bag.width - 1 downto 0 do
    if seen.(col) then acc := col :: !acc
  done;
  !acc

let universal_columns bag =
  if bag.len = 0 then []
  else begin
    let all = Array.make bag.width true in
    iter bag ~f:(fun row ->
        for col = 0 to bag.width - 1 do
          if not (Binding.is_bound row col) then all.(col) <- false
        done);
    let acc = ref [] in
    for col = bag.width - 1 downto 0 do
      if all.(col) then acc := col :: !acc
    done;
    !acc
  end

let distinct_values bag ~col =
  let values = Hashtbl.create 64 in
  iter bag ~f:(fun row ->
      if Binding.is_bound row col then Hashtbl.replace values row.(col) ());
  values

(* Columns bound somewhere in both bags: two O(n·width) marking passes and
   one O(width) intersection (the former List.mem scan was O(width²)). *)
let shared_columns b1 b2 =
  let s1 = bound_flags b1 and s2 = bound_flags b2 in
  let acc = ref [] in
  for col = b1.width - 1 downto 0 do
    if col < b2.width && s1.(col) && s2.(col) then acc := col :: !acc
  done;
  !acc

(* A hash partition of [bag] on [cols]: rows with all [cols] bound go into
   buckets; rows missing some key column go into [wild] and must be checked
   by scan. Read-only once built, so several domains may probe it
   concurrently. *)
type partition = {
  buckets : (int, Binding.t list ref) Hashtbl.t;
  mutable wild : Binding.t list;
  cols : int list;
}

let partition bag cols =
  (* The chokepoint of every hash-probed binary operator (join, minus,
     semijoin, left outer join, join_sink): one failpoint covers the whole
     probe family. *)
  Governor.failpoint "probe";
  let part = { buckets = Hashtbl.create (max 16 bag.len); wild = []; cols } in
  iter bag ~f:(fun row ->
      if Binding.all_bound row cols then begin
        let key = Binding.hash_on row cols in
        match Hashtbl.find_opt part.buckets key with
        | Some bucket -> bucket := row :: !bucket
        | None -> Hashtbl.add part.buckets key (ref [ row ])
      end
      else part.wild <- row :: part.wild);
  part

(* Apply [f] to every row of the partition compatible with [row], without
   materializing the intermediate match list. *)
let iter_compatible part row ~f =
  (if Binding.all_bound row part.cols then (
     match Hashtbl.find_opt part.buckets (Binding.hash_on row part.cols) with
     | Some bucket ->
         List.iter
           (fun other ->
             if
               Binding.equal_on row other part.cols
               && Binding.compatible row other
             then f other)
           !bucket
     | None -> ())
   else
     (* A probe row missing key columns can match any bucket: scan all. *)
     Hashtbl.iter
       (fun _ bucket ->
         List.iter
           (fun other -> if Binding.compatible row other then f other)
           !bucket)
       part.buckets);
  List.iter (fun other -> if Binding.compatible row other then f other) part.wild

exception Found

(* Whether some row of the partition is compatible with [row] and satisfies
   [pred]. *)
let exists_compatible part row ~pred =
  try
    iter_compatible part row ~f:(fun other -> if pred other then raise Found);
    false
  with Found -> true

(* Fan a probe loop out across the pool when one is installed and the probe
   side is large enough; otherwise run it serially into a single bag. *)
let probe_into ~width probe ~emit =
  match !parallel_runner with
  | Some runner when probe.len >= parallel_threshold ->
      concat ~width
        (runner.run ~n:probe.len
           ~create:(fun () -> create ~width)
           ~body:(fun out i -> emit out probe.rows.(i)))
  | _ ->
      let result = create ~width in
      iter probe ~f:(emit result);
      result

(* {2 Sink-driven operator variants}

   Each [*_into] operator streams its output rows into a sink instead of
   materializing a result bag. Accounting rule: a row is charged exactly
   once, at the operator boundary where it is produced — [account] on the
   serial path, [emit_charged] from a morsel worker; shard-drain replays
   do not re-charge. [Sink.Stop] raised by the sink aborts the serial
   probe loop, and under a parallel runner a [Stop] in any shard stops
   the other domains at their next morsel boundary — the
   early-termination payoff. *)

let emit_accounted sink row =
  account ();
  Sink.emit sink row

(* The cross-domain variant: charge through the ticket's atomic stride
   counter instead of the serial one. Morsel workers emitting into shard
   sinks call this once per produced row. *)
let emit_charged sink row =
  Governor.charge_parallel (Governor.current ());
  Sink.emit sink row

(* The materializing terminal: rows were charged at production, so the
   final append is a plain blit like [concat]. Sharded into per-domain
   bags blitted into [bag] (in shard-creation order) at drain. *)
let sink bag =
  let base = Sink.terminal ~name:"materialize" (fun row -> append bag row) in
  let shards = ref [] in
  Sink.with_fork base
    {
      Sink.new_shard =
        (fun () ->
          let part = create ~width:bag.width in
          shards := part :: !shards;
          Sink.terminal ~name:"materialize-shard" (fun row -> append part row));
      drain =
        (fun () ->
          let parts = List.rev !shards in
          shards := [];
          List.iter (fun part -> iter part ~f:(append bag)) parts);
    }

(* Re-emit a materialized bag into a sink across an operator boundary.
   Charged, mirroring the cost-proxy re-push of the materializing [union]
   (the rows cross into a new operator's output). *)
let replay bag ~sink = iter bag ~f:(fun row -> emit_accounted sink row)

(* Pool composition for sink-driving probe loops, mirroring [probe_into]:
   with a runner installed and a large probe side, the probe rows are
   morselized across domains and every worker emits straight into its own
   shard of the sink (charged through the ticket's atomic stride). A
   [Sink.Stop] raised inside a worker becomes a cross-domain stop at the
   other workers' next morsel boundary, and the runner re-raises it here
   after the shards have drained — so a downstream LIMIT terminates remote
   workers early instead of letting them materialize bags that a serial
   replay would then mostly throw away. *)
let stream_probe ~width:_ probe ~emit ~sink =
  match !parallel_runner with
  | Some runner when probe.len >= parallel_threshold ->
      runner.run_stream ~n:probe.len ~sink ~body:(fun shard i ->
          emit (emit_charged shard) probe.rows.(i))
  | _ -> iter probe ~f:(fun row -> emit (emit_accounted sink) row)

let join b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.join: width mismatch";
  (* Build on the smaller side; probing preserves Ω1-major order only up to
     bag equality, which is all the semantics requires. *)
  let build, probe = if b1.len <= b2.len then (b1, b2) else (b2, b1) in
  let part = partition build (shared_columns b1 b2) in
  probe_into ~width:b1.width probe ~emit:(fun out row ->
      iter_compatible part row ~f:(fun other ->
          push out (Binding.merge row other)))

let join_into b1 b2 ~sink =
  if b1.width <> b2.width then invalid_arg "Bag.join_into: width mismatch";
  let build, probe = if b1.len <= b2.len then (b1, b2) else (b2, b1) in
  let part = partition build (shared_columns b1 b2) in
  stream_probe ~width:b1.width probe ~sink ~emit:(fun push_row row ->
      iter_compatible part row ~f:(fun other ->
          push_row (Binding.merge row other)))

(* A row-at-a-time join for producers that stream their probe side (the
   hash engine's final pattern scan): partition the build side once, then
   probe each streamed row as it arrives. [probe_cols] are columns the
   probe rows may bind; key columns are their intersection with the build
   side's domain ([iter_compatible] stays correct even for probe rows
   missing key columns — they scan all buckets). [probe_merged] exposes
   the emit-parameterized form so the morsel scheduler can probe the same
   read-only partition from several domains, each into its own shard. *)
let probe_merged build ~probe_cols =
  let build_cols = bound_columns build in
  let cols = List.filter (fun col -> List.mem col build_cols) probe_cols in
  let part = partition build cols in
  fun ~emit row ->
    iter_compatible part row ~f:(fun other -> emit (Binding.merge row other))

let join_sink build ~probe_cols ~sink =
  let probe = probe_merged build ~probe_cols in
  fun row -> probe ~emit:(emit_accounted sink) row

let union b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.union: width mismatch";
  let result = create ~width:b1.width in
  (* The re-push of both inputs is intentional: union's output rows cross
     an operator boundary, so each is charged as a cost proxy (matching
     the streamed [replay] of a branch into a sink). *)
  iter b1 ~f:(push result);
  iter b2 ~f:(push result);
  result

let minus b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.minus: width mismatch";
  let part = partition b2 (shared_columns b1 b2) in
  probe_into ~width:b1.width b1 ~emit:(fun out row ->
      if not (exists_compatible part row ~pred:(fun _ -> true)) then
        push out row)

let minus_into b1 b2 ~sink =
  if b1.width <> b2.width then invalid_arg "Bag.minus_into: width mismatch";
  let part = partition b2 (shared_columns b1 b2) in
  stream_probe ~width:b1.width b1 ~sink ~emit:(fun push_row row ->
      if not (exists_compatible part row ~pred:(fun _ -> true)) then
        push_row row)

(* SPARQL 1.1 MINUS: μ1 is removed only by a compatible μ2 with at least
   one *shared bound* variable (disjoint-domain mappings do not exclude —
   the subtlety distinguishing MINUS from the Section 3 ∖ operator). *)
let overlapping r1 r2 =
  let n = Array.length r1 in
  let rec go i =
    i < n
    && ((r1.(i) <> Binding.unbound && r2.(i) <> Binding.unbound) || go (i + 1))
  in
  go 0

let sparql_minus b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.sparql_minus: width mismatch";
  let result = create ~width:b1.width in
  let part = partition b2 (shared_columns b1 b2) in
  iter b1 ~f:(fun row ->
      if not (exists_compatible part row ~pred:(overlapping row)) then
        push result row);
  result

let sparql_minus_into b1 b2 ~sink =
  if b1.width <> b2.width then
    invalid_arg "Bag.sparql_minus_into: width mismatch";
  let part = partition b2 (shared_columns b1 b2) in
  iter b1 ~f:(fun row ->
      if not (exists_compatible part row ~pred:(overlapping row)) then
        emit_accounted sink row)

(* Row comparison by (column, descending) keys; unbound sorts before any
   bound value (as in SPARQL's ORDER BY). Shared by [sort] and the
   streaming sort/top-k stages the executor builds. *)
let row_compare ~keys ~compare_ids r1 r2 =
  let rec go = function
    | [] -> 0
    | (col, descending) :: rest ->
        let v1 = r1.(col) and v2 = r2.(col) in
        let c =
          match (v1 = Binding.unbound, v2 = Binding.unbound) with
          | true, true -> 0
          | true, false -> -1
          | false, true -> 1
          | false, false -> compare_ids v1 v2
        in
        let c = if descending then -c else c in
        if c <> 0 then c else go rest
  in
  go keys

(* Stable sort. A reordering of already-accounted rows, so the result is
   rebuilt by blit like [concat] — re-pushing here would charge the budget
   twice for the same materialized rows. *)
let sort bag ~keys ~compare_ids =
  let rows = Array.init bag.len (fun i -> bag.rows.(i)) in
  Array.stable_sort (row_compare ~keys ~compare_ids) rows;
  { width = bag.width; rows; len = bag.len; unchecked = 0; gov = bag.gov }

let semijoin b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.semijoin: width mismatch";
  let result = create ~width:b1.width in
  let part = partition b2 (shared_columns b1 b2) in
  iter b1 ~f:(fun row ->
      if exists_compatible part row ~pred:(fun _ -> true) then push result row);
  result

let left_outer_join b1 b2 =
  if b1.width <> b2.width then invalid_arg "Bag.left_outer_join: width mismatch";
  let part = partition b2 (shared_columns b1 b2) in
  probe_into ~width:b1.width b1 ~emit:(fun out row ->
      let matched = ref false in
      iter_compatible part row ~f:(fun other ->
          matched := true;
          push out (Binding.merge row other));
      if not !matched then push out row)

let left_outer_join_into b1 b2 ~sink =
  if b1.width <> b2.width then
    invalid_arg "Bag.left_outer_join_into: width mismatch";
  let part = partition b2 (shared_columns b1 b2) in
  stream_probe ~width:b1.width b1 ~sink ~emit:(fun push_row row ->
      let matched = ref false in
      iter_compatible part row ~f:(fun other ->
          matched := true;
          push_row (Binding.merge row other));
      if not !matched then push_row row)

(* The pushes in [filter], [project] and [dedup] below are intentional
   cost-proxy charges: each selected/rebuilt row is a new operator output
   (matching the [account] their streaming counterparts perform). *)

let filter bag ~f =
  let result = create ~width:bag.width in
  iter bag ~f:(fun row -> if f row then push result row);
  result

let filter_into bag ~f ~sink =
  iter bag ~f:(fun row -> if f row then emit_accounted sink row)

let project bag ~cols =
  let result = create ~width:bag.width in
  iter bag ~f:(fun row ->
      let fresh = Binding.create ~width:bag.width in
      List.iter (fun col -> fresh.(col) <- row.(col)) cols;
      push result fresh);
  result

let project_into bag ~cols ~sink =
  iter bag ~f:(fun row ->
      let fresh = Binding.create ~width:bag.width in
      List.iter (fun col -> fresh.(col) <- row.(col)) cols;
      emit_accounted sink fresh)

let dedup bag =
  let seen = Hashtbl.create (max 16 bag.len) in
  let result = create ~width:bag.width in
  iter bag ~f:(fun row ->
      if not (Hashtbl.mem seen row) then begin
        Hashtbl.add seen row ();
        push result row
      end);
  result

(* Multiset equality via counting. *)
let equal_as_bags b1 b2 =
  b1.width = b2.width && b1.len = b2.len
  &&
  let counts = Hashtbl.create (max 16 b1.len) in
  iter b1 ~f:(fun row ->
      let c = Option.value (Hashtbl.find_opt counts row) ~default:0 in
      Hashtbl.replace counts row (c + 1));
  try
    iter b2 ~f:(fun row ->
        match Hashtbl.find_opt counts row with
        | Some c when c > 0 -> Hashtbl.replace counts row (c - 1)
        | _ -> raise Exit);
    true
  with Exit -> false

let pp table fmt bag =
  Format.fprintf fmt "@[<v>";
  iter bag ~f:(fun row ->
      Format.fprintf fmt "{";
      let first = ref true in
      Array.iteri
        (fun col v ->
          if v <> Binding.unbound then begin
            if not !first then Format.fprintf fmt ", ";
            first := false;
            Format.fprintf fmt "?%s=%d" (Vartable.name table col) v
          end)
        row;
      Format.fprintf fmt "}@ ");
  Format.fprintf fmt "@]"
