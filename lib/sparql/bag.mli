(** Bags (multisets) of mappings, with the four operators of Section 3:
    join ⋈, bag union ∪_bag, difference ∖ (anti-join on compatibility) and
    left outer join ⟕. All operators preserve duplicates (bag semantics).

    Every bag in a query shares the same width (the query's {!Vartable}
    size); a row may leave any column unbound, so UNION branches and
    OPTIONAL extensions with different domains coexist. *)

type t

(** {1 Resource accounting}

    Every row production (a {!push} into a bag, or an {!account} for a
    streamed row) is charged against the ambient {!Governor} ticket: the
    ticket's row budget is the analogue of the paper's memory limit (base
    runs out of memory on 13 of 24 queries; the bench harness must observe
    that as a recoverable condition, not an actual OOM), and its deadline
    and cancellation flag are checked on a per-bag stride so the checks
    still trigger deterministically when parallel workers push into
    worker-local bags. A bag captures the ticket ambient at {!create}
    time; exhaustion raises [Governor.Kill]. With no ticket installed,
    accounting runs against the calling domain's unlimited default. *)

(** [account ()] charges the production of one streamed row against the
    ambient ticket: the same budget/deadline/counter accounting as
    {!push}, without materializing. Streaming producers call it once per
    row emitted into a sink pipeline, so resource limits mean the same
    thing whether an operator materializes or streams. Serial sink-driving
    code only. *)
val account : unit -> unit

(** {1 Construction} *)

(** [create ~width] — an empty bag. *)
val create : width:int -> t

(** [create_sized ~capacity ~width] — an empty bag whose row array is
    preallocated to [capacity] (morsel workers size local bags to the
    expected morsel output, avoiding early doubling copies). *)
val create_sized : capacity:int -> width:int -> t

(** [unit ~width] holds exactly one all-unbound mapping — the value of the
    empty group pattern and the join identity. *)
val unit : width:int -> t

val push : t -> Binding.t -> unit

val of_rows : width:int -> Binding.t list -> t

(** [concat ~width parts] concatenates worker-local bags produced by a
    parallel step. The rows were budget-accounted when first pushed into
    their part, so concatenation itself consumes no budget. *)
val concat : width:int -> t list -> t

(** {1 Access} *)

val width : t -> int
val length : t -> int
val is_empty : t -> bool
val get : t -> int -> Binding.t
val iter : t -> f:(Binding.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Binding.t -> 'a) -> 'a
val to_list : t -> Binding.t list

(** [bound_columns bag] is the sorted list of columns bound in at least one
    row — the bag's (possible) domain, used to find join keys. *)
val bound_columns : t -> int list

(** [universal_columns bag] is the sorted list of columns bound in *every*
    row — the only columns whose value sets may soundly serve as candidate
    results (a row leaving the column unbound is compatible with any
    value). Empty for the empty bag. *)
val universal_columns : t -> int list

(** [distinct_values bag ~col] is the set of distinct bound values in
    [col], as a hashtable used for candidate pruning. *)
val distinct_values : t -> col:int -> (int, unit) Hashtbl.t

(** {1 The Section 3 operators} *)

(** [join b1 b2] — Ω1 ⋈ Ω2. *)
val join : t -> t -> t

(** [union b1 b2] — Ω1 ∪_bag Ω2. *)
val union : t -> t -> t

(** [minus b1 b2] — Ω1 ∖ Ω2 = mappings of Ω1 compatible with no mapping of
    Ω2. *)
val minus : t -> t -> t

(** [semijoin b1 b2] — Ω1 ⋉ Ω2: mappings of Ω1 compatible with at least
    one mapping of Ω2 (the pruning primitive of LBR's two-pass scans). *)
val semijoin : t -> t -> t

(** [sparql_minus b1 b2] — SPARQL 1.1 MINUS: μ1 survives unless some μ2 is
    compatible *and* shares at least one bound variable with it
    (disjoint-domain mappings never exclude). *)
val sparql_minus : t -> t -> t

(** [sort bag ~keys ~compare_ids] — stable sort by [(column, descending)]
    keys; unbound precedes every bound value; bound values compare via
    [compare_ids] (typically term order through the dictionary). *)
val sort : t -> keys:(int * bool) list -> compare_ids:(int -> int -> int) -> t

(** [left_outer_join b1 b2] — Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪_bag (Ω1 ∖ Ω2). *)
val left_outer_join : t -> t -> t

(** {1 Other operations} *)

val filter : t -> f:(Binding.t -> bool) -> t

(** [project bag ~cols] keeps only [cols]; other columns become unbound. *)
val project : t -> cols:int list -> t

(** [dedup bag] removes duplicate rows (for SELECT DISTINCT). *)
val dedup : t -> t

(** [equal_as_bags b1 b2] — multiset equality, used as the correctness
    criterion in tests. *)
val equal_as_bags : t -> t -> bool

(** {1 Sink-driven operator variants}

    Streaming counterparts of the operators above: instead of returning a
    materialized bag, output rows flow into a {!Sink.t} (and are charged
    via {!account} exactly once, at the producing operator boundary).
    [Sink.Stop] raised by the sink aborts the probe loop, so a downstream
    LIMIT early-terminates the pipeline. While a parallel runner is
    installed, the probe side is morselized across domains and each worker
    emits into its own shard of the sink; a [Stop] in any worker stops the
    others at their next morsel boundary (true cross-domain early
    termination, not a serial replay of worker bags). *)

(** [sink bag] — the materializing terminal: every emitted row is appended
    to [bag] by blit (production was already charged). *)
val sink : t -> Sink.t

(** [emit_accounted sink row] — charge one produced row and emit it.
    Serial sink-driving code only (uses the ticket's serial stride). *)
val emit_accounted : Sink.t -> Binding.t -> unit

(** [emit_charged sink row] — charge one produced row through the
    ticket's atomic stride and emit it; safe from any domain. Morsel
    workers emitting into shard sinks use this. *)
val emit_charged : Sink.t -> Binding.t -> unit

(** [replay bag ~sink] re-emits a materialized bag into a sink across an
    operator boundary (charged, like the materializing {!union}'s
    re-push). *)
val replay : t -> sink:Sink.t -> unit

val join_into : t -> t -> sink:Sink.t -> unit
val left_outer_join_into : t -> t -> sink:Sink.t -> unit
val minus_into : t -> t -> sink:Sink.t -> unit
val sparql_minus_into : t -> t -> sink:Sink.t -> unit
val filter_into : t -> f:(Binding.t -> bool) -> sink:Sink.t -> unit
val project_into : t -> cols:int list -> sink:Sink.t -> unit

(** [join_sink build ~probe_cols ~sink] — a row-at-a-time join for
    producers that stream their probe side: partitions [build] once on the
    intersection of its domain with [probe_cols] and returns the per-row
    probe function (each match is merged and emitted). *)
val join_sink : t -> probe_cols:int list -> sink:Sink.t -> Binding.t -> unit

(** [probe_merged build ~probe_cols] — the emit-parameterized form of
    {!join_sink}: partitions [build] once and returns a probe function
    over any emitter. The partition is read-only after construction, so
    several domains may probe it concurrently, each emitting into its own
    shard sink. *)
val probe_merged :
  t -> probe_cols:int list -> emit:(Binding.t -> unit) -> Binding.t -> unit

(** [row_compare ~keys ~compare_ids] — the ORDER BY row comparator used by
    {!sort}, exposed for the streaming sort/top-k stages. *)
val row_compare :
  keys:(int * bool) list ->
  compare_ids:(int -> int -> int) ->
  Binding.t ->
  Binding.t ->
  int

(** [pp table fmt bag] prints rows using variable names from [table]. *)
val pp : Vartable.t -> Format.formatter -> t -> unit

(** {1 Parallel execution hook}

    This library has no dependency on the engine layer that owns the
    domain pool, so parallelism is injected: while a runner is installed,
    {!join}, {!left_outer_join} and {!minus} chunk their probe side across
    the runner's workers (each worker pushing into a thread-local part that
    is concatenated afterwards — result order is preserved only up to bag
    equality). With no runner — the default — every operator is serial and
    byte-for-byte identical to the historical behavior. *)

type parallel_runner = {
  run :
    'acc.
    n:int -> create:(unit -> 'acc) -> body:('acc -> int -> unit) -> 'acc list;
      (** [run ~n ~create ~body] partitions [0..n-1] over workers; each
          worker folds its indices into a private accumulator from
          [create]; all accumulators are returned. Exceptions raised by
          [body] (e.g. [Governor.Kill]) are re-raised in the caller. The
          runner must run each worker under the submitting domain's
          ambient governor ticket. *)
  run_stream : n:int -> sink:Sink.t -> body:(Sink.t -> int -> unit) -> unit;
      (** [run_stream ~n ~sink ~body] — the streaming form: [body shard i]
          is called for every index, where [shard] is the calling domain's
          private shard of [sink] (obtained through {!Sink.fork}; when the
          sink is not forkable the runner degrades to a serial loop over
          [sink] itself). A [Sink.Stop] raised by a shard stops the other
          workers at their next morsel boundary and is re-raised in the
          caller after the shards have drained into the serial pipeline. *)
}

(** [set_parallel_runner r] installs ([Some]) or removes ([None]) the
    engine-layer runner. Installed by [Engine.Pool]; never call this with a
    runner whose workers outlive the call site. *)
val set_parallel_runner : parallel_runner option -> unit
