(** Push-based row consumers — the streaming dual of {!Bag}.

    A producer feeds rows into a sink with {!emit} instead of returning a
    materialized bag; {!close} flushes buffered stages once the producer is
    done. A stage that needs no further input (a satisfied LIMIT) raises
    {!Stop}, which unwinds the producing pipeline — this is how LIMIT
    pushdown early-terminates index scans instead of paying for the full
    result.

    Combinators wrap an inner sink and return a new one, so pipelines are
    built terminal-first (the {!Bag.sink} materializer or any custom
    {!terminal}) and composed outward toward the producer. Every stage
    records rows-in/rows-out; all wrappers of one pipeline share the stage
    list, readable via {!stages} from any of its sinks. *)

type t

(** Raised by a stage that needs no further rows. Producers let it unwind
    (it aborts their scan loops); the driver catches it as a successful,
    early-terminated run. {!close} never raises it. *)
exception Stop

(** Per-stage row accounting: [rows_in] rows were fed to the stage,
    [rows_out] were forwarded downstream. *)
type stage = {
  name : string;
  mutable rows_in : int;
  mutable rows_out : int;
}

(** [emit sink row] feeds one row. May raise {!Stop}. The row must not be
    mutated afterwards (buffering stages keep references). *)
val emit : t -> Binding.t -> unit

(** [close sink] flushes buffering stages (sort, top-k) downstream and
    must be called exactly once, after the producer finished or stopped.
    Never raises {!Stop}. *)
val close : t -> unit

(** [stages sink] — the pipeline's stages in data-flow order (producer
    side first, terminal last). *)
val stages : t -> stage list

(** [terminal ~name f] — the innermost sink: every row is passed to [f].
    [close] is a no-op. *)
val terminal : name:string -> (Binding.t -> unit) -> t

(** [counted ~name inner] — a transparent pass-through exposing its stage,
    for producers that need the cardinality of what they emitted. *)
val counted : name:string -> t -> t * stage

val filter : name:string -> f:(Binding.t -> bool) -> t -> t

(** [project ~width ~cols inner] rebuilds each row keeping only [cols]
    (other columns unbound), so downstream stages see projected rows. *)
val project : width:int -> cols:int list -> t -> t

(** [distinct inner] — streaming DISTINCT through a hash set: a row passes
    on first sight only. *)
val distinct : t -> t

(** [offset_limit ?offset ?limit inner] drops the first [offset] rows,
    forwards the next [limit] (all, when [limit] is [None]), then raises
    {!Stop} once the last needed row has been forwarded. *)
val offset_limit : ?offset:int -> ?limit:int -> t -> t

(** [top_k ~compare ~k inner] — bounded ORDER BY + LIMIT: keeps the [k]
    smallest rows under [(compare, arrival order)] in a heap and flushes
    them sorted on {!close}; exactly the first [k] rows of a stable full
    sort. Only sound when nothing between the sort and the slice drops
    rows (no DISTINCT in between — use {!sort_all} there). *)
val top_k : compare:(Binding.t -> Binding.t -> int) -> k:int -> t -> t

(** [sort_all ~compare inner] buffers every row and replays them stably
    sorted on {!close}. *)
val sort_all : compare:(Binding.t -> Binding.t -> int) -> t -> t
