(** Push-based row consumers — the streaming dual of {!Bag}.

    A producer feeds rows into a sink with {!emit} instead of returning a
    materialized bag; {!close} flushes buffered stages once the producer is
    done. A stage that needs no further input (a satisfied LIMIT) raises
    {!Stop}, which unwinds the producing pipeline — this is how LIMIT
    pushdown early-terminates index scans instead of paying for the full
    result.

    Combinators wrap an inner sink and return a new one, so pipelines are
    built terminal-first (the {!Bag.sink} materializer or any custom
    {!terminal}) and composed outward toward the producer. Every stage
    records rows-in/rows-out; all wrappers of one pipeline share the stage
    list, readable via {!stages} from any of its sinks.

    {b Parallel-safe sinks.} A pipeline whose stages all support sharding
    exposes a {!fork}: the morsel scheduler obtains one private shard sink
    per participating domain with [new_shard], workers feed their shards
    concurrently, and after all workers have quiesced the scheduler calls
    [drain] once to merge the shards' retained rows back into the serial
    pipeline — sharded DISTINCT deduplicates per domain and again
    globally at drain; per-domain top-k heaps bound memory to O(domains *
    k) and the serial heap selects the final k at drain; per-domain LIMIT
    buffers share one atomic row counter whose exhaustion raises {!Stop}
    in the feeding worker (the scheduler propagates it to the other
    domains at their next morsel boundary), and the drain replay
    reconciles the buffers against the exact global window. *)

type t

(** Raised by a stage that needs no further rows. Producers let it unwind
    (it aborts their scan loops); the driver catches it as a successful,
    early-terminated run. {!close} never raises it. *)
exception Stop

(** Per-stage row accounting: [rows_in] rows were fed to the stage,
    [rows_out] were forwarded downstream. *)
type stage = {
  name : string;
  mutable rows_in : int;
  mutable rows_out : int;
}

(** [emit sink row] feeds one row. May raise {!Stop}. The row must not be
    mutated afterwards (buffering stages keep references). *)
val emit : t -> Binding.t -> unit

(** [close sink] flushes buffering stages (sort, top-k) downstream and
    must be called exactly once, after the producer finished or stopped.
    Never raises {!Stop}. *)
val close : t -> unit

(** [stages sink] — the pipeline's stages in data-flow order (producer
    side first, terminal last). Under parallel production, the counters of
    buffering stages reflect the drain-time replay of what the shards
    retained (not every arrival at a shard), so they are approximate;
    terminal row counts and governor accounting stay exact. *)
val stages : t -> stage list

(** {1 Sharding} *)

(** The parallel-production contract of a sink: [new_shard] is called
    serially (under the scheduler's shard lock) once per participating
    domain; each shard is then fed by exactly one domain and never closed.
    [drain] is called serially, exactly once per parallel phase, after all
    shard users have quiesced; it merges the retained rows into the serial
    pipeline, resets the fork for a possible next phase, and raises
    {!Stop} iff the serial pipeline stopped during the merge. *)
type fork = {
  new_shard : unit -> t;
  drain : unit -> unit;
}

(** [fork sink] — the sink's sharding contract, or [None] when some stage
    of the pipeline cannot be fed from multiple domains (the scheduler
    must then drive the sink serially). *)
val fork : t -> fork option

(** [with_fork sink fork] — attach a sharding contract to a custom
    {!terminal} (e.g. {!Bag.sink}, which shards into per-domain bags
    blitted together at drain). *)
val with_fork : t -> fork -> t

(** [terminal ~name f] — the innermost sink: every row is passed to [f].
    [close] is a no-op. *)
val terminal : name:string -> (Binding.t -> unit) -> t

(** [counted ~name inner] — a transparent pass-through exposing its stage,
    for producers that need the cardinality of what they emitted. *)
val counted : name:string -> t -> t * stage

val filter : name:string -> f:(Binding.t -> bool) -> t -> t

(** [project ~width ~cols inner] rebuilds each row keeping only [cols]
    (other columns unbound), so downstream stages see projected rows. *)
val project : width:int -> cols:int list -> t -> t

(** [distinct inner] — streaming DISTINCT through a hash set: a row passes
    on first sight only. *)
val distinct : t -> t

(** [offset_limit ?offset ?limit inner] drops the first [offset] rows,
    forwards the next [limit] (all, when [limit] is [None]), then raises
    {!Stop} once the last needed row has been forwarded. *)
val offset_limit : ?offset:int -> ?limit:int -> t -> t

(** [aggregate ~name ~push ~flush inner] — streaming ungrouped
    aggregation: [push] folds each row into the caller's accumulators;
    [flush emit] computes the aggregate row(s) and emits them downstream
    at {!close} (an ungrouped aggregate produces a row even over empty
    input). Never forks — pipelines containing it are driven serially,
    keeping fold order deterministic. *)
val aggregate :
  name:string ->
  push:(Binding.t -> unit) ->
  flush:((Binding.t -> unit) -> unit) ->
  t ->
  t

(** [top_k ~compare ~k inner] — bounded ORDER BY + LIMIT: keeps the [k]
    smallest rows under [(compare, arrival order)] in a heap and flushes
    them sorted on {!close}; exactly the first [k] rows of a stable full
    sort. Only sound when nothing between the sort and the slice drops
    rows (no DISTINCT in between — use {!sort_all} there). *)
val top_k : compare:(Binding.t -> Binding.t -> int) -> k:int -> t -> t

(** [sort_all ~compare inner] buffers every row and replays them stably
    sorted on {!close}. *)
val sort_all : compare:(Binding.t -> Binding.t -> int) -> t -> t
