(* Per-execution resource governance. A *ticket* carries everything one
   query execution may consume: an atomic row budget, an optional
   wall-clock deadline (with its injected clock — this library stays
   clock-free), a cancellation flag settable from another domain, and a
   deterministic fault-injection schedule. Tickets replace the historical
   process-global budget/deadline atomics, so concurrent executions with
   different limits no longer clobber each other.

   The ambient ticket is domain-local ([Domain.DLS]): an executor installs
   its ticket around an evaluation with [with_ticket], and the engine's
   domain pool re-installs the submitting domain's ticket inside each
   worker, so rows produced by parallel workers charge the same ticket as
   the serial path. With no ticket installed, the per-domain default is
   unlimited and uncancellable — library users pay only the accounting
   arithmetic. *)

type failure =
  | Out_of_budget
  | Timeout
  | Cancelled
  | Injected_fault of string

exception Kill of failure

let failure_name = function
  | Out_of_budget -> "out-of-budget"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Injected_fault site -> "injected-fault(" ^ site ^ ")"

(* Only a cancellation is final: a fresh ticket cannot un-cancel the
   caller's intent, whereas budget, deadline and one-shot injected faults
   may well not recur on a retry with fresh resources. *)
let transient = function Cancelled -> false | _ -> true

(* A scheduled fault: fires on the [after]-th hit of [site], exactly once
   (the atomic countdown makes the once-ness hold across domains). Faults
   are shared by reference between retry attempts, so a fault that already
   fired stays spent on the next attempt's ticket. *)
type fault = { site : string; countdown : int Atomic.t }

let fault ~site ~after =
  if after < 1 then invalid_arg "Governor.fault: after must be >= 1";
  { site; countdown = Atomic.make after }

let fault_fired f = Atomic.get f.countdown <= 0

(* A deterministic schedule derived from a seed: one fault per site, each
   armed to fire on a hit index in [1, after_max]. A plain LCG — the point
   is reproducibility of a chaos run, not statistical quality. *)
let seeded_faults ~seed ~after_max sites =
  if after_max < 1 then invalid_arg "Governor.seeded_faults: after_max must be >= 1";
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  List.map (fun site -> fault ~site ~after:(1 + (next () mod after_max))) sites

type t = {
  budget : int Atomic.t;
  pushed : int Atomic.t;
  deadline : (float * (unit -> float)) option;  (* (at, now) *)
  cancelled : bool Atomic.t;
  faults : fault array;
  (* Stride counter for the serial streaming [charge_stream] path; one
     execution drives one sink pipeline from one domain, so a plain ref
     scoped to the ticket is race-free where a process-global one was
     not. *)
  stream_unchecked : int ref;
  (* Stride counter for [charge_parallel]: shared by every domain that
     emits under this ticket (the morsel scheduler re-installs the
     submitting ticket inside stolen morsels), so it must be atomic. *)
  parallel_unchecked : int Atomic.t;
}

let create ?row_budget ?deadline ?(faults = []) () =
  {
    budget = Atomic.make (Option.value row_budget ~default:max_int);
    pushed = Atomic.make 0;
    deadline;
    cancelled = Atomic.make false;
    faults = Array.of_list faults;
    stream_unchecked = ref 0;
    parallel_unchecked = Atomic.make 0;
  }

let unlimited () = create ()

let cancel t = Atomic.set t.cancelled true
let is_cancelled t = Atomic.get t.cancelled
let pushed t = Atomic.get t.pushed
let remaining_budget t = max 0 (Atomic.get t.budget)

let governed t =
  t.deadline <> None
  || Atomic.get t.budget < max_int
  || Array.length t.faults > 0

(* {2 The ambient ticket} *)

let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> unlimited ())

let current () = Domain.DLS.get key

(* Process-wide count of live [with_ticket] scopes whose ticket carries
   faults: the [failpoint] fast path is one atomic load when no chaos
   schedule is armed anywhere. *)
let armed_faults = Atomic.make 0

let with_ticket t f =
  let previous = Domain.DLS.get key in
  Domain.DLS.set key t;
  let has_faults = Array.length t.faults > 0 in
  if has_faults then Atomic.incr armed_faults;
  Fun.protect
    ~finally:(fun () ->
      if has_faults then Atomic.decr armed_faults;
      Domain.DLS.set key previous)
    f

(* {2 Accounting}

   Checked on the producing-operator hot paths, so the split matters:
   [charge] (budget + produced-row counter) runs on every row; [tick]
   (deadline + cancellation) is meant to be called on a stride — the
   caller keeps the stride counter, per bag, exactly as the historical
   deadline check did. *)

let stride = 4096

let charge t =
  if Atomic.fetch_and_add t.budget (-1) <= 0 then raise (Kill Out_of_budget);
  Atomic.incr t.pushed

let tick t =
  if Atomic.get t.cancelled then raise (Kill Cancelled);
  match t.deadline with
  | Some (at, now) -> if now () > at then raise (Kill Timeout)
  | None -> ()

let charge_stream t =
  charge t;
  incr t.stream_unchecked;
  if !(t.stream_unchecked) >= stride then begin
    t.stream_unchecked := 0;
    tick t
  end

(* The cross-domain counterpart of [charge_stream]: producers emitting
   from stolen morsels share one atomic stride counter, so a deadline or
   cancellation still triggers within [stride] rows of production no
   matter how the rows are spread across domains. The morsel scheduler
   additionally ticks at every morsel boundary, which bounds kill latency
   even for producers that emit nothing. *)
let charge_parallel t =
  charge t;
  if Atomic.fetch_and_add t.parallel_unchecked 1 mod stride = stride - 1 then
    tick t

(* {2 Fault injection} *)

let failpoint site =
  if Atomic.get armed_faults > 0 then begin
    let t = Domain.DLS.get key in
    Array.iter
      (fun f ->
        if String.equal f.site site
           && Atomic.fetch_and_add f.countdown (-1) = 1
        then raise (Kill (Injected_fault site)))
      t.faults
  end

let all_failpoints = [ "scan"; "extend"; "probe"; "sink.push"; "cache.insert" ]
