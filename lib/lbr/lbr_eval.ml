type report = {
  bag : Sparql.Bag.t option;
  result_count : int option;
  failure : Sparql.Governor.failure option;
  exec_ms : float;
  scanned_rows : int;
  semijoin_prunes : int;
}

(* A triple pattern in evaluation order, with its scope and the scopes
   allowed to prune it. *)
type slot = {
  sn_id : int;
  ancestors : int list;
  mutable table : Sparql.Bag.t;
  columns : int list;
}

let supported q =
  match Gosn.of_query q with
  | _ -> Gosn.well_designed q
  | exception Gosn.Unsupported _ -> false

(* [source] may prune [target] when they share a variable and source's
   scope is target's own scope or one of its ancestors. *)
let can_prune ~source ~target =
  (source.sn_id = target.sn_id || List.mem source.sn_id target.ancestors)
  && List.exists (fun col -> List.mem col source.columns) target.columns

let run ?row_budget ?timeout_ms ?governor env (query : Sparql.Ast.query) =
  if not (Gosn.well_designed query) then
    raise (Gosn.Unsupported "non-well-designed OPTIONAL pattern");
  let gosn = Gosn.of_query query in
  let store = Engine.Bgp_eval.store env in
  let table = Engine.Bgp_eval.vartable env in
  let width = Engine.Bgp_eval.width env in
  (* The run is governed by its own ticket (caller-supplied for
     cross-domain cancellation, or built from the budget/timeout knobs):
     limits die with the ticket scope, so nothing can leak to the next
     caller on this process. *)
  let gov =
    match governor with
    | Some g -> g
    | None ->
        let deadline =
          Option.map
            (fun ms ->
              (Unix.gettimeofday () +. (ms /. 1000.), Unix.gettimeofday))
            timeout_ms
        in
        Sparql.Governor.create ?row_budget ?deadline ()
  in
  let t0 = Unix.gettimeofday () in
  let prunes = ref 0 in
  let scanned = ref 0 in
  let outcome =
    Sparql.Governor.with_ticket gov @@ fun () ->
    try
      (* Pass 0a: compile every pattern in scope order. *)
      let compiled_slots =
        let rec collect ancestors (sn : Gosn.t) =
          let own =
            List.map
              (fun tp ->
                (sn.Gosn.id, ancestors, Engine.Compiled.compile store table tp))
              sn.Gosn.patterns
          in
          own
          @ List.concat_map (collect (sn.Gosn.id :: ancestors)) sn.Gosn.children
        in
        Array.of_list (collect [] gosn)
      in
      (* Pass 0b: index-level semijoin prefilters. A pattern with two
         bound positions names — via the store's third-column view — the
         exact value set of its one variable; build a candidate set
         straight off the compressed index blocks and apply it while
         scanning any pattern the source is allowed to prune (same
         scoping rule as the semijoin passes, which still run and yield
         identical final bags — the prefilter only removes rows those
         passes would also remove, before they ever materialize). *)
      let prefilters =
        Array.map
          (fun (sn_id, ancestors, (c : Engine.Compiled.t)) ->
            match Engine.Candidates.of_two_bound store c with
            | Some (col, set) -> Some (sn_id, ancestors, col, set)
            | None -> None)
          compiled_slots
      in
      (* Pass 0c: scan every pattern through its applicable prefilters. *)
      let slots =
        Array.mapi
          (fun i (sn_id, ancestors, compiled) ->
            let columns = Engine.Compiled.var_columns compiled in
            let candidates = ref Engine.Candidates.empty in
            Array.iteri
              (fun j pf ->
                match pf with
                | Some (src_id, _, col, set)
                  when j <> i && List.mem col columns
                       && (src_id = sn_id || List.mem src_id ancestors) ->
                    candidates := Engine.Candidates.set !candidates ~col set
                | _ -> ())
              prefilters;
            let bag =
              Engine.Hash_join.scan_pattern store ~width compiled
                ~candidates:!candidates
            in
            scanned := !scanned + Sparql.Bag.length bag;
            { sn_id; ancestors; table = bag; columns })
          compiled_slots
      in
      let n = Array.length slots in
      let semijoin_step target source =
        if can_prune ~source ~target then begin
          let before = Sparql.Bag.length target.table in
          let pruned = Sparql.Bag.semijoin target.table source.table in
          if Sparql.Bag.length pruned < before then incr prunes;
          target.table <- pruned
        end
      in
      (* Forward pass: each pattern pruned by the ones before it. *)
      for i = 0 to n - 1 do
        for j = 0 to i - 1 do
          semijoin_step slots.(i) slots.(j)
        done
      done;
      (* Backward pass: each pattern pruned by the ones after it. *)
      for i = n - 1 downto 0 do
        for j = n - 1 downto i + 1 do
          semijoin_step slots.(i) slots.(j)
        done
      done;
      (* Join phase: inner joins within a supernode, left-outer joins along
         GoSN edges, bottom-up. *)
      let tables_of sn_id =
        Array.to_list slots
        |> List.filter_map (fun slot ->
               if slot.sn_id = sn_id then Some slot.table else None)
      in
      let rec assemble (sn : Gosn.t) =
        let inner =
          (* Smallest-first inner join order within the scope. *)
          let tables =
            List.sort
              (fun b1 b2 ->
                Int.compare (Sparql.Bag.length b1) (Sparql.Bag.length b2))
              (tables_of sn.Gosn.id)
          in
          List.fold_left Sparql.Bag.join (Sparql.Bag.unit ~width) tables
        in
        List.fold_left
          (fun acc child -> Sparql.Bag.left_outer_join acc (assemble child))
          inner sn.Gosn.children
      in
      Ok (assemble gosn)
    with Sparql.Governor.Kill f -> Error f
  in
  let exec_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let failure = match outcome with Ok _ -> None | Error f -> Some f in
  let outcome =
    match outcome with Ok bag -> Some bag | Error _ -> None
  in
  let bag =
    match (outcome, Sparql.Ast.select_query query) with
    | None, _ -> None
    | Some bag, Sparql.Ast.Star ->
        Some (if query.distinct then Sparql.Bag.dedup bag else bag)
    | Some bag, Sparql.Ast.Projection vs ->
        let cols = List.filter_map (Sparql.Vartable.find table) vs in
        let bag = Sparql.Bag.project bag ~cols in
        Some (if query.distinct then Sparql.Bag.dedup bag else bag)
    | Some bag, Sparql.Ast.Aggregated _ ->
        (* LBR targets the well-designed AND/OPTIONAL fragment; aggregates
           are out of scope, so the raw bag is returned unprojected. *)
        Some bag
  in
  {
    bag;
    result_count = Option.map Sparql.Bag.length bag;
    failure;
    exec_ms;
    scanned_rows = !scanned;
    semijoin_prunes = !prunes;
  }
