(** The LBR baseline (Atre, SIGMOD 2015), reimplemented per its published
    algorithmic structure:

    + every triple pattern is evaluated *separately* into a table of
      bindings (LBR's per-triple-pattern treatment);
    + a forward and a backward semijoin pass over the join-variable graph
      prune each pattern's table against the patterns allowed to constrain
      it (same scope, or an ancestor scope — an OPTIONAL scope never
      removes bindings of its required ancestors);
    + the pruned tables are combined by inner joins within each supernode
      and left-outer joins along the GoSN edges.

    Inconsistent cross-scope bindings are rejected by the compatibility
    checks built into {!Sparql.Bag.left_outer_join}, which subsumes LBR's
    nullification + best-match post-processing for the well-designed
    patterns this baseline is evaluated on (q2.1–q2.6). *)

type report = {
  bag : Sparql.Bag.t option;  (** [None] when the run was killed *)
  result_count : int option;
  failure : Sparql.Governor.failure option;
      (** why the run was killed, when [bag = None] *)
  exec_ms : float;
  scanned_rows : int;  (** rows materialized by the per-pattern scans *)
  semijoin_prunes : int;
      (** semijoin applications across both passes that removed rows *)
}

(** [run ?row_budget ?timeout_ms ?governor env query] executes [query]
    with the LBR strategy, under its own governor ticket ([governor]
    supplies a pre-built one, e.g. for cross-domain cancellation). Raises
    {!Gosn.Unsupported} on UNION/FILTER queries and on non-well-designed
    patterns (outside LBR's sound fragment). *)
val run :
  ?row_budget:int ->
  ?timeout_ms:float ->
  ?governor:Sparql.Governor.t ->
  Engine.Bgp_eval.t ->
  Sparql.Ast.query ->
  report

(** [supported q] — true when the query is within LBR's scope. *)
val supported : Sparql.Ast.query -> bool
