(* A frozen delta generation: the net effect of every transaction
   committed against a base since it was last compacted, as two small
   index sets. Values are immutable — a commit builds a *new* delta
   (generation + 1) and publishes it inside a new snapshot, so readers
   holding an older generation never see it change.

   Invariants (established by the commit fold in {!Mvcc}):
   - [adds] is disjoint from the base (a re-inserted base triple is a
     no-op, not an add);
   - [dels] is a subset of the base;
   - [adds] and [dels] are disjoint.
   These make snapshot reads pure arithmetic: count = base - dels + adds,
   membership = (base and not del) or add, with no double counting. *)

type t = {
  gen : int;
  adds : Index_set.t;
  dels : Index_set.t;
}

let empty = { gen = 0; adds = Index_set.empty; dels = Index_set.empty }

let make ~gen ~adds ~dels =
  { gen; adds = Index_set.of_rows adds; dels = Index_set.of_rows dels }

let gen t = t.gen

let adds t = t.adds

let dels t = t.dels

let is_empty t = Index_set.is_empty t.adds && Index_set.is_empty t.dels

(* Total buffered rows — the compaction trigger reads this. *)
let size t = Index_set.size t.adds + Index_set.size t.dels

(* Thaw into mutable row tables — the starting state of the commit fold
   in {!Mvcc} (and of WAL replay, which folds a whole recovered
   transaction list over one pair of tables before publishing once). *)
let to_tables t =
  let adds = Hashtbl.create (max 64 (Index_set.size t.adds)) in
  let dels = Hashtbl.create (max 16 (Index_set.size t.dels)) in
  Index_set.iter_all t.adds ~f:(fun ~s ~p ~o -> Hashtbl.replace adds (s, p, o) ());
  Index_set.iter_all t.dels ~f:(fun ~s ~p ~o -> Hashtbl.replace dels (s, p, o) ());
  (adds, dels)
