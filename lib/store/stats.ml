type predicate_stats = {
  triples : int;
  distinct_subjects : int;
  distinct_objects : int;
  avg_out_degree : float;
  avg_in_degree : float;
}

let zero_stats =
  {
    triples = 0;
    distinct_subjects = 0;
    distinct_objects = 0;
    avg_out_degree = 0.;
    avg_in_degree = 0.;
  }

type t = {
  by_predicate : (int, predicate_stats) Hashtbl.t;
  num_triples : int;
  num_entities : int;
  num_predicates : int;
  num_literals : int;
  epoch : int;  (* store epoch when the scan ran *)
}

let compute store =
  let by_predicate = Hashtbl.create 64 in
  (* Per-predicate rows come straight off the index grouping structure
     built during bulk load: [predicates] walks the PSO skip level and
     the distinct counts are group-offset arithmetic — no triple scan. *)
  List.iter
    (fun (p, triples) ->
      let distinct_subjects = Triple_store.distinct_subjects store ~p in
      let distinct_objects = Triple_store.distinct_objects store ~p in
      let avg_out_degree =
        if distinct_subjects = 0 then 0.
        else float_of_int triples /. float_of_int distinct_subjects
      in
      let avg_in_degree =
        if distinct_objects = 0 then 0.
        else float_of_int triples /. float_of_int distinct_objects
      in
      Hashtbl.replace by_predicate p
        { triples; distinct_subjects; distinct_objects; avg_out_degree;
          avg_in_degree })
    (Triple_store.predicates store);
  let num_predicates = Hashtbl.length by_predicate in
  (* Entities: distinct IRI/bnode terms in subject or object position.
     Literals: distinct literal terms in object position. The distinct
     subject and object ids are exactly the first-key skip columns of
     SPO and OSP — merge the two increasing streams instead of probing
     the whole dictionary term by term. *)
  let entities = ref 0 and literals = ref 0 in
  let dict = Triple_store.dictionary store in
  let subjects = Index.firsts_view (Triple_store.index store Index.Spo) in
  let objects = Index.firsts_view (Triple_store.index store Index.Osp) in
  let ns = Index.view_length subjects and no = Index.view_length objects in
  let i = ref 0 and j = ref 0 in
  let classify id ~as_object =
    match Dictionary.decode dict id with
    | Rdf.Term.Literal _ -> if as_object then incr literals
    | Rdf.Term.Iri _ | Rdf.Term.Bnode _ -> incr entities
  in
  while !i < ns || !j < no do
    let sv = if !i < ns then Index.view_get subjects !i else max_int in
    let ov = if !j < no then Index.view_get objects !j else max_int in
    if sv < ov then begin
      classify sv ~as_object:false;
      incr i
    end
    else if ov < sv then begin
      classify ov ~as_object:true;
      incr j
    end
    else begin
      classify sv ~as_object:true;
      incr i;
      incr j
    end
  done;
  {
    by_predicate;
    num_triples = Triple_store.size store;
    num_entities = !entities;
    num_predicates;
    num_literals = !literals;
    epoch = Triple_store.epoch store;
  }

(* [cached] memoizes one statistics scan per live store value. The triple
   table is immutable (updates rebuild a new store), so statistics keyed
   on the store's physical identity never go stale — dictionary interning
   bumps the epoch but adds no triples. The ephemeron key keeps the memo
   from pinning replaced stores in memory. *)
let memo : (Triple_store.t Weak.t * t) list ref = ref []
let memo_mutex = Mutex.create ()

let cached store =
  Mutex.lock memo_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock memo_mutex) @@ fun () ->
  memo := List.filter (fun (w, _) -> Weak.check w 0) !memo;
  let hit (w, _) =
    match Weak.get w 0 with Some s -> s == store | None -> false
  in
  match List.find_opt hit !memo with
  | Some (_, stats) -> stats
  | None ->
      let stats = compute store in
      let w = Weak.create 1 in
      Weak.set w 0 (Some store);
      memo := (w, stats) :: !memo;
      stats

let predicate_of stats ~p =
  Option.value (Hashtbl.find_opt stats.by_predicate p) ~default:zero_stats

(* Statistics for a snapshot view: the base scan comes from the memo and
   the delta adjusts it. Per-predicate triple counts are exact (from
   [Snapshot.predicates]); distinct-subject/object counts for predicates
   the delta touches are bounded estimates (base + adds, clamped by the
   triple count) — statistics feed cardinality *estimation*, so bounded
   staleness is fine and keeps this O(|delta|) instead of a rescan.
   A predicate born in the delta gets exact counts from the delta's own
   indexes. Dataset-level entity/literal counts stay at the base values
   (same rationale). *)
let of_snapshot snap =
  let base_stats = cached (Snapshot.base snap) in
  if Delta.is_empty (Snapshot.delta snap) then base_stats
  else begin
    let adds = Delta.adds (Snapshot.delta snap) in
    let by_predicate = Hashtbl.create 64 in
    List.iter
      (fun (p, triples) ->
        let bp = predicate_of base_stats ~p in
        let estimate base_distinct adds_distinct =
          if bp.triples = 0 then adds_distinct
          else max 1 (min (base_distinct + adds_distinct) triples)
        in
        let distinct_subjects =
          estimate bp.distinct_subjects (Index_set.distinct_subjects adds ~p)
        in
        let distinct_objects =
          estimate bp.distinct_objects (Index_set.distinct_objects adds ~p)
        in
        let avg_out_degree =
          if distinct_subjects = 0 then 0.
          else float_of_int triples /. float_of_int distinct_subjects
        in
        let avg_in_degree =
          if distinct_objects = 0 then 0.
          else float_of_int triples /. float_of_int distinct_objects
        in
        Hashtbl.replace by_predicate p
          { triples; distinct_subjects; distinct_objects; avg_out_degree;
            avg_in_degree })
      (Snapshot.predicates snap);
    {
      by_predicate;
      num_triples = Snapshot.size snap;
      num_entities = base_stats.num_entities;
      num_predicates = Hashtbl.length by_predicate;
      num_literals = base_stats.num_literals;
      epoch = Snapshot.version snap;
    }
  end

let epoch stats = stats.epoch

let predicate stats ~p =
  Option.value (Hashtbl.find_opt stats.by_predicate p) ~default:zero_stats

let num_triples stats = stats.num_triples
let num_entities stats = stats.num_entities
let num_predicates stats = stats.num_predicates
let num_literals stats = stats.num_literals

let pp_summary fmt stats =
  Format.fprintf fmt
    "triples=%d entities=%d predicates=%d literals=%d" stats.num_triples
    stats.num_entities stats.num_predicates stats.num_literals
