(** A frozen delta generation: the net insert/delete buffers committed
    against a base store since its last compaction, indexed like the
    base (two small {!Index_set}s). Immutable — each commit publishes a
    new generation, so a reader's view never changes under it.

    Invariants maintained by the {!Mvcc} commit fold: [adds] ∩ base = ∅,
    [dels] ⊆ base, [adds] ∩ [dels] = ∅. Snapshot reads rely on them
    (count = base − dels + adds with no double counting). *)

type t

(** Generation 0: no buffered writes. *)
val empty : t

(** [make ~gen ~adds ~dels] freezes the given encoded rows as
    generation [gen] (rows are deduplicated and indexed). *)
val make :
  gen:int -> adds:(int * int * int) array -> dels:(int * int * int) array -> t

val gen : t -> int
val adds : t -> Index_set.t
val dels : t -> Index_set.t
val is_empty : t -> bool

(** [size t] is the total number of buffered rows (adds + dels) — the
    compaction trigger. *)
val size : t -> int

(** [to_tables t] thaws the frozen buffers into mutable row tables —
    the seed of the {!Mvcc} commit fold (and of WAL replay). *)
val to_tables :
  t ->
  (int * int * int, unit) Hashtbl.t * (int * int * int, unit) Hashtbl.t
