(** Store-layer fault-injection seam.

    The store library cannot depend on the query layers where the
    governor's ticket machinery lives, so crash points in the
    durability code call {!hit} with a site name and a higher layer
    decides what (if anything) happens: the core library installs
    [Sparql.Governor.failpoint] as the handler at load time, making
    every store kill point reachable from the same deterministic chaos
    schedules the engine uses. With no handler installed, {!hit} is a
    single atomic load and a no-op call. *)

(** [set_handler f] installs [f] as the process-global failpoint
    handler (replacing the default no-op). *)
val set_handler : (string -> unit) -> unit

(** [hit site] invokes the installed handler; a chaos handler raises to
    simulate a crash at [site]. *)
val hit : string -> unit

(** The kill sites the store layer exposes: ["wal.record"],
    ["wal.marker"], ["wal.sync.pre"], ["wal.sync.post"],
    ["snapshot.save"], ["snapshot.rename"]. *)
val all_sites : string list
