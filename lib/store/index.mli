(** A sorted permutation index over a shared triple table.

    The store keeps one triple table (three parallel int arrays) and six
    {!t} values, one per component order (SPO, SOP, PSO, POS, OSP, OPS).
    Lookups with any set of bound positions become binary-searched ranges in
    the appropriate permutation. *)

type order = Spo | Sop | Pso | Pos | Osp | Ops

(** The shared triple table: [s.(i), p.(i), o.(i)] is the i-th triple. *)
type table = { s : int array; p : int array; o : int array }

type t

val order : t -> order

(** [build order table] sorts a permutation of the rows of [table]
    lexicographically by the components of [order]. *)
val build : order -> table -> t

(** [range index ?a ?b ?c ()] is the half-open interval [(lo, hi)] of
    positions in the permutation whose rows match the given key prefix,
    where [a] constrains the first component of the order, [b] the second
    and [c] the third. Passing [b] without [a], or [c] without [b], is an
    [Invalid_argument]. *)
val range : t -> ?a:int -> ?b:int -> ?c:int -> unit -> int * int

(** A zero-copy view of the third key column over a (key1, key2) prefix
    range. Within one prefix the permutation is sorted by key3 and the
    store's triple table is duplicate-free, so the values
    [view_get v 0 .. view_get v (view_length v - 1)] form a strictly
    increasing sequence — exactly the shape the multiway intersection
    kernel ({!Engine.Intersect}) requires of its operands. *)
type view

(** [column_view index ~a ~b] is the sorted, duplicate-free slice of third
    key components for rows whose first two components equal [(a, b)]. No
    copying: the view aliases the shared table and permutation. *)
val column_view : t -> a:int -> b:int -> view

(** [view_of_sorted_array vals] wraps a materialized array as a view.
    [vals] must be strictly increasing — the caller (the snapshot layer,
    merging base and delta third columns) guarantees it. *)
val view_of_sorted_array : int array -> view

val view_length : view -> int

(** [view_get v i] is the [i]-th (ascending) third-column value,
    [0 <= i < view_length v]. *)
val view_get : view -> int -> int

(** [iter index ~lo ~hi ~f] applies [f ~s ~p ~o] to each row in positions
    [lo..hi-1] of the permutation, in index order. *)
val iter : t -> lo:int -> hi:int -> f:(s:int -> p:int -> o:int -> unit) -> unit

(** [row index pos] is the (s, p, o) of the row at permutation position
    [pos]. *)
val row : t -> int -> int * int * int

(** [distinct_firsts index ~lo ~hi] counts distinct values of the order's
    first component within the range — used by statistics. *)
val distinct_firsts : t -> lo:int -> hi:int -> int

(** [distinct_seconds index ~lo ~hi] counts distinct (first, second) pairs
    within the range. *)
val distinct_seconds : t -> lo:int -> hi:int -> int
