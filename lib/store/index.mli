(** A sorted permutation index stored as off-heap compressed columns.

    The store keeps six {!t} values, one per component order (SPO, SOP,
    PSO, POS, OSP, OPS). Each is a three-level grouping structure over
    {!Column} storage: distinct first keys, (first, second) groups, and
    the full third-key column — all outside the OCaml heap, with the
    two big columns block-compressed under {!Column.Delta}. Lookups with
    any set of bound positions become sample-galloped searches yielding
    global row ranges, exactly as in the old permutation layout. *)

type order = Spo | Sop | Pso | Pos | Osp | Ops

(** A raw triple table: [s.(i), p.(i), o.(i)] is the i-th triple. Used
    by small builds (deltas, tests); bulk loads feed {!of_sorted}. *)
type table = { s : int array; p : int array; o : int array }

type t

val order : t -> order

(** Number of rows. *)
val length : t -> int

(** Bytes of off-heap storage held by the index. *)
val mem_bytes : t -> int

(** [build ?mode order table] sorts the rows of [table]
    lexicographically by the components of [order] and encodes the
    index ([mode] defaults to {!Column.default_mode}). *)
val build : ?mode:Column.mode -> order -> table -> t

(** [of_sorted order ~mode ~n ~key1 ~key2 ~key3] encodes [n] rows
    already sorted lexicographically by their key components, streamed
    through the accessors in one pass — the bulk-load path (per-group
    cardinalities come free from boundary detection). *)
val of_sorted :
  order ->
  mode:Column.mode ->
  n:int ->
  key1:(int -> int) ->
  key2:(int -> int) ->
  key3:(int -> int) ->
  t

(** [range index ?a ?b ?c ()] is the half-open interval [(lo, hi)] of
    global row positions matching the given key prefix, where [a]
    constrains the first component of the order, [b] the second and [c]
    the third. Passing [b] without [a], or [c] without [b], is an
    [Invalid_argument]. *)
val range : t -> ?a:int -> ?b:int -> ?c:int -> unit -> int * int

(** A strictly increasing sequence of ids: a zero-copy window onto a
    compressed column (with its own block-decode cursor), or a
    materialized array (snapshot merges). Views carry mutable decode
    state — never share one across domains. *)
type view

(** [column_view index ~a ~b] is the sorted, duplicate-free slice of
    third key components for rows whose first two components equal
    [(a, b)]; empty when the prefix is absent. Touched blocks decode
    into the view's cursor on demand — nothing is copied up front. *)
val column_view : t -> a:int -> b:int -> view

(** [firsts_view index] — the distinct first-key values in increasing
    order (distinct subjects of SPO, distinct objects of OSP): the
    statistics pass reads entity ids straight off the skip level. *)
val firsts_view : t -> view

(** [view_of_sorted_array vals] wraps a materialized array as a view.
    [vals] must be strictly increasing — the caller (the snapshot layer,
    merging base and delta third columns) guarantees it. *)
val view_of_sorted_array : int array -> view

val view_length : view -> int

(** [view_get v i] is the [i]-th (ascending) value, [0 <= i < length]. *)
val view_get : view -> int -> int

(** [view_lower_bound v ~from value] is the first index [>= from] whose
    value is [>= value], or [view_length v]. On compressed slices this
    searches the uncompressed block samples and decodes at most one
    block — the intersection kernel's gallop probe. *)
val view_lower_bound : view -> from:int -> int -> int

(** [iter index ~lo ~hi ~f] applies [f ~s ~p ~o] to each row in
    positions [lo..hi-1], in index order, decoding each block once. *)
val iter : t -> lo:int -> hi:int -> f:(s:int -> p:int -> o:int -> unit) -> unit

(** [row index pos] is the (s, p, o) at global position [pos] (cold
    path: decodes a block per call). *)
val row : t -> int -> int * int * int

(** [iter_firsts index ~f] — every distinct first-key value with its
    global row range, in key order (the per-predicate walk on PSO). *)
val iter_firsts : t -> f:(int -> lo:int -> hi:int -> unit) -> unit

(** [distinct_firsts index ~lo ~hi] counts distinct values of the
    order's first component within the range — group-id arithmetic on
    the offset columns, no scan. *)
val distinct_firsts : t -> lo:int -> hi:int -> int

(** [distinct_seconds index ~lo ~hi] counts distinct (first, second)
    pairs within the range. *)
val distinct_seconds : t -> lo:int -> hi:int -> int
