type order = Spo | Sop | Pso | Pos | Osp | Ops

type table = { s : int array; p : int array; o : int array }

type t = { order : order; perm : int array; table : table }

let order t = t.order

(* Key components of row [i] under the given order. *)
let key1 order (tbl : table) i =
  match order with
  | Spo | Sop -> tbl.s.(i)
  | Pso | Pos -> tbl.p.(i)
  | Osp | Ops -> tbl.o.(i)

let key2 order (tbl : table) i =
  match order with
  | Spo | Ops -> tbl.p.(i)
  | Pso | Osp -> tbl.s.(i)
  | Sop | Pos -> tbl.o.(i)

(* The third component is whichever of s/p/o is not key1/key2. *)
let key3 order (tbl : table) i =
  match order with
  | Spo -> tbl.o.(i)
  | Sop -> tbl.p.(i)
  | Pso -> tbl.o.(i)
  | Pos -> tbl.s.(i)
  | Osp -> tbl.p.(i)
  | Ops -> tbl.s.(i)

(* Build time is dominated by the sort, and a closure comparator over the
   raw table pays a 6-way [order] match per key access. When every id fits in 21 bits
   (2M distinct terms — true for all our datasets), the three key
   components pack into one 63-bit int whose natural order is the
   lexicographic key order, so the comparator collapses to two array loads
   and an int compare. Larger dictionaries fall back to comparing three
   precomputed key arrays (still match-free). [range] behavior is
   unchanged: only the sort changes, not the sorted order. *)
let packable_bits = 21

let build order table =
  let n = Array.length table.s in
  let perm = Array.init n Fun.id in
  let max_id = ref 0 in
  for i = 0 to n - 1 do
    if table.s.(i) > !max_id then max_id := table.s.(i);
    if table.p.(i) > !max_id then max_id := table.p.(i);
    if table.o.(i) > !max_id then max_id := table.o.(i)
  done;
  if !max_id < 1 lsl packable_bits then begin
    let packed =
      Array.init n (fun i ->
          (key1 order table i lsl (2 * packable_bits))
          lor (key2 order table i lsl packable_bits)
          lor key3 order table i)
    in
    Array.sort (fun i j -> Int.compare packed.(i) packed.(j)) perm
  end
  else begin
    let k1 = Array.init n (key1 order table)
    and k2 = Array.init n (key2 order table)
    and k3 = Array.init n (key3 order table) in
    Array.sort
      (fun i j ->
        let c = Int.compare k1.(i) k1.(j) in
        if c <> 0 then c
        else
          let c = Int.compare k2.(i) k2.(j) in
          if c <> 0 then c else Int.compare k3.(i) k3.(j))
      perm
  end;
  { order; perm; table }

(* Generic lower/upper bound on the permutation for a key prefix.
   [depth] is 1, 2 or 3; [ka kb kc] are the bound key components. *)
let compare_prefix t depth ka kb kc pos =
  let row = t.perm.(pos) in
  let c = Int.compare ka (key1 t.order t.table row) in
  if c <> 0 || depth = 1 then c
  else
    let c = Int.compare kb (key2 t.order t.table row) in
    if c <> 0 || depth = 2 then c
    else Int.compare kc (key3 t.order t.table row)

(* First position whose key is >= the prefix. *)
let lower_bound t depth ka kb kc =
  let lo = ref 0 and hi = ref (Array.length t.perm) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_prefix t depth ka kb kc mid <= 0 then hi := mid else lo := mid + 1
  done;
  !lo

(* First position whose key is > the prefix. *)
let upper_bound t depth ka kb kc =
  let lo = ref 0 and hi = ref (Array.length t.perm) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_prefix t depth ka kb kc mid < 0 then hi := mid else lo := mid + 1
  done;
  !lo

let range t ?a ?b ?c () =
  match (a, b, c) with
  | None, None, None -> (0, Array.length t.perm)
  | Some ka, None, None -> (lower_bound t 1 ka 0 0, upper_bound t 1 ka 0 0)
  | Some ka, Some kb, None ->
      (lower_bound t 2 ka kb 0, upper_bound t 2 ka kb 0)
  | Some ka, Some kb, Some kc ->
      (lower_bound t 3 ka kb kc, upper_bound t 3 ka kb kc)
  | _ -> invalid_arg "Index.range: non-prefix key combination"

(* A zero-copy window onto the third key column of a (key1, key2) prefix:
   [vals] is whichever component array of the shared table holds key3 for
   this order, and positions [lo .. lo+len-1] of [perm] enumerate the
   matching rows in sorted key3 order. Because the permutation is sorted
   lexicographically and the store deduplicates triples, the sequence
   [view_get v 0 .. view_get v (len-1)] is strictly increasing. *)
type view = { vals : int array; vperm : int array; lo : int; len : int }

let key3_source t =
  match t.order with
  | Spo | Pso -> t.table.o
  | Sop | Osp -> t.table.p
  | Pos | Ops -> t.table.s

let column_view t ~a ~b =
  let lo = lower_bound t 2 a b 0 and hi = upper_bound t 2 a b 0 in
  { vals = key3_source t; vperm = t.perm; lo; len = hi - lo }

(* Wrap a materialized, strictly increasing array as a view — used by
   snapshots to hand the intersection kernel a third column merged from
   base and delta. The identity permutation keeps [view_get] uniform. *)
let view_of_sorted_array vals =
  let n = Array.length vals in
  { vals; vperm = Array.init n Fun.id; lo = 0; len = n }

let view_length v = v.len

let view_get v i =
  (* Indices come from the construction above; both loads stay in bounds
     for any [0 <= i < len]. *)
  Array.unsafe_get v.vals (Array.unsafe_get v.vperm (v.lo + i))

let iter t ~lo ~hi ~f =
  for pos = lo to hi - 1 do
    let row = t.perm.(pos) in
    f ~s:t.table.s.(row) ~p:t.table.p.(row) ~o:t.table.o.(row)
  done

let row t pos =
  let r = t.perm.(pos) in
  (t.table.s.(r), t.table.p.(r), t.table.o.(r))

let distinct_firsts t ~lo ~hi =
  let count = ref 0 in
  let prev = ref min_int in
  for pos = lo to hi - 1 do
    let k = key1 t.order t.table t.perm.(pos) in
    if k <> !prev then begin
      incr count;
      prev := k
    end
  done;
  !count

let distinct_seconds t ~lo ~hi =
  let count = ref 0 in
  let prev1 = ref min_int and prev2 = ref min_int in
  for pos = lo to hi - 1 do
    let r = t.perm.(pos) in
    let k1 = key1 t.order t.table r and k2 = key2 t.order t.table r in
    if k1 <> !prev1 || k2 <> !prev2 then begin
      incr count;
      prev1 := k1;
      prev2 := k2
    end
  done;
  !count
