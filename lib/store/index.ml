type order = Spo | Sop | Pso | Pos | Osp | Ops

type table = { s : int array; p : int array; o : int array }

(* A permutation index stored as three levels of off-heap columns
   instead of a heap permutation over a shared table:

     l1_keys : distinct first-key values            (n1, strictly increasing)
     l1_grp  : first l2 group of each l1 group      (n1+1, strictly increasing)
     l2_keys : second-key value of each (k1,k2) group  (n2)
     l2_pos  : first row of each l2 group           (n2+1, strictly increasing)
     k3      : third-key value of every row         (n)

   Row positions are global, exactly as in the old permutation layout,
   so [range] keeps its (lo, hi) contract. The grouping columns that
   back every lookup (l1_keys, l1_grp, l2_pos) stay Raw for O(1) loads;
   l2_keys and k3 — the bulk of the data — compress per the build mode.
   Within one l2 group k3 is strictly increasing (the store
   deduplicates), which is what [column_view] exposes to the
   intersection kernel. *)
type t = {
  order : order;
  n : int;
  l1_keys : Column.t;
  l1_grp : Column.t;
  l2_keys : Column.t;
  l2_pos : Column.t;
  k3 : Column.t;
}

let order t = t.order

let length t = t.n

let mem_bytes t =
  Column.mem_bytes t.l1_keys + Column.mem_bytes t.l1_grp
  + Column.mem_bytes t.l2_keys + Column.mem_bytes t.l2_pos
  + Column.mem_bytes t.k3

(* Key components of row [i] under the given order. *)
let key1 order (tbl : table) i =
  match order with
  | Spo | Sop -> tbl.s.(i)
  | Pso | Pos -> tbl.p.(i)
  | Osp | Ops -> tbl.o.(i)

let key2 order (tbl : table) i =
  match order with
  | Spo | Ops -> tbl.p.(i)
  | Pso | Osp -> tbl.s.(i)
  | Sop | Pos -> tbl.o.(i)

(* The third component is whichever of s/p/o is not key1/key2. *)
let key3 order (tbl : table) i =
  match order with
  | Spo -> tbl.o.(i)
  | Sop -> tbl.p.(i)
  | Pso -> tbl.o.(i)
  | Pos -> tbl.s.(i)
  | Osp -> tbl.p.(i)
  | Ops -> tbl.s.(i)

(* Inverse: reassemble (s, p, o) from the key components of [order]. *)
let spo_of_keys order k1 k2 k3 =
  match order with
  | Spo -> (k1, k2, k3)
  | Sop -> (k1, k3, k2)
  | Pso -> (k2, k1, k3)
  | Pos -> (k3, k1, k2)
  | Osp -> (k2, k3, k1)
  | Ops -> (k3, k2, k1)

(* Single-pass constructor over rows already sorted lexicographically by
   (key1, key2, key3). The grouping structure falls out of boundary
   detection, so per-group cardinalities (the statistics inputs) are
   free at encode time. *)
let of_sorted order ~mode ~n ~key1:k1f ~key2:k2f ~key3:k3f =
  let l1k = Column.Builder.create Column.Raw in
  let l1g = Column.Builder.create Column.Raw in
  let l2k = Column.Builder.create mode in
  let l2p = Column.Builder.create Column.Raw in
  let k3b = Column.Builder.create mode in
  let n2 = ref 0 in
  let prev1 = ref min_int and prev2 = ref min_int in
  for i = 0 to n - 1 do
    let a = k1f i and b = k2f i in
    if a <> !prev1 then begin
      Column.Builder.add l1k a;
      Column.Builder.add l1g !n2;
      prev1 := a;
      prev2 := min_int
    end;
    if b <> !prev2 then begin
      Column.Builder.add l2k b;
      Column.Builder.add l2p i;
      incr n2;
      prev2 := b
    end;
    Column.Builder.add k3b (k3f i)
  done;
  Column.Builder.add l1g !n2;
  Column.Builder.add l2p n;
  {
    order;
    n;
    l1_keys = Column.Builder.finish l1k;
    l1_grp = Column.Builder.finish l1g;
    l2_keys = Column.Builder.finish l2k;
    l2_pos = Column.Builder.finish l2p;
    k3 = Column.Builder.finish k3b;
  }

(* Build time is dominated by the sort. When every id fits in 21 bits
   (2M distinct terms) the three key components pack into one 63-bit int
   whose natural order is the lexicographic key order; larger
   dictionaries compare three precomputed key arrays. *)
let packable_bits = 21

let sort_perm ~n ~max_id ~key1:k1f ~key2:k2f ~key3:k3f =
  let perm = Array.init n Fun.id in
  if max_id < 1 lsl packable_bits then begin
    let packed =
      Array.init n (fun i ->
          (k1f i lsl (2 * packable_bits)) lor (k2f i lsl packable_bits)
          lor k3f i)
    in
    Array.sort (fun i j -> Int.compare packed.(i) packed.(j)) perm
  end
  else begin
    let k1 = Array.init n k1f and k2 = Array.init n k2f
    and k3 = Array.init n k3f in
    Array.sort
      (fun i j ->
        let c = Int.compare k1.(i) k1.(j) in
        if c <> 0 then c
        else
          let c = Int.compare k2.(i) k2.(j) in
          if c <> 0 then c else Int.compare k3.(i) k3.(j))
      perm
  end;
  perm

let build ?(mode = Column.default_mode ()) order table =
  let n = Array.length table.s in
  let max_id = ref 0 in
  for i = 0 to n - 1 do
    if table.s.(i) > !max_id then max_id := table.s.(i);
    if table.p.(i) > !max_id then max_id := table.p.(i);
    if table.o.(i) > !max_id then max_id := table.o.(i)
  done;
  let perm =
    sort_perm ~n ~max_id:!max_id ~key1:(key1 order table)
      ~key2:(key2 order table) ~key3:(key3 order table)
  in
  of_sorted order ~mode ~n
    ~key1:(fun i -> key1 order table perm.(i))
    ~key2:(fun i -> key2 order table perm.(i))
    ~key3:(fun i -> key3 order table perm.(i))

(* --- lookups ----------------------------------------------------------- *)

let n1 t = Column.length t.l1_keys
let n2 t = Column.length t.l2_keys

(* First global row of l1 group [g] (or [t.n] past the last group). *)
let pos_of_l1 t g = Column.get t.l2_pos (Column.get t.l1_grp g)

(* Group containing (or starting at) a position, by binary search on the
   strictly increasing Raw offset columns. *)
let l2_of_pos t pos =
  Column.lower_bound t.l2_pos ~lo:0 ~hi:(n2 t + 1) (pos + 1) - 1

let l1_of_l2 t j =
  Column.lower_bound t.l1_grp ~lo:0 ~hi:(n1 t + 1) (j + 1) - 1

(* Locate key [a] among the l1 keys: [Ok g] on a hit, [Err p] with the
   row position where [a]'s rows would start on a miss. *)
let find_l1 t a =
  let g = Column.lower_bound t.l1_keys ~lo:0 ~hi:(n1 t) a in
  if g < n1 t && Column.get t.l1_keys g = a then Ok g
  else Error (pos_of_l1 t g)

let find_l2 t g b cur =
  let j_lo = Column.get t.l1_grp g and j_hi = Column.get t.l1_grp (g + 1) in
  let j = Column.lower_bound t.l2_keys ~cursor:cur ~lo:j_lo ~hi:j_hi b in
  if j < j_hi && Column.read t.l2_keys cur j = b then Ok j
  else Error (Column.get t.l2_pos j)

let range t ?a ?b ?c () =
  match (a, b, c) with
  | None, None, None -> (0, t.n)
  | Some ka, None, None -> (
      match find_l1 t ka with
      | Ok g -> (pos_of_l1 t g, pos_of_l1 t (g + 1))
      | Error p -> (p, p))
  | Some ka, Some kb, None -> (
      match find_l1 t ka with
      | Error p -> (p, p)
      | Ok g -> (
          let cur = Column.cursor t.l2_keys in
          match find_l2 t g kb cur with
          | Ok j -> (Column.get t.l2_pos j, Column.get t.l2_pos (j + 1))
          | Error p -> (p, p)))
  | Some ka, Some kb, Some kc -> (
      match find_l1 t ka with
      | Error p -> (p, p)
      | Ok g -> (
          let cur = Column.cursor t.l2_keys in
          match find_l2 t g kb cur with
          | Error p -> (p, p)
          | Ok j ->
              let r_lo = Column.get t.l2_pos j
              and r_hi = Column.get t.l2_pos (j + 1) in
              let kcur = Column.cursor t.k3 in
              let i =
                Column.lower_bound t.k3 ~cursor:kcur ~lo:r_lo ~hi:r_hi kc
              in
              if i < r_hi && Column.read t.k3 kcur i = kc then (i, i + 1)
              else (i, i)))
  | _ -> invalid_arg "Index.range: non-prefix key combination"

(* --- views -------------------------------------------------------------- *)

(* A view is either a window onto a column (third key column of one
   (key1, key2) group, or the l1 key column itself) carrying its own
   decode cursor, or a materialized array (snapshot base/delta merges).
   Values are strictly increasing in both cases. The embedded cursor
   makes a view single-reader mutable state — exactly how the engine
   uses them (one view per pattern per probe row, inside one domain). *)
type view =
  | Slice of { col : Column.t; cur : Column.cursor; lo : int; len : int }
  | Arr of int array

let slice col ~lo ~len = Slice { col; cur = Column.cursor col; lo; len }

let column_view t ~a ~b =
  match find_l1 t a with
  | Error _ -> Arr [||]
  | Ok g -> (
      let cur = Column.cursor t.l2_keys in
      match find_l2 t g b cur with
      | Error _ -> Arr [||]
      | Ok j ->
          let lo = Column.get t.l2_pos j in
          slice t.k3 ~lo ~len:(Column.get t.l2_pos (j + 1) - lo))

(* The strictly increasing distinct first-key values — distinct subjects
   (SPO) or objects (OSP) for the statistics pass. *)
let firsts_view t = slice t.l1_keys ~lo:0 ~len:(n1 t)

let view_of_sorted_array vals = Arr vals

let view_length = function Slice { len; _ } -> len | Arr a -> Array.length a

let view_get v i =
  match v with
  | Slice { col; cur; lo; _ } -> Column.read col cur (lo + i)
  | Arr a -> Array.unsafe_get a i

(* First view index [>= from] whose value is [>= value], or the view
   length — the intersection kernel's gallop probe, answered on
   compressed slices by a skip-sample search that decodes at most one
   block. *)
let view_lower_bound v ~from value =
  match v with
  | Slice { col; cur; lo; len } ->
      Column.lower_bound col ~cursor:cur ~lo:(lo + from) ~hi:(lo + len) value
      - lo
  | Arr a ->
      let l = ref from and h = ref (Array.length a) in
      while !l < !h do
        let mid = (!l + !h) / 2 in
        if Array.unsafe_get a mid < value then l := mid + 1 else h := mid
      done;
      !l

(* --- scans -------------------------------------------------------------- *)

let iter t ~lo ~hi ~f =
  if hi > lo then begin
    let j = ref (l2_of_pos t lo) in
    let g = ref (l1_of_l2 t !j) in
    let j_end = ref (Column.get t.l2_pos (!j + 1)) in
    let g_end = ref (Column.get t.l1_grp (!g + 1)) in
    let l2cur = Column.cursor t.l2_keys in
    let k1 = ref (Column.get t.l1_keys !g) in
    let k2 = ref (Column.read t.l2_keys l2cur !j) in
    let pos = ref lo in
    Column.iter t.k3 ~lo ~hi ~f:(fun v ->
        if !pos >= !j_end then begin
          incr j;
          j_end := Column.get t.l2_pos (!j + 1);
          if !j >= !g_end then begin
            incr g;
            g_end := Column.get t.l1_grp (!g + 1);
            k1 := Column.get t.l1_keys !g
          end;
          k2 := Column.read t.l2_keys l2cur !j
        end;
        incr pos;
        let s, p, o = spo_of_keys t.order !k1 !k2 v in
        f ~s ~p ~o)
  end

(* Cold single-row access (compaction seeds, the predicate walk). *)
let row t pos =
  let j = l2_of_pos t pos in
  let g = l1_of_l2 t j in
  spo_of_keys t.order
    (Column.get t.l1_keys g)
    (Column.get t.l2_keys j)
    (Column.get t.k3 pos)

(* [iter_firsts t ~f] — every distinct first-key value with its global
   row range, in key order: the per-predicate statistics walk on PSO. *)
let iter_firsts t ~f =
  let groups = n1 t in
  let cur = Column.cursor t.l1_keys in
  for g = 0 to groups - 1 do
    f (Column.read t.l1_keys cur g) ~lo:(pos_of_l1 t g)
      ~hi:(pos_of_l1 t (g + 1))
  done

(* Distinct counts over a row range collapse to group-id arithmetic on
   the Raw offset columns — no scan, free at any scale. *)
let distinct_firsts t ~lo ~hi =
  if hi <= lo then 0 else l1_of_l2 t (l2_of_pos t (hi - 1)) - l1_of_l2 t (l2_of_pos t lo) + 1

let distinct_seconds t ~lo ~hi =
  if hi <= lo then 0 else l2_of_pos t (hi - 1) - l2_of_pos t lo + 1
