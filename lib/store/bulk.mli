(** Parallel-runner injection for bulk index builds.

    The store cannot depend on the engine's domain pool, so the pool is
    injected: {!Engine.Pool.install_bulk_runner} calls {!set_runner}
    once, and index builds fan their per-order sort/encode tasks through
    {!run}. Without a runner everything runs serially. *)

(** [set_runner ~domains run] installs a parallel task runner.
    [run ~ntasks f] must apply [f 0 .. f (ntasks-1)], each exactly once,
    possibly concurrently, and return after all complete. *)
val set_runner : domains:int -> (ntasks:int -> (int -> unit) -> unit) -> unit

val clear_runner : unit -> unit

(** Domain count of the installed runner; [1] when serial. *)
val domains : unit -> int

(** [run ~ntasks f] — run [ntasks] independent tasks through the
    installed runner (serially when none is installed). *)
val run : ntasks:int -> (int -> unit) -> unit
