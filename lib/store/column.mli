(** Off-heap integer columns — the physical storage behind the
    permutation indexes.

    Values live in [char] Bigarrays outside the OCaml heap, so index
    data is invisible to the GC and survives at fixed cost regardless of
    heap pressure. Two representations, chosen per column:

    - {!Raw}: fixed-width little-endian cells (4 bytes when every value
      fits in 31 bits, 8 otherwise — the int32 guard). O(1) access.
    - {!Delta}: blocks of 128 values; each block's first value is kept
      uncompressed in a sample (skip-index) array, the rest encoded as
      zigzag-varint deltas or, for strictly increasing dense blocks, a
      span bitset — whichever is smaller.

    Columns are immutable after {!Builder.finish} and safe to share
    across domains; {!cursor}s are the only mutable state and belong to
    one reader. *)

type mode = Raw | Delta

(** Process-global default compression mode (the [--compression] CLI
    escape hatch). Builders created with {!Builder.create} take an
    explicit mode; store construction paths consult the default. *)
val set_default_mode : mode -> unit

val default_mode : unit -> mode

val mode_name : mode -> string

val mode_of_name : string -> mode option

(** Number of values per compressed block (128). *)
val block_size : int

type t

val length : t -> int

(** Bytes of off-heap storage held by the column. *)
val mem_bytes : t -> int

val mode : t -> mode

(** [get t i] — cold random access. On compressed columns a non-sample
    position decodes a throwaway block; sequential and search paths use
    cursors instead. *)
val get : t -> int -> int

(** A per-reader decode cache: one 128-value scratch plus the id of the
    block it holds. Never share a cursor across domains. *)
type cursor

val cursor : t -> cursor

(** [read t cur i] — random access through [cur]; consecutive reads
    within one block decode it once. *)
val read : t -> cursor -> int -> int

(** [iter t ~lo ~hi ~f] applies [f] to the values at positions
    [lo..hi-1] in order, decoding each touched block exactly once. *)
val iter : t -> lo:int -> hi:int -> f:(int -> unit) -> unit

(** [lower_bound t ?cursor ~lo ~hi v] is the first position in
    [lo, hi)] whose value is [>= v], or [hi]. Requires the values over
    [lo, hi)] to be increasing. Compressed columns binary-search the
    uncompressed samples and decode exactly one candidate block (into
    [cursor] when given, so a following {!read} of the found position
    is free). *)
val lower_bound : t -> ?cursor:cursor -> lo:int -> hi:int -> int -> int

module Builder : sig
  type col = t

  type t

  val create : mode -> t

  (** [add b v] appends [v] (which must be [>= 0]). *)
  val add : t -> int -> unit

  val finish : t -> col
end

(** [of_array mode arr] builds a column from [arr] (test helper). *)
val of_array : mode -> int array -> t

(** [to_array t] decodes the whole column (test helper). *)
val to_array : t -> int array
