(* The writer side of the snapshot store. One [t] owns a store lineage:
   an atomic cell holding the current snapshot, and a writer mutex that
   serializes commits and compactions. Readers never take the mutex —
   [snapshot] is a single atomic load, and whatever snapshot a reader
   holds stays internally consistent forever (commits publish new
   snapshots; nothing mutates published ones).

   Transactions buffer encoded writes locally and apply nothing until
   [commit]: the commit fold, under the writer mutex, replays the
   buffered ops over the *latest* published delta (not the one current
   at [begin_txn]), so concurrent transactions serialize cleanly in
   commit order (last-writer-wins at triple granularity — these are
   set operations, so that is also first-writer-wins). The fold
   maintains the delta invariants (adds ∩ base = ∅, dels ⊆ base,
   adds ∩ dels = ∅) that snapshot reads depend on.

   When a committed delta grows past [compact_threshold] rows, the
   commit folds it into a fresh base (new epoch, same shared dictionary)
   before publishing — still without blocking readers, who keep their
   old base alive until they drop it. [compact] does the same on
   demand. *)

type t = {
  current : Snapshot.t Atomic.t;
  writer : Mutex.t;
  compact_threshold : int;
}

type op = Insert of (int * int * int) | Delete of (int * int * int)

type txn = {
  owner : t;
  mutable ops : op list; (* newest first; replayed in reverse *)
  mutable closed : bool;
}

let default_compact_threshold = 65_536

let create ?(compact_threshold = default_compact_threshold) store =
  {
    current = Atomic.make (Snapshot.of_store store);
    writer = Mutex.create ();
    compact_threshold = max 1 compact_threshold;
  }

let snapshot t = Atomic.get t.current

let base t = Snapshot.base (snapshot t)

let delta_rows t = Delta.size (Snapshot.delta (snapshot t))

(* Swap in a freshly built base (bulk rebuild path, e.g. LOAD or the
   legacy whole-store update), dropping any buffered delta. *)
let set_base t store =
  Mutex.protect t.writer @@ fun () ->
  Atomic.set t.current (Snapshot.of_store store)

let begin_txn t = { owner = t; ops = []; closed = false }

let check_open txn =
  if txn.closed then invalid_arg "Mvcc: transaction already committed/aborted"

let insert_encoded txn row =
  check_open txn;
  txn.ops <- Insert row :: txn.ops

let delete_encoded txn row =
  check_open txn;
  txn.ops <- Delete row :: txn.ops

let encode_triple t { Rdf.Triple.s; p; o } =
  let dict = Triple_store.dictionary (base t) in
  (Dictionary.encode dict s, Dictionary.encode dict p, Dictionary.encode dict o)

let insert txn triple = insert_encoded txn (encode_triple txn.owner triple)

(* Deleting a triple with a term the dictionary has never seen is a
   no-op: the triple cannot be in the store, nor in this transaction's
   buffer (inserting it would have interned the terms). *)
let delete txn triple =
  check_open txn;
  let dict = Triple_store.dictionary (base txn.owner) in
  match
    ( Dictionary.find dict triple.Rdf.Triple.s,
      Dictionary.find dict triple.Rdf.Triple.p,
      Dictionary.find dict triple.Rdf.Triple.o )
  with
  | Some s, Some p, Some o -> delete_encoded txn (s, p, o)
  | _ -> ()

let abort txn = txn.closed <- true

(* Materialize the view as encoded rows (base \ dels, then adds). *)
let view_rows snap =
  let rows = ref [] and n = ref 0 in
  Snapshot.iter_all snap ~f:(fun ~s ~p ~o ->
      rows := (s, p, o) :: !rows;
      incr n);
  let out = Array.make !n (0, 0, 0) in
  List.iteri (fun i r -> out.(!n - 1 - i) <- r) !rows;
  out

let compact_locked t =
  let cur = Atomic.get t.current in
  if Delta.is_empty (Snapshot.delta cur) then cur
  else begin
    let dict = Triple_store.dictionary (Snapshot.base cur) in
    let fresh = Triple_store.of_encoded_rows dict (view_rows cur) in
    let next = Snapshot.of_store fresh in
    Atomic.set t.current next;
    next
  end

let compact t = Mutex.protect t.writer @@ fun () -> compact_locked t

let commit txn =
  check_open txn;
  txn.closed <- true;
  let t = txn.owner in
  let ops = List.rev txn.ops in
  if ops = [] then snapshot t
  else
    Mutex.protect t.writer @@ fun () ->
    let cur = Atomic.get t.current in
    let b = Snapshot.base cur and d = Snapshot.delta cur in
    let adds = Hashtbl.create 64 and dels = Hashtbl.create 64 in
    Index_set.iter_all (Delta.adds d) ~f:(fun ~s ~p ~o ->
        Hashtbl.replace adds (s, p, o) ());
    Index_set.iter_all (Delta.dels d) ~f:(fun ~s ~p ~o ->
        Hashtbl.replace dels (s, p, o) ());
    List.iter
      (fun op ->
        match op with
        | Insert ((s, p, o) as row) ->
            if Hashtbl.mem dels row then Hashtbl.remove dels row
            else if not (Triple_store.contains b ~s ~p ~o) then
              Hashtbl.replace adds row ()
        | Delete ((s, p, o) as row) ->
            if Hashtbl.mem adds row then Hashtbl.remove adds row
            else if Triple_store.contains b ~s ~p ~o then
              Hashtbl.replace dels row ())
      ops;
    let to_array h =
      let out = Array.make (Hashtbl.length h) (0, 0, 0) in
      let i = ref 0 in
      Hashtbl.iter
        (fun row () ->
          out.(!i) <- row;
          incr i)
        h;
      out
    in
    let delta =
      Delta.make ~gen:(Delta.gen d + 1) ~adds:(to_array adds)
        ~dels:(to_array dels)
    in
    let next =
      Snapshot.make ~base:b ~delta ~version:(Triple_store.fresh_epoch ())
    in
    Atomic.set t.current next;
    if Delta.size delta >= t.compact_threshold then compact_locked t else next

(* One-shot transactional write: buffer, commit, return the published
   snapshot. *)
let apply t ~inserts ~deletes =
  let txn = begin_txn t in
  List.iter (insert txn) inserts;
  List.iter (delete txn) deletes;
  commit txn
