(* The writer side of the snapshot store. One [t] owns a store lineage:
   an atomic cell holding the current snapshot, and a writer mutex that
   serializes commits and compactions. Readers never take the mutex —
   [snapshot] is a single atomic load, and whatever snapshot a reader
   holds stays internally consistent forever (commits publish new
   snapshots; nothing mutates published ones).

   Transactions buffer encoded writes locally and apply nothing until
   [commit]: the commit fold, under the writer mutex, replays the
   buffered ops over the *latest* published delta (not the one current
   at [begin_txn]), so concurrent transactions serialize cleanly in
   commit order (last-writer-wins at triple granularity — these are
   set operations, so that is also first-writer-wins). The fold
   maintains the delta invariants (adds ∩ base = ∅, dels ⊆ base,
   adds ∩ dels = ∅) that snapshot reads depend on.

   Durability ([open_dir]) is layered on without touching the read
   path: when a lineage owns a {!Wal.t}, the commit appends the
   transaction's records to the log *before* publishing the snapshot
   (write-ahead), and waits for its sync policy *after* releasing the
   writer mutex (group commit). Compaction doubles as the checkpoint:
   the folded base is written as an atomic snapshot file and the log is
   truncated behind it — recovery loads the checkpoint and refolds the
   logged transactions, which yields the same visible set because the
   fold maintains visible = (base \ dels) ∪ adds under any base/delta
   split of the same state.

   When a committed delta grows past [compact_threshold] rows, the
   commit folds it into a fresh base (new epoch, same shared dictionary)
   before publishing — still without blocking readers, who keep their
   old base alive until they drop it. [compact] does the same on
   demand. *)

type t = {
  current : Snapshot.t Atomic.t;
  writer : Mutex.t;
  compact_threshold : int;
  wal : Wal.t option;
}

type op = Insert of (int * int * int) | Delete of (int * int * int)

type txn = {
  owner : t;
  mutable ops : op list; (* newest first; replayed in reverse *)
  mutable closed : bool;
}

let default_compact_threshold = 65_536

let create ?(compact_threshold = default_compact_threshold) store =
  {
    current = Atomic.make (Snapshot.of_store store);
    writer = Mutex.create ();
    compact_threshold = max 1 compact_threshold;
    wal = None;
  }

let snapshot t = Atomic.get t.current

let base t = Snapshot.base (snapshot t)

let delta_rows t = Delta.size (Snapshot.delta (snapshot t))

let wal t = t.wal

let begin_txn t = { owner = t; ops = []; closed = false }

let check_open txn =
  if txn.closed then invalid_arg "Mvcc: transaction already committed/aborted"

let insert_encoded txn row =
  check_open txn;
  txn.ops <- Insert row :: txn.ops

let delete_encoded txn row =
  check_open txn;
  txn.ops <- Delete row :: txn.ops

let encode_triple t { Rdf.Triple.s; p; o } =
  let dict = Triple_store.dictionary (base t) in
  (Dictionary.encode dict s, Dictionary.encode dict p, Dictionary.encode dict o)

let insert txn triple = insert_encoded txn (encode_triple txn.owner triple)

(* Deleting a triple with a term the dictionary has never seen is a
   no-op: the triple cannot be in the store, nor in this transaction's
   buffer (inserting it would have interned the terms). *)
let delete txn triple =
  check_open txn;
  let dict = Triple_store.dictionary (base txn.owner) in
  match
    ( Dictionary.find dict triple.Rdf.Triple.s,
      Dictionary.find dict triple.Rdf.Triple.p,
      Dictionary.find dict triple.Rdf.Triple.o )
  with
  | Some s, Some p, Some o -> delete_encoded txn (s, p, o)
  | _ -> ()

let abort txn = txn.closed <- true

(* Materialize the view as encoded rows (base \ dels, then adds). *)
let view_rows snap =
  let rows = ref [] and n = ref 0 in
  Snapshot.iter_all snap ~f:(fun ~s ~p ~o ->
      rows := (s, p, o) :: !rows;
      incr n);
  let out = Array.make !n (0, 0, 0) in
  List.iteri (fun i r -> out.(!n - 1 - i) <- r) !rows;
  out

let compact_locked t =
  let cur = Atomic.get t.current in
  if Delta.is_empty (Snapshot.delta cur) then cur
  else begin
    let dict = Triple_store.dictionary (Snapshot.base cur) in
    let fresh = Triple_store.of_encoded_rows dict (view_rows cur) in
    let next = Snapshot.of_store fresh in
    Atomic.set t.current next;
    (* Checkpoint AFTER the publish: if the checkpoint write dies
       mid-way, memory already serves the compacted base and the log
       still replays to the same visible set over the old checkpoint. *)
    (match t.wal with Some w -> Wal.checkpoint w fresh | None -> ());
    next
  end

let compact t = Mutex.protect t.writer @@ fun () -> compact_locked t

(* Swap in a freshly built base (bulk rebuild path, e.g. LOAD or the
   legacy whole-store update), dropping any buffered delta. On a
   durable lineage the new base becomes the next checkpoint — recovery
   must not resurrect pre-rebuild transactions from the old log. *)
let set_base t store =
  Mutex.protect t.writer @@ fun () ->
  Atomic.set t.current (Snapshot.of_store store);
  match t.wal with Some w -> Wal.checkpoint w store | None -> ()

(* The commit fold: replay [ops] in order over mutable row tables
   seeded from the published delta, preserving the delta invariants
   against [b]. Shared by live commits and WAL replay. *)
let fold_ops b adds dels ops =
  List.iter
    (fun op ->
      match op with
      | Insert ((s, p, o) as row) ->
          if Hashtbl.mem dels row then Hashtbl.remove dels row
          else if not (Triple_store.contains b ~s ~p ~o) then
            Hashtbl.replace adds row ()
      | Delete ((s, p, o) as row) ->
          if Hashtbl.mem adds row then Hashtbl.remove adds row
          else if Triple_store.contains b ~s ~p ~o then
            Hashtbl.replace dels row ())
    ops

let to_array h =
  let out = Array.make (Hashtbl.length h) (0, 0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun row () ->
      out.(!i) <- row;
      incr i)
    h;
  out

(* Build and publish the next snapshot from folded tables; caller holds
   the writer mutex. *)
let publish_locked t ~b ~gen adds dels =
  let delta = Delta.make ~gen ~adds:(to_array adds) ~dels:(to_array dels) in
  let next =
    Snapshot.make ~base:b ~delta ~version:(Triple_store.fresh_epoch ())
  in
  Atomic.set t.current next;
  if Delta.size delta >= t.compact_threshold then compact_locked t else next

let commit txn =
  check_open txn;
  txn.closed <- true;
  let t = txn.owner in
  let ops = List.rev txn.ops in
  if ops = [] then snapshot t
  else begin
    let next, lsn =
      Mutex.protect t.writer @@ fun () ->
      let cur = Atomic.get t.current in
      let b = Snapshot.base cur and d = Snapshot.delta cur in
      let adds, dels = Delta.to_tables d in
      fold_ops b adds dels ops;
      (* Write-ahead: the records (and their dictionary entries) hit
         the log before any reader can acquire the new snapshot. A
         failure here aborts the commit with nothing published. *)
      let lsn =
        match t.wal with
        | None -> None
        | Some w ->
            let dict = Triple_store.dictionary b in
            let wops =
              List.map
                (function
                  | Insert row -> Wal.Add row | Delete row -> Wal.Del row)
                ops
            in
            Some (Wal.append_commit w ~dict ~ops:wops)
      in
      (publish_locked t ~b ~gen:(Delta.gen d + 1) adds dels, lsn)
    in
    (* Durability wait OUTSIDE the writer mutex: concurrent committers
       pile onto one leader's fsync (group commit) instead of
       serializing their syncs behind the lock. *)
    (match (t.wal, lsn) with
    | Some w, Some lsn -> Wal.commit_durable w lsn
    | _ -> ());
    next
  end

(* One-shot transactional write: buffer, commit, return the published
   snapshot. *)
let apply t ~inserts ~deletes =
  let txn = begin_txn t in
  List.iter (insert txn) inserts;
  List.iter (delete txn) deletes;
  commit txn

(* --- durability -------------------------------------------------------- *)

let sync t = Option.iter Wal.sync t.wal

let checkpoint t =
  Mutex.protect t.writer @@ fun () ->
  let cur = Atomic.get t.current in
  if Delta.is_empty (Snapshot.delta cur) then begin
    (* Nothing to fold, but rotating the log still bounds replay. *)
    (match t.wal with Some w -> Wal.checkpoint w (Snapshot.base cur) | None -> ());
    cur
  end
  else compact_locked t

let open_dir ?(compact_threshold = default_compact_threshold) ?policy ?init
    dirname =
  let opened = Wal.open_dir ?policy ?init dirname in
  let t =
    {
      current = Atomic.make (Snapshot.of_store opened.Wal.store);
      writer = Mutex.create ();
      compact_threshold = max 1 compact_threshold;
      wal = Some opened.Wal.wal;
    }
  in
  (match opened.Wal.txns with
  | [] -> ()
  | txns ->
      (* Refold the committed prefix over the checkpointed base in one
         pass (one published generation, not one per transaction) and
         WITHOUT re-logging: the records are already durable. Auto-
         compaction stays off during the refold — checkpointing from
         inside replay would truncate a log whose tail only exists in
         this list — and runs once at the end if the recovered delta
         crossed the threshold. *)
      Mutex.protect t.writer @@ fun () ->
      let cur = Atomic.get t.current in
      let b = Snapshot.base cur in
      let adds = Hashtbl.create 1024 and dels = Hashtbl.create 64 in
      List.iter
        (fun { Wal.ops; _ } ->
          fold_ops b adds dels
            (List.map
               (function
                 | Wal.Add row -> Insert row | Wal.Del row -> Delete row)
               ops))
        txns;
      ignore (publish_locked t ~b ~gen:1 adds dels));
  (t, opened.Wal.recovery)
