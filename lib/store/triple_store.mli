(** The in-memory RDF store: a dictionary-encoded, deduplicated triple table
    with six permutation indexes (SPO, SOP, PSO, POS, OSP, OPS), in the
    style of single-table exhaustively-indexed RDF stores (RDF-3X). *)

type t

(** {1 Construction}

    Every build path streams triples into growable id columns and fans
    the six per-order sort/encode tasks out over the {!Bulk} runner
    (serial without one); the indexes land in off-heap {!Column}
    storage whose compression follows {!Column.default_mode} unless a
    [?mode] override is given. *)

(** [of_triples triples] encodes, deduplicates and indexes the dataset. *)
val of_triples : Rdf.Triple.t list -> t

(** [of_seq triples] is {!of_triples} over a sequence, avoiding an
    intermediate list for large generated datasets. *)
val of_seq : Rdf.Triple.t Seq.t -> t

(** [of_iter produce] is the bulk-load entry point: [produce emit] must
    call [emit] once per triple. Nothing is materialized per triple —
    generators feed the store without building a list. *)
val of_iter : ?mode:Column.mode -> ((Rdf.Triple.t -> unit) -> unit) -> t

(** [load_ntriples path] parses and loads an N-Triples file. *)
val load_ntriples : string -> t

(** [of_encoded_rows dict rows] builds a store from already-encoded
    (s, p, o) id triples over [dict] (deduplicating). Used by the
    compaction path and bulk importers. *)
val of_encoded_rows : Dictionary.t -> (int * int * int) array -> t

(** [of_sorted_columns dict ~s ~p ~o ()] builds a store from id columns
    already strictly increasing in SPO lexicographic order — the
    snapshot loader's sort-free path. *)
val of_sorted_columns :
  ?mode:Column.mode ->
  Dictionary.t ->
  s:int array ->
  p:int array ->
  o:int array ->
  unit ->
  t

(** {1 Load telemetry} *)

type load_stats = {
  triples : int;  (** distinct triples indexed *)
  elapsed_s : float;  (** encode + sort + index build wall time *)
  triples_per_sec : float;
  parallel_tasks : int;  (** runner domains the build fanned out over *)
}

(** [load_stats store] — throughput of the build that produced this
    store. *)
val load_stats : t -> load_stats

(** [mem_bytes store] is the off-heap footprint of the six indexes. *)
val mem_bytes : t -> int

(** [iter_all store ~f] — every triple, as ids, in SPO order. *)
val iter_all : t -> f:(s:int -> p:int -> o:int -> unit) -> unit

(** {1 Epochs}

    Every store carries a monotonic epoch stamp drawn from a
    process-global counter: newly built stores (including the rebuilt
    store a SPARQL Update returns, and every compacted base) get a
    fresh epoch. {!Snapshot} versions are drawn from the same counter,
    so base epochs and snapshot versions are mutually comparable.
    Plan and statistics caches record the stamp they were computed
    under and treat a base-epoch mismatch as an invalidation. *)

(** [fresh_epoch ()] draws the next stamp from the process-global
    counter (used by the MVCC layer to version published snapshots). *)
val fresh_epoch : unit -> int

(** [epoch store] is the store's current epoch. *)
val epoch : t -> int

(** [bump_epoch store] advances the epoch to a fresh, strictly larger
    value (invalidating everything keyed on earlier epochs). *)
val bump_epoch : t -> unit

(** [intern_term store term] encodes [term] in the dictionary, assigning
    a fresh id when it was not yet present — the eval-time dictionary
    write performed by VALUES blocks. Safe under concurrent readers
    (the dictionary is internally synchronized; ids are append-only),
    and does not bump the epoch: only plans that compiled a constant to
    [Missing] are sensitive to dictionary growth, and the plan cache
    re-validates those against the dictionary size. *)
val intern_term : t -> Rdf.Term.t -> int

(** {1 Accessors} *)

val dictionary : t -> Dictionary.t

(** [indexes store] is the store's immutable index set (the base of a
    snapshot). *)
val indexes : t -> Index_set.t

(** [size store] is the number of distinct triples. *)
val size : t -> int

(** [encode_term store term] is the id of [term] if present in the data. *)
val encode_term : t -> Rdf.Term.t -> int option

val decode_term : t -> int -> Rdf.Term.t

(** {1 Pattern access}

    All pattern functions take optional bound positions [s], [p], [o]; an
    omitted position is a wildcard. *)

(** [count store ?s ?p ?o ()] is the exact number of matching triples,
    computed by index range arithmetic (no scan). *)
val count : t -> ?s:int -> ?p:int -> ?o:int -> unit -> int

(** [iter store ?s ?p ?o ~f ()] applies [f ~s ~p ~o] to each matching
    triple. *)
val iter : t -> ?s:int -> ?p:int -> ?o:int -> f:(s:int -> p:int -> o:int -> unit) -> unit -> unit

(** [contains store ~s ~p ~o] tests membership of a fully-bound triple. *)
val contains : t -> s:int -> p:int -> o:int -> bool

(** [third_column_view store ?s ?p ?o ()] — with exactly two positions
    bound, the sorted, duplicate-free {!Index.view} of values the third
    position takes (SPO for (s,p), SOP for (s,o), POS for (p,o)). Any
    other combination is an [Invalid_argument]. The view aliases index
    memory — no copying. *)
val third_column_view : t -> ?s:int -> ?p:int -> ?o:int -> unit -> Index.view

(** {1 Statistics inputs} *)

(** [index store order] exposes a permutation index (used by {!Stats}). *)
val index : t -> Index.order -> Index.t

(** [distinct_subjects store ~p] / [distinct_objects store ~p]: number of
    distinct subjects (resp. objects) occurring with predicate [p]. *)
val distinct_subjects : t -> p:int -> int

val distinct_objects : t -> p:int -> int

(** [predicates store] lists all predicate ids with their triple counts. *)
val predicates : t -> (int * int) list
