(** Write-ahead logging and crash recovery for the MVCC store.

    A durable store lineage lives in a directory holding exactly one
    current checkpoint ([checkpoint.N.spuo], the {!Snapshot} v2 format)
    and one current log segment ([wal.N.log]). Every committed
    transaction appends two length-prefixed, CRC-32-checksummed
    records — a body (newly interned dictionary terms plus the buffered
    ops, in order) and a commit marker — to the segment {e before} the
    in-memory snapshot is published. A transaction is durable exactly
    when its marker record is durable.

    {b Sync policies.} Appends always flush to the OS (a process crash
    loses nothing); [fsync] frequency is the policy: [Never] leaves it
    to the kernel, [Interval s] syncs when at least [s] seconds have
    passed since the last sync, [Every_commit] syncs before the commit
    returns. Syncs are {e group commits}: concurrent committers elect
    one leader whose single [fsync] covers every commit appended before
    it; the rest wait on a condition variable.

    {b Checkpointing.} [checkpoint] (called from the MVCC compaction
    path, under the owner's writer mutex) atomically writes
    [checkpoint.(N+1).spuo] (temp + fsync + rename), starts a fresh
    [wal.(N+1).log], and deletes the superseded files — the WAL is
    truncated behind the checkpoint without ever holding a state both
    files describe ambiguously.

    {b Recovery.} {!open_dir} loads the highest-numbered checkpoint,
    replays its log segment, and stops at the first torn, misordered or
    checksum-failing record, physically truncating the segment to the
    last committed boundary — exactly the committed prefix survives,
    never a torn blend. *)

type t

type sync_policy =
  | Never  (** flush to the OS only; the kernel decides when to sync *)
  | Interval of float  (** sync when this many seconds passed since the last *)
  | Every_commit  (** sync (group commit) before every commit returns *)

(** A buffered transaction op as logged: encoded ids, in buffer order. *)
type op = Add of (int * int * int) | Del of (int * int * int)

(** One committed transaction recovered from the log. [txn_id] is the
    1-based position within its segment. *)
type txn_record = { txn_id : int; ops : op list }

type recovery = {
  checkpoint_seq : int;  (** segment/checkpoint number recovered from *)
  replayed_txns : int;
  replayed_ops : int;
  truncated_bytes : int;
      (** torn/corrupt tail bytes physically removed from the segment *)
  recovery_ms : float;
  initialized : bool;  (** the directory was fresh: [init] seeded it *)
}

type opened = {
  wal : t;
  store : Triple_store.t;  (** the checkpointed base *)
  txns : txn_record list;  (** committed prefix, in commit order *)
  recovery : recovery;
}

(** Raised when the directory cannot be recovered without operator
    intervention (corrupt checkpoint, log segment without a checkpoint,
    segment newer than the newest checkpoint). Distinct from ordinary
    torn-tail truncation, which recovery handles silently. *)
exception Unrecoverable of string

(** [open_dir dir] recovers (or, for a fresh/empty directory,
    initializes with [init ()], default empty) a durable lineage.
    Creates [dir] if missing. New dictionary terms recovered from the
    log are interned into the returned store's dictionary; the caller
    replays [txns] over [store] to rebuild the committed state. *)
val open_dir :
  ?policy:sync_policy -> ?init:(unit -> Triple_store.t) -> string -> opened

(** [append_commit t ~dict ~ops] appends a body and marker record for
    the next transaction and returns its log sequence number (to pass
    to {!commit_durable}). New dictionary entries since the last append
    (or checkpoint) are logged in the body, covering terms interned by
    reader paths too. Must be called under the owning store's writer
    mutex. On failure the segment is rolled back to the previous commit
    boundary before the exception escapes. *)
val append_commit : t -> dict:Dictionary.t -> ops:op list -> int

(** [commit_durable t lsn] applies the sync policy for a commit whose
    append returned [lsn]: waits until [lsn] is synced ([Every_commit]),
    syncs if the interval elapsed ([Interval]), or returns ([Never]).
    Safe from any domain; concurrent callers share one fsync. *)
val commit_durable : t -> int -> unit

(** [sync t] forces everything appended so far to durable storage. *)
val sync : t -> unit

(** [checkpoint t store] — see the module header. [store] must be the
    base the current published snapshot folds down to (compaction) or
    replaces the lineage with ([set_base]). Must be called under the
    owning store's writer mutex. *)
val checkpoint : t -> Triple_store.t -> unit

(** [close t] syncs and closes the segment. [t] is unusable after. *)
val close : t -> unit

val policy : t -> sync_policy
val dir : t -> string

(** Path of the current log segment (tests truncate copies of it). *)
val segment_file : t -> string

(** LSN of the last fully appended commit ([0] maps below the first
    segment's header; LSNs are cumulative across segment rotations). *)
val appended_lsn : t -> int

val synced_lsn : t -> int

type stats = {
  commits : int;  (** transactions appended *)
  syncs : int;  (** fsyncs issued *)
  batched_commits : int;  (** commits covered by those fsyncs *)
  max_batch : int;  (** largest single group commit *)
  checkpoints : int;  (** rotations since open *)
  appended_bytes : int;  (** bytes appended to the current segment *)
  segment : int;  (** current segment number *)
}

val stats : t -> stats

(** Exposed for tests: the CRC-32 (IEEE, reflected) of a string. *)
val crc32 : string -> int
