(** The writer side of the snapshot store: one value per store lineage,
    holding the current {!Snapshot.t} in an atomic cell behind a writer
    mutex.

    Readers call {!snapshot} — an O(1) atomic load, never blocked by
    writers — and evaluate against the immutable view they got.
    Transactions buffer writes locally; {!commit} serializes on the
    writer mutex, folds the buffer over the latest published delta
    (maintaining adds ∩ base = ∅, dels ⊆ base, adds ∩ dels = ∅) and
    publishes a new snapshot atomically. Readers that acquired their
    snapshot before the publish keep seeing exactly the pre-commit
    state; readers after see exactly the post-commit state.

    When a committed delta exceeds [compact_threshold] buffered rows it
    is folded into a fresh base epoch (same shared dictionary) before
    publishing; {!compact} forces the same fold. In-flight readers are
    never blocked — they keep their old base alive until they drop it. *)

type t

(** [create ?compact_threshold store] starts a lineage at [store] with
    an empty delta. [compact_threshold] (default 65536) is the buffered
    row count at which a commit auto-compacts. The lineage is purely
    in-memory — see {!open_dir} for a durable one. *)
val create : ?compact_threshold:int -> Triple_store.t -> t

(** [open_dir dir] opens (or initializes, seeding a fresh directory
    with [init ()] — default empty) a durable lineage backed by a
    write-ahead log in [dir]: every commit appends its records to the
    log before publishing and honors [policy] (default
    [Wal.Every_commit]) before returning; compaction checkpoints the
    folded base and truncates the log behind it. On reopen, the
    committed prefix of the log is refolded over the last checkpoint —
    exactly the transactions whose commit marker hit the disk are
    restored. Raises {!Wal.Unrecoverable} when the directory needs
    operator intervention. *)
val open_dir :
  ?compact_threshold:int ->
  ?policy:Wal.sync_policy ->
  ?init:(unit -> Triple_store.t) ->
  string ->
  t * Wal.recovery

(** [wal t] — the log handle of a durable lineage ([None] for
    {!create}d ones); exposes sync/batch counters. *)
val wal : t -> Wal.t option

(** [snapshot t] — the current consistent view; O(1), wait-free. *)
val snapshot : t -> Snapshot.t

(** [base t] is the current snapshot's base store. *)
val base : t -> Triple_store.t

(** [delta_rows t] — buffered delta rows in the current snapshot. *)
val delta_rows : t -> int

(** [set_base t store] atomically replaces the lineage with a freshly
    built base (bulk rebuild path), dropping any buffered delta. *)
val set_base : t -> Triple_store.t -> unit

(** {1 Transactions} *)

type txn

val begin_txn : t -> txn

(** [insert txn triple] / [delete txn triple] buffer a write (encoding
    terms through the shared dictionary; inserting interns new terms,
    deleting unknown terms is a no-op). Nothing is visible to any
    reader until {!commit}. Raises [Invalid_argument] on a closed
    transaction. *)
val insert : txn -> Rdf.Triple.t -> unit

val delete : txn -> Rdf.Triple.t -> unit

(** Encoded-row variants (terms already interned). *)
val insert_encoded : txn -> int * int * int -> unit

val delete_encoded : txn -> int * int * int -> unit

(** [commit txn] publishes the buffered writes atomically and returns
    the new current snapshot (auto-compacting if the delta crossed the
    threshold). An empty transaction publishes nothing. *)
val commit : txn -> Snapshot.t

(** [abort txn] drops the buffer; nothing was ever visible. *)
val abort : txn -> unit

(** [apply t ~inserts ~deletes] — one-shot transaction. *)
val apply :
  t -> inserts:Rdf.Triple.t list -> deletes:Rdf.Triple.t list -> Snapshot.t

(** {1 Compaction and durability} *)

(** [compact t] folds the current delta into a fresh base epoch and
    publishes it (no-op on an empty delta); returns the new snapshot.
    On a durable lineage this doubles as the checkpoint: the folded
    base is written atomically and the log truncated behind it, without
    blocking pinned readers. *)
val compact : t -> Snapshot.t

(** [checkpoint t] — like {!compact}, but also rotates the log when the
    delta is empty (bounding recovery replay to zero transactions).
    No-op on an in-memory lineage. *)
val checkpoint : t -> Snapshot.t

(** [sync t] forces every appended commit to durable storage (useful
    before exiting under the [Never]/[Interval] policies). No-op on an
    in-memory lineage. *)
val sync : t -> unit
