type t = {
  dict : Dictionary.t;
  base : Index_set.t;
  (* Version stamp read by plan/statistics caches: any value observed
     before a rebuild differs from every value observed after it. *)
  epoch : int Atomic.t;
}

(* Epochs are drawn from one process-global counter so they stay
   monotonic across store rebuilds: the store a bulk update returns
   carries a strictly larger epoch than the store it replaced. Snapshot
   versions are drawn from the same counter, so a base epoch and a
   snapshot version are comparable stamps. *)
let epoch_counter = Atomic.make 0

let fresh_epoch () = Atomic.fetch_and_add epoch_counter 1

let epoch store = Atomic.get store.epoch

let bump_epoch store = Atomic.set store.epoch (fresh_epoch ())

let dictionary store = store.dict

let indexes store = store.base

let size store = Index_set.size store.base

let encode_term store term = Dictionary.find store.dict term

(* The one dictionary write evaluation performs: materializing a VALUES
   block interns its constants. Ids are append-only and the dictionary
   is internally synchronized, so this is safe under concurrent readers
   and does NOT invalidate existing plans — only plans that compiled a
   constant to [Missing] care about dictionary growth, and those are
   re-validated against the dictionary size (see {!Session}). *)
let intern_term store term = Dictionary.encode store.dict term

let decode_term store id = Dictionary.decode store.dict id

let index store order = Index_set.index store.base order

let of_encoded dict rows =
  { dict; base = Index_set.of_rows rows; epoch = Atomic.make (fresh_epoch ()) }

let of_encoded_rows dict rows = of_encoded dict rows

let iter_all store ~f = Index_set.iter_all store.base ~f

let of_seq triples =
  let dict = Dictionary.create () in
  let rows = ref [] in
  Seq.iter
    (fun { Rdf.Triple.s; p; o } ->
      let row =
        (Dictionary.encode dict s, Dictionary.encode dict p,
         Dictionary.encode dict o)
      in
      rows := row :: !rows)
    triples;
  of_encoded dict (Array.of_list !rows)

let of_triples triples = of_seq (List.to_seq triples)

let load_ntriples path = of_triples (Rdf.Ntriples.parse_file path)

let third_column_view store ?s ?p ?o () =
  Index_set.third_column_view store.base ?s ?p ?o ()

let count store ?s ?p ?o () = Index_set.count store.base ?s ?p ?o ()

let iter store ?s ?p ?o ~f () = Index_set.iter store.base ?s ?p ?o ~f ()

let contains store ~s ~p ~o = Index_set.contains store.base ~s ~p ~o

let distinct_subjects store ~p = Index_set.distinct_subjects store.base ~p

let distinct_objects store ~p = Index_set.distinct_objects store.base ~p

let predicates store = Index_set.predicates store.base
