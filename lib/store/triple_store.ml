type t = {
  dict : Dictionary.t;
  table : Index.table;
  spo : Index.t;
  sop : Index.t;
  pso : Index.t;
  pos : Index.t;
  osp : Index.t;
  ops : Index.t;
  (* Version stamp read by plan/statistics caches: any value observed
     before a mutation differs from every value observed after it. *)
  epoch : int Atomic.t;
}

(* Epochs are drawn from one process-global counter so they stay
   monotonic across store rebuilds: the store a bulk update returns
   carries a strictly larger epoch than the store it replaced, even if
   the old store's epoch was bumped in place meanwhile. *)
let epoch_counter = Atomic.make 0

let fresh_epoch () = Atomic.fetch_and_add epoch_counter 1

let epoch store = Atomic.get store.epoch

let bump_epoch store = Atomic.set store.epoch (fresh_epoch ())

let dictionary store = store.dict

let size store = Array.length store.table.Index.s

let encode_term store term = Dictionary.find store.dict term

(* The one in-place mutation evaluation performs: materializing a VALUES
   block interns its constants. A fresh term changes the dictionary, so
   cached plans keyed on the old epoch must be re-validated. *)
let intern_term store term =
  let before = Dictionary.size store.dict in
  let id = Dictionary.encode store.dict term in
  if Dictionary.size store.dict <> before then bump_epoch store;
  id

let decode_term store id = Dictionary.decode store.dict id

let index store = function
  | Index.Spo -> store.spo
  | Index.Sop -> store.sop
  | Index.Pso -> store.pso
  | Index.Pos -> store.pos
  | Index.Osp -> store.osp
  | Index.Ops -> store.ops

(* Sort-and-dedup encoded triples in SPO order. *)
let dedup_encoded (rows : (int * int * int) array) =
  let cmp (s1, p1, o1) (s2, p2, o2) =
    let c = Int.compare s1 s2 in
    if c <> 0 then c
    else
      let c = Int.compare p1 p2 in
      if c <> 0 then c else Int.compare o1 o2
  in
  Array.sort cmp rows;
  let n = Array.length rows in
  if n = 0 then rows
  else begin
    let distinct = ref 1 in
    for i = 1 to n - 1 do
      if cmp rows.(i) rows.(i - 1) <> 0 then begin
        rows.(!distinct) <- rows.(i);
        incr distinct
      end
    done;
    Array.sub rows 0 !distinct
  end

let of_encoded dict rows =
  let rows = dedup_encoded rows in
  let n = Array.length rows in
  let table =
    {
      Index.s = Array.make n 0;
      Index.p = Array.make n 0;
      Index.o = Array.make n 0;
    }
  in
  Array.iteri
    (fun i (s, p, o) ->
      table.Index.s.(i) <- s;
      table.Index.p.(i) <- p;
      table.Index.o.(i) <- o)
    rows;
  {
    dict;
    table;
    spo = Index.build Index.Spo table;
    sop = Index.build Index.Sop table;
    pso = Index.build Index.Pso table;
    pos = Index.build Index.Pos table;
    osp = Index.build Index.Osp table;
    ops = Index.build Index.Ops table;
    epoch = Atomic.make (fresh_epoch ());
  }

let of_encoded_rows dict rows = of_encoded dict rows

let iter_all store ~f =
  let lo, hi = Index.range store.spo () in
  Index.iter store.spo ~lo ~hi ~f

let of_seq triples =
  let dict = Dictionary.create () in
  let rows = ref [] in
  let count = ref 0 in
  Seq.iter
    (fun { Rdf.Triple.s; p; o } ->
      let row =
        (Dictionary.encode dict s, Dictionary.encode dict p,
         Dictionary.encode dict o)
      in
      rows := row :: !rows;
      incr count)
    triples;
  of_encoded dict (Array.of_list !rows)

let of_triples triples = of_seq (List.to_seq triples)

let load_ntriples path = of_triples (Rdf.Ntriples.parse_file path)

(* Pick the index whose component order puts the bound positions first, and
   return it along with the (a, b, c) key prefix. *)
let plan_lookup store ?s ?p ?o () =
  match (s, p, o) with
  | None, None, None -> (store.spo, None, None, None)
  | Some s, None, None -> (store.spo, Some s, None, None)
  | None, Some p, None -> (store.pso, Some p, None, None)
  | None, None, Some o -> (store.osp, Some o, None, None)
  | Some s, Some p, None -> (store.spo, Some s, Some p, None)
  | Some s, None, Some o -> (store.sop, Some s, Some o, None)
  | None, Some p, Some o -> (store.pos, Some p, Some o, None)
  | Some s, Some p, Some o -> (store.spo, Some s, Some p, Some o)

let third_column_view store ?s ?p ?o () =
  match (s, p, o) with
  | Some s, Some p, None -> Index.column_view store.spo ~a:s ~b:p
  | Some s, None, Some o -> Index.column_view store.sop ~a:s ~b:o
  | None, Some p, Some o -> Index.column_view store.pos ~a:p ~b:o
  | _ ->
      invalid_arg "Triple_store.third_column_view: exactly two bound positions"

let count store ?s ?p ?o () =
  let idx, a, b, c = plan_lookup store ?s ?p ?o () in
  let lo, hi = Index.range idx ?a ?b ?c () in
  hi - lo

let iter store ?s ?p ?o ~f () =
  let idx, a, b, c = plan_lookup store ?s ?p ?o () in
  let lo, hi = Index.range idx ?a ?b ?c () in
  Index.iter idx ~lo ~hi ~f

let contains store ~s ~p ~o = count store ~s ~p ~o () > 0

(* Within a single-predicate range of PSO, distinct (p, s) pairs coincide
   with distinct subjects. *)
let distinct_subjects store ~p =
  let lo, hi = Index.range store.pso ~a:p () in
  Index.distinct_seconds store.pso ~lo ~hi

let distinct_objects store ~p =
  let lo, hi = Index.range store.pos ~a:p () in
  Index.distinct_seconds store.pos ~lo ~hi

let predicates store =
  let idx = store.pso in
  let n = size store in
  let rec collect pos acc =
    if pos >= n then List.rev acc
    else
      let _, p, _ = Index.row idx pos in
      let _, hi = Index.range idx ~a:p () in
      collect hi ((p, hi - pos) :: acc)
  in
  collect 0 []
