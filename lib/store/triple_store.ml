type load_stats = {
  triples : int;  (* distinct triples indexed *)
  elapsed_s : float;  (* encode + sort + index build wall time *)
  triples_per_sec : float;
  parallel_tasks : int;  (* runner domains the build fanned out over *)
}

type t = {
  dict : Dictionary.t;
  base : Index_set.t;
  (* Version stamp read by plan/statistics caches: any value observed
     before a rebuild differs from every value observed after it. *)
  epoch : int Atomic.t;
  load : load_stats;
}

(* Epochs are drawn from one process-global counter so they stay
   monotonic across store rebuilds: the store a bulk update returns
   carries a strictly larger epoch than the store it replaced. Snapshot
   versions are drawn from the same counter, so a base epoch and a
   snapshot version are comparable stamps. *)
let epoch_counter = Atomic.make 0

let fresh_epoch () = Atomic.fetch_and_add epoch_counter 1

let epoch store = Atomic.get store.epoch

let bump_epoch store = Atomic.set store.epoch (fresh_epoch ())

let dictionary store = store.dict

let indexes store = store.base

let size store = Index_set.size store.base

let mem_bytes store = Index_set.mem_bytes store.base

let load_stats store = store.load

let encode_term store term = Dictionary.find store.dict term

(* The one dictionary write evaluation performs: materializing a VALUES
   block interns its constants. Ids are append-only and the dictionary
   is internally synchronized, so this is safe under concurrent readers
   and does NOT invalidate existing plans — only plans that compiled a
   constant to [Missing] care about dictionary growth, and those are
   re-validated against the dictionary size (see {!Session}). *)
let intern_term store term = Dictionary.encode store.dict term

let decode_term store id = Dictionary.decode store.dict id

let index store order = Index_set.index store.base order

let stats_of ~t0 base =
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let triples = Index_set.size base in
  {
    triples;
    elapsed_s;
    triples_per_sec =
      (if elapsed_s > 0. then float_of_int triples /. elapsed_s else 0.);
    parallel_tasks = Bulk.domains ();
  }

let make ~t0 dict base =
  { dict; base; epoch = Atomic.make (fresh_epoch ()); load = stats_of ~t0 base }

let of_encoded_rows dict rows =
  let t0 = Unix.gettimeofday () in
  make ~t0 dict (Index_set.of_rows rows)

let of_sorted_columns ?mode dict ~s ~p ~o () =
  let t0 = Unix.gettimeofday () in
  make ~t0 dict (Index_set.of_sorted_columns ?mode ~s ~p ~o ())

let iter_all store ~f = Index_set.iter_all store.base ~f

(* The bulk-load entry point: encode the streamed triples into three
   growable id columns (no per-triple boxing beyond the parse itself),
   then hand the columns to the parallel sort/encode pipeline. *)
let of_iter ?mode produce =
  let t0 = Unix.gettimeofday () in
  let dict = Dictionary.create () in
  let cap = ref 1024 in
  let s = ref (Array.make !cap 0)
  and p = ref (Array.make !cap 0)
  and o = ref (Array.make !cap 0) in
  let len = ref 0 in
  let push a b c =
    if !len = !cap then begin
      let cap' = 2 * !cap in
      let grow old =
        let fresh = Array.make cap' 0 in
        Array.blit old 0 fresh 0 !len;
        fresh
      in
      s := grow !s;
      p := grow !p;
      o := grow !o;
      cap := cap'
    end;
    !s.(!len) <- a;
    !p.(!len) <- b;
    !o.(!len) <- c;
    incr len
  in
  produce (fun { Rdf.Triple.s; p; o } ->
      push (Dictionary.encode dict s) (Dictionary.encode dict p)
        (Dictionary.encode dict o));
  make ~t0 dict (Index_set.of_columns ?mode ~len:!len ~s:!s ~p:!p ~o:!o ())

let of_seq triples = of_iter (fun emit -> Seq.iter emit triples)

let of_triples triples = of_iter (fun emit -> List.iter emit triples)

let load_ntriples path = of_triples (Rdf.Ntriples.parse_file path)

let third_column_view store ?s ?p ?o () =
  Index_set.third_column_view store.base ?s ?p ?o ()

let count store ?s ?p ?o () = Index_set.count store.base ?s ?p ?o ()

let iter store ?s ?p ?o ~f () = Index_set.iter store.base ?s ?p ?o ~f ()

let contains store ~s ~p ~o = Index_set.contains store.base ~s ~p ~o

let distinct_subjects store ~p = Index_set.distinct_subjects store.base ~p

let distinct_objects store ~p = Index_set.distinct_objects store.base ~p

let predicates store = Index_set.predicates store.base
