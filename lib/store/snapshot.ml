(* A snapshot is the readers' whole world: an immutable base store plus
   one frozen delta generation, bundled with a version stamp. Acquiring
   one is O(1) (an atomic load in {!Mvcc}); once held, nothing about it
   ever changes — commits and compactions publish *new* snapshots.

   Reads are expressed as base/delta arithmetic, leaning on the delta
   invariants (adds ∩ base = ∅, dels ⊆ base, adds ∩ dels = ∅):

     count   = base − dels + adds
     member  = (base ∧ ¬del) ∨ add
     iterate = base \ dels, then adds
     column  = merge(base \ dels, adds)   (strictly increasing)

   The empty-delta case — the common one for read-mostly serving, and
   the only one after a compaction — short-circuits to the plain base
   path everywhere, so a quiescent store pays nothing for MVCC.

   This module also owns the checksummed binary persistence format
   (save/load), unchanged from before the MVCC refactor: a saved file
   always describes a full base (save a compacted store). *)

type t = {
  base : Triple_store.t;
  delta : Delta.t;
  version : int;
}

let of_store store =
  { base = store; delta = Delta.empty; version = Triple_store.epoch store }

let make ~base ~delta ~version = { base; delta; version }

let base t = t.base
let delta t = t.delta
let version t = t.version
let base_epoch t = Triple_store.epoch t.base
let delta_gen t = Delta.gen t.delta

let dictionary t = Triple_store.dictionary t.base
let dict_size t = Dictionary.size (Triple_store.dictionary t.base)

let encode_term t term = Triple_store.encode_term t.base term
let decode_term t id = Triple_store.decode_term t.base id
let intern_term t term = Triple_store.intern_term t.base term

let size t =
  Triple_store.size t.base
  + Index_set.size (Delta.adds t.delta)
  - Index_set.size (Delta.dels t.delta)

let count t ?s ?p ?o () =
  let base = Triple_store.count t.base ?s ?p ?o () in
  if Delta.is_empty t.delta then base
  else
    base
    + Index_set.count (Delta.adds t.delta) ?s ?p ?o ()
    - Index_set.count (Delta.dels t.delta) ?s ?p ?o ()

let contains t ~s ~p ~o =
  if Delta.is_empty t.delta then Triple_store.contains t.base ~s ~p ~o
  else
    Index_set.contains (Delta.adds t.delta) ~s ~p ~o
    || (Triple_store.contains t.base ~s ~p ~o
        && not (Index_set.contains (Delta.dels t.delta) ~s ~p ~o))

let iter t ?s ?p ?o ~f () =
  if Delta.is_empty t.delta then Triple_store.iter t.base ?s ?p ?o ~f ()
  else begin
    let dels = Delta.dels t.delta in
    if Index_set.is_empty dels then Triple_store.iter t.base ?s ?p ?o ~f ()
    else
      Triple_store.iter t.base ?s ?p ?o
        ~f:(fun ~s ~p ~o ->
          if not (Index_set.contains dels ~s ~p ~o) then f ~s ~p ~o)
        ();
    Index_set.iter (Delta.adds t.delta) ?s ?p ?o ~f ()
  end

let iter_all t ~f = iter t ~f ()

(* The multiway intersection kernel wants a strictly increasing third
   column for a (key1, key2) prefix. When the delta is silent for this
   prefix the base view passes through untouched (zero copy); otherwise
   merge base \ dels with adds into a materialized array. *)
let third_column_view t ?s ?p ?o () =
  if Delta.is_empty t.delta then
    Triple_store.third_column_view t.base ?s ?p ?o ()
  else begin
    let bv = Triple_store.third_column_view t.base ?s ?p ?o () in
    let av = Index_set.third_column_view (Delta.adds t.delta) ?s ?p ?o () in
    let dv = Index_set.third_column_view (Delta.dels t.delta) ?s ?p ?o () in
    let na = Index.view_length av and nd = Index.view_length dv in
    if na = 0 && nd = 0 then bv
    else begin
      let nb = Index.view_length bv in
      let out = Array.make (nb + na) 0 in
      let k = ref 0 and i = ref 0 and j = ref 0 and d = ref 0 in
      let deleted v =
        while !d < nd && Index.view_get dv !d < v do
          incr d
        done;
        !d < nd && Index.view_get dv !d = v
      in
      while !i < nb || !j < na do
        let bval = if !i < nb then Index.view_get bv !i else max_int in
        let aval = if !j < na then Index.view_get av !j else max_int in
        if bval < aval then begin
          if not (deleted bval) then begin
            out.(!k) <- bval;
            incr k
          end;
          incr i
        end
        else if aval < bval then begin
          out.(!k) <- aval;
          incr k;
          incr j
        end
        else begin
          (* adds ∩ base = ∅ makes this unreachable for one snapshot;
             emit once to stay strictly increasing regardless. *)
          if not (deleted bval) then begin
            out.(!k) <- bval;
            incr k
          end;
          incr i;
          incr j
        end
      done;
      Index.view_of_sorted_array (Array.sub out 0 !k)
    end
  end

(* Exact predicate -> triple count for the whole view (base adjusted by
   delta); feeds {!Stats.of_snapshot}. *)
let predicates t =
  if Delta.is_empty t.delta then Triple_store.predicates t.base
  else begin
    let counts = Hashtbl.create 64 in
    let bump w (p, n) =
      Hashtbl.replace counts p (Option.value (Hashtbl.find_opt counts p) ~default:0 + (w * n))
    in
    List.iter (bump 1) (Triple_store.predicates t.base);
    List.iter (bump 1) (Index_set.predicates (Delta.adds t.delta));
    List.iter (bump (-1)) (Index_set.predicates (Delta.dels t.delta));
    Hashtbl.fold (fun p n acc -> if n > 0 then (p, n) :: acc else acc) counts []
    |> List.sort compare
  end

(* --- persistence ------------------------------------------------------- *)

exception Corrupt of string

let magic = "SPUO"

(* Version 2: the triple section is block-compressed. Triples (strictly
   increasing in SPO lexicographic order) are split into blocks of
   [triples_per_block]; an up-front skip index holds each block's first
   triple uncompressed plus its payload byte length, and each payload
   encodes the remaining triples as an unsigned-varint subject delta and
   zigzag-varint predicate/object deltas. The loader validates shape
   (block count, skip samples, payload lengths and exact consumption,
   id ranges, strict ordering) before the checksum, and rebuilds the
   store through the sort-free trusted-columns path. *)
let version_tag = 2

let triples_per_block = 4096

(* Worst case ~10 bytes per varint, three per triple. *)
let max_block_payload = 30 * triples_per_block

(* A cheap rolling additive digest, enough to catch truncation and bit
   rot (this is an integrity check, not an authenticity one). *)
module Digest_acc = struct
  type t = { mutable value : int }

  let create () = { value = 0x1505 }

  let add_int acc n =
    acc.value <- ((acc.value * 33) + n) land 0x3FFFFFFF

  let add_string acc s =
    String.iter (fun c -> add_int acc (Char.code c)) s

  let value acc = acc.value
end

(* --- writing ----------------------------------------------------------- *)

let write_int oc digest n =
  if n < 0 then raise (Corrupt "negative integer during save");
  output_binary_int oc n;
  Digest_acc.add_int digest n

let write_string oc digest s =
  write_int oc digest (String.length s);
  output_string oc s;
  Digest_acc.add_string digest s

let term_tag = function
  | Rdf.Term.Iri _ -> 0
  | Rdf.Term.Bnode _ -> 1
  | Rdf.Term.Literal { kind = Rdf.Term.Plain; _ } -> 2
  | Rdf.Term.Literal { kind = Rdf.Term.Lang _; _ } -> 3
  | Rdf.Term.Literal { kind = Rdf.Term.Typed _; _ } -> 4

let write_term oc digest term =
  write_int oc digest (term_tag term);
  match term with
  | Rdf.Term.Iri s | Rdf.Term.Bnode s -> write_string oc digest s
  | Rdf.Term.Literal { value; kind = Rdf.Term.Plain } ->
      write_string oc digest value
  | Rdf.Term.Literal { value; kind = Rdf.Term.Lang lang } ->
      write_string oc digest value;
      write_string oc digest lang
  | Rdf.Term.Literal { value; kind = Rdf.Term.Typed dt } ->
      write_string oc digest value;
      write_string oc digest dt

(* zigzag keeps small negative deltas small; varints are 7-bit LE. *)
let zig n = (n lsl 1) lxor (n asr 62)
let unzig u = (u lsr 1) lxor (- (u land 1))

let buffer_varint buf u =
  let u = ref u in
  while !u >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!u land 0x7f)));
    u := !u lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !u)

(* Crash-atomic: the bytes go to [path ^ ".tmp"], are fsynced, and only
   then renamed over [path] — a kill at any instant leaves either the
   old file intact or the new one complete, never a torn blend. The
   term count is captured once up front and the (append-only, possibly
   concurrently growing) dictionary iteration is capped at it, so a
   VALUES intern racing the save cannot make the file declare fewer
   terms than it writes. [dict_terms] lets the WAL checkpoint pin the
   exact count its log accounting continues from. *)
let save ?dict_terms store path =
  let dict = Triple_store.dictionary store in
  let nterms =
    match dict_terms with Some n -> n | None -> Dictionary.size dict
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let committed = ref false in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !committed then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let digest = Digest_acc.create () in
      output_string oc magic;
      output_binary_int oc version_tag;
      write_int oc digest nterms;
      Dictionary.iter dict ~f:(fun id term ->
          if id < nterms then write_term oc digest term);
      Failpoint.hit "snapshot.save";
      let ntriples = Triple_store.size store in
      write_int oc digest ntriples;
      let nblocks = (ntriples + triples_per_block - 1) / triples_per_block in
      write_int oc digest nblocks;
      (* Encode payloads block by block (samples + lengths must precede
         them on disk, so blocks buffer in memory — a few bytes per
         triple). *)
      let samples = Array.make nblocks (0, 0, 0) in
      let payloads = Array.make nblocks "" in
      let buf = Buffer.create 4096 in
      let blk = ref (-1) in
      let fill = ref 0 in
      let prev_s = ref 0 and prev_p = ref 0 and prev_o = ref 0 in
      let flush () =
        if !blk >= 0 then payloads.(!blk) <- Buffer.contents buf;
        Buffer.clear buf
      in
      Triple_store.iter_all store ~f:(fun ~s ~p ~o ->
          if !fill mod triples_per_block = 0 then begin
            flush ();
            incr blk;
            samples.(!blk) <- (s, p, o)
          end
          else begin
            buffer_varint buf (s - !prev_s);
            buffer_varint buf (zig (p - !prev_p));
            buffer_varint buf (zig (o - !prev_o))
          end;
          prev_s := s;
          prev_p := p;
          prev_o := o;
          incr fill);
      flush ();
      Array.iteri
        (fun b (s, p, o) ->
          write_int oc digest s;
          write_int oc digest p;
          write_int oc digest o;
          write_int oc digest (String.length payloads.(b)))
        samples;
      Array.iter
        (fun payload ->
          output_string oc payload;
          Digest_acc.add_string digest payload)
        payloads;
      output_binary_int oc (Digest_acc.value digest);
      Stdlib.flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc);
      close_out oc;
      Failpoint.hit "snapshot.rename";
      Sys.rename tmp path;
      committed := true;
      (* Make the rename itself durable (best-effort where directory
         fsync is unsupported). *)
      match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
      | fd ->
          (try Unix.fsync fd with Unix.Unix_error _ -> ());
          Unix.close fd
      | exception Unix.Unix_error _ -> ())

(* --- reading ----------------------------------------------------------- *)

let read_int ic digest =
  match input_binary_int ic with
  | n ->
      Digest_acc.add_int digest n;
      n
  | exception End_of_file -> raise (Corrupt "truncated file")

let read_string ic digest =
  let n = read_int ic digest in
  if n < 0 || n > 100_000_000 then raise (Corrupt "implausible string length");
  match really_input_string ic n with
  | s ->
      Digest_acc.add_string digest s;
      s
  | exception End_of_file -> raise (Corrupt "truncated string")

let read_term ic digest =
  match read_int ic digest with
  | 0 -> Rdf.Term.iri (read_string ic digest)
  | 1 -> Rdf.Term.bnode (read_string ic digest)
  | 2 -> Rdf.Term.literal (read_string ic digest)
  | 3 ->
      let value = read_string ic digest in
      Rdf.Term.lang_literal value ~lang:(read_string ic digest)
  | 4 ->
      let value = read_string ic digest in
      Rdf.Term.typed_literal value ~datatype:(read_string ic digest)
  | tag -> raise (Corrupt (Printf.sprintf "unknown term tag %d" tag))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let file_magic =
        try really_input_string ic 4
        with End_of_file -> raise (Corrupt "missing magic")
      in
      if file_magic <> magic then raise (Corrupt "bad magic");
      let file_version =
        try input_binary_int ic with End_of_file -> raise (Corrupt "no version")
      in
      if file_version <> version_tag then
        raise (Corrupt (Printf.sprintf "unsupported version %d" file_version));
      let digest = Digest_acc.create () in
      let nterms = read_int ic digest in
      if nterms < 0 then raise (Corrupt "negative term count");
      let dict = Dictionary.create ~initial_capacity:(max 16 nterms) () in
      for expected = 0 to nterms - 1 do
        let id = Dictionary.encode dict (read_term ic digest) in
        if id <> expected then raise (Corrupt "duplicate term in dictionary")
      done;
      let ntriples = read_int ic digest in
      if ntriples < 0 then raise (Corrupt "negative triple count");
      let nblocks = read_int ic digest in
      if nblocks <> (ntriples + triples_per_block - 1) / triples_per_block
      then raise (Corrupt "block count mismatch");
      let check_id id =
        if id < 0 || id >= nterms then
          raise (Corrupt "triple id out of dictionary range")
      in
      let skip =
        Array.init nblocks (fun _ ->
            let entry =
              try
                let s = read_int ic digest in
                let p = read_int ic digest in
                let o = read_int ic digest in
                let paylen = read_int ic digest in
                (s, p, o, paylen)
              with Corrupt "truncated file" ->
                raise (Corrupt "truncated skip index")
            in
            let s, p, o, paylen = entry in
            check_id s;
            check_id p;
            check_id o;
            if paylen < 0 || paylen > max_block_payload then
              raise (Corrupt "implausible block length");
            entry)
      in
      let cs = Array.make ntriples 0
      and cp = Array.make ntriples 0
      and co = Array.make ntriples 0 in
      let prev_s = ref (-1) and prev_p = ref (-1) and prev_o = ref (-1) in
      let emit i s p o =
        check_id s;
        check_id p;
        check_id o;
        if
          s < !prev_s
          || (s = !prev_s
              && (p < !prev_p || (p = !prev_p && o <= !prev_o)))
        then raise (Corrupt "unsorted or duplicate triple");
        prev_s := s;
        prev_p := p;
        prev_o := o;
        cs.(i) <- s;
        cp.(i) <- p;
        co.(i) <- o
      in
      Array.iteri
        (fun b (s0, p0, o0, paylen) ->
          let payload =
            try really_input_string ic paylen
            with End_of_file -> raise (Corrupt "truncated block payload")
          in
          Digest_acc.add_string digest payload;
          let base = b * triples_per_block in
          let k = min triples_per_block (ntriples - base) in
          emit base s0 p0 o0;
          let pos = ref 0 in
          let read_varint () =
            let u = ref 0 and shift = ref 0 in
            let continue = ref true in
            while !continue do
              if !pos >= paylen || !shift > 63 then
                raise (Corrupt "block payload overrun");
              let byte = Char.code (String.unsafe_get payload !pos) in
              incr pos;
              u := !u lor ((byte land 0x7f) lsl !shift);
              shift := !shift + 7;
              continue := byte land 0x80 <> 0
            done;
            !u
          in
          for i = 1 to k - 1 do
            let s = !prev_s + read_varint () in
            let p = !prev_p + unzig (read_varint ()) in
            let o = !prev_o + unzig (read_varint ()) in
            emit (base + i) s p o
          done;
          if !pos <> paylen then
            raise (Corrupt "block payload length mismatch"))
        skip;
      let stored_checksum =
        try input_binary_int ic
        with End_of_file -> raise (Corrupt "missing checksum")
      in
      if stored_checksum <> Digest_acc.value digest then
        raise (Corrupt "checksum mismatch");
      Triple_store.of_sorted_columns dict ~s:cs ~p:cp ~o:co ())
