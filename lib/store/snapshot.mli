(** Consistent read views over an MVCC store, plus the on-disk format.

    {1 The snapshot view}

    A snapshot bundles an immutable base ({!Triple_store.t}) with one
    frozen {!Delta.t} generation and a version stamp. It is the value
    every read path of the engine evaluates against: once acquired
    (an O(1) atomic load in {!Mvcc}), the view never changes — commits
    and compactions publish new snapshots instead of mutating this one.

    Reads are base/delta arithmetic relying on the delta invariants
    (adds ∩ base = ∅, dels ⊆ base): count = base − dels + adds,
    membership = (base ∧ ¬del) ∨ add. With an empty delta every
    operation short-circuits to the plain base path, so a read-only or
    freshly compacted store pays nothing for MVCC.

    The pattern-access API mirrors {!Triple_store} so engine code reads
    identically through either. *)

type t

(** [of_store store] views a plain store (empty delta; version = the
    store's epoch). *)
val of_store : Triple_store.t -> t

(** [make ~base ~delta ~version] — used by {!Mvcc} to publish commits. *)
val make : base:Triple_store.t -> delta:Delta.t -> version:int -> t

val base : t -> Triple_store.t
val delta : t -> Delta.t

(** [version t] — a stamp drawn from the global epoch counter, unique
    per published snapshot; plan caches and stats memos key on it. *)
val version : t -> int

val base_epoch : t -> int
val delta_gen : t -> int

(** {2 Dictionary} *)

val dictionary : t -> Dictionary.t
val dict_size : t -> int
val encode_term : t -> Rdf.Term.t -> int option
val decode_term : t -> int -> Rdf.Term.t

(** [intern_term t term] — the eval-time VALUES write; thread-safe,
    append-only, invisible to other snapshots' plans (see
    {!Triple_store.intern_term}). *)
val intern_term : t -> Rdf.Term.t -> int

(** {2 Pattern access} *)

(** [size t] is the number of distinct triples visible in this view. *)
val size : t -> int

val count : t -> ?s:int -> ?p:int -> ?o:int -> unit -> int

val iter :
  t -> ?s:int -> ?p:int -> ?o:int ->
  f:(s:int -> p:int -> o:int -> unit) -> unit -> unit

val contains : t -> s:int -> p:int -> o:int -> bool

val iter_all : t -> f:(s:int -> p:int -> o:int -> unit) -> unit

(** [third_column_view t ?s ?p ?o ()] — with exactly two bound
    positions, the strictly increasing third-column view. Zero-copy
    passthrough of the base view when the delta is silent for the
    prefix; otherwise a materialized merge of base \ dels with adds. *)
val third_column_view : t -> ?s:int -> ?p:int -> ?o:int -> unit -> Index.view

(** [predicates t] — exact predicate ids with visible triple counts. *)
val predicates : t -> (int * int) list

(** {1 Persistence}

    Binary store snapshots: a versioned, checksummed on-disk format for a
    dictionary-encoded store, so a dataset is loaded back without
    re-parsing N-Triples (the indexes are rebuilt on load; only the
    dictionary and the triple table are persisted).

    Format (all integers 4-byte big-endian):
    {v
    magic "SPUO" | version | term count | terms | triple count
    | s p o ids ... | checksum
    v}
    Terms are serialized as a kind byte plus length-prefixed strings. The
    checksum is a simple additive digest over the payload; {!load} rejects
    files whose magic, version or checksum do not match. *)

exception Corrupt of string

(** [save store path] writes a snapshot of a base store (compact an
    MVCC store first; the file format always describes a full base).

    Crash-atomic: the file is written to [path ^ ".tmp"], fsynced and
    renamed into place, so a crash mid-save never clobbers a previously
    valid file at [path]. [dict_terms] caps how many dictionary entries
    are persisted (default: the size at call time) — the dictionary is
    append-only and may grow concurrently, and the WAL checkpoint needs
    the written count pinned to the one its log accounting uses. *)
val save : ?dict_terms:int -> Triple_store.t -> string -> unit

(** [load path] reads a snapshot back. Raises {!Corrupt} on a malformed or
    truncated file. *)
val load : string -> Triple_store.t
