(** Dataset statistics: the inputs to cardinality estimation (Section 5.1.2)
    and the rows of the paper's Table 2. *)

type predicate_stats = {
  triples : int;  (** triples with this predicate *)
  distinct_subjects : int;
  distinct_objects : int;
  avg_out_degree : float;  (** triples per distinct subject *)
  avg_in_degree : float;  (** triples per distinct object *)
}

type t

(** [compute store] scans the indexes once and materializes per-predicate
    statistics plus dataset-level counts. *)
val compute : Triple_store.t -> t

(** [cached store] is [compute store] memoized per live store value
    (physical identity, weakly held). The triple table is immutable —
    updates rebuild a new store — so the memo never serves stale
    statistics; repeated query execution against one store pays for the
    scan once. Thread-safe. *)
val cached : Triple_store.t -> t

(** [of_snapshot snap] is the statistics of the snapshot view: the
    memoized base scan adjusted by the delta. Per-predicate triple
    counts and the dataset triple count are exact; distinct
    subject/object counts for delta-touched predicates are bounded
    estimates (statistics feed cardinality estimation, so this stays
    O(|delta|) rather than rescanning). With an empty delta this is
    exactly [cached (Snapshot.base snap)]. *)
val of_snapshot : Snapshot.t -> t

(** [epoch stats] is the store epoch (or snapshot version) at the time
    of the scan (see {!Triple_store.epoch}, {!Snapshot.version}). *)
val epoch : t -> int

(** [predicate stats ~p] is the statistics record for predicate id [p];
    all-zero record if [p] never occurs as a predicate. *)
val predicate : t -> p:int -> predicate_stats

(** {1 Dataset-level counts (Table 2)} *)

val num_triples : t -> int

(** [num_entities stats] counts distinct IRIs/blank nodes occurring in
    subject or object position. *)
val num_entities : t -> int

val num_predicates : t -> int

(** [num_literals stats] counts distinct literal terms in object position. *)
val num_literals : t -> int

val pp_summary : Format.formatter -> t -> unit
