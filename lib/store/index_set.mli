(** A deduplicated triple table with all six permutation indexes (SPO,
    SOP, PSO, POS, OSP, OPS) — the unit of immutability in the snapshot
    store. A snapshot's base is one index set; each frozen delta
    generation carries two small ones (inserts and deletes). Values are
    immutable after construction and safe to share across domains. *)

type t

(** [of_rows rows] sorts, deduplicates and indexes already-encoded
    (s, p, o) id triples. *)
val of_rows : (int * int * int) array -> t

(** The shared empty index set (zero rows). *)
val empty : t

(** [size t] is the number of distinct triples. *)
val size : t -> int

val is_empty : t -> bool

(** [index t order] exposes one permutation index. *)
val index : t -> Index.order -> Index.t

(** Pattern access: an omitted position is a wildcard. *)

val count : t -> ?s:int -> ?p:int -> ?o:int -> unit -> int

val iter :
  t -> ?s:int -> ?p:int -> ?o:int ->
  f:(s:int -> p:int -> o:int -> unit) -> unit -> unit

val contains : t -> s:int -> p:int -> o:int -> bool

(** [third_column_view t ?s ?p ?o ()] — with exactly two positions bound,
    the sorted duplicate-free {!Index.view} of third-position values.
    Any other combination is an [Invalid_argument]. *)
val third_column_view : t -> ?s:int -> ?p:int -> ?o:int -> unit -> Index.view

(** [iter_all t ~f] — every triple, as ids, in SPO order. *)
val iter_all : t -> f:(s:int -> p:int -> o:int -> unit) -> unit

(** [rows t] materializes every triple as encoded rows in SPO order. *)
val rows : t -> (int * int * int) array

(** {1 Statistics inputs} *)

val distinct_subjects : t -> p:int -> int
val distinct_objects : t -> p:int -> int

(** [predicates t] lists all predicate ids with their triple counts. *)
val predicates : t -> (int * int) list
