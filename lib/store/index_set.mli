(** A deduplicated triple set with all six permutation indexes (SPO,
    SOP, PSO, POS, OSP, OPS) — the unit of immutability in the snapshot
    store. A snapshot's base is one index set; each frozen delta
    generation carries two small ones (inserts and deletes). Values are
    immutable after construction and safe to share across domains; the
    index payload lives off-heap in {!Column} storage. *)

type t

(** [of_columns ?mode ?len ~s ~p ~o ()] sorts, deduplicates and indexes
    three parallel id columns (the first [len] entries when given — the
    bulk-load path hands over its possibly-oversized growable buffers).
    The six per-order sort/encode tasks fan out over the {!Bulk}
    runner. [mode] defaults to {!Column.default_mode}. *)
val of_columns :
  ?mode:Column.mode ->
  ?len:int ->
  s:int array ->
  p:int array ->
  o:int array ->
  unit ->
  t

(** [of_sorted_columns ?mode ~s ~p ~o ()] trusts the columns to be
    strictly increasing in SPO lexicographic order (the snapshot loader
    validates this during decode) and skips the sort and dedup. *)
val of_sorted_columns :
  ?mode:Column.mode -> s:int array -> p:int array -> o:int array -> unit -> t

(** [of_rows rows] sorts, deduplicates and indexes already-encoded
    (s, p, o) id triples. *)
val of_rows : (int * int * int) array -> t

(** The shared empty index set (zero rows). *)
val empty : t

(** [size t] is the number of distinct triples. *)
val size : t -> int

val is_empty : t -> bool

(** Bytes of off-heap storage held by the six indexes. *)
val mem_bytes : t -> int

(** [index t order] exposes one permutation index. *)
val index : t -> Index.order -> Index.t

(** Pattern access: an omitted position is a wildcard. *)

val count : t -> ?s:int -> ?p:int -> ?o:int -> unit -> int

val iter :
  t -> ?s:int -> ?p:int -> ?o:int ->
  f:(s:int -> p:int -> o:int -> unit) -> unit -> unit

val contains : t -> s:int -> p:int -> o:int -> bool

(** [third_column_view t ?s ?p ?o ()] — with exactly two positions bound,
    the sorted duplicate-free {!Index.view} of third-position values.
    Any other combination is an [Invalid_argument]. *)
val third_column_view : t -> ?s:int -> ?p:int -> ?o:int -> unit -> Index.view

(** [iter_all t ~f] — every triple, as ids, in SPO order. *)
val iter_all : t -> f:(s:int -> p:int -> o:int -> unit) -> unit

(** [rows t] materializes every triple as encoded rows in SPO order. *)
val rows : t -> (int * int * int) array

(** {1 Statistics inputs} *)

val distinct_subjects : t -> p:int -> int
val distinct_objects : t -> p:int -> int

(** [predicates t] lists all predicate ids with their triple counts. *)
val predicates : t -> (int * int) list
