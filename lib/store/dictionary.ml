(* The dictionary is shared by every snapshot of a store lineage: ids are
   dense, append-only and never reassigned, so a compiled plan's term ids
   stay valid across delta commits and compactions. That sharing makes
   this the one structure concurrent readers and the writer touch at the
   same time, so it is the one structure here with its own concurrency
   protocol:

   - [encode]/[find] (hash lookups, possible insertion) take [lock]. The
     hash table is not safe under concurrent mutation, and [find] runs at
     plan-compile time only — never per row — so the mutex is off the
     hot path.
   - [decode]/[iter]/[size] (the per-row read path) are lock-free. The
     id->term direction lives in an array published through [terms] with
     the count published through [count] *after* the cell (and, on
     growth, the fresh array) is in place. A reader that loads [count]
     first and [terms] second therefore always sees an array in which
     every id below the loaded count is initialized: the atomic pair
     gives the release/acquire edge the OCaml memory model needs to make
     the plain array-cell write visible. *)

type t = {
  terms : Rdf.Term.t array Atomic.t;
  count : int Atomic.t;
  by_term : (Rdf.Term.t, int) Hashtbl.t;
  lock : Mutex.t;
}

let placeholder = Rdf.Term.Iri ""

let create ?(initial_capacity = 1024) () =
  {
    terms = Atomic.make (Array.make (max 1 initial_capacity) placeholder);
    count = Atomic.make 0;
    by_term = Hashtbl.create (max 1 initial_capacity);
    lock = Mutex.create ();
  }

(* Callers hold [lock]. Publish the grown array before the count moves,
   so concurrent decoders never index past the array they loaded. *)
let grow dict n =
  let old = Atomic.get dict.terms in
  let fresh = Array.make (2 * Array.length old) placeholder in
  Array.blit old 0 fresh 0 n;
  Atomic.set dict.terms fresh

let encode dict term =
  Mutex.protect dict.lock @@ fun () ->
  match Hashtbl.find_opt dict.by_term term with
  | Some id -> id
  | None ->
      let id = Atomic.get dict.count in
      if id = Array.length (Atomic.get dict.terms) then grow dict id;
      (Atomic.get dict.terms).(id) <- term;
      (* Release store: the cell write above becomes visible to any
         reader that observes the new count. *)
      Atomic.set dict.count (id + 1);
      Hashtbl.add dict.by_term term id;
      id

let find dict term =
  Mutex.protect dict.lock @@ fun () -> Hashtbl.find_opt dict.by_term term

let decode dict id =
  (* Acquire load of [count] before [terms]: ids below the loaded count
     are fully published (see [encode]). *)
  let n = Atomic.get dict.count in
  if id < 0 || id >= n then
    invalid_arg (Printf.sprintf "Dictionary.decode: id %d out of range" id);
  (Atomic.get dict.terms).(id)

let size dict = Atomic.get dict.count

let iter dict ~f =
  let n = Atomic.get dict.count in
  let terms = Atomic.get dict.terms in
  for id = 0 to n - 1 do
    f id terms.(id)
  done
