(* Write-ahead log: see wal.mli for the protocol overview.

   On-disk layout of a segment:

     "SUWL" | format version (u32 BE) | segment number (u32 BE)
     record*

   where each record is

     payload length (u32 BE) | CRC-32 of payload (u32 BE) | payload

   and a payload is either a transaction body

     0x01 | txn id | first new term id | new term count
          | (tag byte, varint-length-prefixed strings)*     terms
          | op count | (kind byte, s, p, o)*                ops

   or a commit marker

     0x02 | txn id

   (all unmarked integers unsigned 7-bit LE varints). Transaction ids
   are 1-based per segment and strictly sequential; a transaction is
   committed iff a valid marker immediately follows its valid body.
   Bodies log every dictionary entry created since the previous commit
   (or the checkpoint), not just the transaction's own terms — reader
   paths (VALUES) intern into the shared dictionary too, and replay
   must rebuild identical ids.

   Concurrency: appends happen under the owning store's writer mutex
   (one at a time); [t.m] protects the sync state shared with the
   group-commit leader, which runs outside the writer mutex. *)

type sync_policy = Never | Interval of float | Every_commit

type op = Add of (int * int * int) | Del of (int * int * int)

type txn_record = { txn_id : int; ops : op list }

type recovery = {
  checkpoint_seq : int;
  replayed_txns : int;
  replayed_ops : int;
  truncated_bytes : int;
  recovery_ms : float;
  initialized : bool;
}

exception Unrecoverable of string

let magic = "SUWL"
let format_version = 1
let header_size = 12

(* Sanity bound on a single record; a length field beyond it is treated
   as corruption, not an allocation request. *)
let max_record = 1 lsl 28

(* --- CRC-32 (IEEE 802.3, reflected — the zlib polynomial) ------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- little codec helpers --------------------------------------------- *)

let add_u32 buf v =
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr (v land 0xff))

let get_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let add_varint buf u =
  let u = ref u in
  while !u >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!u land 0x7f)));
    u := !u lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !u)

let term_tag = function
  | Rdf.Term.Iri _ -> 0
  | Rdf.Term.Bnode _ -> 1
  | Rdf.Term.Literal { kind = Rdf.Term.Plain; _ } -> 2
  | Rdf.Term.Literal { kind = Rdf.Term.Lang _; _ } -> 3
  | Rdf.Term.Literal { kind = Rdf.Term.Typed _; _ } -> 4

let add_term buf term =
  Buffer.add_char buf (Char.chr (term_tag term));
  let str s =
    add_varint buf (String.length s);
    Buffer.add_string buf s
  in
  match term with
  | Rdf.Term.Iri s | Rdf.Term.Bnode s -> str s
  | Rdf.Term.Literal { value; kind = Rdf.Term.Plain } -> str value
  | Rdf.Term.Literal { value; kind = Rdf.Term.Lang lang } ->
      str value;
      str lang
  | Rdf.Term.Literal { value; kind = Rdf.Term.Typed dt } ->
      str value;
      str dt

(* --- paths ------------------------------------------------------------- *)

let segment_path dir seq = Filename.concat dir (Printf.sprintf "wal.%d.log" seq)

let checkpoint_path dir seq =
  Filename.concat dir (Printf.sprintf "checkpoint.%d.spuo" seq)

let numbered ~prefix ~suffix name =
  let lp = String.length prefix and ls = String.length suffix in
  if
    String.length name > lp + ls
    && String.starts_with ~prefix name
    && String.ends_with ~suffix name
  then
    match
      int_of_string_opt (String.sub name lp (String.length name - lp - ls))
    with
    | Some n when n > 0 -> Some n
    | _ -> None
  else None

let fsync_dir dir =
  (* Make renames/creates/unlinks in [dir] durable; best-effort on file
     systems that reject directory fsync. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let rec ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg (Printf.sprintf "Wal.open_dir: %s is not a directory" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- the handle -------------------------------------------------------- *)

type t = {
  dir : string;
  policy : sync_policy;
  mutable seq : int;
  mutable oc : out_channel;
  mutable fd : Unix.file_descr;
  mutable next_txn : int; (* per-segment, 1-based *)
  mutable logged_dict_size : int;
  (* LSNs are cumulative bytes across segment rotations, so a commit's
     durability target stays meaningful after its segment is replaced
     by a checkpoint (which makes it durable by definition). *)
  mutable lsn_base : int; (* LSN of this segment's byte 0 *)
  mutable appended : int; (* LSN of the last fully appended commit *)
  mutable synced : int; (* highest LSN known durable *)
  mutable last_sync : float;
  mutable unsynced_commits : int;
  mutable syncing : bool; (* a group-commit leader is mid-fsync *)
  m : Mutex.t;
  cond : Condition.t;
  (* counters *)
  mutable n_commits : int;
  mutable n_syncs : int;
  mutable batched_commits : int;
  mutable max_batch : int;
  mutable n_checkpoints : int;
}

type opened = {
  wal : t;
  store : Triple_store.t;
  txns : txn_record list;
  recovery : recovery;
}

type stats = {
  commits : int;
  syncs : int;
  batched_commits : int;
  max_batch : int;
  checkpoints : int;
  appended_bytes : int;
  segment : int;
}

let policy t = t.policy
let dir t = t.dir
let segment_file t = segment_path t.dir t.seq

let appended_lsn t = Mutex.protect t.m (fun () -> t.appended)
let synced_lsn t = Mutex.protect t.m (fun () -> t.synced)

let stats t =
  Mutex.protect t.m (fun () ->
      {
        commits = t.n_commits;
        syncs = t.n_syncs;
        batched_commits = t.batched_commits;
        max_batch = t.max_batch;
        checkpoints = t.n_checkpoints;
        appended_bytes = t.appended - t.lsn_base;
        segment = t.seq;
      })

(* --- appending --------------------------------------------------------- *)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  add_u32 buf (String.length payload);
  add_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let encode_body t ~dict ~ops =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '\001';
  add_varint buf t.next_txn;
  let size_now = Dictionary.size dict in
  add_varint buf t.logged_dict_size;
  add_varint buf (size_now - t.logged_dict_size);
  for id = t.logged_dict_size to size_now - 1 do
    add_term buf (Dictionary.decode dict id)
  done;
  add_varint buf (List.length ops);
  List.iter
    (fun op ->
      let kind, (s, p, o) =
        match op with Add row -> ('\000', row) | Del row -> ('\001', row)
      in
      Buffer.add_char buf kind;
      add_varint buf s;
      add_varint buf p;
      add_varint buf o)
    ops;
  (Buffer.contents buf, size_now)

let encode_marker txn_id =
  let buf = Buffer.create 8 in
  Buffer.add_char buf '\002';
  add_varint buf txn_id;
  Buffer.contents buf

let append_commit t ~dict ~ops =
  let body, size_now = encode_body t ~dict ~ops in
  let marker = encode_marker t.next_txn in
  (* File offset of the previous commit boundary, for rollback. Right
     after a checkpoint rotation [t.appended = t.lsn_base], but the
     fresh segment still starts with its 12-byte header — never roll
     back past it, or later commits land at offset 0 and the next
     [open_dir] rejects the segment. *)
  let rollback_to = max header_size (t.appended - t.lsn_base) in
  try
    Failpoint.hit "wal.record";
    output_string t.oc (frame body);
    flush t.oc;
    Failpoint.hit "wal.marker";
    output_string t.oc (frame marker);
    flush t.oc;
    let lsn = t.lsn_base + pos_out t.oc in
    Mutex.lock t.m;
    t.appended <- lsn;
    t.unsynced_commits <- t.unsynced_commits + 1;
    t.n_commits <- t.n_commits + 1;
    Mutex.unlock t.m;
    t.next_txn <- t.next_txn + 1;
    t.logged_dict_size <- size_now;
    lsn
  with e ->
    (* A failed append must not leave a dangling body (or torn bytes)
       in front of later commits on a {e live} segment: roll the file
       back to the last committed boundary. (A real crash leaves the
       tail in place — recovery truncates it the same way.) *)
    (try
       flush t.oc;
       Unix.ftruncate t.fd rollback_to;
       seek_out t.oc rollback_to
     with _ -> ());
    raise e

(* --- group commit ------------------------------------------------------ *)

let ensure_synced t target =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.m;
    if t.synced >= target then begin
      Mutex.unlock t.m;
      continue_ := false
    end
    else if t.syncing then begin
      (* Another committer is the leader; its fsync will cover us (or
         we re-check and lead the next round). *)
      Condition.wait t.cond t.m;
      Mutex.unlock t.m
    end
    else begin
      t.syncing <- true;
      let upto = t.appended in
      let batch = t.unsynced_commits in
      t.unsynced_commits <- 0;
      let fd = t.fd in
      Mutex.unlock t.m;
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.m;
          t.syncing <- false;
          Condition.broadcast t.cond;
          Mutex.unlock t.m)
        (fun () ->
          Failpoint.hit "wal.sync.pre";
          Unix.fsync fd;
          Failpoint.hit "wal.sync.post";
          Mutex.lock t.m;
          if upto > t.synced then t.synced <- upto;
          t.last_sync <- Unix.gettimeofday ();
          t.n_syncs <- t.n_syncs + 1;
          t.batched_commits <- t.batched_commits + batch;
          if batch > t.max_batch then t.max_batch <- batch;
          Mutex.unlock t.m)
    end
  done

let sync t = ensure_synced t (appended_lsn t)

let commit_durable t lsn =
  match t.policy with
  | Never -> ()
  | Every_commit -> ensure_synced t lsn
  | Interval dt ->
      let due =
        Mutex.protect t.m (fun () -> Unix.gettimeofday () -. t.last_sync >= dt)
      in
      if due then ensure_synced t (appended_lsn t)

(* --- segments ---------------------------------------------------------- *)

let start_segment dir seq =
  let oc =
    open_out_gen
      [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
      0o644 (segment_path dir seq)
  in
  output_string oc magic;
  output_binary_int oc format_version;
  output_binary_int oc seq;
  flush oc;
  let fd = Unix.descr_of_out_channel oc in
  Unix.fsync fd;
  (oc, fd)

let remove_superseded dir keep =
  Array.iter
    (fun name ->
      let stale =
        match numbered ~prefix:"wal." ~suffix:".log" name with
        | Some n -> n < keep
        | None -> (
            match numbered ~prefix:"checkpoint." ~suffix:".spuo" name with
            | Some n -> n < keep
            | None -> String.length name > 4 && String.ends_with ~suffix:".tmp" name)
      in
      if stale then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  fsync_dir dir

let checkpoint t store =
  (* Called under the owning store's writer mutex: no append can
     interleave. The checkpoint captures every commit logged so far
     (they are all folded into [store] or its published delta), so the
     old segment's contents become redundant the instant the rename
     lands. Order matters: rename the checkpoint (atomic, fsynced),
     open the fresh segment, only then delete the superseded files — a
     crash between any two steps leaves a recoverable directory. *)
  let next = t.seq + 1 in
  let dict_terms = Dictionary.size (Triple_store.dictionary store) in
  Snapshot.save ~dict_terms store (checkpoint_path t.dir next);
  fsync_dir t.dir;
  (* Wait out any in-flight group-commit fsync, then claim sync
     leadership ourselves for the whole swap: a committer acquiring
     leadership between the wait and the fd replacement would capture
     the old descriptor and fsync it while we close it underneath. *)
  Mutex.lock t.m;
  while t.syncing do
    Condition.wait t.cond t.m
  done;
  t.syncing <- true;
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.syncing <- false;
      Condition.broadcast t.cond;
      Mutex.unlock t.m)
    (fun () ->
      let oc, fd = start_segment t.dir next in
      fsync_dir t.dir;
      let old_oc = t.oc in
      Mutex.lock t.m;
      t.oc <- oc;
      t.fd <- fd;
      t.seq <- next;
      t.lsn_base <- t.appended;
      (* Everything appended before the rotation is durable via the
         checkpoint; release any waiter blocked on an old-segment LSN. *)
      t.synced <- t.appended;
      t.unsynced_commits <- 0;
      t.n_checkpoints <- t.n_checkpoints + 1;
      Mutex.unlock t.m;
      t.next_txn <- 1;
      t.logged_dict_size <- dict_terms;
      (* Safe now: any leader elected after the field swap holds the
         new fd, and [t.syncing] kept earlier ones out. *)
      close_out_noerr old_oc);
  remove_superseded t.dir next

let close t =
  (try sync t with _ -> ());
  close_out_noerr t.oc

(* --- recovery ---------------------------------------------------------- *)

exception Bad_payload

type body = {
  ptxn_id : int;
  pfirst_term : int;
  pterms : Rdf.Term.t list;
  pops : op list;
}

type payload = Body of body | Marker of int

let parse_payload payload =
  let len = String.length payload in
  let pos = ref 0 in
  let byte () =
    if !pos >= len then raise Bad_payload
    else begin
      let c = Char.code (String.unsafe_get payload !pos) in
      incr pos;
      c
    end
  in
  let varint () =
    let u = ref 0 and shift = ref 0 and continue_ = ref true in
    while !continue_ do
      if !shift > 63 then raise Bad_payload;
      let b = byte () in
      u := !u lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      continue_ := b land 0x80 <> 0
    done;
    !u
  in
  let rstring () =
    let n = varint () in
    if n > len - !pos then raise Bad_payload;
    let s = String.sub payload !pos n in
    pos := !pos + n;
    s
  in
  let rterm () =
    match byte () with
    | 0 -> Rdf.Term.iri (rstring ())
    | 1 -> Rdf.Term.bnode (rstring ())
    | 2 -> Rdf.Term.literal (rstring ())
    | 3 ->
        let value = rstring () in
        Rdf.Term.lang_literal value ~lang:(rstring ())
    | 4 ->
        let value = rstring () in
        Rdf.Term.typed_literal value ~datatype:(rstring ())
    | _ -> raise Bad_payload
  in
  let read_n n f =
    if n < 0 || n > len then raise Bad_payload;
    let acc = ref [] in
    for _ = 1 to n do
      acc := f () :: !acc
    done;
    List.rev !acc
  in
  let result =
    match byte () with
    | 1 ->
        let ptxn_id = varint () in
        let pfirst_term = varint () in
        let pterms = read_n (varint ()) rterm in
        let pops =
          read_n (varint ()) (fun () ->
              let kind = byte () in
              let s = varint () in
              let p = varint () in
              let o = varint () in
              match kind with
              | 0 -> Add (s, p, o)
              | 1 -> Del (s, p, o)
              | _ -> raise Bad_payload)
        in
        Body { ptxn_id; pfirst_term; pterms; pops }
    | 2 -> Marker (varint ())
    | _ -> raise Bad_payload
  in
  if !pos <> len then raise Bad_payload;
  result

(* Replay one segment's records against [dict], interning a committed
   transaction's terms only once its marker validates (a dangling
   body's terms must not poison the dictionary: they are about to be
   truncated from disk, and un-logged dictionary entries would break
   the id chain for every later commit). Returns the committed
   transactions in order and the byte offset of the last committed
   boundary. *)
let replay_records dict data =
  let len = String.length data in
  let committed = ref [] in
  let pos = ref header_size in
  let valid_end = ref header_size in
  let next_txn = ref 1 in
  let pending = ref None in
  let stop = ref false in
  while not !stop do
    if !pos + 8 > len then stop := true
    else begin
      let rlen = get_u32 data !pos in
      let rcrc = get_u32 data (!pos + 4) in
      if rlen <= 0 || rlen > max_record || !pos + 8 + rlen > len then
        stop := true
      else begin
        let payload = String.sub data (!pos + 8) rlen in
        if crc32 payload <> rcrc then stop := true
        else begin
          match parse_payload payload with
          | exception Bad_payload -> stop := true
          | Body b ->
              let nterms = List.length b.pterms in
              let ids_ok =
                List.for_all
                  (fun (Add (s, p, o) | Del (s, p, o)) ->
                    let bound = b.pfirst_term + nterms in
                    s < bound && p < bound && o < bound)
                  b.pops
              in
              if
                !pending <> None
                || b.ptxn_id <> !next_txn
                || b.pfirst_term <> Dictionary.size dict
                || not ids_ok
              then stop := true
              else begin
                pending := Some b;
                pos := !pos + 8 + rlen
              end
          | Marker id -> (
              match !pending with
              | Some b when b.ptxn_id = id ->
                  (* Validate the new terms are genuinely new and
                     pairwise distinct BEFORE interning any: a partial
                     intern of a rejected transaction would leave
                     dictionary entries no durable record describes. *)
                  let seen = Hashtbl.create 16 in
                  let fresh term =
                    (not (Hashtbl.mem seen term))
                    && Dictionary.find dict term = None
                    && (Hashtbl.replace seen term ();
                        true)
                  in
                  if not (List.for_all fresh b.pterms) then stop := true
                  else begin
                    List.iter
                      (fun term -> ignore (Dictionary.encode dict term))
                      b.pterms;
                    committed := { txn_id = id; ops = b.pops } :: !committed;
                    pending := None;
                    next_txn := id + 1;
                    pos := !pos + 8 + rlen;
                    valid_end := !pos
                  end
              | _ -> stop := true)
        end
      end
    end
  done;
  (List.rev !committed, !valid_end)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let make_handle ~dir ~policy ~seq ~oc ~fd ~next_txn ~logged_dict_size ~offset =
  {
    dir;
    policy;
    seq;
    oc;
    fd;
    next_txn;
    logged_dict_size;
    lsn_base = 0;
    appended = offset;
    synced = offset;
    last_sync = Unix.gettimeofday ();
    unsynced_commits = 0;
    syncing = false;
    m = Mutex.create ();
    cond = Condition.create ();
    n_commits = 0;
    n_syncs = 0;
    batched_commits = 0;
    max_batch = 0;
    n_checkpoints = 0;
  }

let open_dir ?(policy = Every_commit) ?init dirname =
  ensure_dir dirname;
  let t0 = Unix.gettimeofday () in
  let names = Sys.readdir dirname in
  let collect prefix suffix =
    Array.to_list names
    |> List.filter_map (fun n -> numbered ~prefix ~suffix n)
  in
  let checkpoints = collect "checkpoint." ".spuo" in
  let segments = collect "wal." ".log" in
  if checkpoints = [] && segments <> [] then
    raise (Unrecoverable (dirname ^ ": log segments but no checkpoint"));
  if checkpoints = [] then begin
    (* Fresh directory: seed it with [init ()] as checkpoint 1. *)
    let store =
      match init with Some f -> f () | None -> Triple_store.of_triples []
    in
    let dict_terms = Dictionary.size (Triple_store.dictionary store) in
    Snapshot.save ~dict_terms store (checkpoint_path dirname 1);
    let oc, fd = start_segment dirname 1 in
    fsync_dir dirname;
    let wal =
      make_handle ~dir:dirname ~policy ~seq:1 ~oc ~fd ~next_txn:1
        ~logged_dict_size:dict_terms ~offset:header_size
    in
    let recovery_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    {
      wal;
      store;
      txns = [];
      recovery =
        {
          checkpoint_seq = 1;
          replayed_txns = 0;
          replayed_ops = 0;
          truncated_bytes = 0;
          recovery_ms;
          initialized = true;
        };
    }
  end
  else begin
    let seq = List.fold_left max 0 checkpoints in
    if List.exists (fun s -> s > seq) segments then
      raise
        (Unrecoverable
           (dirname ^ ": log segment newer than the newest checkpoint"));
    let store =
      try Snapshot.load (checkpoint_path dirname seq)
      with Snapshot.Corrupt msg ->
        raise
          (Unrecoverable
             (Printf.sprintf "%s: checkpoint %d is corrupt (%s)" dirname seq
                msg))
    in
    let dict = Triple_store.dictionary store in
    let seg = segment_path dirname seq in
    let txns, valid_end, file_len =
      if not (Sys.file_exists seg) then
        (* Crash between the checkpoint rename and [start_segment]
           (checkpoint rotation or fresh-dir init): the checkpoint
           alone is authoritative. Report a negative length so the
           recreate branch below runs — [header_size] would instead
           route to the reopen-for-append path and fail on the
           nonexistent file. *)
        ([], header_size, -1)
      else begin
        let data = read_file seg in
        let len = String.length data in
        if len < header_size then
          (* Torn segment creation: no record can exist. *)
          ([], header_size, len)
        else if
          String.sub data 0 4 <> magic
          || get_u32 data 4 <> format_version
          || get_u32 data 8 <> seq
        then
          raise
            (Unrecoverable
               (Printf.sprintf "%s: bad segment header" seg))
        else begin
          let txns, valid_end = replay_records dict data in
          (txns, valid_end, len)
        end
      end
    in
    (* Physically truncate the torn tail (or recreate a missing/torn
       segment), then reopen for append at the committed boundary. *)
    let oc, fd =
      if file_len < header_size then begin
        let oc, fd = start_segment dirname seq in
        fsync_dir dirname;
        (oc, fd)
      end
      else begin
        if valid_end < file_len then begin
          let tfd = Unix.openfile seg [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate tfd valid_end;
          Unix.fsync tfd;
          Unix.close tfd
        end;
        let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 seg in
        seek_out oc valid_end;
        (oc, Unix.descr_of_out_channel oc)
      end
    in
    let wal =
      make_handle ~dir:dirname ~policy ~seq ~oc ~fd
        ~next_txn:(List.length txns + 1)
        ~logged_dict_size:(Dictionary.size dict) ~offset:valid_end
    in
    remove_superseded dirname seq;
    let recovery_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    {
      wal;
      store;
      txns;
      recovery =
        {
          checkpoint_seq = seq;
          replayed_txns = List.length txns;
          replayed_ops =
            List.fold_left (fun acc tr -> acc + List.length tr.ops) 0 txns;
          truncated_bytes = max 0 (file_len - valid_end);
          recovery_ms;
          initialized = false;
        };
    }
  end
