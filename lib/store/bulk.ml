(* Parallel-runner injection for bulk index builds.

   The store layer sits below the engine, so it cannot call the domain
   pool directly; instead the engine (or any embedder) installs a runner
   once at startup and every index build fans its sort/encode tasks
   through it. With no runner installed the tasks run serially — the
   store stays dependency-free and correct in single-domain processes. *)

type runner = { domains : int; run : ntasks:int -> (int -> unit) -> unit }

let cell : runner option Atomic.t = Atomic.make None

let set_runner ~domains run = Atomic.set cell (Some { domains; run })

let clear_runner () = Atomic.set cell None

let domains () =
  match Atomic.get cell with Some r -> max 1 r.domains | None -> 1

let run ~ntasks f =
  if ntasks > 0 then
    match Atomic.get cell with
    | Some r when r.domains > 1 && ntasks > 1 -> r.run ~ntasks f
    | _ ->
        for i = 0 to ntasks - 1 do
          f i
        done
