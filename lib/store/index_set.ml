(* A deduplicated triple table with all six permutation indexes — the
   unit of immutability in the snapshot store. The base of every
   snapshot is one (large) index set; each frozen delta generation
   carries two more (small) ones for its inserts and deletes. All
   pattern access below is read-only, so a built index set may be shared
   freely across domains. *)

type t = {
  table : Index.table;
  spo : Index.t;
  sop : Index.t;
  pso : Index.t;
  pos : Index.t;
  osp : Index.t;
  ops : Index.t;
}

(* Sort-and-dedup encoded triples in SPO order. *)
let dedup_encoded (rows : (int * int * int) array) =
  let cmp (s1, p1, o1) (s2, p2, o2) =
    let c = Int.compare s1 s2 in
    if c <> 0 then c
    else
      let c = Int.compare p1 p2 in
      if c <> 0 then c else Int.compare o1 o2
  in
  Array.sort cmp rows;
  let n = Array.length rows in
  if n = 0 then rows
  else begin
    let distinct = ref 1 in
    for i = 1 to n - 1 do
      if cmp rows.(i) rows.(i - 1) <> 0 then begin
        rows.(!distinct) <- rows.(i);
        incr distinct
      end
    done;
    Array.sub rows 0 !distinct
  end

let of_rows rows =
  let rows = dedup_encoded rows in
  let n = Array.length rows in
  let table =
    {
      Index.s = Array.make n 0;
      Index.p = Array.make n 0;
      Index.o = Array.make n 0;
    }
  in
  Array.iteri
    (fun i (s, p, o) ->
      table.Index.s.(i) <- s;
      table.Index.p.(i) <- p;
      table.Index.o.(i) <- o)
    rows;
  {
    table;
    spo = Index.build Index.Spo table;
    sop = Index.build Index.Sop table;
    pso = Index.build Index.Pso table;
    pos = Index.build Index.Pos table;
    osp = Index.build Index.Osp table;
    ops = Index.build Index.Ops table;
  }

let empty = of_rows [||]

let size t = Array.length t.table.Index.s

let is_empty t = size t = 0

let index t = function
  | Index.Spo -> t.spo
  | Index.Sop -> t.sop
  | Index.Pso -> t.pso
  | Index.Pos -> t.pos
  | Index.Osp -> t.osp
  | Index.Ops -> t.ops

(* Pick the index whose component order puts the bound positions first, and
   return it along with the (a, b, c) key prefix. *)
let plan_lookup t ?s ?p ?o () =
  match (s, p, o) with
  | None, None, None -> (t.spo, None, None, None)
  | Some s, None, None -> (t.spo, Some s, None, None)
  | None, Some p, None -> (t.pso, Some p, None, None)
  | None, None, Some o -> (t.osp, Some o, None, None)
  | Some s, Some p, None -> (t.spo, Some s, Some p, None)
  | Some s, None, Some o -> (t.sop, Some s, Some o, None)
  | None, Some p, Some o -> (t.pos, Some p, Some o, None)
  | Some s, Some p, Some o -> (t.spo, Some s, Some p, Some o)

let count t ?s ?p ?o () =
  let idx, a, b, c = plan_lookup t ?s ?p ?o () in
  let lo, hi = Index.range idx ?a ?b ?c () in
  hi - lo

let iter t ?s ?p ?o ~f () =
  let idx, a, b, c = plan_lookup t ?s ?p ?o () in
  let lo, hi = Index.range idx ?a ?b ?c () in
  Index.iter idx ~lo ~hi ~f

let contains t ~s ~p ~o = count t ~s ~p ~o () > 0

let third_column_view t ?s ?p ?o () =
  match (s, p, o) with
  | Some s, Some p, None -> Index.column_view t.spo ~a:s ~b:p
  | Some s, None, Some o -> Index.column_view t.sop ~a:s ~b:o
  | None, Some p, Some o -> Index.column_view t.pos ~a:p ~b:o
  | _ ->
      invalid_arg "Index_set.third_column_view: exactly two bound positions"

let iter_all t ~f =
  let lo, hi = Index.range t.spo () in
  Index.iter t.spo ~lo ~hi ~f

(* Every triple as encoded rows, in SPO order — the commit path folds a
   transaction's writes over these. *)
let rows t =
  let n = size t in
  let out = Array.make n (0, 0, 0) in
  let i = ref 0 in
  iter_all t ~f:(fun ~s ~p ~o ->
      out.(!i) <- (s, p, o);
      incr i);
  out

(* Within a single-predicate range of PSO, distinct (p, s) pairs coincide
   with distinct subjects. *)
let distinct_subjects t ~p =
  let lo, hi = Index.range t.pso ~a:p () in
  Index.distinct_seconds t.pso ~lo ~hi

let distinct_objects t ~p =
  let lo, hi = Index.range t.pos ~a:p () in
  Index.distinct_seconds t.pos ~lo ~hi

let predicates t =
  let idx = t.pso in
  let n = size t in
  let rec collect pos acc =
    if pos >= n then List.rev acc
    else
      let _, p, _ = Index.row idx pos in
      let _, hi = Index.range idx ~a:p () in
      collect hi ((p, hi - pos) :: acc)
  in
  collect 0 []
