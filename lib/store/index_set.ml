(* A deduplicated triple set with all six permutation indexes — the
   unit of immutability in the snapshot store. The base of every
   snapshot is one (large) index set; each frozen delta generation
   carries two more (small) ones for its inserts and deletes. All
   pattern access below is read-only, so a built index set may be shared
   freely across domains; the index payload itself lives off-heap in
   {!Column} storage.

   Bulk builds run in two stages:
     1. radix-sort a permutation of the raw (s, p, o) columns in SPO
        order and dedup into exact columns;
     2. fan the six per-order builds out over the injected {!Bulk}
        runner — each task radix-sorts its own permutation over the
        deduplicated columns and streams it into {!Index.of_sorted}
        (single-pass encode, no materialized key arrays). *)

type t = {
  n : int;
  spo : Index.t;
  sop : Index.t;
  pso : Index.t;
  pos : Index.t;
  osp : Index.t;
  ops : Index.t;
}

(* LSD radix sort of row indices by (key1, key2, key3): three stable
   counting passes (key3 first). O(3n + 3·max_id) — far cheaper than a
   comparison sort at bulk-load scale, and branch-free. *)
let counting_pass ~n ~max_id ~key src dst =
  let counts = Array.make (max_id + 2) 0 in
  for i = 0 to n - 1 do
    let k = key (Array.unsafe_get src i) in
    Array.unsafe_set counts (k + 1) (Array.unsafe_get counts (k + 1) + 1)
  done;
  for v = 1 to max_id + 1 do
    counts.(v) <- counts.(v) + counts.(v - 1)
  done;
  for i = 0 to n - 1 do
    let r = Array.unsafe_get src i in
    let k = key r in
    Array.unsafe_set dst (Array.unsafe_get counts k) r;
    Array.unsafe_set counts k (Array.unsafe_get counts k + 1)
  done

let radix_sort_perm ~n ~max_id ~key1 ~key2 ~key3 =
  let a = Array.init n Fun.id in
  let b = Array.make n 0 in
  counting_pass ~n ~max_id ~key:key3 a b;
  counting_pass ~n ~max_id ~key:key2 b a;
  counting_pass ~n ~max_id ~key:key1 a b;
  b

(* Key accessors for each order over three raw columns. *)
let keys_of_order (cs : int array) cp co = function
  | Index.Spo -> ((fun i -> cs.(i)), (fun i -> cp.(i)), fun i -> co.(i))
  | Index.Sop -> ((fun i -> cs.(i)), (fun i -> co.(i)), fun i -> cp.(i))
  | Index.Pso -> ((fun i -> cp.(i)), (fun i -> cs.(i)), fun i -> co.(i))
  | Index.Pos -> ((fun i -> cp.(i)), (fun i -> co.(i)), fun i -> cs.(i))
  | Index.Osp -> ((fun i -> co.(i)), (fun i -> cs.(i)), fun i -> cp.(i))
  | Index.Ops -> ((fun i -> co.(i)), (fun i -> cp.(i)), fun i -> cs.(i))

let all_orders =
  [| Index.Spo; Index.Sop; Index.Pso; Index.Pos; Index.Osp; Index.Ops |]

(* Build all six indexes over exact, deduplicated columns, in parallel
   when a runner is installed. [sorted_spo] marks the columns as already
   strictly increasing in SPO order, letting that task skip its sort. *)
let build_indexes ~mode ~max_id ~sorted_spo ds dp dob =
  let n = Array.length ds in
  let slots = Array.make 6 None in
  Bulk.run ~ntasks:6 (fun task ->
      let order = all_orders.(task) in
      let k1, k2, k3 = keys_of_order ds dp dob order in
      let idx =
        if order = Index.Spo && sorted_spo then
          Index.of_sorted order ~mode ~n ~key1:k1 ~key2:k2 ~key3:k3
        else begin
          let perm = radix_sort_perm ~n ~max_id ~key1:k1 ~key2:k2 ~key3:k3 in
          Index.of_sorted order ~mode ~n
            ~key1:(fun i -> k1 perm.(i))
            ~key2:(fun i -> k2 perm.(i))
            ~key3:(fun i -> k3 perm.(i))
        end
      in
      slots.(task) <- Some idx);
  let slot i = Option.get slots.(i) in
  {
    n;
    spo = slot 0;
    sop = slot 1;
    pso = slot 2;
    pos = slot 3;
    osp = slot 4;
    ops = slot 5;
  }

let max_id_of ~len cols =
  let m = ref 0 in
  List.iter
    (fun (c : int array) ->
      for i = 0 to len - 1 do
        if Array.unsafe_get c i > !m then m := Array.unsafe_get c i
      done)
    cols;
  !m

let of_columns ?mode ?len ~s ~p ~o () =
  let mode = Option.value mode ~default:(Column.default_mode ()) in
  let n0 = Option.value len ~default:(Array.length s) in
  let max_id = max_id_of ~len:n0 [ s; p; o ] in
  let sk i = Array.unsafe_get s i
  and pk i = Array.unsafe_get p i
  and ok i = Array.unsafe_get o i in
  let perm = radix_sort_perm ~n:n0 ~max_id ~key1:sk ~key2:pk ~key3:ok in
  (* Dedup into exact columns; the possibly-oversized inputs are dropped
     here and never reach the indexes. *)
  let distinct = ref 0 in
  let prev_s = ref (-1) and prev_p = ref (-1) and prev_o = ref (-1) in
  for i = 0 to n0 - 1 do
    let r = perm.(i) in
    if s.(r) <> !prev_s || p.(r) <> !prev_p || o.(r) <> !prev_o then begin
      prev_s := s.(r);
      prev_p := p.(r);
      prev_o := o.(r);
      incr distinct
    end
  done;
  let n = !distinct in
  let ds = Array.make n 0 and dp = Array.make n 0 and dob = Array.make n 0 in
  let k = ref 0 in
  prev_s := -1;
  prev_p := -1;
  prev_o := -1;
  for i = 0 to n0 - 1 do
    let r = perm.(i) in
    if s.(r) <> !prev_s || p.(r) <> !prev_p || o.(r) <> !prev_o then begin
      prev_s := s.(r);
      prev_p := p.(r);
      prev_o := o.(r);
      ds.(!k) <- s.(r);
      dp.(!k) <- p.(r);
      dob.(!k) <- o.(r);
      incr k
    end
  done;
  build_indexes ~mode ~max_id ~sorted_spo:true ds dp dob

(* Trusted path for the snapshot loader: columns already strictly
   increasing in SPO order (validated during decode), so the sort and
   dedup stages vanish. *)
let of_sorted_columns ?mode ~s ~p ~o () =
  let mode = Option.value mode ~default:(Column.default_mode ()) in
  let max_id = max_id_of ~len:(Array.length s) [ s; p; o ] in
  build_indexes ~mode ~max_id ~sorted_spo:true s p o

let of_rows rows =
  let n = Array.length rows in
  let s = Array.make n 0 and p = Array.make n 0 and o = Array.make n 0 in
  Array.iteri
    (fun i (si, pi, oi) ->
      s.(i) <- si;
      p.(i) <- pi;
      o.(i) <- oi)
    rows;
  of_columns ~len:n ~s ~p ~o ()

let empty = of_rows [||]

let size t = t.n

let is_empty t = t.n = 0

let mem_bytes t =
  Index.mem_bytes t.spo + Index.mem_bytes t.sop + Index.mem_bytes t.pso
  + Index.mem_bytes t.pos + Index.mem_bytes t.osp + Index.mem_bytes t.ops

let index t = function
  | Index.Spo -> t.spo
  | Index.Sop -> t.sop
  | Index.Pso -> t.pso
  | Index.Pos -> t.pos
  | Index.Osp -> t.osp
  | Index.Ops -> t.ops

(* Pick the index whose component order puts the bound positions first, and
   return it along with the (a, b, c) key prefix. *)
let plan_lookup t ?s ?p ?o () =
  match (s, p, o) with
  | None, None, None -> (t.spo, None, None, None)
  | Some s, None, None -> (t.spo, Some s, None, None)
  | None, Some p, None -> (t.pso, Some p, None, None)
  | None, None, Some o -> (t.osp, Some o, None, None)
  | Some s, Some p, None -> (t.spo, Some s, Some p, None)
  | Some s, None, Some o -> (t.sop, Some s, Some o, None)
  | None, Some p, Some o -> (t.pos, Some p, Some o, None)
  | Some s, Some p, Some o -> (t.spo, Some s, Some p, Some o)

let count t ?s ?p ?o () =
  let idx, a, b, c = plan_lookup t ?s ?p ?o () in
  let lo, hi = Index.range idx ?a ?b ?c () in
  hi - lo

let iter t ?s ?p ?o ~f () =
  let idx, a, b, c = plan_lookup t ?s ?p ?o () in
  let lo, hi = Index.range idx ?a ?b ?c () in
  Index.iter idx ~lo ~hi ~f

let contains t ~s ~p ~o = count t ~s ~p ~o () > 0

let third_column_view t ?s ?p ?o () =
  match (s, p, o) with
  | Some s, Some p, None -> Index.column_view t.spo ~a:s ~b:p
  | Some s, None, Some o -> Index.column_view t.sop ~a:s ~b:o
  | None, Some p, Some o -> Index.column_view t.pos ~a:p ~b:o
  | _ ->
      invalid_arg "Index_set.third_column_view: exactly two bound positions"

let iter_all t ~f = Index.iter t.spo ~lo:0 ~hi:t.n ~f

(* Every triple as encoded rows, in SPO order — the commit path folds a
   transaction's writes over these. *)
let rows t =
  let n = size t in
  let out = Array.make n (0, 0, 0) in
  let i = ref 0 in
  iter_all t ~f:(fun ~s ~p ~o ->
      out.(!i) <- (s, p, o);
      incr i);
  out

(* Within a single-predicate range of PSO, distinct (p, s) pairs coincide
   with distinct subjects. *)
let distinct_subjects t ~p =
  let lo, hi = Index.range t.pso ~a:p () in
  Index.distinct_seconds t.pso ~lo ~hi

let distinct_objects t ~p =
  let lo, hi = Index.range t.pos ~a:p () in
  Index.distinct_seconds t.pos ~lo ~hi

(* The skip level of PSO lists every predicate with its row range — no
   walk over triples. *)
let predicates t =
  let acc = ref [] in
  Index.iter_firsts t.pso ~f:(fun p ~lo ~hi -> acc := (p, hi - lo) :: !acc);
  List.rev !acc
