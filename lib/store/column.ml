(* Off-heap integer columns: the physical storage behind every
   permutation index. Values live in one [char] Bigarray outside the
   OCaml heap — the GC never scans index data, and reads assemble ints
   from unboxed byte loads (int32/int64 Bigarray kinds would box every
   element read; bytes do not).

   Two representations, chosen per column at build time:

   - [Raw]: fixed-width little-endian integers, 4 bytes when every value
     fits in 31 bits and 8 otherwise. O(1) random access; used for the
     small offset/grouping columns that back every lookup, and for whole
     indexes when compression is disabled (--compression none).
   - [Delta]: values split into blocks of 128. The first value of each
     block is kept uncompressed in a fixed-width sample array (the skip
     index); the rest of the block is encoded adaptively:
       tag 0  zigzag-varint deltas from the predecessor (works for any
              value sequence — per-group columns reset between groups,
              so deltas can be negative);
       tag 1  a bitset over the block's span (only for strictly
              increasing blocks, chosen when the bitmap is smaller than
              the varints — the dense-range case, mirroring the
              Candidates dense/sparse split).
     Point reads decode one block into a 128-int scratch; sequential
     readers carry a [cursor] so each block decodes once. Searches over
     sorted ranges gallop on the samples and decode only the one
     candidate block. *)

type bytes_ba =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type mode = Raw | Delta

(* Process-global default, set once at startup by the CLI escape hatch
   (--compression). Reads are plain loads; builders sample it at
   creation. *)
let mode_cell = Atomic.make Delta
let set_default_mode m = Atomic.set mode_cell m
let default_mode () = Atomic.get mode_cell

let mode_name = function Raw -> "none" | Delta -> "delta"

let mode_of_name = function
  | "none" | "raw" -> Some Raw
  | "delta" -> Some Delta
  | _ -> None

let block_size = 128
let block_shift = 7
let block_mask = block_size - 1

(* --- fixed-width storage ----------------------------------------------- *)

type fixed = { data : bytes_ba; width : int }

let empty_ba : bytes_ba = Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0

let empty_fixed = { data = empty_ba; width = 4 }

let byte ba i = Char.code (Bigarray.Array1.unsafe_get ba i)

(* Values are nonnegative by construction (dictionary ids, offsets), so
   4-byte cells need no sign extension and 8-byte cells never set bit 63. *)
let fget f i =
  let base = i * f.width in
  let d = f.data in
  if f.width = 4 then
    byte d base
    lor (byte d (base + 1) lsl 8)
    lor (byte d (base + 2) lsl 16)
    lor (byte d (base + 3) lsl 24)
  else
    byte d base
    lor (byte d (base + 1) lsl 8)
    lor (byte d (base + 2) lsl 16)
    lor (byte d (base + 3) lsl 24)
    lor (byte d (base + 4) lsl 32)
    lor (byte d (base + 5) lsl 40)
    lor (byte d (base + 6) lsl 48)
    lor (byte d (base + 7) lsl 56)

let fset f i v =
  let base = i * f.width in
  let d = f.data in
  Bigarray.Array1.unsafe_set d base (Char.unsafe_chr (v land 0xff));
  Bigarray.Array1.unsafe_set d (base + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bigarray.Array1.unsafe_set d (base + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bigarray.Array1.unsafe_set d (base + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
  if f.width = 8 then begin
    Bigarray.Array1.unsafe_set d (base + 4) (Char.unsafe_chr ((v lsr 32) land 0xff));
    Bigarray.Array1.unsafe_set d (base + 5) (Char.unsafe_chr ((v lsr 40) land 0xff));
    Bigarray.Array1.unsafe_set d (base + 6) (Char.unsafe_chr ((v lsr 48) land 0xff));
    Bigarray.Array1.unsafe_set d (base + 7) (Char.unsafe_chr ((v lsr 56) land 0xff))
  end

(* The int32 guard: values at or above 2^31 take 8-byte cells. *)
let width_for max_value = if max_value < 1 lsl 31 then 4 else 8

let fixed_of_values n get =
  if n = 0 then empty_fixed
  else begin
    let maxv = ref 0 in
    for i = 0 to n - 1 do
      let v = get i in
      if v > !maxv then maxv := v
    done;
    let width = width_for !maxv in
    let data =
      Bigarray.Array1.create Bigarray.char Bigarray.c_layout (n * width)
    in
    let f = { data; width } in
    for i = 0 to n - 1 do
      fset f i (get i)
    done;
    f
  end

(* --- growable off-heap byte buffer ------------------------------------- *)

module Bb = struct
  type t = { mutable data : bytes_ba; mutable len : int }

  let create capacity =
    {
      data = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (max 64 capacity);
      len = 0;
    }

  let ensure b extra =
    let cap = Bigarray.Array1.dim b.data in
    if b.len + extra > cap then begin
      let cap' = max (b.len + extra) (2 * cap) in
      let data' = Bigarray.Array1.create Bigarray.char Bigarray.c_layout cap' in
      Bigarray.Array1.blit
        (Bigarray.Array1.sub b.data 0 b.len)
        (Bigarray.Array1.sub data' 0 b.len);
      b.data <- data'
    end

  let add_byte b c =
    ensure b 1;
    Bigarray.Array1.unsafe_set b.data b.len (Char.unsafe_chr c);
    b.len <- b.len + 1

  (* Shrink to exact size so a built column holds no slack. *)
  let contents b : bytes_ba =
    let out = Bigarray.Array1.create Bigarray.char Bigarray.c_layout b.len in
    Bigarray.Array1.blit (Bigarray.Array1.sub b.data 0 b.len) out;
    out
end

(* --- packed (block-compressed) storage --------------------------------- *)

type packed = {
  blocks : bytes_ba;  (* tag byte + payload per block, concatenated *)
  samples : fixed;  (* first value of each block, uncompressed *)
  offsets : fixed;  (* nblocks+1 byte offsets into [blocks] *)
}

type repr = Raw_r of fixed | Packed_r of packed

type t = { repr : repr; len : int }

let length t = t.len

let mem_bytes t =
  match t.repr with
  | Raw_r f -> Bigarray.Array1.dim f.data
  | Packed_r p ->
      Bigarray.Array1.dim p.blocks
      + Bigarray.Array1.dim p.samples.data
      + Bigarray.Array1.dim p.offsets.data

let mode t = match t.repr with Raw_r _ -> Raw | Packed_r _ -> Delta

(* zigzag maps signed deltas onto unsigned varint space *)
let zig n = (n lsl 1) lxor (n asr 62)
let unzig u = (u lsr 1) lxor (- (u land 1))

let add_varint bb u =
  let u = ref u in
  while !u >= 0x80 do
    Bb.add_byte bb (0x80 lor (!u land 0x7f));
    u := !u lsr 7
  done;
  Bb.add_byte bb !u

let varint_size u =
  let u = ref u and n = ref 1 in
  while !u >= 0x80 do
    incr n;
    u := !u lsr 7
  done;
  !n

(* Encode values[0..k-1] (k >= 1) as one block appended to [bb]. The
   first value is NOT in the payload — it lives in the sample array. *)
let encode_block bb values k =
  let v0 = values.(0) in
  (* Varint cost of the delta chain, and whether a bitset is possible. *)
  let vsize = ref 0 in
  let increasing = ref true in
  for i = 1 to k - 1 do
    let d = values.(i) - values.(i - 1) in
    if d <= 0 then increasing := false;
    vsize := !vsize + varint_size (zig d)
  done;
  let span = values.(k - 1) - v0 in
  let bitset_bytes = if !increasing && k > 1 then (span + 7) lsr 3 else max_int in
  if bitset_bytes < !vsize then begin
    Bb.add_byte bb 1;
    (* bit (v - v0 - 1) set for each value after the first *)
    let bytes = Bytes.make bitset_bytes '\000' in
    for i = 1 to k - 1 do
      let bit = values.(i) - v0 - 1 in
      Bytes.unsafe_set bytes (bit lsr 3)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get bytes (bit lsr 3))
           lor (1 lsl (bit land 7))))
    done;
    for i = 0 to bitset_bytes - 1 do
      Bb.add_byte bb (Char.code (Bytes.unsafe_get bytes i))
    done
  end
  else begin
    Bb.add_byte bb 0;
    for i = 1 to k - 1 do
      add_varint bb (zig (values.(i) - values.(i - 1)))
    done
  end

(* Decode block [b] into [scratch]; returns the value count. *)
let decode_block p ~len b scratch =
  let base = fget p.offsets b in
  let limit = fget p.offsets (b + 1) in
  let k = min block_size (len - (b lsl block_shift)) in
  let v0 = fget p.samples b in
  scratch.(0) <- v0;
  (match byte p.blocks base with
  | 1 ->
      let filled = ref 1 in
      let pos = ref (base + 1) in
      let v = ref v0 in
      while !filled < k do
        let b8 = byte p.blocks !pos in
        if b8 <> 0 then
          for bit = 0 to 7 do
            if b8 land (1 lsl bit) <> 0 then begin
              scratch.(!filled) <- !v + ((!pos - base - 1) lsl 3) + bit + 1;
              incr filled
            end
          done;
        incr pos
      done
  | _ ->
      let pos = ref (base + 1) in
      let prev = ref v0 in
      for i = 1 to k - 1 do
        let u = ref 0 and shift = ref 0 in
        let continue = ref true in
        while !continue do
          let b8 = byte p.blocks !pos in
          incr pos;
          u := !u lor ((b8 land 0x7f) lsl !shift);
          shift := !shift + 7;
          continue := b8 land 0x80 <> 0
        done;
        prev := !prev + unzig !u;
        scratch.(i) <- !prev
      done;
      ignore limit);
  k

(* --- cursors ------------------------------------------------------------ *)

type cursor = { mutable blk : int; scratch : int array }

let cursor _t = { blk = -1; scratch = Array.make block_size 0 }

let load_block t p cur b =
  if cur.blk <> b then begin
    ignore (decode_block p ~len:t.len b cur.scratch);
    cur.blk <- b
  end

let read t cur i =
  match t.repr with
  | Raw_r f -> fget f i
  | Packed_r p ->
      let b = i lsr block_shift in
      load_block t p cur b;
      Array.unsafe_get cur.scratch (i land block_mask)

(* Cold random access: samples answer block-aligned reads for free;
   anything else decodes a throwaway block. Hot paths use cursors. *)
let get t i =
  match t.repr with
  | Raw_r f -> fget f i
  | Packed_r p ->
      if i land block_mask = 0 then fget p.samples (i lsr block_shift)
      else begin
        let scratch = Array.make block_size 0 in
        ignore (decode_block p ~len:t.len (i lsr block_shift) scratch);
        scratch.(i land block_mask)
      end

let iter t ~lo ~hi ~f =
  if hi > lo then
    match t.repr with
    | Raw_r fx -> for i = lo to hi - 1 do f (fget fx i) done
    | Packed_r p ->
        let scratch = Array.make block_size 0 in
        let b = ref (lo lsr block_shift) in
        let last_b = (hi - 1) lsr block_shift in
        while !b <= last_b do
          let k = decode_block p ~len:t.len !b scratch in
          let start = max lo (!b lsl block_shift) - (!b lsl block_shift) in
          let stop = min k (hi - (!b lsl block_shift)) in
          for i = start to stop - 1 do
            f (Array.unsafe_get scratch i)
          done;
          incr b
        done

(* First index in [lo, hi) whose value is >= v, assuming values are
   increasing over that range; [hi] when none is. For packed columns the
   search runs over the uncompressed block samples and decodes exactly
   one candidate block. *)
let lower_bound t ?cursor ~lo ~hi v =
  if lo >= hi then hi
  else
    match t.repr with
    | Raw_r f ->
        let l = ref lo and h = ref hi in
        while !l < !h do
          let mid = (!l + !h) / 2 in
          if fget f mid < v then l := mid + 1 else h := mid
        done;
        !l
    | Packed_r p ->
        let b_lo = lo lsr block_shift and b_hi = (hi - 1) lsr block_shift in
        (* Samples of blocks (b_lo, b_hi] sit at in-range positions and
           are increasing: binary search the first with sample >= v. *)
        let l = ref (b_lo + 1) and h = ref (b_hi + 1) in
        while !l < !h do
          let mid = (!l + !h) / 2 in
          if fget p.samples mid < v then l := mid + 1 else h := mid
        done;
        let bf = !l in
        (* The answer, if below bf's sample position, is inside block
           bf - 1: decode it and binary search the clamped window. *)
        let bc = bf - 1 in
        let cur =
          match cursor with
          | Some c -> c
          | None -> { blk = -1; scratch = Array.make block_size 0 }
        in
        load_block t p cur bc;
        let base = bc lsl block_shift in
        let wl = ref (max lo base - base)
        and wh = ref (min hi (base + block_size) - base) in
        let found_hi = !wh in
        while !wl < !wh do
          let mid = (!wl + !wh) / 2 in
          if Array.unsafe_get cur.scratch mid < v then wl := mid + 1
          else wh := mid
        done;
        if !wl < found_hi then base + !wl
        else if bf lsl block_shift < hi then bf lsl block_shift
        else hi

(* --- builders ----------------------------------------------------------- *)

module Builder = struct
  type col = t

  type t = {
    (* Raw: values spill straight into an 8-byte-wide growable buffer,
       compacted to 4 bytes at finish when they all fit. *)
    raw : Bb.t option;
    (* Delta: a 128-value staging block plus growable compressed bytes,
       samples and offsets. *)
    block : int array;
    mutable fill : int;
    bb : Bb.t;
    mutable samples : int array;
    mutable offsets : int array;
    mutable nblocks : int;
    mutable maxv : int;
    mutable total : int;
  }

  let create bmode =
    {
      raw = (match bmode with Raw -> Some (Bb.create 1024) | Delta -> None);
      block = Array.make block_size 0;
      fill = 0;
      bb = Bb.create 256;
      samples = Array.make 16 0;
      offsets = Array.make 17 0;
      nblocks = 0;
      maxv = 0;
      total = 0;
    }

  let push_block b =
    if b.nblocks = Array.length b.samples then begin
      let samples' = Array.make (2 * b.nblocks) 0 in
      Array.blit b.samples 0 samples' 0 b.nblocks;
      b.samples <- samples';
      let offsets' = Array.make ((2 * b.nblocks) + 1) 0 in
      Array.blit b.offsets 0 offsets' 0 (b.nblocks + 1);
      b.offsets <- offsets'
    end;
    b.samples.(b.nblocks) <- b.block.(0);
    encode_block b.bb b.block b.fill;
    b.nblocks <- b.nblocks + 1;
    b.offsets.(b.nblocks) <- b.bb.Bb.len;
    b.fill <- 0

  let add b v =
    if v > b.maxv then b.maxv <- v;
    b.total <- b.total + 1;
    match b.raw with
    | Some bb ->
        Bb.ensure bb 8;
        let base = bb.Bb.len in
        let d = bb.Bb.data in
        Bigarray.Array1.unsafe_set d base (Char.unsafe_chr (v land 0xff));
        Bigarray.Array1.unsafe_set d (base + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
        Bigarray.Array1.unsafe_set d (base + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
        Bigarray.Array1.unsafe_set d (base + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
        Bigarray.Array1.unsafe_set d (base + 4) (Char.unsafe_chr ((v lsr 32) land 0xff));
        Bigarray.Array1.unsafe_set d (base + 5) (Char.unsafe_chr ((v lsr 40) land 0xff));
        Bigarray.Array1.unsafe_set d (base + 6) (Char.unsafe_chr ((v lsr 48) land 0xff));
        Bigarray.Array1.unsafe_set d (base + 7) (Char.unsafe_chr ((v lsr 56) land 0xff));
        bb.Bb.len <- base + 8
    | None ->
        b.block.(b.fill) <- v;
        b.fill <- b.fill + 1;
        if b.fill = block_size then push_block b

  let finish b =
    match b.raw with
    | Some bb ->
        let n = b.total in
        let width = if b.maxv < 1 lsl 31 then 4 else 8 in
        let wide = { data = bb.Bb.data; width = 8 } in
        let repr =
          if width = 8 then Raw_r { wide with data = Bb.contents bb }
          else begin
            let data =
              Bigarray.Array1.create Bigarray.char Bigarray.c_layout (n * 4)
            in
            let narrow = { data; width = 4 } in
            for i = 0 to n - 1 do
              fset narrow i (fget wide i)
            done;
            Raw_r narrow
          end
        in
        { repr; len = n }
    | None ->
        if b.fill > 0 then push_block b;
        if b.nblocks = 0 then { repr = Raw_r empty_fixed; len = 0 }
        else begin
          let nb = b.nblocks in
          let samples = fixed_of_values nb (fun i -> b.samples.(i)) in
          let offsets = fixed_of_values (nb + 1) (fun i -> b.offsets.(i)) in
          let packed =
            { blocks = Bb.contents b.bb; samples; offsets }
          in
          { repr = Packed_r packed; len = b.total }
        end
end

let of_array bmode arr =
  let b = Builder.create bmode in
  Array.iter (Builder.add b) arr;
  Builder.finish b

let to_array t =
  let out = Array.make t.len 0 in
  let i = ref 0 in
  iter t ~lo:0 ~hi:t.len ~f:(fun v ->
      out.(!i) <- v;
      incr i);
  out
