(* The store layer sits below the query layers, so it cannot see
   {!Sparql.Governor} directly — yet the durability code wants the same
   deterministic fault-injection machinery the engine's chaos suite
   uses. This module is the seam: a process-global handler, installed
   once by a higher layer (the core library routes it to
   [Sparql.Governor.failpoint]), called by store code at named kill
   points. The default handler is a no-op, so the store library stays
   usable — and fault-free — on its own. *)

let noop (_ : string) = ()

let handler : (string -> unit) Atomic.t = Atomic.make noop

let set_handler f = Atomic.set handler f

let hit site = (Atomic.get handler) site

(* Every site the store layer can kill at, for chaos schedules that
   sweep them all. *)
let all_sites =
  [
    "wal.record"; "wal.marker"; "wal.sync.pre"; "wal.sync.post";
    "snapshot.save"; "snapshot.rename";
  ]
