(** Dictionary encoding: a bijection between RDF terms and dense integer
    identifiers, used by the triple store so that all query processing runs
    on machine integers.

    Ids are append-only: once assigned they are never reused or
    reassigned, which is what lets every snapshot of a store lineage
    (and every compiled plan) share one dictionary.

    Thread safety: [encode] and [find] serialize on an internal mutex;
    [decode], [iter] and [size] are lock-free and safe against a
    concurrent [encode] — a reader observes a prefix of the dictionary
    that is always internally consistent. *)

type t

val create : ?initial_capacity:int -> unit -> t

(** [encode dict term] returns the id of [term], assigning a fresh id if the
    term has not been seen. Ids are dense, starting at 0. *)
val encode : t -> Rdf.Term.t -> int

(** [find dict term] is the id of [term] if already encoded. *)
val find : t -> Rdf.Term.t -> int option

(** [decode dict id] is the term with identifier [id].
    Raises [Invalid_argument] if [id] is out of range. *)
val decode : t -> int -> Rdf.Term.t

(** [size dict] is the number of distinct terms encoded. *)
val size : t -> int

(** [iter dict ~f] applies [f id term] to every encoded pair in id order
    (over the prefix visible when the iteration started). *)
val iter : t -> f:(int -> Rdf.Term.t -> unit) -> unit
