(** Observed-cardinality feedback (the adaptive-execution loop): maps a
    BGP — its triple-pattern list, the same key the plan memo uses — to
    the row count it actually produced when last evaluated without a
    candidate prefilter. {!Cost_model} and the evaluator's admission /
    engine-selection rules consult it before the sampled estimate, so
    re-executions of a cached plan start from observed cardinalities.

    Thread-safe (parallel UNION branches record concurrently). *)

type t

val create : unit -> t

(** [record t patterns ~rows] stores an observation; the last one wins.
    Callers must only record {e unpruned} evaluations — a prefiltered
    BGP's output is not the standalone |res(B)| the estimates model. *)
val record : t -> Sparql.Triple_pattern.t list -> rows:int -> unit

val find : t -> Sparql.Triple_pattern.t list -> float option

(** [card t patterns ~default] — the observed cardinality, or [default]
    (typically the planner's sampled estimate) when never observed. *)
val card : t -> Sparql.Triple_pattern.t list -> default:float -> float

(** [length t] — number of BGPs with a recorded observation. *)
val length : t -> int

val clear : t -> unit
