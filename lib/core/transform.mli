(** The BE-tree transformations: merge (Definition 9) and inject
    (Definition 10) as pure tree rewrites, and the cost-driven drivers
    (Algorithms 2–4).

    A merged BGP leaves an *empty BGP node* at its original position —
    exactly as the paper retains empty nodes — which keeps sibling indexes
    stable across transformations and is the join identity for evaluation.

    Safety beyond the paper's stated conditions: a merge may not move a
    BGP across an OPTIONAL sibling (left-outer joins do not commute with
    the distribution of Theorem 1 across that boundary), so [can_merge]
    additionally requires that no OPTIONAL node sits strictly between the
    BGP and the target UNION. Inject is safe regardless of intermediate
    siblings because every row of the OPTIONAL-left result extends a match
    of the injected BGP. *)

(** {1 Primitives} *)

(** [can_merge g ~p1 ~union] — Definition 9's applicability conditions
    (plus the OPTIONAL-crossing restriction): child [p1] is a non-empty
    BGP, child [union] is a UNION with at least one branch holding a
    coalescable top-level BGP child. *)
val can_merge : Be_tree.group -> p1:int -> union:int -> bool

(** [apply_merge g ~p1 ~union] performs the merge; the BGP is inserted as
    the leftmost child of every branch and coalesced to maximality.
    Raises [Invalid_argument] if [can_merge] is false. *)
val apply_merge : Be_tree.group -> p1:int -> union:int -> Be_tree.group

(** [can_inject g ~p1 ~opt] — Definition 10's conditions: child [p1] is a
    non-empty BGP, child [opt] is an OPTIONAL strictly to its right whose
    child group holds a coalescable top-level BGP child. *)
val can_inject : Be_tree.group -> p1:int -> opt:int -> bool

(** [apply_inject g ~p1 ~opt] performs the inject; the BGP stays at its
    original position *and* is coalesced into the OPTIONAL's child. *)
val apply_inject : Be_tree.group -> p1:int -> opt:int -> Be_tree.group

(** {1 Cost-driven drivers} *)

(** [single_level env ?skip_cp_equivalent g] — Algorithm 2: for each BGP
    child, pick the sibling UNION whose merge has the most negative Δ-cost
    (if any), else try each OPTIONAL to the right for inject, keeping each
    inject whose Δ-cost is negative. With [skip_cp_equivalent] (the Full
    mode of Section 6), transformations whose effect is equivalent to
    candidate pruning — the BGP is the only pattern to the left of the
    target — are skipped. Default [false]. *)
val single_level :
  Engine.Bgp_eval.t -> ?skip_cp_equivalent:bool -> Be_tree.group -> Be_tree.group

(** [multi_level env ?skip_cp_equivalent g] — Algorithm 4: greedy
    post-order traversal; lower levels are transformed before their
    parents. *)
val multi_level :
  Engine.Bgp_eval.t -> ?skip_cp_equivalent:bool -> Be_tree.group -> Be_tree.group

(** [timed_multi_level env ?skip_cp_equivalent g] is {!multi_level}
    paired with its elapsed wall-clock milliseconds — the prepare-phase
    cost a prepared query pays once and re-executions amortize. *)
val timed_multi_level :
  Engine.Bgp_eval.t ->
  ?skip_cp_equivalent:bool ->
  Be_tree.group ->
  Be_tree.group * float
