type env = Engine.Bgp_eval.t

let bgp_cost env = function
  | [] -> 0.
  | patterns -> Engine.Bgp_eval.estimate_cost env patterns

let bgp_card ?feedback env = function
  | [] -> 1.
  | patterns -> (
      let estimate = Engine.Bgp_eval.estimate_card env patterns in
      (* Observed cardinality, when this BGP has run before, replaces the
         sampled estimate — the feedback half of the adaptive loop. *)
      match feedback with
      | Some fb -> Feedback.card fb patterns ~default:estimate
      | None -> estimate)

let rec node_card ?feedback env = function
  | Be_tree.Bgp b -> bgp_card ?feedback env b
  | Be_tree.Values { Sparql.Ast.rows; _ } ->
      Float.max (float_of_int (List.length rows)) 1.
  | Be_tree.Group g -> group_card ?feedback env g
  | Be_tree.Union gs ->
      List.fold_left (fun acc g -> acc +. group_card ?feedback env g) 0. gs
  | Be_tree.Optional g ->
      (* The left side is retained even when the child has no matches. *)
      Float.max (group_card ?feedback env g) 1.
  | Be_tree.Minus _ ->
      (* MINUS only removes rows; neutral for sibling products. *)
      1.

and group_card ?feedback env (g : Be_tree.group) =
  List.fold_left (fun acc node -> acc *. node_card ?feedback env node) 1. g.children

(* The OPTIONAL child under candidate pruning: the left side's join-column
   bindings are pushed into the subtree as a semijoin prefilter, so every
   surviving child row must agree with some left row on a universally
   bound column — the child's effective size is bounded by the left
   side's, not its standalone cardinality. min(child, left) is that bound
   under the key-like-join-column assumption; the unfiltered child card
   still applies when the left side is the larger of the two. *)
let optional_card ?feedback env ~left_card (g : Be_tree.group) =
  let child = group_card ?feedback env g in
  Float.max 1. (Float.min child (Float.max left_card 1.))

let f_and args = List.fold_left ( *. ) 1. args
let f_union args = List.fold_left ( +. ) 0. args
let f_optional left right = left *. right

let level_cost ?(pruned = false) ?feedback env (g : Be_tree.group) =
  let children = Array.of_list g.children in
  let cards = Array.map (node_card ?feedback env) children in
  let n = Array.length children in
  (* Prefix/suffix products give res(l(·)) and res(r(·)) cheaply. *)
  let left = Array.make (n + 1) 1. in
  for i = 0 to n - 1 do
    left.(i + 1) <- left.(i) *. cards.(i)
  done;
  let right = Array.make (n + 1) 1. in
  for i = n - 1 downto 0 do
    right.(i) <- right.(i + 1) *. cards.(i)
  done;
  let total = ref 0. in
  Array.iteri
    (fun i node ->
      match node with
      | Be_tree.Bgp b ->
          total :=
            !total +. bgp_cost env b
            +. f_and [ cards.(i); left.(i); right.(i + 1) ]
      | Be_tree.Union gs ->
          total := !total +. f_union (List.map (group_card ?feedback env) gs)
      | Be_tree.Optional inner | Be_tree.Minus inner ->
          (* The left pattern is everything to the node's left. With
             candidate pruning active, the child is priced as prefiltered
             by that left side, not standalone. *)
          let child =
            if pruned then optional_card ?feedback env ~left_card:left.(i) inner
            else group_card ?feedback env inner
          in
          total := !total +. f_optional left.(i) child
      | Be_tree.Values _ | Be_tree.Group _ -> ())
    children;
  !total

let two_level_cost ?pruned ?feedback env (g : Be_tree.group) =
  let sub_costs =
    List.fold_left
      (fun acc node ->
        match node with
        | Be_tree.Bgp _ | Be_tree.Values _ -> acc
        | Be_tree.Group inner | Be_tree.Optional inner | Be_tree.Minus inner ->
            acc +. level_cost ?pruned ?feedback env inner
        | Be_tree.Union gs ->
            List.fold_left
              (fun acc g -> acc +. level_cost ?pruned ?feedback env g)
              acc gs)
      0. g.children
  in
  level_cost ?pruned ?feedback env g +. sub_costs
