(** The top-level one-shot SPARQL-UO execution API, wiring together
    parsing, BE-tree construction, cost-driven transformation, and
    evaluation with candidate pruning — in the four configurations the
    paper evaluates (Section 7.1):

    - [Base]: Algorithm 1 on the untransformed BE-tree;
    - [TT]: Algorithm 4's tree transformation, then Algorithm 1;
    - [CP]: Algorithm 1 with candidate pruning at a fixed threshold
      (1% of the dataset size, as in the paper);
    - [Full]: transformation (skipping pruning-equivalent special cases) +
      candidate pruning with the adaptive threshold.

    Since the prepare/execute split this module is a thin wrapper:
    [run] is {!Prepared.prepare} immediately followed by
    {!Prepared.execute}. Callers that execute a query more than once
    should hold a {!Session} (bounded plan cache with epoch
    invalidation) or a {!Prepared.t} directly. *)

type mode = Prepared.mode = Base | TT | CP | Full

val mode_name : mode -> string
val all_modes : mode list

(** Why a run was killed (see {!Sparql.Governor.failure}): the row budget
    (the paper's out-of-memory analogue), the wall-clock timeout, a
    cross-domain cancellation, or an injected chaos fault. *)
type failure = Prepared.failure =
  | Out_of_budget
  | Timeout
  | Cancelled
  | Injected_fault of string

val failure_name : failure -> string

(** Plan-cache provenance of a session run (see {!Prepared.cache_info}). *)
type cache_info = Prepared.cache_info = {
  hit : bool;
  hits : int;
  misses : int;
}

type report = Prepared.report = {
  mode : mode;
  engine : Engine.Bgp_eval.engine;
  adaptive : bool;
      (** whether the adaptive execution layer ran (Full mode only) *)
  query : Sparql.Ast.query;  (** the parsed query the report answers *)
  vartable : Sparql.Vartable.t;
  projection : string list;  (** variables the query projects *)
  bag : Sparql.Bag.t option;
      (** [None] when a limit was exceeded without [~partial:true] *)
  result_count : int option;
  failure : failure option;  (** why the run was killed, if it was *)
  partial : failure option;
      (** [Some f] iff [bag] holds the partial result of a run killed by
          [f] (see {!Prepared.report}) *)
  pushed_rows : int;  (** rows produced by this execution (its ticket) *)
  transform_ms : float;  (** time spent in Algorithm 4 (0 for Base/CP) *)
  exec_ms : float;  (** evaluation time *)
  eval_stats : Evaluator.stats option;
  tree_before : Be_tree.group;
  tree_after : Be_tree.group;
  epoch : int;  (** store epoch observed after the run *)
  cache : cache_info option;
      (** [None] for one-shot runs that bypassed a session plan cache *)
}

(** [run ?mode ?engine ?domains ?streaming ?row_budget ?timeout_ms ?stats
    store text] parses and executes [text]. [domains] (default 1) is the
    number of domains evaluation may use: [> 1] runs WCO extension steps,
    the probe side of hash joins and independent UNION branches on the
    process-global domain pool (results are equal to the serial run as
    bags; row order may differ). [streaming] (default [true]) threads the
    solution modifiers as a sink pipeline behind the evaluator's final
    operator: LIMIT/OFFSET early-terminates evaluation, ORDER BY + LIMIT
    runs as a bounded top-k heap, DISTINCT and projection stream row by
    row; [~streaming:false] keeps the historical materialize-then-modify
    pipeline (results are equal as bags either way). Aggregated queries
    (GROUP BY / aggregates / HAVING) always materialize before their
    modifiers stream. [row_budget] bounds total produced rows;
    [timeout_ms] bounds wall-clock time; on either limit the report
    carries [bag = None] and a {!failure} — unless [~partial:true], where
    the rows materialized before the kill are returned with the report's
    [partial] marker set. Each run executes under its own governor
    ticket ([governor] supplies one, e.g. to cancel from another domain),
    so concurrent runs with different limits are isolated. [adaptive]
    (default [true]) enables the adaptive execution layer in Full mode
    (sideways bitset prefilters into OPTIONAL/MINUS subtrees, observed-
    cardinality feedback into [feedback] when supplied, per-node engine
    selection, re-plan marking on ≥10x estimate deviation);
    [~adaptive:false] runs the paper's static Full configuration.
    Defaults: [Full], [Wco], serial, unlimited. *)
val run :
  ?mode:mode ->
  ?engine:Engine.Bgp_eval.engine ->
  ?domains:int ->
  ?streaming:bool ->
  ?adaptive:bool ->
  ?feedback:Feedback.t ->
  ?row_budget:int ->
  ?timeout_ms:float ->
  ?partial:bool ->
  ?governor:Sparql.Governor.t ->
  ?stats:Rdf_store.Stats.t ->
  Rdf_store.Triple_store.t ->
  string ->
  report

(** [run_query] — same on an already-parsed query. *)
val run_query :
  ?mode:mode ->
  ?engine:Engine.Bgp_eval.engine ->
  ?domains:int ->
  ?streaming:bool ->
  ?adaptive:bool ->
  ?feedback:Feedback.t ->
  ?row_budget:int ->
  ?timeout_ms:float ->
  ?partial:bool ->
  ?governor:Sparql.Governor.t ->
  ?stats:Rdf_store.Stats.t ->
  Rdf_store.Triple_store.t ->
  Sparql.Ast.query ->
  report

(** [solutions report] decodes the result rows: each solution is an
    association list over the projected variables that are bound in the
    row. Empty list when the budget was exceeded. *)
val solutions : Rdf_store.Triple_store.t -> report -> (string * Rdf.Term.t) list list

(** [explain report] renders the BE-trees before and after transformation
    with timing, the store epoch, and plan-cache hit/miss provenance —
    the plan explainer used by the CLI and examples. *)
val explain : report -> string

(** {1 Query forms beyond SELECT} *)

(** [ask report] — for an ASK query, whether the pattern has any solution
    ([None] on a limit, or when the query is not an ASK). *)
val ask : report -> bool option

(** [construct store report] — the RDF graph produced by instantiating a
    CONSTRUCT template with every solution (deduplicated; template
    triples with unbound variables or invalid shapes are dropped).
    Empty for other query forms. *)
val construct : Rdf_store.Triple_store.t -> report -> Rdf.Triple.t list

(** [describe store report] — for a DESCRIBE query, every triple in which
    a described resource appears as subject or object. *)
val describe : Rdf_store.Triple_store.t -> report -> Rdf.Triple.t list

(** [count_bgp_of_query q] / [depth_of_query q] — the query-complexity
    metrics of Section 7.1, computed on the constructed BE-tree. *)
val count_bgp_of_query : Sparql.Ast.query -> int

val depth_of_query : Sparql.Ast.query -> int
