(** BGP-based evaluation of a BE-tree (Algorithm 1), optionally augmented
    with the candidate-pruning optimization of Section 6.

    Candidate pruning: whenever a UNION, OPTIONAL or nested group node is
    encountered, the variables bound in *every* row of the current result
    become candidate sets for the BGPs evaluated below; a BGP applies a
    candidate set only when it is smaller than a threshold — a fixed row
    count, or (adaptive mode) the engine's estimate of that BGP's own
    result size. *)

type threshold =
  | No_pruning
  | Fixed of int  (** CP mode: the paper uses 1% of the dataset size *)
  | Adaptive  (** Full mode: per-BGP estimated result size *)

type stats = {
  join_space : float;
      (** the JS metric of Section 7.1, computed from the materialized BGP
          result sizes *)
  peak_rows : int;  (** largest bag materialized during evaluation *)
  total_rows : int;  (** total intermediate rows materialized *)
  bgp_evals : int;
  pruned_bgps : int;  (** BGP evaluations that had a candidate set applied *)
  isect : Engine.Intersect.counters;
      (** multiway-intersection kernel activity during this evaluation
          (zero when the WCO engine took no vertex-at-a-time steps) *)
  stages : Sparql.Sink.stage list;
      (** per-stage rows-in/rows-out of the sink pipeline, in data-flow
          order; empty for materializing {!eval} *)
}

(** [eval env ~threshold tree] runs Algorithm 1 over [tree]. May raise
    [Sparql.Governor.Kill] if the ambient governor ticket is governed
    (budget, deadline, cancellation or a chaos fault). *)
val eval :
  Engine.Bgp_eval.t -> threshold:threshold -> Be_tree.group -> Sparql.Bag.t * stats

(** [eval_into env ~threshold ~sink tree] — streaming Algorithm 1: the
    tree's final operator emits rows into [sink] instead of materializing
    the result bag, so a LIMIT stage in [sink] early-terminates evaluation
    ([Sink.Stop] is caught here and reported as a normal completion). The
    sink is closed before returning. [stats.peak_rows] excludes the final
    operator's streamed output; [stats.join_space] is exact when the
    pipeline ran to completion and partial under an early Stop. May raise
    [Sparql.Governor.Kill]. *)
val eval_into :
  Engine.Bgp_eval.t ->
  threshold:threshold ->
  sink:Sparql.Sink.t ->
  Be_tree.group ->
  stats
