(** BGP-based evaluation of a BE-tree (Algorithm 1), optionally augmented
    with the candidate-pruning optimization of Section 6 and the adaptive
    execution layer built on top of it.

    Candidate pruning: whenever a UNION, OPTIONAL or nested group node is
    encountered, the variables bound in *every* row of the current result
    become candidate sets for the BGPs evaluated below; a BGP applies a
    candidate set only when it is smaller than a threshold — a fixed row
    count, or (adaptive mode) the engine's estimate of that BGP's own
    result size.

    Adaptive execution ([~adaptive:true]) adds, on top of Adaptive-mode
    pruning:
    - {e sideways bitset prefilters}: at each OPTIONAL/MINUS boundary the
      left side's universally-bound join columns are forced into the
      subtree as semijoin prefilters regardless of the threshold rule, so
      the branch never enumerates rows that cannot join;
    - {e observed-cardinality feedback}: each unpruned BGP's actual row
      count is recorded in the supplied {!Feedback.t}, and estimates
      (admission thresholds, cost-model pricing) consult it before the
      sampled estimate;
    - {e per-node engine selection}: each BGP runs on whichever of the
      wco / hash-probe engines its memoized plan prices cheaper, instead
      of the context's engine;
    - {e mid-query re-planning}: an estimate off by at least 10x marks
      the node replanned (its correction is already live for every later
      decision in the query), and an empty running result short-circuits
      the remaining children of its level.

    Each executed node's estimate, actual cardinality and engine are
    reported in [stats.nodes] for [explain]. *)

type threshold =
  | No_pruning
  | Fixed of int  (** CP mode: the paper uses 1% of the dataset size *)
  | Adaptive  (** Full mode: per-BGP estimated result size *)

type node_report = {
  label : string;  (** ["bgp{n}"], ["optional"], ["union{n}"], ... *)
  engine : string;
      (** ["wco"] / ["hash"]; ["lbr"] when a forced sideways prefilter was
          applied; ["skip"] when an empty left side short-circuited the
          node; ["-"] for non-BGP operators *)
  est_rows : float;  (** the (feedback-corrected) cost-model estimate *)
  actual_rows : int;
  replanned : bool;  (** estimate off by ≥ the re-plan factor (10x) *)
}

type stats = {
  join_space : float;
      (** the JS metric of Section 7.1, computed from the materialized BGP
          result sizes *)
  peak_rows : int;  (** largest bag materialized during evaluation *)
  total_rows : int;  (** total intermediate rows materialized *)
  bgp_evals : int;
  pruned_bgps : int;  (** BGP evaluations that had a candidate set applied *)
  isect : Engine.Intersect.counters;
      (** multiway-intersection kernel activity during this evaluation
          (zero when the WCO engine took no vertex-at-a-time steps) *)
  stages : Sparql.Sink.stage list;
      (** per-stage rows-in/rows-out of the sink pipeline, in data-flow
          order; empty for materializing {!eval} *)
  nodes : node_report list;
      (** executed BE-tree nodes in evaluation order (parallel UNION
          branches may interleave); empty unless adaptive *)
  replans : int;  (** nodes whose estimate was off by ≥ 10x *)
  prefilter : Engine.Candidates.counters;
      (** candidate membership tests / rejects during this evaluation
          (exact in serial runs, approximate under parallel domains) *)
}

(** [eval ?adaptive ?feedback env ~threshold tree] runs Algorithm 1 over
    [tree]. [adaptive] (default false) enables the adaptive execution
    layer described above; [feedback] is consulted for and updated with
    observed BGP cardinalities when supplied. May raise
    [Sparql.Governor.Kill] if the ambient governor ticket is governed
    (budget, deadline, cancellation or a chaos fault). *)
val eval :
  ?adaptive:bool ->
  ?feedback:Feedback.t ->
  Engine.Bgp_eval.t ->
  threshold:threshold ->
  Be_tree.group ->
  Sparql.Bag.t * stats

(** [eval_into ?adaptive ?feedback env ~threshold ~sink tree] — streaming
    Algorithm 1: the tree's final operator emits rows into [sink] instead
    of materializing the result bag, so a LIMIT stage in [sink]
    early-terminates evaluation ([Sink.Stop] is caught here and reported
    as a normal completion). The sink is closed before returning.
    [stats.peak_rows] excludes the final operator's streamed output;
    [stats.join_space] is exact when the pipeline ran to completion and
    partial under an early Stop. May raise [Sparql.Governor.Kill]. *)
val eval_into :
  ?adaptive:bool ->
  ?feedback:Feedback.t ->
  Engine.Bgp_eval.t ->
  threshold:threshold ->
  sink:Sparql.Sink.t ->
  Be_tree.group ->
  stats
