(* Observed-cardinality feedback for the Eq. 9 cost model: a mutable map
   from BGP (pattern list) to the row count actually produced the last
   time that BGP was evaluated without a candidate prefilter. Estimates
   corrected this way turn the cost model from a one-shot guess into a
   closed loop — re-executions of a plan start from observed, not
   sampled, cardinalities.

   Only unpruned observations are recorded: a candidate-pruned BGP's
   output depends on the prefilter of that particular execution, so
   feeding it back would corrupt the standalone |res(B)| estimate the
   admission rule and the engine chooser compare against.

   The table is shared across executions of one cached plan (the session
   keeps one per plan-cache entry) and may be read/written from parallel
   UNION branches, hence the mutex. *)

type t = {
  tbl : (Sparql.Triple_pattern.t list, float) Hashtbl.t;
  mutex : Mutex.t;
}

let create () = { tbl = Hashtbl.create 16; mutex = Mutex.create () }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Last observation wins: the store may have changed between executions,
   and the most recent run is the best predictor of the next. *)
let record t patterns ~rows =
  with_lock t (fun () ->
      Hashtbl.replace t.tbl patterns (float_of_int rows))

let find t patterns = with_lock t (fun () -> Hashtbl.find_opt t.tbl patterns)

let card t patterns ~default =
  match find t patterns with Some c -> c | None -> default

let length t = with_lock t (fun () -> Hashtbl.length t.tbl)

let clear t = with_lock t (fun () -> Hashtbl.reset t.tbl)
