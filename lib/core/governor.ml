(* The core-layer face of the governor subsystem. The ticket mechanics
   live in [Sparql.Governor] — the lowest layer, where row accounting
   happens and which the engine cannot depend on this library to reach —
   and are re-exported here so executor-level code and library users deal
   with one module ([Sparql_uo.Governor]) for tickets, failures, chaos
   schedules and cancellation. *)

include Sparql.Governor

(* Route the store layer's kill points (WAL record/marker/sync writes,
   snapshot save/rename) through the same ticket machinery: once the
   core library is linked, a chaos schedule can crash a commit mid-log
   exactly like it crashes a scan mid-morsel. The handler is one atomic
   load plus the armed-faults fast path when no schedule is live. *)
let () = Rdf_store.Failpoint.set_handler Sparql.Governor.failpoint
