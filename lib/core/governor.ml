(* The core-layer face of the governor subsystem. The ticket mechanics
   live in [Sparql.Governor] — the lowest layer, where row accounting
   happens and which the engine cannot depend on this library to reach —
   and are re-exported here so executor-level code and library users deal
   with one module ([Sparql_uo.Governor]) for tickets, failures, chaos
   schedules and cancellation. *)

include Sparql.Governor
