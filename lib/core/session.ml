(* A session owns the writer handle of an MVCC store lineage
   ({!Rdf_store.Mvcc}), a statistics memo, and a bounded LRU cache of
   prepared plans keyed by (query text, mode, engine).

   Every run pins ONE snapshot up front (an O(1) atomic acquire) and
   uses it for both cache validation and execution, so a concurrent
   commit cannot slide under a running query. A cached plan is valid
   for the pinned snapshot iff

     - it compiled against the same base epoch (compaction and bulk
       rebuild change it and invalidate wholesale), and
     - it compiled no constant to [Missing], or the dictionary has not
       grown since (growth could give the constant an id).

   Delta commits therefore do NOT invalidate unrelated cached plans:
   the plan is simply retargeted to the newer snapshot at execute time
   (dictionary ids are append-only, so compiled constants stay valid).
   This is what keeps the cache hit-rate high under a read/write mix —
   the whole point of the MVCC refactor. *)

type key = string * Prepared.mode * Engine.Bgp_eval.engine

(* Each cached plan owns its observed-cardinality cache: feedback
   recorded by one execution primes the estimates of every later
   execution of the same plan (the cross-execution half of the adaptive
   loop). It lives and dies with the entry — eviction, staleness or
   [invalidate] drop the observations along with the plan they
   describe. *)
type entry = {
  prepared : Prepared.t;
  feedback : Feedback.t;
  mutable last_used : int;
}

type t = {
  mvcc : Rdf_store.Mvcc.t;
  capacity : int;
  table : (key, entry) Hashtbl.t;
  (* A logical clock for LRU recency: bumped on every cache touch. *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  (* Statistics memo, keyed by the snapshot version they describe. *)
  mutable stats_memo : (int * Rdf_store.Stats.t) option;
  (* Governor tickets of runs currently in flight on this session, so
     [cancel] (from any domain) can reach them. Registered/unregistered
     under the mutex; [Fun.protect] guarantees a killed or crashed run
     still unregisters — no ticket is left armed. *)
  mutable active : Governor.t list;
  mutex : Mutex.t;
}

let of_mvcc ?(cache_capacity = 64) mvcc =
  if cache_capacity < 1 then
    invalid_arg "Session: cache_capacity must be positive";
  {
    mvcc;
    capacity = cache_capacity;
    table = Hashtbl.create (2 * cache_capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    stats_memo = None;
    active = [];
    mutex = Mutex.create ();
  }

let create ?cache_capacity ?compact_threshold store =
  of_mvcc ?cache_capacity (Rdf_store.Mvcc.create ?compact_threshold store)

(* A durable session: the lineage recovers from (and logs to) a WAL
   directory — see {!Rdf_store.Mvcc.open_dir}. *)
let open_dir ?cache_capacity ?compact_threshold ?policy ?init dir =
  let mvcc, recovery =
    Rdf_store.Mvcc.open_dir ?compact_threshold ?policy ?init dir
  in
  (of_mvcc ?cache_capacity mvcc, recovery)

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let mvcc t = t.mvcc

(* Snapshot acquisition is wait-free — no session mutex. *)
let snapshot t = Rdf_store.Mvcc.snapshot t.mvcc

let store t = Rdf_store.Snapshot.base (snapshot t)

let epoch t = Rdf_store.Snapshot.version (snapshot t)

let stats_for_locked t snap =
  let version = Rdf_store.Snapshot.version snap in
  match t.stats_memo with
  | Some (v, stats) when v = version -> stats
  | _ ->
      (* [Stats.of_snapshot] rides the per-base weak memo, so this
         recompute is the O(|delta|) adjustment, not a store scan. *)
      let stats = Rdf_store.Stats.of_snapshot snap in
      t.stats_memo <- Some (version, stats);
      stats

let stats t = with_lock t (fun () -> stats_for_locked t (snapshot t))

let invalidate_locked t =
  Hashtbl.reset t.table;
  t.stats_memo <- None

let invalidate t = with_lock t (fun () -> invalidate_locked t)

let set_store t store =
  with_lock t (fun () ->
      Rdf_store.Mvcc.set_base t.mvcc store;
      invalidate_locked t)

(* --- Transactions --------------------------------------------------------- *)

(* Writes live entirely in the MVCC layer; the session cache needs no
   notification. A commit publishes a new snapshot version (stats memo
   re-keys itself on next use), and cached plans re-validate per lookup
   — only a compaction's base-epoch change actually drops them. *)
let begin_txn t = Rdf_store.Mvcc.begin_txn t.mvcc

let commit (_t : t) txn = ignore (Rdf_store.Mvcc.commit txn)

let abort (_t : t) txn = Rdf_store.Mvcc.abort txn

let compact t = ignore (Rdf_store.Mvcc.compact t.mvcc)

let checkpoint t = ignore (Rdf_store.Mvcc.checkpoint t.mvcc)

let sync t = Rdf_store.Mvcc.sync t.mvcc

(* --- The plan cache ------------------------------------------------------- *)

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* Capacity is small and bounded, so a linear scan for the least
   recently used entry keeps the structure trivial. *)
let evict_lru_locked t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
  | None -> ()

(* Is a cached plan still meaningful under [snap]? See the module
   header: same base, and Missing-compiled constants only tolerate an
   unchanged dictionary. *)
let valid_for prepared snap =
  Prepared.base_epoch prepared = Rdf_store.Snapshot.base_epoch snap
  && ((not (Prepared.has_missing prepared))
      || Prepared.dict_size prepared = Rdf_store.Snapshot.dict_size snap)

(* [parse] defers text parsing to the miss path — the update path feeds
   an already-built AST under a synthetic key. *)
let prepare_locked t ~mode ~engine ~snap ~parse text =
  let key = (text, mode, engine) in
  let cached =
    match Hashtbl.find_opt t.table key with
    | Some entry when valid_for entry.prepared snap -> Some entry
    | Some _ ->
        (* Stale plan (compacted base, or Missing + dictionary growth):
           drop it eagerly so it does not occupy a cache slot waiting
           for LRU pressure. *)
        Hashtbl.remove t.table key;
        None
    | None -> None
  in
  match cached with
  | Some entry ->
      t.hits <- t.hits + 1;
      touch t entry;
      ( entry,
        { Prepared.hit = true; hits = t.hits; misses = t.misses } )
  | None ->
      t.misses <- t.misses + 1;
      let stats = stats_for_locked t snap in
      let prepared =
        Prepared.prepare_snapshot ~mode ~engine ~stats ~text snap (parse ())
      in
      if Hashtbl.length t.table >= t.capacity then evict_lru_locked t;
      (* Chaos site: a kill here (before the insert) must leave the cache
         exactly as it was — the next run re-prepares and inserts. *)
      Sparql.Governor.failpoint "cache.insert";
      let entry = { prepared; feedback = Feedback.create (); last_used = 0 } in
      touch t entry;
      Hashtbl.replace t.table key entry;
      ( entry,
        { Prepared.hit = false; hits = t.hits; misses = t.misses } )

let prepare ?(mode = Prepared.Full) ?(engine = Engine.Bgp_eval.Wco) t text =
  let snap = snapshot t in
  let entry, _ =
    with_lock t (fun () ->
        prepare_locked t ~mode ~engine ~snap
          ~parse:(fun () -> Sparql.Parser.parse text)
          text)
  in
  entry.prepared

(* The feedback cache attached to a cached plan, when one is cached —
   observability for tests and the bench harness (how many BGPs have
   observed cardinalities after a run). *)
let feedback ?(mode = Prepared.Full) ?(engine = Engine.Bgp_eval.Wco) t text =
  with_lock t (fun () ->
      Option.map
        (fun entry -> entry.feedback)
        (Hashtbl.find_opt t.table (text, mode, engine)))

(* --- Governed execution --------------------------------------------------- *)

let register t gov = with_lock t (fun () -> t.active <- gov :: t.active)

let unregister t gov =
  with_lock t (fun () ->
      t.active <- List.filter (fun g -> g != gov) t.active)

let active_runs t = with_lock t (fun () -> List.length t.active)

let cancel t =
  with_lock t (fun () ->
      List.iter Governor.cancel t.active;
      List.length t.active)

(* --- Retry backoff --------------------------------------------------------- *)

(* Decorrelated jitter (the "exp. backoff and jitter" scheme): each
   delay is drawn uniformly from [base, 3 * previous], capped — the
   expectation grows geometrically while concurrent retriers
   decorrelate instead of thundering back in lockstep. The RNG is an
   explicit seeded state, so a test injecting its own [sleep] observes
   a reproducible delay sequence. *)
type backoff = {
  base_ms : float;
  cap_ms : float;
  mutable prev_ms : float;
  rng : Random.State.t;
  sleep : float -> unit;
}

let backoff ?(base_ms = 1.0) ?(cap_ms = 50.0) ?(seed = 0x5bd1e995) ?sleep () =
  if base_ms <= 0. || cap_ms < base_ms then
    invalid_arg "Session.backoff: need 0 < base_ms <= cap_ms";
  let sleep =
    match sleep with
    | Some f -> f
    | None -> fun ms -> Unix.sleepf (ms /. 1000.)
  in
  { base_ms; cap_ms; prev_ms = base_ms; rng = Random.State.make [| seed |]; sleep }

let backoff_delay b =
  let hi = Float.max b.base_ms (3.0 *. b.prev_ms) in
  let d =
    Float.min b.cap_ms (b.base_ms +. Random.State.float b.rng (hi -. b.base_ms))
  in
  b.prev_ms <- d;
  d

(* One governed attempt: a single snapshot is pinned for validation AND
   execution, the ticket is ambient for the prepare phase too (so the
   cache.insert failpoint is reachable) and registered with the session
   for the whole attempt, so [cancel] can reach it. *)
let attempt ~mode ~engine ?domains ?streaming ?adaptive ?row_budget ?timeout_ms
    ?partial ~faults ~parse t text =
  let gov = Prepared.ticket ?row_budget ?timeout_ms ~faults () in
  register t gov;
  Fun.protect
    ~finally:(fun () -> unregister t gov)
    (fun () ->
      let snap = snapshot t in
      let entry, cache, stats =
        Governor.with_ticket gov (fun () ->
            with_lock t (fun () ->
                let entry, cache =
                  prepare_locked t ~mode ~engine ~snap ~parse text
                in
                (entry, cache, stats_for_locked t snap)))
      in
      Prepared.execute ?domains ?streaming ?adaptive ~feedback:entry.feedback
        ?partial ~governor:gov ~cache ~snapshot:snap ~stats entry.prepared)

let run_gen ~mode ~engine ?domains ?streaming ?adaptive ?row_budget ?timeout_ms
    ?partial ?(retries = 0) ?(faults = []) ?backoff:bo ~parse t text =
  (* Bounded retry with a fresh ticket per attempt. Only transient
     failures retry (a cancellation is the caller's intent and must
     stick). Fault values are shared by reference across attempts, so a
     one-shot injected fault stays spent and the retry runs clean — the
     recovery path the chaos suite exercises. A kill during the prepare
     phase (only injected faults can fire there) surfaces as
     [Governor.Kill] from the attempt and is retried the same way.

     Each retry waits a capped, decorrelated-jitter delay first —
     immediate re-runs of a timed-out or out-of-budget query mostly hit
     the same contention that killed them. The backoff state is lazy:
     a run that never retries never allocates (or seeds) it. *)
  let bo =
    lazy (match bo with Some b -> b | None -> backoff ())
  in
  let retry attempts_left =
    let b = Lazy.force bo in
    b.sleep (backoff_delay b);
    attempts_left - 1
  in
  let rec go attempts_left =
    let outcome =
      match
        attempt ~mode ~engine ?domains ?streaming ?adaptive ?row_budget
          ?timeout_ms ?partial ~faults ~parse t text
      with
      | report -> Ok report
      | exception Governor.Kill f -> Error f
    in
    match outcome with
    | Ok { Prepared.failure = Some f; _ }
      when attempts_left > 0 && Governor.transient f ->
        go (retry attempts_left)
    | Ok report -> report
    | Error f when attempts_left > 0 && Governor.transient f ->
        go (retry attempts_left)
    | Error f -> raise (Governor.Kill f)
  in
  go (max 0 retries)

let run ?(mode = Prepared.Full) ?(engine = Engine.Bgp_eval.Wco) ?domains
    ?streaming ?adaptive ?row_budget ?timeout_ms ?partial ?retries ?faults
    ?backoff t text =
  run_gen ~mode ~engine ?domains ?streaming ?adaptive ?row_budget ?timeout_ms
    ?partial ?retries ?faults ?backoff
    ~parse:(fun () -> Sparql.Parser.parse text)
    t text

(* The update path: run an already-built query AST through the same
   cache and governance under a synthetic key (see {!Update_exec}). *)
let run_query_ast ?(mode = Prepared.Full) ?(engine = Engine.Bgp_eval.Wco)
    ?domains ?streaming ?adaptive ?row_budget ?timeout_ms ?partial ?retries
    ?faults ?backoff t ~key query =
  run_gen ~mode ~engine ?domains ?streaming ?adaptive ?row_budget ?timeout_ms
    ?partial ?retries ?faults ?backoff
    ~parse:(fun () -> query)
    t key

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)
let cache_length t = with_lock t (fun () -> Hashtbl.length t.table)
let capacity t = t.capacity
