(* A session owns a store handle, the store's statistics (computed once
   per epoch), and a bounded LRU cache of prepared plans keyed by
   (query text, mode, engine). Entries are validated against the store's
   epoch on every lookup: a SPARQL Update swaps in a rebuilt store with a
   fresh epoch, and an eval-time dictionary write (VALUES interning a new
   term) bumps the epoch in place — either way the stale plan misses and
   is re-prepared against current data. *)

type key = string * Prepared.mode * Engine.Bgp_eval.engine

type entry = { prepared : Prepared.t; mutable last_used : int }

type t = {
  mutable store : Rdf_store.Triple_store.t;
  capacity : int;
  table : (key, entry) Hashtbl.t;
  (* A logical clock for LRU recency: bumped on every cache touch. *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  (* Statistics memo, keyed by the epoch they were computed under. *)
  mutable stats_memo : (int * Rdf_store.Stats.t) option;
  (* Governor tickets of runs currently in flight on this session, so
     [cancel] (from any domain) can reach them. Registered/unregistered
     under the mutex; [Fun.protect] guarantees a killed or crashed run
     still unregisters — no ticket is left armed. *)
  mutable active : Governor.t list;
  mutex : Mutex.t;
}

let create ?(cache_capacity = 64) store =
  if cache_capacity < 1 then
    invalid_arg "Session.create: cache_capacity must be positive";
  {
    store;
    capacity = cache_capacity;
    table = Hashtbl.create (2 * cache_capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    stats_memo = None;
    active = [];
    mutex = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let store t = with_lock t (fun () -> t.store)

let epoch t = Rdf_store.Triple_store.epoch (store t)

let stats_locked t =
  let epoch = Rdf_store.Triple_store.epoch t.store in
  match t.stats_memo with
  | Some (e, stats) when e = epoch -> stats
  | _ ->
      (* [Stats.cached] makes the epoch-level recompute free unless the
         store value itself was swapped (a real data change). *)
      let stats = Rdf_store.Stats.cached t.store in
      t.stats_memo <- Some (epoch, stats);
      stats

let stats t = with_lock t (fun () -> stats_locked t)

let invalidate_locked t =
  Hashtbl.reset t.table;
  t.stats_memo <- None

let invalidate t = with_lock t (fun () -> invalidate_locked t)

let set_store t store =
  with_lock t (fun () ->
      if store != t.store then begin
        t.store <- store;
        invalidate_locked t
      end)

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* Capacity is small and bounded, so a linear scan for the least
   recently used entry keeps the structure trivial. *)
let evict_lru_locked t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
  | None -> ()

let prepare_locked t ~mode ~engine text =
  let key = (text, mode, engine) in
  let epoch = Rdf_store.Triple_store.epoch t.store in
  let cached =
    match Hashtbl.find_opt t.table key with
    | Some entry when Prepared.epoch entry.prepared = epoch -> Some entry
    | Some _ ->
        (* Stale plan from an earlier epoch: drop it eagerly so it does
           not occupy a cache slot waiting for LRU pressure. *)
        Hashtbl.remove t.table key;
        None
    | None -> None
  in
  match cached with
  | Some entry ->
      t.hits <- t.hits + 1;
      touch t entry;
      (entry.prepared, { Prepared.hit = true; hits = t.hits; misses = t.misses })
  | None ->
      t.misses <- t.misses + 1;
      let stats = stats_locked t in
      let prepared =
        Prepared.prepare ~mode ~engine ~stats ~text t.store
          (Sparql.Parser.parse text)
      in
      if Hashtbl.length t.table >= t.capacity then evict_lru_locked t;
      (* Chaos site: a kill here (before the insert) must leave the cache
         exactly as it was — the next run re-prepares and inserts. *)
      Sparql.Governor.failpoint "cache.insert";
      let entry = { prepared; last_used = 0 } in
      touch t entry;
      Hashtbl.replace t.table key entry;
      (prepared, { Prepared.hit = false; hits = t.hits; misses = t.misses })

let prepare ?(mode = Prepared.Full) ?(engine = Engine.Bgp_eval.Wco) t text =
  fst (with_lock t (fun () -> prepare_locked t ~mode ~engine text))

(* --- Governed execution --------------------------------------------------- *)

let register t gov = with_lock t (fun () -> t.active <- gov :: t.active)

let unregister t gov =
  with_lock t (fun () ->
      t.active <- List.filter (fun g -> g != gov) t.active)

let active_runs t = with_lock t (fun () -> List.length t.active)

let cancel t =
  with_lock t (fun () ->
      List.iter Governor.cancel t.active;
      List.length t.active)

(* One governed attempt: the ticket is ambient for the prepare phase too
   (so the cache.insert failpoint is reachable) and registered with the
   session for the whole attempt, so [cancel] can reach it. *)
let attempt ~mode ~engine ?domains ?streaming ?row_budget ?timeout_ms ?partial
    ~faults t text =
  let gov = Prepared.ticket ?row_budget ?timeout_ms ~faults () in
  register t gov;
  Fun.protect
    ~finally:(fun () -> unregister t gov)
    (fun () ->
      let prepared, cache =
        Governor.with_ticket gov (fun () ->
            with_lock t (fun () -> prepare_locked t ~mode ~engine text))
      in
      Prepared.execute ?domains ?streaming ?partial ~governor:gov ~cache
        prepared)

let run ?(mode = Prepared.Full) ?(engine = Engine.Bgp_eval.Wco) ?domains
    ?streaming ?row_budget ?timeout_ms ?partial ?(retries = 0) ?(faults = [])
    t text =
  (* Bounded retry with a fresh ticket per attempt. Only transient
     failures retry (a cancellation is the caller's intent and must
     stick). Fault values are shared by reference across attempts, so a
     one-shot injected fault stays spent and the retry runs clean — the
     recovery path the chaos suite exercises. A kill during the prepare
     phase (only injected faults can fire there) surfaces as
     [Governor.Kill] from the attempt and is retried the same way. *)
  let rec go attempts_left =
    let outcome =
      match
        attempt ~mode ~engine ?domains ?streaming ?row_budget ?timeout_ms
          ?partial ~faults t text
      with
      | report -> Ok report
      | exception Governor.Kill f -> Error f
    in
    match outcome with
    | Ok { Prepared.failure = Some f; _ }
      when attempts_left > 0 && Governor.transient f ->
        go (attempts_left - 1)
    | Ok report -> report
    | Error f when attempts_left > 0 && Governor.transient f ->
        go (attempts_left - 1)
    | Error f -> raise (Governor.Kill f)
  in
  go (max 0 retries)

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)
let cache_length t = with_lock t (fun () -> Hashtbl.length t.table)
let capacity t = t.capacity
