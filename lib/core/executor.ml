(* The historical one-shot execution API, re-expressed on the
   prepare/execute split: [run_query] is [Prepared.prepare] immediately
   followed by [Prepared.execute]. Callers that execute a query more than
   once should hold a [Session] (plan cache + epoch invalidation) or a
   [Prepared.t] instead. *)

type mode = Prepared.mode = Base | TT | CP | Full

let mode_name = Prepared.mode_name
let all_modes = Prepared.all_modes

type failure = Prepared.failure =
  | Out_of_budget
  | Timeout
  | Cancelled
  | Injected_fault of string

let failure_name = Prepared.failure_name

type cache_info = Prepared.cache_info = {
  hit : bool;
  hits : int;
  misses : int;
}

type report = Prepared.report = {
  mode : mode;
  engine : Engine.Bgp_eval.engine;
  adaptive : bool;
  query : Sparql.Ast.query;
  vartable : Sparql.Vartable.t;
  projection : string list;
  bag : Sparql.Bag.t option;
  result_count : int option;
  failure : failure option;
  partial : failure option;
  pushed_rows : int;
  transform_ms : float;
  exec_ms : float;
  eval_stats : Evaluator.stats option;
  tree_before : Be_tree.group;
  tree_after : Be_tree.group;
  epoch : int;
  cache : cache_info option;
}

let run_query ?mode ?engine ?domains ?streaming ?adaptive ?feedback ?row_budget
    ?timeout_ms ?partial ?governor ?stats store (query : Sparql.Ast.query) =
  let prepared = Prepared.prepare ?mode ?engine ?stats store query in
  Prepared.execute ?domains ?streaming ?adaptive ?feedback ?row_budget
    ?timeout_ms ?partial ?governor prepared

let run ?mode ?engine ?domains ?streaming ?adaptive ?feedback ?row_budget
    ?timeout_ms ?partial ?governor ?stats store text =
  run_query ?mode ?engine ?domains ?streaming ?adaptive ?feedback ?row_budget
    ?timeout_ms ?partial ?governor ?stats store (Sparql.Parser.parse text)

let solutions store report =
  match report.bag with
  | None -> []
  | Some bag ->
      let cols =
        List.filter_map
          (fun v ->
            Option.map (fun col -> (v, col)) (Sparql.Vartable.find report.vartable v))
          report.projection
      in
      List.rev
        (Sparql.Bag.fold bag ~init:[] ~f:(fun acc row ->
             let solution =
               List.filter_map
                 (fun (v, col) ->
                   if Sparql.Binding.is_bound row col then
                     Some (v, Rdf_store.Triple_store.decode_term store row.(col))
                   else None)
                 cols
             in
             solution :: acc))

let explain report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "mode=%s engine=%s%s\n" (mode_name report.mode)
       (Engine.Bgp_eval.engine_name report.engine)
       (if report.adaptive then " adaptive" else ""));
  Buffer.add_string buf "-- BE-tree (as constructed) --\n";
  Buffer.add_string buf (Be_tree.to_string report.tree_before);
  Buffer.add_string buf "\n-- BE-tree (after transformation) --\n";
  Buffer.add_string buf (Be_tree.to_string report.tree_after);
  Buffer.add_string buf
    (Printf.sprintf "\ntransform: %.3f ms, execution: %.3f ms\n"
       report.transform_ms report.exec_ms);
  Buffer.add_string buf (Printf.sprintf "store epoch: %d\n" report.epoch);
  (match report.cache with
  | Some c ->
      Buffer.add_string buf
        (Printf.sprintf "plan cache: %s (session hits=%d misses=%d)\n"
           (if c.hit then "hit" else "miss")
           c.hits c.misses)
  | None ->
      Buffer.add_string buf "plan cache: bypassed (one-shot execution)\n");
  (match (report.result_count, report.failure) with
  | Some n, None -> Buffer.add_string buf (Printf.sprintf "results: %d rows\n" n)
  | Some n, Some f ->
      Buffer.add_string buf
        (Printf.sprintf "results: %d rows (partial: killed by %s)\n" n
           (failure_name f))
  | None, Some f ->
      Buffer.add_string buf
        (Printf.sprintf "results: none (killed by %s)\n" (failure_name f))
  | None, None -> Buffer.add_string buf "results: none\n");
  (match report.eval_stats with
  | Some stats ->
      Buffer.add_string buf
        (Printf.sprintf
           "join space: %.3g; peak rows: %d; total rows: %d; BGP evals: %d \
            (%d pruned)\n"
           stats.Evaluator.join_space stats.Evaluator.peak_rows
           stats.Evaluator.total_rows stats.Evaluator.bgp_evals
           stats.Evaluator.pruned_bgps);
      (let i = stats.Evaluator.isect in
       if i.Engine.Intersect.intersections > 0 then
         Buffer.add_string buf
           (Printf.sprintf
              "wco multiway: %d intersections over %d operands; passes: %d \
               gallop / %d merge; domain values: %d\n"
              i.Engine.Intersect.intersections i.Engine.Intersect.operands
              i.Engine.Intersect.gallop_passes i.Engine.Intersect.merge_passes
              i.Engine.Intersect.domain_values));
      (match stats.Evaluator.nodes with
      | [] -> ()
      | nodes ->
          Buffer.add_string buf
            "adaptive nodes (evaluation order):\n\
            \  node        engine  est rows  actual rows\n";
          List.iter
            (fun (n : Evaluator.node_report) ->
              Buffer.add_string buf
                (Printf.sprintf "  %-11s %-7s %9.3g  %11d%s\n" n.Evaluator.label
                   n.Evaluator.engine n.Evaluator.est_rows
                   n.Evaluator.actual_rows
                   (if n.Evaluator.replanned then "  [replanned: est off >=10x]"
                    else "")))
            nodes;
          let pf = stats.Evaluator.prefilter in
          Buffer.add_string buf
            (Printf.sprintf
               "re-plans: %d; prefilter membership tests: %d (%d rejected)\n"
               stats.Evaluator.replans pf.Engine.Candidates.checks
               pf.Engine.Candidates.rejects));
      (match stats.Evaluator.stages with
      | [] -> ()
      | stages ->
          Buffer.add_string buf "sink pipeline:";
          List.iter
            (fun (s : Sparql.Sink.stage) ->
              Buffer.add_string buf
                (Printf.sprintf " %s(in=%d out=%d)" s.Sparql.Sink.name
                   s.Sparql.Sink.rows_in s.Sparql.Sink.rows_out))
            stages;
          Buffer.add_string buf "\n")
  | None -> ());
  Buffer.contents buf

let count_bgp_of_query q = Be_tree.count_bgp (Be_tree.of_query q)

let depth_of_query q = Be_tree.depth (Be_tree.of_query q)

(* --- Query forms beyond SELECT ----------------------------------------- *)

let ask report =
  match report.query.Sparql.Ast.form with
  | Sparql.Ast.Ask -> Option.map (fun n -> n > 0) report.result_count
  | _ -> None

(* Instantiate the CONSTRUCT template against each solution; triples with
   an unbound variable or an invalid shape (literal subject etc.) are
   dropped, per the SPARQL spec. Duplicates are removed (graphs are
   sets). *)
let construct store report =
  match (report.query.Sparql.Ast.form, report.bag) with
  | Sparql.Ast.Construct template, Some bag ->
      let resolve row node =
        match node with
        | Sparql.Triple_pattern.Term t -> Some t
        | Sparql.Triple_pattern.Var v -> (
            match Sparql.Vartable.find report.vartable v with
            | Some col when Sparql.Binding.is_bound row col ->
                Some (Rdf_store.Triple_store.decode_term store row.(col))
            | _ -> None)
      in
      let acc = ref [] in
      Sparql.Bag.iter bag ~f:(fun row ->
          List.iter
            (fun (tp : Sparql.Triple_pattern.t) ->
              match (resolve row tp.s, resolve row tp.p, resolve row tp.o) with
              | Some s, Some p, Some o ->
                  let triple = Rdf.Triple.make s p o in
                  if Rdf.Triple.is_valid triple then acc := triple :: !acc
              | _ -> ())
            template);
      List.sort_uniq Rdf.Triple.compare !acc
  | _ -> []

(* DESCRIBE: every triple in which a target resource appears as subject
   or object. *)
let describe store report =
  match report.query.Sparql.Ast.form with
  | Sparql.Ast.Describe targets ->
      let ids = Hashtbl.create 16 in
      List.iter
        (fun target ->
          match target with
          | Sparql.Ast.Dterm t -> (
              match Rdf_store.Triple_store.encode_term store t with
              | Some id -> Hashtbl.replace ids id ()
              | None -> ())
          | Sparql.Ast.Dvar v -> (
              match (report.bag, Sparql.Vartable.find report.vartable v) with
              | Some bag, Some col ->
                  Sparql.Bag.iter bag ~f:(fun row ->
                      if Sparql.Binding.is_bound row col then
                        Hashtbl.replace ids row.(col) ())
              | _ -> ()))
        targets;
      let acc = ref [] in
      Hashtbl.iter
        (fun id () ->
          let collect ~s ~p ~o =
            acc :=
              Rdf.Triple.make
                (Rdf_store.Triple_store.decode_term store s)
                (Rdf_store.Triple_store.decode_term store p)
                (Rdf_store.Triple_store.decode_term store o)
              :: !acc
          in
          Rdf_store.Triple_store.iter store ~s:id ~f:collect ();
          Rdf_store.Triple_store.iter store ~o:id ~f:collect ())
        ids;
      List.sort_uniq Rdf.Triple.compare !acc
  | _ -> []
