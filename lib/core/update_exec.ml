(* Current triples of a store, decoded. *)
let all_triples store =
  let acc = ref [] in
  Rdf_store.Triple_store.iter_all store ~f:(fun ~s ~p ~o ->
      acc :=
        Rdf.Triple.make
          (Rdf_store.Triple_store.decode_term store s)
          (Rdf_store.Triple_store.decode_term store p)
          (Rdf_store.Triple_store.decode_term store o)
        :: !acc);
  !acc

(* Instantiate a template triple pattern against one solution row;
   [None] when non-ground or invalid. *)
let instantiate ~decode vartable row (tp : Sparql.Triple_pattern.t) =
  let resolve = function
    | Sparql.Triple_pattern.Term t -> Some t
    | Sparql.Triple_pattern.Var v -> (
        match Sparql.Vartable.find vartable v with
        | Some col when Sparql.Binding.is_bound row col ->
            Some (decode row.(col))
        | _ -> None)
  in
  match (resolve tp.s, resolve tp.p, resolve tp.o) with
  | Some s, Some p, Some o ->
      let triple = Rdf.Triple.make s p o in
      if Rdf.Triple.is_valid triple then Some triple else None
  | _ -> None

let where_query (where : Sparql.Ast.group) =
  {
    Sparql.Ast.env = Rdf.Namespace.with_defaults ();
    form = Sparql.Ast.Select Sparql.Ast.Star;
    distinct = false;
    where;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
    offset = None;
  }

let instantiate_bag ~decode vartable bag templates =
  Sparql.Bag.fold bag ~init:[] ~f:(fun acc row ->
      List.fold_left
        (fun acc tp ->
          match instantiate ~decode vartable row tp with
          | Some triple -> triple :: acc
          | None -> acc)
        acc templates)

(* Every solution of [where], instantiated against [templates]. *)
let instantiations ?engine store (where : Sparql.Ast.group) templates =
  let report = Executor.run_query ?engine store (where_query where) in
  match report.Executor.bag with
  | None -> []
  | Some bag ->
      let decode = Rdf_store.Triple_store.decode_term store in
      instantiate_bag ~decode report.Executor.vartable bag templates

(* All triple patterns of a group, recursively — DELETE WHERE treats the
   whole pattern as its template. *)
let rec group_patterns (g : Sparql.Ast.group) =
  List.concat_map
    (function
      | Sparql.Ast.Triples tps -> tps
      | Sparql.Ast.Group inner | Sparql.Ast.Optional inner
      | Sparql.Ast.Minus inner ->
          group_patterns inner
      | Sparql.Ast.Union gs -> List.concat_map group_patterns gs
      | Sparql.Ast.Filter _ | Sparql.Ast.Values _ -> [])
    g

let rebuild_with store ~removed ~added =
  let remaining =
    List.filter
      (fun t -> not (List.exists (Rdf.Triple.equal t) removed))
      (all_triples store)
  in
  Rdf_store.Triple_store.of_triples (List.rev_append added remaining)

let apply ?engine store (update : Sparql.Ast.update) =
  match update with
  | Sparql.Ast.Insert_data triples ->
      rebuild_with store ~removed:[] ~added:triples
  | Sparql.Ast.Delete_data triples ->
      rebuild_with store ~removed:triples ~added:[]
  | Sparql.Ast.Delete_where where ->
      let removed = instantiations ?engine store where (group_patterns where) in
      rebuild_with store ~removed ~added:[]
  | Sparql.Ast.Modify { delete; insert; where } ->
      let removed = instantiations ?engine store where delete in
      let added = instantiations ?engine store where insert in
      rebuild_with store ~removed ~added

let apply_all ?engine store updates =
  List.fold_left (fun store update -> apply ?engine store update) store updates

let run ?engine store text =
  apply_all ?engine store (Sparql.Parser.parse_update text)

(* --- Session-threaded updates ------------------------------------------- *)

(* WHERE clauses of session updates run through the session plan cache
   under a synthetic key derived from the group's structure (the AST is
   pure data, so a Marshal digest is a sound structural fingerprint).
   Repeated updates with the same WHERE shape — the common serving
   pattern — therefore hit the cache instead of re-planning. *)
let where_key (where : Sparql.Ast.group) =
  "update-where:" ^ Digest.to_hex (Digest.string (Marshal.to_string where []))

(* Evaluate [where] once; instantiate any number of template lists from
   the same solution set (a Modify needs both its DELETE and INSERT
   templates against one evaluation). *)
let solutions_session ?engine session where =
  let report =
    Session.run_query_ast ?engine session ~key:(where_key where)
      (where_query where)
  in
  match report.Prepared.bag with
  | None -> fun _templates -> []
  | Some bag ->
      let snap = Session.snapshot session in
      let decode = Rdf_store.Snapshot.decode_term snap in
      fun templates ->
        instantiate_bag ~decode report.Prepared.vartable bag templates

(* One update operation = one transaction: the WHERE clause (if any) is
   evaluated against the pre-update snapshot, both DELETE and INSERT
   templates against that same evaluation (SPARQL Update semantics),
   and the buffered writes publish atomically on commit. Deletes fold
   before inserts, so a Modify that removes and re-adds a triple keeps
   it. On a durable session the commit is write-ahead logged, so the
   operation is all-or-nothing across crashes too. *)
let apply_session ?engine session (update : Sparql.Ast.update) =
  let in_txn f =
    let txn = Session.begin_txn session in
    match f txn with
    | () -> Session.commit session txn
    | exception e ->
        Session.abort session txn;
        raise e
  in
  match update with
  | Sparql.Ast.Insert_data triples ->
      in_txn (fun txn -> List.iter (Rdf_store.Mvcc.insert txn) triples)
  | Sparql.Ast.Delete_data triples ->
      in_txn (fun txn -> List.iter (Rdf_store.Mvcc.delete txn) triples)
  | Sparql.Ast.Delete_where where ->
      let removed = solutions_session ?engine session where (group_patterns where) in
      in_txn (fun txn -> List.iter (Rdf_store.Mvcc.delete txn) removed)
  | Sparql.Ast.Modify { delete; insert; where } ->
      let instantiate = solutions_session ?engine session where in
      let removed = instantiate delete in
      let added = instantiate insert in
      in_txn (fun txn ->
          List.iter (Rdf_store.Mvcc.delete txn) removed;
          List.iter (Rdf_store.Mvcc.insert txn) added)

let run_session ?engine session text =
  List.iter (apply_session ?engine session) (Sparql.Parser.parse_update text)
