(* Current triples of a store, decoded. *)
let all_triples store =
  let acc = ref [] in
  Rdf_store.Triple_store.iter_all store ~f:(fun ~s ~p ~o ->
      acc :=
        Rdf.Triple.make
          (Rdf_store.Triple_store.decode_term store s)
          (Rdf_store.Triple_store.decode_term store p)
          (Rdf_store.Triple_store.decode_term store o)
        :: !acc);
  !acc

(* Instantiate a template triple pattern against one solution row;
   [None] when non-ground or invalid. *)
let instantiate store vartable row (tp : Sparql.Triple_pattern.t) =
  let resolve = function
    | Sparql.Triple_pattern.Term t -> Some t
    | Sparql.Triple_pattern.Var v -> (
        match Sparql.Vartable.find vartable v with
        | Some col when Sparql.Binding.is_bound row col ->
            Some (Rdf_store.Triple_store.decode_term store row.(col))
        | _ -> None)
  in
  match (resolve tp.s, resolve tp.p, resolve tp.o) with
  | Some s, Some p, Some o ->
      let triple = Rdf.Triple.make s p o in
      if Rdf.Triple.is_valid triple then Some triple else None
  | _ -> None

(* Every solution of [where], instantiated against [templates]. *)
let instantiations ?engine store (where : Sparql.Ast.group) templates =
  let query =
    {
      Sparql.Ast.env = Rdf.Namespace.with_defaults ();
      form = Sparql.Ast.Select Sparql.Ast.Star;
      distinct = false;
      where;
      group_by = [];
      having = None;
      order_by = [];
      limit = None;
      offset = None;
    }
  in
  let report = Executor.run_query ?engine store query in
  match report.Executor.bag with
  | None -> []
  | Some bag ->
      Sparql.Bag.fold bag ~init:[] ~f:(fun acc row ->
          List.fold_left
            (fun acc tp ->
              match instantiate store report.Executor.vartable row tp with
              | Some triple -> triple :: acc
              | None -> acc)
            acc templates)

(* All triple patterns of a group, recursively — DELETE WHERE treats the
   whole pattern as its template. *)
let rec group_patterns (g : Sparql.Ast.group) =
  List.concat_map
    (function
      | Sparql.Ast.Triples tps -> tps
      | Sparql.Ast.Group inner | Sparql.Ast.Optional inner
      | Sparql.Ast.Minus inner ->
          group_patterns inner
      | Sparql.Ast.Union gs -> List.concat_map group_patterns gs
      | Sparql.Ast.Filter _ | Sparql.Ast.Values _ -> [])
    g

let rebuild_with store ~removed ~added =
  let remaining =
    List.filter
      (fun t -> not (List.exists (Rdf.Triple.equal t) removed))
      (all_triples store)
  in
  Rdf_store.Triple_store.of_triples (List.rev_append added remaining)

let apply ?engine store (update : Sparql.Ast.update) =
  match update with
  | Sparql.Ast.Insert_data triples ->
      rebuild_with store ~removed:[] ~added:triples
  | Sparql.Ast.Delete_data triples ->
      rebuild_with store ~removed:triples ~added:[]
  | Sparql.Ast.Delete_where where ->
      let removed = instantiations ?engine store where (group_patterns where) in
      rebuild_with store ~removed ~added:[]
  | Sparql.Ast.Modify { delete; insert; where } ->
      let removed = instantiations ?engine store where delete in
      let added = instantiations ?engine store where insert in
      rebuild_with store ~removed ~added

let apply_all ?engine store updates =
  List.fold_left (fun store update -> apply ?engine store update) store updates

let run ?engine store text =
  apply_all ?engine store (Sparql.Parser.parse_update text)

(* Session-threaded updates: each operation evaluates its WHERE clause
   against the session's current store and swaps in the rebuilt one. The
   rebuilt store carries a fresh epoch, so every plan the session cached
   before the update is invalidated on its next lookup. *)
let apply_session ?engine session update =
  Session.set_store session (apply ?engine (Session.store session) update)

let run_session ?engine session text =
  List.iter (apply_session ?engine session) (Sparql.Parser.parse_update text)
