let log_src = Logs.Src.create "sparql_uo.prepared" ~doc:"SPARQL-UO prepared execution"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Base | TT | CP | Full

let mode_name = function Base -> "base" | TT -> "TT" | CP -> "CP" | Full -> "full"

let all_modes = [ Base; TT; CP; Full ]

type failure = Sparql.Governor.failure =
  | Out_of_budget
  | Timeout
  | Cancelled
  | Injected_fault of string

let failure_name = Sparql.Governor.failure_name

type cache_info = { hit : bool; hits : int; misses : int }

type report = {
  mode : mode;
  engine : Engine.Bgp_eval.engine;
  adaptive : bool;
  query : Sparql.Ast.query;
  vartable : Sparql.Vartable.t;
  projection : string list;
  bag : Sparql.Bag.t option;
  result_count : int option;
  failure : failure option;
  partial : failure option;
  pushed_rows : int;
  transform_ms : float;
  exec_ms : float;
  eval_stats : Evaluator.stats option;
  tree_before : Be_tree.group;
  tree_after : Be_tree.group;
  epoch : int;
  cache : cache_info option;
}

type t = {
  text : string option;
  p_query : Sparql.Ast.query;
  p_vartable : Sparql.Vartable.t;
  p_projection : string list;
  p_mode : mode;
  p_engine : Engine.Bgp_eval.engine;
  p_tree_before : Be_tree.group;
  p_tree_after : Be_tree.group;
  p_transform_ms : float;
  (* The evaluation context carries the memoized BGP plans (compiled
     patterns + cost estimates), so re-executions skip compilation. *)
  env : Engine.Bgp_eval.t;
  p_epoch : int;
  (* Invalidation inputs for the session plan cache: the base epoch the
     plan compiled against (a compaction or bulk rebuild changes it and
     invalidates wholesale), the dictionary size at compile time, and
     whether any pattern compiled a constant to [Missing] — the only
     plans whose meaning dictionary growth can change. *)
  p_base_epoch : int;
  p_dict_size : int;
  p_has_missing : bool;
}

let query p = p.p_query
let vartable p = p.p_vartable
let projection p = p.p_projection
let mode p = p.p_mode
let engine p = p.p_engine
let tree_before p = p.p_tree_before
let tree_after p = p.p_tree_after
let transform_ms p = p.p_transform_ms
let epoch p = p.p_epoch
let base_epoch p = p.p_base_epoch
let dict_size p = p.p_dict_size
let has_missing p = p.p_has_missing
let snapshot p = Engine.Bgp_eval.store p.env
let store p = Rdf_store.Snapshot.base (Engine.Bgp_eval.store p.env)
let text p = p.text

let now_ms () = Unix.gettimeofday () *. 1000.

(* The paper's CP threshold: 1% of the number of triples. *)
let fixed_threshold store =
  max 1 (Rdf_store.Snapshot.size store / 100)

(* --- Aggregation (GROUP BY / COUNT / SUM / ...) -------------------------- *)

let numeric_of_term = function
  | Rdf.Term.Literal { value; kind = Rdf.Term.Typed dt }
    when dt = Rdf.Term.xsd_integer || dt = Rdf.Term.xsd_double ->
      float_of_string_opt value
  | _ -> None

let number_term f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Rdf.Term.int_literal (int_of_float f)
  else Rdf.Term.typed_literal (string_of_float f) ~datatype:Rdf.Term.xsd_double

(* One aggregate over a group, computed from the bound target-column ids
   ([ids], in the same fold order the grouping pass produces: reverse
   arrival) and the group's total row count; [None] = unbound result
   (e.g. SUM over non-numeric values, or MIN of an empty group). Shared
   by the materialized grouping pass and the streaming ungrouped sink, so
   the two paths agree bit-for-bit (float summation order included). *)
let compute_aggregate_ids store ~agg ~distinct ~target ~row_count ids =
  let maybe_distinct ids =
    if distinct then List.sort_uniq Int.compare ids else ids
  in
  match agg with
  | Sparql.Ast.Count ->
      let n =
        match target with
        | None -> row_count
        | Some _ -> List.length (maybe_distinct ids)
      in
      Some (Rdf.Term.int_literal n)
  | Sparql.Ast.Sample -> (
      match ids with
      | id :: _ -> Some (Rdf_store.Snapshot.decode_term store id)
      | [] -> None)
  | Sparql.Ast.Min | Sparql.Ast.Max -> (
      let terms =
        List.map (Rdf_store.Snapshot.decode_term store) (maybe_distinct ids)
      in
      let cmp t1 t2 =
        match (numeric_of_term t1, numeric_of_term t2) with
        | Some f1, Some f2 -> Float.compare f1 f2
        | _ -> Rdf.Term.compare t1 t2
      in
      let pick best t =
        match agg with
        | Sparql.Ast.Min -> if cmp t best < 0 then t else best
        | _ -> if cmp t best > 0 then t else best
      in
      match terms with
      | [] -> None
      | first :: rest -> Some (List.fold_left pick first rest))
  | Sparql.Ast.Sum | Sparql.Ast.Avg -> (
      let ids = maybe_distinct ids in
      let numbers =
        List.map
          (fun id ->
            numeric_of_term (Rdf_store.Snapshot.decode_term store id))
          ids
      in
      if List.exists Option.is_none numbers then None
      else
        let floats = List.map Option.get numbers in
        let total = List.fold_left ( +. ) 0. floats in
        match agg with
        | Sparql.Ast.Sum -> Some (number_term total)
        | _ ->
            if floats = [] then None
            else Some (number_term (total /. float_of_int (List.length floats))))

let target_col vartable target =
  Option.bind target (Sparql.Vartable.find vartable)

let compute_aggregate store vartable rows ~agg ~distinct ~target =
  let ids =
    match target_col vartable target with
    | None -> []
    | Some col ->
        List.filter_map
          (fun row ->
            if Sparql.Binding.is_bound row col then Some row.(col) else None)
          rows
  in
  compute_aggregate_ids store ~agg ~distinct ~target
    ~row_count:(List.length rows) ids

(* Partition [bag] by the GROUP BY columns and emit one row per group:
   the keys plus one column per aggregate alias. *)
let aggregate_bag store vartable (query : Sparql.Ast.query) items bag =
  let width = Sparql.Bag.width bag in
  let key_cols =
    List.filter_map (Sparql.Vartable.find vartable) query.Sparql.Ast.group_by
  in
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  Sparql.Bag.iter bag ~f:(fun row ->
      let key = List.map (fun col -> row.(col)) key_cols in
      match Hashtbl.find_opt groups key with
      | Some rows -> rows := row :: !rows
      | None ->
          Hashtbl.add groups key (ref [ row ]);
          order := key :: !order);
  (* A grouped query with no matching rows yields no groups — except the
     no-key case, where aggregates over the empty bag still produce one
     row (e.g. a COUNT over nothing is 0). *)
  let keys =
    match (List.rev !order, key_cols) with
    | [], [] ->
        Hashtbl.add groups [] (ref []);
        [ [] ]
    | keys, _ -> keys
  in
  let dict = Rdf_store.Snapshot.dictionary store in
  let result = Sparql.Bag.create ~width in
  List.iter
    (fun key ->
      let rows = !(Hashtbl.find groups key) in
      let fresh = Sparql.Binding.create ~width in
      List.iter2 (fun col v -> fresh.(col) <- v) key_cols key;
      List.iter
        (fun item ->
          match item with
          | Sparql.Ast.Svar _ -> ()
          | Sparql.Ast.Aggregate { agg; distinct; target; alias } -> (
              match compute_aggregate store vartable rows ~agg ~distinct ~target with
              | Some term -> (
                  match Sparql.Vartable.find vartable alias with
                  | Some col ->
                      fresh.(col) <- Rdf_store.Dictionary.encode dict term
                  | None -> ())
              | None -> ()))
        items;
      Sparql.Bag.push result fresh)
    keys;
  result

(* --- Solution modifiers (ORDER BY, projection, DISTINCT, LIMIT/OFFSET) -- *)

let order_keys vartable (query : Sparql.Ast.query) =
  List.filter_map
    (fun (v, descending) ->
      Option.map
        (fun col -> (col, descending))
        (Sparql.Vartable.find vartable v))
    query.Sparql.Ast.order_by

let compare_ids store id1 id2 =
  Rdf.Term.compare
    (Rdf_store.Snapshot.decode_term store id1)
    (Rdf_store.Snapshot.decode_term store id2)

(* [None] = SELECT * (no projection). *)
let projection_cols vartable (query : Sparql.Ast.query) =
  match Sparql.Ast.select_query query with
  | Sparql.Ast.Star -> None
  | Sparql.Ast.Projection vs ->
      Some (List.filter_map (Sparql.Vartable.find vartable) vs)
  | Sparql.Ast.Aggregated items ->
      Some
        (List.filter_map
           (fun item ->
             let v =
               match item with
               | Sparql.Ast.Svar v -> v
               | Sparql.Ast.Aggregate { alias; _ } -> alias
             in
             Sparql.Vartable.find vartable v)
           items)

(* The historical bag-at-a-time modifier pipeline, kept as the
   [~streaming:false] reference: ORDER BY, projection, DISTINCT,
   LIMIT/OFFSET — each over a fully materialized bag. *)
let apply_modifiers_materialized store vartable (query : Sparql.Ast.query) bag =
  let bag =
    match order_keys vartable query with
    | [] -> bag
    | keys -> Sparql.Bag.sort bag ~keys ~compare_ids:(compare_ids store)
  in
  let bag =
    match projection_cols vartable query with
    | None -> bag
    | Some cols -> Sparql.Bag.project bag ~cols
  in
  let bag = if query.distinct then Sparql.Bag.dedup bag else bag in
  match (query.limit, query.offset) with
  | None, None -> bag
  | limit, offset ->
      let offset = Option.value offset ~default:0 in
      let keep =
        match limit with
        | Some n -> fun i -> i >= offset && i < offset + n
        | None -> fun i -> i >= offset
      in
      let sliced = Sparql.Bag.create ~width:(Sparql.Bag.width bag) in
      let i = ref 0 in
      Sparql.Bag.iter bag ~f:(fun row ->
          if keep !i then Sparql.Bag.push sliced row;
          incr i);
      sliced

(* The same modifiers as a sink pipeline, built terminal-first so rows
   flow sort -> project -> distinct -> offset/limit -> [out] (the
   materializing order above). LIMIT without ORDER BY raises [Sink.Stop]
   upstream as soon as it is satisfied; ORDER BY + LIMIT keeps only
   offset+limit rows in a bounded top-k heap — unless a DISTINCT sits
   between the sort and the slice, where dropping duplicates could promote
   rows past the k-th and the full buffering sort is required. *)
let modifier_sink store vartable (query : Sparql.Ast.query) ~width ~out =
  let sink = Sparql.Bag.sink out in
  let sink =
    match (query.Sparql.Ast.limit, query.Sparql.Ast.offset) with
    | None, None -> sink
    | limit, offset ->
        Sparql.Sink.offset_limit ?limit
          ~offset:(Option.value offset ~default:0)
          sink
  in
  let sink = if query.distinct then Sparql.Sink.distinct sink else sink in
  let sink =
    match projection_cols vartable query with
    | None -> sink
    | Some cols -> Sparql.Sink.project ~width ~cols sink
  in
  match order_keys vartable query with
  | [] -> sink
  | keys -> (
      let compare =
        Sparql.Bag.row_compare ~keys ~compare_ids:(compare_ids store)
      in
      match query.Sparql.Ast.limit with
      | Some n when not query.distinct ->
          Sparql.Sink.top_k ~compare
            ~k:(Option.value query.Sparql.Ast.offset ~default:0 + n)
            sink
      | _ -> Sparql.Sink.sort_all ~compare sink)

(* The streaming ungrouped-aggregate sink: a SELECT COUNT / SUM / ...
   without GROUP BY does not need the full result materialized — the
   stage folds each streamed row into per-aggregate accumulators (a row
   counter, plus one id list per targeted aggregate) and emits the single
   aggregate row downstream at close. Accumulated ids are prepended, so
   at flush they sit in reverse arrival order — exactly the fold order
   [aggregate_bag] produces — and both paths share
   [compute_aggregate_ids], making streaming ≡ materialized by
   construction. *)
let aggregate_sink store vartable ~width items inner =
  let count = ref 0 in
  let cells =
    List.filter_map
      (function
        | Sparql.Ast.Aggregate { agg; distinct; target; alias } ->
            Some (agg, distinct, target, alias, target_col vartable target, ref [])
        | Sparql.Ast.Svar _ -> None)
      items
  in
  let push row =
    incr count;
    List.iter
      (fun (_, _, _, _, col, ids) ->
        match col with
        | Some col when Sparql.Binding.is_bound row col ->
            ids := row.(col) :: !ids
        | _ -> ())
      cells
  in
  let dict = Rdf_store.Snapshot.dictionary store in
  let flush emit =
    let fresh = Sparql.Binding.create ~width in
    List.iter
      (fun (agg, distinct, target, alias, _, ids) ->
        match
          compute_aggregate_ids store ~agg ~distinct ~target ~row_count:!count
            !ids
        with
        | Some term -> (
            match Sparql.Vartable.find vartable alias with
            | Some col -> fresh.(col) <- Rdf_store.Dictionary.encode dict term
            | None -> ())
        | None -> ())
      cells;
    emit fresh
  in
  Sparql.Sink.aggregate ~name:"aggregate" ~push ~flush inner

(* --- The prepare phase --------------------------------------------------- *)

(* Force plan construction (pattern compilation against the dictionary,
   cost estimation) for every BGP of the transformed tree, so the first
   [execute] pays nothing the second does not. The plans land in the
   env's memoized plan table. [missing] records whether any pattern
   compiled a constant to [Missing] — the session cache re-validates
   such plans against dictionary growth. *)
let precompile env tree =
  let missing = ref false in
  let rec go (g : Be_tree.group) =
    List.iter
      (fun node ->
        match node with
        | Be_tree.Bgp [] | Be_tree.Values _ -> ()
        | Be_tree.Bgp patterns ->
            let plan = Engine.Bgp_eval.plan env patterns in
            if
              List.exists
                (fun st -> Engine.Compiled.has_missing st.Engine.Planner.pattern)
                plan.Engine.Planner.steps
            then missing := true
        | Be_tree.Group inner | Be_tree.Optional inner | Be_tree.Minus inner ->
            go inner
        | Be_tree.Union gs -> List.iter go gs)
      g.children
  in
  go tree;
  !missing

let prepare_snapshot ?(mode = Full) ?(engine = Engine.Bgp_eval.Wco) ?stats
    ?text snap (query : Sparql.Ast.query) =
  (* Register every query variable up front so bag widths are stable —
     including aggregate aliases, which get fresh columns. *)
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars query.where) in
  (match query.form with
  | Sparql.Ast.Select (Sparql.Ast.Aggregated items) ->
      List.iter
        (function
          | Sparql.Ast.Aggregate { alias; _ } ->
              ignore (Sparql.Vartable.id vartable alias)
          | Sparql.Ast.Svar _ -> ())
        items
  | _ -> ());
  let env = Engine.Bgp_eval.make_snapshot ?stats snap vartable engine in
  let tree_before = Be_tree.of_query query in
  let tree_after, transform_ms =
    match mode with
    | Base | CP -> (tree_before, 0.)
    | TT -> Transform.timed_multi_level env tree_before
    | Full -> Transform.timed_multi_level env ~skip_cp_equivalent:true tree_before
  in
  let has_missing = precompile env tree_after in
  {
    text;
    p_query = query;
    p_vartable = vartable;
    p_projection = Sparql.Ast.query_vars query;
    p_mode = mode;
    p_engine = engine;
    p_tree_before = tree_before;
    p_tree_after = tree_after;
    p_transform_ms = transform_ms;
    env;
    p_epoch = Rdf_store.Snapshot.version snap;
    p_base_epoch = Rdf_store.Snapshot.base_epoch snap;
    (* Read after compilation: compilation itself interns nothing, and a
       concurrent VALUES interning between compile and this read only
       makes the recorded size larger — erring toward invalidation. *)
    p_dict_size = Rdf_store.Snapshot.dict_size snap;
    p_has_missing = has_missing;
  }

let prepare ?mode ?engine ?stats ?text store query =
  prepare_snapshot ?mode ?engine ?stats ?text
    (Rdf_store.Snapshot.of_store store)
    query

(* --- The execute phase --------------------------------------------------- *)

(* Build a fresh governor ticket from the execution knobs. *)
let ticket ?row_budget ?timeout_ms ?faults () =
  let deadline =
    Option.map
      (fun ms -> (Unix.gettimeofday () +. (ms /. 1000.), Unix.gettimeofday))
      timeout_ms
  in
  Sparql.Governor.create ?row_budget ?deadline ?faults ()

let execute ?(domains = 1) ?(streaming = true) ?(adaptive = true) ?feedback
    ?row_budget ?timeout_ms ?(partial = false) ?governor ?cache ?snapshot
    ?stats p =
  let query = p.p_query in
  let vartable = p.p_vartable in
  let env = Engine.Bgp_eval.with_domains p.env ~domains in
  (* Pin this execution to the caller's snapshot (the session acquired it
     once for validation + execution). Retargeting shares the memoized
     plans — dictionary ids are append-only, so compiled constants stay
     valid across delta generations of one base. *)
  let env =
    match snapshot with
    | Some snap when not (snap == Engine.Bgp_eval.store env) ->
        let stats =
          match stats with
          | Some s -> s
          | None -> Rdf_store.Stats.of_snapshot snap
        in
        Engine.Bgp_eval.with_store env snap ~stats
    | _ -> env
  in
  let store = Engine.Bgp_eval.store env in
  let threshold =
    match p.p_mode with
    | Base | TT -> Evaluator.No_pruning
    | CP -> Evaluator.Fixed (fixed_threshold store)
    | Full -> Evaluator.Adaptive
  in
  (* Adaptive execution (sideways prefilters, feedback, per-node engines)
     only composes with Full-mode pruning: Base/TT/CP stay untouched as
     the paper's baselines. *)
  let adaptive = adaptive && p.p_mode = Full in
  (* Every execution runs under its own governor ticket (caller-supplied,
     so a session can cancel it from another domain, or built here from
     the budget/timeout knobs). Concurrent executions with different
     limits are isolated: nothing below touches process state. *)
  let gov =
    match governor with
    | Some g -> g
    | None -> ticket ?row_budget ?timeout_ms ()
  in
  let t1 = now_ms () in
  (* Bag's probe-side morselization routes through the global pool only
     while a parallel query runs; serial queries keep the historical
     operators. *)
  if domains > 1 then Engine.Pool.enable_bag_runner ()
  else Engine.Pool.disable_bag_runner ();
  let width = Engine.Bgp_eval.width env in
  (* Aggregation (GROUP BY / HAVING) needs the complete result before any
     row can be emitted, so those queries evaluate materialized; their
     solution modifiers still stream over the aggregated bag. *)
  let needs_aggregate =
    (match query.form with
    | Sparql.Ast.Select (Sparql.Ast.Aggregated _) -> true
    | _ -> false)
    || query.Sparql.Ast.group_by <> []
  in
  (* The exception: an ungrouped, HAVING-free aggregate over pure
     aggregate items needs only per-aggregate accumulators, not the
     result — it streams through [aggregate_sink]. *)
  let streamable_aggregate =
    match query.form with
    | Sparql.Ast.Select (Sparql.Ast.Aggregated items)
      when query.Sparql.Ast.group_by = []
           && query.Sparql.Ast.having = None
           && List.for_all
                (function
                  | Sparql.Ast.Aggregate _ -> true
                  | Sparql.Ast.Svar _ -> false)
                items ->
        Some items
    | _ -> None
  in
  (* The terminal bag of a streaming pipeline, captured so a killed run
     can surface the rows that fully traversed the modifier pipeline
     before the limit fired (exact prefix semantics for LIMIT-style
     pipelines; rows buffered inside a sort/top-k stage are lost, so
     best-effort there). Materialized-path runs have nothing safe to
     surface: the kill unwound mid-operator. *)
  let partial_out = ref None in
  let evaluate () =
    if streaming && (not needs_aggregate) && query.Sparql.Ast.having = None
    then begin
      let out = Sparql.Bag.create ~width in
      partial_out := Some out;
      let sink = modifier_sink store vartable query ~width ~out in
      let stats =
        Evaluator.eval_into ~adaptive ?feedback env ~threshold ~sink
          p.p_tree_after
      in
      (out, stats)
    end
    else
      match streamable_aggregate with
      | Some items when streaming ->
          let out = Sparql.Bag.create ~width in
          partial_out := Some out;
          let sink = modifier_sink store vartable query ~width ~out in
          let sink = aggregate_sink store vartable ~width items sink in
          let stats =
            Evaluator.eval_into ~adaptive ?feedback env ~threshold ~sink
              p.p_tree_after
          in
          (out, stats)
      | _ ->
      begin
      let bag, stats =
        Evaluator.eval ~adaptive ?feedback env ~threshold p.p_tree_after
      in
      let bag =
        match query.form with
        | Sparql.Ast.Select (Sparql.Ast.Aggregated items) ->
            aggregate_bag store vartable query items bag
        | _ when query.Sparql.Ast.group_by <> [] ->
            (* GROUP BY without aggregates: one representative row per
               group (keys only). *)
            aggregate_bag store vartable query [] bag
        | _ -> bag
      in
      let bag =
        match query.Sparql.Ast.having with
        | None -> bag
        | Some e ->
            let lookup row v =
              match Sparql.Vartable.find vartable v with
              | Some col when Sparql.Binding.is_bound row col ->
                  Some (Rdf_store.Snapshot.decode_term store row.(col))
              | _ -> None
            in
            Sparql.Bag.filter bag ~f:(fun row ->
                Sparql.Expr.eval ~lookup:(lookup row)
                  ~exists:(fun _ -> false)
                  e)
      in
      if streaming then begin
        let out = Sparql.Bag.create ~width in
        partial_out := Some out;
        let sink = modifier_sink store vartable query ~width ~out in
        (try Sparql.Bag.replay bag ~sink with Sparql.Sink.Stop -> ());
        Sparql.Sink.close sink;
        (out, { stats with Evaluator.stages = Sparql.Sink.stages sink })
      end
      else (apply_modifiers_materialized store vartable query bag, stats)
    end
  in
  (* [Fun.protect]: an engine exception (or a [Stop] leak) must not leave
     the bag runner enabled for the next query on this process; the
     resource limits themselves die with the ticket scope. The [Kill]
     carries its cause directly — no more inferring timeout-vs-budget
     from elapsed time. *)
  let outcome =
    Fun.protect
      ~finally:(fun () -> Engine.Pool.disable_bag_runner ())
      (fun () ->
        try Ok (Sparql.Governor.with_ticket gov evaluate)
        with Sparql.Governor.Kill f -> Error f)
  in
  let exec_ms = now_ms () -. t1 in
  let bag, eval_stats, partial_marker =
    match outcome with
    | Ok (bag, stats) -> (Some bag, Some stats, None)
    | Error f when partial ->
        (* Graceful degradation: surface whatever reached the terminal bag
           before the kill, marked as partial. *)
        let out =
          match !partial_out with
          | Some out -> out
          | None -> Sparql.Bag.create ~width
        in
        (Some out, None, Some f)
    | Error _ -> (None, None, None)
  in
  Log.info (fun m ->
      m "mode=%s engine=%s transform=%.2fms exec=%.2fms results=%s cache=%s"
        (mode_name p.p_mode)
        (Engine.Bgp_eval.engine_name p.p_engine)
        p.p_transform_ms exec_ms
        (match (outcome, bag) with
        | Ok _, Some bag -> string_of_int (Sparql.Bag.length bag)
        | Error f, Some bag ->
            Printf.sprintf "%d (partial: %s)" (Sparql.Bag.length bag)
              (failure_name f)
        | Error f, None -> failure_name f
        | Ok _, None -> assert false)
        (match cache with
        | Some { hit = true; _ } -> "hit"
        | Some { hit = false; _ } -> "miss"
        | None -> "bypass"));
  {
    mode = p.p_mode;
    engine = p.p_engine;
    adaptive;
    query;
    vartable;
    projection = p.p_projection;
    bag;
    result_count = Option.map Sparql.Bag.length bag;
    failure = (match outcome with Ok _ -> None | Error f -> Some f);
    partial = partial_marker;
    pushed_rows = Sparql.Governor.pushed gov;
    transform_ms = p.p_transform_ms;
    exec_ms;
    eval_stats;
    tree_before = p.p_tree_before;
    tree_after = p.p_tree_after;
    epoch = Rdf_store.Snapshot.version store;
    cache;
  }
