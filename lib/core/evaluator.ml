type threshold = No_pruning | Fixed of int | Adaptive

(* One executed BE-tree node, as the adaptive layer saw it: the
   cost-model estimate it started from, the rows it actually produced,
   and the engine that ran it ("wco" / "hash", "lbr" when a sideways
   bitset prefilter was forced in, "skip" when an empty left side
   short-circuited the node, "-" for non-BGP operators). *)
type node_report = {
  label : string;
  engine : string;
  est_rows : float;
  actual_rows : int;
  replanned : bool;
}

type stats = {
  join_space : float;
  peak_rows : int;
  total_rows : int;
  bgp_evals : int;
  pruned_bgps : int;
  isect : Engine.Intersect.counters;
  stages : Sparql.Sink.stage list;
  nodes : node_report list;
  replans : int;
  prefilter : Engine.Candidates.counters;
}

(* The running counters are atomics: parallel UNION branches update them
   from worker domains. [nodes] is a mutex-protected list for the same
   reason. *)
type state = {
  env : Engine.Bgp_eval.t;
  threshold : threshold;
  adaptive : bool;
  feedback : Feedback.t option;
  peak_rows : int Atomic.t;
  bgp_evals : int Atomic.t;
  pruned_bgps : int Atomic.t;
  replans : int Atomic.t;
  nodes : node_report list ref;
  nodes_mutex : Mutex.t;
}

let atomic_max cell v =
  let rec go () =
    let seen = Atomic.get cell in
    if v > seen && not (Atomic.compare_and_set cell seen v) then go ()
  in
  go ()

let observe st bag = atomic_max st.peak_rows (Sparql.Bag.length bag)

(* Mid-query re-planning threshold: an estimate off from the observed
   cardinality by at least this factor (either direction) marks the node
   replanned — its observation is already in the feedback cache, so every
   later admission / engine decision in this query, and the next
   execution's plan, start from the corrected number. *)
let replan_factor = 10.

let deviation ~est ~actual =
  let est = Float.max est 1. in
  let actual = Float.max (float_of_int actual) 1. in
  Float.max (est /. actual) (actual /. est)

let record_node st report =
  if st.adaptive then begin
    Mutex.lock st.nodes_mutex;
    st.nodes := report :: !(st.nodes);
    Mutex.unlock st.nodes_mutex
  end

let node_label = function
  | Be_tree.Bgp b -> Printf.sprintf "bgp{%d}" (List.length b)
  | Be_tree.Group _ -> "group"
  | Be_tree.Union gs -> Printf.sprintf "union{%d}" (List.length gs)
  | Be_tree.Values _ -> "values"
  | Be_tree.Optional _ -> "optional"
  | Be_tree.Minus _ -> "minus"

(* Variable columns used anywhere below a node — candidate sets are only
   built for columns the subtree can actually prune on. *)
let node_columns st node =
  let table = Engine.Bgp_eval.vartable st.env in
  let vars =
    match node with
    | Be_tree.Bgp b -> Engine.Bgp.vars b
    | Be_tree.Values { Sparql.Ast.vars; _ } -> vars
    | Be_tree.Group g | Be_tree.Optional g | Be_tree.Minus g -> Be_tree.vars g
    | Be_tree.Union gs -> List.concat_map Be_tree.vars gs
  in
  List.filter_map (fun v -> Sparql.Vartable.find table v) vars

(* Candidate sets drawn from the current result [r]: one per column that is
   bound in every row of [r] and used below [node]; intersected with any
   outer candidate set for the same column. *)
let candidates_from st outer r node =
  match r with
  | None -> outer
  | Some bag when Sparql.Bag.is_empty bag -> outer
  | Some bag ->
      let universal = Sparql.Bag.universal_columns bag in
      let wanted = node_columns st node in
      (* Dictionary ids are dense in [0, size) — the bitset universe. *)
      let universe =
        Rdf_store.Dictionary.size
          (Rdf_store.Snapshot.dictionary (Engine.Bgp_eval.store st.env))
      in
      List.fold_left
        (fun cands col ->
          if not (List.mem col wanted) then cands
          else begin
            let values = Sparql.Bag.distinct_values bag ~col in
            let values =
              match Engine.Candidates.find outer ~col with
              | None -> values
              | Some outer_set ->
                  let inter = Hashtbl.create (Hashtbl.length values) in
                  Hashtbl.iter
                    (fun v () ->
                      if Engine.Candidates.mem outer_set v then
                        Hashtbl.replace inter v ())
                    values;
                  inter
            in
            Engine.Candidates.set cands ~col
              (Engine.Candidates.of_hashtbl ~universe values)
          end)
        outer universal

(* Sideways (forced) prefilters skip the threshold's 2x margin, but not
   cost sanity entirely: a set several times larger than the result it
   would filter can only add membership tests (and, worse, bait the WCO
   seed heuristic into per-candidate index probes), so forced admission
   is capped at [forced_slack] times the feedback-corrected estimate. *)
let forced_slack = 4.

(* Apply the threshold rule of Section 6: a candidate set reaches the BGP
   only when smaller than the threshold. [forced] columns relax the rule
   — they are the sideways bitset prefilters the adaptive layer pushes
   into OPTIONAL/MINUS subtrees, where skipping rows that cannot join is
   usually worth the membership tests. *)
let admit_candidates st cands ~forced patterns =
  let cols = node_columns st (Be_tree.Bgp patterns) in
  let estimate =
    if forced <> [] || st.threshold = Adaptive then
      Cost_model.bgp_card ?feedback:st.feedback st.env patterns
    else infinity
  in
  let force_admitted =
    List.fold_left
      (fun acc col ->
        if not (List.mem col cols) then acc
        else
          match Engine.Candidates.find cands ~col with
          | Some s
            when float_of_int (Engine.Candidates.cardinal s)
                 < forced_slack *. estimate ->
              Engine.Candidates.set acc ~col s
          | _ -> acc)
      Engine.Candidates.empty forced
  in
  match st.threshold with
  | No_pruning -> force_admitted
  | Fixed limit ->
      List.fold_left
        (fun acc col ->
          match Engine.Candidates.find cands ~col with
          | Some values when Engine.Candidates.cardinal values < limit ->
              Engine.Candidates.set acc ~col values
          | _ -> acc)
        force_admitted cols
  | Adaptive ->
      (* Demand a margin below the estimated BGP result size: a candidate
         set about as large as the result it would prune only adds
         membership-test overhead (Section 6's "smaller candidate result
         size also reduces the overhead"). The estimate is
         feedback-corrected, so a BGP observed smaller than sampled
         admits fewer (and an underestimated one more) sets on
         re-execution. *)
      List.fold_left
        (fun acc col ->
          match Engine.Candidates.find cands ~col with
          | Some values
            when 2. *. float_of_int (Engine.Candidates.cardinal values)
                 < estimate ->
              Engine.Candidates.set acc ~col values
          | _ -> acc)
        force_admitted cols

(* Per-node engine selection: adaptive execution compares the plan's
   engine-specific cost estimates per BGP instead of taking the context's
   engine for every node. The memoized plan carries both costs, so the
   choice is free. A BGP that admitted candidate sets always runs WCO:
   only that path consumes the sets as seeded lookups or intersection
   operands (the costs compared below model neither), while every other
   engine degrades them to per-row membership tests over the full scan. *)
let choose_engine st patterns ~pruned =
  if not st.adaptive then Engine.Bgp_eval.engine st.env
  else if pruned then Engine.Bgp_eval.Wco
  else
    let plan = Engine.Bgp_eval.plan st.env patterns in
    if plan.Engine.Planner.cost_wco <= plan.Engine.Planner.cost_hash then
      Engine.Bgp_eval.Wco
    else Engine.Bgp_eval.Hash_join

(* Observed-cardinality bookkeeping after a BGP ran. Only unpruned
   evaluations feed the cache: a prefiltered BGP's output is not the
   standalone |res(B)| the estimates model. The estimate is read before
   recording, so the deviation compares against what the planner (plus
   any earlier feedback) believed going in. *)
let note_bgp st patterns ~admitted ~forced ~engine ~pruned ~actual =
  if st.adaptive then begin
    let est = Cost_model.bgp_card ?feedback:st.feedback st.env patterns in
    if not pruned then
      Option.iter
        (fun fb -> Feedback.record fb patterns ~rows:actual)
        st.feedback;
    let replanned =
      (not pruned) && deviation ~est ~actual >= replan_factor
    in
    if replanned then Atomic.incr st.replans;
    let lbr =
      List.exists
        (fun col -> Option.is_some (Engine.Candidates.find admitted ~col))
        forced
    in
    record_node st
      {
        label = Printf.sprintf "bgp{%d}" (List.length patterns);
        engine = (if lbr then "lbr" else Engine.Bgp_eval.engine_name engine);
        est_rows = est;
        actual_rows = actual;
        replanned;
      }
  end

let eval_bgp st patterns ~cands ~forced =
  let width = Engine.Bgp_eval.width st.env in
  match patterns with
  | [] -> (Sparql.Bag.unit ~width, 1.)
  | _ ->
      let admitted = admit_candidates st cands ~forced patterns in
      Atomic.incr st.bgp_evals;
      let pruned = not (Engine.Candidates.is_empty admitted) in
      if pruned then Atomic.incr st.pruned_bgps;
      let engine = choose_engine st patterns ~pruned in
      let bag =
        Engine.Bgp_eval.eval_with st.env ~engine patterns ~candidates:admitted
      in
      observe st bag;
      let actual = Sparql.Bag.length bag in
      note_bgp st patterns ~admitted ~forced ~engine ~pruned ~actual;
      (bag, float_of_int actual)

(* Parallel-UNION safety check: materializing a VALUES block interns its
   constants in the store dictionary — the one write to shared store state
   during evaluation — so a branch that can reach a VALUES node (directly
   or through an EXISTS pattern inside a filter) must stay on the serial
   path. Everything else a branch touches (indexes, statistics, candidate
   tables, dictionary decode) is read-only. *)
let rec ast_group_has_values (g : Sparql.Ast.group) =
  List.exists
    (function
      | Sparql.Ast.Triples _ -> false
      | Sparql.Ast.Values _ -> true
      | Sparql.Ast.Group g | Sparql.Ast.Optional g | Sparql.Ast.Minus g ->
          ast_group_has_values g
      | Sparql.Ast.Union gs -> List.exists ast_group_has_values gs
      | Sparql.Ast.Filter e -> expr_has_values e)
    g

and expr_has_values (e : Sparql.Ast.expr) =
  match e with
  | Sparql.Expr.Exists g | Sparql.Expr.Not_exists g -> ast_group_has_values g
  | Sparql.Expr.Const _ | Sparql.Expr.Var _ | Sparql.Expr.Bound _ -> false
  | Sparql.Expr.Cmp (_, e1, e2)
  | Sparql.Expr.Arith (_, e1, e2)
  | Sparql.Expr.And (e1, e2)
  | Sparql.Expr.Or (e1, e2) ->
      expr_has_values e1 || expr_has_values e2
  | Sparql.Expr.Neg e | Sparql.Expr.Not e -> expr_has_values e
  | Sparql.Expr.Call (_, args) -> List.exists expr_has_values args

let rec tree_has_values (g : Be_tree.group) =
  List.exists
    (function
      | Be_tree.Values _ -> true
      | Be_tree.Bgp _ -> false
      | Be_tree.Group g | Be_tree.Optional g | Be_tree.Minus g ->
          tree_has_values g
      | Be_tree.Union gs -> List.exists tree_has_values gs)
    g.children
  || List.exists expr_has_values g.filters

let rec filter_lookup st row v =
  let table = Engine.Bgp_eval.vartable st.env in
  let store = Engine.Bgp_eval.store st.env in
  match Sparql.Vartable.find table v with
  | None -> None
  | Some col ->
      if Sparql.Binding.is_bound row col then
        Some (Rdf_store.Snapshot.decode_term store row.(col))
      else None

(* EXISTS { P }: substitute the row's bindings into P and test whether the
   parameterized pattern has any solution (evaluated through the
   Definition 7 semantics directly — EXISTS groups are small). *)
let rec exists_check st row group =
  let lookup = filter_lookup st row in
  let substituted = Sparql.Ast.substitute_group group ~lookup in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars substituted) in
  let env =
    Engine.Bgp_eval.make_snapshot
      ~stats:(Engine.Bgp_eval.stats st.env)
      (Engine.Bgp_eval.store st.env)
      vartable (Engine.Bgp_eval.engine st.env)
  in
  let tree = Be_tree.of_ast substituted in
  let sub_state =
    { env; threshold = No_pruning; adaptive = false; feedback = None;
      peak_rows = Atomic.make 0; bgp_evals = Atomic.make 0;
      pruned_bgps = Atomic.make 0; replans = Atomic.make 0;
      nodes = ref []; nodes_mutex = Mutex.create () }
  in
  let bag, _ =
    eval_group sub_state tree ~cands:Engine.Candidates.empty ~forced:[]
  in
  not (Sparql.Bag.is_empty bag)

(* Materialize a VALUES block as a bag; constants are interned in the
   dictionary (harmless to results: they occur in no triple, so they
   simply become ids that join with nothing unless present in the data).
   The dictionary is internally synchronized and ids are append-only, so
   interning under concurrent readers is safe and invalidates nothing —
   only cached plans that compiled a constant to [Missing] re-validate
   against the dictionary size (see {!Session}). *)
and values_bag st (block : Sparql.Ast.values_block) =
  let table = Engine.Bgp_eval.vartable st.env in
  let store = Engine.Bgp_eval.store st.env in
  let width = Engine.Bgp_eval.width st.env in
  let cols = List.map (Sparql.Vartable.id table) block.Sparql.Ast.vars in
  let bag = Sparql.Bag.create ~width in
  List.iter
    (fun row ->
      let fresh = Sparql.Binding.create ~width in
      List.iter2
        (fun col cell ->
          match cell with
          | Some term ->
              fresh.(col) <- Rdf_store.Snapshot.intern_term store term
          | None -> ())
        cols row;
      Sparql.Bag.push bag fresh)
    block.Sparql.Ast.rows;
  bag

(* UNION branches are independent by construction, so when the env carries
   a domain pool they evaluate concurrently, one branch per morsel.
   Branches that could intern dictionary terms (VALUES, see above) force
   the serial path; nested parallelism inside a branch (a WCO step or a
   probe-side fan-out) seeds its own job into the shared scheduler, so
   idle domains help with inner morsels instead of sitting out. *)
and eval_union_branches st branches ~cands ~forced =
  match Engine.Bgp_eval.pool st.env with
  | Some pool
    when List.length branches > 1
         && not (List.exists tree_has_values branches) ->
      let arr = Array.of_list branches in
      Array.to_list
        (Engine.Pool.parallel_map pool ~morsel:1 ~lo:0 ~hi:(Array.length arr)
           (fun i -> eval_group st arr.(i) ~cands ~forced))
  | _ -> List.map (fun branch -> eval_group st branch ~cands ~forced) branches

(* The sideways columns forced into an OPTIONAL/MINUS subtree: every
   column of the (already soundness-restricted) candidate map. The
   restriction to left-universal columns has happened by the time this is
   called, and recursion re-derives the set at each inner boundary, so a
   forced column never outlives the scope where pruning on it is sound. *)
and forced_for st pass_down ~forced ~left_universal =
  if st.adaptive then Engine.Candidates.columns pass_down
  else List.filter (fun c -> List.mem c left_universal) forced

(* One child of Algorithm 1's fold: combine [node]'s solutions into the
   running result [r] (with [js] the join-space product so far). With
   adaptive execution, an empty running result short-circuits the rest of
   the level: every combination form (join, OPTIONAL, MINUS, UNION-join)
   over an empty left side is empty, so the remaining children are
   skipped — the degenerate but common mid-query re-plan. *)
and eval_child st ~cands ~forced (r, js) node : Sparql.Bag.t option * float =
  match r with
  | Some bag when st.adaptive && Sparql.Bag.is_empty bag ->
      record_node st
        {
          label = node_label node;
          engine = "skip";
          est_rows = Cost_model.node_card ?feedback:st.feedback st.env node;
          actual_rows = 0;
          replanned = false;
        };
      (r, js)
  | _ -> (
      let width = Engine.Bgp_eval.width st.env in
      let current () = Option.value r ~default:(Sparql.Bag.unit ~width) in
      let pass_down = candidates_from st cands r node in
      match node with
      | Be_tree.Bgp patterns ->
          let bag, bgp_js = eval_bgp st patterns ~cands:pass_down ~forced in
          let joined =
            match r with None -> bag | Some r0 -> Sparql.Bag.join r0 bag
          in
          observe st joined;
          (Some joined, js *. bgp_js)
      | Be_tree.Group inner ->
          let bag, inner_js = eval_group st inner ~cands:pass_down ~forced in
          let joined =
            match r with None -> bag | Some r0 -> Sparql.Bag.join r0 bag
          in
          observe st joined;
          (Some joined, js *. inner_js)
      | Be_tree.Union branches ->
          let u = ref (Sparql.Bag.create ~width) in
          let union_js = ref 0. in
          List.iter
            (fun (bag, branch_js) ->
              union_js := !union_js +. branch_js;
              u := Sparql.Bag.union !u bag)
            (eval_union_branches st branches ~cands:pass_down ~forced);
          observe st !u;
          record_node st
            {
              label = node_label node;
              engine = "-";
              est_rows = Cost_model.node_card ?feedback:st.feedback st.env node;
              actual_rows = Sparql.Bag.length !u;
              replanned = false;
            };
          let joined =
            match r with None -> !u | Some r0 -> Sparql.Bag.join r0 !u
          in
          observe st joined;
          (Some joined, js *. !union_js)
      | Be_tree.Values block ->
          let bag = values_bag st block in
          let vjs = float_of_int (Sparql.Bag.length bag) in
          let joined =
            match r with None -> bag | Some r0 -> Sparql.Bag.join r0 bag
          in
          observe st joined;
          (Some joined, js *. vjs)
      | Be_tree.Optional inner | Be_tree.Minus inner ->
          (* Soundness: only columns universally bound by the left side
             (the current result) may prune the right side — pruning any
             other column could flip an extension into a spuriously
             surviving unextended row (OPTIONAL), or resurrect a row its
             excluder would have removed (MINUS). *)
          let left_universal =
            match r with
            | None -> []
            | Some bag -> Sparql.Bag.universal_columns bag
          in
          let pass_down =
            Engine.Candidates.restrict pass_down ~cols:left_universal
          in
          let forced = forced_for st pass_down ~forced ~left_universal in
          let bag, inner_js = eval_group st inner ~cands:pass_down ~forced in
          let left_card =
            match r with
            | None -> 1.
            | Some bag -> float_of_int (Sparql.Bag.length bag)
          in
          record_node st
            {
              label = node_label node;
              engine = "-";
              est_rows =
                Cost_model.optional_card ?feedback:st.feedback st.env
                  ~left_card inner;
              actual_rows = Sparql.Bag.length bag;
              replanned = false;
            };
          let combined =
            match node with
            | Be_tree.Optional _ -> Sparql.Bag.left_outer_join (current ()) bag
            | _ -> Sparql.Bag.sparql_minus (current ()) bag
          in
          observe st combined;
          (Some combined, js *. Float.max inner_js 1.))

(* Algorithm 1, with candidate pruning (the [cands] argument is the paper's
   third argument to BGPBasedEvaluation). Returns the bag and the node's
   contribution to the join space. *)
and eval_group st (g : Be_tree.group) ~cands ~forced : Sparql.Bag.t * float =
  let width = Engine.Bgp_eval.width st.env in
  let r, js =
    List.fold_left (eval_child st ~cands ~forced) (None, 1.) g.children
  in
  let result = Option.value r ~default:(Sparql.Bag.unit ~width) in
  let result =
    List.fold_left
      (fun bag e ->
        Sparql.Bag.filter bag ~f:(fun row ->
            Sparql.Expr.eval
              ~lookup:(filter_lookup st row)
              ~exists:(exists_check st row)
              e))
      result g.filters
  in
  observe st result;
  (result, js)

(* [eval_group_into] is [eval_group] with the last combination streamed:
   all children but the last evaluate and combine materialized exactly as
   above; the final combination emits rows into [sink] (through the
   group's FILTERs as sink stages), so a downstream LIMIT unwinds the
   whole pipeline via [Sink.Stop]. Streamed rows are never observed as a
   materialized bag, so [peak_rows] excludes the final operator's output;
   the BGP cardinality feeding [join_space] is recovered from a counting
   stage (equal to the materialized length when the pipeline runs to
   completion, partial under an early Stop). *)
and eval_group_into st (g : Be_tree.group) ~cands ~forced ~sink : float =
  let width = Engine.Bgp_eval.width st.env in
  let sink =
    List.fold_left
      (fun sink e ->
        Sparql.Sink.filter ~name:"filter"
          ~f:(fun row ->
            Sparql.Expr.eval
              ~lookup:(filter_lookup st row)
              ~exists:(exists_check st row)
              e)
          sink)
      sink (List.rev g.filters)
  in
  match List.rev g.children with
  | [] ->
      Sparql.Bag.emit_accounted sink (Sparql.Binding.create ~width);
      1.
  | last :: rev_prefix ->
      let r, js =
        List.fold_left
          (eval_child st ~cands ~forced)
          (None, 1.) (List.rev rev_prefix)
      in
      let current () = Option.value r ~default:(Sparql.Bag.unit ~width) in
      let pass_down = candidates_from st cands r last in
      (match r with
      | Some bag when st.adaptive && Sparql.Bag.is_empty bag ->
          (* Same short-circuit as [eval_child]: every combination form
             over an empty left side emits nothing. *)
          record_node st
            {
              label = node_label last;
              engine = "skip";
              est_rows = Cost_model.node_card ?feedback:st.feedback st.env last;
              actual_rows = 0;
              replanned = false;
            };
          js
      | _ -> (
          match last with
          | Be_tree.Bgp [] -> (
              match r with
              | None ->
                  Sparql.Bag.emit_accounted sink (Sparql.Binding.create ~width);
                  js
              | Some r0 ->
                  Sparql.Bag.replay r0 ~sink;
                  js)
          | Be_tree.Bgp patterns -> (
              match r with
              | None ->
                  let admitted =
                    admit_candidates st pass_down ~forced patterns
                  in
                  Atomic.incr st.bgp_evals;
                  let pruned = not (Engine.Candidates.is_empty admitted) in
                  if pruned then Atomic.incr st.pruned_bgps;
                  let engine = choose_engine st patterns ~pruned in
                  let counted, stage = Sparql.Sink.counted ~name:"bgp" sink in
                  Engine.Bgp_eval.eval_into_with st.env ~engine patterns
                    ~candidates:admitted ~sink:counted;
                  (* Only reached when the pipeline ran to completion (an
                     early [Stop] unwinds past this point), so the count
                     is the full cardinality and safe to feed back. *)
                  note_bgp st patterns ~admitted ~forced ~engine ~pruned
                    ~actual:stage.Sparql.Sink.rows_in;
                  js *. float_of_int stage.Sparql.Sink.rows_in
              | Some r0 ->
                  let bag, bgp_js =
                    eval_bgp st patterns ~cands:pass_down ~forced
                  in
                  Sparql.Bag.join_into r0 bag ~sink;
                  js *. bgp_js)
          | Be_tree.Group inner -> (
              match r with
              | None -> js *. eval_group_into st inner ~cands:pass_down ~forced ~sink
              | Some r0 ->
                  let bag, inner_js =
                    eval_group st inner ~cands:pass_down ~forced
                  in
                  Sparql.Bag.join_into r0 bag ~sink;
                  js *. inner_js)
          | Be_tree.Union branches ->
              let results =
                eval_union_branches st branches ~cands:pass_down ~forced
              in
              let union_js =
                List.fold_left (fun acc (_, bjs) -> acc +. bjs) 0. results
              in
              (match r with
              | None ->
                  List.iter
                    (fun (bag, _) -> Sparql.Bag.replay bag ~sink)
                    results
              | Some r0 ->
                  let u =
                    List.fold_left
                      (fun acc (bag, _) -> Sparql.Bag.union acc bag)
                      (Sparql.Bag.create ~width) results
                  in
                  observe st u;
                  Sparql.Bag.join_into r0 u ~sink);
              js *. union_js
          | Be_tree.Values block ->
              let bag = values_bag st block in
              let vjs = float_of_int (Sparql.Bag.length bag) in
              (match r with
              | None -> Sparql.Bag.replay bag ~sink
              | Some r0 -> Sparql.Bag.join_into r0 bag ~sink);
              js *. vjs
          | Be_tree.Optional inner | Be_tree.Minus inner ->
              let left_universal =
                match r with
                | None -> []
                | Some bag -> Sparql.Bag.universal_columns bag
              in
              let pass_down =
                Engine.Candidates.restrict pass_down ~cols:left_universal
              in
              let forced = forced_for st pass_down ~forced ~left_universal in
              let bag, inner_js =
                eval_group st inner ~cands:pass_down ~forced
              in
              let left_card =
                match r with
                | None -> 1.
                | Some bag -> float_of_int (Sparql.Bag.length bag)
              in
              record_node st
                {
                  label = node_label last;
                  engine = "-";
                  est_rows =
                    Cost_model.optional_card ?feedback:st.feedback st.env
                      ~left_card inner;
                  actual_rows = Sparql.Bag.length bag;
                  replanned = false;
                };
              (match last with
              | Be_tree.Optional _ ->
                  Sparql.Bag.left_outer_join_into (current ()) bag ~sink
              | _ -> Sparql.Bag.sparql_minus_into (current ()) bag ~sink);
              js *. Float.max inner_js 1.))

let make_state env ~threshold ~adaptive ~feedback =
  { env; threshold; adaptive; feedback; peak_rows = Atomic.make 0;
    bgp_evals = Atomic.make 0; pruned_bgps = Atomic.make 0;
    replans = Atomic.make 0; nodes = ref []; nodes_mutex = Mutex.create () }

(* [total_rows] is the delta of the ambient governor ticket's produced-row
   counter across the evaluation (a snapshot, not a reset: the counter
   belongs to the whole execution, and nested or back-to-back evaluations
   under one ticket must not clobber each other). *)
let finish_stats st ~base_pushed ~join_space ~stages =
  {
    join_space;
    peak_rows = Atomic.get st.peak_rows;
    total_rows = Sparql.Governor.pushed (Sparql.Governor.current ()) - base_pushed;
    bgp_evals = Atomic.get st.bgp_evals;
    pruned_bgps = Atomic.get st.pruned_bgps;
    isect = Engine.Intersect.read ();
    stages;
    nodes = List.rev !(st.nodes);
    replans = Atomic.get st.replans;
    prefilter = Engine.Candidates.read_counters ();
  }

let eval ?(adaptive = false) ?feedback env ~threshold tree =
  let st = make_state env ~threshold ~adaptive ~feedback in
  let base_pushed = Sparql.Governor.pushed (Sparql.Governor.current ()) in
  Engine.Intersect.reset ();
  Engine.Candidates.reset_counters ();
  let bag, join_space =
    eval_group st tree ~cands:Engine.Candidates.empty ~forced:[]
  in
  (bag, finish_stats st ~base_pushed ~join_space ~stages:[])

let eval_into ?(adaptive = false) ?feedback env ~threshold ~sink tree =
  let st = make_state env ~threshold ~adaptive ~feedback in
  let base_pushed = Sparql.Governor.pushed (Sparql.Governor.current ()) in
  Engine.Intersect.reset ();
  Engine.Candidates.reset_counters ();
  let join_space = ref 1. in
  (try
     join_space :=
       eval_group_into st tree ~cands:Engine.Candidates.empty ~forced:[] ~sink
   with Sparql.Sink.Stop -> ());
  Sparql.Sink.close sink;
  finish_stats st ~base_pushed ~join_space:!join_space
    ~stages:(Sparql.Sink.stages sink)
