type threshold = No_pruning | Fixed of int | Adaptive

type stats = {
  join_space : float;
  peak_rows : int;
  total_rows : int;
  bgp_evals : int;
  pruned_bgps : int;
  isect : Engine.Intersect.counters;
  stages : Sparql.Sink.stage list;
}

(* The running counters are atomics: parallel UNION branches update them
   from worker domains. *)
type state = {
  env : Engine.Bgp_eval.t;
  threshold : threshold;
  peak_rows : int Atomic.t;
  bgp_evals : int Atomic.t;
  pruned_bgps : int Atomic.t;
}

let atomic_max cell v =
  let rec go () =
    let seen = Atomic.get cell in
    if v > seen && not (Atomic.compare_and_set cell seen v) then go ()
  in
  go ()

let observe st bag = atomic_max st.peak_rows (Sparql.Bag.length bag)

(* Variable columns used anywhere below a node — candidate sets are only
   built for columns the subtree can actually prune on. *)
let node_columns st node =
  let table = Engine.Bgp_eval.vartable st.env in
  let vars =
    match node with
    | Be_tree.Bgp b -> Engine.Bgp.vars b
    | Be_tree.Values { Sparql.Ast.vars; _ } -> vars
    | Be_tree.Group g | Be_tree.Optional g | Be_tree.Minus g -> Be_tree.vars g
    | Be_tree.Union gs -> List.concat_map Be_tree.vars gs
  in
  List.filter_map (fun v -> Sparql.Vartable.find table v) vars

(* Candidate sets drawn from the current result [r]: one per column that is
   bound in every row of [r] and used below [node]; intersected with any
   outer candidate set for the same column. *)
let candidates_from st outer r node =
  match r with
  | None -> outer
  | Some bag when Sparql.Bag.is_empty bag -> outer
  | Some bag ->
      let universal = Sparql.Bag.universal_columns bag in
      let wanted = node_columns st node in
      (* Dictionary ids are dense in [0, size) — the bitset universe. *)
      let universe =
        Rdf_store.Dictionary.size
          (Rdf_store.Snapshot.dictionary (Engine.Bgp_eval.store st.env))
      in
      List.fold_left
        (fun cands col ->
          if not (List.mem col wanted) then cands
          else begin
            let values = Sparql.Bag.distinct_values bag ~col in
            let values =
              match Engine.Candidates.find outer ~col with
              | None -> values
              | Some outer_set ->
                  let inter = Hashtbl.create (Hashtbl.length values) in
                  Hashtbl.iter
                    (fun v () ->
                      if Engine.Candidates.mem outer_set v then
                        Hashtbl.replace inter v ())
                    values;
                  inter
            in
            Engine.Candidates.set cands ~col
              (Engine.Candidates.of_hashtbl ~universe values)
          end)
        outer universal

(* Apply the threshold rule of Section 6: a candidate set reaches the BGP
   only when smaller than the threshold. *)
let admit_candidates st cands patterns =
  match st.threshold with
  | No_pruning -> Engine.Candidates.empty
  | Fixed limit ->
      List.fold_left
        (fun acc col ->
          match Engine.Candidates.find cands ~col with
          | Some values when Engine.Candidates.cardinal values < limit ->
              Engine.Candidates.set acc ~col values
          | _ -> acc)
        Engine.Candidates.empty
        (node_columns st (Be_tree.Bgp patterns))
  | Adaptive ->
      (* Demand a margin below the estimated BGP result size: a candidate
         set about as large as the result it would prune only adds
         membership-test overhead (Section 6's "smaller candidate result
         size also reduces the overhead"). *)
      let estimate = Engine.Bgp_eval.estimate_card st.env patterns in
      List.fold_left
        (fun acc col ->
          match Engine.Candidates.find cands ~col with
          | Some values
            when 2. *. float_of_int (Engine.Candidates.cardinal values)
                 < estimate ->
              Engine.Candidates.set acc ~col values
          | _ -> acc)
        Engine.Candidates.empty
        (node_columns st (Be_tree.Bgp patterns))

let eval_bgp st patterns ~cands =
  let width = Engine.Bgp_eval.width st.env in
  match patterns with
  | [] -> (Sparql.Bag.unit ~width, 1.)
  | _ ->
      let admitted = admit_candidates st cands patterns in
      Atomic.incr st.bgp_evals;
      if not (Engine.Candidates.is_empty admitted) then
        Atomic.incr st.pruned_bgps;
      let bag = Engine.Bgp_eval.eval st.env patterns ~candidates:admitted in
      observe st bag;
      (bag, float_of_int (Sparql.Bag.length bag))

(* Parallel-UNION safety check: materializing a VALUES block interns its
   constants in the store dictionary — the one write to shared store state
   during evaluation — so a branch that can reach a VALUES node (directly
   or through an EXISTS pattern inside a filter) must stay on the serial
   path. Everything else a branch touches (indexes, statistics, candidate
   tables, dictionary decode) is read-only. *)
let rec ast_group_has_values (g : Sparql.Ast.group) =
  List.exists
    (function
      | Sparql.Ast.Triples _ -> false
      | Sparql.Ast.Values _ -> true
      | Sparql.Ast.Group g | Sparql.Ast.Optional g | Sparql.Ast.Minus g ->
          ast_group_has_values g
      | Sparql.Ast.Union gs -> List.exists ast_group_has_values gs
      | Sparql.Ast.Filter e -> expr_has_values e)
    g

and expr_has_values (e : Sparql.Ast.expr) =
  match e with
  | Sparql.Expr.Exists g | Sparql.Expr.Not_exists g -> ast_group_has_values g
  | Sparql.Expr.Const _ | Sparql.Expr.Var _ | Sparql.Expr.Bound _ -> false
  | Sparql.Expr.Cmp (_, e1, e2)
  | Sparql.Expr.Arith (_, e1, e2)
  | Sparql.Expr.And (e1, e2)
  | Sparql.Expr.Or (e1, e2) ->
      expr_has_values e1 || expr_has_values e2
  | Sparql.Expr.Neg e | Sparql.Expr.Not e -> expr_has_values e
  | Sparql.Expr.Call (_, args) -> List.exists expr_has_values args

let rec tree_has_values (g : Be_tree.group) =
  List.exists
    (function
      | Be_tree.Values _ -> true
      | Be_tree.Bgp _ -> false
      | Be_tree.Group g | Be_tree.Optional g | Be_tree.Minus g ->
          tree_has_values g
      | Be_tree.Union gs -> List.exists tree_has_values gs)
    g.children
  || List.exists expr_has_values g.filters

let rec filter_lookup st row v =
  let table = Engine.Bgp_eval.vartable st.env in
  let store = Engine.Bgp_eval.store st.env in
  match Sparql.Vartable.find table v with
  | None -> None
  | Some col ->
      if Sparql.Binding.is_bound row col then
        Some (Rdf_store.Snapshot.decode_term store row.(col))
      else None

(* EXISTS { P }: substitute the row's bindings into P and test whether the
   parameterized pattern has any solution (evaluated through the
   Definition 7 semantics directly — EXISTS groups are small). *)
let rec exists_check st row group =
  let lookup = filter_lookup st row in
  let substituted = Sparql.Ast.substitute_group group ~lookup in
  let vartable = Sparql.Vartable.of_list (Sparql.Ast.group_vars substituted) in
  let env =
    Engine.Bgp_eval.make_snapshot
      ~stats:(Engine.Bgp_eval.stats st.env)
      (Engine.Bgp_eval.store st.env)
      vartable (Engine.Bgp_eval.engine st.env)
  in
  let tree = Be_tree.of_ast substituted in
  let sub_state =
    { env; threshold = No_pruning; peak_rows = Atomic.make 0;
      bgp_evals = Atomic.make 0; pruned_bgps = Atomic.make 0 }
  in
  let bag, _ = eval_group sub_state tree ~cands:Engine.Candidates.empty in
  not (Sparql.Bag.is_empty bag)

(* Materialize a VALUES block as a bag; constants are interned in the
   dictionary (harmless to results: they occur in no triple, so they
   simply become ids that join with nothing unless present in the data).
   The dictionary is internally synchronized and ids are append-only, so
   interning under concurrent readers is safe and invalidates nothing —
   only cached plans that compiled a constant to [Missing] re-validate
   against the dictionary size (see {!Session}). *)
and values_bag st (block : Sparql.Ast.values_block) =
  let table = Engine.Bgp_eval.vartable st.env in
  let store = Engine.Bgp_eval.store st.env in
  let width = Engine.Bgp_eval.width st.env in
  let cols = List.map (Sparql.Vartable.id table) block.Sparql.Ast.vars in
  let bag = Sparql.Bag.create ~width in
  List.iter
    (fun row ->
      let fresh = Sparql.Binding.create ~width in
      List.iter2
        (fun col cell ->
          match cell with
          | Some term ->
              fresh.(col) <- Rdf_store.Snapshot.intern_term store term
          | None -> ())
        cols row;
      Sparql.Bag.push bag fresh)
    block.Sparql.Ast.rows;
  bag

(* UNION branches are independent by construction, so when the env carries
   a domain pool they evaluate concurrently, one branch per morsel.
   Branches that could intern dictionary terms (VALUES, see above) force
   the serial path; nested parallelism inside a branch (a WCO step or a
   probe-side fan-out) seeds its own job into the shared scheduler, so
   idle domains help with inner morsels instead of sitting out. *)
and eval_union_branches st branches ~cands =
  match Engine.Bgp_eval.pool st.env with
  | Some pool
    when List.length branches > 1
         && not (List.exists tree_has_values branches) ->
      let arr = Array.of_list branches in
      Array.to_list
        (Engine.Pool.parallel_map pool ~morsel:1 ~lo:0 ~hi:(Array.length arr)
           (fun i -> eval_group st arr.(i) ~cands))
  | _ -> List.map (fun branch -> eval_group st branch ~cands) branches

(* One child of Algorithm 1's fold: combine [node]'s solutions into the
   running result [r] (with [js] the join-space product so far). *)
and eval_child st ~cands (r, js) node : Sparql.Bag.t option * float =
  let width = Engine.Bgp_eval.width st.env in
  let current () = Option.value r ~default:(Sparql.Bag.unit ~width) in
  let pass_down = candidates_from st cands r node in
  match node with
  | Be_tree.Bgp patterns ->
      let bag, bgp_js = eval_bgp st patterns ~cands:pass_down in
      let joined =
        match r with None -> bag | Some r0 -> Sparql.Bag.join r0 bag
      in
      observe st joined;
      (Some joined, js *. bgp_js)
  | Be_tree.Group inner ->
      let bag, inner_js = eval_group st inner ~cands:pass_down in
      let joined =
        match r with None -> bag | Some r0 -> Sparql.Bag.join r0 bag
      in
      observe st joined;
      (Some joined, js *. inner_js)
  | Be_tree.Union branches ->
      let u = ref (Sparql.Bag.create ~width) in
      let union_js = ref 0. in
      List.iter
        (fun (bag, branch_js) ->
          union_js := !union_js +. branch_js;
          u := Sparql.Bag.union !u bag)
        (eval_union_branches st branches ~cands:pass_down);
      observe st !u;
      let joined =
        match r with None -> !u | Some r0 -> Sparql.Bag.join r0 !u
      in
      observe st joined;
      (Some joined, js *. !union_js)
  | Be_tree.Values block ->
      let bag = values_bag st block in
      let vjs = float_of_int (Sparql.Bag.length bag) in
      let joined =
        match r with None -> bag | Some r0 -> Sparql.Bag.join r0 bag
      in
      observe st joined;
      (Some joined, js *. vjs)
  | Be_tree.Optional inner | Be_tree.Minus inner ->
      (* Soundness: only columns universally bound by the left side
         (the current result) may prune the right side — pruning any
         other column could flip an extension into a spuriously
         surviving unextended row (OPTIONAL), or resurrect a row its
         excluder would have removed (MINUS). *)
      let left_universal =
        match r with
        | None -> []
        | Some bag -> Sparql.Bag.universal_columns bag
      in
      let pass_down =
        Engine.Candidates.restrict pass_down ~cols:left_universal
      in
      let bag, inner_js = eval_group st inner ~cands:pass_down in
      let combined =
        match node with
        | Be_tree.Optional _ -> Sparql.Bag.left_outer_join (current ()) bag
        | _ -> Sparql.Bag.sparql_minus (current ()) bag
      in
      observe st combined;
      (Some combined, js *. Float.max inner_js 1.)

(* Algorithm 1, with candidate pruning (the [cands] argument is the paper's
   third argument to BGPBasedEvaluation). Returns the bag and the node's
   contribution to the join space. *)
and eval_group st (g : Be_tree.group) ~cands : Sparql.Bag.t * float =
  let width = Engine.Bgp_eval.width st.env in
  let r, js = List.fold_left (eval_child st ~cands) (None, 1.) g.children in
  let result = Option.value r ~default:(Sparql.Bag.unit ~width) in
  let result =
    List.fold_left
      (fun bag e ->
        Sparql.Bag.filter bag ~f:(fun row ->
            Sparql.Expr.eval
              ~lookup:(filter_lookup st row)
              ~exists:(exists_check st row)
              e))
      result g.filters
  in
  observe st result;
  (result, js)

(* [eval_group_into] is [eval_group] with the last combination streamed:
   all children but the last evaluate and combine materialized exactly as
   above; the final combination emits rows into [sink] (through the
   group's FILTERs as sink stages), so a downstream LIMIT unwinds the
   whole pipeline via [Sink.Stop]. Streamed rows are never observed as a
   materialized bag, so [peak_rows] excludes the final operator's output;
   the BGP cardinality feeding [join_space] is recovered from a counting
   stage (equal to the materialized length when the pipeline runs to
   completion, partial under an early Stop). *)
and eval_group_into st (g : Be_tree.group) ~cands ~sink : float =
  let width = Engine.Bgp_eval.width st.env in
  let sink =
    List.fold_left
      (fun sink e ->
        Sparql.Sink.filter ~name:"filter"
          ~f:(fun row ->
            Sparql.Expr.eval
              ~lookup:(filter_lookup st row)
              ~exists:(exists_check st row)
              e)
          sink)
      sink (List.rev g.filters)
  in
  match List.rev g.children with
  | [] ->
      Sparql.Bag.emit_accounted sink (Sparql.Binding.create ~width);
      1.
  | last :: rev_prefix ->
      let r, js =
        List.fold_left (eval_child st ~cands) (None, 1.) (List.rev rev_prefix)
      in
      let current () = Option.value r ~default:(Sparql.Bag.unit ~width) in
      let pass_down = candidates_from st cands r last in
      (match last with
      | Be_tree.Bgp [] -> (
          match r with
          | None ->
              Sparql.Bag.emit_accounted sink (Sparql.Binding.create ~width);
              js
          | Some r0 ->
              Sparql.Bag.replay r0 ~sink;
              js)
      | Be_tree.Bgp patterns -> (
          match r with
          | None ->
              let admitted = admit_candidates st pass_down patterns in
              Atomic.incr st.bgp_evals;
              if not (Engine.Candidates.is_empty admitted) then
                Atomic.incr st.pruned_bgps;
              let counted, stage = Sparql.Sink.counted ~name:"bgp" sink in
              Engine.Bgp_eval.eval_into st.env patterns ~candidates:admitted
                ~sink:counted;
              js *. float_of_int stage.Sparql.Sink.rows_in
          | Some r0 ->
              let bag, bgp_js = eval_bgp st patterns ~cands:pass_down in
              Sparql.Bag.join_into r0 bag ~sink;
              js *. bgp_js)
      | Be_tree.Group inner -> (
          match r with
          | None -> js *. eval_group_into st inner ~cands:pass_down ~sink
          | Some r0 ->
              let bag, inner_js = eval_group st inner ~cands:pass_down in
              Sparql.Bag.join_into r0 bag ~sink;
              js *. inner_js)
      | Be_tree.Union branches ->
          let results = eval_union_branches st branches ~cands:pass_down in
          let union_js =
            List.fold_left (fun acc (_, bjs) -> acc +. bjs) 0. results
          in
          (match r with
          | None ->
              List.iter (fun (bag, _) -> Sparql.Bag.replay bag ~sink) results
          | Some r0 ->
              let u =
                List.fold_left
                  (fun acc (bag, _) -> Sparql.Bag.union acc bag)
                  (Sparql.Bag.create ~width) results
              in
              observe st u;
              Sparql.Bag.join_into r0 u ~sink);
          js *. union_js
      | Be_tree.Values block ->
          let bag = values_bag st block in
          let vjs = float_of_int (Sparql.Bag.length bag) in
          (match r with
          | None -> Sparql.Bag.replay bag ~sink
          | Some r0 -> Sparql.Bag.join_into r0 bag ~sink);
          js *. vjs
      | Be_tree.Optional inner | Be_tree.Minus inner ->
          let left_universal =
            match r with
            | None -> []
            | Some bag -> Sparql.Bag.universal_columns bag
          in
          let pass_down =
            Engine.Candidates.restrict pass_down ~cols:left_universal
          in
          let bag, inner_js = eval_group st inner ~cands:pass_down in
          (match last with
          | Be_tree.Optional _ ->
              Sparql.Bag.left_outer_join_into (current ()) bag ~sink
          | _ -> Sparql.Bag.sparql_minus_into (current ()) bag ~sink);
          js *. Float.max inner_js 1.)

let make_state env ~threshold =
  { env; threshold; peak_rows = Atomic.make 0; bgp_evals = Atomic.make 0;
    pruned_bgps = Atomic.make 0 }

(* [total_rows] is the delta of the ambient governor ticket's produced-row
   counter across the evaluation (a snapshot, not a reset: the counter
   belongs to the whole execution, and nested or back-to-back evaluations
   under one ticket must not clobber each other). *)
let finish_stats st ~base_pushed ~join_space ~stages =
  {
    join_space;
    peak_rows = Atomic.get st.peak_rows;
    total_rows = Sparql.Governor.pushed (Sparql.Governor.current ()) - base_pushed;
    bgp_evals = Atomic.get st.bgp_evals;
    pruned_bgps = Atomic.get st.pruned_bgps;
    isect = Engine.Intersect.read ();
    stages;
  }

let eval env ~threshold tree =
  let st = make_state env ~threshold in
  let base_pushed = Sparql.Governor.pushed (Sparql.Governor.current ()) in
  Engine.Intersect.reset ();
  let bag, join_space = eval_group st tree ~cands:Engine.Candidates.empty in
  (bag, finish_stats st ~base_pushed ~join_space ~stages:[])

let eval_into env ~threshold ~sink tree =
  let st = make_state env ~threshold in
  let base_pushed = Sparql.Governor.pushed (Sparql.Governor.current ()) in
  Engine.Intersect.reset ();
  let join_space = ref 1. in
  (try
     join_space := eval_group_into st tree ~cands:Engine.Candidates.empty ~sink
   with Sparql.Sink.Stop -> ());
  Sparql.Sink.close sink;
  finish_stats st ~base_pushed ~join_space:!join_space
    ~stages:(Sparql.Sink.stages sink)
