(** The compile-once / execute-many layer: a prepared query captures
    everything about query processing that is execution-invariant — the
    parsed AST, the variable table, the projection, the BE-tree before
    and after the Algorithm-4 cost-driven transformation, the compiled
    triple patterns (memoized inside the evaluation context), and the
    transformation's wall-clock cost — so that the plan-level work of the
    paper (BE-tree + merge/inject + cost model) runs once and every
    subsequent {!execute} pays only for evaluation.

    What is deliberately {e not} captured: candidate pruning decisions
    (Section 6). Candidate sets are drawn from the intermediate results
    of the specific execution, so pruning is inherently per-execution;
    only the pruning {e rule} (the mode's threshold) is part of the
    prepared plan.

    A prepared query records the snapshot it was compiled under — the
    {!base_epoch}, the {!dict_size} and whether any constant compiled to
    [Missing] ({!has_missing}); {!Session} uses these to decide whether a
    cached plan is still valid for a later snapshot (same base and no
    Missing-sensitivity ⇒ valid, just retargeted to the newer delta). *)

(** The four configurations the paper evaluates (Section 7.1). *)
type mode = Base | TT | CP | Full

val mode_name : mode -> string
val all_modes : mode list

(** Why a run was killed — re-exported from {!Sparql.Governor}: the row
    budget (the paper's out-of-memory analogue), the wall-clock timeout,
    a cross-domain cancellation, or an injected chaos fault. *)
type failure = Sparql.Governor.failure =
  | Out_of_budget
  | Timeout
  | Cancelled
  | Injected_fault of string

val failure_name : failure -> string

(** Plan-cache provenance of one execution, attached by {!Session.run}:
    whether this plan came from the cache, plus the session's cumulative
    hit/miss counters at that point. *)
type cache_info = { hit : bool; hits : int; misses : int }

type report = {
  mode : mode;
  engine : Engine.Bgp_eval.engine;
  adaptive : bool;
      (** whether the adaptive execution layer (sideways prefilters,
          cardinality feedback, per-node engines) was active for this
          run — only ever true in Full mode *)
  query : Sparql.Ast.query;  (** the parsed query the report answers *)
  vartable : Sparql.Vartable.t;
  projection : string list;  (** variables the query projects *)
  bag : Sparql.Bag.t option;
      (** [None] when a limit was exceeded and partial results were not
          requested; with [~partial:true] a killed run still carries the
          rows that reached the terminal bag *)
  result_count : int option;
  failure : failure option;  (** why the run was killed, if it was *)
  partial : failure option;
      (** [Some f] iff [bag] holds a partial result of a run killed by
          [f] (exact prefix for streaming LIMIT-style pipelines,
          best-effort otherwise; always [None] for successful runs) *)
  pushed_rows : int;
      (** rows produced (materialized or streamed) by this execution, as
          charged against its governor ticket *)
  transform_ms : float;
      (** time spent in Algorithm 4 at prepare time (0 for Base/CP) *)
  exec_ms : float;  (** evaluation time of this execution *)
  eval_stats : Evaluator.stats option;
  tree_before : Be_tree.group;
  tree_after : Be_tree.group;
  epoch : int;  (** version of the snapshot this execution read *)
  cache : cache_info option;
      (** [None] when the run bypassed a session plan cache *)
}

type t
(** A prepared query. Immutable once built (the embedded plan memo only
    grows, under a mutex), so one value may be executed repeatedly and
    concurrently. *)

(** [prepare_snapshot ?mode ?engine ?stats ?text snap query] runs the
    whole plan pipeline against one immutable snapshot view: variable
    registration, BE-tree construction, the mode's cost-driven
    transformation, and eager compilation of every BGP of the
    transformed tree. [text] optionally records the source string for
    diagnostics. Defaults: [Full], [Wco]; omitted [stats] come from
    {!Rdf_store.Stats.of_snapshot} (no per-prepare rescan). *)
val prepare_snapshot :
  ?mode:mode ->
  ?engine:Engine.Bgp_eval.engine ->
  ?stats:Rdf_store.Stats.t ->
  ?text:string ->
  Rdf_store.Snapshot.t ->
  Sparql.Ast.query ->
  t

(** [prepare ?mode ?engine ?stats ?text store query] is
    {!prepare_snapshot} over the plain (empty-delta) view of [store]. *)
val prepare :
  ?mode:mode ->
  ?engine:Engine.Bgp_eval.engine ->
  ?stats:Rdf_store.Stats.t ->
  ?text:string ->
  Rdf_store.Triple_store.t ->
  Sparql.Ast.query ->
  t

(** [ticket ?row_budget ?timeout_ms ?faults ()] builds a governor ticket
    from the execution knobs (the deadline clock is armed now, at ticket
    creation). Pass it to {!execute} via [?governor] to retain a handle
    for cross-domain cancellation. *)
val ticket :
  ?row_budget:int ->
  ?timeout_ms:float ->
  ?faults:Sparql.Governor.fault list ->
  unit ->
  Sparql.Governor.t

(** [execute ?domains ?streaming ?row_budget ?timeout_ms ?partial
    ?governor ?cache p] runs the prepared plan once, under its own
    governor ticket — concurrent executions with different limits are
    fully isolated. The knobs are execution-time only and carry the same
    semantics as [Executor.run]: [domains] (default 1) retargets the
    shared plan to a domain pool, [streaming] (default [true]) pushes
    solution modifiers into a sink pipeline, [row_budget] and
    [timeout_ms] bound the run. [partial] (default [false]) makes a
    killed run return the rows materialized before the limit fired,
    marked in the report's [partial] field. [governor] supplies a
    pre-built ticket (e.g. one the caller wants to {!Sparql.Governor.cancel}
    from another domain); when given, [row_budget]/[timeout_ms] are
    ignored. [cache] is attached verbatim to the report (used by
    {!Session} to surface hit/miss provenance). [snapshot] pins the
    execution to a newer snapshot of the same lineage (the session's
    acquired view) — the shared plans are retargeted, not recompiled;
    [stats] supplies that snapshot's statistics (defaults to
    {!Rdf_store.Stats.of_snapshot}).

    [adaptive] (default [true]) enables the adaptive execution layer —
    sideways bitset prefilters into OPTIONAL/MINUS subtrees, per-node
    engine selection, and ≥10x-deviation re-plan marking — but only in
    Full mode; Base/TT/CP always run the paper's static baselines.
    [feedback] supplies the observed-cardinality cache consulted by (and
    updated with) each unpruned BGP's actual row count; {!Session} keeps
    one per cached plan so re-executions start from observed
    cardinalities. *)
val execute :
  ?domains:int ->
  ?streaming:bool ->
  ?adaptive:bool ->
  ?feedback:Feedback.t ->
  ?row_budget:int ->
  ?timeout_ms:float ->
  ?partial:bool ->
  ?governor:Sparql.Governor.t ->
  ?cache:cache_info ->
  ?snapshot:Rdf_store.Snapshot.t ->
  ?stats:Rdf_store.Stats.t ->
  t ->
  report

(** {1 Accessors} *)

val query : t -> Sparql.Ast.query
val vartable : t -> Sparql.Vartable.t
val projection : t -> string list
val mode : t -> mode
val engine : t -> Engine.Bgp_eval.engine
val tree_before : t -> Be_tree.group
val tree_after : t -> Be_tree.group
val transform_ms : t -> float

(** [store p] — the base store of the snapshot the plan was compiled
    against. *)
val store : t -> Rdf_store.Triple_store.t

(** [snapshot p] — the snapshot the plan was compiled against. *)
val snapshot : t -> Rdf_store.Snapshot.t

(** [epoch p] — the snapshot version the plan was compiled under. *)
val epoch : t -> int

(** {2 Cache-validation inputs} *)

(** [base_epoch p] — the base store epoch at compile time; any change
    (compaction, bulk rebuild) invalidates the plan wholesale. *)
val base_epoch : t -> int

(** [dict_size p] — dictionary size at compile time; only consulted
    when {!has_missing} holds. *)
val dict_size : t -> int

(** [has_missing p] — whether some constant compiled to [Missing];
    such plans must be recompiled once the dictionary grows (the
    constant may exist now). *)
val has_missing : t -> bool

(** [text p] — the source text, when prepared from one. *)
val text : t -> string option
