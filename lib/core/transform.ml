(* Observability: transformation decisions are logged on the sparql_uo
   source at debug level (enable with Logs.Src.set_level). *)
let log_src = Logs.Src.create "sparql_uo.transform" ~doc:"BE-tree transformations"

module Log = (val Logs.src_log log_src : Logs.LOG)

let nth_child (g : Be_tree.group) i = List.nth g.children i

let nonempty_bgp = function
  | Be_tree.Bgp (_ :: _ as b) -> Some b
  | _ -> None

(* Top-level non-empty BGP children of a group. *)
let bgp_children (g : Be_tree.group) =
  List.filter_map nonempty_bgp g.children

let has_coalescable_bgp_child b (g : Be_tree.group) =
  List.exists (Engine.Bgp.coalescable b) (bgp_children g)

let certain_vars = Be_tree.certain_vars

(* The indices of the top-level BGP children that coalescing [patterns]
   into [g] would absorb (transitive closure, as in {!coalesce_into}). *)
let absorbed_indices (patterns : Engine.Bgp.t) (g : Be_tree.group) =
  let children = Array.of_list g.children in
  let absorbed = Array.make (Array.length children) false in
  let combined = ref patterns in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun i node ->
        if not absorbed.(i) then
          match nonempty_bgp node with
          | Some b when Engine.Bgp.coalescable !combined b ->
              absorbed.(i) <- true;
              combined := !combined @ b;
              progress := true
          | _ -> ())
      children
  done;
  absorbed

(* Inserting [patterns] as the (coalesced) leftmost child of [g] places
   them — and any BGP children they absorb — in front of every OPTIONAL
   child of [g], i.e. into those OPTIONALs' left sides. That only
   preserves semantics when each OPTIONAL's variables shared with the
   inserted/moved patterns were already certainly bound by its original
   left side (otherwise an extension can be flipped into a spuriously
   surviving unextended row, or vice versa). The paper's transformations
   assume this implicitly (its workloads are well-designed); we check. *)
let insertion_safe (patterns : Engine.Bgp.t) (g : Be_tree.group) =
  let children = Array.of_list g.children in
  let absorbed = absorbed_indices patterns g in
  let safe = ref true in
  (* The group's FILTERs gain scope over the inserted patterns' variables:
     a filter mentioning a variable of P1 that the group does not already
     certainly bind would change meaning (e.g. from error/reject over an
     unbound variable to a real comparison). *)
  let pvars = Engine.Bgp.vars patterns in
  let certain_here = certain_vars g in
  List.iter
    (fun e ->
      let fvars = Sparql.Expr.vars ~pattern_vars:Sparql.Ast.group_vars e in
      let untouched = List.for_all (fun v -> not (List.mem v pvars)) fvars in
      let already_bound = List.for_all (fun v -> List.mem v certain_here) fvars in
      if not (untouched || already_bound) then safe := false)
    g.filters;
  let left_vars = ref [] in
  Array.iteri
    (fun j node ->
      (match node with
      | Be_tree.Optional inner | Be_tree.Minus inner ->
          let ovars = Be_tree.vars inner in
          (* Variables newly placed before this OPTIONAL: P1's own, plus
             those of absorbed BGPs that originally sat to its right. *)
          let moved = ref (Engine.Bgp.vars patterns) in
          Array.iteri
            (fun i node ->
              if i > j && absorbed.(i) then
                match nonempty_bgp node with
                | Some b -> moved := !moved @ Engine.Bgp.vars b
                | None -> ())
            children;
          if
            List.exists
              (fun v -> List.mem v !moved && not (List.mem v !left_vars))
              ovars
          then safe := false
      | _ -> ());
      let certain =
        match node with
        | Be_tree.Bgp b -> Engine.Bgp.vars b
        | Be_tree.Group inner -> certain_vars inner
        | Be_tree.Optional _ | Be_tree.Minus _ -> []
        | Be_tree.Values _ | Be_tree.Union _ ->
            certain_vars { g with children = [ node ] }
      in
      left_vars := !left_vars @ certain)
    children;
  !safe

(* OPTIONAL and MINUS are barriers: conjuncts may not move across them. *)
let optional_between (g : Be_tree.group) i j =
  let lo = min i j and hi = max i j in
  List.exists
    (fun k ->
      match nth_child g k with
      | Be_tree.Optional _ | Be_tree.Minus _ -> true
      | _ -> false)
    (List.init (max 0 (hi - lo - 1)) (fun d -> lo + 1 + d))

let can_merge (g : Be_tree.group) ~p1 ~union =
  p1 <> union
  && p1 >= 0 && union >= 0
  && p1 < List.length g.children
  && union < List.length g.children
  &&
  match (nonempty_bgp (nth_child g p1), nth_child g union) with
  | Some b, Be_tree.Union branches ->
      List.exists (has_coalescable_bgp_child b) branches
      && not (optional_between g p1 union)
      && List.for_all (insertion_safe b) branches
  | _ -> false

(* Insert [patterns] as the leftmost child of [g], then coalesce to
   maximality: every top-level BGP child transitively connected to the
   inserted patterns is absorbed into one node (Definitions 9/10, step 2). *)
let coalesce_into (patterns : Engine.Bgp.t) (g : Be_tree.group) : Be_tree.group =
  let absorbed = ref patterns in
  let remaining = ref g.children in
  let progress = ref true in
  while !progress do
    progress := false;
    remaining :=
      List.filter
        (fun node ->
          match nonempty_bgp node with
          | Some b when Engine.Bgp.coalescable !absorbed b ->
              absorbed := !absorbed @ b;
              progress := true;
              false
          | _ -> true)
        !remaining
  done;
  { g with children = Be_tree.Bgp !absorbed :: !remaining }

let replace_child (g : Be_tree.group) i node =
  { g with children = List.mapi (fun k c -> if k = i then node else c) g.children }

let apply_merge (g : Be_tree.group) ~p1 ~union =
  if not (can_merge g ~p1 ~union) then
    invalid_arg "Transform.apply_merge: conditions not met";
  let patterns =
    match nonempty_bgp (nth_child g p1) with
    | Some b -> b
    | None -> assert false
  in
  let branches =
    match nth_child g union with
    | Be_tree.Union branches -> branches
    | _ -> assert false
  in
  let merged = Be_tree.Union (List.map (coalesce_into patterns) branches) in
  let g = replace_child g union merged in
  (* The merged BGP leaves an empty node at its original position. *)
  replace_child g p1 (Be_tree.Bgp [])

let can_inject (g : Be_tree.group) ~p1 ~opt =
  p1 >= 0 && opt > p1
  && opt < List.length g.children
  &&
  match (nonempty_bgp (nth_child g p1), nth_child g opt) with
  | Some b, Be_tree.Optional inner ->
      has_coalescable_bgp_child b inner && insertion_safe b inner
  | _ -> false

let apply_inject (g : Be_tree.group) ~p1 ~opt =
  if not (can_inject g ~p1 ~opt) then
    invalid_arg "Transform.apply_inject: conditions not met";
  let patterns =
    match nonempty_bgp (nth_child g p1) with
    | Some b -> b
    | None -> assert false
  in
  let inner =
    match nth_child g opt with
    | Be_tree.Optional inner -> inner
    | _ -> assert false
  in
  replace_child g opt (Be_tree.Optional (coalesce_into patterns inner))

(* --- Cost-driven drivers (Algorithms 2-4) ------------------------------- *)

(* The Section 6 special case: transformation on a BGP that is the only
   pattern to the left of the target node is equivalent to candidate
   pruning; Full mode skips it to avoid paying the transformation twice. *)
let cp_equivalent (g : Be_tree.group) ~p1 ~target =
  p1 < target
  && List.for_all
       (fun k ->
         k = p1
         ||
         match nth_child g k with
         | Be_tree.Bgp [] -> true
         | Be_tree.Bgp _ | Be_tree.Group _ | Be_tree.Union _
         | Be_tree.Values _ ->
             false
         | Be_tree.Optional _ | Be_tree.Minus _ -> true)
       (List.init target (fun k -> k))

(* [skip_cp_equivalent] identifies the Full configuration — the only
   transforming mode that also runs candidate pruning at execution time —
   so it doubles as the switch for pruned OPTIONAL pricing: Full prices an
   OPTIONAL child as prefiltered by its left side, TT as standalone. *)
let delta_cost env ~pruned before after =
  Cost_model.two_level_cost ~pruned env after
  -. Cost_model.two_level_cost ~pruned env before

let single_level env ?(skip_cp_equivalent = false) (g : Be_tree.group) =
  let current = ref g in
  let n = List.length g.children in
  for p1 = 0 to n - 1 do
    let g = !current in
    match nonempty_bgp (nth_child g p1) with
    | None -> ()
    | Some b ->
        (* One of Algorithm 3's unspecified "constraints": only a BGP at
           least as selective as the UNION it would enter is worth
           merging — the paper's Figure 7 shows merging a low-selectivity
           BGP only duplicates work. *)
        let selective_enough u =
          match nth_child g u with
          | Be_tree.Union _ as union_node ->
              Cost_model.bgp_card env b
              <= Float.max 1. (Cost_model.node_card env union_node)
          | _ -> false
        in
        (* DecideMerge: the best (most negative Δ-cost) sibling UNION. *)
        let best_merge = ref None in
        for u = 0 to n - 1 do
          if
            can_merge g ~p1 ~union:u
            && selective_enough u
            && not (skip_cp_equivalent && cp_equivalent g ~p1 ~target:u)
          then begin
            let candidate = apply_merge g ~p1 ~union:u in
            let delta = delta_cost env ~pruned:skip_cp_equivalent g candidate in
            match !best_merge with
            | Some (best_delta, _) when best_delta <= delta -> ()
            | _ -> if delta < 0. then best_merge := Some (delta, candidate)
          end
        done;
        (match !best_merge with
        | Some (delta, transformed) ->
            Log.debug (fun m ->
                m "merge accepted at child %d (delta-cost %.4g)" p1 delta);
            current := transformed
        | None ->
            (* DecideInject: each OPTIONAL to the right, independently. *)
            for o = p1 + 1 to n - 1 do
              let g = !current in
              if
                can_inject g ~p1 ~opt:o
                && not (skip_cp_equivalent && cp_equivalent g ~p1 ~target:o)
              then begin
                let candidate = apply_inject g ~p1 ~opt:o in
                let delta =
                  delta_cost env ~pruned:skip_cp_equivalent g candidate
                in
                if delta < 0. then begin
                  Log.debug (fun m ->
                      m "inject accepted: child %d into OPTIONAL %d \
                         (delta-cost %.4g)" p1 o delta);
                  current := candidate
                end
              end
            done)
  done;
  !current

let rec multi_level env ?(skip_cp_equivalent = false) (g : Be_tree.group) =
  let children =
    List.map
      (fun node ->
        match node with
        | Be_tree.Bgp _ | Be_tree.Values _ -> node
        | Be_tree.Group inner ->
            Be_tree.Group (multi_level env ~skip_cp_equivalent inner)
        | Be_tree.Optional inner ->
            Be_tree.Optional (multi_level env ~skip_cp_equivalent inner)
        | Be_tree.Minus inner ->
            Be_tree.Minus (multi_level env ~skip_cp_equivalent inner)
        | Be_tree.Union gs ->
            Be_tree.Union (List.map (multi_level env ~skip_cp_equivalent) gs))
      g.children
  in
  single_level env ~skip_cp_equivalent { g with children }

(* [timed_multi_level] — Algorithm 4 with its wall-clock cost measured,
   the number the prepare phase records once and every re-execution of a
   prepared query then skips. *)
let timed_multi_level env ?skip_cp_equivalent g =
  let t0 = Unix.gettimeofday () in
  let transformed = multi_level env ?skip_cp_equivalent g in
  (transformed, (Unix.gettimeofday () -. t0) *. 1000.)
