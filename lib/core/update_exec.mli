(** Applying SPARQL 1.1 Update operations to a store.

    The store is an immutable bulk-indexed structure, so updates follow
    bulk-rebuild semantics: each application returns a *new* store with
    the indexes rebuilt (appropriate for the analytical workloads this
    engine targets; an OLTP delta layer is out of scope).

    WHERE clauses are evaluated through the full SPARQL-UO optimizer
    (mode [Full]); templates are instantiated per solution, dropping
    instantiations that are non-ground or structurally invalid (literal
    subject/predicate), per the SPARQL Update spec. *)

(** [apply store update] — one operation. *)
val apply :
  ?engine:Engine.Bgp_eval.engine ->
  Rdf_store.Triple_store.t ->
  Sparql.Ast.update ->
  Rdf_store.Triple_store.t

(** [apply_all store updates] — a sequence, left to right (each operation
    sees its predecessors' effects). *)
val apply_all :
  ?engine:Engine.Bgp_eval.engine ->
  Rdf_store.Triple_store.t ->
  Sparql.Ast.update list ->
  Rdf_store.Triple_store.t

(** [run store text] parses and applies an update string. *)
val run :
  ?engine:Engine.Bgp_eval.engine ->
  Rdf_store.Triple_store.t ->
  string ->
  Rdf_store.Triple_store.t

(** {1 Session-threaded updates}

    The same operations applied through a {!Session}: the rebuilt store
    is swapped into the session, whose fresh epoch invalidates every
    cached plan and the statistics memo. *)

(** [apply_session session update] — one operation against the session's
    current store. *)
val apply_session :
  ?engine:Engine.Bgp_eval.engine -> Session.t -> Sparql.Ast.update -> unit

(** [run_session session text] parses and applies an update string, each
    operation seeing its predecessors' effects. *)
val run_session : ?engine:Engine.Bgp_eval.engine -> Session.t -> string -> unit
