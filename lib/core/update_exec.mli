(** Applying SPARQL 1.1 Update operations.

    Two execution paths:

    - {b Bulk rebuild} ({!apply}, {!apply_all}, {!run}): the plain-store
      path — each application returns a *new* store with the indexes
      rebuilt from scratch. Appropriate for one-shot batch loads.
    - {b Transactional} ({!apply_session}, {!run_session}): the serving
      path — each operation buffers its writes in an MVCC transaction on
      the session's store lineage and commits them atomically as a delta.
      Concurrent readers holding a pre-commit snapshot are untouched; no
      index rebuild, no plan-cache flush.

    WHERE clauses are evaluated through the full SPARQL-UO optimizer
    (mode [Full]); on the session path they additionally run through the
    session's plan cache (keyed by a structural fingerprint of the WHERE
    group), so a repeated update shape re-plans nothing. Templates are
    instantiated per solution, dropping instantiations that are
    non-ground or structurally invalid (literal subject/predicate), per
    the SPARQL Update spec. *)

(** [apply store update] — one operation, bulk-rebuild semantics. *)
val apply :
  ?engine:Engine.Bgp_eval.engine ->
  Rdf_store.Triple_store.t ->
  Sparql.Ast.update ->
  Rdf_store.Triple_store.t

(** [apply_all store updates] — a sequence, left to right (each operation
    sees its predecessors' effects). *)
val apply_all :
  ?engine:Engine.Bgp_eval.engine ->
  Rdf_store.Triple_store.t ->
  Sparql.Ast.update list ->
  Rdf_store.Triple_store.t

(** [run store text] parses and applies an update string. *)
val run :
  ?engine:Engine.Bgp_eval.engine ->
  Rdf_store.Triple_store.t ->
  string ->
  Rdf_store.Triple_store.t

(** {1 Session-threaded (transactional) updates}

    One operation = one transaction. The WHERE clause is evaluated once
    against the pre-update snapshot; DELETE and INSERT templates are
    instantiated from that same evaluation, and the writes publish
    atomically ({!Session.commit}). Within a [Modify], deletes fold
    before inserts. Sequenced operations ({!run_session}) each see their
    predecessors' committed effects.

    On a durable session ({!Session.open_dir}) each commit is appended
    to the write-ahead log before it publishes and made durable per the
    session's sync policy, so a crash between sequenced operations
    recovers a prefix of {e whole} operations — never a partially
    applied one. *)

(** [apply_session session update] — one operation as one transaction on
    the session's MVCC lineage. *)
val apply_session :
  ?engine:Engine.Bgp_eval.engine -> Session.t -> Sparql.Ast.update -> unit

(** [run_session session text] parses and applies an update string, one
    transaction per operation. *)
val run_session : ?engine:Engine.Bgp_eval.engine -> Session.t -> string -> unit
