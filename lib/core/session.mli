(** A query session: the serving-path owner of a store handle, its
    statistics, and a bounded LRU cache of prepared plans.

    The cache is keyed by [(query text, mode, engine)] and validated
    against the store's epoch ({!Rdf_store.Triple_store.epoch}) on every
    lookup, so plans compiled before a data mutation — a SPARQL Update
    swapping in a rebuilt store, or a VALUES block interning a fresh
    dictionary term — are transparently re-prepared. Statistics are
    computed at most once per epoch (and at most once per store value
    process-wide, via {!Rdf_store.Stats.cached}), eliminating the
    historical hidden full-store scan per query.

    All operations are thread-safe; concurrent {!run}s from multiple
    domains share one cache. The global row-budget/deadline knobs are
    per-process, so concurrent runs should either all use the same
    [row_budget]/[timeout_ms] or none. *)

type t

(** [create ?cache_capacity store] — [cache_capacity] (default 64) bounds
    the number of cached plans; beyond it the least recently used entry
    is evicted. Raises [Invalid_argument] on a non-positive capacity. *)
val create : ?cache_capacity:int -> Rdf_store.Triple_store.t -> t

(** [store t] is the current store handle. *)
val store : t -> Rdf_store.Triple_store.t

(** [set_store t store] swaps the handle (the bulk-rebuild result of a
    SPARQL Update), clearing the plan cache and statistics memo. The
    rebuilt store carries a fresh epoch, so even entries observed through
    stale references cannot validate. No-op if [store] is the current
    handle. *)
val set_store : t -> Rdf_store.Triple_store.t -> unit

(** [epoch t] is the current store epoch. *)
val epoch : t -> int

(** [stats t] — the store's statistics, computed once per epoch and
    reused by every prepare in this session. *)
val stats : t -> Rdf_store.Stats.t

(** [prepare ?mode ?engine t text] returns the cached plan for
    [(text, mode, engine)] at the current epoch, preparing and caching
    it on a miss. Defaults: [Full], [Wco]. *)
val prepare :
  ?mode:Prepared.mode -> ?engine:Engine.Bgp_eval.engine -> t -> string ->
  Prepared.t

(** [run ?mode ?engine ?domains ?streaming ?row_budget ?timeout_ms t
    text] — {!prepare} (through the cache) followed by
    {!Prepared.execute}. The report's [cache] field records whether this
    run hit, plus the session's cumulative counters. *)
val run :
  ?mode:Prepared.mode ->
  ?engine:Engine.Bgp_eval.engine ->
  ?domains:int ->
  ?streaming:bool ->
  ?row_budget:int ->
  ?timeout_ms:float ->
  t ->
  string ->
  Prepared.report

(** [invalidate t] drops every cached plan and the statistics memo. *)
val invalidate : t -> unit

(** {1 Cache observability (surfaced in [explain] and benchmarks)} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** [cache_length t] — number of currently cached plans. *)
val cache_length : t -> int

val capacity : t -> int
