(** A query session: the serving-path owner of a store handle, its
    statistics, and a bounded LRU cache of prepared plans.

    The cache is keyed by [(query text, mode, engine)] and validated
    against the store's epoch ({!Rdf_store.Triple_store.epoch}) on every
    lookup, so plans compiled before a data mutation — a SPARQL Update
    swapping in a rebuilt store, or a VALUES block interning a fresh
    dictionary term — are transparently re-prepared. Statistics are
    computed at most once per epoch (and at most once per store value
    process-wide, via {!Rdf_store.Stats.cached}), eliminating the
    historical hidden full-store scan per query.

    All operations are thread-safe; concurrent {!run}s from multiple
    domains share one cache. Each run executes under its own
    {!Sparql.Governor} ticket, so concurrent runs with different
    [row_budget]/[timeout_ms] limits are fully isolated from each other;
    the session tracks in-flight tickets so {!cancel} can kill every run
    currently executing, from any domain. *)

type t

(** [create ?cache_capacity store] — [cache_capacity] (default 64) bounds
    the number of cached plans; beyond it the least recently used entry
    is evicted. Raises [Invalid_argument] on a non-positive capacity. *)
val create : ?cache_capacity:int -> Rdf_store.Triple_store.t -> t

(** [store t] is the current store handle. *)
val store : t -> Rdf_store.Triple_store.t

(** [set_store t store] swaps the handle (the bulk-rebuild result of a
    SPARQL Update), clearing the plan cache and statistics memo. The
    rebuilt store carries a fresh epoch, so even entries observed through
    stale references cannot validate. No-op if [store] is the current
    handle. *)
val set_store : t -> Rdf_store.Triple_store.t -> unit

(** [epoch t] is the current store epoch. *)
val epoch : t -> int

(** [stats t] — the store's statistics, computed once per epoch and
    reused by every prepare in this session. *)
val stats : t -> Rdf_store.Stats.t

(** [prepare ?mode ?engine t text] returns the cached plan for
    [(text, mode, engine)] at the current epoch, preparing and caching
    it on a miss. Defaults: [Full], [Wco]. *)
val prepare :
  ?mode:Prepared.mode -> ?engine:Engine.Bgp_eval.engine -> t -> string ->
  Prepared.t

(** [run ?mode ?engine ?domains ?streaming ?row_budget ?timeout_ms
    ?partial ?retries ?faults t text] — {!prepare} (through the cache)
    followed by {!Prepared.execute}, under a fresh governor ticket
    registered with the session for the duration of the run (so {!cancel}
    can reach it). The report's [cache] field records whether this run
    hit, plus the session's cumulative counters.

    [partial] (default [false]): a killed run returns the rows
    materialized before the limit fired, marked in the report.
    [retries] (default 0) bounds retry-with-fresh-budget: a transient
    failure (anything but [Cancelled]) re-runs with a fresh ticket up to
    [retries] times; the final attempt's report is returned either way.
    [faults] arms a chaos schedule on each attempt's ticket — fault
    countdowns are shared across attempts, so a one-shot fault stays
    spent and the retry runs clean.

    A kill during the {e prepare} phase (only injected faults fire there
    — the budget and deadline are execution-side) has no report to
    return: after retries are exhausted it escapes as
    [Sparql.Governor.Kill]. *)
val run :
  ?mode:Prepared.mode ->
  ?engine:Engine.Bgp_eval.engine ->
  ?domains:int ->
  ?streaming:bool ->
  ?row_budget:int ->
  ?timeout_ms:float ->
  ?partial:bool ->
  ?retries:int ->
  ?faults:Sparql.Governor.fault list ->
  t ->
  string ->
  Prepared.report

(** {1 Cancellation} *)

(** [cancel t] cancels every run currently in flight on this session
    (from any domain): each active ticket's cancellation flag is set, and
    the runs observe it at their next stride check, reporting
    [failure = Some Cancelled]. Returns the number of runs cancelled.
    Runs started after this call are unaffected. *)
val cancel : t -> int

(** [active_runs t] — the number of governor tickets currently registered
    (in-flight runs). Zero when the session is quiescent: every run
    unregisters its ticket on all exit paths. *)
val active_runs : t -> int

(** [invalidate t] drops every cached plan and the statistics memo. *)
val invalidate : t -> unit

(** {1 Cache observability (surfaced in [explain] and benchmarks)} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** [cache_length t] — number of currently cached plans. *)
val cache_length : t -> int

val capacity : t -> int
