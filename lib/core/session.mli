(** A long-lived query session: the writer handle of an MVCC store
    lineage plus a bounded plan cache (LRU over (text, mode, engine))
    and a statistics memo, shared by every run.

    {b Snapshot pinning.} Every {!run} acquires one snapshot (an O(1)
    atomic read of the current published view) and uses it for both
    cache validation and execution — a concurrent {!commit} never
    changes what an in-flight query reads.

    {b Invalidation.} A cached plan stays valid across delta commits:
    dictionary ids are append-only, so compiled constants survive, and
    execution simply retargets the plan to the pinned snapshot. A plan
    is dropped only when (a) the base epoch changed — compaction or
    {!set_store} — or (b) it compiled a constant to [Missing] and the
    dictionary has since grown (the constant may now exist). Statistics
    are memoized per snapshot version.

    The session serializes cache/memo access behind a mutex, and the
    MVCC layer serializes writers; readers never block. Concurrent
    {!run}s from multiple domains share one cache. Each run executes
    under its own {!Sparql.Governor} ticket, so concurrent runs with
    different limits are fully isolated; the session tracks in-flight
    tickets so {!cancel} can kill every run currently executing, from
    any domain. *)

type t

(** [create ?cache_capacity ?compact_threshold store] opens a session
    over [store] with a plan cache of at most [cache_capacity] entries
    (default 64; raises [Invalid_argument] on a non-positive capacity).
    [compact_threshold] is forwarded to {!Rdf_store.Mvcc.create}: once
    the live delta reaches that many rows, a commit folds it into a
    fresh base epoch. *)
val create :
  ?cache_capacity:int ->
  ?compact_threshold:int ->
  Rdf_store.Triple_store.t ->
  t

(** [of_mvcc mvcc] opens a session over an existing MVCC lineage —
    the durable path ({!Rdf_store.Mvcc.open_dir}) hands its handle
    here. Raises [Invalid_argument] on a non-positive cache
    capacity. *)
val of_mvcc : ?cache_capacity:int -> Rdf_store.Mvcc.t -> t

(** [open_dir dir] opens (or initializes) a durable session whose
    commits are written ahead to a log in [dir] — see
    {!Rdf_store.Mvcc.open_dir} for the recovery contract. Returns the
    session plus the recovery summary (how many transactions were
    replayed, how many torn bytes truncated). Raises
    {!Rdf_store.Wal.Unrecoverable} when the directory needs operator
    intervention. *)
val open_dir :
  ?cache_capacity:int ->
  ?compact_threshold:int ->
  ?policy:Rdf_store.Wal.sync_policy ->
  ?init:(unit -> Rdf_store.Triple_store.t) ->
  string ->
  t * Rdf_store.Wal.recovery

(** [mvcc t] — the underlying MVCC handle (e.g. for
    {!Rdf_store.Mvcc.apply} or direct transaction plumbing). *)
val mvcc : t -> Rdf_store.Mvcc.t

(** [snapshot t] acquires the current consistent view. Wait-free. *)
val snapshot : t -> Rdf_store.Snapshot.t

(** [store t] — the base store of the current snapshot. *)
val store : t -> Rdf_store.Triple_store.t

(** [set_store t store] replaces the whole lineage with [store] (a bulk
    rebuild) and invalidates the plan cache and statistics memo. *)
val set_store : t -> Rdf_store.Triple_store.t -> unit

(** [epoch t] — the current snapshot version. *)
val epoch : t -> int

(** [stats t] — statistics for the current snapshot, memoized by
    snapshot version (and per base store process-wide, via
    {!Rdf_store.Stats.cached}). *)
val stats : t -> Rdf_store.Stats.t

(** {1 Transactions}

    Thin veneer over {!Rdf_store.Mvcc}: buffer triple-level writes,
    then publish them atomically. Readers (including this session's own
    in-flight runs) keep their pinned snapshot; runs started after the
    commit see all of it. Committing does {e not} flush the plan cache
    — cached plans revalidate per lookup and retarget to the new
    snapshot. *)

val begin_txn : t -> Rdf_store.Mvcc.txn

(** [commit t txn] publishes the transaction's effects as a new
    snapshot version (no-op for an empty transaction). May trigger
    automatic compaction when the delta crosses the session's
    threshold. *)
val commit : t -> Rdf_store.Mvcc.txn -> unit

val abort : t -> Rdf_store.Mvcc.txn -> unit

(** [compact t] eagerly folds the current delta into a fresh base
    epoch. In-flight readers keep their old view; the plan cache lazily
    drops stale entries on their next lookup. *)
val compact : t -> unit

(** [checkpoint t] — {!compact}, but on a durable session it also
    rotates the write-ahead log when the delta is empty, bounding
    recovery replay to zero transactions. *)
val checkpoint : t -> unit

(** [sync t] forces every appended commit to durable storage (a no-op
    on in-memory sessions; useful before exit under the
    [Never]/[Interval] sync policies). *)
val sync : t -> unit

(** {1 Retry backoff}

    Delay source for {!run}'s transient-failure retries: capped
    decorrelated jitter (each delay is uniform in [[base, 3·previous]],
    clamped to [cap]), deterministic under a fixed [seed]. *)

type backoff

(** [backoff ()] — fresh state. Defaults: [base_ms = 1.0],
    [cap_ms = 50.0], a fixed seed (so two sessions built with the same
    arguments produce the same delay sequence), and [sleep] backed by
    [Unix.sleepf]. Pass [~sleep] to capture or suppress the waits in
    tests. *)
val backoff :
  ?base_ms:float ->
  ?cap_ms:float ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  unit ->
  backoff

(** [backoff_delay b] draws the next delay (milliseconds), advancing
    [b]'s state. Exposed for testing the schedule without sleeping. *)
val backoff_delay : backoff -> float

(** {1 Preparing and running queries} *)

(** [prepare ?mode ?engine t text] returns the cached plan for
    [(text, mode, engine)] valid under the current snapshot, preparing
    and caching it on a miss. Defaults: [Full], [Wco]. *)
val prepare :
  ?mode:Prepared.mode ->
  ?engine:Engine.Bgp_eval.engine ->
  t ->
  string ->
  Prepared.t

(** [feedback ?mode ?engine t text] — the observed-cardinality cache
    attached to the cached plan for [(text, mode, engine)], if one is
    currently cached. Each cached plan owns one: executions record each
    unpruned BGP's actual row count into it, and later executions of the
    same plan start their estimates (candidate admission, cost pricing)
    from those observations. Dropped together with the plan on eviction,
    staleness or {!invalidate}. *)
val feedback :
  ?mode:Prepared.mode ->
  ?engine:Engine.Bgp_eval.engine ->
  t ->
  string ->
  Feedback.t option

(** [run ?mode ?engine ?domains ?streaming ?row_budget ?timeout_ms
    ?partial ?retries ?faults t text] — {!prepare} (through the cache)
    followed by {!Prepared.execute}, both against one snapshot pinned
    at the start of the attempt, under a fresh governor ticket
    registered with the session for the duration of the run (so
    {!cancel} can reach it). The report's [cache] field records whether
    this run hit, plus the session's cumulative counters; its [epoch]
    field is the pinned snapshot's version.

    [partial] (default [false]): a killed run returns the rows
    materialized before the limit fired, marked in the report.
    [retries] (default 0) bounds retry-with-fresh-budget: a transient
    failure (anything but [Cancelled]) re-runs with a fresh ticket up
    to [retries] times; the final attempt's report is returned either
    way. Each retry first waits a delay drawn from [backoff] (default:
    a fresh {!backoff}[ ()] — capped decorrelated jitter), so hammering
    a contended store is bounded; pass one explicitly to control or
    observe the schedule. [faults] arms a chaos schedule on each
    attempt's ticket —
    fault countdowns are shared across attempts, so a one-shot fault
    stays spent and the retry runs clean.

    A kill during the {e prepare} phase (only injected faults fire
    there — the budget and deadline are execution-side) has no report
    to return: after retries are exhausted it escapes as
    [Sparql.Governor.Kill].

    [adaptive] (default [true]) controls the adaptive execution layer
    (Full mode only — see {!Prepared.execute}); the run consults and
    updates the cached plan's {!feedback}, so repeated runs of one query
    start from observed cardinalities. *)
val run :
  ?mode:Prepared.mode ->
  ?engine:Engine.Bgp_eval.engine ->
  ?domains:int ->
  ?streaming:bool ->
  ?adaptive:bool ->
  ?row_budget:int ->
  ?timeout_ms:float ->
  ?partial:bool ->
  ?retries:int ->
  ?faults:Sparql.Governor.fault list ->
  ?backoff:backoff ->
  t ->
  string ->
  Prepared.report

(** [run_query_ast t ~key query] is {!run} for an already-built query
    AST, cached under the synthetic key [key]. The caller must ensure
    [key] uniquely determines [query] — see {!Update_exec}, which
    routes UPDATE WHERE-clauses through the session cache this way. *)
val run_query_ast :
  ?mode:Prepared.mode ->
  ?engine:Engine.Bgp_eval.engine ->
  ?domains:int ->
  ?streaming:bool ->
  ?adaptive:bool ->
  ?row_budget:int ->
  ?timeout_ms:float ->
  ?partial:bool ->
  ?retries:int ->
  ?faults:Sparql.Governor.fault list ->
  ?backoff:backoff ->
  t ->
  key:string ->
  Sparql.Ast.query ->
  Prepared.report

(** {1 Cancellation} *)

(** [cancel t] cancels every run currently in flight on this session
    (from any domain): each active ticket's cancellation flag is set,
    and the runs observe it at their next stride check, reporting
    [failure = Some Cancelled]. Returns the number of runs cancelled.
    Runs started after this call are unaffected. *)
val cancel : t -> int

(** [active_runs t] — the number of governor tickets currently
    registered (in-flight runs). Zero when the session is quiescent:
    every run unregisters its ticket on all exit paths. *)
val active_runs : t -> int

(** [invalidate t] drops every cached plan and the statistics memo. *)
val invalidate : t -> unit

(** {1 Cache observability (surfaced in [explain] and benchmarks)} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** [cache_length t] — number of currently cached plans. *)
val cache_length : t -> int

val capacity : t -> int
