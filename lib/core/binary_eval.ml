type stats = { peak_rows : int; total_rows : int }

let eval env algebra =
  let store = Engine.Bgp_eval.store env in
  let table = Engine.Bgp_eval.vartable env in
  let width = Engine.Bgp_eval.width env in
  let peak = ref 0 in
  let observe bag =
    peak := max !peak (Sparql.Bag.length bag);
    bag
  in
  let lookup row v =
    match Sparql.Vartable.find table v with
    | None -> None
    | Some col ->
        if Sparql.Binding.is_bound row col then
          Some (Rdf_store.Snapshot.decode_term store row.(col))
        else None
  in
  let dict = Rdf_store.Snapshot.dictionary store in
  let rec go = function
    | Sparql.Algebra.Unit -> Sparql.Bag.unit ~width
    | Sparql.Algebra.Triple tp ->
        let compiled = Engine.Compiled.compile store table tp in
        observe
          (Engine.Hash_join.scan_pattern store ~width compiled
             ~candidates:Engine.Candidates.empty)
    | Sparql.Algebra.And (p1, p2) -> observe (Sparql.Bag.join (go p1) (go p2))
    | Sparql.Algebra.Union (p1, p2) ->
        observe (Sparql.Bag.union (go p1) (go p2))
    | Sparql.Algebra.Optional (p1, p2) ->
        observe (Sparql.Bag.left_outer_join (go p1) (go p2))
    | Sparql.Algebra.Minus (p1, p2) ->
        observe (Sparql.Bag.sparql_minus (go p1) (go p2))
    | Sparql.Algebra.Values block ->
        let bag = Sparql.Bag.create ~width in
        let cols =
          List.map (Sparql.Vartable.id table) block.Sparql.Ast.vars
        in
        List.iter
          (fun row ->
            let fresh = Sparql.Binding.create ~width in
            List.iter2
              (fun col cell ->
                match cell with
                | Some term ->
                    fresh.(col) <- Rdf_store.Dictionary.encode dict term
                | None -> ())
              cols row;
            Sparql.Bag.push bag fresh)
          block.Sparql.Ast.rows;
        observe bag
    | Sparql.Algebra.Filter (e, p) ->
        observe
          (Sparql.Bag.filter (go p) ~f:(fun row ->
               Sparql.Expr.eval ~lookup:(lookup row)
                 ~exists:(exists_of row) e))
    | Sparql.Algebra.Group p -> go p
  and exists_of row group =
    (* Parameterize the EXISTS pattern with the row and recurse. *)
    let substituted =
      Sparql.Ast.substitute_group group ~lookup:(lookup row)
    in
    let bag = go (Sparql.Algebra.of_group substituted) in
    not (Sparql.Bag.is_empty bag)
  in
  let base_pushed = Sparql.Governor.pushed (Sparql.Governor.current ()) in
  let bag = go algebra in
  ( bag,
    {
      peak_rows = !peak;
      total_rows =
        Sparql.Governor.pushed (Sparql.Governor.current ()) - base_pushed;
    } )
