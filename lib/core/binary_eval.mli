(** The naive binary-expression-tree evaluation that Section 4 opens with:
    every triple pattern is materialized independently and the operators of
    Definition 7 are applied bottom-up. It is the semantics oracle of the
    test suite and the strawman of the Figure 3 motivation bench. *)

type stats = { peak_rows : int; total_rows : int }

(** [eval env algebra] evaluates directly per Definition 7. May raise
    [Sparql.Governor.Kill] under a governed ambient ticket's row budget —
    which it does readily; that is its point. *)
val eval : Engine.Bgp_eval.t -> Sparql.Algebra.t -> Sparql.Bag.t * stats
