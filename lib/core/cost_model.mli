(** The SPARQL-UO cost model of Section 5.1.1.

    Cost = BGP evaluation cost + algebra cost, where the algebra cost of
    the implicit ANDs at a level is [f_AND] over the result sizes of the
    node and its left/right siblings, the cost of a UNION is [f_UNION] over
    its branches' result sizes, and the cost of an OPTIONAL is
    [f_OPTIONAL] over the left-hand side's and the child's result sizes.
    Following the paper's instantiation, [f_AND] and [f_OPTIONAL] are
    products and [f_UNION] is a sum; result sizes of joins are estimated as
    products and of unions as sums.

    Δ-cost of a transformation (Equations 4 and 8) is obtained by
    evaluating {!two_level_cost} on the group before and after — the
    affected terms are exactly the ones that differ, so unaffected terms
    cancel.

    Every estimate accepts an optional {!Feedback.t}: BGPs that have been
    executed before are priced at their observed cardinality instead of
    the sampled estimate (the adaptive-execution loop). *)

type env = Engine.Bgp_eval.t

(** [bgp_cost env b] — cost(B) from the underlying engine (Section
    5.1.2). The empty BGP costs 0. *)
val bgp_cost : env -> Engine.Bgp.t -> float

(** [bgp_card ?feedback env b] — |res(B)|: the observed cardinality when
    [feedback] holds one for [b], otherwise the engine's sampled
    estimate. The empty BGP has cardinality 1. *)
val bgp_card : ?feedback:Feedback.t -> env -> Engine.Bgp.t -> float

(** [node_card ?feedback env node] — estimated result size of a BE-tree
    node: BGPs from {!bgp_card}, groups as products of their children,
    UNIONs as sums of their branches, OPTIONALs as [max(card, 1)] of
    their child (the left side is always retained). *)
val node_card : ?feedback:Feedback.t -> env -> Be_tree.node -> float

val group_card : ?feedback:Feedback.t -> env -> Be_tree.group -> float

(** [optional_card ?feedback env ~left_card g] — the OPTIONAL child [g]
    priced as candidate-pruned: the left side's universally bound
    join-column bindings are pushed into the subtree as a semijoin
    prefilter, so the child's effective cardinality is bounded by
    [min(group_card g, left_card)] (never below 1). This is the estimate
    the adaptive executor reports per OPTIONAL node; the unfiltered
    {!group_card} is what Base/TT pay. *)
val optional_card :
  ?feedback:Feedback.t -> env -> left_card:float -> Be_tree.group -> float

(** [level_cost ?pruned ?feedback env g] — the cost terms local to one
    level: BGP costs of BGP children, [f_AND] terms of each BGP child
    against its siblings, [f_UNION] of each UNION child and [f_OPTIONAL]
    of each OPTIONAL child. With [pruned] (candidate pruning active, i.e.
    CP/Full execution), OPTIONAL/MINUS children are priced by
    {!optional_card} instead of their standalone cardinality. *)
val level_cost : ?pruned:bool -> ?feedback:Feedback.t -> env -> Be_tree.group -> float

(** [two_level_cost ?pruned ?feedback env g] — {!level_cost} of [g] plus
    the level costs of the groups directly under [g]'s
    UNION/OPTIONAL/group children: the scope a single merge or inject
    transformation can affect. *)
val two_level_cost : ?pruned:bool -> ?feedback:Feedback.t -> env -> Be_tree.group -> float
