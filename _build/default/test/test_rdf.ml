(* Tests for the rdf library: terms, namespaces, triples, N-Triples and
   Turtle parsing. *)

let term_t = Alcotest.testable Rdf.Term.pp Rdf.Term.equal

let triple_t =
  Alcotest.testable Rdf.Triple.pp Rdf.Triple.equal

(* --- Term ---------------------------------------------------------------- *)

let test_term_constructors () =
  Alcotest.check term_t "iri" (Rdf.Term.Iri "http://a") (Rdf.Term.iri "http://a");
  Alcotest.check term_t "literal"
    (Rdf.Term.Literal { value = "x"; kind = Rdf.Term.Plain })
    (Rdf.Term.literal "x");
  Alcotest.check term_t "lang"
    (Rdf.Term.Literal { value = "x"; kind = Rdf.Term.Lang "en" })
    (Rdf.Term.lang_literal "x" ~lang:"en");
  Alcotest.check term_t "int"
    (Rdf.Term.Literal { value = "42"; kind = Rdf.Term.Typed Rdf.Term.xsd_integer })
    (Rdf.Term.int_literal 42)

let test_term_order_total () =
  let terms =
    [
      Rdf.Term.iri "http://a";
      Rdf.Term.iri "http://b";
      Rdf.Term.bnode "b0";
      Rdf.Term.literal "x";
      Rdf.Term.lang_literal "x" ~lang:"en";
      Rdf.Term.typed_literal "x" ~datatype:Rdf.Term.xsd_string;
    ]
  in
  (* IRIs < bnodes < literals, and ordering is antisymmetric. *)
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          let c12 = Rdf.Term.compare t1 t2 and c21 = Rdf.Term.compare t2 t1 in
          Alcotest.(check int) "antisymmetry" (compare c12 0) (compare 0 c21))
        terms)
    terms;
  Alcotest.(check bool) "iri < bnode" true
    (Rdf.Term.compare (Rdf.Term.iri "z") (Rdf.Term.bnode "a") < 0);
  Alcotest.(check bool) "bnode < literal" true
    (Rdf.Term.compare (Rdf.Term.bnode "z") (Rdf.Term.literal "a") < 0)

let test_term_classify () =
  Alcotest.(check bool) "is_iri" true (Rdf.Term.is_iri (Rdf.Term.iri "x"));
  Alcotest.(check bool) "is_bnode" true (Rdf.Term.is_bnode (Rdf.Term.bnode "x"));
  Alcotest.(check bool) "is_literal" true
    (Rdf.Term.is_literal (Rdf.Term.literal "x"));
  Alcotest.(check bool) "literal not iri" false
    (Rdf.Term.is_iri (Rdf.Term.literal "x"))

let test_escape_roundtrip () =
  let cases = [ "plain"; "with \"quotes\""; "tab\there"; "line\nbreak";
                "back\\slash"; "mixed \"\n\t\\ all" ] in
  List.iter
    (fun s ->
      Alcotest.(check string) ("roundtrip " ^ String.escaped s) s
        (Rdf.Term.unescape_string (Rdf.Term.escape_string s)))
    cases

let test_to_ntriples () =
  Alcotest.(check string) "iri" "<http://a>" (Rdf.Term.to_ntriples (Rdf.Term.iri "http://a"));
  Alcotest.(check string) "bnode" "_:b0" (Rdf.Term.to_ntriples (Rdf.Term.bnode "b0"));
  Alcotest.(check string) "plain" "\"hi\"" (Rdf.Term.to_ntriples (Rdf.Term.literal "hi"));
  Alcotest.(check string) "lang" "\"hi\"@en"
    (Rdf.Term.to_ntriples (Rdf.Term.lang_literal "hi" ~lang:"en"));
  Alcotest.(check string) "typed"
    "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>"
    (Rdf.Term.to_ntriples (Rdf.Term.int_literal 3));
  Alcotest.(check string) "escaped" "\"a\\\"b\""
    (Rdf.Term.to_ntriples (Rdf.Term.literal "a\"b"))

(* --- Namespace ------------------------------------------------------------ *)

let test_namespace_expand () =
  let env = Rdf.Namespace.with_defaults () in
  Alcotest.(check string) "ub" (Rdf.Namespace.ub "headOf")
    (Rdf.Namespace.expand env "ub:headOf");
  Alcotest.(check string) "rdf:type" Rdf.Namespace.rdf_type
    (Rdf.Namespace.expand env "rdf:type");
  Alcotest.check_raises "unbound prefix"
    (Failure "Namespace.expand: unbound prefix \"nope\"") (fun () ->
      ignore (Rdf.Namespace.expand env "nope:x"))

let test_namespace_shrink () =
  let env = Rdf.Namespace.with_defaults () in
  Alcotest.(check string) "shrinks" "ub:headOf"
    (Rdf.Namespace.shrink env (Rdf.Namespace.ub "headOf"));
  Alcotest.(check string) "falls back to brackets" "<http://nowhere/x>"
    (Rdf.Namespace.shrink env "http://nowhere/x")

let test_namespace_add_lookup () =
  let env = Rdf.Namespace.create () in
  Alcotest.(check (option string)) "empty" None (Rdf.Namespace.lookup env "ex");
  Rdf.Namespace.add env ~prefix:"ex" ~iri:"http://example.org/";
  Alcotest.(check (option string)) "bound" (Some "http://example.org/")
    (Rdf.Namespace.lookup env "ex");
  Alcotest.(check string) "expand" "http://example.org/thing"
    (Rdf.Namespace.expand env "ex:thing")

(* --- Triple ---------------------------------------------------------------- *)

let test_triple_validity () =
  let valid =
    Rdf.Triple.make (Rdf.Term.iri "s") (Rdf.Term.iri "p") (Rdf.Term.literal "o")
  in
  Alcotest.(check bool) "iri subject ok" true (Rdf.Triple.is_valid valid);
  let bnode_subject =
    Rdf.Triple.make (Rdf.Term.bnode "b") (Rdf.Term.iri "p") (Rdf.Term.iri "o")
  in
  Alcotest.(check bool) "bnode subject ok" true (Rdf.Triple.is_valid bnode_subject);
  let literal_subject =
    Rdf.Triple.make (Rdf.Term.literal "s") (Rdf.Term.iri "p") (Rdf.Term.iri "o")
  in
  Alcotest.(check bool) "literal subject invalid" false
    (Rdf.Triple.is_valid literal_subject);
  let literal_predicate =
    Rdf.Triple.make (Rdf.Term.iri "s") (Rdf.Term.literal "p") (Rdf.Term.iri "o")
  in
  Alcotest.(check bool) "literal predicate invalid" false
    (Rdf.Triple.is_valid literal_predicate)

let test_triple_at () =
  let t = Rdf.Triple.make (Rdf.Term.iri "s") (Rdf.Term.iri "p") (Rdf.Term.iri "o") in
  Alcotest.check term_t "subject" (Rdf.Term.iri "s") (Rdf.Triple.at t Rdf.Triple.Subject);
  Alcotest.check term_t "predicate" (Rdf.Term.iri "p") (Rdf.Triple.at t Rdf.Triple.Predicate);
  Alcotest.check term_t "object" (Rdf.Term.iri "o") (Rdf.Triple.at t Rdf.Triple.Object)

(* --- N-Triples -------------------------------------------------------------- *)

let test_ntriples_parse_basic () =
  let line = "<http://s> <http://p> <http://o> ." in
  match Rdf.Ntriples.parse_line line with
  | Some t ->
      Alcotest.check triple_t "parsed"
        (Rdf.Triple.make (Rdf.Term.iri "http://s") (Rdf.Term.iri "http://p")
           (Rdf.Term.iri "http://o"))
        t
  | None -> Alcotest.fail "expected a triple"

let test_ntriples_literals () =
  let cases =
    [
      ("<http://s> <http://p> \"plain\" .", Rdf.Term.literal "plain");
      ("<http://s> <http://p> \"hi\"@en .", Rdf.Term.lang_literal "hi" ~lang:"en");
      ( "<http://s> <http://p> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
        Rdf.Term.int_literal 3 );
      ("<http://s> <http://p> \"a\\\"b\\nc\" .", Rdf.Term.literal "a\"b\nc");
    ]
  in
  List.iter
    (fun (line, expected) ->
      match Rdf.Ntriples.parse_line line with
      | Some t -> Alcotest.check term_t line expected t.Rdf.Triple.o
      | None -> Alcotest.fail ("no triple for " ^ line))
    cases

let test_ntriples_comments_blanks () =
  Alcotest.(check (option reject)) "comment" None
    (Option.map ignore (Rdf.Ntriples.parse_line "# a comment"));
  Alcotest.(check (option reject)) "blank" None
    (Option.map ignore (Rdf.Ntriples.parse_line "   "));
  match Rdf.Ntriples.parse_line "<http://s> <http://p> _:b . # trailing" with
  | Some t -> Alcotest.check term_t "bnode object" (Rdf.Term.bnode "b") t.Rdf.Triple.o
  | None -> Alcotest.fail "expected triple with trailing comment"

let test_ntriples_errors () =
  let bad_cases =
    [ "<http://s> <http://p> ."; (* missing object *)
      "<http://s> <http://p> <http://o>"; (* missing dot *)
      "\"lit\" <http://p> <http://o> ."; (* literal subject *)
      "<http://s> \"lit\" <http://o> ."; (* literal predicate *)
      "<http://s> <http://p> <http://o> . garbage" ]
  in
  List.iter
    (fun line ->
      match Rdf.Ntriples.parse_line line with
      | exception Rdf.Ntriples.Parse_error _ -> ()
      | _ -> Alcotest.fail ("expected parse error for: " ^ line))
    bad_cases

let test_ntriples_roundtrip () =
  let triples =
    [
      Rdf.Triple.make (Rdf.Term.iri "http://s") (Rdf.Term.iri "http://p")
        (Rdf.Term.literal "with \"escape\"\nand newline");
      Rdf.Triple.make (Rdf.Term.bnode "x1") (Rdf.Term.iri "http://p")
        (Rdf.Term.lang_literal "hello" ~lang:"en-GB");
      Rdf.Triple.make (Rdf.Term.iri "http://s") (Rdf.Term.iri "http://q")
        (Rdf.Term.int_literal (-7));
    ]
  in
  let text = Rdf.Ntriples.to_string triples in
  Alcotest.(check (list triple_t)) "roundtrip" triples (Rdf.Ntriples.parse_string text)

let test_ntriples_file_roundtrip () =
  let triples =
    List.init 50 (fun i ->
        Rdf.Triple.make
          (Rdf.Term.iri (Printf.sprintf "http://s/%d" i))
          (Rdf.Term.iri "http://p")
          (Rdf.Term.int_literal i))
  in
  let path = Filename.temp_file "repro" ".nt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rdf.Ntriples.write_file path triples;
      Alcotest.(check (list triple_t)) "file roundtrip" triples
        (Rdf.Ntriples.parse_file path))

(* --- Turtle ------------------------------------------------------------------ *)

let test_turtle_basic () =
  let doc =
    {|@prefix ex: <http://example.org/> .
      ex:a ex:p ex:b .
      ex:a ex:q "lit" .|}
  in
  let triples = Rdf.Turtle.parse_string doc in
  Alcotest.(check int) "two triples" 2 (List.length triples);
  Alcotest.check triple_t "first"
    (Rdf.Triple.make
       (Rdf.Term.iri "http://example.org/a")
       (Rdf.Term.iri "http://example.org/p")
       (Rdf.Term.iri "http://example.org/b"))
    (List.hd triples)

let test_turtle_predicate_object_lists () =
  let doc =
    {|@prefix ex: <http://example.org/> .
      ex:a ex:p ex:b , ex:c ; ex:q "x" ; a ex:Thing .|}
  in
  let triples = Rdf.Turtle.parse_string doc in
  Alcotest.(check int) "four triples" 4 (List.length triples);
  let types =
    List.filter
      (fun t -> Rdf.Term.equal t.Rdf.Triple.p (Rdf.Term.iri Rdf.Namespace.rdf_type))
      triples
  in
  Alcotest.(check int) "one rdf:type via 'a'" 1 (List.length types)

let test_turtle_literals () =
  let doc =
    {|@prefix ex: <http://example.org/> .
      @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
      ex:a ex:int 42 .
      ex:a ex:float 3.25 .
      ex:a ex:bool true .
      ex:a ex:lang "bonjour"@fr .
      ex:a ex:typed "2020-01-01"^^xsd:date .|}
  in
  let triples = Rdf.Turtle.parse_string doc in
  let objects = List.map (fun t -> t.Rdf.Triple.o) triples in
  Alcotest.(check bool) "int literal" true
    (List.mem (Rdf.Term.int_literal 42) objects);
  Alcotest.(check bool) "double literal" true
    (List.mem (Rdf.Term.typed_literal "3.25" ~datatype:Rdf.Term.xsd_double) objects);
  Alcotest.(check bool) "bool literal" true
    (List.mem (Rdf.Term.typed_literal "true" ~datatype:Rdf.Term.xsd_boolean) objects);
  Alcotest.(check bool) "lang literal" true
    (List.mem (Rdf.Term.lang_literal "bonjour" ~lang:"fr") objects);
  Alcotest.(check bool) "date literal" true
    (List.mem (Rdf.Term.date_literal "2020-01-01") objects)

let test_turtle_uses_default_prefixes () =
  let doc = "ub:alice ub:worksFor ub:dept0 ." in
  let triples = Rdf.Turtle.parse_string doc in
  Alcotest.(check int) "one triple" 1 (List.length triples);
  Alcotest.check term_t "expanded against defaults"
    (Rdf.Term.iri (Rdf.Namespace.ub "alice"))
    (List.hd triples).Rdf.Triple.s

let test_turtle_errors () =
  List.iter
    (fun doc ->
      match Rdf.Turtle.parse_string doc with
      | exception Rdf.Turtle.Parse_error _ -> ()
      | _ -> Alcotest.fail ("expected Turtle parse error for: " ^ doc))
    [ "ex:a ex:b"; (* unbound prefix, also missing dot *)
      "@prefix ex: <http://e/> . ex:a ex:b"; (* missing object and dot *)
      "@prefix ex: <http://e/> . ex:a ex:b ex:c" (* missing final dot *) ]

let () =
  Alcotest.run "rdf"
    [
      ( "term",
        [
          Alcotest.test_case "constructors" `Quick test_term_constructors;
          Alcotest.test_case "total order" `Quick test_term_order_total;
          Alcotest.test_case "classification" `Quick test_term_classify;
          Alcotest.test_case "escape roundtrip" `Quick test_escape_roundtrip;
          Alcotest.test_case "to_ntriples" `Quick test_to_ntriples;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "expand" `Quick test_namespace_expand;
          Alcotest.test_case "shrink" `Quick test_namespace_shrink;
          Alcotest.test_case "add/lookup" `Quick test_namespace_add_lookup;
        ] );
      ( "triple",
        [
          Alcotest.test_case "validity" `Quick test_triple_validity;
          Alcotest.test_case "position access" `Quick test_triple_at;
        ] );
      ( "ntriples",
        [
          Alcotest.test_case "basic" `Quick test_ntriples_parse_basic;
          Alcotest.test_case "literal forms" `Quick test_ntriples_literals;
          Alcotest.test_case "comments and blanks" `Quick test_ntriples_comments_blanks;
          Alcotest.test_case "errors" `Quick test_ntriples_errors;
          Alcotest.test_case "string roundtrip" `Quick test_ntriples_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_ntriples_file_roundtrip;
        ] );
      ( "turtle",
        [
          Alcotest.test_case "basic" `Quick test_turtle_basic;
          Alcotest.test_case "; and , lists" `Quick test_turtle_predicate_object_lists;
          Alcotest.test_case "literal forms" `Quick test_turtle_literals;
          Alcotest.test_case "default prefixes" `Quick test_turtle_uses_default_prefixes;
          Alcotest.test_case "errors" `Quick test_turtle_errors;
        ] );
    ]
