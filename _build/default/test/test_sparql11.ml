(* Tests for the SPARQL 1.1 extensions: MINUS, VALUES, EXISTS/NOT EXISTS,
   the expression grammar (arithmetic, functions), ORDER BY and the
   ASK/CONSTRUCT/DESCRIBE query forms — parser-level and end-to-end
   through the executor. Also the regex engine. *)

let iri i = Rdf.Term.iri (Printf.sprintf "http://t/e%d" i)
let pred i = Rdf.Term.iri (Printf.sprintf "http://t/p%d" i)

let tiny_store () =
  Rdf_store.Triple_store.of_triples
    [
      Rdf.Triple.make (iri 0) (pred 0) (iri 1);
      Rdf.Triple.make (iri 0) (pred 1) (Rdf.Term.literal "alpha");
      Rdf.Triple.make (iri 2) (pred 0) (iri 3);
      Rdf.Triple.make (iri 2) (pred 1) (Rdf.Term.literal "Beta");
      Rdf.Triple.make (iri 4) (pred 0) (iri 1);
      Rdf.Triple.make (iri 4) (pred 2) (Rdf.Term.int_literal 7);
    ]

let count store text =
  Option.get
    (Sparql_uo.Executor.run store text).Sparql_uo.Executor.result_count

let solutions_of store text =
  let report = Sparql_uo.Executor.run store text in
  Sparql_uo.Executor.solutions store report

(* --- Regex engine ------------------------------------------------------- *)

let test_regex_basics () =
  let check ?(ci = false) pattern cases =
    let re = Sparql.Regex.compile ~case_insensitive:ci pattern in
    List.iter
      (fun (s, expected) ->
        Alcotest.(check bool)
          (Printf.sprintf "%S on %S" pattern s)
          expected (Sparql.Regex.matches re s))
      cases
  in
  check "abc" [ ("xxabcxx", true); ("ab", false) ];
  check "^abc$" [ ("abc", true); ("xabc", false); ("abcx", false) ];
  check "a*b" [ ("b", true); ("aaab", true); ("ac", false) ];
  check "a+b" [ ("b", false); ("aaab", true) ];
  check "colou?r" [ ("color", true); ("colour", true); ("colouur", false) ];
  check "cat|dog" [ ("my cat", true); ("my dog", true); ("my cow", false) ];
  check "[a-c]+[0-9]" [ ("abc9", true); ("d4", false) ];
  check "[^0-9]" [ ("5", false); ("55x", true) ];
  check "\\d+\\.\\d+" [ ("pi=3.25!", true); ("325", false) ];
  check "(ab)+c" [ ("ababc", true); ("abbc", false) ];
  check "" [ ("anything", true); ("", true) ];
  check "a.c" [ ("abc", true); ("a\nc", false) ];
  check ~ci:true "HeLLo" [ ("hello world", true); ("help", false) ];
  check "^$" [ ("", true); ("x", false) ];
  check "x(a|b)*y" [ ("xy", true); ("xabababy", true); ("xacy", false) ];
  check "\\w+@\\w+" [ ("mail me@example please", true); ("@", false) ]

let test_regex_errors () =
  List.iter
    (fun pattern ->
      match Sparql.Regex.compile pattern with
      | exception Sparql.Regex.Syntax_error _ -> ()
      | _ -> Alcotest.fail ("expected syntax error for " ^ pattern))
    [ "("; "[abc"; "*x"; "a|*"; "\\q"; "a)" ]

(* A pattern built by escaping an arbitrary string always matches that
   string (contains semantics). *)
let prop_regex_literal_self_match =
  QCheck2.Test.make ~name:"escaped literal matches itself" ~count:300
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 15))
    (fun s ->
      let escaped = Buffer.create (String.length s * 2) in
      String.iter
        (fun c ->
          (match c with
          | '.' | '\\' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '|' | '^'
          | '$' | '{' | '}' | '-' ->
              Buffer.add_char escaped '\\'
          | _ -> ());
          Buffer.add_char escaped c)
        s;
      (* Skip strings with characters our escape table can't express. *)
      match Sparql.Regex.compile (Buffer.contents escaped) with
      | re -> Sparql.Regex.matches re s
      | exception Sparql.Regex.Syntax_error _ -> QCheck2.assume_fail ())

(* --- Parser: new syntax -------------------------------------------------- *)

let test_parse_minus_values () =
  let q =
    Sparql.Parser.parse
      {|SELECT * WHERE {
         ?x <http://t/p0> ?y .
         MINUS { ?x <http://t/p2> ?z . }
         VALUES (?x ?w) { (<http://t/e0> <http://t/e1>) (UNDEF <http://t/e2>) }
       }|}
  in
  match q.Sparql.Ast.where with
  | [ Sparql.Ast.Triples _; Sparql.Ast.Minus _; Sparql.Ast.Values block ] ->
      Alcotest.(check (list string)) "values vars" [ "x"; "w" ] block.Sparql.Ast.vars;
      Alcotest.(check int) "two rows" 2 (List.length block.Sparql.Ast.rows);
      Alcotest.(check bool) "UNDEF parsed" true
        (List.nth (List.nth block.Sparql.Ast.rows 1) 0 = None)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_single_var_values () =
  let q =
    Sparql.Parser.parse
      "SELECT * WHERE { VALUES ?x { <http://t/e0> UNDEF <http://t/e1> } }"
  in
  match q.Sparql.Ast.where with
  | [ Sparql.Ast.Values block ] ->
      Alcotest.(check int) "three rows" 3 (List.length block.Sparql.Ast.rows)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_exists_filter () =
  let q =
    Sparql.Parser.parse
      "SELECT * WHERE { ?x <http://t/p0> ?y . FILTER NOT EXISTS { ?x <http://t/p2> ?n . } }"
  in
  match q.Sparql.Ast.where with
  | [ _; Sparql.Ast.Filter (Sparql.Expr.Not_exists _) ] -> ()
  | _ -> Alcotest.fail "expected NOT EXISTS filter"

let test_parse_arith_and_functions () =
  let q =
    Sparql.Parser.parse
      "SELECT * WHERE { ?x <http://t/p2> ?n . FILTER (?n * 2 + 1 > 10 / 2 && regex(str(?x), \"e4\")) }"
  in
  match q.Sparql.Ast.where with
  | [ _; Sparql.Ast.Filter (Sparql.Expr.And (Sparql.Expr.Cmp _, Sparql.Expr.Call (Sparql.Expr.B_regex, _))) ] -> ()
  | [ _; Sparql.Ast.Filter _ ] -> Alcotest.fail "unexpected filter shape"
  | _ -> Alcotest.fail "expected filter"

let test_parse_order_by () =
  let q =
    Sparql.Parser.parse
      "SELECT * WHERE { ?x <http://t/p0> ?y . } ORDER BY DESC(?y) ?x LIMIT 3"
  in
  Alcotest.(check bool) "order keys" true
    (q.Sparql.Ast.order_by = [ ("y", true); ("x", false) ]);
  Alcotest.(check (option int)) "limit after order" (Some 3) q.Sparql.Ast.limit

let test_parse_forms () =
  let ask = Sparql.Parser.parse "ASK { ?x <http://t/p0> ?y . }" in
  Alcotest.(check bool) "ask form" true (ask.Sparql.Ast.form = Sparql.Ast.Ask);
  let construct =
    Sparql.Parser.parse
      "CONSTRUCT { ?x <http://t/derived> ?y . } WHERE { ?x <http://t/p0> ?y . }"
  in
  (match construct.Sparql.Ast.form with
  | Sparql.Ast.Construct [ _ ] -> ()
  | _ -> Alcotest.fail "construct template");
  let describe = Sparql.Parser.parse "DESCRIBE <http://t/e0>" in
  match describe.Sparql.Ast.form with
  | Sparql.Ast.Describe [ Sparql.Ast.Dterm _ ] -> ()
  | _ -> Alcotest.fail "describe target"

(* --- End-to-end through the executor ------------------------------------- *)

let test_minus_semantics () =
  let store = tiny_store () in
  (* Three p0 edges; e0 and e4 have extra attributes; MINUS removes
     subjects that also have p1. *)
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p0> ?y . MINUS { ?x <http://t/p1> ?l . } }"
  in
  Alcotest.(check int) "minus removes p1 subjects" 1 n;
  (* Disjoint-domain MINUS removes nothing (SPARQL's subtlety). *)
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p0> ?y . MINUS { ?a <http://t/p1> ?l . } }"
  in
  Alcotest.(check int) "disjoint-domain minus keeps all" 3 n

let test_values_semantics () =
  let store = tiny_store () in
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p0> ?y . VALUES ?x { <http://t/e0> <http://t/e2> } }"
  in
  Alcotest.(check int) "values restricts" 2 n;
  (* UNDEF joins with anything. *)
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p0> ?y . VALUES (?x) { (UNDEF) } }"
  in
  Alcotest.(check int) "UNDEF row keeps all" 3 n;
  (* A VALUES constant absent from the data joins with nothing. *)
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p0> ?y . VALUES ?x { <http://t/absent> } }"
  in
  Alcotest.(check int) "absent constant" 0 n

let test_exists_semantics () =
  let store = tiny_store () in
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p0> ?y . FILTER EXISTS { ?x <http://t/p1> ?l . } }"
  in
  Alcotest.(check int) "exists" 2 n;
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p0> ?y . FILTER NOT EXISTS { ?x <http://t/p1> ?l . } }"
  in
  Alcotest.(check int) "not exists" 1 n

let test_filter_functions_semantics () =
  let store = tiny_store () in
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p1> ?l . FILTER regex(?l, \"^al\", \"i\") }"
  in
  Alcotest.(check int) "regex filter" 1 n;
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p2> ?n . FILTER (?n * 2 = 14) }"
  in
  Alcotest.(check int) "arithmetic filter" 1 n;
  (* "alpha" has 5 characters, "Beta" only 4. *)
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p1> ?l . FILTER (strlen(?l) = 5 && isLiteral(?l)) }"
  in
  Alcotest.(check int) "strlen + isLiteral" 1 n;
  let n =
    count store
      "SELECT * WHERE { ?x <http://t/p1> ?l . FILTER isLiteral(?l) }"
  in
  Alcotest.(check int) "isLiteral alone" 2 n

let test_order_by_semantics () =
  let store = tiny_store () in
  let report =
    Sparql_uo.Executor.run store
      "SELECT * WHERE { ?x <http://t/p0> ?y . } ORDER BY ?x"
  in
  let xs =
    List.map
      (fun solution -> List.assoc "x" solution)
      (Sparql_uo.Executor.solutions store report)
  in
  Alcotest.(check bool) "sorted ascending" true
    (xs = List.sort Rdf.Term.compare xs);
  let report =
    Sparql_uo.Executor.run store
      "SELECT * WHERE { ?x <http://t/p0> ?y . } ORDER BY DESC(?x)"
  in
  let xs_desc =
    List.map
      (fun solution -> List.assoc "x" solution)
      (Sparql_uo.Executor.solutions store report)
  in
  Alcotest.(check bool) "sorted descending" true (xs_desc = List.rev xs)

let test_ask_form () =
  let store = tiny_store () in
  let yes = Sparql_uo.Executor.run store "ASK { ?x <http://t/p0> ?y . }" in
  Alcotest.(check (option bool)) "ask true" (Some true) (Sparql_uo.Executor.ask yes);
  let no = Sparql_uo.Executor.run store "ASK { ?x <http://t/p9> ?y . }" in
  Alcotest.(check (option bool)) "ask false" (Some false) (Sparql_uo.Executor.ask no);
  (* ask on a SELECT is None. *)
  let sel = Sparql_uo.Executor.run store "SELECT * WHERE { ?x <http://t/p0> ?y . }" in
  Alcotest.(check (option bool)) "ask on select" None (Sparql_uo.Executor.ask sel)

let test_construct_form () =
  let store = tiny_store () in
  let report =
    Sparql_uo.Executor.run store
      "CONSTRUCT { ?y <http://t/inverse> ?x . } WHERE { ?x <http://t/p0> ?y . }"
  in
  let triples = Sparql_uo.Executor.construct store report in
  Alcotest.(check int) "one triple per distinct solution" 3 (List.length triples);
  Alcotest.(check bool) "inverted edge present" true
    (List.exists
       (fun t ->
         Rdf.Triple.equal t
           (Rdf.Triple.make (iri 1) (Rdf.Term.iri "http://t/inverse") (iri 0)))
       triples);
  (* Templates instantiated to invalid triples (literal subject) drop. *)
  let report =
    Sparql_uo.Executor.run store
      "CONSTRUCT { ?l <http://t/bad> ?x . } WHERE { ?x <http://t/p1> ?l . }"
  in
  Alcotest.(check int) "invalid triples dropped" 0
    (List.length (Sparql_uo.Executor.construct store report))

let test_describe_form () =
  let store = tiny_store () in
  let report = Sparql_uo.Executor.run store "DESCRIBE <http://t/e0>" in
  let triples = Sparql_uo.Executor.describe store report in
  (* e0 appears in two triples as subject. *)
  Alcotest.(check int) "e0 triples" 2 (List.length triples);
  let report =
    Sparql_uo.Executor.run store "DESCRIBE ?x WHERE { ?x <http://t/p2> ?n . }"
  in
  let triples = Sparql_uo.Executor.describe store report in
  (* ?x = e4: subject of p0 and p2 edges, object of none. *)
  Alcotest.(check int) "described var" 2 (List.length triples)

(* --- Property paths ------------------------------------------------------- *)

let path_store () =
  (* e0 -p0-> e1 -p1-> e2 ; e0 -p1-> e3 ; e4 -p0-> e1 *)
  Rdf_store.Triple_store.of_triples
    [
      Rdf.Triple.make (iri 0) (pred 0) (iri 1);
      Rdf.Triple.make (iri 1) (pred 1) (iri 2);
      Rdf.Triple.make (iri 0) (pred 1) (iri 3);
      Rdf.Triple.make (iri 4) (pred 0) (iri 1);
    ]

let test_path_sequence () =
  let store = path_store () in
  (* e0 -p0/p1-> ?y : e0->e1->e2. *)
  let rows =
    solutions_of store
      "SELECT ?y WHERE { <http://t/e0> <http://t/p0>/<http://t/p1> ?y . }"
  in
  match rows with
  | [ [ ("y", y) ] ] -> Alcotest.(check bool) "seq target" true (y = iri 2)
  | _ -> Alcotest.fail "expected exactly one sequence match"

let test_path_alternation () =
  let store = path_store () in
  let n =
    count store
      "SELECT * WHERE { <http://t/e0> (<http://t/p0>|<http://t/p1>) ?y . }"
  in
  (* e0 p0 e1 and e0 p1 e3. *)
  Alcotest.(check int) "alt matches" 2 n;
  (* The alternation is equivalent to an explicit UNION. *)
  let n_union =
    count store
      "SELECT * WHERE { { <http://t/e0> <http://t/p0> ?y . } UNION { \
       <http://t/e0> <http://t/p1> ?y . } }"
  in
  Alcotest.(check int) "equivalent to UNION" n_union n

let test_path_inverse () =
  let store = path_store () in
  let n = count store "SELECT * WHERE { ?x ^<http://t/p0> <http://t/e0> . }" in
  Alcotest.(check int) "inverse of constant subject" 1 n;
  (* a ^P b iff b P a: the sources reaching e2 via p0/p1 are found from
     e2's side. *)
  let rows =
    solutions_of store
      "SELECT ?x WHERE { <http://t/e2> ^(<http://t/p0>/<http://t/p1>) ?x . }"
  in
  (* Both e0 and e4 reach e2 through p0/p1. *)
  let xs = List.sort compare (List.map (fun sol -> List.assoc "x" sol) rows) in
  Alcotest.(check bool) "inverted seq sources" true (xs = [ iri 0; iri 4 ]);
  (* And the other direction has no solutions. *)
  Alcotest.(check int) "forward from e2 is empty" 0
    (count store
       "SELECT * WHERE { ?x ^(<http://t/p0>/<http://t/p1>) <http://t/e2> . }")

let test_path_desugared_patterns_coalesce () =
  (* The sequence's fresh variable links the two patterns, so they land
     in one BGP and the optimizer sees a plain join. *)
  let q =
    Sparql.Parser.parse
      "SELECT * WHERE { ?x <http://t/p0>/<http://t/p1> ?y . }"
  in
  match (Sparql_uo.Be_tree.of_query q).Sparql_uo.Be_tree.children with
  | [ Sparql_uo.Be_tree.Bgp [ _; _ ] ] -> ()
  | _ -> Alcotest.fail "expected one coalesced 2-pattern BGP"

let test_path_closures_rejected () =
  match
    Sparql.Parser.parse "SELECT * WHERE { ?x <http://t/p0>+ ?y . }"
  with
  | exception Sparql.Parser.Parse_error { message; _ } ->
      Alcotest.(check bool) "clear message" true
        (String.length message > 0
        && String.sub message 0 22 = "property path closures")
  | _ -> Alcotest.fail "expected closure rejection"

(* --- Aggregates ---------------------------------------------------------- *)

let agg_store () =
  (* Two groups: e0 -> {1, 2, 3}, e1 -> {10, 10}. *)
  Rdf_store.Triple_store.of_triples
    [
      Rdf.Triple.make (iri 0) (pred 0) (Rdf.Term.int_literal 1);
      Rdf.Triple.make (iri 0) (pred 0) (Rdf.Term.int_literal 2);
      Rdf.Triple.make (iri 0) (pred 0) (Rdf.Term.int_literal 3);
      Rdf.Triple.make (iri 1) (pred 0) (Rdf.Term.int_literal 10);
      Rdf.Triple.make (iri 1) (pred 1) (Rdf.Term.int_literal 10);
      Rdf.Triple.make (iri 2) (pred 2) (Rdf.Term.literal "not a number");
    ]

let test_parse_aggregates () =
  let q =
    Sparql.Parser.parse
      "SELECT ?g (COUNT(DISTINCT ?v) AS ?n) (SUM(?v) AS ?total) WHERE { ?g \
       <http://t/p0> ?v . } GROUP BY ?g HAVING (?n > 1) ORDER BY ?g LIMIT 5"
  in
  (match q.Sparql.Ast.form with
  | Sparql.Ast.Select (Sparql.Ast.Aggregated [ Sparql.Ast.Svar "g";
      Sparql.Ast.Aggregate { agg = Sparql.Ast.Count; distinct = true; target = Some "v"; alias = "n" };
      Sparql.Ast.Aggregate { agg = Sparql.Ast.Sum; distinct = false; target = Some "v"; alias = "total" } ]) -> ()
  | _ -> Alcotest.fail "unexpected select items");
  Alcotest.(check (list string)) "group by" [ "g" ] q.Sparql.Ast.group_by;
  Alcotest.(check bool) "having present" true (q.Sparql.Ast.having <> None)

let test_count_star () =
  let store = agg_store () in
  match
    solutions_of store
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://t/p0> ?v . }"
  with
  | [ [ ("n", n) ] ] ->
      Alcotest.(check bool) "count 4" true (n = Rdf.Term.int_literal 4)
  | _ -> Alcotest.fail "expected a single COUNT row"

let test_count_empty_is_zero () =
  let store = agg_store () in
  match
    solutions_of store
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://t/p9> ?v . }"
  with
  | [ [ ("n", n) ] ] ->
      Alcotest.(check bool) "count 0" true (n = Rdf.Term.int_literal 0)
  | _ -> Alcotest.fail "expected a single zero-count row"

let test_group_by_aggregates () =
  let store = agg_store () in
  let rows =
    solutions_of store
      "SELECT ?s (COUNT(?v) AS ?n) (SUM(?v) AS ?total) (MIN(?v) AS ?lo) \
       (MAX(?v) AS ?hi) (AVG(?v) AS ?mean) WHERE { ?s <http://t/p0> ?v . } \
       GROUP BY ?s ORDER BY ?s"
  in
  match rows with
  | [ row0; row1 ] ->
      let get row k = List.assoc k row in
      Alcotest.(check bool) "g0 count" true (get row0 "n" = Rdf.Term.int_literal 3);
      Alcotest.(check bool) "g0 sum" true (get row0 "total" = Rdf.Term.int_literal 6);
      Alcotest.(check bool) "g0 min" true (get row0 "lo" = Rdf.Term.int_literal 1);
      Alcotest.(check bool) "g0 max" true (get row0 "hi" = Rdf.Term.int_literal 3);
      Alcotest.(check bool) "g0 avg" true (get row0 "mean" = Rdf.Term.int_literal 2);
      Alcotest.(check bool) "g1 count" true (get row1 "n" = Rdf.Term.int_literal 1);
      Alcotest.(check bool) "g1 sum" true (get row1 "total" = Rdf.Term.int_literal 10)
  | _ -> Alcotest.fail (Printf.sprintf "expected 2 groups, got %d" (List.length rows))

let test_count_distinct () =
  let store = agg_store () in
  (* e1 has value 10 under two predicates: ?s ?p ?v gives duplicates. *)
  match
    solutions_of store
      "SELECT (COUNT(?v) AS ?n) (COUNT(DISTINCT ?v) AS ?d) WHERE { \
       <http://t/e1> ?p ?v . }"
  with
  | [ row ] ->
      Alcotest.(check bool) "plain count 2" true
        (List.assoc "n" row = Rdf.Term.int_literal 2);
      Alcotest.(check bool) "distinct count 1" true
        (List.assoc "d" row = Rdf.Term.int_literal 1)
  | _ -> Alcotest.fail "expected one row"

let test_sum_non_numeric_unbound () =
  let store = agg_store () in
  match
    solutions_of store
      "SELECT (SUM(?v) AS ?total) WHERE { ?s <http://t/p2> ?v . }"
  with
  | [ row ] ->
      Alcotest.(check bool) "sum over strings is unbound" true
        (not (List.mem_assoc "total" row))
  | _ -> Alcotest.fail "expected one row"

let test_having () =
  let store = agg_store () in
  let rows =
    solutions_of store
      "SELECT ?s (COUNT(?v) AS ?n) WHERE { ?s <http://t/p0> ?v . } GROUP BY \
       ?s HAVING (?n > 1)"
  in
  match rows with
  | [ row ] ->
      Alcotest.(check bool) "only the 3-value group survives" true
        (List.assoc "s" row = iri 0)
  | _ -> Alcotest.fail "expected exactly one group after HAVING"

(* MINUS/VALUES work identically across all four modes (complements the
   random-query property with a deterministic case). *)
let test_modes_agree_on_sparql11 () =
  let store = tiny_store () in
  let text =
    "SELECT * WHERE { ?x <http://t/p0> ?y . VALUES ?y { <http://t/e1> \
     <http://t/e3> } MINUS { ?x <http://t/p2> ?n . } OPTIONAL { ?x \
     <http://t/p1> ?l . } FILTER EXISTS { ?x <http://t/p0> ?z . } }"
  in
  let counts =
    List.map
      (fun mode ->
        Option.get
          (Sparql_uo.Executor.run ~mode store text).Sparql_uo.Executor
            .result_count)
      Sparql_uo.Executor.all_modes
  in
  match counts with
  | first :: rest ->
      List.iter (fun n -> Alcotest.(check int) "modes agree" first n) rest
  | [] -> ()

let test_print_parse_roundtrip_sparql11 () =
  (* Printing a parsed query and re-parsing preserves its structure, for
     the SPARQL 1.1 features too. *)
  List.iter
    (fun text ->
      let q1 = Sparql.Parser.parse text in
      let printed = Sparql.Ast.to_string q1 in
      match Sparql.Parser.parse printed with
      | q2 ->
          Alcotest.(check bool)
            ("roundtrip: " ^ text)
            true
            (q1.Sparql.Ast.where = q2.Sparql.Ast.where
            && q1.Sparql.Ast.form = q2.Sparql.Ast.form
            && q1.Sparql.Ast.group_by = q2.Sparql.Ast.group_by
            && q1.Sparql.Ast.order_by = q2.Sparql.Ast.order_by
            && q1.Sparql.Ast.limit = q2.Sparql.Ast.limit)
      | exception Sparql.Parser.Parse_error { message; _ } ->
          Alcotest.fail
            (Printf.sprintf "reprint failed for %s: %s\n%s" text message
               printed))
    [
      "SELECT * WHERE { ?x <http://t/p0> ?y . MINUS { ?x <http://t/p1> ?z . } }";
      "SELECT * WHERE { ?x <http://t/p0> ?y . VALUES (?x ?z) { (<http://t/e0> \
       UNDEF) } }";
      "SELECT * WHERE { ?x <http://t/p0> ?y . FILTER NOT EXISTS { ?x \
       <http://t/p1> ?l . } }";
      "SELECT * WHERE { ?x <http://t/p0> ?y . FILTER (strlen(str(?y)) > 3 + \
       1) }";
      "SELECT ?g (COUNT(?v) AS ?n) WHERE { ?g <http://t/p0> ?v . } GROUP BY \
       ?g ORDER BY DESC(?n) LIMIT 2";
      "ASK { ?x <http://t/p0> ?y . }";
      "CONSTRUCT { ?y <http://t/inv> ?x . } WHERE { ?x <http://t/p0> ?y . }";
    ]

(* --- SPARQL Update --------------------------------------------------------- *)

let test_update_insert_delete_data () =
  let store = Rdf_store.Triple_store.of_triples [] in
  let store =
    Sparql_uo.Update_exec.run store
      "INSERT DATA { <http://t/e0> <http://t/p0> <http://t/e1> . \
       <http://t/e0> <http://t/p0> <http://t/e2> . }"
  in
  Alcotest.(check int) "two inserted" 2 (Rdf_store.Triple_store.size store);
  (* Re-inserting an existing triple is a no-op (graphs are sets). *)
  let store =
    Sparql_uo.Update_exec.run store
      "INSERT DATA { <http://t/e0> <http://t/p0> <http://t/e1> . }"
  in
  Alcotest.(check int) "idempotent insert" 2 (Rdf_store.Triple_store.size store);
  let store =
    Sparql_uo.Update_exec.run store
      "DELETE DATA { <http://t/e0> <http://t/p0> <http://t/e2> . }"
  in
  Alcotest.(check int) "one deleted" 1 (Rdf_store.Triple_store.size store);
  (* Deleting an absent triple is a no-op. *)
  let store =
    Sparql_uo.Update_exec.run store
      "DELETE DATA { <http://t/e9> <http://t/p0> <http://t/e9> . }"
  in
  Alcotest.(check int) "absent delete no-op" 1 (Rdf_store.Triple_store.size store)

let test_update_delete_where () =
  let store = tiny_store () in
  let before = Rdf_store.Triple_store.size store in
  let store =
    Sparql_uo.Update_exec.run store "DELETE WHERE { ?x <http://t/p1> ?l . }"
  in
  Alcotest.(check int) "p1 triples removed" (before - 2)
    (Rdf_store.Triple_store.size store);
  Alcotest.(check int) "no p1 left" 0
    (count store "SELECT * WHERE { ?x <http://t/p1> ?l . }")

let test_update_modify () =
  let store = tiny_store () in
  (* Rewrite p0 edges into derived edges, removing the originals. *)
  let store =
    Sparql_uo.Update_exec.run store
      "DELETE { ?x <http://t/p0> ?y . } INSERT { ?y <http://t/rev> ?x . } \
       WHERE { ?x <http://t/p0> ?y . }"
  in
  Alcotest.(check int) "originals gone" 0
    (count store "SELECT * WHERE { ?x <http://t/p0> ?y . }");
  Alcotest.(check int) "derived present" 3
    (count store "SELECT * WHERE { ?a <http://t/rev> ?b . }");
  (* INSERT-only with a fresh constant object. *)
  let store =
    Sparql_uo.Update_exec.run store
      "INSERT { ?x <http://t/tag> <http://t/marked> . } WHERE { ?x \
       <http://t/p1> ?l . }"
  in
  Alcotest.(check int) "tags added" 2
    (count store "SELECT * WHERE { ?x <http://t/tag> <http://t/marked> . }")

let test_update_sequence_and_errors () =
  let store = Rdf_store.Triple_store.of_triples [] in
  let store =
    Sparql_uo.Update_exec.run store
      "INSERT DATA { <http://t/a> <http://t/p> <http://t/b> . } ; DELETE \
       DATA { <http://t/a> <http://t/p> <http://t/b> . } ; INSERT DATA { \
       <http://t/c> <http://t/p> <http://t/d> . }"
  in
  Alcotest.(check int) "sequence applied in order" 1
    (Rdf_store.Triple_store.size store);
  (match
     Sparql.Parser.parse_update
       "INSERT DATA { ?x <http://t/p> <http://t/b> . }"
   with
  | exception Sparql.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected error: variable in DATA block");
  match Sparql.Parser.parse_update "DELETE { ?x <http://t/p> ?y . }" with
  | exception Sparql.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected error: DELETE template without WHERE"

let () =
  Alcotest.run "sparql11"
    [
      ( "regex",
        [
          Alcotest.test_case "basics" `Quick test_regex_basics;
          Alcotest.test_case "syntax errors" `Quick test_regex_errors;
          QCheck_alcotest.to_alcotest prop_regex_literal_self_match;
        ] );
      ( "parser",
        [
          Alcotest.test_case "MINUS + VALUES" `Quick test_parse_minus_values;
          Alcotest.test_case "single-var VALUES" `Quick test_parse_single_var_values;
          Alcotest.test_case "EXISTS filter" `Quick test_parse_exists_filter;
          Alcotest.test_case "arithmetic + functions" `Quick test_parse_arith_and_functions;
          Alcotest.test_case "ORDER BY" `Quick test_parse_order_by;
          Alcotest.test_case "ASK/CONSTRUCT/DESCRIBE" `Quick test_parse_forms;
          Alcotest.test_case "aggregates" `Quick test_parse_aggregates;
          Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip_sparql11;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "MINUS" `Quick test_minus_semantics;
          Alcotest.test_case "VALUES" `Quick test_values_semantics;
          Alcotest.test_case "EXISTS" `Quick test_exists_semantics;
          Alcotest.test_case "filter functions" `Quick test_filter_functions_semantics;
          Alcotest.test_case "ORDER BY" `Quick test_order_by_semantics;
          Alcotest.test_case "ASK" `Quick test_ask_form;
          Alcotest.test_case "CONSTRUCT" `Quick test_construct_form;
          Alcotest.test_case "DESCRIBE" `Quick test_describe_form;
          Alcotest.test_case "modes agree" `Quick test_modes_agree_on_sparql11;
        ] );
      ( "paths",
        [
          Alcotest.test_case "sequence" `Quick test_path_sequence;
          Alcotest.test_case "alternation" `Quick test_path_alternation;
          Alcotest.test_case "inverse" `Quick test_path_inverse;
          Alcotest.test_case "desugared patterns coalesce" `Quick test_path_desugared_patterns_coalesce;
          Alcotest.test_case "closures rejected" `Quick test_path_closures_rejected;
        ] );
      ( "update",
        [
          Alcotest.test_case "INSERT/DELETE DATA" `Quick test_update_insert_delete_data;
          Alcotest.test_case "DELETE WHERE" `Quick test_update_delete_where;
          Alcotest.test_case "DELETE/INSERT WHERE" `Quick test_update_modify;
          Alcotest.test_case "sequences and errors" `Quick test_update_sequence_and_errors;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "COUNT(*)" `Quick test_count_star;
          Alcotest.test_case "COUNT over empty" `Quick test_count_empty_is_zero;
          Alcotest.test_case "GROUP BY with all aggregates" `Quick test_group_by_aggregates;
          Alcotest.test_case "COUNT DISTINCT" `Quick test_count_distinct;
          Alcotest.test_case "SUM over non-numeric" `Quick test_sum_non_numeric_unbound;
          Alcotest.test_case "HAVING" `Quick test_having;
        ] );
    ]
