(* Tests for the workload library: the deterministic RNG, the LUBM and
   DBpedia-like generators' schema invariants, the benchmark queries'
   anchors, and the metrics module. *)

let ub = Rdf.Namespace.ub

(* --- Rng --------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let draw seed = List.init 20 (fun _ -> Workload.Rng.int (Workload.Rng.create ~seed) 1000) in
  ignore draw;
  let r1 = Workload.Rng.create ~seed:42 and r2 = Workload.Rng.create ~seed:42 in
  let s1 = List.init 50 (fun _ -> Workload.Rng.int r1 1000) in
  let s2 = List.init 50 (fun _ -> Workload.Rng.int r2 1000) in
  Alcotest.(check (list int)) "same seed same stream" s1 s2;
  let r3 = Workload.Rng.create ~seed:43 in
  let s3 = List.init 50 (fun _ -> Workload.Rng.int r3 1000) in
  Alcotest.(check bool) "different seed differs" true (s1 <> s3)

let test_rng_bounds () =
  let rng = Workload.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Workload.Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10);
    let y = Workload.Rng.between rng 3 5 in
    Alcotest.(check bool) "in [3,5]" true (y >= 3 && y <= 5);
    let f = Workload.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_zipf_skew () =
  let rng = Workload.Rng.create ~seed:11 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let r = Workload.Rng.zipf rng ~n:10 ~skew:1.2 in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 most frequent" true
    (counts.(0) > counts.(5) && counts.(0) > counts.(9))

(* --- Generators ------------------------------------------------------------------ *)

let lubm_store = lazy (Workload.Lubm.store Workload.Lubm.tiny)
let dbp_store = lazy (Workload.Dbpedia_gen.store Workload.Dbpedia_gen.tiny)

let count_p store p =
  match Rdf_store.Triple_store.encode_term store (Rdf.Term.iri p) with
  | Some id -> Rdf_store.Triple_store.count store ~p:id ()
  | None -> 0

let test_lubm_deterministic () =
  let t1 = Workload.Lubm.generate Workload.Lubm.tiny in
  let t2 = Workload.Lubm.generate Workload.Lubm.tiny in
  Alcotest.(check int) "same size" (List.length t1) (List.length t2);
  Alcotest.(check bool) "identical triples" true
    (List.for_all2 Rdf.Triple.equal t1 t2)

let test_lubm_schema_coverage () =
  let store = Lazy.force lubm_store in
  (* Every predicate the benchmark queries use must occur in the data. *)
  List.iter
    (fun local ->
      Alcotest.(check bool) (local ^ " present") true (count_p store (ub local) > 0))
    [
      "headOf"; "worksFor"; "undergraduateDegreeFrom"; "doctoralDegreeFrom";
      "mastersDegreeFrom"; "publicationAuthor"; "memberOf"; "subOrganizationOf";
      "name"; "emailAddress"; "telephone"; "advisor"; "teacherOf"; "takesCourse";
      "teachingAssistantOf"; "researchInterest";
    ];
  Alcotest.(check bool) "rdf:type present" true
    (count_p store Rdf.Namespace.rdf_type > 0);
  (* Table 2's "18 predicates" shape: 16 ub predicates + name/type etc. *)
  let stats = Rdf_store.Stats.compute store in
  Alcotest.(check int) "18-predicate schema" 17 (Rdf_store.Stats.num_predicates stats)

let test_lubm_query_anchors_exist () =
  (* The constants hard-coded in the benchmark queries must exist at the
     default scale's university 0; tiny has university 0 only, so check
     the department floor logic there. *)
  let store = Lazy.force lubm_store in
  let dept1 = Workload.Lubm.department_iri ~univ:0 ~dept:1 in
  let dept12 = Workload.Lubm.department_iri ~univ:0 ~dept:12 in
  List.iter
    (fun iri ->
      Alcotest.(check bool) (iri ^ " exists") true
        (Rdf_store.Triple_store.encode_term store (Rdf.Term.iri iri) <> None))
    [ dept1; dept12;
      dept1 ^ "/UndergraduateStudent363";
      "http://www.Department0.University0.edu/UndergraduateStudent91" ];
  (* The q1.4 email literal. *)
  Alcotest.(check bool) "q1.4 email literal exists" true
    (Rdf_store.Triple_store.encode_term store
       (Rdf.Term.literal "UndergraduateStudent309@Department12.University0.edu")
    <> None)

let test_lubm_structural_invariants () =
  let store = Lazy.force lubm_store in
  let id term = Rdf_store.Triple_store.encode_term store term in
  let head = Option.get (id (Rdf.Term.iri (ub "headOf"))) in
  let works = Option.get (id (Rdf.Term.iri (ub "worksFor"))) in
  (* Every department head also works for a department. *)
  let ok = ref true in
  Rdf_store.Triple_store.iter store ~p:head
    ~f:(fun ~s ~p:_ ~o:_ ->
      if Rdf_store.Triple_store.count store ~s ~p:works () = 0 then ok := false)
    ();
  Alcotest.(check bool) "heads work for departments" true !ok;
  (* Exactly one head per department. *)
  let dept_heads = Hashtbl.create 64 in
  Rdf_store.Triple_store.iter store ~p:head
    ~f:(fun ~s:_ ~p:_ ~o ->
      Hashtbl.replace dept_heads o (1 + Option.value (Hashtbl.find_opt dept_heads o) ~default:0))
    ();
  Hashtbl.iter (fun _ n -> Alcotest.(check int) "one head per dept" 1 n) dept_heads

let test_lubm_scaling () =
  (* University 0 carries fixed floors (for the query anchors), so measure
     growth on the marginal universities: adding two more must add about
     twice what adding one does. *)
  let size n =
    List.length (Workload.Lubm.generate { Workload.Lubm.tiny with universities = n })
  in
  let s1 = size 1 and s2 = size 2 and s3 = size 3 in
  Alcotest.(check bool) "monotone growth" true (s1 < s2 && s2 < s3);
  let d1 = s2 - s1 and d2 = s3 - s1 in
  Alcotest.(check bool) "marginal universities comparable in size" true
    (d2 > d1 * 3 / 2 && d2 < d1 * 3)

let test_dbpedia_deterministic () =
  let t1 = Workload.Dbpedia_gen.generate Workload.Dbpedia_gen.tiny in
  let t2 = Workload.Dbpedia_gen.generate Workload.Dbpedia_gen.tiny in
  Alcotest.(check bool) "identical triples" true
    (List.for_all2 Rdf.Triple.equal t1 t2)

let test_dbpedia_schema_coverage () =
  let store = Lazy.force dbp_store in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " present") true (count_p store p > 0))
    [
      Rdf.Namespace.rdfs "label"; Rdf.Namespace.foaf "name";
      Rdf.Namespace.purl "subject"; Rdf.Namespace.skos "subject";
      Rdf.Namespace.nsprov "wasDerivedFrom"; Rdf.Namespace.owl "sameAs";
      Rdf.Namespace.dbo "wikiPageWikiLink"; Rdf.Namespace.dbo "wikiPageRedirects";
      Rdf.Namespace.foaf "isPrimaryTopicOf"; Rdf.Namespace.foaf "primaryTopic";
      Rdf.Namespace.dbo "abstract"; Rdf.Namespace.geo "lat";
      Rdf.Namespace.geo "long"; Rdf.Namespace.foaf "depiction";
      Rdf.Namespace.foaf "homepage"; Rdf.Namespace.dbo "populationTotal";
      Rdf.Namespace.dbo "thumbnail"; Rdf.Namespace.rdfs "comment";
      Rdf.Namespace.foaf "page"; Rdf.Namespace.dbp "industry";
      Rdf.Namespace.dbp "location"; Rdf.Namespace.dbp "locationCountry";
      Rdf.Namespace.dbp "locationCity"; Rdf.Namespace.dbp "manufacturer";
      Rdf.Namespace.dbp "products"; Rdf.Namespace.dbp "model";
      Rdf.Namespace.georss "point";
    ]

let test_dbpedia_union_motivation () =
  (* The Figure 1(a) scenario: some persons have foaf:name, all have
     rdfs:label — so the UNION genuinely collects more than either
     branch. *)
  let store = Lazy.force dbp_store in
  let labels = count_p store (Rdf.Namespace.rdfs "label") in
  let names = count_p store (Rdf.Namespace.foaf "name") in
  Alcotest.(check bool) "labels outnumber names" true (labels > names);
  Alcotest.(check bool) "names nonempty" true (names > 0);
  (* Category membership split across purl:subject and skos:subject. *)
  Alcotest.(check bool) "both subject representations in use" true
    (count_p store (Rdf.Namespace.purl "subject") > 0
    && count_p store (Rdf.Namespace.skos "subject") > 0)

let test_dbpedia_hubs () =
  let store = Lazy.force dbp_store in
  let id iri = Rdf_store.Triple_store.encode_term store (Rdf.Term.iri iri) in
  let economic = Option.get (id Workload.Dbpedia_gen.economic_system) in
  let link =
    Option.get (id (Rdf.Namespace.dbo "wikiPageWikiLink"))
  in
  let incoming = Rdf_store.Triple_store.count store ~p:link ~o:economic () in
  Alcotest.(check bool) "Economic_system is a selective hub" true
    (incoming > 0 && incoming < Rdf_store.Triple_store.size store / 100);
  (* Air_masses anchors q1.3: it must have a primary page and an alias
     redirecting to it. *)
  let air = Option.get (id Workload.Dbpedia_gen.air_masses) in
  let primary = Option.get (id (Rdf.Namespace.foaf "isPrimaryTopicOf")) in
  Alcotest.(check bool) "Air_masses has a page" true
    (Rdf_store.Triple_store.count store ~s:air ~p:primary () > 0);
  let redirects = Option.get (id (Rdf.Namespace.dbo "wikiPageRedirects")) in
  Alcotest.(check bool) "alias redirects to Air_masses" true
    (Rdf_store.Triple_store.count store ~p:redirects ~o:air () > 0)

(* --- Queries and metrics ------------------------------------------------------------ *)

let test_queries_complete () =
  List.iter
    (fun ds ->
      let entries = Workload.Queries.all ds in
      Alcotest.(check int) "12 queries" 12 (List.length entries);
      Alcotest.(check int) "6 in group 1" 6 (List.length (Workload.Queries.group1 ds));
      Alcotest.(check int) "6 in group 2" 6 (List.length (Workload.Queries.group2 ds)))
    [ Workload.Queries.Lubm; Workload.Queries.Dbpedia ];
  Alcotest.(check bool) "get q1.3" true
    ((Workload.Queries.get Workload.Queries.Lubm "q1.3").Workload.Queries.id = "q1.3");
  match Workload.Queries.get Workload.Queries.Lubm "q9.9" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_query_classification () =
  let classify id =
    Workload.Metrics.classify
      (Sparql.Parser.parse
         (Workload.Queries.get Workload.Queries.Lubm id).Workload.Queries.text)
  in
  Alcotest.(check string) "q1.1 is U" "U"
    (Workload.Metrics.class_name (classify "q1.1"));
  Alcotest.(check string) "q1.3 is O" "O"
    (Workload.Metrics.class_name (classify "q1.3"));
  Alcotest.(check string) "q1.5 is UO" "UO"
    (Workload.Metrics.class_name (classify "q1.5"))

let test_metrics_rows () =
  let store = Lazy.force lubm_store in
  let rows =
    List.map
      (Workload.Metrics.row_of ~row_budget:2_000_000 store)
      (Workload.Queries.group1 Workload.Queries.Lubm)
  in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  List.iter
    (fun (row : Workload.Metrics.row) ->
      Alcotest.(check bool) (row.id ^ " has BGPs") true (row.count_bgp >= 1);
      Alcotest.(check bool) (row.id ^ " has depth") true (row.depth >= 1))
    rows;
  (* q1.3's nested optionals: depth at least 4. *)
  let q13 = List.find (fun (r : Workload.Metrics.row) -> r.id = "q1.3") rows in
  Alcotest.(check bool) "q1.3 deep nesting" true (q13.depth >= 4)

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
        ] );
      ( "lubm",
        [
          Alcotest.test_case "deterministic" `Quick test_lubm_deterministic;
          Alcotest.test_case "schema coverage" `Quick test_lubm_schema_coverage;
          Alcotest.test_case "query anchors exist" `Quick test_lubm_query_anchors_exist;
          Alcotest.test_case "structural invariants" `Quick test_lubm_structural_invariants;
          Alcotest.test_case "scaling" `Quick test_lubm_scaling;
        ] );
      ( "dbpedia",
        [
          Alcotest.test_case "deterministic" `Quick test_dbpedia_deterministic;
          Alcotest.test_case "schema coverage" `Quick test_dbpedia_schema_coverage;
          Alcotest.test_case "union motivation" `Quick test_dbpedia_union_motivation;
          Alcotest.test_case "hubs" `Quick test_dbpedia_hubs;
        ] );
      ( "queries",
        [
          Alcotest.test_case "complete" `Quick test_queries_complete;
          Alcotest.test_case "classification" `Quick test_query_classification;
          Alcotest.test_case "metrics rows" `Quick test_metrics_rows;
        ] );
    ]
