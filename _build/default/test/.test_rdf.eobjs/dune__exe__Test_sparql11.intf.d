test/test_sparql11.mli:
