test/test_rdf.ml: Alcotest Filename Fun List Option Printf Rdf String Sys
