test/test_sparql11.ml: Alcotest Buffer List Option Printf QCheck2 QCheck_alcotest Rdf Rdf_store Sparql Sparql_uo String
