test/test_engine.ml: Alcotest Array Engine Hashtbl List Option QCheck2 QCheck_alcotest Qgen Rdf Rdf_store Sparql
