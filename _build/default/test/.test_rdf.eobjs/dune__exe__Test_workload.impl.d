test/test_workload.ml: Alcotest Array Hashtbl Lazy List Option Rdf Rdf_store Sparql Workload
