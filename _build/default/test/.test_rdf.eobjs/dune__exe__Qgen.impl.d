test/qgen.ml: Array Engine List Printf QCheck2 Rdf Sparql Sparql_uo String
