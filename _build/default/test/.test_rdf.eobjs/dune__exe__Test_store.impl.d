test/test_store.ml: Alcotest Array Bytes Char Filename Fun In_channel List Option Out_channel Printf QCheck2 QCheck_alcotest Rdf Rdf_store String Sys
