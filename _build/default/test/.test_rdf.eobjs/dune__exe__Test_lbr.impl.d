test/test_lbr.ml: Alcotest Engine Lbr List QCheck2 QCheck_alcotest Qgen Rdf_store Sparql Sparql_uo Workload
