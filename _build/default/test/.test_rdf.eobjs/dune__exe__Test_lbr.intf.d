test/test_lbr.mli:
