test/test_core.ml: Alcotest Engine List Option Printf QCheck2 QCheck_alcotest Qgen Rdf Rdf_store Sparql Sparql_uo Workload
