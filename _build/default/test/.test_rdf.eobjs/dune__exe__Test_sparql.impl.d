test/test_sparql.ml: Alcotest Array Format List Printf QCheck2 QCheck_alcotest Rdf Sparql Workload
