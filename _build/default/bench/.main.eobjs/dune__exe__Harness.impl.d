bench/harness.ml: Buffer Lbr List Option Printf Sparql_uo String Workload
