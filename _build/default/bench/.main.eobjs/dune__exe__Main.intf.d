bench/main.mli:
