bench/main.ml: Analyze Arg Bechamel Benchmark Engine Harness Hashtbl Lazy Lbr List Measure Option Printf Rdf Rdf_store Sparql Sparql_uo Staged String Test Time Toolkit Unix Workload
