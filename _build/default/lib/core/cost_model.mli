(** The SPARQL-UO cost model of Section 5.1.1.

    Cost = BGP evaluation cost + algebra cost, where the algebra cost of
    the implicit ANDs at a level is [f_AND] over the result sizes of the
    node and its left/right siblings, the cost of a UNION is [f_UNION] over
    its branches' result sizes, and the cost of an OPTIONAL is
    [f_OPTIONAL] over the left-hand side's and the child's result sizes.
    Following the paper's instantiation, [f_AND] and [f_OPTIONAL] are
    products and [f_UNION] is a sum; result sizes of joins are estimated as
    products and of unions as sums.

    Δ-cost of a transformation (Equations 4 and 8) is obtained by
    evaluating {!two_level_cost} on the group before and after — the
    affected terms are exactly the ones that differ, so unaffected terms
    cancel. *)

type env = Engine.Bgp_eval.t

(** [bgp_cost env b] — cost(B) from the underlying engine (Section
    5.1.2). The empty BGP costs 0. *)
val bgp_cost : env -> Engine.Bgp.t -> float

(** [bgp_card env b] — |res(B)|. The empty BGP has cardinality 1. *)
val bgp_card : env -> Engine.Bgp.t -> float

(** [node_card env node] — estimated result size of a BE-tree node:
    BGPs from the engine's estimator, groups as products of their
    children, UNIONs as sums of their branches, OPTIONALs as
    [max(card, 1)] of their child (the left side is always retained). *)
val node_card : env -> Be_tree.node -> float

val group_card : env -> Be_tree.group -> float

(** [level_cost env g] — the cost terms local to one level: BGP costs of
    BGP children, [f_AND] terms of each BGP child against its siblings,
    [f_UNION] of each UNION child and [f_OPTIONAL] of each OPTIONAL
    child. *)
val level_cost : env -> Be_tree.group -> float

(** [two_level_cost env g] — {!level_cost} of [g] plus the level costs of
    the groups directly under [g]'s UNION/OPTIONAL/group children: the
    scope a single merge or inject transformation can affect. *)
val two_level_cost : env -> Be_tree.group -> float
