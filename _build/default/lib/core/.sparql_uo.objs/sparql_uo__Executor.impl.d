lib/core/executor.ml: Array Be_tree Buffer Engine Evaluator Float Hashtbl Int List Logs Option Printf Rdf Rdf_store Sparql Transform Unix
