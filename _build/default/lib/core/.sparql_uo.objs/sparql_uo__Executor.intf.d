lib/core/executor.mli: Be_tree Engine Evaluator Rdf Rdf_store Sparql
