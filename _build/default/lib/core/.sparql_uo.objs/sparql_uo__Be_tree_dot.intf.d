lib/core/be_tree_dot.mli: Be_tree
