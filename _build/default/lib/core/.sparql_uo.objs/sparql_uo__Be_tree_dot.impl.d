lib/core/be_tree_dot.ml: Be_tree Buffer Format List Printf Rdf Sparql String
