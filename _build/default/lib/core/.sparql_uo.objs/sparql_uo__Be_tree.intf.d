lib/core/be_tree.mli: Engine Format Sparql
