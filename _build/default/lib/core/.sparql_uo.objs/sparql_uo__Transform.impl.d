lib/core/transform.ml: Array Be_tree Cost_model Engine Float List Logs Sparql
