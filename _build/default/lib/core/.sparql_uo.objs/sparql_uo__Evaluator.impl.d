lib/core/evaluator.ml: Array Be_tree Engine Float Hashtbl List Option Rdf_store Sparql
