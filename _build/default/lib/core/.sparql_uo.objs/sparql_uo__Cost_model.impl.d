lib/core/cost_model.ml: Array Be_tree Engine Float List Sparql
