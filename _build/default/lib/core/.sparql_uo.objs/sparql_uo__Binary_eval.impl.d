lib/core/binary_eval.ml: Array Engine List Rdf_store Sparql
