lib/core/binary_eval.mli: Engine Sparql
