lib/core/be_tree.ml: Array Engine Format Int List Option Rdf Result Sparql String
