lib/core/evaluator.mli: Be_tree Engine Sparql
