lib/core/update_exec.mli: Engine Rdf_store Sparql
