lib/core/cost_model.mli: Be_tree Engine
