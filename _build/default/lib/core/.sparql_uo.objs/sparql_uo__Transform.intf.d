lib/core/transform.mli: Be_tree Engine
