lib/core/update_exec.ml: Array Executor List Rdf Rdf_store Sparql
