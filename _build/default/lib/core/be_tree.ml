type node =
  | Bgp of Engine.Bgp.t
  | Union of group list
  | Optional of group
  | Minus of group
  | Values of Sparql.Ast.values_block
  | Group of group

and group = { children : node list; filters : Sparql.Ast.expr list }

(* --- Construction ------------------------------------------------------ *)

let add_distinct acc vs =
  List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) acc vs

let rec vars_acc acc (g : group) =
  let acc =
    List.fold_left
      (fun acc node ->
        match node with
        | Bgp b -> add_distinct acc (Engine.Bgp.vars b)
        | Values { Sparql.Ast.vars; _ } -> add_distinct acc vars
        | Group inner | Optional inner | Minus inner -> vars_acc acc inner
        | Union gs -> List.fold_left vars_acc acc gs)
      acc g.children
  in
  List.fold_left
    (fun acc e ->
      add_distinct acc (Sparql.Expr.vars ~pattern_vars:Sparql.Ast.group_vars e))
    acc g.filters

let vars g = List.rev (vars_acc [] g)


(* Variables bound in *every* result row of a group: BGP, VALUES (columns
   bound in all rows) and nested-group variables, plus variables common to
   all UNION branches. OPTIONAL/MINUS contribute nothing (their variables
   may stay unbound). Needed by both the construction-time coalescing
   safety check below and the transformation safety checks. *)
let rec certain_vars (g : group) =
  List.fold_left
    (fun acc node ->
      match node with
      | Bgp b -> acc @ Engine.Bgp.vars b
      | Values { Sparql.Ast.vars; rows } ->
          let bound_everywhere i =
            List.for_all (fun row -> List.nth row i <> None) rows
          in
          acc @ List.filteri (fun i _ -> rows <> [] && bound_everywhere i) vars
      | Group inner -> acc @ certain_vars inner
      | Optional _ | Minus _ -> acc
      | Union [] -> acc
      | Union (first :: rest) ->
          let common =
            List.fold_left
              (fun common branch ->
                List.filter (fun v -> List.mem v (certain_vars branch)) common)
              (certain_vars first) rest
          in
          acc @ common)
    [] g.children

(* An OPTIONAL or MINUS sibling is a *barrier*: its meaning depends on
   what sits to its left. [barriers] describes each one: its position, its
   subtree's variables, and the variables certainly bound by the siblings
   originally to its left. A triple pattern may be placed in a component
   whose leftmost constituent precedes a barrier the pattern originally
   followed only if every variable it shares with the barrier's subtree
   was already certainly bound on the barrier's left — otherwise the move
   would change the barrier's semantics (the same condition the merge and
   inject transformations must respect; vacuous on well-designed
   patterns, which is why the paper's construction can ignore it). *)
type barrier = {
  bpos : int;
  bvars : string list;
  bleft_certain : string list;
}

(* Coalesce the triple patterns scattered across one level into maximal
   BGPs subject to barrier safety, keeping each component's leftmost
   source position. *)
let coalesce_positioned (barriers : barrier list)
    (positioned : (int * Sparql.Triple_pattern.t) list) =
  let arr = Array.of_list positioned in
  let n = Array.length arr in
  (* May pattern [k] (at its original position) live in a component whose
     leftmost position is [leftmost]? *)
  let movable leftmost k =
    let pos_k = fst arr.(k) in
    let tp_vars = Sparql.Triple_pattern.vars (snd arr.(k)) in
    List.for_all
      (fun { bpos; bvars; bleft_certain } ->
        if bpos <= leftmost || bpos >= pos_k then true
        else
          List.for_all
            (fun v -> (not (List.mem v bvars)) || List.mem v bleft_certain)
            tp_vars)
      barriers
  in
  (* Components as member-index lists, in leftmost order; grown to a
     fixpoint: merge any two coalescable components whose union stays
     barrier-safe. Level sizes are small, so the quadratic sweep is
     fine. *)
  let components = ref (List.init n (fun i -> [ i ])) in
  let leftmost c = List.fold_left (fun m i -> min m (fst arr.(i))) max_int c in
  let coalescable c1 c2 =
    List.exists
      (fun i ->
        List.exists
          (fun j ->
            Sparql.Triple_pattern.coalescable (snd arr.(i)) (snd arr.(j)))
          c2)
      c1
  in
  let progress = ref true in
  while !progress do
    progress := false;
    let rec sweep = function
      | [] -> []
      | c :: rest -> (
          let mergeable, others =
            List.partition
              (fun c' ->
                coalescable c c'
                &&
                let merged = c @ c' in
                let lm = leftmost merged in
                List.for_all (movable lm) merged)
              rest
          in
          match mergeable with
          | [] -> c :: sweep others
          | _ ->
              progress := true;
              sweep ((c @ List.concat mergeable) :: others))
    in
    components := sweep !components
  done;
  !components
  |> List.map (fun c ->
         let members = List.sort (fun i j -> Int.compare (fst arr.(i)) (fst arr.(j))) c in
         (fst arr.(List.hd members), List.map (fun i -> snd arr.(i)) members))
  |> List.sort (fun (p1, _) (p2, _) -> Int.compare p1 p2)

let rec of_ast (g : Sparql.Ast.group) : group =
  (* Assign a source position to every element; triple patterns are
     positioned individually so a coalesced BGP lands at its leftmost
     constituent. *)
  let counter = ref 0 in
  let next () =
    let p = !counter in
    incr counter;
    p
  in
  let triples = ref [] and others = ref [] and filters = ref [] in
  List.iter
    (fun element ->
      match element with
      | Sparql.Ast.Triples tps ->
          List.iter (fun tp -> triples := (next (), tp) :: !triples) tps
      | Sparql.Ast.Group inner -> others := (next (), Group (of_ast inner)) :: !others
      | Sparql.Ast.Union gs -> (
          match gs with
          | [ only ] -> others := (next (), Group (of_ast only)) :: !others
          | _ -> others := (next (), Union (List.map of_ast gs)) :: !others)
      | Sparql.Ast.Optional inner ->
          others := (next (), Optional (of_ast inner)) :: !others
      | Sparql.Ast.Minus inner ->
          others := (next (), Minus (of_ast inner)) :: !others
      | Sparql.Ast.Values block ->
          others := (next (), Values block) :: !others
      | Sparql.Ast.Filter e -> filters := e :: !filters)
    g;
  (* Barrier bookkeeping for safe coalescing: walk the level in source
     order accumulating certainly-bound variables. *)
  let barriers =
    let elems =
      List.sort
        (fun (p1, _) (p2, _) -> Int.compare p1 p2)
        (List.map (fun (p, tp) -> (p, `Tp tp)) (List.rev !triples)
        @ List.map (fun (p, node) -> (p, `Node node)) (List.rev !others))
    in
    let acc = ref [] in
    let certain = ref [] in
    List.iter
      (fun (pos, elem) ->
        match elem with
        | `Tp tp -> certain := !certain @ Sparql.Triple_pattern.vars tp
        | `Node (Optional inner | Minus inner) ->
            acc :=
              { bpos = pos; bvars = vars inner; bleft_certain = !certain }
              :: !acc
        | `Node node ->
            certain :=
              !certain @ certain_vars { children = [ node ]; filters = [] })
      elems;
    List.rev !acc
  in
  let bgps =
    List.map
      (fun (pos, patterns) -> (pos, Bgp patterns))
      (coalesce_positioned barriers (List.rev !triples))
  in
  let children =
    List.sort
      (fun (p1, _) (p2, _) -> Int.compare p1 p2)
      (bgps @ List.rev !others)
    |> List.map snd
  in
  { children; filters = List.rev !filters }

let of_query (q : Sparql.Ast.query) = of_ast q.Sparql.Ast.where

(* --- Conversion to the binary algebra ---------------------------------- *)

let rec to_algebra (g : group) : Sparql.Algebra.t =
  let join_with acc p =
    match acc with
    | None -> Some p
    | Some q -> Some (Sparql.Algebra.And (q, p))
  in
  let body =
    List.fold_left
      (fun acc node ->
        match node with
        | Bgp [] -> join_with acc Sparql.Algebra.Unit
        | Bgp patterns ->
            List.fold_left
              (fun acc tp -> join_with acc (Sparql.Algebra.Triple tp))
              acc patterns
        | Group inner -> join_with acc (Sparql.Algebra.Group (to_algebra inner))
        | Union gs -> (
            match List.map (fun g -> Sparql.Algebra.Group (to_algebra g)) gs with
            | [] -> acc
            | first :: rest ->
                join_with acc
                  (List.fold_left
                     (fun u g -> Sparql.Algebra.Union (u, g))
                     first rest))
        | Optional inner ->
            let left = Option.value acc ~default:Sparql.Algebra.Unit in
            Some
              (Sparql.Algebra.Optional
                 (left, Sparql.Algebra.Group (to_algebra inner)))
        | Minus inner ->
            let left = Option.value acc ~default:Sparql.Algebra.Unit in
            Some
              (Sparql.Algebra.Minus
                 (left, Sparql.Algebra.Group (to_algebra inner)))
        | Values block -> join_with acc (Sparql.Algebra.Values block))
      None g.children
  in
  let body = Option.value body ~default:Sparql.Algebra.Unit in
  List.fold_left
    (fun p e -> Sparql.Algebra.Filter (e, p))
    body g.filters

(* --- Validity ----------------------------------------------------------- *)

let rec check (g : group) =
  (* Maximality: two coalescable sibling BGPs must be merged — unless an
     OPTIONAL/MINUS barrier between them justifies keeping them apart
     (barrier-safe construction, see coalesce_positioned). *)
  let children = Array.of_list g.children in
  let barrier_between i j =
    let lo = min i j and hi = max i j in
    let rec go k =
      k < hi
      && ((match children.(k) with Optional _ | Minus _ -> true | _ -> false)
         || go (k + 1))
    in
    go (lo + 1)
  in
  let maximality =
    let violation = ref None in
    Array.iteri
      (fun i node ->
        match node with
        | Bgp (_ :: _ as b1) ->
            Array.iteri
              (fun j node' ->
                match node' with
                | Bgp (_ :: _ as b2)
                  when j > i
                       && Engine.Bgp.coalescable b1 b2
                       && not (barrier_between i j) ->
                    violation :=
                      Some "sibling BGP nodes are coalescable (BGPs not maximal)"
                | _ -> ())
              children
        | _ -> ())
      children;
    match !violation with None -> Ok () | Some msg -> Error msg
  in
  let ( let* ) r f = Result.bind r f in
  let* () = maximality in
  let check_node = function
    | Bgp _ -> Ok ()
    | Values { Sparql.Ast.vars; rows } ->
        if List.for_all (fun row -> List.length row = List.length vars) rows
        then Ok ()
        else Error "VALUES row arity mismatch"
    | Group inner -> check inner
    | Optional inner | Minus inner -> check inner
    | Union gs ->
        if List.length gs < 2 then Error "UNION node with fewer than 2 children"
        else
          List.fold_left
            (fun acc g -> Result.bind acc (fun () -> check g))
            (Ok ()) gs
  in
  List.fold_left
    (fun acc node -> Result.bind acc (fun () -> check_node node))
    (Ok ()) g.children

(* --- Metrics ------------------------------------------------------------ *)

let rec count_bgp (g : group) =
  List.fold_left
    (fun acc node ->
      match node with
      | Bgp [] -> acc
      | Bgp _ -> acc + 1
      | Values _ -> acc
      | Group inner | Optional inner | Minus inner -> acc + count_bgp inner
      | Union gs -> List.fold_left (fun acc g -> acc + count_bgp g) acc gs)
    0 g.children

let rec depth (g : group) =
  1
  + List.fold_left
      (fun acc node ->
        let d =
          match node with
          | Bgp _ | Values _ -> 0
          | Group inner | Optional inner | Minus inner -> depth inner
          | Union gs -> List.fold_left (fun m g -> max m (depth g)) 0 gs
        in
        max acc d)
      0 g.children


(* --- Printing ----------------------------------------------------------- *)

let rec pp_node fmt = function
  | Bgp [] -> Format.pp_print_string fmt "BGP(empty)"
  | Bgp patterns ->
      Format.fprintf fmt "@[<hv 2>BGP[%a]@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ ")
           (fun fmt tp ->
             Format.pp_print_string fmt (Sparql.Triple_pattern.to_string tp)))
        patterns
  | Union gs ->
      Format.fprintf fmt "@[<hv 2>UNION(@,%a)@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           pp)
        gs
  | Optional inner -> Format.fprintf fmt "@[<hv 2>OPTIONAL(%a)@]" pp inner
  | Minus inner -> Format.fprintf fmt "@[<hv 2>MINUS(%a)@]" pp inner
  | Values { Sparql.Ast.vars; rows } ->
      Format.fprintf fmt "VALUES(%s/%d)" (String.concat "," vars)
        (List.length rows)
  | Group inner -> Format.fprintf fmt "@[<hv 2>GROUP(%a)@]" pp inner

and pp fmt (g : group) =
  Format.fprintf fmt "@[<hv 2>{%a%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       pp_node)
    g.children
    (fun fmt filters ->
      List.iter
        (fun e ->
          Format.fprintf fmt ";@ FILTER(%a)"
            (Sparql.Ast.pp_expr (Rdf.Namespace.with_defaults ()))
            e)
        filters)
    g.filters

let to_string g = Format.asprintf "%a" pp g
