(** The BGP-based Evaluation tree (Definition 8): the paper's plan
    representation for SPARQL-UO queries.

    A group graph pattern node holds an ordered list of children; leaves are
    (maximal) BGP nodes; internal nodes are UNION nodes (>= 2 group
    children), OPTIONAL nodes (exactly one group child, positioned among its
    siblings — the OPTIONAL-left pattern is everything to its left) and
    nested group nodes. FILTERs of a group are kept on the group node and
    applied to its full result (SPARQL group semantics). *)

type node =
  | Bgp of Engine.Bgp.t
      (** a BGP leaf; the empty list is the *empty BGP node* that a merge
          transformation leaves behind (result: the unit mapping) *)
  | Union of group list
  | Optional of group
  | Minus of group
      (** SPARQL 1.1 MINUS: applies to everything to its left, like
          OPTIONAL *)
  | Values of Sparql.Ast.values_block  (** inline-data leaf *)
  | Group of group

and group = { children : node list; filters : Sparql.Ast.expr list }

(** {1 Construction} *)

(** [of_ast g] builds the BE-tree of a surface group graph pattern:
    sibling triple patterns (across the whole level) are coalesced into
    maximal BGP nodes, each placed at its leftmost constituent's original
    position (Section 4.1). *)
val of_ast : Sparql.Ast.group -> group

(** [of_query q] is [of_ast q.where]. *)
val of_query : Sparql.Ast.query -> group

(** {1 Conversion} *)

(** [to_algebra g] is the Definition 6 binary algebra of the tree — the
    basis for the semantics oracle and for explaining plans. *)
val to_algebra : group -> Sparql.Algebra.t

(** {1 Validity (Section 4.2.1)} *)

(** [check g] verifies the structural invariants of Definition 8: UNION
    nodes have >= 2 children, BGP leaves are coalesced maximally within
    their level (empty BGP nodes from transformations are permitted). *)
val check : group -> (unit, string) result

(** {1 Metrics (Section 7.1)} *)

(** [count_bgp g] — the number of (non-empty) BGP leaves. *)
val count_bgp : group -> int

(** [depth g] — the maximum nesting depth of group graph patterns; the
    outermost group contributes 1, per the paper's [Depth(P) =
    Depth(P1) + 1] for [P = {P1}]. *)
val depth : group -> int

(** [vars g] — distinct variables, first-use order. *)
val vars : group -> string list

(** [certain_vars g] — variables bound in *every* result row of [g]: BGP
    and nested-group variables, VALUES columns bound in all rows, and
    variables common to all UNION branches; OPTIONAL/MINUS variables are
    excluded. Used by the coalescing and transformation safety checks. *)
val certain_vars : group -> string list

(** {1 Printing} *)

val pp : Format.formatter -> group -> unit
val to_string : group -> string
