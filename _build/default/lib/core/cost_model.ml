type env = Engine.Bgp_eval.t

let bgp_cost env = function
  | [] -> 0.
  | patterns -> Engine.Bgp_eval.estimate_cost env patterns

let bgp_card env = function
  | [] -> 1.
  | patterns -> Engine.Bgp_eval.estimate_card env patterns

let rec node_card env = function
  | Be_tree.Bgp b -> bgp_card env b
  | Be_tree.Values { Sparql.Ast.rows; _ } ->
      Float.max (float_of_int (List.length rows)) 1.
  | Be_tree.Group g -> group_card env g
  | Be_tree.Union gs ->
      List.fold_left (fun acc g -> acc +. group_card env g) 0. gs
  | Be_tree.Optional g ->
      (* The left side is retained even when the child has no matches. *)
      Float.max (group_card env g) 1.
  | Be_tree.Minus _ ->
      (* MINUS only removes rows; neutral for sibling products. *)
      1.

and group_card env (g : Be_tree.group) =
  List.fold_left (fun acc node -> acc *. node_card env node) 1. g.children

let f_and args = List.fold_left ( *. ) 1. args
let f_union args = List.fold_left ( +. ) 0. args
let f_optional left right = left *. right

let level_cost env (g : Be_tree.group) =
  let children = Array.of_list g.children in
  let cards = Array.map (node_card env) children in
  let n = Array.length children in
  (* Prefix/suffix products give res(l(·)) and res(r(·)) cheaply. *)
  let left = Array.make (n + 1) 1. in
  for i = 0 to n - 1 do
    left.(i + 1) <- left.(i) *. cards.(i)
  done;
  let right = Array.make (n + 1) 1. in
  for i = n - 1 downto 0 do
    right.(i) <- right.(i + 1) *. cards.(i)
  done;
  let total = ref 0. in
  Array.iteri
    (fun i node ->
      match node with
      | Be_tree.Bgp b ->
          total :=
            !total +. bgp_cost env b
            +. f_and [ cards.(i); left.(i); right.(i + 1) ]
      | Be_tree.Union gs ->
          total := !total +. f_union (List.map (group_card env) gs)
      | Be_tree.Optional inner | Be_tree.Minus inner ->
          (* The left pattern is everything to the node's left. *)
          total := !total +. f_optional left.(i) (group_card env inner)
      | Be_tree.Values _ | Be_tree.Group _ -> ())
    children;
  !total

let two_level_cost env (g : Be_tree.group) =
  let sub_costs =
    List.fold_left
      (fun acc node ->
        match node with
        | Be_tree.Bgp _ | Be_tree.Values _ -> acc
        | Be_tree.Group inner | Be_tree.Optional inner | Be_tree.Minus inner ->
            acc +. level_cost env inner
        | Be_tree.Union gs ->
            List.fold_left (fun acc g -> acc +. level_cost env g) acc gs)
      0. g.children
  in
  level_cost env g +. sub_costs
