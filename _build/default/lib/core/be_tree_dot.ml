let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let bgp_label patterns =
  match patterns with
  | [] -> "BGP (empty)"
  | _ ->
      "BGP\\n"
      ^ String.concat "\\n"
          (List.map
             (fun tp -> escape (Sparql.Triple_pattern.to_string tp))
             patterns)

(* Emit the subtree rooted at [g]; [path] identifies nodes for
   highlighting; returns this group's dot node id. *)
let rec emit buf ~prefix ~highlight path (g : Be_tree.group) =
  let id path = Printf.sprintf "%s_%s" prefix (String.concat "_" (List.map string_of_int (List.rev path))) in
  let self = id path in
  let filters =
    match g.Be_tree.filters with
    | [] -> ""
    | filters ->
        "\\n"
        ^ String.concat "\\n"
            (List.map
               (fun e ->
                 escape
                   (Format.asprintf "FILTER(%a)"
                      (Sparql.Ast.pp_expr (Rdf.Namespace.with_defaults ()))
                      e))
               filters)
  in
  Buffer.add_string buf
    (Printf.sprintf "  %s [shape=box, style=rounded, label=\"group%s\"];\n"
       self filters);
  List.iteri
    (fun i node ->
      let child_path = i :: path in
      let child = id child_path in
      let fill =
        if List.mem (List.rev child_path) highlight then
          ", style=filled, fillcolor=lightgoldenrod"
        else ""
      in
      (match node with
      | Be_tree.Bgp patterns ->
          Buffer.add_string buf
            (Printf.sprintf "  %s [shape=box, label=\"%s\"%s];\n" child
               (bgp_label patterns) fill)
      | Be_tree.Values { Sparql.Ast.vars; rows } ->
          Buffer.add_string buf
            (Printf.sprintf
               "  %s [shape=box, label=\"VALUES %s (%d rows)\"%s];\n" child
               (escape (String.concat " " (List.map (fun v -> "?" ^ v) vars)))
               (List.length rows) fill)
      | Be_tree.Union branches ->
          Buffer.add_string buf
            (Printf.sprintf "  %s [shape=diamond, label=\"UNION\"%s];\n" child
               fill);
          List.iteri
            (fun j branch ->
              let branch_id = emit buf ~prefix ~highlight (j :: child_path) branch in
              Buffer.add_string buf
                (Printf.sprintf "  %s -> %s;\n" child branch_id))
            branches
      | Be_tree.Optional inner ->
          Buffer.add_string buf
            (Printf.sprintf "  %s [shape=diamond, label=\"OPTIONAL\"%s];\n"
               child fill);
          let inner_id = emit buf ~prefix ~highlight (0 :: child_path) inner in
          Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" child inner_id)
      | Be_tree.Minus inner ->
          Buffer.add_string buf
            (Printf.sprintf "  %s [shape=diamond, label=\"MINUS\"%s];\n" child
               fill);
          let inner_id = emit buf ~prefix ~highlight (0 :: child_path) inner in
          Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" child inner_id)
      | Be_tree.Group inner ->
          let inner_id = emit buf ~prefix ~highlight (0 :: child_path) inner in
          Buffer.add_string buf
            (Printf.sprintf "  %s [shape=box, label=\"{ }\"%s];\n" child fill);
          Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" child inner_id));
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"%d\"];\n" self child i))
    g.Be_tree.children;
  self

let to_dot ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph betree {\n  rankdir=TB;\n  node [fontname=\"monospace\", fontsize=10];\n";
  ignore (emit buf ~prefix:"n" ~highlight [ 0 ] g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pair_to_dot ~before ~after =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph betree_pair {\n  rankdir=TB;\n  node [fontname=\"monospace\", fontsize=10];\n";
  Buffer.add_string buf "  subgraph cluster_before {\n    label=\"before transformation\";\n";
  ignore (emit buf ~prefix:"b" ~highlight:[] [ 0 ] before);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "  subgraph cluster_after {\n    label=\"after transformation\";\n";
  ignore (emit buf ~prefix:"a" ~highlight:[] [ 0 ] after);
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf
