(** Graphviz rendering of BE-trees: one box per node, BGP leaves listing
    their triple patterns, so before/after transformation plans can be
    inspected visually ([dot -Tsvg plan.dot > plan.svg]). *)

(** [to_dot ?highlight g] — a complete [digraph]. Nodes whose index path
    appears in [highlight] are drawn filled (used to mark nodes a
    transformation touched). *)
val to_dot : ?highlight:int list list -> Be_tree.group -> string

(** [pair_to_dot ~before ~after] — both trees side by side in one digraph,
    labeled as two clusters. *)
val pair_to_dot : before:Be_tree.group -> after:Be_tree.group -> string
