(** The GoSN (Graph of SuperNodes) of LBR (Atre, SIGMOD 2015): the
    structure LBR builds over a SPARQL query with AND and OPTIONAL
    patterns. Each supernode holds the triple patterns of one
    required/optional scope; directed edges go from the OPTIONAL-left
    scope (master) to each OPTIONAL-right scope.

    Nested groups are normalized the way LBR treats well-designed
    patterns: the conjunctive part of a nested group merges into the
    enclosing scope and its OPTIONAL scopes become children
    ((P AND (A OPT B)) ≡ ((P AND A) OPT B) under well-designedness).

    LBR's scope is queries of ANDs and OPTIONALs; UNION or FILTER make a
    query {!Unsupported} (the paper compares against LBR on OPTIONAL-only
    workloads, q2.1–q2.6). *)

exception Unsupported of string

type t = {
  id : int;
  patterns : Sparql.Triple_pattern.t list;  (** this scope's own patterns *)
  children : t list;  (** OPTIONAL-right scopes nested below this one *)
}

(** [of_group g] builds the GoSN of a surface group. Raises
    {!Unsupported} on UNION or FILTER. *)
val of_group : Sparql.Ast.group -> t

val of_query : Sparql.Ast.query -> t

(** [supernodes gosn] — all supernodes in pre-order (master first): LBR's
    forward pass order. *)
val supernodes : t -> t list

(** [pattern_count gosn] — total triple patterns. *)
val pattern_count : t -> int

(** [well_designed q] — the criterion of Pérez et al. (TODS 2009): for
    every subpattern [(P1 OPTIONAL P2)], each variable of [P2] that also
    occurs elsewhere in the query occurs in [P1]. LBR's semijoin pruning
    is only semantics-preserving on this fragment; {!Lbr_eval.run} refuses
    queries outside it. *)
val well_designed : Sparql.Ast.query -> bool

val well_designed_group : Sparql.Ast.group -> bool

val pp : Format.formatter -> t -> unit
