exception Unsupported of string

type t = {
  id : int;
  patterns : Sparql.Triple_pattern.t list;
  children : t list;
}

let of_group g =
  let counter = ref 0 in
  let next () =
    let i = !counter in
    incr counter;
    i
  in
  let rec build (g : Sparql.Ast.group) =
    let id = next () in
    let patterns, children =
      List.fold_left
        (fun (patterns, children) element ->
          match element with
          | Sparql.Ast.Triples tps -> (patterns @ tps, children)
          | Sparql.Ast.Group inner ->
              (* LBR normalizes well-designed patterns: the conjunctive
                 part of a nested group merges into the enclosing scope and
                 its OPTIONAL scopes hang off it ((P AND (A OPT B)) ≡
                 ((P AND A) OPT B) when vars(B) ∩ vars(P) ⊆ vars(A)). *)
              let sub = build inner in
              (patterns @ sub.patterns, children @ sub.children)
          | Sparql.Ast.Optional inner -> (patterns, children @ [ build inner ])
          | Sparql.Ast.Union _ -> raise (Unsupported "UNION")
          | Sparql.Ast.Filter _ -> raise (Unsupported "FILTER")
          | Sparql.Ast.Minus _ -> raise (Unsupported "MINUS")
          | Sparql.Ast.Values _ -> raise (Unsupported "VALUES"))
        ([], []) g
    in
    { id; patterns; children }
  in
  build g

let of_query (q : Sparql.Ast.query) = of_group q.Sparql.Ast.where

let rec supernodes sn = sn :: List.concat_map supernodes sn.children

let pattern_count sn =
  List.fold_left (fun acc sn -> acc + List.length sn.patterns) 0 (supernodes sn)

(* --- Well-designedness (Pérez et al., TODS 2009) ------------------------
   A pattern is well-designed iff for every subpattern (P1 OPTIONAL P2),
   each variable of P2 that also occurs elsewhere in the query occurs in
   P1. LBR's eager semijoin pruning is only semantics-preserving on this
   fragment (which covers the paper's q2.1-q2.6). *)

let add_var acc v = if List.mem v acc then acc else v :: acc

(* Variables of a group, optionally skipping one OPTIONAL subtree
   (identified physically — each Optional node is a distinct list). *)
let rec vars_of_group ?exclude (g : Sparql.Ast.group) acc =
  List.fold_left (vars_of_element ?exclude) acc g

and vars_of_element ?exclude acc = function
  | Sparql.Ast.Triples tps ->
      List.fold_left
        (fun acc tp -> List.fold_left add_var acc (Sparql.Triple_pattern.vars tp))
        acc tps
  | Sparql.Ast.Filter e ->
      List.fold_left add_var acc
        (Sparql.Expr.vars ~pattern_vars:Sparql.Ast.group_vars e)
  | Sparql.Ast.Group inner -> vars_of_group ?exclude inner acc
  | Sparql.Ast.Union gs ->
      List.fold_left (fun acc g -> vars_of_group ?exclude g acc) acc gs
  | Sparql.Ast.Minus inner -> vars_of_group ?exclude inner acc
  | Sparql.Ast.Values { Sparql.Ast.vars; _ } -> List.fold_left add_var acc vars
  | Sparql.Ast.Optional inner -> (
      match exclude with
      | Some skip when skip == inner -> acc
      | _ -> vars_of_group ?exclude inner acc)

let well_designed_group (root : Sparql.Ast.group) =
  let ok = ref true in
  let rec walk (g : Sparql.Ast.group) =
    (* Check each OPTIONAL against its syntactic left side (everything
       before it in this group). *)
    ignore
      (List.fold_left
         (fun p1_vars element ->
           (match element with
           | Sparql.Ast.Optional inner ->
               let p2_vars = vars_of_group inner [] in
               let outside = vars_of_group ~exclude:inner root [] in
               if
                 List.exists
                   (fun v -> List.mem v outside && not (List.mem v p1_vars))
                   p2_vars
               then ok := false
           | _ -> ());
           vars_of_element p1_vars element)
         [] g);
    List.iter
      (function
        | Sparql.Ast.Triples _ | Sparql.Ast.Filter _ | Sparql.Ast.Values _ -> ()
        | Sparql.Ast.Group inner | Sparql.Ast.Optional inner
        | Sparql.Ast.Minus inner ->
            walk inner
        | Sparql.Ast.Union gs -> List.iter walk gs)
      g
  in
  walk root;
  !ok

let well_designed (q : Sparql.Ast.query) = well_designed_group q.Sparql.Ast.where

let rec pp fmt sn =
  Format.fprintf fmt "@[<v 2>SN%d[%a]%a@]" sn.id
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ ")
       (fun fmt tp ->
         Format.pp_print_string fmt (Sparql.Triple_pattern.to_string tp)))
    sn.patterns
    (fun fmt children ->
      List.iter (fun child -> Format.fprintf fmt "@ -> %a" pp child) children)
    sn.children
