lib/lbr/lbr_eval.mli: Engine Sparql
