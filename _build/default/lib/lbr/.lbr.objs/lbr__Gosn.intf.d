lib/lbr/gosn.mli: Format Sparql
