lib/lbr/lbr_eval.ml: Array Engine Gosn Int List Option Sparql Unix
