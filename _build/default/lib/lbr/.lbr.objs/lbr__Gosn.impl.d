lib/lbr/gosn.ml: Format List Sparql
