type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 *)
let next_int64 rng =
  rng.state <- Int64.add rng.state 0x9E3779B97F4A7C15L;
  let z = rng.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to a non-negative OCaml int: Int64.to_int keeps the low 63 bits,
     so bit 62 of the raw value would otherwise become the sign bit. *)
  let raw = Int64.to_int (next_int64 rng) land max_int in
  raw mod bound

let between rng lo hi =
  if hi < lo then invalid_arg "Rng.between: hi < lo";
  lo + int rng (hi - lo + 1)

let float rng =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 rng) 11) in
  raw /. 9007199254740992. (* 2^53 *)

let chance rng p = float rng < p

(* Cached cumulative weights per (n, skew). *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 8

let zipf_table n skew =
  match Hashtbl.find_opt zipf_tables (n, skew) with
  | Some table -> table
  | None ->
      let weights = Array.init n (fun i -> 1. /. ((float_of_int i +. 1.) ** skew)) in
      let cumulative = Array.make n 0. in
      let total = ref 0. in
      Array.iteri
        (fun i w ->
          total := !total +. w;
          cumulative.(i) <- !total)
        weights;
      Array.iteri (fun i c -> cumulative.(i) <- c /. !total) cumulative;
      Hashtbl.add zipf_tables (n, skew) cumulative;
      cumulative

let zipf rng ~n ~skew =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let table = zipf_table n skew in
  let u = float rng in
  (* Binary search for the first cumulative weight >= u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if table.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let pick rng arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int rng (Array.length arr))
