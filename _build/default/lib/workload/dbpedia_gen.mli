(** A synthetic DBpedia-like generator.

    The paper's real-data experiments run on DBpedia V3.9 (830M triples),
    which cannot be shipped or loaded here; this generator reproduces the
    *features of DBpedia the paper's queries exercise* (see DESIGN.md):

    - diversity of representation: person names appear under [rdfs:label]
      and only sometimes under [foaf:name]; entity-category membership is
      split between [purl:subject] and [skos:subject] — the UNION
      motivation of Figure 1(a);
    - incompleteness: optional attributes ([owl:sameAs], [foaf:homepage],
      [dbo:populationTotal], …) have partial, per-class coverage — the
      OPTIONAL motivation of Figure 1(b);
    - skew: [dbo:wikiPageWikiLink] out-degrees are Zipf-distributed, and
      designated hub entities ([dbr:Economic_system], [dbr:Air_masses])
      give the benchmark queries their selective anchors;
    - redirects and wiki pages: alias entities share a primary page with
      their canonical entity via [dbo:wikiPageRedirects] /
      [foaf:isPrimaryTopicOf] / [foaf:primaryTopic]. *)

type config = {
  persons : int;
  places : int;
  companies : int;
  products : int;
  categories : int;
  seed : int;
}

(** [default] — ≈ 600k triples. *)
val default : config

(** [tiny] — ≈ 8k triples, for tests. *)
val tiny : config

val generate : config -> Rdf.Triple.t list

val store : config -> Rdf_store.Triple_store.t

(** {1 Hub IRIs referenced by the benchmark queries} *)

val economic_system : string
val air_masses : string
