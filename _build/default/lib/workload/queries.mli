(** The paper's benchmark queries (Appendix A): q1.1–q1.6 (the SPARQL-UO
    mini-benchmark of Section 7.1) and q2.1–q2.6 (the LBR comparison
    workload of Section 7.2) on each dataset.

    Queries whose appendix listing is fully legible in the source are
    reproduced verbatim; the rest are reconstructed to match their
    documented structure (operator mix, BGP count and depth from Tables
    3–4, and the selectivity category assigned in Section 7.1's analysis).
    Reconstruction notes live in EXPERIMENTS.md. *)

type dataset = Lubm | Dbpedia

val dataset_name : dataset -> string

type entry = {
  id : string;  (** "q1.1" … "q2.6" *)
  group : int;  (** 1 = Section 7.1 benchmark, 2 = LBR workload *)
  text : string;  (** full SPARQL text with PREFIX header *)
}

(** [all ds] — the twelve queries of [ds], q1.1–q1.6 then q2.1–q2.6. *)
val all : dataset -> entry list

(** [get ds id] — a query by id. Raises [Not_found]. *)
val get : dataset -> string -> entry

(** [group1 ds] / [group2 ds] — the two workload halves. *)
val group1 : dataset -> entry list

val group2 : dataset -> entry list
