type config = {
  persons : int;
  places : int;
  companies : int;
  products : int;
  categories : int;
  seed : int;
}

let default =
  {
    persons = 20000;
    places = 10000;
    companies = 6000;
    products = 8000;
    categories = 1500;
    seed = 93;
  }

let tiny =
  { persons = 400; places = 200; companies = 120; products = 150; seed = 93;
    categories = 40 }

let dbr = Rdf.Namespace.dbr
let dbo = Rdf.Namespace.dbo
let dbp = Rdf.Namespace.dbp
let foaf = Rdf.Namespace.foaf
let rdfs = Rdf.Namespace.rdfs
let owl = Rdf.Namespace.owl
let purl = Rdf.Namespace.purl
let skos = Rdf.Namespace.skos
let nsprov = Rdf.Namespace.nsprov
let geo = Rdf.Namespace.geo
let georss = Rdf.Namespace.georss
let rdf_type = Rdf.Namespace.rdf_type

let economic_system = dbr "Economic_system"
let air_masses = dbr "Air_masses"

type state = {
  rng : Rng.t;
  mutable triples : Rdf.Triple.t list;
  mutable entities : string list;  (** all link targets, newest first *)
}

let emit st s p o =
  st.triples <- Rdf.Triple.make (Rdf.Term.iri s) (Rdf.Term.iri p) o :: st.triples

let emit_iri st s p o = emit st s p (Rdf.Term.iri o)
let emit_lit st s p o = emit st s p (Rdf.Term.literal o)
let emit_lang st s p o = emit st s p (Rdf.Term.lang_literal o ~lang:"en")

let wiki_page name = "http://en.wikipedia.org/wiki/" ^ name
let external_ref name i = Printf.sprintf "http://freebase.example.org/%s_%d" name i

(* Common "encyclopedic" furniture shared by every entity class. *)
let article st ~name ~iri ~categories ~link_targets =
  emit_lang st iri (rdfs "label") (String.map (function '_' -> ' ' | c -> c) name);
  emit_iri st iri (nsprov "wasDerivedFrom") (wiki_page name);
  let page = wiki_page name in
  emit_iri st iri (foaf "isPrimaryTopicOf") page;
  emit_iri st page (foaf "primaryTopic") iri;
  emit_iri st iri (foaf "page") page;
  if Rng.chance st.rng 0.7 then
    emit_lang st iri (rdfs "comment") (Printf.sprintf "About %s." name);
  (* Category membership is split across the two representations the
     UNION queries must bridge. *)
  let ncats = Rng.between st.rng 1 3 in
  for _ = 1 to ncats do
    let cat = Rng.pick st.rng categories in
    if Rng.chance st.rng 0.6 then emit_iri st iri (purl "subject") cat
    else emit_iri st iri (skos "subject") cat
  done;
  (* Zipf-skewed wiki links. *)
  let nlinks = 1 + Rng.zipf st.rng ~n:24 ~skew:1.3 in
  let ntargets = Array.length link_targets in
  if ntargets > 0 then
    for _ = 1 to nlinks do
      emit_iri st iri (dbo "wikiPageWikiLink") (Rng.pick st.rng link_targets)
    done;
  if Rng.chance st.rng 0.35 then begin
    let nrefs = Rng.between st.rng 1 3 in
    for i = 1 to nrefs do
      emit_iri st iri (owl "sameAs") (external_ref name i)
    done
  end;
  (* A few entities have an alias sharing the primary page and
     redirecting to the canonical entity (feeds the redirect queries). *)
  if Rng.chance st.rng 0.06 then begin
    let alias = iri ^ "_(alias)" in
    emit_iri st alias (dbo "wikiPageRedirects") iri;
    emit_iri st alias (foaf "isPrimaryTopicOf") page;
    emit_lang st alias (rdfs "label") (name ^ " (alias)");
    st.entities <- alias :: st.entities
  end;
  st.entities <- iri :: st.entities

let generate config =
  let st = { rng = Rng.create ~seed:config.seed; triples = []; entities = [] } in
  let categories =
    Array.init config.categories (fun i -> dbr (Printf.sprintf "Category:Topic_%d" i))
  in
  Array.iteri
    (fun i cat -> emit_lang st cat (rdfs "label") (Printf.sprintf "Topic %d" i))
    categories;
  (* Hub entities first so they can be link targets. The Economic_system
     hub receives links from a selective slice of entities (the anchor of
     q1.1/q1.2); Air_masses is a single highly selective primary topic
     (the anchor of q1.3). *)
  List.iter
    (fun hub_name ->
      let iri = dbr hub_name in
      article st ~name:hub_name ~iri ~categories ~link_targets:[||])
    [ "Economic_system"; "Air_masses" ];
  (* Hubs always get an alias entity: q1.3's redirect chain needs a
     guaranteed dbo:wikiPageRedirects off the Air_masses primary page. *)
  List.iter
    (fun hub_name ->
      let iri = dbr hub_name in
      let alias = iri ^ "_(alias)" in
      emit_iri st alias (dbo "wikiPageRedirects") iri;
      emit_iri st alias (foaf "isPrimaryTopicOf") (wiki_page hub_name);
      emit_lang st alias (rdfs "label") (hub_name ^ " (alias)");
      st.entities <- alias :: st.entities)
    [ "Economic_system"; "Air_masses" ];
  let early_targets = Array.of_list st.entities in
  (* First pass: create entity IRIs so wiki links can point anywhere. *)
  let person_iris = Array.init config.persons (fun i -> dbr (Printf.sprintf "Person_%d" i)) in
  let place_iris = Array.init config.places (fun i -> dbr (Printf.sprintf "Place_%d" i)) in
  let company_iris = Array.init config.companies (fun i -> dbr (Printf.sprintf "Company_%d" i)) in
  let product_iris = Array.init config.products (fun i -> dbr (Printf.sprintf "Product_%d" i)) in
  let all_targets =
    Array.concat [ early_targets; person_iris; place_iris; company_iris; product_iris ]
  in
  let countries = Array.init 60 (fun i -> dbr (Printf.sprintf "Country_%d" i)) in
  Array.iter
    (fun iri -> emit_iri st iri rdf_type (dbo "Country"))
    countries;
  (* Persons. *)
  Array.iteri
    (fun i iri ->
      let name = Printf.sprintf "Person_%d" i in
      emit_iri st iri rdf_type (dbo "Person");
      article st ~name ~iri ~categories ~link_targets:all_targets;
      (* foaf:name only sometimes — the other half of Figure 1(a)'s
         UNION. *)
      if Rng.chance st.rng 0.55 then
        emit_lang st iri (foaf "name") (Printf.sprintf "Person %d" i);
      if Rng.chance st.rng 0.25 then
        emit_iri st iri (foaf "homepage")
          (Printf.sprintf "http://people.example.org/%d" i);
      if Rng.chance st.rng 0.3 then
        emit_iri st iri (dbo "thumbnail")
          (Printf.sprintf "http://commons.example.org/thumb/person_%d.png" i);
      if Rng.chance st.rng 0.015 then
        emit_iri st iri (dbo "wikiPageWikiLink") economic_system)
    person_iris;
  (* Places. *)
  Array.iteri
    (fun i iri ->
      let name = Printf.sprintf "Place_%d" i in
      let populated = Rng.chance st.rng 0.6 in
      emit_iri st iri rdf_type
        (if populated then dbo "PopulatedPlace" else dbo "Place");
      article st ~name ~iri ~categories ~link_targets:all_targets;
      if populated then begin
        emit_lang st iri (dbo "abstract") (Printf.sprintf "%s is a place." name);
        emit_lit st iri (geo "lat") (Printf.sprintf "%.4f" (Rng.float st.rng *. 180. -. 90.));
        emit_lit st iri (geo "long") (Printf.sprintf "%.4f" (Rng.float st.rng *. 360. -. 180.));
        if Rng.chance st.rng 0.5 then
          emit_iri st iri (foaf "depiction")
            (Printf.sprintf "http://commons.example.org/depiction/place_%d.png" i);
        if Rng.chance st.rng 0.25 then
          emit_iri st iri (foaf "homepage")
            (Printf.sprintf "http://cities.example.org/%d" i);
        if Rng.chance st.rng 0.55 then
          emit st iri (dbo "populationTotal")
            (Rdf.Term.int_literal (Rng.int st.rng 1_000_000));
        if Rng.chance st.rng 0.45 then
          emit_iri st iri (dbo "thumbnail")
            (Printf.sprintf "http://commons.example.org/thumb/place_%d.png" i)
      end;
      if Rng.chance st.rng 0.01 then
        emit_iri st iri (dbo "wikiPageWikiLink") economic_system)
    place_iris;
  (* Companies. *)
  let industries = Array.init 25 (fun i -> Printf.sprintf "Industry_%d" i) in
  Array.iteri
    (fun i iri ->
      let name = Printf.sprintf "Company_%d" i in
      emit_iri st iri rdf_type (dbo "Company");
      article st ~name ~iri ~categories ~link_targets:all_targets;
      if Rng.chance st.rng 0.7 then
        emit_lit st iri (dbp "industry") (Rng.pick st.rng industries);
      if Rng.chance st.rng 0.6 then
        emit_iri st iri (dbp "location") (Rng.pick st.rng place_iris);
      if Rng.chance st.rng 0.5 then
        emit_iri st iri (dbp "locationCountry") (Rng.pick st.rng countries);
      if Rng.chance st.rng 0.35 then
        emit_iri st iri (dbp "locationCity") (Rng.pick st.rng place_iris);
      if Rng.chance st.rng 0.4 then
        emit_lit st iri (georss "point")
          (Printf.sprintf "%.3f %.3f" (Rng.float st.rng *. 180. -. 90.)
             (Rng.float st.rng *. 360. -. 180.));
      if Rng.chance st.rng 0.45 then
        emit_lit st iri (dbp "products") (Printf.sprintf "Product line %d" i);
      if Rng.chance st.rng 0.025 then
        emit_iri st iri (dbo "wikiPageWikiLink") economic_system)
    company_iris;
  (* Products point back at companies (the ?a dbp:manufacturer ?v0 /
     ?b dbp:model ?v0 patterns of q2.6). *)
  Array.iteri
    (fun i iri ->
      let name = Printf.sprintf "Product_%d" i in
      emit_iri st iri rdf_type (dbo "MeanOfTransportation");
      emit_lang st iri (rdfs "label") name;
      emit_iri st iri (dbp "manufacturer") (Rng.pick st.rng company_iris);
      if Rng.chance st.rng 0.5 then
        emit_iri st iri (dbp "model") (Rng.pick st.rng company_iris))
    product_iris;
  List.rev st.triples

let store config = Rdf_store.Triple_store.of_triples (generate config)
