(** Query-statistics computation for Tables 3 and 4: query type (U / O /
    UO), the Count_BGP and Depth metrics of Section 7.1, and the result
    size under the reference evaluation. *)

type query_class = U | O | UO | Conjunctive

val class_name : query_class -> string

(** [classify q] — which of UNION/OPTIONAL the query uses. *)
val classify : Sparql.Ast.query -> query_class

type row = {
  id : string;
  query_class : query_class;
  count_bgp : int;
  depth : int;
  result_size : int option;  (** [None] if the reference run hit a limit *)
}

(** [row_of ?row_budget store entry] computes one table row (the result
    size is measured with the Full configuration, as the paper's tables
    report final result cardinalities, which are mode-independent). *)
val row_of :
  ?row_budget:int -> Rdf_store.Triple_store.t -> Queries.entry -> row

val pp_table : Format.formatter -> row list -> unit
