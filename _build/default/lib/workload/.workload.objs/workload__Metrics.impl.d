lib/workload/metrics.ml: Format List Queries Sparql Sparql_uo
