lib/workload/rng.mli:
