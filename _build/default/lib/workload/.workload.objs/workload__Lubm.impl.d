lib/workload/lubm.ml: Array Float List Printf Rdf Rdf_store Rng
