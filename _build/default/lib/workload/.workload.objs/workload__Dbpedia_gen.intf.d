lib/workload/dbpedia_gen.mli: Rdf Rdf_store
