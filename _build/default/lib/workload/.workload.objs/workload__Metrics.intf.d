lib/workload/metrics.mli: Format Queries Rdf_store Sparql
