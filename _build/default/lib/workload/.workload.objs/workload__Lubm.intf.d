lib/workload/lubm.mli: Rdf Rdf_store
