lib/workload/queries.mli:
