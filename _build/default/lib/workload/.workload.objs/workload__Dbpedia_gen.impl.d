lib/workload/dbpedia_gen.ml: Array List Printf Rdf Rdf_store Rng String
