(** A small deterministic PRNG (splitmix64) so generated datasets are
    reproducible across runs and platforms — the generators never touch
    [Random]. *)

type t

val create : seed:int -> t

(** [int rng bound] — uniform in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** [between rng lo hi] — uniform in [lo, hi] inclusive. *)
val between : t -> int -> int -> int

(** [float rng] — uniform in [0, 1). *)
val float : t -> float

(** [chance rng p] — true with probability [p]. *)
val chance : t -> float -> bool

(** [zipf rng ~n ~skew] — a Zipf-distributed rank in [0, n), computed by
    inverse-CDF over precomputed weights; heavier [skew] concentrates mass
    on low ranks. The distribution table is cached per (n, skew). *)
val zipf : t -> n:int -> skew:float -> int

(** [pick rng arr] — uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a
