type query_class = U | O | UO | Conjunctive

let class_name = function U -> "U" | O -> "O" | UO -> "UO" | Conjunctive -> "B"

let classify (q : Sparql.Ast.query) =
  let has_union = ref false and has_optional = ref false in
  let rec walk_group g = List.iter walk_element g
  and walk_element = function
    | Sparql.Ast.Triples _ | Sparql.Ast.Filter _ | Sparql.Ast.Values _ -> ()
    | Sparql.Ast.Group g | Sparql.Ast.Minus g -> walk_group g
    | Sparql.Ast.Union gs ->
        has_union := true;
        List.iter walk_group gs
    | Sparql.Ast.Optional g ->
        has_optional := true;
        walk_group g
  in
  walk_group q.Sparql.Ast.where;
  match (!has_union, !has_optional) with
  | true, true -> UO
  | true, false -> U
  | false, true -> O
  | false, false -> Conjunctive

type row = {
  id : string;
  query_class : query_class;
  count_bgp : int;
  depth : int;
  result_size : int option;
}

let row_of ?row_budget store (entry : Queries.entry) =
  let query = Sparql.Parser.parse entry.text in
  let report =
    Sparql_uo.Executor.run_query ~mode:Sparql_uo.Executor.Full ?row_budget store
      query
  in
  {
    id = entry.id;
    query_class = classify query;
    count_bgp = Sparql_uo.Executor.count_bgp_of_query query;
    depth = Sparql_uo.Executor.depth_of_query query;
    result_size = report.Sparql_uo.Executor.result_count;
  }

let pp_table fmt rows =
  Format.fprintf fmt "%-6s %-5s %10s %6s %14s@." "Query" "Type" "Count_BGP"
    "Depth" "|[[Q]]_D|";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-6s %-5s %10d %6d %14s@." row.id
        (class_name row.query_class)
        row.count_bgp row.depth
        (match row.result_size with
        | Some n -> string_of_int n
        | None -> "limit"))
    rows
